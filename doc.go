// Package merlin is a from-scratch Go reproduction of "Merlin: Multi-tier
// Optimization of eBPF Code for Performance and Compactness" (ASPLOS 2024).
//
// The implementation lives under internal/: the eBPF ISA, an LLVM-flavoured
// IR with Merlin's IR-tier passes, a code generator, the bytecode refinement
// tier, a simulated kernel verifier, an executing VM with microarchitecture
// models, the K2 baseline, the benchmark corpus, and one experiment function
// per table and figure of the paper's evaluation. See README.md for the map
// and DESIGN.md for the design rationale; bench_test.go exposes every
// experiment as a testing.B benchmark.
package merlin
