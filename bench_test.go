package merlin

// One benchmark per table and figure of the paper's evaluation (§5). Each
// wraps the corresponding internal/experiments function; run with
//
//	go test -bench=. -benchmem
//
// The benchmarks use the sampled experiment configuration so a full sweep
// stays in interactive time; `merlin-bench -full <exp>` runs exhaustively.

import (
	"testing"

	"merlin/internal/experiments"
)

var benchCfg = experiments.DefaultConfig()

func benchErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable1 regenerates the benchmark-details table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Table1(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig10Sysdig regenerates Fig 10a (Sysdig compactness).
func BenchmarkFig10Sysdig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Compactness("sysdig", benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig10Tracee regenerates Fig 10b (Tracee compactness).
func BenchmarkFig10Tracee(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Compactness("tracee", benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig10Tetragon regenerates Fig 10c (Tetragon compactness).
func BenchmarkFig10Tetragon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Compactness("tetragon", benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig10XDP regenerates Fig 10d (XDP compactness).
func BenchmarkFig10XDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Compactness("xdp", benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig10eK2 regenerates Fig 10e (Merlin vs K2 compactness).
func BenchmarkFig10eK2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig10e(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig10fVerifier regenerates Fig 10f (verifier NPI/time impact).
func BenchmarkFig10fVerifier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig10f(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkTable3 regenerates the throughput/latency table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Table3(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig11 regenerates the XDP hardware-counter figures.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig11(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkTable4 regenerates the runtime-overhead table.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Table4(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig12 regenerates the security-application counter figures.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig12(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig13a regenerates the per-optimizer compile-cost figure.
func BenchmarkFig13a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig13a(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig13b regenerates the Merlin-vs-K2 compile-time figure.
func BenchmarkFig13b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig13b(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig14 regenerates the xdp-balancer ablation.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig14(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkFig15 regenerates the Sysdig ablation.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig15(benchCfg)
		benchErr(b, err)
	}
}

// BenchmarkTable5 regenerates the verifier state-instability table.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Table5()
		benchErr(b, err)
	}
}
