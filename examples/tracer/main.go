// The tracer example reproduces the paper's Table 4 workflow for one suite:
// it takes Sysdig-like syscall-capture probes from the corpus, optimizes
// them, attaches both versions, and reports the lmbench-style overhead
// reduction computed with the paper's Equation 1.
//
// Run: go run ./examples/tracer
package main

import (
	"fmt"
	"log"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ebpf"
	"merlin/internal/sysbench"
)

func main() {
	specs := corpus.Sysdig()
	// Attach the hot-path handlers (every 20th program keeps this example
	// quick; merlin-bench table4 does the full measurement).
	var orig, merlin []*ebpf.Program
	for i := 0; i < len(specs); i += 20 {
		spec := specs[i]
		res, err := core.Build(spec.Mod, spec.Func, core.Options{
			Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true,
		})
		if err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
		orig = append(orig, res.Baseline)
		merlin = append(merlin, res.Prog)
		fmt.Printf("probe %-28s NI %5d -> %5d\n", spec.Name, res.Baseline.NI(), res.Prog.NI())
	}

	origSet, err := sysbench.Attach(orig)
	if err != nil {
		log.Fatal(err)
	}
	merlinSet, err := sysbench.Attach(merlin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-event probe cost: %.0f -> %.0f cycles\n\n",
		origSet.PerEventCycles, merlinSet.PerEventCycles)

	fmt.Printf("%-18s %9s %10s %10s %10s\n", "lmbench test", "vanilla", "w/o merlin", "w/ merlin", "reduction")
	for _, r := range sysbench.RunMicro(origSet, merlinSet) {
		fmt.Printf("%-18s %8.2fu %9.2fu %9.2fu %9.1f%%\n",
			r.Op.Name, r.VanillaUS, r.WithoutUS, r.WithUS, r.Reduction*100)
	}
	pm := sysbench.RunPostmark(origSet, merlinSet)
	fmt.Printf("%-18s %8.2fs %9.2fs %9.2fs %9.1f%%\n",
		"postmark", pm.VanillaS, pm.WithoutS, pm.WithS, pm.Reduction*100)
}
