// The quickstart example builds a tiny XDP packet counter in the textual
// IR, runs it through the full Merlin pipeline, prints the before/after
// disassembly, and executes both versions on the VM to show they agree.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/ir"
	"merlin/internal/vm"
)

const src = `module "quickstart"
map @hits : array key=4 value=8 max=4

func count(%ctx: ptr) -> i64 {
entry:
  %key = alloca 4, align 4
  %vslot = alloca 8, align 8
  store i32 %key, 0, align 4
  %data = load ptr, %ctx, align 8
  %endp = gep %ctx, 8
  %end = load ptr, %endp, align 8
  %lim = bin add i64 %data, 14
  %short = icmp ugt i64 %lim, %end
  condbr %short, drop, parse
drop:
  ret 1
parse:
  ; the u16 ethertype is loaded with align 1: watch DAO fix this
  %d = load ptr, %ctx, align 8
  %pp = gep %d, 12
  %proto = load i16, %pp, align 1
  %pz = zext i64, %proto
  %ip = icmp eq i64 %pz, 8
  condbr %ip, bump, pass
pass:
  ret 2
bump:
  %mp = mapptr @hits
  %v = call 1, %mp, %key
  store i64 %vslot, %v, align 8
  %null = icmp eq i64 %v, 0
  condbr %null, pass, doit
doit:
  %vp = load ptr, %vslot, align 8
  %old = load i64, %vp, align 8
  %new = bin add i64 %old, 1
  store i64 %vp, %new, align 8
  ret 2
}
`

func main() {
	mod, err := ir.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Build(mod, "count", core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== baseline (clang only): %d instructions ===\n", res.Baseline.NI())
	fmt.Print(ebpf.Disassemble(res.Baseline))
	fmt.Printf("\n=== Merlin optimized: %d instructions (%.1f%% smaller) ===\n",
		res.Prog.NI(), res.NIReduction()*100)
	fmt.Print(ebpf.Disassemble(res.Prog))

	fmt.Println("\npass report:")
	for _, st := range res.Stats {
		fmt.Printf("  %-8s (%s tier): %d rewrites in %s\n", st.Name, st.Tier, st.Applied, st.Duration.Round(0))
	}
	fmt.Printf("verifier: NPI %d -> %d\n", res.BaselineVerification.NPI, res.Verification.NPI)

	// Execute both versions on an IPv4 packet.
	pkt := make([]byte, 64)
	pkt[12], pkt[13] = 0x08, 0x00
	ctx := vm.BuildXDPContext(len(pkt))
	for i, p := range []*ebpf.Program{res.Baseline, res.Prog} {
		m, err := vm.New(p, vm.Config{})
		if err != nil {
			log.Fatal(err)
		}
		ret, st, err := m.Run(ctx, pkt)
		if err != nil {
			log.Fatal(err)
		}
		label := [2]string{"baseline", "optimized"}[i]
		fmt.Printf("run %-9s: verdict=%d cycles=%d instructions=%d\n",
			label, ret, st.Cycles, st.Instructions)
	}
}
