// The xdpfilter example takes the hXDP-style firewall from the benchmark
// corpus, optimizes it, and measures what the paper's Table 3 measures:
// single-core MLFFR throughput and loop latency under the four workload
// levels, baseline vs Merlin.
//
// Run: go run ./examples/xdpfilter
package main

import (
	"fmt"
	"log"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/netbench"
)

func main() {
	var spec *corpus.ProgramSpec
	for _, s := range corpus.XDP() {
		if s.Name == "xdp_firewall" {
			spec = s
		}
	}
	if spec == nil {
		log.Fatal("xdp_firewall not in corpus")
	}
	res, err := core.Build(spec.Mod, spec.Func, core.Options{
		Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true, Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xdp_firewall: NI %d -> %d (%.1f%% reduction), verifier NPI %d -> %d\n\n",
		res.Baseline.NI(), res.Prog.NI(), res.NIReduction()*100,
		res.BaselineVerification.NPI, res.Verification.NPI)

	tr := netbench.NewTrace(500, 7)
	base, err := netbench.ProfileProgram(res.Baseline, tr)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := netbench.ProfileProgram(res.Prog, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %14s %14s\n", "", "baseline", "merlin")
	fmt.Printf("%-10s %11.3f Mpps %11.3f Mpps\n", "throughput", base.ThroughputMpps(), opt.ThroughputMpps())
	fmt.Printf("%-10s %14.1f %14.1f\n", "cycles/pkt", base.MeanCycles, opt.MeanCycles)

	best := opt.ThroughputMpps()
	if b := base.ThroughputMpps(); b > best {
		best = b
	}
	fmt.Println("\nlatency (us) by workload level:")
	for l := netbench.LoadLow; l <= netbench.LoadSaturate; l++ {
		rate := netbench.OfferedRate(l, base.ThroughputMpps(), best)
		fmt.Printf("  %-9s %10.2f %14.2f\n", l, base.LatencyUS(rate), opt.LatencyUS(rate))
	}
}
