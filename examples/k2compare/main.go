// The k2compare example pits Merlin against the K2 baseline on one XDP
// program, reporting instruction counts, measured/modeled compile times, and
// checking that all three versions behave identically on test traffic.
//
// Run: go run ./examples/k2compare
package main

import (
	"fmt"
	"log"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ebpf"
	"merlin/internal/k2"
	"merlin/internal/vm"
)

func main() {
	var spec *corpus.ProgramSpec
	for _, s := range corpus.XDP() {
		if s.Name == "xdp2" {
			spec = s
		}
	}
	res, err := core.Build(spec.Mod, spec.Func, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	k2prog, st, err := k2.Optimize(res.Baseline, k2.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %6s %15s\n", "system", "NI", "compile time")
	fmt.Printf("%-8s %6d %15s\n", "clang", res.Baseline.NI(), "-")
	fmt.Printf("%-8s %6d %15s (modeled: %s; %d MCMC iters, %d accepted)\n",
		"k2", k2prog.NI(), st.SearchTime.Round(0), st.ModeledTime.Round(0), st.Iterations, st.Accepted)
	fmt.Printf("%-8s %6d %15s\n", "merlin", res.Prog.NI(), res.MerlinTime.Round(0))

	// All three versions must agree on traffic.
	for i, pkt := range testPackets() {
		var rets [3]int64
		for vi, p := range []*ebpf.Program{res.Baseline, k2prog, res.Prog} {
			m, err := vm.New(p, vm.Config{Seed: 3})
			if err != nil {
				log.Fatal(err)
			}
			ret, _, err := m.Run(vm.BuildXDPContext(len(pkt)), pkt)
			if err != nil {
				log.Fatal(err)
			}
			rets[vi] = ret
		}
		if rets[0] != rets[1] || rets[0] != rets[2] {
			log.Fatalf("packet %d: verdicts diverge: %v", i, rets)
		}
	}
	fmt.Println("\nall versions agree on the test traffic ✓")
}

func testPackets() [][]byte {
	var out [][]byte
	for i := 0; i < 8; i++ {
		pkt := make([]byte, 64+i*16)
		for j := range pkt {
			pkt[j] = byte(i * j)
		}
		if i%2 == 0 {
			pkt[12], pkt[13] = 0x08, 0x00
		}
		out = append(out, pkt)
	}
	return out
}
