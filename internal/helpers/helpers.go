// Package helpers defines the kernel helper-function API surface shared by
// the VM (which executes helpers) and the verifier (which type-checks calls
// against their signatures). IDs follow the Linux UAPI numbering.
package helpers

import "merlin/internal/ebpf"

// Helper function IDs (subset used by the corpus).
const (
	MapLookupElem     = 1
	MapUpdateElem     = 2
	MapDeleteElem     = 3
	ProbeRead         = 4
	KtimeGetNS        = 5
	TracePrintk       = 6
	GetPrandomU32     = 7
	GetSmpProcessorID = 8
	GetCurrentPidTgid = 14
	GetCurrentComm    = 16
	Redirect          = 23
	PerfEventOutput   = 25
	RedirectMap       = 51
)

// ArgKind classifies a helper argument for verification.
type ArgKind uint8

// Argument kinds.
const (
	ArgNone     ArgKind = iota
	ArgScalar           // any integer
	ArgCtx              // program context pointer
	ArgMap              // map handle from a pseudo lddw
	ArgMapKey           // memory of the map's key size
	ArgMapValue         // memory of the map's value size
	ArgMem              // memory region; paired with a following ArgSize
	ArgSize             // byte count bounding the previous ArgMem
)

// RetKind classifies a helper's return value.
type RetKind uint8

// Return kinds.
const (
	RetScalar         RetKind = iota
	RetMapValueOrNull         // pointer into the map's value area, or null
)

// Spec is a helper signature.
type Spec struct {
	ID   int
	Name string
	Args []ArgKind
	Ret  RetKind
	// Hooks restricts availability; empty means all hook types.
	Hooks []ebpf.HookType
	// Cost is the cycle cost the VM charges per invocation.
	Cost uint64
	// WritesMem marks helpers whose ArgMem argument is written rather than
	// read (probe_read's destination); the verifier then initializes the
	// region instead of requiring it initialized.
	WritesMem bool
}

// Table maps helper IDs to their specs.
var Table = map[int]Spec{
	MapLookupElem: {ID: MapLookupElem, Name: "map_lookup_elem",
		Args: []ArgKind{ArgMap, ArgMapKey}, Ret: RetMapValueOrNull, Cost: 18},
	MapUpdateElem: {ID: MapUpdateElem, Name: "map_update_elem",
		Args: []ArgKind{ArgMap, ArgMapKey, ArgMapValue, ArgScalar}, Ret: RetScalar, Cost: 30},
	MapDeleteElem: {ID: MapDeleteElem, Name: "map_delete_elem",
		Args: []ArgKind{ArgMap, ArgMapKey}, Ret: RetScalar, Cost: 25},
	ProbeRead: {ID: ProbeRead, Name: "probe_read",
		Args: []ArgKind{ArgMem, ArgSize, ArgScalar}, Ret: RetScalar, Cost: 40, WritesMem: true,
		Hooks: []ebpf.HookType{ebpf.HookTracepoint, ebpf.HookKprobe}},
	KtimeGetNS: {ID: KtimeGetNS, Name: "ktime_get_ns",
		Args: nil, Ret: RetScalar, Cost: 12},
	TracePrintk: {ID: TracePrintk, Name: "trace_printk",
		Args: []ArgKind{ArgMem, ArgSize}, Ret: RetScalar, Cost: 100},
	GetPrandomU32: {ID: GetPrandomU32, Name: "get_prandom_u32",
		Args: nil, Ret: RetScalar, Cost: 8},
	GetSmpProcessorID: {ID: GetSmpProcessorID, Name: "get_smp_processor_id",
		Args: nil, Ret: RetScalar, Cost: 4},
	GetCurrentPidTgid: {ID: GetCurrentPidTgid, Name: "get_current_pid_tgid",
		Args: nil, Ret: RetScalar, Cost: 6,
		Hooks: []ebpf.HookType{ebpf.HookTracepoint, ebpf.HookKprobe}},
	GetCurrentComm: {ID: GetCurrentComm, Name: "get_current_comm",
		Args: []ArgKind{ArgMem, ArgSize}, Ret: RetScalar, Cost: 20, WritesMem: true,
		Hooks: []ebpf.HookType{ebpf.HookTracepoint, ebpf.HookKprobe}},
	Redirect: {ID: Redirect, Name: "redirect",
		Args: []ArgKind{ArgScalar, ArgScalar}, Ret: RetScalar, Cost: 15,
		Hooks: []ebpf.HookType{ebpf.HookXDP}},
	PerfEventOutput: {ID: PerfEventOutput, Name: "perf_event_output",
		Args: []ArgKind{ArgCtx, ArgMap, ArgScalar, ArgMem, ArgSize}, Ret: RetScalar, Cost: 60},
	RedirectMap: {ID: RedirectMap, Name: "redirect_map",
		Args: []ArgKind{ArgMap, ArgScalar, ArgScalar}, Ret: RetScalar, Cost: 15,
		Hooks: []ebpf.HookType{ebpf.HookXDP}},
}

// AllowedAt reports whether helper id may be called from hook h.
func AllowedAt(id int, h ebpf.HookType) bool {
	spec, ok := Table[id]
	if !ok {
		return false
	}
	if len(spec.Hooks) == 0 {
		return true
	}
	for _, hh := range spec.Hooks {
		if hh == h {
			return true
		}
	}
	return false
}
