package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// lockName is the advisory lock file inside the state directory.
const lockName = "journal.lock"

// ErrLocked is wrapped by the error Open returns when another live process
// holds the state directory's advisory lock. Callers use it to distinguish
// "two daemons on one journal" (a config error, fail fast) from storage
// failure (degrade to in-memory and retry).
var ErrLocked = errors.New("locked by another process")

// acquireLock takes a cross-process advisory flock on dir so two processes
// can never interleave appends into one journal. flock (not O_EXCL alone) is
// deliberate: the kernel releases it when the holder dies, so a SIGKILLed
// daemon never wedges its state directory — exactly the crash the journal is
// designed to survive. The holder's pid is written into the file purely as a
// diagnostic for the contention error.
func acquireLock(dir string) (*os.File, error) {
	path := filepath.Join(dir, lockName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		holder := ""
		buf := make([]byte, 32)
		if n, _ := f.Read(buf); n > 0 {
			holder = fmt.Sprintf(" (held by pid %s)", strings.TrimSpace(string(buf[:n])))
		}
		f.Close()
		return nil, fmt.Errorf("journal: state dir %s is %w%s: %s", dir, ErrLocked, holder, err)
	}
	// Record our pid for the diagnostic above. Best-effort: the flock is the
	// lock, the contents are commentary.
	_ = f.Truncate(0)
	_, _ = f.WriteAt([]byte(fmt.Sprintf("%d\n", os.Getpid())), 0)
	return f, nil
}

// releaseLock drops the flock and closes the file. The lock file itself is
// left in place: unlinking it would race a concurrent opener that already
// holds an fd to the old inode.
func releaseLock(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	_ = f.Close()
}
