package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"merlin/internal/chaos"
)

// openSmall opens dir with a tiny rotation threshold so a handful of appends
// spans several segments.
func openSmall(t *testing.T, dir string, o Options) *Log {
	t.Helper()
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64
	}
	l, err := OpenWith(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func payloadN(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

// TestSegmentRotation: appends past the threshold split the log into bounded
// segment files, and both Replay and a fresh Open see every record in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := openSmall(t, dir, Options{})
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append(payloadN(i), false); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("no rotation happened: %+v", st)
	}
	segs := l.Segments()
	if segs[0] != "journal.log" {
		t.Fatalf("base segment missing: %v", segs)
	}
	for _, name := range segs {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("segment %s: %v", name, err)
		}
		// Only the active (last) segment may still be under the threshold;
		// retired ones must be bounded: they stopped growing at or just past
		// the threshold plus one record.
		if fi.Size() > 64+int64(headerSize+len(payloadN(0))) {
			t.Fatalf("segment %s grew unbounded: %d bytes", name, fi.Size())
		}
	}
	var got []string
	if err := l.Replay(func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != n || got[0] != "record-0000" || got[n-1] != fmt.Sprintf("record-%04d", n-1) {
		t.Fatalf("replay across segments = %d records %v", len(got), got)
	}
	// Appends must still land after a replay repositioned the active handle.
	if err := l.Append([]byte("after-replay"), true); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := openSmall(t, dir, Options{})
	defer l2.Close()
	if l2.Records() != n+1 {
		t.Fatalf("reopen found %d records, want %d (stats %+v)", l2.Records(), n+1, l2.Stats())
	}
}

// TestCompactRetiresSegments: Compact folds a multi-segment journal into the
// snapshot and returns to a single empty base segment.
func TestCompactRetiresSegments(t *testing.T) {
	dir := t.TempDir()
	l := openSmall(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if err := l.Append(payloadN(i), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact([]byte("the-snapshot")); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 || l.Size() != 0 {
		t.Fatalf("after compact: records=%d size=%d", l.Records(), l.Size())
	}
	if segs := l.Segments(); len(segs) != 1 || segs[0] != "journal.log" {
		t.Fatalf("segments after compact = %v, want just journal.log", segs)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if n, ok := parseSegName(e.Name()); ok && n != 0 {
			t.Fatalf("retired segment %s not removed", e.Name())
		}
	}
	l.Close()

	l2 := openSmall(t, dir, Options{})
	defer l2.Close()
	if snap, ok := l2.Snapshot(); !ok || string(snap) != "the-snapshot" {
		t.Fatalf("snapshot = %q, %v", snap, ok)
	}
	if l2.Records() != 0 {
		t.Fatalf("journal not empty after compact+reopen: %d", l2.Records())
	}
}

// TestGroupCommitBatchesFsyncs: in group-commit mode fsyncs are far fewer
// than records, the MaxBatch bound forces an inline flush, and forced
// appends are still individually fsynced.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l := openSmall(t, dir, Options{
		SegmentBytes: 1 << 20, // no rotation noise in the fsync counts
		Policy:       Policy{Mode: ModeGroup, Interval: time.Hour, MaxBatch: 8},
	})
	defer l.Close()
	for i := 0; i < 24; i++ {
		if err := l.Append(payloadN(i), false); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Fsyncs != 3 { // 24 records / MaxBatch 8, committer parked for an hour
		t.Fatalf("Fsyncs = %d, want 3 inline batch flushes (stats %+v)", st.Fsyncs, st)
	}
	if err := l.Append([]byte("stage-transition"), true); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.ForcedFsyncs != 1 || st.Fsyncs != 4 {
		t.Fatalf("forced append not individually fsynced: %+v", st)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
}

// TestGroupCommitterFlushesInBackground: a record smaller than MaxBatch is
// still made durable by the interval committer.
func TestGroupCommitterFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	l := openSmall(t, dir, Options{Policy: Policy{Mode: ModeGroup, Interval: time.Millisecond, MaxBatch: 1 << 20}})
	defer l.Close()
	if err := l.Append([]byte("drift"), false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("committer never flushed: %+v", l.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncPolicy: async mode fsyncs only at explicit barriers.
func TestAsyncPolicy(t *testing.T) {
	dir := t.TempDir()
	l := openSmall(t, dir, Options{SegmentBytes: 1 << 20, Policy: Policy{Mode: ModeAsync}})
	for i := 0; i < 50; i++ {
		if err := l.Append(payloadN(i), false); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs != 0 {
		t.Fatalf("async mode fsynced %d times without a barrier", st.Fsyncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 1 {
		t.Fatalf("Sync barrier: %+v", st)
	}
	l.Close()
}

// TestTornAppendRollsBack: a torn write is rolled back to the last record
// boundary, later appends land cleanly, and a reopen sees no corruption.
func TestTornAppendRollsBack(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.Wrap(chaos.OS(), chaos.NewSchedule(
		chaos.Step{Op: chaos.OpWrite, Skip: 2, Fault: chaos.Torn},
	))
	l := openSmall(t, dir, Options{FS: inj, SegmentBytes: 1 << 20})
	for i := 0; i < 2; i++ {
		if err := l.Append(payloadN(i), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append([]byte("this-one-tears"), false); err == nil {
		t.Fatal("torn append reported success")
	}
	if st := l.Stats(); st.WedgeRepairs != 1 {
		t.Fatalf("torn append not rolled back: %+v", st)
	}
	if err := l.Append([]byte("after-the-tear"), true); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != "after-the-tear" {
		t.Fatalf("records after torn append = %v", got)
	}
	if st := l2.Stats(); st.CorruptRecords != 0 {
		t.Fatalf("rollback left corruption for reopen to find: %+v", st)
	}
}

// TestReadFaultDoesNotTruncate: an injected read error during Open must
// surface as an error — never be mistaken for a torn tail and destroy good
// records.
func TestReadFaultDoesNotTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(payloadN(i), true); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	before, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}

	inj := chaos.Wrap(chaos.OS(), chaos.NewSchedule(
		chaos.Step{Op: chaos.OpRead, Skip: 1, Fault: chaos.EIO},
	))
	if _, err := OpenWith(dir, Options{FS: inj}); err == nil {
		t.Fatal("Open swallowed a real read fault")
	}
	after, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("read fault triggered destructive truncation: %d -> %d bytes", len(before), len(after))
	}
	// And without faults everything is still there.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 5 {
		t.Fatalf("records after faulty open attempt = %d, want 5", l2.Records())
	}
}

// TestMissingMiddleSegment: a lost middle segment is counted loudly and the
// survivors still replay.
func TestMissingMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	l := openSmall(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if err := l.Append(payloadN(i), false); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %v", segs)
	}
	l.Close()
	if err := os.Remove(filepath.Join(dir, segs[1])); err != nil {
		t.Fatal(err)
	}

	l2 := openSmall(t, dir, Options{})
	defer l2.Close()
	st := l2.Stats()
	if st.CorruptRecords == 0 {
		t.Fatalf("missing middle segment not reported: %+v", st)
	}
	var got []string
	if err := l2.Replay(func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= 20 {
		t.Fatalf("replay after losing a segment = %d records", len(got))
	}
	if got[0] != "record-0000" {
		t.Fatalf("first surviving record = %q", got[0])
	}
}

// TestTornTailInRetiredSegment: damage at a segment boundary (the tail of a
// non-active segment) is counted, skipped, and never truncated — retired
// segments are read-only.
func TestTornTailInRetiredSegment(t *testing.T) {
	dir := t.TempDir()
	l := openSmall(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if err := l.Append(payloadN(i), false); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %v", segs)
	}
	l.Close()

	victim := filepath.Join(dir, segs[1])
	f, err := os.OpenFile(victim, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x07, 0x00, 0x00, 0x00}) // torn header at the boundary
	f.Close()
	fi, _ := os.Stat(victim)
	sizeBefore := fi.Size()

	l2 := openSmall(t, dir, Options{})
	defer l2.Close()
	st := l2.Stats()
	if st.CorruptRecords != 1 || st.TruncatedBytes != 4 {
		t.Fatalf("boundary damage accounting: %+v", st)
	}
	if fi, _ := os.Stat(victim); fi.Size() != sizeBefore {
		t.Fatalf("retired segment was truncated: %d -> %d", sizeBefore, fi.Size())
	}
	var got int
	l2.Replay(func([]byte) error { got++; return nil })
	if got != 20 {
		t.Fatalf("replay = %d records, want all 20 (boundary garbage skipped)", got)
	}
}

// TestCompactSoftErrorsCounted: best-effort fsync failures during Compact
// are counted, not silently discarded, and the compaction still commits.
func TestCompactSoftErrorsCounted(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.Wrap(chaos.OS(), chaos.NewSchedule(
		chaos.Step{Op: chaos.OpSync, Fault: chaos.EIO}, // snapshot.tmp fsync
	))
	l := openSmall(t, dir, Options{FS: inj, SegmentBytes: 1 << 20, Policy: Policy{Mode: ModeAsync}})
	defer l.Close()
	if err := l.Append([]byte("x"), false); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]byte("snap")); err != nil {
		t.Fatalf("soft fsync failure must not fail Compact: %v", err)
	}
	if st := l.Stats(); st.CompactSoftErrors == 0 {
		t.Fatalf("swallowed tf.Sync error not counted: %+v", st)
	}
	if snap, ok := l.Snapshot(); !ok || string(snap) != "snap" {
		t.Fatalf("snapshot lost: %q %v", snap, ok)
	}
}

// TestRotationSkipsStaleSegment: a leftover future-numbered segment from an
// interrupted compaction is never appended into.
func TestRotationSkipsStaleSegment(t *testing.T) {
	dir := t.TempDir()
	l := openSmall(t, dir, Options{})
	if err := l.Append([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), false); err != nil {
		t.Fatal(err)
	}
	// Plant a stale journal.000001 as if an interrupted rotation/compaction
	// left it behind after the lock was re-acquired.
	stale := filepath.Join(dir, "journal.000001")
	if err := os.WriteFile(stale, frame([]byte("stale-old-record")), 0o644); err != nil {
		t.Fatal(err)
	}
	// Next append rotates (size >= 64); it must skip the stale file.
	if err := l.Append([]byte("fresh"), false); err != nil {
		t.Fatal(err)
	}
	segs := l.Segments()
	if segs[len(segs)-1] != "journal.000002" {
		t.Fatalf("rotation did not skip the stale segment: %v", segs)
	}
	got, err := os.ReadFile(stale)
	if err != nil || string(got[headerSize:]) != "stale-old-record" {
		t.Fatalf("stale segment was modified: %q %v", got, err)
	}
	l.Close()
}

// TestErrLockedSentinel: the contention error matches ErrLocked so callers
// can fail fast on double-daemon instead of degrading.
func TestErrLockedSentinel(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, err = Open(dir)
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
}

// TestParsePolicy: flag spellings map to modes; junk is rejected.
func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		mode Mode
	}{
		{"sync", ModeSync}, {"sync-every-record", ModeSync},
		{"group", ModeGroup}, {"group-commit", ModeGroup},
		{"async", ModeAsync},
	} {
		p, err := ParsePolicy(tc.in)
		if err != nil || p.Mode != tc.mode {
			t.Errorf("ParsePolicy(%q) = %+v, %v", tc.in, p, err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

// TestChaosRateSurvival: under a seeded ~5% fault rate the journal never
// panics, and whatever survives on disk reopens clean.
func TestChaosRateSurvival(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		dir := t.TempDir()
		inj := chaos.Wrap(chaos.OS(), chaos.NewRate(seed, 0.05, chaos.EIO, chaos.ENOSPC, chaos.Torn))
		inj.SlowDelay = 0
		l, err := OpenWith(dir, Options{FS: inj, SegmentBytes: 256, Policy: Policy{Mode: ModeGroup, Interval: time.Millisecond, MaxBatch: 4}})
		if err != nil {
			continue // open itself faulted; nothing on disk to check
		}
		for i := 0; i < 200; i++ {
			_ = l.Append(payloadN(i), i%10 == 0)
			if i == 100 {
				_ = l.Compact([]byte("mid-soak-snapshot"))
			}
		}
		l.Close()

		l2, err := Open(dir)
		if err != nil {
			t.Fatalf("seed %d: reopen after chaos failed: %v", seed, err)
		}
		if err := l2.Replay(func(p []byte) error { return nil }); err != nil {
			t.Fatalf("seed %d: replay after chaos: %v", seed, err)
		}
		l2.Close()
	}
}
