package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLockContention: a second Open of the same state dir fails fast with a
// diagnostic naming the holder, and the dir becomes usable again after Close.
func TestLockContention(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("second Open of a locked state dir succeeded")
	} else {
		if !strings.Contains(err.Error(), "locked by another process") {
			t.Errorf("contention error lacks diagnostic: %v", err)
		}
		if !strings.Contains(err.Error(), "held by pid") {
			t.Errorf("contention error lacks holder pid: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	defer l2.Close()
}

// TestLockSurvivesAppendFlushCycle: normal operation (append, compact, stats)
// holds the lock throughout; a concurrent opener is refused at every point.
func TestLockSurvivesAppendFlushCycle(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("rec"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open succeeded while lock held after Append")
	}
	if err := l.Compact([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open succeeded while lock held after Compact")
	}
}

// TestLockFileLeftInPlace: Close releases the flock but does not unlink the
// lock file (unlinking would race a concurrent opener holding the old inode).
func TestLockFileLeftInPlace(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockName)); err != nil {
		t.Errorf("lock file missing after Close: %v", err)
	}
}
