package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSegmentFilesReplayOrder(t *testing.T) {
	dir := t.TempDir()
	// Unrelated files and the lock must be excluded; numbered segments sort
	// numerically after the base log.
	for _, name := range []string{"journal.000010", "journal.log", "journal.000002",
		"journal.lock", "snapshot.db", "journal.notnum"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"journal.log", "journal.000002", "journal.000010"}
	if len(got) != len(want) {
		t.Fatalf("SegmentFiles = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SegmentFiles = %v, want %v", got, want)
		}
	}
}

func TestSegmentFilesMatchesLiveLog(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenWith(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("r"), 48)
	for i := 0; i < 6; i++ {
		if err := l.Append(payload, true); err != nil {
			t.Fatal(err)
		}
	}
	fromLog := l.Segments()
	l.Close()
	got, err := SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fromLog) {
		t.Fatalf("SegmentFiles = %v, Log.Segments = %v", got, fromLog)
	}
	for i := range got {
		if got[i] != fromLog[i] {
			t.Fatalf("SegmentFiles = %v, Log.Segments = %v", got, fromLog)
		}
	}
	if len(got) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v", got)
	}
}
