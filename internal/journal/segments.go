package journal

import (
	"os"
	"sort"
)

// SegmentFiles lists dir's journal segment file names in replay order: the
// base journal.log first (when present), then numbered rotation segments
// ascending. It reads the directory without opening a Log, so crash-audit
// tooling (the soak prefix sweeps, the fleet controller's recovery tests)
// can enumerate the surviving byte stream of a state dir that another
// process may still hold locked.
func SegmentFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type seg struct {
		n    int64
		name string
	}
	var segs []seg
	for _, e := range ents {
		if n, ok := parseSegName(e.Name()); ok {
			segs = append(segs, seg{n, e.Name()})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n < segs[j].n })
	names := make([]string, 0, len(segs))
	for _, s := range segs {
		names = append(names, s.name)
	}
	return names, nil
}
