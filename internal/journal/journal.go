// Package journal is a durable, crash-tolerant state store: an append-only,
// length-prefixed, CRC32C-checksummed record log paired with an atomically
// replaced snapshot file. It is the persistence floor under the lifecycle
// manager — slot transitions are appended as they happen, the full state is
// periodically compacted into the snapshot, and recovery replays
// snapshot + journal.
//
// The design goal is that corruption is never fatal. A torn write (the
// process was SIGKILLed mid-append, the disk filled, the file was truncated)
// leaves a record whose length prefix, checksum, or payload is incomplete;
// Open detects the damage, counts it, discards the broken tail, and truncates
// the active segment back to its last intact record so subsequent appends
// start from a clean boundary. A corrupt or missing snapshot degrades to "no
// snapshot". The caller always gets a working log plus an honest accounting
// of what was lost — it never gets an error that would prevent startup.
//
// For long-lived daemons the log is split into bounded segments:
//
//	journal.log        the base segment (segment 0, also the whole journal
//	                   when rotation never triggers)
//	journal.000001 …   rotated segments, oldest number first
//
// Append rotates to a fresh segment once the active one crosses
// Options.SegmentBytes, so no file ever grows without bound; Compact retires
// whole segments at once. Damage inside a retired (non-active) segment is
// counted and skipped — the scan resumes at the next segment — and a gap in
// the segment numbering (a missing middle segment) is likewise counted
// loudly and tolerated: records are idempotent upserts, so replaying what
// survived yields a consistent, possibly older, state.
//
// Durability is a policy (Options.Policy). Appends the caller marks sync are
// always individually fsynced regardless of policy — those are stage
// transitions that must survive a machine crash. For the rest:
//
//	ModeSync   every record is fsynced before Append returns (default).
//	ModeGroup  group commit: records accumulate and a background committer
//	           fsyncs the batch every Interval; a batch reaching MaxBatch is
//	           fsynced inline by the appender, which doubles as backpressure
//	           — the in-flight window is bounded at MaxBatch records.
//	ModeAsync  no fsync until a forced append, Sync, Compact, or Close; a
//	           power cut can lose everything since the last barrier.
//
// Every file operation goes through a chaos.FS (Options.FS), so tests and
// soak harnesses inject ENOSPC, EIO, torn writes, rename failures, and slow
// I/O at every site the journal touches storage.
//
// On-disk format, segments and snapshot alike:
//
//	record := u32le payload length | u32le CRC32C(payload) | payload
//
// Each segment is a sequence of records; the snapshot file holds exactly one.
// Payload contents are opaque to this package.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"merlin/internal/chaos"
)

const (
	journalName  = "journal.log"
	segDot       = "journal."
	snapshotName = "snapshot.db"
	snapshotTmp  = "snapshot.tmp"

	headerSize = 8 // u32 length + u32 crc

	// maxRecordSize bounds a single record so a corrupt length prefix cannot
	// drive a multi-gigabyte allocation during replay.
	maxRecordSize = 1 << 28
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes is
// zero: big enough that short-lived tools never rotate, small enough that a
// weeks-old daemon's active segment stays cheap to scan and truncate.
const DefaultSegmentBytes = 4 << 20

// Mode selects the durability policy for unforced appends.
type Mode int

const (
	// ModeSync fsyncs every record before Append returns.
	ModeSync Mode = iota
	// ModeGroup batches fsyncs: a background committer flushes every
	// Interval, and a batch reaching MaxBatch is flushed inline.
	ModeGroup
	// ModeAsync never fsyncs unforced appends; only forced appends, Sync,
	// Compact and Close are barriers.
	ModeAsync
)

func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync-every-record"
	case ModeGroup:
		return "group-commit"
	case ModeAsync:
		return "async"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Policy is a durability policy: the mode plus group-commit tuning.
type Policy struct {
	Mode Mode
	// Interval is the group committer's flush period (default 2ms).
	Interval time.Duration
	// MaxBatch is the unsynced-record count that triggers an inline flush
	// and bounds the in-flight window (default 32).
	MaxBatch int
}

func (p Policy) withDefaults() Policy {
	if p.Interval <= 0 {
		p.Interval = 2 * time.Millisecond
	}
	if p.MaxBatch <= 0 {
		p.MaxBatch = 32
	}
	return p
}

// ParsePolicy maps a -fsync-policy flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "sync", "sync-every-record":
		return Policy{Mode: ModeSync}, nil
	case "group", "group-commit":
		return Policy{Mode: ModeGroup}, nil
	case "async":
		return Policy{Mode: ModeAsync}, nil
	}
	return Policy{}, fmt.Errorf("journal: unknown fsync policy %q (want sync-every-record, group-commit, or async)", s)
}

// Options parameterize OpenWith.
type Options struct {
	// FS is the filesystem to operate through (default chaos.OS()). Tests
	// pass a chaos.Injector to fault every file operation.
	FS chaos.FS
	// SegmentBytes is the rotation threshold for the active segment
	// (default DefaultSegmentBytes). Appends larger than the threshold still
	// land whole — a segment always holds at least one record.
	SegmentBytes int64
	// Policy is the durability policy for unforced appends.
	Policy Policy
}

// castagnoli is the CRC32C polynomial table (iSCSI/ext4 flavor, hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of payload (exposed for tests).
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// Stats accounts for what the log observed and did. All fields except
// Segments are monotonic over the life of one Log.
type Stats struct {
	// Records is the number of intact journal records found at Open.
	Records int
	// CorruptRecords counts discarded damage: a torn/corrupt tail per
	// segment, an unreadable snapshot, and one per missing middle segment.
	CorruptRecords int
	// TruncatedBytes is how many trailing journal bytes were discarded
	// (truncated off the active segment, skipped in retired ones).
	TruncatedBytes int64
	// SnapshotBytes is the size of the valid snapshot payload (0 if none).
	SnapshotBytes int
	// Appends counts records appended through this handle.
	Appends int
	// Fsyncs counts successful fsyncs of segment files; ForcedFsyncs is the
	// subset demanded by Append(..., true). FsyncErrors counts failed ones.
	Fsyncs       int
	ForcedFsyncs int
	FsyncErrors  int
	// Rotations counts segment rollovers; Segments is the current segment
	// file count.
	Rotations int
	Segments  int
	// CompactSoftErrors counts best-effort durability steps that failed
	// during Compact (snapshot-file fsync, directory fsync, retired-segment
	// removal). The compaction itself still committed; the errors mean the
	// result may not survive a power cut until the next successful barrier.
	CompactSoftErrors int
	// RotateSoftErrors counts best-effort failures during rotation (old
	// segment fsync, directory fsync, or segment creation — in which case
	// the active segment simply keeps growing).
	RotateSoftErrors int
	// WedgeRepairs counts torn appends successfully rolled back (the file
	// was truncated to the last record boundary after a failed write).
	WedgeRepairs int
}

// Log is an open state directory. All methods are safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	dir      string
	fs       chaos.FS
	policy   Policy
	segBytes int64
	f        chaos.File // active segment
	lock     *os.File   // held flock on the state dir; see lock.go
	segs     []string   // segment file names, oldest first; last is active
	segNum   int64      // number of the active segment (0 = journal.log)
	size     int64      // active segment size in bytes
	total    int64      // intact bytes across all segments
	recs     int        // records appended since Open or the last Compact
	pending  int        // unforced records not yet fsynced
	wedged   bool       // a torn append could not be rolled back; repair before next write
	stats    Stats

	stopc chan struct{} // closes the group committer
	donec chan struct{} // committer exited
}

// Open opens (creating if needed) the state directory and its journal with
// default options: the real filesystem, default segment size, and the
// sync-every-record policy.
func Open(dir string) (*Log, error) { return OpenWith(dir, Options{}) }

// OpenWith opens the state directory, repairing any torn tail. It never
// fails because of corrupt contents — only on real I/O errors (permissions,
// not a directory, a read that faults mid-scan, ...) or when another live
// process holds the directory's advisory lock (two daemons must not share
// one journal; the error names the holder's pid and matches ErrLocked). The
// lock dies with the holding process, so a SIGKILLed owner never blocks a
// restart.
func OpenWith(dir string, o Options) (*Log, error) {
	fs := o.FS
	if fs == nil {
		fs = chaos.OS()
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	// A leftover snapshot.tmp is a compaction that died before its atomic
	// rename; the snapshot proper is still the authoritative previous one.
	_ = fs.Remove(filepath.Join(dir, snapshotTmp))

	l := &Log{dir: dir, fs: fs, policy: o.Policy.withDefaults(), segBytes: o.SegmentBytes, lock: lock}
	if err := l.openSegments(); err != nil {
		releaseLock(lock)
		return nil, err
	}
	if l.policy.Mode == ModeGroup {
		l.stopc = make(chan struct{})
		l.donec = make(chan struct{})
		go l.committer(l.stopc, l.donec, l.policy.Interval)
	}
	return l, nil
}

// segName returns the file name of segment n.
func segName(n int64) string {
	if n == 0 {
		return journalName
	}
	return fmt.Sprintf("%s%06d", segDot, n)
}

// parseSegName maps a directory entry to its segment number, or ok=false.
func parseSegName(name string) (int64, bool) {
	if name == journalName {
		return 0, true
	}
	rest, found := strings.CutPrefix(name, segDot)
	if !found || rest == "" {
		return 0, false
	}
	for _, c := range rest {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the directory's segment numbers, ascending.
func (l *Log) listSegments() ([]int64, error) {
	ents, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var nums []int64
	for _, e := range ents {
		if n, ok := parseSegName(e.Name()); ok {
			nums = append(nums, n)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums, nil
}

// openSegments scans every segment, repairs the active one's tail, and
// leaves l positioned to append.
func (l *Log) openSegments() error {
	nums, err := l.listSegments()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if len(nums) == 0 {
		nums = []int64{0}
	}
	// A hole in the numbering is a lost middle segment: replay what
	// survives (records are idempotent upserts) but say so loudly.
	for i := 1; i < len(nums); i++ {
		if nums[i] != nums[i-1]+1 {
			l.stats.CorruptRecords++
		}
	}

	for i, n := range nums {
		name := segName(n)
		path := filepath.Join(l.dir, name)
		active := i == len(nums)-1
		flag := os.O_RDONLY
		if active {
			flag = os.O_RDWR | os.O_CREATE
		}
		f, err := l.fs.OpenFile(path, flag, 0o644)
		if err != nil {
			l.closeSegsOnErr()
			return fmt.Errorf("journal: %w", err)
		}
		valid, recs, err := scanRecords(f, nil)
		if err != nil {
			f.Close()
			l.closeSegsOnErr()
			return fmt.Errorf("journal: scanning %s: %w", path, err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			l.closeSegsOnErr()
			return fmt.Errorf("journal: %w", err)
		}
		if torn := fi.Size() - valid; torn > 0 {
			// Torn or corrupt tail. In the active segment the damage is cut
			// off so the next append lands on a record boundary; in a retired
			// segment it is read-only — count it and move on.
			l.stats.CorruptRecords++
			l.stats.TruncatedBytes += torn
			if active {
				if err := f.Truncate(valid); err != nil {
					f.Close()
					l.closeSegsOnErr()
					return fmt.Errorf("journal: truncating torn tail: %w", err)
				}
			}
		}
		l.recs += recs
		l.total += valid
		l.segs = append(l.segs, name)
		if active {
			if _, err := f.Seek(valid, io.SeekStart); err != nil {
				f.Close()
				l.closeSegsOnErr()
				return fmt.Errorf("journal: %w", err)
			}
			l.f = f
			l.segNum = n
			l.size = valid
		} else {
			f.Close()
		}
	}
	l.stats.Records = l.recs
	l.stats.Segments = len(l.segs)
	return nil
}

func (l *Log) closeSegsOnErr() {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}

// scanRecords walks the record stream in r, invoking fn (when non-nil) with
// each intact payload. It returns the byte offset of the end of the last
// intact record and the record count. Torn or corrupt data is not an error —
// the scan just stops at it; only a real read fault (EIO mid-stream, as
// opposed to EOF) is returned as an error, because truncating at a transient
// read failure would destroy good records.
func scanRecords(r io.ReadSeeker, fn func(payload []byte) error) (valid int64, records int, err error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if isEOF(err) {
				// Clean EOF or a torn header: the stream ends here.
				return valid, records, nil
			}
			return valid, records, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordSize {
			return valid, records, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if isEOF(err) {
				return valid, records, nil // torn payload
			}
			return valid, records, err
		}
		if Checksum(payload) != want {
			return valid, records, nil // bit rot or a torn overwrite
		}
		valid += headerSize + int64(n)
		records++
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, records, err
			}
		}
	}
}

func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// frame wraps payload in the on-disk record framing.
func frame(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], Checksum(payload))
	copy(buf[headerSize:], payload)
	return buf
}

// Append writes one record to the journal. With sync set the record is
// fsynced before returning regardless of policy — use it for transitions
// that must survive a machine crash, not just a process crash. Without it
// the configured durability policy decides when the record reaches stable
// storage.
func (l *Log) Append(payload []byte, sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("journal: closed")
	}
	if l.wedged && !l.repairLocked() {
		return errors.New("journal: wedged by an unrepairable torn append")
	}
	if l.size > 0 && l.size >= l.segBytes {
		l.rotateLocked()
	}
	buf := frame(payload)
	if _, err := l.f.Write(buf); err != nil {
		// The write may have landed partially; garbage after the last record
		// boundary would otherwise hide every later append from the scanner.
		// Roll the file back to the known-good end.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.wedged = true
		} else if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
			l.wedged = true
		} else {
			l.stats.WedgeRepairs++
		}
		return fmt.Errorf("journal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.total += int64(len(buf))
	l.recs++
	l.stats.Appends++
	if sync {
		if err := l.fsyncLocked(true); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		return nil
	}
	switch l.policy.Mode {
	case ModeSync:
		if err := l.fsyncLocked(false); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	case ModeGroup:
		l.pending++
		if l.pending >= l.policy.MaxBatch {
			// Inline flush at the batch bound: this is the backpressure —
			// the in-flight window never exceeds MaxBatch records.
			if err := l.fsyncLocked(false); err != nil {
				return fmt.Errorf("journal: group fsync: %w", err)
			}
		}
	case ModeAsync:
		l.pending++
	}
	return nil
}

// repairLocked retries the truncate a wedged log needs before it can accept
// appends again.
func (l *Log) repairLocked() bool {
	if err := l.f.Truncate(l.size); err != nil {
		return false
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return false
	}
	l.wedged = false
	l.stats.WedgeRepairs++
	return true
}

// fsyncLocked flushes the active segment and settles the pending window.
func (l *Log) fsyncLocked(forced bool) error {
	if err := l.f.Sync(); err != nil {
		l.stats.FsyncErrors++
		return err
	}
	l.stats.Fsyncs++
	if forced {
		l.stats.ForcedFsyncs++
	}
	l.pending = 0
	return nil
}

// committer is the group-commit flusher: every interval it fsyncs whatever
// records accumulated since the last barrier.
func (l *Log) committer(stopc, donec chan struct{}, interval time.Duration) {
	defer close(donec)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stopc:
			return
		case <-t.C:
			l.mu.Lock()
			if l.f != nil && l.pending > 0 {
				_ = l.fsyncLocked(false) // failure counted; records stay pending-at-risk
			}
			l.mu.Unlock()
		}
	}
}

// rotateLocked rolls the journal onto a fresh segment. Rotation is
// best-effort: if the new segment cannot be created the active one simply
// keeps growing and the next append retries.
func (l *Log) rotateLocked() {
	next := l.segNum + 1
	var nf chaos.File
	for {
		var err error
		nf, err = l.fs.OpenFile(filepath.Join(l.dir, segName(next)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			break
		}
		if errors.Is(err, os.ErrExist) {
			// A stale segment left behind by an interrupted compaction;
			// skip over it rather than appending into old data.
			next++
			continue
		}
		l.stats.RotateSoftErrors++
		return
	}
	// The old segment's unsynced tail must be durable before appends move
	// on — an fsync of the new file would not cover it.
	if l.pending > 0 || l.policy.Mode == ModeSync {
		if serr := l.f.Sync(); serr != nil {
			l.stats.FsyncErrors++
			l.stats.RotateSoftErrors++
		} else {
			l.stats.Fsyncs++
			l.pending = 0
		}
	}
	l.syncDir(&l.stats.RotateSoftErrors)
	l.f.Close()
	l.f = nf
	l.segNum = next
	l.size = 0
	l.segs = append(l.segs, segName(next))
	l.stats.Rotations++
	l.stats.Segments = len(l.segs)
}

// syncDir fsyncs the state directory so renames and segment creations are
// durable. Best effort — not every filesystem supports directory fsync; a
// failure bumps the given soft-error counter.
func (l *Log) syncDir(softCounter *int) {
	dh, err := l.fs.OpenFile(l.dir, os.O_RDONLY, 0)
	if err != nil {
		*softCounter++
		return
	}
	if err := dh.Sync(); err != nil {
		*softCounter++
	}
	dh.Close()
}

// Sync flushes the journal's active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("journal: closed")
	}
	return l.fsyncLocked(false)
}

// Replay invokes fn with every intact journal record in append order, oldest
// segment first. It stops early if fn returns an error and returns that
// error.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("journal: closed")
	}
	var ferr error
	for i, name := range l.segs {
		active := i == len(l.segs)-1
		var r io.ReadSeeker
		if active {
			r = l.f
		} else {
			f, err := l.fs.OpenFile(filepath.Join(l.dir, name), os.O_RDONLY, 0)
			if err != nil {
				// The segment vanished or faulted since Open: skip it the way
				// Open skips a damaged middle segment.
				l.stats.CorruptRecords++
				continue
			}
			r = f
		}
		_, _, err := scanRecords(r, fn)
		if !active {
			r.(io.Closer).Close()
		} else if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil && err == nil {
			err = fmt.Errorf("journal: %w", serr)
		}
		if err != nil {
			ferr = err
			break
		}
	}
	if ferr == nil && l.f != nil {
		// Reposition for appends even when an early segment ended the loop.
		if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
			ferr = fmt.Errorf("journal: %w", serr)
		}
	}
	return ferr
}

// Snapshot returns the payload of the snapshot file, or ok=false when there
// is none (missing, torn, or corrupt — corruption is counted, not fatal).
func (l *Log) Snapshot() (payload []byte, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	path := filepath.Join(l.dir, snapshotName)
	f, err := l.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var got []byte
	valid, records, _ := scanRecords(f, func(p []byte) error {
		got = p
		return nil
	})
	if records == 0 {
		// A snapshot file exists but holds no intact record: corruption.
		l.stats.CorruptRecords++
		return nil, false
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		// Trailing garbage after the record — count it, keep the record.
		l.stats.CorruptRecords++
	}
	l.stats.SnapshotBytes = len(got)
	return got, true
}

// Compact atomically replaces the snapshot with payload and retires the
// journal's segments: write snapshot.tmp, fsync, rename over snapshot.db,
// fsync the directory, then start a fresh active segment and remove the old
// ones. A crash at any point leaves either the old snapshot + old segments
// or the new snapshot (+ any old segments not yet removed, whose records are
// then harmlessly re-applied on top of the newer snapshot — callers' records
// must be idempotent upserts, which the lifecycle's full-slot-state records
// are). Best-effort durability steps that fail (snapshot fsync, directory
// fsync, segment removal) are counted in Stats.CompactSoftErrors instead of
// being silently discarded.
func (l *Log) Compact(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("journal: closed")
	}
	tmp := filepath.Join(l.dir, snapshotTmp)
	tf, err := l.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if _, err := tf.Write(frame(payload)); err != nil {
		tf.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := tf.Sync(); err != nil {
		// The rename below is still atomic; the risk is losing the snapshot
		// to a power cut, in which case the CRC framing degrades it to "no
		// snapshot" and the not-yet-removed segments still replay.
		l.stats.CompactSoftErrors++
	}
	if err := tf.Close(); err != nil {
		l.stats.CompactSoftErrors++
	}
	if err := l.fs.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	l.syncDir(&l.stats.CompactSoftErrors)

	// Retire the old segments and return to the base segment: every record
	// now lives in the snapshot, so the journal restarts as an empty
	// journal.log — the steady-state layout is always the single base file.
	if l.segNum == 0 {
		if err := l.f.Truncate(0); err != nil {
			return fmt.Errorf("journal: compact truncate: %w", err)
		}
		if _, err := l.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	} else {
		nf, err := l.fs.OpenFile(filepath.Join(l.dir, journalName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			// Keep the current active segment; truncate it in place instead.
			if terr := l.f.Truncate(0); terr != nil {
				return fmt.Errorf("journal: compact truncate: %w", terr)
			}
			if _, serr := l.f.Seek(0, io.SeekStart); serr != nil {
				return fmt.Errorf("journal: %w", serr)
			}
			l.stats.CompactSoftErrors++
		} else {
			l.f.Close()
			l.f = nf
			l.segNum = 0
		}
	}
	l.segs = []string{segName(l.segNum)}
	// Remove every retired segment still on disk — including leftovers from
	// an earlier Compact whose removal failed, which the directory listing
	// (not l.segs) resurfaces for retry.
	if nums, lerr := l.listSegments(); lerr == nil {
		for _, n := range nums {
			if n == l.segNum {
				continue
			}
			if rerr := l.fs.Remove(filepath.Join(l.dir, segName(n))); rerr != nil {
				// The stale segment's records re-apply after the snapshot on
				// the next boot — an older-but-consistent state.
				l.stats.CompactSoftErrors++
			}
		}
	} else {
		l.stats.CompactSoftErrors++
	}
	l.syncDir(&l.stats.CompactSoftErrors)
	l.size = 0
	l.total = 0
	l.recs = 0
	l.pending = 0
	l.wedged = false
	l.stats.Segments = len(l.segs)
	l.stats.SnapshotBytes = len(payload)
	return nil
}

// Size returns the journal's intact size in bytes across all segments.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Records returns the journal records appended since Open or the last
// Compact (including the intact records found at Open).
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Segments returns the current segment file names, oldest first (exposed for
// tests and the soak harness's prefix sweeps).
func (l *Log) Segments() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.segs...)
}

// Policy returns the durability policy the log runs under.
func (l *Log) Policy() Policy { return l.policy }

// Stats returns the accounting accumulated so far.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Dir returns the state directory path.
func (l *Log) Dir() string { return l.dir }

// Close drains the committer, syncs and closes the active segment, and
// releases the state-dir lock. The Log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	stopc, donec := l.stopc, l.donec
	l.stopc, l.donec = nil, nil
	l.mu.Unlock()
	if stopc != nil {
		close(stopc)
		<-donec
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if err == nil {
		l.stats.Fsyncs++
		l.pending = 0
	} else {
		l.stats.FsyncErrors++
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	releaseLock(l.lock)
	l.lock = nil
	return err
}
