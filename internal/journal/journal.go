// Package journal is a durable, crash-tolerant state store: an append-only,
// length-prefixed, CRC32C-checksummed record log paired with an atomically
// replaced snapshot file. It is the persistence floor under the lifecycle
// manager — slot transitions are appended as they happen, the full state is
// periodically compacted into the snapshot, and recovery replays
// snapshot + journal.
//
// The design goal is that corruption is never fatal. A torn write (the
// process was SIGKILLed mid-append, the disk filled, the file was truncated)
// leaves a record whose length prefix, checksum, or payload is incomplete;
// Open detects the damage, counts it, discards the broken tail, and truncates
// the file back to its last intact record so subsequent appends start from a
// clean boundary. A corrupt or missing snapshot degrades to "no snapshot".
// The caller always gets a working log plus an honest accounting of what was
// lost — it never gets an error that would prevent startup.
//
// On-disk format, both files:
//
//	record := u32le payload length | u32le CRC32C(payload) | payload
//
// The journal is a sequence of records; the snapshot file holds exactly one.
// Payload contents are opaque to this package.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	journalName  = "journal.log"
	snapshotName = "snapshot.db"
	snapshotTmp  = "snapshot.tmp"

	headerSize = 8 // u32 length + u32 crc

	// maxRecordSize bounds a single record so a corrupt length prefix cannot
	// drive a multi-gigabyte allocation during replay.
	maxRecordSize = 1 << 28
)

// castagnoli is the CRC32C polynomial table (iSCSI/ext4 flavor, hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of payload (exposed for tests).
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// Stats accounts for what Open and Replay observed.
type Stats struct {
	// Records is the number of intact journal records found at Open.
	Records int
	// CorruptRecords counts discarded damage: a torn/corrupt journal tail
	// (counted once per Open that finds one) and an unreadable snapshot.
	CorruptRecords int
	// TruncatedBytes is how many trailing journal bytes were discarded.
	TruncatedBytes int64
	// SnapshotBytes is the size of the valid snapshot payload (0 if none).
	SnapshotBytes int
}

// Log is an open state directory. All methods are safe for concurrent use.
type Log struct {
	mu    sync.Mutex
	dir   string
	f     *os.File
	lock  *os.File // held flock on the state dir; see lock.go
	size  int64    // current journal size in bytes
	recs  int      // records appended since Open or the last Compact
	stats Stats
}

// Open opens (creating if needed) the state directory and its journal,
// repairing any torn tail. It never fails because of corrupt contents — only
// on real I/O errors (permissions, not a directory, ...) or when another
// live process holds the directory's advisory lock (two daemons must not
// share one journal; the error names the holder's pid). The lock dies with
// the holding process, so a SIGKILLed owner never blocks a restart.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	// A leftover snapshot.tmp is a compaction that died before its atomic
	// rename; the snapshot proper is still the authoritative previous one.
	_ = os.Remove(filepath.Join(dir, snapshotTmp))

	l := &Log{dir: dir, lock: lock}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		releaseLock(lock)
		return nil, fmt.Errorf("journal: %w", err)
	}
	l.f = f

	valid, recs, err := scanRecords(f, nil)
	if err != nil {
		f.Close()
		releaseLock(lock)
		return nil, fmt.Errorf("journal: scanning %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		releaseLock(lock)
		return nil, fmt.Errorf("journal: %w", err)
	}
	if torn := fi.Size() - valid; torn > 0 {
		// Torn or corrupt tail: discard it so the next append lands on a
		// record boundary.
		l.stats.CorruptRecords++
		l.stats.TruncatedBytes = torn
		if err := f.Truncate(valid); err != nil {
			f.Close()
			releaseLock(lock)
			return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		releaseLock(lock)
		return nil, fmt.Errorf("journal: %w", err)
	}
	l.size = valid
	l.recs = recs
	l.stats.Records = recs
	return l, nil
}

// scanRecords walks the record stream in r, invoking fn (when non-nil) with
// each intact payload. It returns the byte offset of the end of the last
// intact record and the record count. Damage is not an error — the scan just
// stops at it.
func scanRecords(r io.ReadSeeker, fn func(payload []byte) error) (valid int64, records int, err error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// Clean EOF or a torn header: either way the stream ends here.
			return valid, records, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordSize {
			return valid, records, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return valid, records, nil // torn payload
		}
		if Checksum(payload) != want {
			return valid, records, nil // bit rot or a torn overwrite
		}
		valid += headerSize + int64(n)
		records++
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, records, err
			}
		}
	}
}

// Append writes one record to the journal. With sync set the record is
// fsynced before returning — use it for transitions that must survive a
// machine crash, not just a process crash.
func (l *Log) Append(payload []byte, sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("journal: closed")
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], Checksum(payload))
	copy(buf[headerSize:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.recs++
	if sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	return nil
}

// Sync flushes the journal file to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("journal: closed")
	}
	return l.f.Sync()
}

// Replay invokes fn with every intact journal record in append order. It
// stops early if fn returns an error and returns that error.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("journal: closed")
	}
	_, _, err := scanRecords(l.f, fn)
	// Reposition for appends whether or not fn failed.
	if _, serr := l.f.Seek(0, io.SeekEnd); err == nil && serr != nil {
		err = fmt.Errorf("journal: %w", serr)
	}
	return err
}

// Snapshot returns the payload of the snapshot file, or ok=false when there
// is none (missing, torn, or corrupt — corruption is counted, not fatal).
func (l *Log) Snapshot() (payload []byte, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	path := filepath.Join(l.dir, snapshotName)
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var got []byte
	valid, records, _ := scanRecords(f, func(p []byte) error {
		got = p
		return nil
	})
	if records == 0 {
		// A snapshot file exists but holds no intact record: corruption.
		l.stats.CorruptRecords++
		return nil, false
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		// Trailing garbage after the record — count it, keep the record.
		l.stats.CorruptRecords++
	}
	l.stats.SnapshotBytes = len(got)
	return got, true
}

// Compact atomically replaces the snapshot with payload and truncates the
// journal: write snapshot.tmp, fsync, rename over snapshot.db, fsync the
// directory, then cut the journal back to empty. A crash at any point leaves
// either the old snapshot + old journal or the new snapshot (+ the old
// journal, whose records are then harmlessly re-applied on top of the newer
// snapshot — callers' records must be idempotent upserts, which the
// lifecycle's full-slot-state records are).
func (l *Log) Compact(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("journal: closed")
	}
	tmp := filepath.Join(l.dir, snapshotTmp)
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], Checksum(payload))
	copy(buf[headerSize:], payload)
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	tf, err := os.Open(tmp)
	if err == nil {
		_ = tf.Sync()
		tf.Close()
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	if dh, err := os.Open(l.dir); err == nil {
		_ = dh.Sync() // best effort; not all filesystems support dir fsync
		dh.Close()
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: compact truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.size = 0
	l.recs = 0
	l.stats.SnapshotBytes = len(payload)
	return nil
}

// Size returns the journal's current size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the journal records appended since Open or the last
// Compact (including the intact records found at Open).
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Stats returns the accounting accumulated so far.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Dir returns the state directory path.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the journal file and releases the state-dir lock.
// The Log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	releaseLock(l.lock)
	l.lock = nil
	return err
}
