package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	recs := [][]byte{[]byte("alpha"), {}, []byte("gamma with a longer payload"), {0, 1, 2, 0xff}}
	for i, r := range recs {
		if err := l.Append(r, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	got := replayAll(t, l)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, no corruption.
	l2 := mustOpen(t, dir)
	defer l2.Close()
	if st := l2.Stats(); st.Records != len(recs) || st.CorruptRecords != 0 {
		t.Fatalf("reopen stats = %+v, want %d records, 0 corrupt", st, len(recs))
	}
	got = replayAll(t, l2)
	if len(got) != len(recs) {
		t.Fatalf("replay after reopen: %d records, want %d", len(got), len(recs))
	}
	// Appends after reopen land on a clean boundary.
	if err := l2.Append([]byte("post-reopen"), true); err != nil {
		t.Fatal(err)
	}
	if got = replayAll(t, l2); len(got) != len(recs)+1 {
		t.Fatalf("after post-reopen append: %d records, want %d", len(got), len(recs)+1)
	}
}

// TestTornTailSweep is the crash-injection core: truncate the journal at
// every possible byte length and prove Open always succeeds, recovers every
// record before the cut, and reports damage iff the cut fell mid-record.
func TestTornTailSweep(t *testing.T) {
	base := t.TempDir()
	seed := filepath.Join(base, "seed")
	l := mustOpen(t, seed)
	recs := [][]byte{[]byte("one"), []byte("two-longer"), []byte("three")}
	boundaries := map[int64]int{0: 0} // valid prefix length → record count
	var total int64
	for i, r := range recs {
		if err := l.Append(r, false); err != nil {
			t.Fatal(err)
		}
		total += headerSize + int64(len(r))
		boundaries[total] = i + 1
	}
	l.Close()
	blob, err := os.ReadFile(filepath.Join(seed, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) != total {
		t.Fatalf("journal is %d bytes, want %d", len(blob), total)
	}

	for cut := int64(0); cut <= total; cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, journalName), blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lc, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at %d: Open failed: %v", cut, err)
		}
		wantRecs := 0
		wantCorrupt := 1
		// Walk back to the last record boundary at or before the cut.
		for b, n := range boundaries {
			if b <= cut && n > wantRecs {
				wantRecs = n
			}
		}
		if _, atBoundary := boundaries[cut]; atBoundary {
			wantCorrupt = 0
		}
		st := lc.Stats()
		if st.Records != wantRecs || st.CorruptRecords != wantCorrupt {
			t.Errorf("cut at %d: stats %+v, want %d records / %d corrupt",
				cut, st, wantRecs, wantCorrupt)
		}
		if got := replayAll(t, lc); len(got) != wantRecs {
			t.Errorf("cut at %d: replayed %d records, want %d", cut, len(got), wantRecs)
		}
		// The log must be append-ready: a new record replays after the
		// surviving prefix.
		if err := lc.Append([]byte("fresh"), false); err != nil {
			t.Errorf("cut at %d: append after repair: %v", cut, err)
		}
		if got := replayAll(t, lc); len(got) != wantRecs+1 ||
			!bytes.Equal(got[len(got)-1], []byte("fresh")) {
			t.Errorf("cut at %d: post-repair replay wrong: %d records", cut, len(got))
		}
		lc.Close()
	}
}

// TestBitFlipTail proves in-place corruption (not just truncation) of the
// last record is detected and discarded without losing earlier records.
func TestBitFlipTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	if err := l.Append([]byte("keep me"), false); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("flip me"), false); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, journalName)
	blob, _ := os.ReadFile(path)
	blob[len(blob)-1] ^= 0x40
	os.WriteFile(path, blob, 0o644)

	l2 := mustOpen(t, dir)
	defer l2.Close()
	st := l2.Stats()
	if st.Records != 1 || st.CorruptRecords != 1 {
		t.Fatalf("stats = %+v, want 1 record / 1 corrupt", st)
	}
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "keep me" {
		t.Fatalf("replay = %q, want [keep me]", got)
	}
}

func TestHugeLengthPrefixIsCorruptNotOOM(t *testing.T) {
	dir := t.TempDir()
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<31) // absurd length
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, journalName), hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	l := mustOpen(t, dir)
	defer l.Close()
	if st := l.Stats(); st.Records != 0 || st.CorruptRecords != 1 {
		t.Fatalf("stats = %+v, want 0 records / 1 corrupt", st)
	}
}

func TestSnapshotCompactCycle(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	if _, ok := l.Snapshot(); ok {
		t.Fatal("fresh dir reports a snapshot")
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec%d", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact([]byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 || l.Size() != 0 {
		t.Fatalf("journal not reset after compact: %d records, %d bytes", l.Records(), l.Size())
	}
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("journal still replays %d records after compact", len(got))
	}
	snap, ok := l.Snapshot()
	if !ok || string(snap) != "state-v1" {
		t.Fatalf("snapshot = %q, %v; want state-v1", snap, ok)
	}
	// Post-compact appends accumulate on the fresh journal.
	if err := l.Append([]byte("delta"), true); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := mustOpen(t, dir)
	defer l2.Close()
	snap, ok = l2.Snapshot()
	if !ok || string(snap) != "state-v1" {
		t.Fatalf("snapshot after reopen = %q, %v", snap, ok)
	}
	if got := replayAll(t, l2); len(got) != 1 || string(got[0]) != "delta" {
		t.Fatalf("journal after reopen = %q, want [delta]", got)
	}
}

func TestCorruptSnapshotDegradesToNone(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	if err := l.Compact([]byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, snapshotName)
	blob, _ := os.ReadFile(path)
	blob[headerSize] ^= 0xff // corrupt the payload under the CRC
	os.WriteFile(path, blob, 0o644)

	l2 := mustOpen(t, dir)
	defer l2.Close()
	if _, ok := l2.Snapshot(); ok {
		t.Fatal("corrupt snapshot accepted")
	}
	if st := l2.Stats(); st.CorruptRecords != 1 {
		t.Fatalf("corrupt snapshot not counted: %+v", st)
	}
}

func TestLeftoverSnapshotTmpIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	if err := l.Compact([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a compaction that crashed after writing the temp file but
	// before the rename: the committed snapshot must win.
	if err := os.WriteFile(filepath.Join(dir, snapshotTmp), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir)
	defer l2.Close()
	snap, ok := l2.Snapshot()
	if !ok || string(snap) != "committed" {
		t.Fatalf("snapshot = %q, %v; want committed", snap, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !os.IsNotExist(err) {
		t.Fatalf("snapshot.tmp not cleaned up: %v", err)
	}
}

// FuzzOpenReplay feeds arbitrary bytes as a journal file and requires that
// Open + Replay never panic, never error, and only ever yield records whose
// checksums genuinely match.
func FuzzOpenReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5})
	good := make([]byte, headerSize+3)
	binary.LittleEndian.PutUint32(good[0:4], 3)
	binary.LittleEndian.PutUint32(good[4:8], Checksum([]byte("abc")))
	copy(good[headerSize:], "abc")
	f.Add(good)
	f.Add(append(append([]byte(nil), good...), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, blob []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), blob, 0o644); err != nil {
			t.Skip()
		}
		// Arbitrary snapshot garbage too: Snapshot must degrade, not fail.
		if len(blob) > 4 {
			os.WriteFile(filepath.Join(dir, snapshotName), blob[4:], 0o644)
		}
		l, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on fuzzed bytes: %v", err)
		}
		defer l.Close()
		l.Snapshot()
		n := 0
		if err := l.Replay(func(p []byte) error { n++; return nil }); err != nil {
			t.Fatalf("Replay on fuzzed bytes: %v", err)
		}
		if st := l.Stats(); n != st.Records {
			t.Fatalf("replayed %d records but stats say %d", n, st.Records)
		}
		// The repaired log must accept appends.
		if err := l.Append([]byte("x"), false); err != nil {
			t.Fatalf("append after fuzzed open: %v", err)
		}
	})
}
