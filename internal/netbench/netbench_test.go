package netbench

import (
	"testing"

	"merlin/internal/ebpf"
)

// cheapProg drops everything after a header check.
func cheapProg() *ebpf.Program {
	return &ebpf.Program{Name: "cheap", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	}}
}

// expensiveProg burns cycles on memory traffic.
func expensiveProg() *ebpf.Program {
	insns := []ebpf.Instruction{ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0)}
	for i := 0; i < 40; i++ {
		insns = append(insns,
			ebpf.Mov64Imm(ebpf.R3, int32(i)),
			ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, int16(-8*(i%32+1)), ebpf.R3),
			ebpf.LoadMem(ebpf.SizeDW, ebpf.R4, ebpf.R10, int16(-8*(i%32+1))),
		)
	}
	insns = append(insns, ebpf.Mov64Imm(ebpf.R0, 1), ebpf.Exit())
	return &ebpf.Program{Name: "expensive", Hook: ebpf.HookXDP, Insns: insns}
}

func TestTraceDeterministic(t *testing.T) {
	a, b := NewTrace(50, 3), NewTrace(50, 3)
	for i := range a.Packets {
		if string(a.Packets[i]) != string(b.Packets[i]) {
			t.Fatal("traces differ for the same seed")
		}
		if len(a.Packets[i]) != 64 {
			t.Fatalf("packet %d size %d, want 64", i, len(a.Packets[i]))
		}
	}
	c := NewTrace(50, 4)
	if string(a.Packets[0]) == string(c.Packets[0]) {
		t.Fatal("different seeds should differ")
	}
}

func TestProfileThroughputOrdering(t *testing.T) {
	tr := NewTrace(100, 1)
	cheap, err := ProfileProgram(cheapProg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := ProfileProgram(expensiveProg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.ThroughputMpps() <= exp.ThroughputMpps() {
		t.Fatalf("cheap %.3f Mpps should beat expensive %.3f Mpps",
			cheap.ThroughputMpps(), exp.ThroughputMpps())
	}
	if cheap.MeanCycles <= 0 || exp.MeanCycles <= cheap.MeanCycles {
		t.Fatalf("cycle ordering wrong: %f vs %f", cheap.MeanCycles, exp.MeanCycles)
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	tr := NewTrace(100, 1)
	pr, err := ProfileProgram(cheapProg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	clang := pr.ThroughputMpps() * 0.8 // pretend baseline
	best := pr.ThroughputMpps()
	prev := 0.0
	for l := LoadLow; l <= LoadSaturate; l++ {
		lat := pr.LatencyUS(OfferedRate(l, clang, best))
		if lat <= 0 {
			t.Fatalf("%s latency = %f", l, lat)
		}
		if lat < prev {
			t.Fatalf("latency decreased at %s: %f < %f", l, lat, prev)
		}
		prev = lat
	}
	// The queueing component must explode at saturation (the wire component
	// is constant, so compare queueing delays).
	low := pr.LatencyUS(OfferedRate(LoadLow, clang, best)) - wireLatencyUS
	sat := pr.LatencyUS(OfferedRate(LoadSaturate, clang, best)) - wireLatencyUS
	if sat < low*100 {
		t.Fatalf("saturate queueing %.3f should dwarf low %.3f", sat, low)
	}
}

func TestContextSwitchesScaleWithProgramCost(t *testing.T) {
	tr := NewTrace(100, 1)
	cheap, _ := ProfileProgram(cheapProg(), tr)
	exp, _ := ProfileProgram(expensiveProg(), tr)
	rate := 1e6 // same offered load
	if cheap.ContextSwitches(rate, 5) >= exp.ContextSwitches(rate, 5) {
		t.Fatal("longer programs should context-switch more at equal load")
	}
}

func TestHWCountersPopulated(t *testing.T) {
	tr := NewTrace(100, 1)
	pr, err := ProfileProgram(expensiveProg(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if pr.CacheRefsPer1k() <= 0 {
		t.Fatal("cache refs missing")
	}
	if pr.BranchMissesPer1k() < 0 {
		t.Fatal("branch misses negative")
	}
}

func TestLoadStrings(t *testing.T) {
	want := []string{"low", "medium", "high", "saturate"}
	for i, l := range []Load{LoadLow, LoadMedium, LoadHigh, LoadSaturate} {
		if l.String() != want[i] {
			t.Errorf("load %d = %q", i, l.String())
		}
	}
}
