package netbench

import (
	"fmt"
	"time"

	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// This file measures host-side interpreter speed — the wall-clock cost of
// executing the XDP program on the machine running the testbed — as opposed
// to Profile's modelled DUT cycles. It is the measurement behind the
// pre-decoded engine's throughput gate: the batch serving path (RunBatch on
// the pre-decoded engine, context buffers reused) against the seed serving
// path (a context allocated per packet, fed to Run on the reference switch
// interpreter).

// DefaultBatchSize is the packets-per-RunBatch call used by batch serving.
const DefaultBatchSize = 64

// HostProfile reports wall-clock execution speed of a program over a trace.
type HostProfile struct {
	Mode        string // "single" (seed path) or "batch"
	Engine      string // vm engine that executed ("ref" or "fast")
	Packets     int
	Elapsed     time.Duration
	NsPerPacket float64
}

// HostMpps is the measured host throughput in millions of packets/second.
func (p *HostProfile) HostMpps() float64 {
	if p.NsPerPacket == 0 {
		return 0
	}
	return 1e3 / p.NsPerPacket
}

// MeasureHostSingle replays the single-packet serving loop for at least
// minDur: every packet gets a freshly allocated XDP context and one Run
// call on the reference switch interpreter, in the deployment (no hardware
// models) configuration. This isolates the engine+batch win against the
// seed interpreter on equal footing.
func MeasureHostSingle(prog *ebpf.Program, tr *Trace, minDur time.Duration) (*HostProfile, error) {
	return measureHostSingle(prog, tr, minDur, "single", vm.Config{Seed: 1234})
}

// MeasureHostSingleModelled replays the seed merlin-bench serving loop
// exactly as ProfileProgram ran it before batch serving existed: reference
// interpreter, per-packet context allocation, cache and branch-predictor
// models charged on every access. This is the "before" of the end-to-end
// before/after comparison.
func MeasureHostSingleModelled(prog *ebpf.Program, tr *Trace, minDur time.Duration) (*HostProfile, error) {
	return measureHostSingle(prog, tr, minDur, "seed", vm.Config{Seed: 1234, UseHW: true})
}

func measureHostSingle(prog *ebpf.Program, tr *Trace, minDur time.Duration, mode string, cfg vm.Config) (*HostProfile, error) {
	m, err := vm.NewRef(prog, cfg)
	if err != nil {
		return nil, err
	}
	// Warm-up (map state, branch history in the program's own tables).
	for _, pkt := range tr.Packets[:len(tr.Packets)/4+1] {
		if _, _, err := m.Run(vm.BuildXDPContext(len(pkt)), pkt); err != nil {
			return nil, fmt.Errorf("netbench: host single warmup: %w", err)
		}
	}
	packets := 0
	start := time.Now()
	var elapsed time.Duration
	for {
		for _, pkt := range tr.Packets {
			ctx := vm.BuildXDPContext(len(pkt))
			if _, _, err := m.Run(ctx, pkt); err != nil {
				return nil, fmt.Errorf("netbench: host single: %w", err)
			}
		}
		packets += len(tr.Packets)
		if elapsed = time.Since(start); elapsed >= minDur {
			break
		}
	}
	return &HostProfile{
		Mode:        mode,
		Engine:      m.Engine(),
		Packets:     packets,
		Elapsed:     elapsed,
		NsPerPacket: float64(elapsed.Nanoseconds()) / float64(packets),
	}, nil
}

// MeasureHostBatch serves the trace through RunBatch on the pre-decoded
// engine for at least minDur, batchSize packets per call, refreshing the
// reused context buffers in place between batches.
func MeasureHostBatch(prog *ebpf.Program, tr *Trace, batchSize int, minDur time.Duration) (*HostProfile, error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	m, err := vm.New(prog, vm.Config{Seed: 1234})
	if err != nil {
		return nil, err
	}
	for _, pkt := range tr.Packets[:len(tr.Packets)/4+1] {
		if _, _, err := m.Run(vm.BuildXDPContext(len(pkt)), pkt); err != nil {
			return nil, fmt.Errorf("netbench: host batch warmup: %w", err)
		}
	}
	ctxs := make([][]byte, batchSize)
	pkts := make([][]byte, batchSize)
	var out vm.Batch
	packets := 0
	start := time.Now()
	var elapsed time.Duration
	for {
		for base := 0; base < len(tr.Packets); base += batchSize {
			n := len(tr.Packets) - base
			if n > batchSize {
				n = batchSize
			}
			for i := 0; i < n; i++ {
				pkts[i] = tr.Packets[base+i]
				ctxs[i] = vm.BuildXDPContextInto(ctxs[i], len(pkts[i]))
			}
			if faults := m.RunBatch(ctxs[:n], pkts[:n], &out); faults != 0 {
				return nil, fmt.Errorf("netbench: host batch: %d packets faulted: %v",
					faults, firstBatchErr(out.Errs))
			}
			packets += n
		}
		if elapsed = time.Since(start); elapsed >= minDur {
			break
		}
	}
	return &HostProfile{
		Mode:        "batch",
		Engine:      m.Engine(),
		Packets:     packets,
		Elapsed:     elapsed,
		NsPerPacket: float64(elapsed.Nanoseconds()) / float64(packets),
	}, nil
}

func firstBatchErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
