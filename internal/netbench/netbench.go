// Package netbench reproduces the paper's network testbed (§5.1): a T-Rex
// style traffic generator driving a device under test, measuring MLFFR
// throughput (maximum loss-free forwarding rate) and loop latency under the
// paper's four load levels (low/medium/high/saturate). Packet processing
// cost comes from executing the XDP program on the VM; the queueing model
// then turns per-packet cycles into Mpps and microseconds.
package netbench

import (
	"fmt"
	"math/rand"

	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// CPUHz is the modelled DUT core frequency (xl170: Intel E5-2640v4, 2.4 GHz).
const CPUHz = 2.4e9

// wireLatencyUS is the fixed fiber+NIC round-trip component of the loop.
const wireLatencyUS = 35.0

// Load identifies the paper's latency workload levels.
type Load int

// Workload levels (§5.1, Throughput and Latency).
const (
	LoadLow Load = iota
	LoadMedium
	LoadHigh
	LoadSaturate
)

func (l Load) String() string {
	return [...]string{"low", "medium", "high", "saturate"}[l]
}

// Trace is a deterministic packet workload.
type Trace struct {
	Packets [][]byte
}

// NewTrace builds a 64-byte-packet trace (the MLFFR measurement size) with
// an IPv4/TCP mix and varied flow tuples.
func NewTrace(n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{}
	for i := 0; i < n; i++ {
		pkt := make([]byte, 64)
		rng.Read(pkt)
		pkt[12], pkt[13] = 0x08, 0x00 // IPv4
		pkt[14] = 0x45
		pkt[14+9] = 6 // TCP
		switch {
		case i%11 == 10:
			pkt[12], pkt[13] = 0x08, 0x06 // the odd ARP frame
		case i%7 == 6:
			pkt[14+9] = 17 // some UDP
		}
		// Keep total length plausible.
		pkt[14+2], pkt[14+3] = 0, 46
		tr.Packets = append(tr.Packets, pkt)
	}
	return tr
}

// Profile is the measured execution profile of a program over a trace.
type Profile struct {
	MeanCycles   float64
	Stats        vm.Stats // accumulated over the trace (hw counters included)
	PacketsRun   int
	ServiceTimeS float64 // seconds per packet
}

// ProfileProgram executes prog over the trace on a warm machine.
func ProfileProgram(prog *ebpf.Program, tr *Trace) (*Profile, error) {
	m, err := vm.New(prog, vm.Config{Seed: 1234, UseHW: true})
	if err != nil {
		return nil, err
	}
	// Warm-up pass (caches, branch predictor, map state).
	for _, pkt := range tr.Packets[:len(tr.Packets)/4+1] {
		ctx := vm.BuildXDPContext(len(pkt))
		if _, _, err := m.Run(ctx, pkt); err != nil {
			return nil, fmt.Errorf("netbench: warmup: %w", err)
		}
	}
	var total vm.Stats
	for _, pkt := range tr.Packets {
		ctx := vm.BuildXDPContext(len(pkt))
		_, st, err := m.Run(ctx, pkt)
		if err != nil {
			return nil, fmt.Errorf("netbench: %w", err)
		}
		total.Add(st)
	}
	mean := float64(total.Cycles) / float64(len(tr.Packets))
	return &Profile{
		MeanCycles:   mean,
		Stats:        total,
		PacketsRun:   len(tr.Packets),
		ServiceTimeS: mean / CPUHz,
	}, nil
}

// ThroughputMpps is the single-core MLFFR in millions of packets per second:
// the service rate of the bottleneck core.
func (p *Profile) ThroughputMpps() float64 {
	return 1.0 / p.ServiceTimeS / 1e6
}

// OfferedRate returns the offered load (pps) for a workload level, defined
// relative to the unoptimized pipeline's throughput as in §5.1:
// low < clang tput, medium = clang tput, high = best-found tput,
// saturate > high.
func OfferedRate(level Load, clangMpps, bestMpps float64) float64 {
	switch level {
	case LoadLow:
		return clangMpps * 0.9 * 1e6
	case LoadMedium:
		return clangMpps * 1e6
	case LoadHigh:
		return bestMpps * 1e6
	default: // saturate
		return bestMpps * 1.05 * 1e6
	}
}

// LatencyUS models the loop latency (µs) of the DUT at an offered rate,
// using an M/D/1 queue with a bounded ring buffer: below saturation the
// Pollaczek-Khinchine delay applies; past saturation the latency is the
// full ring drain time.
func (p *Profile) LatencyUS(offeredPPS float64) float64 {
	const ringSlots = 4096
	mu := 1.0 / p.ServiceTimeS
	rho := offeredPPS / mu
	serviceUS := p.ServiceTimeS * 1e6
	if rho >= 0.999 {
		// Saturated: the queue stays full.
		return wireLatencyUS + float64(ringSlots)*serviceUS
	}
	wait := serviceUS * rho / (2 * (1 - rho)) // M/D/1 queueing delay
	if maxWait := float64(ringSlots) * serviceUS; wait > maxWait {
		wait = maxWait
	}
	return wireLatencyUS + serviceUS + wait
}

// ContextSwitches models scheduler preemptions of the DUT core over a
// window: proportional to the cycles consumed servicing the offered load
// (longer programs hold the core longer and get preempted more), plus a
// housekeeping floor.
func (p *Profile) ContextSwitches(offeredPPS float64, windowS float64) float64 {
	served := offeredPPS
	if mu := 1.0 / p.ServiceTimeS; served > mu {
		served = mu
	}
	busyFrac := served * p.ServiceTimeS
	return windowS * (120 + 3800*busyFrac)
}

// CacheMissesPer1k returns the cache misses per 1000 packets from the
// profiled hardware counters.
func (p *Profile) CacheMissesPer1k() float64 {
	return float64(p.Stats.CacheMisses) / float64(p.PacketsRun) * 1000
}

// CacheRefsPer1k returns cache references per 1000 packets.
func (p *Profile) CacheRefsPer1k() float64 {
	return float64(p.Stats.CacheRefs) / float64(p.PacketsRun) * 1000
}

// BranchMissesPer1k returns branch mispredictions per 1000 packets.
func (p *Profile) BranchMissesPer1k() float64 {
	return float64(p.Stats.BranchMisses) / float64(p.PacketsRun) * 1000
}
