package clitest

import (
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMerlindFlagValidation: malformed lifecycle/durability flags are refused
// at startup with exit code 2 and a diagnostic naming the flag, instead of
// being silently clamped or defaulted.
func TestMerlindFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	cases := []struct {
		name  string
		flags []string
		want  string
	}{
		{"compact-every zero", []string{"-compact-every", "0"}, "-compact-every must be positive"},
		{"compact-every negative", []string{"-compact-every", "-7"}, "-compact-every must be positive"},
		{"canary-fraction high", []string{"-canary-fraction", "1.5"}, "-canary-fraction must be in [0, 1]"},
		{"canary-fraction negative", []string{"-canary-fraction", "-0.1"}, "-canary-fraction must be in [0, 1]"},
		{"canary-fraction NaN", []string{"-canary-fraction", "NaN"}, "-canary-fraction must be in [0, 1]"},
		{"backoff negative", []string{"-backoff", "-1s"}, "-backoff must be positive"},
		{"backoff zero", []string{"-backoff", "0s"}, "-backoff must be positive"},
		{"fsync-policy unknown", []string{"-fsync-policy", "eventually"}, "-fsync-policy"},
		{"fsync-interval negative", []string{"-fsync-interval", "-1ms"}, "-fsync-interval must be positive"},
		{"fsync-batch zero", []string{"-fsync-batch", "0"}, "-fsync-batch must be positive"},
		{"segment-bytes zero", []string{"-journal-segment-bytes", "0"}, "-journal-segment-bytes must be positive"},
		{"rejoin-every zero", []string{"-rejoin-every", "0s"}, "-rejoin-every must be positive"},
		{"rejoin-every negative", []string{"-rejoin-every", "-1s"}, "-rejoin-every must be positive"},
		{"replication zero", []string{"-replication", "0"}, "-replication must be at least 1"},
		{"replication negative", []string{"-replication", "-2"}, "-replication must be at least 1"},
		{"control-token whitespace", []string{"-control-token", "two words"}, "-control-token must not contain whitespace"},
		{"name whitespace", []string{"-name", "w 1"}, "-name must not contain whitespace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := runScript(t, bin, "quit\n", tc.flags...)
			if err == nil {
				t.Fatalf("merlind accepted %v:\n%s", tc.flags, out)
			}
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
				t.Errorf("exit = %v, want exit code 2", err)
			}
			if !strings.Contains(out, tc.want) {
				t.Errorf("diagnostic missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestMerlindDegradedStartup: an unusable -state-dir (a regular file blocks
// a path component, so MkdirAll fails even for root) must NOT prevent
// startup — the daemon serves in-memory, reports the degradation in status
// and /metrics, and re-attaches the journal once the path becomes writable.
// After a clean exit the journal holds the full state, proving the
// re-attachment re-persisted the slots deployed during the outage.
func TestMerlindDegradedStartup(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	root := t.TempDir()
	blocker := filepath.Join(root, "blocker")
	if err := os.WriteFile(blocker, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	state := filepath.Join(blocker, "state")

	d := startDaemon(t, bin, "-state-dir", state, "-listen", "127.0.0.1:0",
		"-shadow", "2", "-canary", "2")
	d.waitFor("merlind: -state-dir unavailable")
	addr := strings.TrimPrefix(d.waitFor("ok listen "), "ok listen ")

	// Full lifecycle works while storage is broken.
	d.send("deploy lb corpus:xdp1")
	d.waitFor("ok deploy lb")
	d.send("traffic lb 4")
	d.waitFor("ok traffic lb")
	d.send("status")
	if line := d.waitFor("journal="); !strings.HasPrefix(line, "journal=degraded") {
		t.Fatalf("status health = %q, want journal=degraded", line)
	}
	d.waitFor("ok status")

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	series := parseMetrics(t, body.String())
	if got := series["merlin_journal_degraded"]; got != 1 {
		t.Errorf("merlin_journal_degraded = %d, want 1:\n%s", got, body.String())
	}
	if series["merlin_journal_degradations_total"] == 0 {
		t.Error("no degradation counted")
	}

	// Clear the blockage; the re-open loop (250ms backoff, doubling) should
	// attach the journal and re-persist the slot.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		d.send("status")
		line := d.waitFor("journal=")
		d.waitFor("ok status")
		if strings.HasPrefix(line, "journal=ok") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never re-attached; last health %q\n%s", line, d.log.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	d.send("quit")
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v\n%s", err, d.log.String())
	}

	// The state deployed during the outage survived to disk: a fresh daemon
	// recovers slot lb without re-deploying.
	out, err := runScript(t, bin, "status\nquit\n", "-state-dir", state)
	if err != nil {
		t.Fatalf("recovery run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok recover") || !strings.Contains(out, "lb") {
		t.Errorf("recovered state missing slot lb:\n%s", out)
	}
}

// TestMerlindGroupCommitPolicy: the group-commit durability policy round-trips
// through a full deploy → promote → restart cycle; recovery still sees the
// promoted generation because stage transitions force their own fsync.
func TestMerlindGroupCommitPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	state := filepath.Join(t.TempDir(), "state")
	script := strings.Join([]string{
		"deploy lb corpus:xdp1",
		"traffic lb 4",
		"deploy lb corpus:xdp1",
		"traffic lb 8",
		"promote lb",
		"quit",
	}, "\n") + "\n"
	out, err := runScript(t, bin, script,
		"-state-dir", state, "-fsync-policy", "group-commit",
		"-journal-segment-bytes", "4096", "-shadow", "2", "-canary", "2")
	if err != nil {
		t.Fatalf("group-commit run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok promote lb live=gen2") {
		t.Fatalf("promotion missing:\n%s", out)
	}

	out, err = runScript(t, bin, "status\nquit\n", "-state-dir", state)
	if err != nil {
		t.Fatalf("recovery run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "live=gen2") {
		t.Errorf("recovered state lost the promoted generation:\n%s", out)
	}
}
