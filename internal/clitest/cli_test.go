// Package clitest exercises the command-line tools end to end: it builds
// the real binaries and drives the merlinc → merlin-objdump → merlin-verify
// workflow on a sample program, asserting on their stdout.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const sampleIR = `module "cli"
map @hits : array key=4 value=8 max=4

func count(%ctx: ptr) -> i64 {
entry:
  %key = alloca 4, align 4
  %vslot = alloca 8, align 8
  store i32 %key, 0, align 4
  %data = load ptr, %ctx, align 8
  %endp = gep %ctx, 8
  %end = load ptr, %endp, align 8
  %lim = bin add i64 %data, 14
  %short = icmp ugt i64 %lim, %end
  condbr %short, drop, count
drop:
  ret 1
count:
  %mp = mapptr @hits
  %v = call 1, %mp, %key
  store i64 %vslot, %v, align 8
  %null = icmp eq i64 %v, 0
  condbr %null, drop, bump
bump:
  %vp = load ptr, %vslot, align 8
  %old = load i64, %vp, align 8
  %new = bin add i64 %old, 1
  store i64 %vp, %new, align 8
  ret 2
}
`

// buildTools compiles the three binaries once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"merlinc", "merlin-objdump", "merlin-verify"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "merlin/cmd/"+tool)
		cmd.Dir = repoRoot(t)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCompileObjdumpVerifyPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "count.mir")
	if err := os.WriteFile(src, []byte(sampleIR), 0o644); err != nil {
		t.Fatal(err)
	}
	obj := filepath.Join(dir, "count.json")
	base := filepath.Join(dir, "base.json")

	out := run(t, filepath.Join(bins, "merlinc"), "-o", obj, "-baseline", base, "-S", src)
	for _, want := range []string{"DAO", "CP&DCE", "NI:", "reduction", "verifier:"} {
		if !strings.Contains(out, want) {
			t.Errorf("merlinc output missing %q:\n%s", want, out)
		}
	}

	dump := run(t, filepath.Join(bins, "merlin-objdump"), obj)
	for _, want := range []string{"program count", "hook=xdp", "map 0: hits", "exit"} {
		if !strings.Contains(dump, want) {
			t.Errorf("objdump output missing %q:\n%s", want, dump)
		}
	}

	for _, kernel := range []string{"5.19", "6.5"} {
		v := run(t, filepath.Join(bins, "merlin-verify"), "-kernel", kernel, obj)
		if !strings.Contains(v, "verdict: ACCEPTED") {
			t.Errorf("kernel %s rejected:\n%s", kernel, v)
		}
		if !strings.Contains(v, "insn_processed:") {
			t.Errorf("missing NPI in output:\n%s", v)
		}
	}

	// The optimized program must be smaller than the baseline object.
	baseDump := run(t, filepath.Join(bins, "merlin-objdump"), base)
	baseNI := extractNI(t, baseDump)
	optNI := extractNI(t, dump)
	if optNI >= baseNI {
		t.Errorf("optimized NI %d not smaller than baseline %d", optNI, baseNI)
	}
}

func extractNI(t *testing.T, dump string) int {
	t.Helper()
	i := strings.Index(dump, "NI=")
	if i < 0 {
		t.Fatalf("no NI in dump:\n%s", dump)
	}
	n := 0
	for _, c := range dump[i+3:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestMerlincDisableFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "count.mir")
	if err := os.WriteFile(src, []byte(sampleIR), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, filepath.Join(bins, "merlinc"),
		"-disable", "DAO,MoF,CP&DCE,SLM,CC,PO", src)
	if !strings.Contains(out, "0.0% reduction") {
		t.Errorf("fully disabled pipeline should not reduce:\n%s", out)
	}
}

func TestMerlincRejectsBadInput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.mir")
	if err := os.WriteFile(src, []byte("not ir at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(bins, "merlinc"), src)
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("bad input accepted:\n%s", out)
	}
}
