package clitest

import (
	"bufio"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// interactiveDaemon is a merlind run driven command by command: send writes
// one line to stdin, waitFor scans stdout until a prefix appears (the
// transcript so far is returned on failure).
type interactiveDaemon struct {
	t     *testing.T
	cmd   *exec.Cmd
	stdin io.WriteCloser
	sc    *bufio.Scanner
	log   strings.Builder
}

func startDaemon(t *testing.T, bin string, flags ...string) *interactiveDaemon {
	t.Helper()
	cmd := exec.Command(bin, flags...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &interactiveDaemon{t: t, cmd: cmd, stdin: stdin, sc: bufio.NewScanner(stdout)}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	return d
}

func (d *interactiveDaemon) send(line string) {
	d.t.Helper()
	if _, err := io.WriteString(d.stdin, line+"\n"); err != nil {
		d.t.Fatal(err)
	}
}

// waitFor reads stdout until a line starts with prefix, returning that line.
func (d *interactiveDaemon) waitFor(prefix string) string {
	d.t.Helper()
	for d.sc.Scan() {
		d.log.WriteString(d.sc.Text() + "\n")
		if strings.HasPrefix(d.sc.Text(), prefix) {
			return d.sc.Text()
		}
	}
	d.t.Fatalf("daemon exited before %q appeared:\n%s", prefix, d.log.String())
	return ""
}

// TestMerlindMetricsEndpoint: -listen serves the shared registry over HTTP.
// The scrape must parse as Prometheus text exposition, and counters must
// advance between scrapes as traffic is driven.
func TestMerlindMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	d := startDaemon(t, bin, "-listen", "127.0.0.1:0", "-shadow", "2", "-canary", "2")

	line := d.waitFor("ok listen ")
	addr := strings.TrimPrefix(line, "ok listen ")
	url := "http://" + addr + "/metrics"

	scrape := func() map[string]int64 {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("scrape %s: %v", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("scrape Content-Type = %q, want text/plain exposition", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return parseMetrics(t, string(body))
	}

	d.send("deploy lb corpus:xdp1")
	d.waitFor("ok deploy lb")
	d.send("traffic lb 6")
	d.waitFor("ok traffic lb")

	before := scrape()
	if got := before["merlin_vm_runs_total"]; got != 6 {
		t.Errorf("first scrape merlin_vm_runs_total = %d, want 6", got)
	}
	if got := before[`merlin_lifecycle_served_total{slot="lb"}`]; got != 6 {
		t.Errorf(`first scrape served_total{slot="lb"} = %d, want 6`, got)
	}

	d.send("traffic lb 4")
	d.waitFor("ok traffic lb")
	after := scrape()
	if got := after["merlin_vm_runs_total"]; got != 10 {
		t.Errorf("second scrape merlin_vm_runs_total = %d, want 10", got)
	}
	if after[`merlin_lifecycle_served_total{slot="lb"}`] <= before[`merlin_lifecycle_served_total{slot="lb"}`] {
		t.Error("served_total did not advance between scrapes")
	}

	// Non-GET is refused; the daemon itself keeps running.
	resp, err := http.Post(url, "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d, want 405", resp.StatusCode)
	}

	d.send("quit")
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v\n%s", err, d.log.String())
	}
	// Serve goroutine is gone with the process; a scrape now must fail.
	if _, err := (&http.Client{Timeout: time.Second}).Get(url); err == nil {
		t.Error("scrape succeeded after daemon exit")
	}
}

// TestMerlindStateDirLockContention: two daemons must never share one
// -state-dir. The second fails fast at startup with a diagnostic naming the
// conflict instead of interleaving journal appends.
func TestMerlindStateDirLockContention(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	state := filepath.Join(t.TempDir(), "state")

	d := startDaemon(t, bin, "-state-dir", state, "-shadow", "2", "-canary", "2")
	d.waitFor("ok recover")

	out, err := runScript(t, bin, "status\nquit\n", "-state-dir", state)
	if err == nil {
		t.Fatalf("second merlind on a held state dir succeeded:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("second merlind exit = %v, want exit code 2", err)
	}
	if !strings.Contains(out, "locked by another process") {
		t.Errorf("contention output lacks diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "held by pid") {
		t.Errorf("contention output lacks holder pid:\n%s", out)
	}

	// The incumbent is untouched and still answers commands; once it exits,
	// the state dir is free again.
	d.send("status")
	d.waitFor("ok status")
	d.send("quit")
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("incumbent exited uncleanly: %v\n%s", err, d.log.String())
	}
	out, err = runScript(t, bin, "status\nquit\n", "-state-dir", state)
	if err != nil {
		t.Fatalf("merlind on a released state dir failed: %v\n%s", err, out)
	}
}

// TestMerlindSuperoptFlags: a -superopt deploy goes through the full
// lifecycle and reports superoptimizer activity in the registry; pointing
// -superopt-cache at the -state-dir is refused (both are exclusively
// locked).
func TestMerlindSuperoptFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	cacheDir := filepath.Join(t.TempDir(), "socache")
	script := strings.Join([]string{
		"deploy lb corpus:xdp2",
		"traffic lb 6",
		"metrics",
		"quit",
	}, "\n") + "\n"
	out, err := runScript(t, bin, script,
		"-shadow", "2", "-canary", "2", "-superopt", "-superopt-cache", cacheDir)
	if err != nil {
		t.Fatalf("merlind -superopt failed: %v\n%s", err, out)
	}
	series := parseMetrics(t, out)
	if series["merlin_superopt_windows_total"] == 0 {
		t.Errorf("no superopt windows recorded:\n%s", out)
	}
	if series["merlin_superopt_cache_misses_total"] == 0 {
		t.Error("cold deploy recorded zero cache misses")
	}

	// Same cache, fresh daemon: the warm deploy must search nothing.
	out, err = runScript(t, bin, script,
		"-shadow", "2", "-canary", "2", "-superopt", "-superopt-cache", cacheDir)
	if err != nil {
		t.Fatalf("warm merlind -superopt failed: %v\n%s", err, out)
	}
	series = parseMetrics(t, out)
	if got := series["merlin_superopt_searches_total"]; got != 0 {
		t.Errorf("warm deploy ran %d searches, want 0", got)
	}
	if series["merlin_superopt_cache_hits_total"] == 0 {
		t.Error("warm deploy recorded zero cache hits")
	}

	state := filepath.Join(t.TempDir(), "shared")
	out, err = runScript(t, bin, "quit\n",
		"-state-dir", state, "-superopt", "-superopt-cache", state)
	if err == nil {
		t.Fatalf("-superopt-cache == -state-dir accepted:\n%s", out)
	}
	if !strings.Contains(out, "must be different directories") {
		t.Errorf("missing conflict diagnostic:\n%s", out)
	}
}
