package clitest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// collect reads daemon output until a line starts with terminator, returning
// every line read including it. Unlike waitFor it hands back the intermediate
// lines, which is what fleet/status assertions need.
func (d *interactiveDaemon) collect(terminator string) []string {
	d.t.Helper()
	var lines []string
	for d.sc.Scan() {
		d.log.WriteString(d.sc.Text() + "\n")
		lines = append(lines, d.sc.Text())
		if strings.HasPrefix(d.sc.Text(), terminator) {
			return lines
		}
	}
	d.t.Fatalf("daemon exited before %q appeared:\n%s", terminator, d.log.String())
	return nil
}

// TestMerlindFleet is the real-TCP end-to-end: a controller merlind and two
// worker merlinds on loopback. It drives a fleet-wide rolling deploy, routes
// traffic, SIGKILLs a worker and verifies graceful degradation plus rejoin,
// then SIGKILLs the controller mid-rollout and verifies the journal-recovered
// controller resumes and completes it.
func TestMerlindFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	state := filepath.Join(t.TempDir(), "ctl-state")

	ctl := startDaemon(t, bin, "-controller", "127.0.0.1:0", "-state-dir", state)
	ctl.waitFor("ok frecover ")
	ctlAddr := strings.TrimPrefix(ctl.waitFor("ok controller "), "ok controller ")

	workerFlags := func(name string) []string {
		return []string{"-join", ctlAddr, "-name", name, "-rejoin-every", "250ms",
			"-shadow", "2", "-canary", "2"}
	}
	w1 := startDaemon(t, bin, append(workerFlags("w1"), "-listen", "127.0.0.1:0")...)
	w1.waitFor("ok listen ")
	w1.waitFor("ok control ")
	w2 := startDaemon(t, bin, workerFlags("w2")...)
	w2.waitFor("ok control ")

	// The workers announce themselves; poll until both are admitted.
	waitWorkers := func(n string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			ctl.send("workers")
			line := ctl.waitFor("ok workers ")
			if strings.Contains(line, "n="+n+" ") || strings.HasSuffix(line, "n="+n) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet never reached %s workers: %s", n, line)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	waitWorkers("2")

	// Satellite check while we are here: the worker's status command reports
	// its HTTP listener health.
	w1.send("status")
	found := false
	for _, l := range w1.collect("ok status") {
		if strings.HasPrefix(l, "listener addr=") && strings.Contains(l, "up=true") {
			found = true
		}
	}
	if !found {
		t.Errorf("worker status lacks listener health line:\n%s", w1.log.String())
	}

	// A fleet-wide rolling deploy: every worker ends at the same version.
	ctl.send("fdeploy lb corpus:xdp1")
	ctl.waitFor("ok fdeploy lb")
	ctl.send("fwait")
	if line := ctl.waitFor("ok fwait "); !strings.Contains(line, "phase=done") {
		ctl.send("fevents")
		ctl.collect("ok fevents")
		t.Fatalf("rollout did not complete: %s\n%s", line, ctl.log.String())
	}

	ctl.send("ftraffic lb 16")
	if line := ctl.waitFor("ok ftraffic lb "); !strings.Contains(line, "sent=16") ||
		!strings.Contains(line, "dropped=0") {
		t.Fatalf("traffic fan-out = %s, want sent=16 dropped=0", line)
	}

	// SIGKILL w2: traffic reroutes with zero drops, the fleet degrades.
	if err := w2.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = w2.cmd.Wait()
	ctl.send("ftraffic lb 16")
	if line := ctl.waitFor("ok ftraffic lb "); !strings.Contains(line, "sent=16") ||
		!strings.Contains(line, "dropped=0") {
		t.Fatalf("traffic with a dead worker = %s, want sent=16 dropped=0", line)
	}
	degraded := func() bool {
		ctl.send("fleet")
		for _, l := range ctl.collect("ok fleet") {
			if l == "degraded=true" {
				return true
			}
		}
		return false
	}
	// One transport failure only makes w2 suspect; keep routing traffic so
	// consecutive failures demote it to down and the fleet reports degraded.
	deadline := time.Now().Add(10 * time.Second)
	for !degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never degraded after worker kill:\n%s", ctl.log.String())
		}
		ctl.send("ftraffic lb 16")
		if line := ctl.waitFor("ok ftraffic lb "); !strings.Contains(line, "dropped=0") {
			t.Fatalf("traffic with a dead worker = %s, want dropped=0", line)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Restart w2 fresh under the same name: its announce loop re-admits it
	// and reconcile pushes the blessed catalog version; degradation clears.
	w2 = startDaemon(t, bin, workerFlags("w2")...)
	w2.waitFor("ok control ")
	deadline = time.Now().Add(15 * time.Second)
	for degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered after worker rejoin:\n%s", ctl.log.String())
		}
		time.Sleep(150 * time.Millisecond)
	}

	// Kill the controller mid-rollout; its successor must recover the
	// rollout from the journal and drive it to completion.
	ctl.send("fdeploy lb corpus:xdp1")
	ctl.waitFor("ok fdeploy lb")
	ctl.send("fstep 2")
	ctl.waitFor("ok fstep ")
	if err := ctl.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = ctl.cmd.Wait()

	ctl2 := startDaemon(t, bin, "-controller", ctlAddr, "-state-dir", state)
	line := ctl2.waitFor("ok frecover ")
	if !strings.Contains(line, "workers=2") || !strings.Contains(line, "slots=1") ||
		strings.Contains(line, "rollout=none") {
		t.Fatalf("recovery = %s, want workers=2 slots=1 and an in-flight rollout", line)
	}
	ctl2.waitFor("ok controller ")
	ctl2.send("fwait")
	if line := ctl2.waitFor("ok fwait "); !strings.Contains(line, "phase=done") {
		ctl2.send("fevents")
		ctl2.collect("ok fevents")
		t.Fatalf("recovered rollout did not complete: %s\n%s", line, ctl2.log.String())
	}
	ctl2.send("ftraffic lb 8")
	if line := ctl2.waitFor("ok ftraffic lb "); !strings.Contains(line, "dropped=0") {
		t.Fatalf("post-recovery traffic = %s, want dropped=0", line)
	}

	// Fleet-aggregated metrics: the controller's own series plus each
	// worker's scrape re-labeled with worker="<name>".
	ctl2.send("fmetrics")
	var sawFleet, sawWorker bool
	for _, l := range ctl2.collect("ok fmetrics") {
		if strings.HasPrefix(l, "merlin_fleet_workers{") {
			sawFleet = true
		}
		if strings.Contains(l, `worker="w1"`) {
			sawWorker = true
		}
	}
	if !sawFleet || !sawWorker {
		t.Errorf("fmetrics lacks fleet gauges (%v) or relabeled worker series (%v)", sawFleet, sawWorker)
	}

	ctl2.send("quit")
	if err := ctl2.cmd.Wait(); err != nil {
		t.Fatalf("controller exited uncleanly: %v\n%s", err, ctl2.log.String())
	}
	w1.send("quit")
	if err := w1.cmd.Wait(); err != nil {
		t.Fatalf("worker exited uncleanly: %v\n%s", err, w1.log.String())
	}
}

// TestMerlindSrcFaultInjection: -src-fault-rate interposes the chaos
// filesystem on the source read path. At rate 1 every file deploy fails with
// the injected EIO while corpus deploys (no file I/O) keep working.
func TestMerlindSrcFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	mir := filepath.Join(t.TempDir(), "prog.mir")
	if err := os.WriteFile(mir, []byte("anything; the open faults first"), 0o644); err != nil {
		t.Fatal(err)
	}
	script := strings.Join([]string{
		"deploy lb " + mir,
		"deploy ok corpus:xdp1",
		"traffic ok 4",
		"quit",
	}, "\n") + "\n"
	out, err := runScript(t, bin, script,
		"-shadow", "2", "-canary", "2", "-src-fault-rate", "1", "-src-fault-seed", "7")
	if err == nil {
		t.Fatalf("file deploy under fault injection succeeded:\n%s", out)
	}
	if !strings.Contains(out, "err deploy") || !strings.Contains(out, "input/output error") {
		t.Fatalf("missing injected EIO diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "ok deploy ok") || !strings.Contains(out, "ok traffic ok") {
		t.Fatalf("corpus deploy did not survive source fault injection:\n%s", out)
	}
}
