package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildMerlind compiles the lifecycle daemon once per test.
func buildMerlind(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "merlind")
	cmd := exec.Command("go", "build", "-o", bin, "merlin/cmd/merlind")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building merlind: %v\n%s", err, out)
	}
	return bin
}

// runScript feeds a command script to merlind over stdin and returns its
// combined output plus whether it exited cleanly.
func runScript(t *testing.T, bin, script string, flags ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, flags...)
	cmd.Stdin = strings.NewReader(script)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestMerlindHotSwapFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "count.mir")
	if err := os.WriteFile(src, []byte(sampleIR), 0o644); err != nil {
		t.Fatal(err)
	}

	// The second deploy rebuilds the same module: semantically equivalent, so
	// it survives shadow/canary mirroring and becomes promotable.
	script := strings.Join([]string{
		"deploy lb " + src,
		"traffic lb 4",
		"deploy lb " + src,
		"traffic lb 12",
		"promote lb",
		"status",
		"rollback lb",
		"events lb",
		"quit",
	}, "\n") + "\n"

	out, err := runScript(t, bin, script, "-shadow", "4", "-canary", "4")
	if err != nil {
		t.Fatalf("merlind failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"ok deploy lb stage=live live=gen1",
		"candidate=gen2",
		"ok promote lb live=gen2",
		"ok rollback lb live=gen1",
		"promoted: promoted after canary",
		"rolled-back: gen 2 → gen 1",
		"ok events lb",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMerlindRejectsPrematurePromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	script := strings.Join([]string{
		"deploy lb corpus:xdp1",
		"deploy lb corpus:xdp2",
		"promote lb", // canary has seen no traffic: must refuse
		"quit",
	}, "\n") + "\n"
	out, err := runScript(t, bin, script)
	if err == nil {
		t.Fatalf("premature promote accepted:\n%s", out)
	}
	if !strings.Contains(out, "err promote") {
		t.Errorf("missing promote error line:\n%s", out)
	}
	// force must override the gate.
	out, err = runScript(t, bin, strings.ReplaceAll(script, "promote lb", "promote lb force"))
	if err != nil {
		t.Fatalf("forced promote refused: %v\n%s", err, out)
	}
}

func TestMerlindUnknownCommandFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	out, err := runScript(t, bin, "frobnicate\nquit\n")
	if err == nil {
		t.Fatalf("unknown command accepted:\n%s", out)
	}
	if !strings.Contains(out, "err frobnicate") {
		t.Errorf("missing error line:\n%s", out)
	}
}

func TestMerlincRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "count.mir")
	if err := os.WriteFile(src, []byte(sampleIR), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-disable", "BOGUS", src},
		{"-disable", "DAO,NOPE", src},
		{"-pass-timeout", "-1s", src},
		{"-pass-timeout", "0s", src},
	}
	for _, args := range cases {
		cmd := exec.Command(filepath.Join(bins, "merlinc"), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("merlinc %v accepted:\n%s", args, out)
		}
		if msg := string(out); !strings.Contains(msg, "unknown optimizer") &&
			!strings.Contains(msg, "-pass-timeout must be positive") {
			t.Errorf("merlinc %v: unhelpful error:\n%s", args, msg)
		}
	}
}
