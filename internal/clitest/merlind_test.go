package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildMerlind compiles the lifecycle daemon once per test.
func buildMerlind(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "merlind")
	cmd := exec.Command("go", "build", "-o", bin, "merlin/cmd/merlind")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building merlind: %v\n%s", err, out)
	}
	return bin
}

// runScript feeds a command script to merlind over stdin and returns its
// combined output plus whether it exited cleanly.
func runScript(t *testing.T, bin, script string, flags ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, flags...)
	cmd.Stdin = strings.NewReader(script)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestMerlindHotSwapFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "count.mir")
	if err := os.WriteFile(src, []byte(sampleIR), 0o644); err != nil {
		t.Fatal(err)
	}

	// The second deploy rebuilds the same module: semantically equivalent, so
	// it survives shadow/canary mirroring and becomes promotable.
	script := strings.Join([]string{
		"deploy lb " + src,
		"traffic lb 4",
		"deploy lb " + src,
		"traffic lb 12",
		"promote lb",
		"status",
		"rollback lb",
		"events lb",
		"quit",
	}, "\n") + "\n"

	out, err := runScript(t, bin, script, "-shadow", "4", "-canary", "4")
	if err != nil {
		t.Fatalf("merlind failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"ok deploy lb stage=live live=gen1",
		"candidate=gen2",
		"ok promote lb live=gen2",
		"ok rollback lb live=gen1",
		"promoted: promoted after canary",
		"rolled-back: gen 2 → gen 1",
		"ok events lb",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// promSeries matches one Prometheus text-exposition sample line:
// name{labels} value, with the label block optional.
var promSeries = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?\d+$`)

// parseMetrics extracts the metric lines from a merlind transcript (between
// the first exposition line and the "ok metrics" ack) and asserts every
// sample parses.
func parseMetrics(t *testing.T, out string) map[string]int64 {
	t.Helper()
	series := map[string]int64{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "ok ") ||
			strings.HasPrefix(line, "err ") || strings.HasPrefix(line, "slot=") ||
			strings.HasPrefix(line, "slot ") {
			continue
		}
		if !strings.HasPrefix(line, "merlin_") {
			continue
		}
		if !promSeries.MatchString(line) {
			t.Errorf("unparseable metric line %q", line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Errorf("bad value in %q: %v", line, err)
			continue
		}
		series[line[:sp]] = v
	}
	if len(series) == 0 {
		t.Fatalf("no metric series found in output:\n%s", out)
	}
	return series
}

func TestMerlindMetricsCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	// deploy → mirrored traffic → promote → more traffic → metrics: the
	// exported values must be consistent with the driven traffic.
	script := strings.Join([]string{
		"deploy lb corpus:xdp1",
		"traffic lb 6",
		"deploy lb corpus:xdp1",
		"traffic lb 10",
		"promote lb",
		"traffic lb 4",
		"metrics",
		"quit",
	}, "\n") + "\n"
	out, err := runScript(t, bin, script, "-shadow", "4", "-canary", "4")
	if err != nil {
		t.Fatalf("merlind failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok metrics") {
		t.Fatalf("missing metrics ack:\n%s", out)
	}
	series := parseMetrics(t, out)

	// 6 + 10 + 4 packets served; the middle 10 were mirrored into the
	// candidate; every served and mirrored packet is one VM run.
	for key, want := range map[string]int64{
		`merlin_lifecycle_served_total{slot="lb"}`:                                 20,
		`merlin_lifecycle_mirrored_total{slot="lb"}`:                               10,
		`merlin_vm_runs_total`:                                                     30,
		`merlin_lifecycle_events_total{kind="promoted",slot="lb"}`:                 2,
		`merlin_lifecycle_mirror_divergence_total{slot="lb"}`:                      0,
		`merlin_build_total`:                                                       2,
		`merlin_build_verifier_verdicts_total{program="optimized",verdict="pass"}`: 2,
	} {
		got, ok := series[key]
		if !ok {
			t.Errorf("metric %s missing from output", key)
			continue
		}
		if got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	// Structural families must be present for every instrumented layer.
	for _, family := range []string{
		"# TYPE merlin_vm_run_cycles histogram",
		"# TYPE merlin_lifecycle_canary_cycles histogram",
		"# TYPE merlin_build_pass_duration_us histogram",
		"# TYPE merlin_lifecycle_live_generation gauge",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("output missing %q", family)
		}
	}
}

func TestMerlincMetricsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "count.mir")
	if err := os.WriteFile(src, []byte(sampleIR), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, filepath.Join(bins, "merlinc"), "-metrics", src)
	for _, want := range []string{
		"-- build metrics --",
		"merlin_build_total 1",
		`merlin_build_verifier_verdicts_total{program="optimized",verdict="pass"} 1`,
		`merlin_build_pass_duration_us_count{pass="DAO",tier="ir"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merlinc -metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestMerlindRejectsPrematurePromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	script := strings.Join([]string{
		"deploy lb corpus:xdp1",
		"deploy lb corpus:xdp2",
		"promote lb", // canary has seen no traffic: must refuse
		"quit",
	}, "\n") + "\n"
	out, err := runScript(t, bin, script)
	if err == nil {
		t.Fatalf("premature promote accepted:\n%s", out)
	}
	if !strings.Contains(out, "err promote") {
		t.Errorf("missing promote error line:\n%s", out)
	}
	// force must override the gate.
	out, err = runScript(t, bin, strings.ReplaceAll(script, "promote lb", "promote lb force"))
	if err != nil {
		t.Fatalf("forced promote refused: %v\n%s", err, out)
	}
}

func TestMerlindUnknownCommandFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	out, err := runScript(t, bin, "frobnicate\nquit\n")
	if err == nil {
		t.Fatalf("unknown command accepted:\n%s", out)
	}
	if !strings.Contains(out, "err frobnicate") {
		t.Errorf("missing error line:\n%s", out)
	}
}

func TestMerlincRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "count.mir")
	if err := os.WriteFile(src, []byte(sampleIR), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-disable", "BOGUS", src},
		{"-disable", "DAO,NOPE", src},
		{"-pass-timeout", "-1s", src},
		{"-pass-timeout", "0s", src},
	}
	for _, args := range cases {
		cmd := exec.Command(filepath.Join(bins, "merlinc"), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("merlinc %v accepted:\n%s", args, out)
		}
		if msg := string(out); !strings.Contains(msg, "unknown optimizer") &&
			!strings.Contains(msg, "-pass-timeout must be positive") {
			t.Errorf("merlinc %v: unhelpful error:\n%s", args, msg)
		}
	}
}
