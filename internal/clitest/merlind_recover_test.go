package clitest

import (
	"bufio"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var counterLine = regexp.MustCompile(`map cntrs_array bytes=\d+ u64\[0\]=(\d+)`)

// counters extracts every cntrs_array value printed by `maps` commands, in
// order.
func counters(t *testing.T, out string) []uint64 {
	t.Helper()
	var vals []uint64
	for _, m := range counterLine.FindAllStringSubmatch(out, -1) {
		v, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			t.Fatalf("bad counter in %q: %v", m[0], err)
		}
		vals = append(vals, v)
	}
	return vals
}

// runAndKill feeds script to a journaled merlind, waits for the output line
// marking the last command's ack, then SIGKILLs the process — no flush, no
// deferred cleanup, exactly the crash the journal exists for. It returns the
// transcript up to and including the marker.
func runAndKill(t *testing.T, bin, state, script, marker string) string {
	t.Helper()
	cmd := exec.Command(bin, "-state-dir", state, "-shadow", "2", "-canary", "2")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(stdin, script); err != nil {
		t.Fatal(err)
	}
	var transcript strings.Builder
	sc := bufio.NewScanner(stdout)
	seen := false
	for sc.Scan() {
		transcript.WriteString(sc.Text() + "\n")
		if strings.HasPrefix(sc.Text(), marker) {
			seen = true
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	if !seen {
		t.Fatalf("marker %q never appeared:\n%s", marker, transcript.String())
	}
	return transcript.String()
}

// deployPromoteScript drives the packet-counting corpus program to a
// promoted second generation with 16 packets served (6+6+4).
var deployPromoteScript = strings.Join([]string{
	"deploy smoke corpus:xdp_pktcntr",
	"traffic smoke 6",
	"deploy smoke corpus:xdp_pktcntr",
	"traffic smoke 6",
	"promote smoke",
	"traffic smoke 4",
	"maps smoke",
}, "\n") + "\n"

// TestMerlindCrashRecovery is the end-to-end acceptance scenario:
// deploy → promote → SIGKILL → restart with the same -state-dir recovers the
// live slot, its generation, and its map contents, and the packet counter
// continues from where it left off.
func TestMerlindCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	state := filepath.Join(t.TempDir(), "state")

	pre := runAndKill(t, bin, state, deployPromoteScript, "ok maps smoke")
	if !strings.Contains(pre, "ok promote smoke live=gen2") {
		t.Fatalf("session 1 never promoted:\n%s", pre)
	}
	preCounts := counters(t, pre)
	if len(preCounts) != 1 || preCounts[0] != 16 {
		t.Fatalf("pre-crash counter = %v, want [16] (6+6+4 packets)", preCounts)
	}

	// Session 2: same state dir. The journal must bring back the promoted
	// generation and the counter, which then keeps counting.
	script2 := strings.Join([]string{
		"status",
		"events smoke",
		"maps smoke",
		"traffic smoke 5",
		"maps smoke",
		"metrics",
		"quit",
	}, "\n") + "\n"
	out, err := runScript(t, bin, script2, "-state-dir", state, "-shadow", "2", "-canary", "2")
	if err != nil {
		t.Fatalf("restarted merlind failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"ok recover slots=1",
		"slot=smoke stage=live live=gen2",
		"[live] recovered",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("restart output missing %q:\n%s", want, out)
		}
	}
	postCounts := counters(t, out)
	if len(postCounts) != 2 || postCounts[0] != 16 || postCounts[1] != 21 {
		t.Fatalf("post-restart counters = %v, want [16 21] (recovered then continued)", postCounts)
	}
	series := parseMetrics(t, out)
	if got := series["merlin_lifecycle_recovered_slots"]; got != 1 {
		t.Errorf("merlin_lifecycle_recovered_slots = %d, want 1", got)
	}
	if got := series["merlin_journal_corrupt_records_total"]; got != 0 {
		t.Errorf("clean restart counted %d corrupt records", got)
	}
}

// TestMerlindTornJournalStartup: a journal with a torn tail (the classic
// crash-mid-write) must never prevent startup — the damaged suffix is
// dropped and counted, and the intact prefix still recovers the slot.
func TestMerlindTornJournalStartup(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	state := filepath.Join(t.TempDir(), "state")

	// Killed mid-session so the state lives in the journal (a clean exit
	// would have compacted it into the snapshot).
	runAndKill(t, bin, state, deployPromoteScript, "ok maps smoke")
	logPath := filepath.Join(state, "journal.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("killed session left an empty journal")
	}

	for _, torn := range []int{1, 7, len(raw) / 2} {
		if torn >= len(raw) {
			continue
		}
		dir := filepath.Join(t.TempDir(), "torn")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "journal.log"), raw[:len(raw)-torn], 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := runScript(t, bin, "status\nmetrics\nquit\n",
			"-state-dir", dir, "-shadow", "2", "-canary", "2")
		if err != nil {
			t.Fatalf("torn=%d: startup failed: %v\n%s", torn, err, out)
		}
		if !strings.Contains(out, "ok recover slots=1") {
			t.Errorf("torn=%d: slot not recovered:\n%s", torn, out)
		}
		// Small tears only damage the final flush record; the promote record
		// before it must still be intact.
		if torn <= 7 && !strings.Contains(out, "live=gen2") {
			t.Errorf("torn=%d: promoted generation lost:\n%s", torn, out)
		}
		series := parseMetrics(t, out)
		if got := series["merlin_journal_corrupt_records_total"]; got < 1 {
			t.Errorf("torn=%d: merlin_journal_corrupt_records_total = %d, want >= 1", torn, got)
		}
	}
}
