package clitest

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMerlindBuildFlagValidation: non-positive pool/queue sizes and a
// -build-cache colliding with another exclusively-locked directory are
// refused at startup with exit code 2 and a diagnostic naming the flag.
func TestMerlindBuildFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	state := filepath.Join(t.TempDir(), "state")
	cases := []struct {
		flags []string
		want  string
	}{
		{[]string{"-build-workers", "0"}, "-build-workers must be positive"},
		{[]string{"-build-workers", "-3"}, "-build-workers must be positive"},
		{[]string{"-build-queue", "0"}, "-build-queue must be positive"},
		{[]string{"-build-queue", "-1"}, "-build-queue must be positive"},
		{[]string{"-state-dir", state, "-build-cache", state},
			"-build-cache must be a different directory"},
		{[]string{"-superopt", "-superopt-cache", state, "-build-cache", state},
			"-build-cache must be a different directory"},
	}
	for _, tc := range cases {
		out, err := runScript(t, bin, "quit\n", tc.flags...)
		if err == nil {
			t.Errorf("merlind %v accepted:\n%s", tc.flags, out)
			continue
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Errorf("merlind %v exit = %v, want exit code 2", tc.flags, err)
		}
		if !strings.Contains(out, tc.want) {
			t.Errorf("merlind %v: unhelpful error (want %q):\n%s", tc.flags, tc.want, out)
		}
	}
}

// TestMerlindBuildCacheLockContention: the artifact cache directory is
// exclusively locked like the state dir. A second daemon pointed at a held
// -build-cache fails fast naming the holder pid; the incumbent keeps serving
// builds, and the directory is reusable once it exits.
func TestMerlindBuildCacheLockContention(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	cache := filepath.Join(t.TempDir(), "bcache")

	d := startDaemon(t, bin, "-build-cache", cache)
	d.send("cachestats")
	d.waitFor("ok cachestats")

	out, err := runScript(t, bin, "cachestats\nquit\n", "-build-cache", cache)
	if err == nil {
		t.Fatalf("second merlind on a held build cache succeeded:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("second merlind exit = %v, want exit code 2", err)
	}
	if !strings.Contains(out, "locked by another process") {
		t.Errorf("contention output lacks diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "held by pid") {
		t.Errorf("contention output lacks holder pid:\n%s", out)
	}

	// The incumbent is unharmed: it still builds and answers.
	d.send("build corpus:xdp_pktcntr")
	line := d.waitFor("ok build ")
	if !strings.Contains(line, "outcome=built") {
		t.Errorf("incumbent build after contention: %s", line)
	}
	d.send("quit")
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("incumbent exited uncleanly: %v\n%s", err, d.log.String())
	}
	out, err = runScript(t, bin, "cachestats\nquit\n", "-build-cache", cache)
	if err != nil {
		t.Fatalf("merlind on a released build cache failed: %v\n%s", err, out)
	}
}

// TestMerlindBuildCachePersists: with a persistent -build-cache, a build
// survives a daemon restart — the second daemon answers the same request
// from the artifact journal (outcome=cached) without running any pass, and
// the bytecode statistics match the cold build exactly.
func TestMerlindBuildCachePersists(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildMerlind(t)
	cache := filepath.Join(t.TempDir(), "bcache")
	script := "build corpus:xdp_pktcntr\ncachestats\nmetrics\nquit\n"
	flags := []string{"-build-cache", cache, "-superopt"}

	cold, err := runScript(t, bin, script, flags...)
	if err != nil {
		t.Fatalf("cold merlind build failed: %v\n%s", err, cold)
	}
	coldLine := buildReplyLine(t, cold)
	if !strings.Contains(coldLine, "outcome=built") {
		t.Fatalf("cold build outcome: %s", coldLine)
	}
	if !strings.Contains(cold, "artifacts=1") {
		t.Errorf("cold cachestats lacks the artifact:\n%s", cold)
	}
	coldSeries := parseMetrics(t, cold)
	if coldSeries[`merlin_build_outcomes_total{outcome="built"}`] != 1 {
		t.Errorf("cold run outcome counter:\n%s", cold)
	}

	warm, err := runScript(t, bin, script, flags...)
	if err != nil {
		t.Fatalf("warm merlind build failed: %v\n%s", err, warm)
	}
	warmLine := buildReplyLine(t, warm)
	if !strings.Contains(warmLine, "outcome=cached") {
		t.Fatalf("warm build not served from the artifact cache: %s", warmLine)
	}
	warmSeries := parseMetrics(t, warm)
	if warmSeries[`merlin_build_outcomes_total{outcome="cached"}`] != 1 {
		t.Errorf("warm run outcome counter:\n%s", warm)
	}
	if warmSeries[`merlin_build_outcomes_total{outcome="built"}`] != 0 {
		t.Errorf("warm run re-built a cached program:\n%s", warm)
	}

	// Identical key and identical result: everything except the outcome and
	// the wall-clock field must match byte for byte.
	if stripBuildTiming(coldLine) != stripBuildTiming(warmLine) {
		t.Errorf("cached reply diverged from the cold build:\ncold: %s\nwarm: %s",
			coldLine, warmLine)
	}
}

// buildReplyLine extracts the single "ok build ..." line from a transcript.
func buildReplyLine(t *testing.T, out string) string {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "ok build ") {
			return l
		}
	}
	t.Fatalf("transcript has no build reply:\n%s", out)
	return ""
}

// stripBuildTiming drops the outcome= and ms= fields, the only parts of a
// build reply that legitimately differ between a cold build and a cache hit.
func stripBuildTiming(line string) string {
	fields := strings.Fields(line)
	kept := fields[:0]
	for _, f := range fields {
		if strings.HasPrefix(f, "ms=") || strings.HasPrefix(f, "outcome=") {
			continue
		}
		kept = append(kept, f)
	}
	return strings.Join(kept, " ")
}
