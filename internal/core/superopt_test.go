package core

import (
	"testing"

	"merlin/internal/corpus"
	"merlin/internal/guard"
	"merlin/internal/superopt"
)

// TestBuildWithSuperopt: the tier runs as the "SO" pass, its stats surface on
// the Result, the output never grows, and it stays semantically identical to
// the Merlin-only build.
func TestBuildWithSuperopt(t *testing.T) {
	spec := corpus.XDP()[0]
	for _, s := range corpus.XDP() {
		if s.Name == "xdp2" {
			spec = s
		}
	}
	plain, err := Build(spec.Mod, spec.Func, Options{Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(spec.Mod, spec.Func, Options{
		Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true, Verify: true,
		Superopt: &superopt.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Superopt == nil {
		t.Fatal("Result.Superopt not populated")
	}
	if res.Superopt.Windows == 0 {
		t.Error("no windows extracted")
	}
	var found bool
	for _, s := range res.Stats {
		if s.Name == "SO" && s.Tier == "bytecode" {
			found = true
		}
	}
	if !found {
		t.Errorf("no SO pass stat recorded: %+v", res.Stats)
	}
	if res.Prog.NI() > plain.Prog.NI() {
		t.Errorf("superopt grew the program: %d -> %d", plain.Prog.NI(), res.Prog.NI())
	}
	if !res.Verification.Passed {
		t.Errorf("superopt output rejected by verifier: %v", res.Verification.Err)
	}
	if err := guard.DiffPrograms(plain.Prog, res.Prog, guard.Inputs(spec.Hook, 24, 5)); err != nil {
		t.Errorf("superopt build diverges from Merlin-only build: %v", err)
	}
}

// TestBuildWithSuperoptGuarded: under guarding the tier is wrapped like any
// bytecode pass — a clean run records no failures and still optimizes.
func TestBuildWithSuperoptGuarded(t *testing.T) {
	spec := corpus.XDP()[0]
	res, err := BuildForDeploy(spec.Mod, spec.Func, Options{
		Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true,
		GuardDiffInputs: 8,
		Superopt:        &superopt.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PassFailures) != 0 {
		t.Errorf("unexpected pass failures: %+v", res.PassFailures)
	}
	if res.Superopt == nil {
		t.Fatal("Result.Superopt not populated")
	}
}

// TestBuildSuperoptWarmCache: two builds sharing one cache — the second
// performs zero enumerative searches and produces the identical program.
func TestBuildSuperoptWarmCache(t *testing.T) {
	spec := corpus.XDP()[0]
	cache := superopt.NewMemCache()
	opts := Options{
		Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true,
		Superopt: &superopt.Config{Cache: cache},
	}
	cold, err := Build(spec.Mod, spec.Func, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Superopt.CacheMisses == 0 {
		t.Fatal("cold build missed nothing — cache not exercised")
	}
	warm, err := Build(spec.Mod, spec.Func, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Superopt.Searches != 0 {
		t.Errorf("warm build ran %d searches, want 0", warm.Superopt.Searches)
	}
	if warm.Superopt.CacheHits == 0 {
		t.Error("warm build reported zero cache hits")
	}
	if warm.Prog.NI() != cold.Prog.NI() {
		t.Errorf("warm build NI %d != cold %d", warm.Prog.NI(), cold.Prog.NI())
	}
}
