package core

import (
	"fmt"
	"testing"

	"merlin/internal/corpus"
	"merlin/internal/guard"
)

// subsetSpecs samples programs from every corpus suite so the subset matrix
// stays fast while still covering both packet-processing and tracing hooks.
func subsetSpecs(t *testing.T) []*corpus.ProgramSpec {
	t.Helper()
	var specs []*corpus.ProgramSpec
	xdp := corpus.XDP()
	for _, i := range []int{0, 4, 9, 14} {
		specs = append(specs, xdp[i%len(xdp)])
	}
	for _, suite := range [][]*corpus.ProgramSpec{corpus.Sysdig(), corpus.Tetragon(), corpus.Tracee()} {
		for _, i := range []int{1, len(suite) / 2} {
			specs = append(specs, suite[i])
		}
	}
	return specs
}

// optimizerSubsets enumerates every single optimizer and every unordered
// pair — the subsets the paper's ablation (Fig 9) toggles.
func optimizerSubsets() [][]Optimizer {
	all := AllOptimizers()
	var out [][]Optimizer
	for i, a := range all {
		out = append(out, []Optimizer{a})
		for _, b := range all[i+1:] {
			out = append(out, []Optimizer{a, b})
		}
	}
	return out
}

func subsetName(set []Optimizer) string {
	s := ""
	for i, o := range set {
		if i > 0 {
			s += "+"
		}
		s += string(o)
	}
	return s
}

// TestOptimizerSubsetsDifferential builds every sampled corpus program under
// every single-optimizer and pairwise subset and checks the result agrees
// with the fully unoptimized build on sampled inputs: no optimizer may
// change observable behaviour, alone or in combination.
func TestOptimizerSubsetsDifferential(t *testing.T) {
	specs := subsetSpecs(t)
	subsets := optimizerSubsets()
	if testing.Short() {
		specs = specs[:3]
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Suite+"/"+spec.Name, func(t *testing.T) {
			base := Options{Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: spec.MCPU >= 3,
				Enable: []Optimizer{}}
			ref, err := Build(spec.Mod, spec.Func, base)
			if err != nil {
				t.Fatalf("unoptimized build: %v", err)
			}
			inputs := guard.Inputs(spec.Hook, 8, 42)
			for _, set := range subsets {
				opts := base
				opts.Enable = set
				res, err := Build(spec.Mod, spec.Func, opts)
				if err != nil {
					t.Fatalf("%s: %v", subsetName(set), err)
				}
				if derr := guard.DiffPrograms(ref.Prog, res.Prog, inputs); derr != nil {
					t.Errorf("%s: diverges from unoptimized program: %v", subsetName(set), derr)
				}
			}
		})
	}
}

// TestOptimizerSubsetCountsSanity pins the subset enumeration itself: six
// singles plus fifteen pairs.
func TestOptimizerSubsetCountsSanity(t *testing.T) {
	subsets := optimizerSubsets()
	if want := 6 + 15; len(subsets) != want {
		t.Fatalf("want %d subsets, got %d", want, len(subsets))
	}
	seen := map[string]bool{}
	for _, s := range subsets {
		n := subsetName(s)
		if seen[n] {
			t.Fatalf("duplicate subset %s", n)
		}
		seen[n] = true
	}
	if !seen[fmt.Sprintf("%s+%s", DAO, PO)] || !seen[string(SLM)] {
		t.Fatal("expected subsets missing")
	}
}
