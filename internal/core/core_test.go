package core

import (
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/ir"
	"merlin/internal/vm"
)

// demoSrc exercises several optimization opportunities at once: an
// under-aligned u16 load (DAO), a read-modify-write on a map value (MoF),
// constant stores (CP&DCE + SLM), and i32 masking (CC/PO).
const demoSrc = `module "demo"
map @stats : array key=4 value=16 max=8

func count(%ctx: ptr) -> i64 {
entry:
  %key = alloca 4, align 4
  %scratch = alloca 8, align 8
  %vslot = alloca 8, align 8
  store i32 %key, 0, align 4
  store i32 %scratch, 0, align 4
  %p4 = gep %scratch, 4
  store i32 %p4, 1, align 4
  %data = load ptr, %ctx, align 8
  %endp = gep %ctx, 8
  %end = load ptr, %endp, align 8
  %lim = bin add i64 %data, 14
  %oob = icmp ugt i64 %lim, %end
  condbr %oob, drop, parse
drop:
  ret 1
parse:
  %d2 = load ptr, %ctx, align 8
  %pp = gep %d2, 12
  %proto = load i16, %pp, align 1
  %pz = zext i64, %proto
  %iseth = icmp eq i64 %pz, 8
  condbr %iseth, hit, drop2
drop2:
  ret 1
hit:
  %mp = mapptr @stats
  %kk = load ptr, %ctx, align 8
  %v = call 1, %mp, %key
  store i64 %vslot, %v, align 8
  %isnull = icmp eq i64 %v, 0
  condbr %isnull, drop3, bump
drop3:
  ret 0
bump:
  %vp = load ptr, %vslot, align 8
  %old = load i64, %vp, align 8
  %new = bin add i64 %old, 1
  store i64 %vp, %new, align 8
  ret 2
}
`

func parseDemo(t *testing.T) *ir.Module {
	t.Helper()
	m, err := ir.Parse(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildVerifiesAndShrinks(t *testing.T) {
	m := parseDemo(t)
	res, err := Build(m, "count", DefaultOptions())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if res.Prog.NI() >= res.Baseline.NI() {
		t.Fatalf("no shrink: baseline %d → %d", res.Baseline.NI(), res.Prog.NI())
	}
	if res.NIReduction() <= 0 {
		t.Fatal("NIReduction must be positive")
	}
	if !res.Verification.Passed || !res.BaselineVerification.Passed {
		t.Fatal("verification stats missing")
	}
	if res.Verification.NPI > res.BaselineVerification.NPI {
		t.Fatalf("NPI grew: %d → %d", res.BaselineVerification.NPI, res.Verification.NPI)
	}
}

// ethPacket returns a minimal Ethernet frame with the given ethertype low
// byte at offset 12 (little-endian read in the demo program).
func ethPacket(proto byte) []byte {
	pkt := make([]byte, 64)
	pkt[12] = proto
	return pkt
}

func runOn(t *testing.T, prog *ebpf.Program, pkt []byte) int64 {
	t.Helper()
	mach, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := vm.BuildXDPContext(len(pkt))
	ret, _, err := mach.Run(ctx, pkt)
	if err != nil {
		t.Fatalf("vm: %v\n%s", err, ebpf.Disassemble(prog))
	}
	return ret
}

func TestOptimizedMatchesBaselineSemantics(t *testing.T) {
	m := parseDemo(t)
	res, err := Build(m, "count", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		ethPacket(8),       // match
		ethPacket(0x86),    // no match
		make([]byte, 8),    // too short
		make([]byte, 14),   // exactly the bound
		ethPacket(8)[0:20], // short but parseable
	}
	for i, pkt := range inputs {
		want := runOn(t, res.Baseline, pkt)
		got := runOn(t, res.Prog, pkt)
		if want != got {
			t.Fatalf("input %d: baseline=%d optimized=%d", i, want, got)
		}
	}
}

func TestOptimizedCostsLess(t *testing.T) {
	m := parseDemo(t)
	res, err := Build(m, "count", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pkt := ethPacket(8)
	ctx := vm.BuildXDPContext(len(pkt))
	run := func(p *ebpf.Program) uint64 {
		mach, _ := vm.New(p, vm.Config{})
		var cycles uint64
		for i := 0; i < 10; i++ {
			_, st, err := mach.Run(ctx, pkt)
			if err != nil {
				t.Fatal(err)
			}
			cycles += st.Cycles
		}
		return cycles
	}
	base, opt := run(res.Baseline), run(res.Prog)
	if opt >= base {
		t.Fatalf("optimized not cheaper: %d vs %d cycles", opt, base)
	}
}

func TestOptimizerSubsetOptions(t *testing.T) {
	m := parseDemo(t)
	// Only DAO.
	daoOnly, err := Build(m, "count", Options{Hook: ebpf.HookXDP, MCPU: 2, KernelALU32: true, Enable: []Optimizer{DAO}, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Build(m, "count", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if daoOnly.Prog.NI() < all.Prog.NI() {
		t.Fatalf("subset beat full pipeline: %d < %d", daoOnly.Prog.NI(), all.Prog.NI())
	}
	if daoOnly.Prog.NI() >= daoOnly.Baseline.NI() {
		t.Fatal("DAO alone should already shrink this program")
	}
	// Disabled pipeline reproduces the baseline NI.
	none, err := Build(m, "count", Options{Hook: ebpf.HookXDP, MCPU: 2, Enable: []Optimizer{}, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if none.Prog.NI() != none.Baseline.NI() {
		t.Fatalf("empty pipeline changed the program: %d vs %d", none.Prog.NI(), none.Baseline.NI())
	}
}

func TestStatsCoverEnabledPasses(t *testing.T) {
	m := parseDemo(t)
	res, err := Build(m, "count", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range res.Stats {
		seen[s.Name] = true
	}
	for _, want := range []string{"DAO", "MoF", "Dep", "CP&DCE", "SLM", "CC", "PO"} {
		if !seen[want] {
			t.Errorf("missing stat for %s (have %v)", want, res.Stats)
		}
	}
	if res.MerlinTime <= 0 {
		t.Error("MerlinTime not recorded")
	}
}

func TestInputModuleNotMutated(t *testing.T) {
	m := parseDemo(t)
	before := ir.Print(m)
	if _, err := Build(m, "count", DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if ir.Print(m) != before {
		t.Fatal("Build mutated its input module")
	}
}

func TestBuildErrors(t *testing.T) {
	m := parseDemo(t)
	if _, err := Build(m, "missing", DefaultOptions()); err == nil {
		t.Fatal("missing function must fail")
	}
}
