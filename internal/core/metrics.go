package core

import (
	"merlin/internal/metrics"
)

// Metrics aggregates build-pipeline telemetry into a metrics.Registry:
// builds and build errors, per-pass wall time, guarded-pass rollbacks,
// culprit bisections, degradation fallbacks, and verifier verdicts. The
// build path is not a packet path, so per-pass series (labeled by pass name)
// may be created lazily under the registry lock.
type Metrics struct {
	reg        *metrics.Registry
	builds     *metrics.Counter
	errors     *metrics.Counter
	bisections *metrics.Counter
	merlinUS   *metrics.Counter
}

// NewMetrics registers the build metric families in reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		reg: reg,
		builds: reg.Counter("merlin_build_total",
			"core.Build invocations, including failed ones."),
		errors: reg.Counter("merlin_build_errors_total",
			"core.Build invocations that returned an error."),
		bisections: reg.Counter("merlin_build_bisections_total",
			"Builds whose final verifier rejection triggered culprit bisection."),
		merlinUS: reg.Counter("merlin_build_optimizer_us_total",
			"Total microseconds spent in Merlin optimizer passes."),
	}
}

// record accounts one finished build. Safe on a nil receiver.
func (m *Metrics) record(opts Options, res *Result, err error) {
	if m == nil {
		return
	}
	m.builds.Inc()
	if err != nil {
		m.errors.Inc()
	}
	if res == nil {
		return
	}
	for _, st := range res.Stats {
		m.reg.Histogram("merlin_build_pass_duration_us",
			"Per-pass wall time in microseconds (log2 buckets).",
			"pass", st.Name, "tier", st.Tier).Observe(uint64(st.Duration.Microseconds()))
	}
	for _, pf := range res.PassFailures {
		m.reg.Counter("merlin_build_pass_rollbacks_total",
			"Guarded passes rolled back to their pre-pass snapshot, by pass and containment kind.",
			"pass", pf.Pass, "kind", string(pf.Kind)).Inc()
	}
	if len(res.Culprits) > 0 {
		m.bisections.Inc()
	}
	if res.FellBack != "" {
		m.reg.Counter("merlin_build_fallback_total",
			"Guarded builds that degraded, by fallback mode.",
			"mode", res.FellBack).Inc()
	}
	if opts.Verify {
		m.verdict("optimized", res.Verification.Passed)
		m.verdict("baseline", res.BaselineVerification.Passed)
	}
	m.merlinUS.Add(uint64(res.MerlinTime.Microseconds()))
}

func (m *Metrics) verdict(program string, passed bool) {
	v := "reject"
	if passed {
		v = "pass"
	}
	m.reg.Counter("merlin_build_verifier_verdicts_total",
		"Simulated kernel verifier verdicts per program flavor.",
		"program", program, "verdict", v).Inc()
}
