package core

import (
	"strings"
	"testing"

	"merlin/internal/guard"
	"merlin/internal/metrics"
)

func TestBuildRecordsMetrics(t *testing.T) {
	reg := metrics.New()
	opts := DefaultOptions()
	opts.Metrics = NewMetrics(reg)

	if _, err := Build(parseDemo(t), "count", opts); err != nil {
		t.Fatalf("build: %v", err)
	}

	snap := reg.Snapshot()
	if got := snap["merlin_build_total"]; got != 1 {
		t.Fatalf("merlin_build_total = %d, want 1", got)
	}
	if got := snap["merlin_build_errors_total"]; got != 0 {
		t.Fatalf("merlin_build_errors_total = %d, want 0", got)
	}
	for _, key := range []string{
		`merlin_build_verifier_verdicts_total{program="optimized",verdict="pass"}`,
		`merlin_build_verifier_verdicts_total{program="baseline",verdict="pass"}`,
	} {
		if got := snap[key]; got != 1 {
			t.Errorf("%s = %d, want 1 (snapshot %v)", key, got, snap)
		}
	}
	// Every recorded pass gets a wall-time histogram series.
	text := reg.Text()
	for _, pass := range []string{"DAO", "SLM", "CP&DCE"} {
		if !strings.Contains(text, `merlin_build_pass_duration_us_count{pass="`+pass+`"`) {
			t.Errorf("no pass duration series for %s:\n%s", pass, text)
		}
	}
}

func TestGuardedRollbackRecordsMetrics(t *testing.T) {
	reg := metrics.New()
	opts := DefaultOptions()
	opts.Guard = true
	opts.Metrics = NewMetrics(reg)
	opts.Injector = &guard.FaultInjector{Pass: string(SLM), Mode: guard.FaultPanic}

	res, err := Build(parseDemo(t), "count", opts)
	if err != nil {
		t.Fatalf("guarded build must contain the injected panic: %v", err)
	}
	if len(res.PassFailures) == 0 {
		t.Fatal("injected fault produced no PassFailures")
	}
	snap := reg.Snapshot()
	if got := snap[`merlin_build_pass_rollbacks_total{kind="panic",pass="SLM"}`]; got != 1 {
		t.Fatalf("rollback counter = %d, want 1 (snapshot %v)", got, snap)
	}
}
