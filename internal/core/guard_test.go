package core

import (
	"fmt"
	"testing"
	"time"

	"merlin/internal/bopt"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/irpass"
	"merlin/internal/verifier"
)

func guardedOpts(inj *guard.FaultInjector) Options {
	o := DefaultOptions()
	o.Guard = true
	o.GuardDiffInputs = 6
	o.PassTimeout = 80 * time.Millisecond
	o.Injector = inj
	return o
}

// named reports whether pass appears in the result's failure records or
// bisection culprits.
func named(res *Result, pass string) bool {
	for _, f := range res.PassFailures {
		if f.Pass == pass {
			return true
		}
	}
	for _, c := range res.Culprits {
		if string(c) == pass {
			return true
		}
	}
	return false
}

// TestGuardContainsEveryFailureMode is the issue's acceptance matrix: for
// every injected failure mode in every guarded pass, a guarded Build must
// still return a program that passes the simulated verifier and behaves like
// the baseline on sampled inputs, with the offending pass named in Result —
// never an aborted build.
func TestGuardContainsEveryFailureMode(t *testing.T) {
	passes := guard.DefaultPassNames()
	for _, mode := range guard.Modes() {
		for _, pass := range passes {
			t.Run(fmt.Sprintf("%s/%s", mode, pass), func(t *testing.T) {
				m := parseDemo(t)
				inj := &guard.FaultInjector{Pass: pass, Mode: mode}
				res, err := Build(m, "count", guardedOpts(inj))
				if err != nil {
					t.Fatalf("guarded build aborted: %v", err)
				}
				if inj.Fired() == 0 {
					t.Fatalf("injector never fired for %s/%s", mode, pass)
				}
				if !res.Verification.Passed {
					t.Fatalf("final program rejected: %v", res.Verification.Err)
				}
				if !named(res, pass) {
					t.Fatalf("offending pass %s not named; failures=%v culprits=%v",
						pass, res.PassFailures, res.Culprits)
				}
				inputs := guard.Inputs(res.Prog.Hook, 8, 1234)
				if derr := guard.DiffPrograms(res.Baseline, res.Prog, inputs); derr != nil {
					t.Fatalf("final program diverges from baseline: %v", derr)
				}
			})
		}
	}
}

// TestGuardFailureKinds pins each injection mode to the containment path
// that must catch it.
func TestGuardFailureKinds(t *testing.T) {
	cases := []struct {
		mode guard.FaultMode
		pass string
		want guard.FailureKind
	}{
		{guard.FaultPanic, "SLM", guard.FailPanic},
		{guard.FaultPanic, "DAO", guard.FailPanic},
		{guard.FaultStall, "CC", guard.FailTimeout},
		{guard.FaultStall, "MoF", guard.FailTimeout},
		{guard.FaultCorrupt, "PO", guard.FailDiff},
		{guard.FaultCorrupt, "MoF", guard.FailDiff},
		{guard.FaultBadBranch, "CP&DCE", guard.FailInvariant},
		{guard.FaultBadBranch, "DAO", guard.FailInvariant},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/%s", c.mode, c.pass), func(t *testing.T) {
			m := parseDemo(t)
			inj := &guard.FaultInjector{Pass: c.pass, Mode: c.mode}
			res, err := Build(m, "count", guardedOpts(inj))
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, f := range res.PassFailures {
				if f.Pass == c.pass && f.Kind == c.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("want %s failure for %s, have %v", c.want, c.pass, res.PassFailures)
			}
		})
	}
}

// TestGuardCleanBuildMatchesUnguarded checks the guard is a no-op for a
// healthy pipeline: same final program, no failure records.
func TestGuardCleanBuildMatchesUnguarded(t *testing.T) {
	m := parseDemo(t)
	plain, err := Build(m, "count", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Build(parseDemo(t), "count", guardedOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(guarded.PassFailures) != 0 || guarded.FellBack != "" || len(guarded.Culprits) != 0 {
		t.Fatalf("clean guarded build recorded failures: %+v", guarded)
	}
	if guarded.Prog.NI() != plain.Prog.NI() {
		t.Fatalf("guarded result differs: NI %d vs %d", guarded.Prog.NI(), plain.Prog.NI())
	}
	if string(guarded.Prog.Encode()) != string(plain.Prog.Encode()) {
		t.Fatal("guarded and unguarded programs differ")
	}
}

// TestBisectNamesCulpritAndRecovers forces a corruption the per-pass checks
// cannot see (verifier-only, diff disabled) and checks culprit bisection
// identifies exactly the offending pass and returns a verifying program.
func TestBisectNamesCulpritAndRecovers(t *testing.T) {
	for _, pass := range []string{"SLM", "CC"} {
		t.Run(pass, func(t *testing.T) {
			m := parseDemo(t)
			opts := guardedOpts(&guard.FaultInjector{Pass: pass, Mode: guard.FaultUnverifiable})
			opts.GuardDiffInputs = 0 // blind the differential check on purpose
			res, err := Build(m, "count", opts)
			if err != nil {
				t.Fatalf("guarded build aborted: %v", err)
			}
			if res.FellBack != "bisect" {
				t.Fatalf("want bisect fallback, got %q (failures=%v)", res.FellBack, res.PassFailures)
			}
			if len(res.Culprits) != 1 || string(res.Culprits[0]) != pass {
				t.Fatalf("want culprits=[%s], got %v", pass, res.Culprits)
			}
			if !res.Verification.Passed {
				t.Fatalf("bisected program still rejected: %v", res.Verification.Err)
			}
			inputs := guard.Inputs(res.Prog.Hook, 8, 77)
			if derr := guard.DiffPrograms(res.Baseline, res.Prog, inputs); derr != nil {
				t.Fatalf("bisected program diverges from baseline: %v", derr)
			}
			// The surviving subset must still have optimized something.
			if res.Prog.NI() >= res.Baseline.NI() {
				t.Fatalf("bisect kept nothing: NI %d vs baseline %d", res.Prog.NI(), res.Baseline.NI())
			}
		})
	}
}

// TestGuardWorstCaseFallsBackToBaseline poisons every pass so that nothing
// survivable remains; the build must still return the baseline program
// rather than an error.
func TestGuardWorstCaseFallsBackToBaseline(t *testing.T) {
	m := parseDemo(t)
	opts := guardedOpts(&guard.FaultInjector{Pass: "*", Mode: guard.FaultUnverifiable})
	opts.GuardDiffInputs = 0
	res, err := Build(m, "count", opts)
	if err != nil {
		t.Fatalf("guarded build aborted: %v", err)
	}
	if res.FellBack != "baseline" {
		t.Fatalf("want baseline fallback, got %q (culprits=%v)", res.FellBack, res.Culprits)
	}
	if res.Prog.NI() != res.Baseline.NI() {
		t.Fatal("baseline fallback did not return the baseline")
	}
	if !res.Verification.Passed {
		t.Fatalf("baseline fallback rejected: %v", res.Verification.Err)
	}
}

// TestBaselineRejectionIsRecordedNotFatal is the satellite fix: a baseline
// that the verifier rejects must not fail the build when the optimized
// program verifies. A complexity limit between the optimized and baseline
// NPI makes exactly that split.
func TestBaselineRejectionIsRecordedNotFatal(t *testing.T) {
	m := parseDemo(t)
	ref, err := Build(m, "count", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	optNPI, baseNPI := ref.Verification.NPI, ref.BaselineVerification.NPI
	if optNPI >= baseNPI {
		t.Skipf("demo NPIs do not split: opt=%d base=%d", optNPI, baseNPI)
	}
	opts := DefaultOptions()
	opts.VerifierLimits = verifier.Limits{MaxProcessedInsns: optNPI + 1, MaxStates: 100_000}
	res, err := Build(parseDemo(t), "count", opts)
	if err != nil {
		t.Fatalf("baseline rejection aborted the build: %v", err)
	}
	if !res.Verification.Passed {
		t.Fatalf("optimized program should pass under limit %d: %v", optNPI+1, res.Verification.Err)
	}
	if res.BaselineVerification.Passed {
		t.Fatal("baseline should have been rejected under the tight limit")
	}
}

// TestOptimizerNamesConsistent pins the core.Optimizer names to the names
// the pass pipelines actually use, so Options.Enable subsets can never
// silently filter out a renamed pass.
func TestOptimizerNamesConsistent(t *testing.T) {
	wantBC := []Optimizer{CPDCE, SLM, CC, PO}
	got := bopt.Pipeline()
	if len(got) != len(wantBC) {
		t.Fatalf("bopt.Pipeline has %d passes, core knows %d", len(got), len(wantBC))
	}
	for i, p := range got {
		if string(wantBC[i]) != p.Name {
			t.Errorf("bytecode pass %d: core %q vs bopt %q", i, wantBC[i], p.Name)
		}
	}
	wantIR := []Optimizer{DAO, MoF}
	gotIR := irpass.Merlin()
	if len(gotIR) != len(wantIR) {
		t.Fatalf("irpass.Merlin has %d passes, core knows %d", len(gotIR), len(wantIR))
	}
	for i, p := range gotIR {
		if string(wantIR[i]) != p.Name {
			t.Errorf("IR pass %d: core %q vs irpass %q", i, wantIR[i], p.Name)
		}
	}
	// Every optimizer must belong to exactly one tier list.
	if len(AllOptimizers()) != len(wantBC)+len(wantIR) {
		t.Errorf("AllOptimizers out of sync with the tier pipelines")
	}
	// The injector's default pass universe must match too, or fault-injection
	// fuzzing would silently target nonexistent passes.
	univ := map[string]bool{}
	for _, n := range guard.DefaultPassNames() {
		univ[n] = true
	}
	for _, o := range AllOptimizers() {
		if !univ[string(o)] {
			t.Errorf("guard.DefaultPassNames missing %s", o)
		}
	}
}

// TestGuardedBuildOnTracepointHook runs the containment matrix's riskiest
// modes on a non-XDP hook to cover the tracepoint input sampler.
func TestGuardedBuildOnTracepointHook(t *testing.T) {
	specNames := []string{"CP&DCE", "MoF"}
	for _, pass := range specNames {
		m := parseDemo(t)
		opts := guardedOpts(&guard.FaultInjector{Pass: pass, Mode: guard.FaultCorrupt})
		opts.Hook = ebpf.HookTracepoint
		res, err := Build(m, "count", opts)
		if err != nil {
			t.Fatalf("%s: %v", pass, err)
		}
		if !named(res, pass) {
			t.Fatalf("%s: corruption not caught on tracepoint hook: %+v", pass, res.PassFailures)
		}
	}
}
