// Package core is Merlin's top-level pipeline (Fig 1): it drives the
// clang-analog generic IR cleanup, Merlin's IR refinement (opt), lowering to
// eBPF bytecode (llc), and Merlin's bytecode refinement — then optionally
// checks the result against the simulated kernel verifier. It is the public
// API the command-line tools, examples and every experiment build on.
//
// With Options.Guard set, every Merlin pass runs inside internal/guard:
// panics are recovered, a wall-clock budget is enforced, pass outputs are
// validated (structural invariants plus optional differential execution) and
// any failure rolls the pipeline back to the pre-pass snapshot instead of
// aborting the build. If the final program is still rejected by the
// verifier, Build delta-debugs the enabled optimizer set to find the culprit
// passes and returns the best program that verifies — the baseline in the
// worst case — rather than an error.
package core

import (
	"fmt"
	"time"

	"merlin/internal/analysis"
	"merlin/internal/bopt"
	"merlin/internal/codegen"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/ir"
	"merlin/internal/irpass"
	"merlin/internal/superopt"
	"merlin/internal/verifier"
)

// Optimizer identifies one of the paper's six optimizations.
type Optimizer string

// The six optimizers (paper §3-§4) plus the shared dependency analysis.
const (
	CPDCE Optimizer = "CP&DCE" // Opt 1, bytecode tier
	SLM   Optimizer = "SLM"    // Opt 2, bytecode tier
	DAO   Optimizer = "DAO"    // Opt 3, IR tier
	MoF   Optimizer = "MoF"    // Opt 4, IR tier
	CC    Optimizer = "CC"     // Opt 5, bytecode tier
	PO    Optimizer = "PO"     // Opt 6, bytecode tier
)

// AllOptimizers lists every optimizer in pipeline order.
func AllOptimizers() []Optimizer {
	return []Optimizer{DAO, MoF, CPDCE, SLM, CC, PO}
}

// Options configures a build.
type Options struct {
	// Hook selects the attachment point (affects verification and helpers).
	Hook ebpf.HookType
	// MCPU is the compiler ISA level: 2 (no ALU32) or 3. Table 1 compiles
	// XDP and Tracee at v2, Sysdig and Tetragon at v3.
	MCPU int
	// KernelALU32 reports whether the target kernel's verifier tracks ALU32
	// soundly; it gates the CC optimizer even for v2-compiled programs.
	KernelALU32 bool
	// Enable holds the optimizers to run; nil means all of them.
	Enable []Optimizer
	// Verify runs the simulated kernel verifier on the optimized program.
	// Without Guard, a rejected optimized program fails the build; with
	// Guard, it triggers culprit bisection instead. A rejected *baseline* is
	// only recorded in Result.BaselineVerification, never an error.
	Verify bool
	// VerifierVersion selects pruning heuristics when Verify is set.
	VerifierVersion verifier.KernelVersion
	// VerifierLimits overrides the kernel complexity limits when Verify is
	// set; the zero value means verifier.DefaultLimits. Deployments tune
	// this to match older kernels' smaller budgets.
	VerifierLimits verifier.Limits

	// Guard enables pass-level fault isolation: each Merlin pass runs inside
	// internal/guard with panic containment, a time budget and validated
	// rollback, recording failures in Result.PassFailures instead of
	// aborting the build.
	Guard bool
	// GuardDiffInputs is the number of sampled inputs used to differentially
	// validate each guarded pass output against its input. Zero disables the
	// differential check; structural invariants always run.
	GuardDiffInputs int
	// PassTimeout is the per-pass wall-clock budget for guarded passes.
	// Zero means guard.DefaultTimeout.
	PassTimeout time.Duration
	// Injector deterministically injects faults into guarded passes; tests
	// and merlin-fuzz use it to prove containment. Nil injects nothing.
	Injector *guard.FaultInjector

	// Superopt, when set, runs the caching peephole superoptimizer tier
	// (internal/superopt) after the bytecode refinement, recorded as the
	// "SO" pass. ALU32 replacements are additionally allowed whenever
	// KernelALU32 is set. During culprit bisection the tier is disabled:
	// bisection isolates the paper's six optimizers.
	Superopt *superopt.Config

	// Metrics, when set, records build telemetry (builds, per-pass wall
	// time, rollbacks, bisections, fallbacks, verifier verdicts) into its
	// registry after every Build.
	Metrics *Metrics
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options {
	return Options{Hook: ebpf.HookXDP, MCPU: 2, KernelALU32: true, Verify: true}
}

func (o Options) enabled(opt Optimizer) bool {
	if o.Enable == nil {
		return true
	}
	for _, e := range o.Enable {
		if e == opt {
			return true
		}
	}
	return false
}

// PassStat is the unified per-pass timing/effect record.
type PassStat struct {
	Name     string
	Tier     string // "ir" or "bytecode"
	Applied  int
	Duration time.Duration
}

// Result is the outcome of a build.
type Result struct {
	// Prog is the final (optimized) program.
	Prog *ebpf.Program
	// Baseline is the clang-only program (generic passes + llc, no Merlin
	// optimizers) — the paper's "native pipeline" comparison point.
	Baseline *ebpf.Program
	// Stats records each Merlin pass (IR and bytecode tiers).
	Stats []PassStat
	// MerlinTime is the total time spent in Merlin's own optimizers
	// (excluding the baseline clang/llc work) — the Fig 13 metric.
	MerlinTime time.Duration
	// Verification holds verifier stats for the optimized program when
	// Options.Verify was set.
	Verification verifier.Stats
	// BaselineVerification holds verifier stats for the baseline.
	BaselineVerification verifier.Stats

	// PassFailures records passes that failed under guarding and were rolled
	// back to their pre-pass snapshot (empty for clean builds).
	PassFailures []guard.PassFailure
	// Superopt holds the superoptimizer tier's stats when Options.Superopt
	// was set (nil after a bisection fallback, which disables the tier).
	Superopt *superopt.Stats
	// Culprits holds the optimizers culprit bisection identified as
	// responsible for a final verifier rejection.
	Culprits []Optimizer
	// FellBack reports how a guarded build degraded: "" for a normal build,
	// "bisect" when culprit bisection chose an optimizer subset, "baseline"
	// when no optimized candidate verified (or the pipeline itself failed).
	FellBack string
}

// NIReduction returns the paper's compactness metric: the fraction of
// instructions removed relative to the baseline.
func (r *Result) NIReduction() float64 {
	b := r.Baseline.NI()
	if b == 0 {
		return 0
	}
	return float64(b-r.Prog.NI()) / float64(b)
}

// guardDiffSeed seeds the sampled inputs of guarded differential checks.
const guardDiffSeed = 1

// Build compiles function fnName of mod through the full Merlin pipeline.
// The input module is never mutated.
func Build(mod *ir.Module, fnName string, opts Options) (*Result, error) {
	res, err := build(mod, fnName, opts)
	opts.Metrics.record(opts, res, err)
	return res, err
}

func build(mod *ir.Module, fnName string, opts Options) (*Result, error) {
	if opts.MCPU == 0 {
		opts.MCPU = 2
	}
	res := &Result{}

	// Baseline: clang -O2 analog + llc only. Local functions are inlined
	// first (the verifier checks them inside their callers; our llc analog
	// requires a single flat function). Baseline failures are fatal even
	// under guarding: with no baseline there is nothing to degrade to.
	baseMod := ir.Clone(mod)
	if _, err := irpass.Inline(baseMod); err != nil {
		return nil, fmt.Errorf("core: inline: %w", err)
	}
	genericMgr := &irpass.Manager{Passes: irpass.Generic()}
	genericMgr.Run(baseMod)
	baseline, err := codegen.Compile(baseMod, fnName, codegen.Options{MCPU: opts.MCPU, Hook: opts.Hook})
	if err != nil {
		return nil, fmt.Errorf("core: baseline: %w", err)
	}
	res.Baseline = baseline

	// Merlin pipeline: generic + IR refinement + llc + bytecode refinement.
	po, err := runPipeline(mod, fnName, opts, opts.enabled)
	if err != nil {
		if !opts.Guard {
			return nil, err
		}
		// The guarded pipeline only errors on its non-Merlin stages (inline,
		// generic cleanup, lowering); degrade to the baseline program.
		res.PassFailures = append(res.PassFailures, guard.PassFailure{
			Pass: "pipeline", Tier: "core", Kind: guard.FailError, Detail: err.Error(),
		})
		res.FellBack = "baseline"
		res.Prog = baseline.Clone()
	} else {
		res.Prog = po.prog
		res.Stats = po.stats
		res.MerlinTime = po.merlin
		res.PassFailures = po.failures
		res.Superopt = po.superopt
	}

	if opts.Verify {
		vopts := verifier.Options{Version: opts.VerifierVersion, Limits: opts.VerifierLimits}
		res.BaselineVerification = verifier.Verify(baseline, vopts)
		res.Verification = verifier.Verify(res.Prog, vopts)
		if !res.Verification.Passed {
			if !opts.Guard {
				return nil, fmt.Errorf("core: optimized program rejected by verifier: %w", res.Verification.Err)
			}
			res.PassFailures = append(res.PassFailures, guard.PassFailure{
				Pass: "verify", Tier: "final", Kind: guard.FailVerifier,
				Detail: fmt.Sprintf("optimized program rejected: %v", res.Verification.Err),
			})
			bisectCulprits(mod, fnName, opts, vopts, res)
		}
	}
	return res, nil
}

// BuildForDeploy is the load-time entry point used by the runtime lifecycle
// manager (internal/lifecycle): it is Build with guarding and verification
// forced on, because a deployment build must degrade — to a smaller optimizer
// subset or the baseline — rather than abort for an optimizer-caused
// failure, and must never stage a program the simulated verifier rejects
// without recording it. Differential-validation depth, the per-pass budget
// and the optimizer set still follow opts.
func BuildForDeploy(mod *ir.Module, fnName string, opts Options) (*Result, error) {
	opts.Guard = true
	opts.Verify = true
	return Build(mod, fnName, opts)
}

// pipeOut is the outcome of one optimized-pipeline run.
type pipeOut struct {
	prog     *ebpf.Program
	stats    []PassStat
	merlin   time.Duration
	failures []guard.PassFailure
	superopt *superopt.Stats
}

// runPipeline runs the optimized path — inline, generic cleanup, IR
// refinement, lowering, bytecode refinement — over a clone of mod, with the
// optimizer set restricted by enabled. With opts.Guard set, every Merlin
// pass is guarded and rolled back on failure; errors are then only possible
// from the shared non-Merlin stages.
func runPipeline(mod *ir.Module, fnName string, opts Options, enabled func(Optimizer) bool) (*pipeOut, error) {
	out := &pipeOut{}
	optMod := ir.Clone(mod)
	if _, err := irpass.Inline(optMod); err != nil {
		return nil, fmt.Errorf("core: inline: %w", err)
	}
	(&irpass.Manager{Passes: irpass.Generic()}).Run(optMod)

	var irPasses []irpass.Pass
	if enabled(DAO) {
		irPasses = append(irPasses, irpass.Pass{Name: string(DAO), Run: irpass.DataAlignment})
	}
	if enabled(MoF) {
		irPasses = append(irPasses, irpass.Pass{Name: string(MoF), Run: irpass.MacroOpFusion})
	}
	if !opts.Guard {
		irMgr := &irpass.Manager{Passes: irPasses}
		irMgr.Run(optMod)
		for _, s := range irMgr.Stats {
			out.stats = append(out.stats, PassStat{Name: s.Pass, Tier: "ir", Applied: s.Applied, Duration: s.Duration})
			out.merlin += s.Duration
		}
	} else {
		for _, p := range irPasses {
			optMod = runGuardedIRPass(optMod, p, fnName, opts, out)
		}
	}

	prog, err := codegen.Compile(optMod, fnName, codegen.Options{MCPU: opts.MCPU, Hook: opts.Hook})
	if err != nil {
		return nil, fmt.Errorf("core: llc: %w", err)
	}

	bopts := bopt.Options{ALU32: opts.KernelALU32}
	var bcPasses []bopt.Pass
	for _, p := range bopt.Pipeline() {
		if enabled(Optimizer(p.Name)) {
			bcPasses = append(bcPasses, p)
		}
	}
	// Dep analysis is charged whenever any bytecode pass runs.
	if len(bcPasses) > 0 {
		depStart := time.Now()
		cur := prog.Clone()
		cfg, err := analysis.BuildCFG(cur)
		if err != nil {
			if !opts.Guard {
				return nil, fmt.Errorf("core: bytecode refinement: %w", err)
			}
			out.failures = append(out.failures, guard.PassFailure{
				Pass: "Dep", Tier: "bytecode", Kind: guard.FailError, Detail: err.Error(),
			})
			out.prog = prog
			return out, nil
		}
		analysis.Liveness(cfg)
		analysis.Constants(cfg)
		out.stats = append(out.stats, PassStat{Name: "Dep", Tier: "bytecode", Duration: time.Since(depStart)})
		out.merlin += time.Since(depStart)

		for _, p := range bcPasses {
			if !opts.Guard {
				start := time.Now()
				next, applied, err := p.Run(cur, bopts)
				if err != nil {
					return nil, fmt.Errorf("core: bytecode refinement: %w", err)
				}
				cur = next
				out.stats = append(out.stats, PassStat{Name: p.Name, Tier: "bytecode", Applied: applied, Duration: time.Since(start)})
				out.merlin += time.Since(start)
			} else {
				cur = runGuardedBytecodePass(cur, p, bopts, opts, out)
			}
		}
		prog = cur
	}

	// Superoptimizer tier: runs after the rule-based refinement as the "SO"
	// pass, guarded exactly like any bytecode pass when guarding is on.
	if opts.Superopt != nil {
		socfg := *opts.Superopt
		socfg.ALU32 = socfg.ALU32 || opts.KernelALU32
		var last superopt.Stats
		pass := bopt.Pass{Name: "SO", Run: func(p *ebpf.Program, _ bopt.Options) (*ebpf.Program, int, error) {
			np, st, err := superopt.Optimize(p, socfg)
			last = st
			return np, st.Rewrites, err
		}}
		if !opts.Guard {
			start := time.Now()
			next, applied, err := pass.Run(prog, bopts)
			if err != nil {
				return nil, fmt.Errorf("core: superopt: %w", err)
			}
			prog = next
			out.stats = append(out.stats, PassStat{Name: "SO", Tier: "bytecode", Applied: applied, Duration: time.Since(start)})
			out.merlin += time.Since(start)
		} else {
			prog = runGuardedBytecodePass(prog, pass, bopts, opts, out)
		}
		out.superopt = &last
	}
	out.prog = prog
	return out, nil
}

// runGuardedIRPass applies one IR-tier pass to a private clone of cur under
// the guard, validates the result (well-formedness, lowering, optional
// differential execution) and returns the new module — or cur unchanged,
// recording the failure, when any containment path fires.
func runGuardedIRPass(cur *ir.Module, p irpass.Pass, fnName string, opts Options, out *pipeOut) *ir.Module {
	work := ir.Clone(cur)
	applied := 0
	start := time.Now()
	fail := guard.Exec(p.Name, "ir", opts.PassTimeout, func() error {
		opts.Injector.Before(p.Name, opts.PassTimeout)
		for _, f := range work.Funcs {
			applied += p.Run(f)
		}
		opts.Injector.MutateIR(p.Name, work)
		return nil
	})
	dur := time.Since(start)

	var compiled *ebpf.Program
	if fail == nil {
		if err := ir.Validate(work); err != nil {
			fail = &guard.PassFailure{Pass: p.Name, Tier: "ir", Kind: guard.FailInvariant, Detail: err.Error()}
		}
	}
	if fail == nil {
		// Validated lowering: an output module that no longer compiles is a
		// pass fault, not a build failure.
		c, err := codegen.Compile(work, fnName, codegen.Options{MCPU: opts.MCPU, Hook: opts.Hook})
		if err != nil {
			fail = &guard.PassFailure{Pass: p.Name, Tier: "ir", Kind: guard.FailInvariant, Detail: fmt.Sprintf("does not lower: %v", err)}
		} else {
			compiled = c
		}
	}
	if fail == nil && opts.GuardDiffInputs > 0 {
		// Differential execution of post-pass vs pre-pass code. If the
		// reference module fails to compile the check is skipped — the pass
		// cannot be blamed for a pre-existing problem.
		if ref, err := codegen.Compile(cur, fnName, codegen.Options{MCPU: opts.MCPU, Hook: opts.Hook}); err == nil {
			inputs := guard.Inputs(opts.Hook, opts.GuardDiffInputs, guardDiffSeed)
			if derr := guard.DiffPrograms(ref, compiled, inputs); derr != nil {
				fail = &guard.PassFailure{Pass: p.Name, Tier: "ir", Kind: guard.FailDiff, Detail: derr.Error()}
			}
		}
	}
	if fail != nil {
		out.failures = append(out.failures, *fail)
		return cur
	}
	out.stats = append(out.stats, PassStat{Name: p.Name, Tier: "ir", Applied: applied, Duration: dur})
	out.merlin += dur
	return work
}

// runGuardedBytecodePass applies one bytecode-tier pass to a private clone of
// cur under the guard, validates the result and returns it — or cur
// unchanged, recording the failure, when any containment path fires.
func runGuardedBytecodePass(cur *ebpf.Program, p bopt.Pass, bopts bopt.Options, opts Options, out *pipeOut) *ebpf.Program {
	work := cur.Clone()
	var next *ebpf.Program
	applied := 0
	start := time.Now()
	fail := guard.Exec(p.Name, "bytecode", opts.PassTimeout, func() error {
		opts.Injector.Before(p.Name, opts.PassTimeout)
		n, a, err := p.Run(work, bopts)
		if err != nil {
			return err
		}
		next = opts.Injector.MutateBytecode(p.Name, n)
		applied = a
		return nil
	})
	dur := time.Since(start)

	if fail == nil {
		if err := guard.ValidateProgram(next); err != nil {
			fail = &guard.PassFailure{Pass: p.Name, Tier: "bytecode", Kind: guard.FailInvariant, Detail: err.Error()}
		}
	}
	if fail == nil && opts.GuardDiffInputs > 0 {
		inputs := guard.Inputs(opts.Hook, opts.GuardDiffInputs, guardDiffSeed)
		if err := guard.DiffPrograms(cur, next, inputs); err != nil {
			fail = &guard.PassFailure{Pass: p.Name, Tier: "bytecode", Kind: guard.FailDiff, Detail: err.Error()}
		}
	}
	if fail != nil {
		out.failures = append(out.failures, *fail)
		return cur
	}
	out.stats = append(out.stats, PassStat{Name: p.Name, Tier: "bytecode", Applied: applied, Duration: dur})
	out.merlin += dur
	return next
}

// bisectCulprits delta-debugs a final verifier rejection over the enabled
// optimizer set: starting from the empty set it re-adds optimizers in
// pipeline order, keeping each only while the rebuilt program still
// verifies. The rejected additions are the minimal culprit set under this
// greedy order; the surviving subset yields the best program that verifies.
// With nothing survivable, Prog falls back to the (already compiled)
// baseline. res is updated in place.
func bisectCulprits(mod *ir.Module, fnName string, opts Options, vopts verifier.Options, res *Result) {
	// Bisection isolates the six paper optimizers; the superopt tier is
	// switched off for the trials (and for the chosen fallback output) so it
	// can neither mask nor be blamed for a rule-based culprit.
	opts.Superopt = nil
	res.Superopt = nil
	var enabledList []Optimizer
	for _, o := range AllOptimizers() {
		if opts.enabled(o) {
			enabledList = append(enabledList, o)
		}
	}

	kept := []Optimizer{}
	var best *pipeOut
	var bestStats verifier.Stats
	inSet := func(set []Optimizer) func(Optimizer) bool {
		return func(o Optimizer) bool {
			for _, e := range set {
				if e == o {
					return true
				}
			}
			return false
		}
	}
	for _, o := range enabledList {
		trial := append(append([]Optimizer{}, kept...), o)
		po, err := runPipeline(mod, fnName, opts, inSet(trial))
		if err != nil {
			res.Culprits = append(res.Culprits, o)
			continue
		}
		st := verifier.Verify(po.prog, vopts)
		if st.Passed {
			kept = trial
			best = po
			bestStats = st
		} else {
			res.Culprits = append(res.Culprits, o)
		}
	}

	if best == nil {
		// Even the empty pipeline output was never built verifying; the
		// baseline is the last resort (returned even if itself rejected —
		// the rejection is recorded in BaselineVerification).
		res.Prog = res.Baseline.Clone()
		res.Stats = nil
		res.MerlinTime = 0
		res.Verification = res.BaselineVerification
		res.FellBack = "baseline"
		return
	}
	res.Prog = best.prog
	res.Stats = best.stats
	res.MerlinTime = best.merlin
	res.PassFailures = append(res.PassFailures, best.failures...)
	res.Verification = bestStats
	res.FellBack = "bisect"
}
