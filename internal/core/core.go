// Package core is Merlin's top-level pipeline (Fig 1): it drives the
// clang-analog generic IR cleanup, Merlin's IR refinement (opt), lowering to
// eBPF bytecode (llc), and Merlin's bytecode refinement — then optionally
// checks the result against the simulated kernel verifier. It is the public
// API the command-line tools, examples and every experiment build on.
package core

import (
	"fmt"
	"time"

	"merlin/internal/analysis"
	"merlin/internal/bopt"
	"merlin/internal/codegen"
	"merlin/internal/ebpf"
	"merlin/internal/ir"
	"merlin/internal/irpass"
	"merlin/internal/verifier"
)

// Optimizer identifies one of the paper's six optimizations.
type Optimizer string

// The six optimizers (paper §3-§4) plus the shared dependency analysis.
const (
	CPDCE Optimizer = "CP&DCE" // Opt 1, bytecode tier
	SLM   Optimizer = "SLM"    // Opt 2, bytecode tier
	DAO   Optimizer = "DAO"    // Opt 3, IR tier
	MoF   Optimizer = "MoF"    // Opt 4, IR tier
	CC    Optimizer = "CC"     // Opt 5, bytecode tier
	PO    Optimizer = "PO"     // Opt 6, bytecode tier
)

// AllOptimizers lists every optimizer in pipeline order.
func AllOptimizers() []Optimizer {
	return []Optimizer{DAO, MoF, CPDCE, SLM, CC, PO}
}

// Options configures a build.
type Options struct {
	// Hook selects the attachment point (affects verification and helpers).
	Hook ebpf.HookType
	// MCPU is the compiler ISA level: 2 (no ALU32) or 3. Table 1 compiles
	// XDP and Tracee at v2, Sysdig and Tetragon at v3.
	MCPU int
	// KernelALU32 reports whether the target kernel's verifier tracks ALU32
	// soundly; it gates the CC optimizer even for v2-compiled programs.
	KernelALU32 bool
	// Enable holds the optimizers to run; nil means all of them.
	Enable []Optimizer
	// Verify runs the simulated kernel verifier on the optimized program
	// and fails the build if it is rejected.
	Verify bool
	// VerifierVersion selects pruning heuristics when Verify is set.
	VerifierVersion verifier.KernelVersion
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options {
	return Options{Hook: ebpf.HookXDP, MCPU: 2, KernelALU32: true, Verify: true}
}

func (o Options) enabled(opt Optimizer) bool {
	if o.Enable == nil {
		return true
	}
	for _, e := range o.Enable {
		if e == opt {
			return true
		}
	}
	return false
}

// PassStat is the unified per-pass timing/effect record.
type PassStat struct {
	Name     string
	Tier     string // "ir" or "bytecode"
	Applied  int
	Duration time.Duration
}

// Result is the outcome of a build.
type Result struct {
	// Prog is the final (optimized) program.
	Prog *ebpf.Program
	// Baseline is the clang-only program (generic passes + llc, no Merlin
	// optimizers) — the paper's "native pipeline" comparison point.
	Baseline *ebpf.Program
	// Stats records each Merlin pass (IR and bytecode tiers).
	Stats []PassStat
	// MerlinTime is the total time spent in Merlin's own optimizers
	// (excluding the baseline clang/llc work) — the Fig 13 metric.
	MerlinTime time.Duration
	// Verification holds verifier stats for the optimized program when
	// Options.Verify was set.
	Verification verifier.Stats
	// BaselineVerification holds verifier stats for the baseline.
	BaselineVerification verifier.Stats
}

// NIReduction returns the paper's compactness metric: the fraction of
// instructions removed relative to the baseline.
func (r *Result) NIReduction() float64 {
	b := r.Baseline.NI()
	if b == 0 {
		return 0
	}
	return float64(b-r.Prog.NI()) / float64(b)
}

// Build compiles function fnName of mod through the full Merlin pipeline.
// The input module is never mutated.
func Build(mod *ir.Module, fnName string, opts Options) (*Result, error) {
	if opts.MCPU == 0 {
		opts.MCPU = 2
	}
	res := &Result{}

	// Baseline: clang -O2 analog + llc only. Local functions are inlined
	// first (the verifier checks them inside their callers; our llc analog
	// requires a single flat function).
	baseMod := ir.Clone(mod)
	if _, err := irpass.Inline(baseMod); err != nil {
		return nil, fmt.Errorf("core: inline: %w", err)
	}
	genericMgr := &irpass.Manager{Passes: irpass.Generic()}
	genericMgr.Run(baseMod)
	baseline, err := codegen.Compile(baseMod, fnName, codegen.Options{MCPU: opts.MCPU, Hook: opts.Hook})
	if err != nil {
		return nil, fmt.Errorf("core: baseline: %w", err)
	}
	res.Baseline = baseline

	// Merlin pipeline: generic + IR refinement + llc + bytecode refinement.
	optMod := ir.Clone(mod)
	if _, err := irpass.Inline(optMod); err != nil {
		return nil, fmt.Errorf("core: inline: %w", err)
	}
	(&irpass.Manager{Passes: irpass.Generic()}).Run(optMod)

	var irPasses []irpass.Pass
	if opts.enabled(DAO) {
		irPasses = append(irPasses, irpass.Pass{Name: string(DAO), Run: irpass.DataAlignment})
	}
	if opts.enabled(MoF) {
		irPasses = append(irPasses, irpass.Pass{Name: string(MoF), Run: irpass.MacroOpFusion})
	}
	irMgr := &irpass.Manager{Passes: irPasses}
	irMgr.Run(optMod)
	for _, s := range irMgr.Stats {
		res.Stats = append(res.Stats, PassStat{Name: s.Pass, Tier: "ir", Applied: s.Applied, Duration: s.Duration})
		res.MerlinTime += s.Duration
	}

	prog, err := codegen.Compile(optMod, fnName, codegen.Options{MCPU: opts.MCPU, Hook: opts.Hook})
	if err != nil {
		return nil, fmt.Errorf("core: llc: %w", err)
	}

	bopts := bopt.Options{ALU32: opts.KernelALU32}
	var bcPasses []bopt.Pass
	for _, p := range bopt.Pipeline() {
		if opts.enabled(Optimizer(p.Name)) {
			bcPasses = append(bcPasses, p)
		}
	}
	// Dep analysis is charged whenever any bytecode pass runs.
	if len(bcPasses) > 0 {
		cur, stats, err := runByteTier(prog, bcPasses, bopts)
		if err != nil {
			return nil, fmt.Errorf("core: bytecode refinement: %w", err)
		}
		prog = cur
		for _, s := range stats {
			res.Stats = append(res.Stats, PassStat{Name: s.Pass, Tier: "bytecode", Applied: s.Applied, Duration: s.Duration})
			res.MerlinTime += s.Duration
		}
	}
	res.Prog = prog

	if opts.Verify {
		vopts := verifier.Options{Version: opts.VerifierVersion}
		res.Verification = verifier.Verify(prog, vopts)
		if !res.Verification.Passed {
			return nil, fmt.Errorf("core: optimized program rejected by verifier: %w", res.Verification.Err)
		}
		res.BaselineVerification = verifier.Verify(baseline, vopts)
		if !res.BaselineVerification.Passed {
			return nil, fmt.Errorf("core: baseline program rejected by verifier: %w", res.BaselineVerification.Err)
		}
	}
	return res, nil
}

// runByteTier mirrors bopt.RunAll but with a pass subset. The shared
// dependency analysis (Dep) is charged once up front, as in Fig 13a.
func runByteTier(prog *ebpf.Program, passes []bopt.Pass, opts bopt.Options) (*ebpf.Program, []bopt.Stat, error) {
	cur := prog.Clone()
	var stats []bopt.Stat
	depStart := time.Now()
	cfg, err := analysis.BuildCFG(cur)
	if err != nil {
		return nil, nil, err
	}
	analysis.Liveness(cfg)
	analysis.Constants(cfg)
	stats = append(stats, bopt.Stat{Pass: "Dep", Duration: time.Since(depStart)})
	for _, p := range passes {
		start := time.Now()
		next, applied, err := p.Run(cur, opts)
		if err != nil {
			return nil, nil, err
		}
		cur = next
		stats = append(stats, bopt.Stat{Pass: p.Name, Applied: applied, Duration: time.Since(start)})
	}
	return cur, stats, nil
}
