package experiments

import (
	"fmt"
	"time"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/k2"
)

// Fig13aRow records per-optimizer compile cost for one program.
type Fig13aRow struct {
	Program   string
	Suite     string
	NI        int
	PassTimes map[string]time.Duration
	Total     time.Duration
}

// Fig13a measures the additional compilation cost of each optimizer across
// the corpus.
func Fig13a(cfg Config) ([]Fig13aRow, error) {
	specs := corpus.XDP()
	for _, s := range [][]*corpus.ProgramSpec{corpus.Sysdig(), corpus.Tetragon(), corpus.Tracee()} {
		specs = append(specs, sample(s, cfg.stride())...)
	}
	var rows []Fig13aRow
	for _, spec := range specs {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, nil, false))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		row := Fig13aRow{
			Program:   spec.Name,
			Suite:     spec.Suite,
			NI:        res.Baseline.NI(),
			PassTimes: map[string]time.Duration{},
			Total:     res.MerlinTime,
		}
		for _, st := range res.Stats {
			row.PassTimes[st.Name] += st.Duration
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig13bRow compares Merlin's measured compile time with K2's modeled
// search time on one XDP program.
type Fig13bRow struct {
	Program    string
	NI         int
	MerlinTime time.Duration
	K2Time     time.Duration
	Speedup    float64
}

// Fig13b reproduces the compile-time comparison. K2's time comes from the
// calibrated model (its real search takes minutes to days, §5.5); Merlin's
// is measured.
func Fig13b(cfg Config) ([]Fig13bRow, error) {
	var rows []Fig13bRow
	for _, spec := range corpus.XDP() {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, nil, false))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		mt := res.MerlinTime
		if mt <= 0 {
			mt = time.Microsecond
		}
		kt := k2.ModeledSearchTime(res.Baseline.NI())
		rows = append(rows, Fig13bRow{
			Program:    spec.Name,
			NI:         res.Baseline.NI(),
			MerlinTime: mt,
			K2Time:     kt,
			Speedup:    float64(kt) / float64(mt),
		})
	}
	return rows, nil
}
