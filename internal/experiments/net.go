package experiments

import (
	"fmt"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ebpf"
	"merlin/internal/k2"
	"merlin/internal/netbench"
)

// table3Programs are the four forwarding-capable XDP programs (§5.3).
var table3Programs = []string{"xdp2", "xdp_router_ipv4", "xdp_fwd", "xdp-balancer"}

// Table3Row is one program's throughput and latency comparison.
type Table3Row struct {
	Program string
	// Mpps per system.
	ThroughputClang  float64
	ThroughputK2     float64
	ThroughputMerlin float64
	// LatencyUS[load][system] with systems ordered clang, k2, merlin and an
	// extra leading "load" Mpps column per the paper's format.
	LoadMpps  [4]float64
	LatencyUS [4][3]float64
}

// xdpSpec fetches an XDP corpus program by name.
func xdpSpec(name string) (*corpus.ProgramSpec, error) {
	for _, s := range corpus.XDP() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("no XDP program %q", name)
}

// buildThreeVersions produces the clang, K2 and Merlin variants of a program.
func buildThreeVersions(spec *corpus.ProgramSpec) (clang, k2prog, merlin *ebpf.Program, err error) {
	res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, nil, true))
	if err != nil {
		return nil, nil, nil, err
	}
	clang, merlin = res.Baseline, res.Prog
	iter := 600
	if clang.NI() > 500 {
		iter = 200
	}
	out, _, kerr := k2.Optimize(clang, k2.Options{Seed: 5, Iterations: iter})
	if kerr != nil {
		out = clang // outside K2's envelope: it ships the original
	}
	return clang, out, merlin, nil
}

// Table3 measures throughput and the four-level latency matrix.
func Table3(cfg Config) ([]Table3Row, error) {
	tr := netbench.NewTrace(400, 42)
	var rows []Table3Row
	for _, name := range table3Programs {
		spec, err := xdpSpec(name)
		if err != nil {
			return nil, err
		}
		clang, k2p, merlin, err := buildThreeVersions(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		profiles := make([]*netbench.Profile, 3)
		for i, p := range []*ebpf.Program{clang, k2p, merlin} {
			pr, err := netbench.ProfileProgram(p, tr)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			profiles[i] = pr
		}
		row := Table3Row{
			Program:          name,
			ThroughputClang:  profiles[0].ThroughputMpps(),
			ThroughputK2:     profiles[1].ThroughputMpps(),
			ThroughputMerlin: profiles[2].ThroughputMpps(),
		}
		best := row.ThroughputClang
		for _, v := range []float64{row.ThroughputK2, row.ThroughputMerlin} {
			if v > best {
				best = v
			}
		}
		for li := 0; li < 4; li++ {
			rate := netbench.OfferedRate(netbench.Load(li), row.ThroughputClang, best)
			row.LoadMpps[li] = rate / 1e6
			for si, pr := range profiles {
				row.LatencyUS[li][si] = pr.LatencyUS(rate)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig11Row holds hardware counters for one program/system/load combination.
type Fig11Row struct {
	Program         string
	System          string // clang | k2 | merlin
	Load            string // low | saturate
	CacheMissPer1k  float64
	CacheRefPer1k   float64
	BranchMissPer1k float64
	ContextSwitches float64 // per 5-second window, as the paper reports
}

// Fig11 gathers cache, branch and context-switch statistics for the four
// forwarding programs under low and saturate workloads.
func Fig11(cfg Config) ([]Fig11Row, error) {
	tr := netbench.NewTrace(400, 42)
	var rows []Fig11Row
	for _, name := range table3Programs {
		spec, err := xdpSpec(name)
		if err != nil {
			return nil, err
		}
		clang, k2p, merlin, err := buildThreeVersions(spec)
		if err != nil {
			return nil, err
		}
		systems := []struct {
			name string
			prog *ebpf.Program
		}{{"clang", clang}, {"k2", k2p}, {"merlin", merlin}}
		var clangTput float64
		for _, sys := range systems {
			pr, err := netbench.ProfileProgram(sys.prog, tr)
			if err != nil {
				return nil, err
			}
			if sys.name == "clang" {
				clangTput = pr.ThroughputMpps()
			}
			for _, load := range []netbench.Load{netbench.LoadLow, netbench.LoadSaturate} {
				rate := netbench.OfferedRate(load, clangTput, pr.ThroughputMpps())
				rows = append(rows, Fig11Row{
					Program:         name,
					System:          sys.name,
					Load:            load.String(),
					CacheMissPer1k:  pr.CacheMissesPer1k(),
					CacheRefPer1k:   pr.CacheRefsPer1k(),
					BranchMissPer1k: pr.BranchMissesPer1k(),
					ContextSwitches: pr.ContextSwitches(rate, 5),
				})
			}
		}
	}
	return rows, nil
}

// Fig14Row is one cumulative-optimizer stage of the xdp-balancer ablation.
type Fig14Row struct {
	Stage          string
	NI             int
	ThroughputMpps float64
	LatencyUS      [4]float64
	CacheMissPer1k float64
	CtxSwitches    float64
}

// Fig14 applies the optimizers cumulatively to xdp-balancer and measures
// each stage (also supplies Fig 11d's counters).
func Fig14(cfg Config) ([]Fig14Row, error) {
	spec, err := xdpSpec("xdp-balancer")
	if err != nil {
		return nil, err
	}
	tr := netbench.NewTrace(300, 42)
	stages := []struct {
		name   string
		enable []core.Optimizer
	}{
		{"clang", []core.Optimizer{}},
		{"+DAO", stageOrder[:1]},
		{"+MoF", stageOrder[:2]},
		{"+CP&DCE", stageOrder[:3]},
		{"+SLM", stageOrder[:4]},
		{"+CC", stageOrder[:5]},
		{"+PO", stageOrder[:6]},
	}
	// First pass: compute clang and best throughput for load levels.
	var profiles []*netbench.Profile
	var nis []int
	for _, st := range stages {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, st.enable, false))
		if err != nil {
			return nil, err
		}
		pr, err := netbench.ProfileProgram(res.Prog, tr)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, pr)
		nis = append(nis, res.Prog.NI())
	}
	clangTput := profiles[0].ThroughputMpps()
	best := clangTput
	for _, pr := range profiles {
		if v := pr.ThroughputMpps(); v > best {
			best = v
		}
	}
	var rows []Fig14Row
	for i, st := range stages {
		pr := profiles[i]
		row := Fig14Row{
			Stage:          st.name,
			NI:             nis[i],
			ThroughputMpps: pr.ThroughputMpps(),
			CacheMissPer1k: pr.CacheMissesPer1k(),
		}
		for li := 0; li < 4; li++ {
			rate := netbench.OfferedRate(netbench.Load(li), clangTput, best)
			row.LatencyUS[li] = pr.LatencyUS(rate)
			if li == 3 {
				row.CtxSwitches = pr.ContextSwitches(rate, 5)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
