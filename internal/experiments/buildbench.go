package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"merlin/internal/buildsvc"
	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ir"
	"merlin/internal/superopt"
)

// This experiment prices the optimization-as-a-service path: how long a
// superopt-enabled build takes through internal/buildsvc under three cache
// regimes, per XDP corpus program.
//
//	cold       nothing cached: the full pipeline plus every enumerative
//	           window search.
//	warm       same daemon, same request: the content-addressed artifact
//	           cache answers without running any pass.
//	federated  a different daemon that never searched anything, after a
//	           verdict-cache federation sync: the pipeline runs, but every
//	           window verdict is a cache hit (searches must be zero).
//
// The gap between cold and federated is what one fleet member's search pays
// forward to every other member; the gap between cold and warm is what the
// artifact cache saves a single daemon on repeat builds.

// BuildBenchRow is one XDP program's measurement.
type BuildBenchRow struct {
	Program string `json:"program"`
	NI      int    `json:"ni"`
	// Wall-clock nanoseconds per Submit, per regime.
	ColdNs int64 `json:"cold_ns"`
	WarmNs int64 `json:"warm_ns"`
	FedNs  int64 `json:"fed_ns"`
	// Superopt activity: the cold build searches, the federated build only
	// hits (FedSearches is asserted zero by BuildBench itself).
	ColdSearches int `json:"cold_searches"`
	FedHits      int `json:"fed_hits"`
}

// BuildBenchResult aggregates the corpus sweep. Aggregate figures are sums
// over the corpus (the cost of building everything once per regime).
type BuildBenchResult struct {
	Rows   []BuildBenchRow `json:"rows"`
	Budget int             `json:"budget"`
	ColdNs int64           `json:"cold_ns_total"`
	WarmNs int64           `json:"warm_ns_total"`
	FedNs  int64           `json:"fed_ns_total"`
}

// WarmSpeedup is the corpus-aggregate cold/warm latency ratio.
func (res *BuildBenchResult) WarmSpeedup() float64 {
	return float64(res.ColdNs) / float64(res.WarmNs)
}

// FedSpeedup is the corpus-aggregate cold/federated latency ratio — what
// cache federation buys a daemon that never ran a search itself.
func (res *BuildBenchResult) FedSpeedup() float64 {
	return float64(res.ColdNs) / float64(res.FedNs)
}

// BuildBench sweeps the XDP corpus through a build service three times: cold
// (fresh verdict + artifact caches), warm (resubmitted to the same service),
// and federated (a second service whose verdict cache was filled by merging
// the first's export, artifact cache empty). All three regimes share one
// content-addressed request per program, so warm must come back cached and
// federated must search nothing — both are asserted, not just measured.
func BuildBench(budget int) (*BuildBenchResult, error) {
	if budget <= 0 {
		budget = superopt.DefaultBudget
	}
	specs := corpus.XDP()
	reqs := make([]buildsvc.Request, len(specs))

	soA := superopt.NewMemCache()
	svcA := buildsvc.New(buildsvc.Config{Workers: 1})
	defer svcA.Close()
	res := &BuildBenchResult{Budget: budget}

	for i, spec := range specs {
		reqs[i] = buildsvc.Request{
			Source: []byte(ir.Print(spec.Mod)),
			Func:   spec.Func,
			Opts: core.Options{
				Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true,
				Superopt: &superopt.Config{Cache: soA, Budget: budget},
			},
		}
		start := time.Now()
		br, err := svcA.Submit(reqs[i])
		if err != nil {
			return nil, fmt.Errorf("buildbench: %s: cold build: %w", spec.Name, err)
		}
		if br.Outcome != buildsvc.OutcomeBuilt {
			return nil, fmt.Errorf("buildbench: %s: cold outcome %q, want built", spec.Name, br.Outcome)
		}
		row := BuildBenchRow{
			Program: spec.Name, NI: br.Prog.NI(),
			ColdNs:       time.Since(start).Nanoseconds(),
			ColdSearches: br.Stats.Searches,
		}
		res.Rows = append(res.Rows, row)
	}

	for i, spec := range specs {
		start := time.Now()
		br, err := svcA.Submit(reqs[i])
		if err != nil {
			return nil, fmt.Errorf("buildbench: %s: warm build: %w", spec.Name, err)
		}
		if br.Outcome != buildsvc.OutcomeCached {
			return nil, fmt.Errorf("buildbench: %s: warm outcome %q, want cached", spec.Name, br.Outcome)
		}
		res.Rows[i].WarmNs = time.Since(start).Nanoseconds()
	}

	// Federate: the second service's verdict cache is a merge of the first's
	// full export — exactly what a controller fcache round delivers to a
	// worker that never searched.
	blob, _, _, err := soA.Export(0)
	if err != nil {
		return nil, fmt.Errorf("buildbench: export verdicts: %w", err)
	}
	soB := superopt.NewMemCache()
	if _, err := soB.Merge(blob); err != nil {
		return nil, fmt.Errorf("buildbench: merge verdicts: %w", err)
	}
	svcB := buildsvc.New(buildsvc.Config{Workers: 1})
	defer svcB.Close()
	for i, spec := range specs {
		req := reqs[i]
		req.Opts.Superopt = &superopt.Config{Cache: soB, Budget: budget}
		start := time.Now()
		br, err := svcB.Submit(req)
		if err != nil {
			return nil, fmt.Errorf("buildbench: %s: federated build: %w", spec.Name, err)
		}
		if br.Outcome != buildsvc.OutcomeBuilt {
			return nil, fmt.Errorf("buildbench: %s: federated outcome %q, want built", spec.Name, br.Outcome)
		}
		if br.Stats.Searches != 0 {
			return nil, fmt.Errorf("buildbench: %s: federated build ran %d searches, want 0 (federation failed)",
				spec.Name, br.Stats.Searches)
		}
		res.Rows[i].FedNs = time.Since(start).Nanoseconds()
		res.Rows[i].FedHits = br.Stats.CacheHits
	}

	for _, r := range res.Rows {
		res.ColdNs += r.ColdNs
		res.WarmNs += r.WarmNs
		res.FedNs += r.FedNs
	}
	return res, nil
}

// buildBenchRun is one bench_build.json trajectory entry.
type buildBenchRun struct {
	Time        string  `json:"time"`
	Budget      int     `json:"budget"`
	ColdNs      int64   `json:"cold_ns_total"`
	WarmNs      int64   `json:"warm_ns_total"`
	FedNs       int64   `json:"fed_ns_total"`
	WarmSpeedup float64 `json:"warm_speedup"`
	FedSpeedup  float64 `json:"fed_speedup"`

	Rows []BuildBenchRow `json:"rows"`
}

// AppendBuildBenchJSON appends this run to the trajectory artifact at path
// (a JSON array of runs, created if missing), mirroring bench_vm.json.
func AppendBuildBenchJSON(path string, res *BuildBenchResult) error {
	var runs []buildBenchRun
	if raw, err := os.ReadFile(path); err == nil {
		// A corrupt or foreign file starts a fresh trajectory rather than
		// failing the gate.
		_ = json.Unmarshal(raw, &runs)
	}
	runs = append(runs, buildBenchRun{
		Time:        time.Now().UTC().Format(time.RFC3339),
		Budget:      res.Budget,
		ColdNs:      res.ColdNs,
		WarmNs:      res.WarmNs,
		FedNs:       res.FedNs,
		WarmSpeedup: res.WarmSpeedup(),
		FedSpeedup:  res.FedSpeedup(),
		Rows:        res.Rows,
	})
	raw, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
