package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/netbench"
)

// This experiment measures the host-side execution engine itself: how fast
// the testbed serves traffic through a program, in wall-clock ns/packet,
// under three serving loops over the XDP corpus.
//
//	seed    the pre-engine merlin-bench loop: reference switch interpreter,
//	        a context allocated per packet, cache and branch models charged.
//	single  the reference interpreter in deployment configuration (no
//	        hardware models) — isolates the engine+batch win from the
//	        modelling cost.
//	batch   the pre-decoded direct-threaded engine via RunBatch with reused
//	        context buffers — the serving path lifecycle.ServeBatch uses.
//
// The differential rig in internal/difftest proves the three loops compute
// identical results; this experiment prices them.

// VMBenchRow is one XDP program's measurement.
type VMBenchRow struct {
	Program  string  `json:"program"`
	NI       int     `json:"ni"`
	SeedNs   float64 `json:"seed_ns_per_pkt"`
	SingleNs float64 `json:"single_ns_per_pkt"`
	BatchNs  float64 `json:"batch_ns_per_pkt"`
}

// SeedSpeedup is the per-program seed-loop/batch-loop throughput ratio.
func (r VMBenchRow) SeedSpeedup() float64 { return r.SeedNs / r.BatchNs }

// SingleSpeedup is the per-program single-loop/batch-loop ratio.
func (r VMBenchRow) SingleSpeedup() float64 { return r.SingleNs / r.BatchNs }

// VMBenchResult aggregates the corpus sweep. The aggregate ns figures are
// equal-packets sums: the cost of pushing one packet through every program
// in the corpus (one corpus pass), weighting each program equally rather
// than by how many packets its measurement window happened to fit.
type VMBenchResult struct {
	Rows      []VMBenchRow `json:"rows"`
	BatchSize int          `json:"batch_size"`
	SeedNs    float64      `json:"seed_ns_per_pass"`
	SingleNs  float64      `json:"single_ns_per_pass"`
	BatchNs   float64      `json:"batch_ns_per_pass"`
}

// SeedSpeedup is the corpus-aggregate seed/batch throughput ratio — the
// headline before/after number and the CI gate's subject.
func (res *VMBenchResult) SeedSpeedup() float64 { return res.SeedNs / res.BatchNs }

// SingleSpeedup is the corpus-aggregate single/batch ratio.
func (res *VMBenchResult) SingleSpeedup() float64 { return res.SingleNs / res.BatchNs }

// VMBench sweeps the XDP corpus (always in full — the suite is small enough
// that sampling would only add noise to the gate) with minDur of measurement
// per serving loop per program.
func VMBench(batchSize int, minDur time.Duration) (*VMBenchResult, error) {
	if minDur <= 0 {
		minDur = 30 * time.Millisecond
	}
	tr := netbench.NewTrace(256, 42)
	res := &VMBenchResult{BatchSize: batchSize}
	for _, spec := range corpus.XDP() {
		built, err := core.Build(spec.Mod, spec.Func, core.Options{
			Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true,
		})
		if err != nil {
			return nil, fmt.Errorf("vmbench: %s: build: %w", spec.Name, err)
		}
		sd, err := netbench.MeasureHostSingleModelled(built.Prog, tr, minDur)
		if err != nil {
			return nil, fmt.Errorf("vmbench: %s: seed loop: %w", spec.Name, err)
		}
		sg, err := netbench.MeasureHostSingle(built.Prog, tr, minDur)
		if err != nil {
			return nil, fmt.Errorf("vmbench: %s: single loop: %w", spec.Name, err)
		}
		bt, err := netbench.MeasureHostBatch(built.Prog, tr, batchSize, minDur)
		if err != nil {
			return nil, fmt.Errorf("vmbench: %s: batch loop: %w", spec.Name, err)
		}
		if bt.Engine != "fast" {
			return nil, fmt.Errorf("vmbench: %s: batch loop ran on %q engine (did not pre-decode)",
				spec.Name, bt.Engine)
		}
		row := VMBenchRow{
			Program: spec.Name, NI: built.Prog.NI(),
			SeedNs: sd.NsPerPacket, SingleNs: sg.NsPerPacket, BatchNs: bt.NsPerPacket,
		}
		res.Rows = append(res.Rows, row)
		res.SeedNs += row.SeedNs
		res.SingleNs += row.SingleNs
		res.BatchNs += row.BatchNs
	}
	return res, nil
}

// vmBenchRun is one bench_vm.json trajectory entry.
type vmBenchRun struct {
	Time          string  `json:"time"`
	BatchSize     int     `json:"batch_size"`
	SeedNs        float64 `json:"seed_ns_per_pass"`
	SingleNs      float64 `json:"single_ns_per_pass"`
	BatchNs       float64 `json:"batch_ns_per_pass"`
	SeedSpeedup   float64 `json:"seed_speedup"`
	SingleSpeedup float64 `json:"single_speedup"`

	Rows []VMBenchRow `json:"rows"`
}

// AppendVMBenchJSON appends this run to the trajectory artifact at path (a
// JSON array of runs, created if missing), so successive CI runs accumulate
// a throughput history instead of overwriting a single sample.
func AppendVMBenchJSON(path string, res *VMBenchResult) error {
	var runs []vmBenchRun
	if raw, err := os.ReadFile(path); err == nil {
		// A corrupt or foreign file starts a fresh trajectory rather than
		// failing the gate.
		_ = json.Unmarshal(raw, &runs)
	}
	runs = append(runs, vmBenchRun{
		Time:          time.Now().UTC().Format(time.RFC3339),
		BatchSize:     res.BatchSize,
		SeedNs:        res.SeedNs,
		SingleNs:      res.SingleNs,
		BatchNs:       res.BatchNs,
		SeedSpeedup:   res.SeedSpeedup(),
		SingleSpeedup: res.SingleSpeedup(),
		Rows:          res.Rows,
	})
	raw, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
