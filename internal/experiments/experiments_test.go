package experiments

import (
	"testing"

	"merlin/internal/core"
)

// testCfg samples aggressively so the whole experiment suite stays fast.
var testCfg = Config{SuiteStride: 24}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string]int{"XDP": 19, "Sysdig": 168, "Tetragon": 186, "Tracee": 129}
	for _, r := range rows {
		if want[r.Suite] != r.Count {
			t.Errorf("%s count = %d, want %d", r.Suite, r.Count, want[r.Suite])
		}
		if r.Smallest > r.Average || r.Average > r.Largest {
			t.Errorf("%s: inconsistent stats %+v", r.Suite, r)
		}
	}
	// XDP row must match the calibrated corpus.
	for _, r := range rows {
		if r.Suite == "XDP" {
			if r.Smallest != 18 || r.Largest < 1400 || r.Largest > 2200 {
				t.Errorf("XDP sizes %+v, want ≈18/1771", r)
			}
			if r.MCPU != "v2" {
				t.Errorf("XDP mcpu = %s", r.MCPU)
			}
		}
	}
}

func TestCompactnessXDP(t *testing.T) {
	rows, err := Compactness("xdp", testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("rows = %d", len(rows))
	}
	anyPositive := false
	for _, r := range rows {
		if r.Total < 0 {
			t.Errorf("%s: negative reduction %f", r.Program, r.Total)
		}
		if r.Total > 0 {
			anyPositive = true
		}
		// Contributions must sum to the total (within rounding).
		sum := 0.0
		for _, c := range r.Contribution {
			sum += c
		}
		if diff := sum - r.Total; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: contributions %f != total %f", r.Program, sum, r.Total)
		}
	}
	if !anyPositive {
		t.Error("no XDP program improved at all")
	}
}

func TestCompactnessSysdigDAODominates(t *testing.T) {
	rows, err := Compactness("sysdig", testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var daoSum, totalSum float64
	for _, r := range rows {
		daoSum += r.Contribution[core.DAO]
		totalSum += r.Total
	}
	if totalSum <= 0 {
		t.Fatal("sysdig sample saw no reduction")
	}
	if daoSum < totalSum*0.5 {
		t.Errorf("DAO should dominate Sysdig reductions (dao=%f, total=%f)", daoSum, totalSum)
	}
}

func TestFig10eMerlinScalesToLargePrograms(t *testing.T) {
	rows, err := Fig10e(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var big Fig10eRow
	for _, r := range rows {
		if r.Program == "xdp-balancer" {
			big = r
		}
	}
	if !big.K2Supported {
		t.Log("xdp-balancer within K2 envelope")
	}
	if big.MerlinReduction <= big.K2Reduction {
		t.Errorf("Merlin should beat K2 on the largest program: %.3f vs %.3f",
			big.MerlinReduction, big.K2Reduction)
	}
}

func TestFig10fNPIImproves(t *testing.T) {
	rows, err := Fig10f(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	for _, r := range rows {
		if r.NPIAfter > r.NPIBefore {
			worse++
		}
	}
	if worse > len(rows)/4 {
		t.Errorf("NPI regressed on %d/%d programs", worse, len(rows))
	}
}

func TestTable2Static(t *testing.T) {
	rows := Table2()
	if len(rows) != 2 || rows[0].System != "K2" || rows[1].System != "Merlin" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Hooks != "XDP only" || rows[1].MaxSize != "1 Million" {
		t.Fatalf("capability cells wrong: %+v", rows)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ThroughputMerlin < r.ThroughputClang {
			t.Errorf("%s: Merlin throughput below clang: %.3f < %.3f",
				r.Program, r.ThroughputMerlin, r.ThroughputClang)
		}
		// Latency grows with load for every system.
		for si := 0; si < 3; si++ {
			if r.LatencyUS[3][si] < r.LatencyUS[0][si] {
				t.Errorf("%s sys %d: saturate latency below low", r.Program, si)
			}
		}
		// Merlin latency no worse than clang at every level.
		for li := 0; li < 4; li++ {
			if r.LatencyUS[li][2] > r.LatencyUS[li][0]*1.001 {
				t.Errorf("%s load %d: merlin %.1fus > clang %.1fus",
					r.Program, li, r.LatencyUS[li][2], r.LatencyUS[li][0])
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*3*2 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	// Merlin must not context-switch more than clang on the balancer at low
	// load (Fig 11c's headline; at saturation both cores are pegged so the
	// counts converge).
	var clangCS, merlinCS float64
	for _, r := range rows {
		if r.Program == "xdp-balancer" && r.Load == "low" {
			switch r.System {
			case "clang":
				clangCS = r.ContextSwitches
			case "merlin":
				merlinCS = r.ContextSwitches
			}
		}
	}
	if merlinCS > clangCS*1.0001 {
		t.Errorf("merlin ctx switches %f > clang %f", merlinCS, clangCS)
	}
}

func TestTable4OverheadReduced(t *testing.T) {
	suites, err := Table4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 3 {
		t.Fatalf("suites = %d", len(suites))
	}
	for _, s := range suites {
		if len(s.Micro) != 15 {
			t.Fatalf("%s: micro rows = %d", s.Suite, len(s.Micro))
		}
		if s.AvgMicro <= 0 {
			t.Errorf("%s: no average micro overhead reduction (%.3f)", s.Suite, s.AvgMicro)
		}
		if s.Macro.Reduction <= 0 {
			t.Errorf("%s: no postmark reduction", s.Suite)
		}
		for _, m := range s.Micro {
			if m.WithUS > m.WithoutUS {
				t.Errorf("%s/%s: optimized slower than original", s.Suite, m.Op.Name)
			}
			if m.WithoutUS < m.VanillaUS {
				t.Errorf("%s/%s: probes cost nothing?", s.Suite, m.Op.Name)
			}
		}
	}
}

func TestFig12CountersImprove(t *testing.T) {
	rows, err := Fig12(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.InstructionsPercent > 100 || r.CyclesPercent > 100 {
			t.Errorf("%s: counters regressed: %+v", r.Suite, r)
		}
		if r.InstructionsSaved <= 0 {
			t.Errorf("%s: no instructions saved", r.Suite)
		}
	}
}

func TestFig13aCostsRecorded(t *testing.T) {
	rows, err := Fig13a(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.PassTimes) == 0 {
			t.Fatalf("%s: no pass times", r.Program)
		}
		if _, ok := r.PassTimes["Dep"]; !ok {
			t.Fatalf("%s: missing Dep analysis time", r.Program)
		}
	}
}

func TestFig13bSpeedupsHuge(t *testing.T) {
	rows, err := Fig13b(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var biggest Fig13bRow
	for _, r := range rows {
		if r.NI > biggest.NI {
			biggest = r
		}
	}
	// Paper: ~3.2M× on the biggest program; we accept anything > 10^4.
	if biggest.Speedup < 1e4 {
		t.Errorf("speedup on largest = %.0fx, want > 10^4", biggest.Speedup)
	}
}

func TestFig14MonotoneStages(t *testing.T) {
	rows, err := Fig14(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].NI > rows[i-1].NI {
			t.Errorf("stage %s grew NI: %d → %d", rows[i].Stage, rows[i-1].NI, rows[i].NI)
		}
		if rows[i].ThroughputMpps < rows[i-1].ThroughputMpps*0.999 {
			t.Errorf("stage %s lost throughput", rows[i].Stage)
		}
	}
	if rows[6].ThroughputMpps <= rows[0].ThroughputMpps {
		t.Error("full pipeline should beat clang on the balancer")
	}
}

func TestFig15SysdigAblation(t *testing.T) {
	rows, err := Fig15(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	final := rows[6]
	if final.NIReduction <= 0 || final.OverheadReduction <= 0 {
		t.Errorf("final stage shows no win: %+v", final)
	}
	// DAO stage should already capture most of the NI reduction (paper:
	// 97.9% of it).
	dao := rows[1]
	if dao.NIReduction < final.NIReduction*0.6 {
		t.Errorf("DAO contributes %.3f of %.3f; expected the dominant share",
			dao.NIReduction, final.NIReduction)
	}
}

func TestTable5BothVersionsVerify(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
}
