package experiments

import (
	"fmt"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ebpf"
	"merlin/internal/k2"
	"merlin/internal/verifier"
)

// stageOrder is the cumulative optimizer order used for per-optimizer
// contribution accounting (matching the pipeline order).
var stageOrder = []core.Optimizer{core.DAO, core.MoF, core.CPDCE, core.SLM, core.CC, core.PO}

// CompactnessRow is one program's Fig 10a-d bar: the total NI reduction and
// each optimizer's contribution (fractions of the baseline NI).
type CompactnessRow struct {
	Program      string
	Suite        string
	BaselineNI   int
	OptimizedNI  int
	Total        float64
	Contribution map[core.Optimizer]float64
}

// Compactness computes Fig 10a-d for one suite name ("xdp", "sysdig",
// "tetragon", "tracee").
func Compactness(suite string, cfg Config) ([]CompactnessRow, error) {
	specs, err := suiteSpecs(suite)
	if err != nil {
		return nil, err
	}
	if suite != "xdp" {
		specs = sample(specs, cfg.stride())
	}
	var rows []CompactnessRow
	for _, spec := range specs {
		row, err := compactnessOf(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func suiteSpecs(suite string) ([]*corpus.ProgramSpec, error) {
	switch suite {
	case "xdp":
		return corpus.XDP(), nil
	case "sysdig":
		return corpus.Sysdig(), nil
	case "tetragon":
		return corpus.Tetragon(), nil
	case "tracee":
		return corpus.Tracee(), nil
	}
	return nil, fmt.Errorf("unknown suite %q", suite)
}

func compactnessOf(spec *corpus.ProgramSpec) (*CompactnessRow, error) {
	row := &CompactnessRow{
		Program:      spec.Name,
		Suite:        spec.Suite,
		Contribution: map[core.Optimizer]float64{},
	}
	prevNI := 0
	for i := 0; i <= len(stageOrder); i++ {
		enable := stageOrder[:i]
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, enable, false))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			row.BaselineNI = res.Baseline.NI()
			prevNI = res.Prog.NI()
			continue
		}
		ni := res.Prog.NI()
		row.Contribution[stageOrder[i-1]] = float64(prevNI-ni) / float64(row.BaselineNI)
		prevNI = ni
		if i == len(stageOrder) {
			row.OptimizedNI = ni
		}
	}
	row.Total = float64(row.BaselineNI-row.OptimizedNI) / float64(row.BaselineNI)
	return row, nil
}

// Fig10eRow compares Merlin's and K2's NI reduction on one XDP program.
type Fig10eRow struct {
	Program         string
	BaselineNI      int
	MerlinReduction float64
	K2Reduction     float64
	K2Supported     bool
}

// Fig10e runs both optimizers over the 19 XDP programs.
func Fig10e(cfg Config) ([]Fig10eRow, error) {
	var rows []Fig10eRow
	for _, spec := range corpus.XDP() {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, nil, false))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		row := Fig10eRow{
			Program:         spec.Name,
			BaselineNI:      res.Baseline.NI(),
			MerlinReduction: res.NIReduction(),
		}
		iter := 800
		if res.Baseline.NI() > 500 {
			iter = 250 // the search degrades on big programs
		}
		if out, _, err := k2.Optimize(res.Baseline, k2.Options{Seed: 99, Iterations: iter}); err == nil {
			row.K2Supported = true
			row.K2Reduction = float64(res.Baseline.NI()-out.NI()) / float64(res.Baseline.NI())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10fRow reports the verifier-cost improvement for one program.
type Fig10fRow struct {
	Program       string
	NPIBefore     int
	NPIAfter      int
	NPIReduction  float64
	TimeReduction float64
}

// Fig10f measures NPI and verification-time reduction across the corpus
// (all XDP programs plus a sample of each suite).
func Fig10f(cfg Config) ([]Fig10fRow, error) {
	specs := corpus.XDP()
	for _, s := range [][]*corpus.ProgramSpec{corpus.Sysdig(), corpus.Tetragon(), corpus.Tracee()} {
		specs = append(specs, sample(s, cfg.stride()*2)...)
	}
	var rows []Fig10fRow
	for _, spec := range specs {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, nil, true))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		// Wall-clock verification time is noisy at microsecond scale;
		// take the best of several runs, like a real measurement would.
		before := bestVerify(res.Baseline)
		after := bestVerify(res.Prog)
		rows = append(rows, Fig10fRow{
			Program:       spec.Name,
			NPIBefore:     before.NPI,
			NPIAfter:      after.NPI,
			NPIReduction:  reduction(float64(before.NPI), float64(after.NPI)),
			TimeReduction: reduction(float64(before.Duration), float64(after.Duration)),
		})
	}
	return rows, nil
}

func bestVerify(prog *ebpf.Program) verifier.Stats {
	best := verifier.Verify(prog, verifier.Options{})
	for i := 0; i < 4; i++ {
		st := verifier.Verify(prog, verifier.Options{})
		if st.Duration < best.Duration {
			best = st
		}
	}
	return best
}
