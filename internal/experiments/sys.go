package experiments

import (
	"fmt"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ebpf"
	"merlin/internal/sysbench"
)

// probeSample picks the representative hot-path probe programs of a suite
// (small and mid-sized handlers; the huge tail programs attach to rare
// syscalls and would distort per-event costs).
func probeSample(specs []*corpus.ProgramSpec, n int) []*corpus.ProgramSpec {
	var out []*corpus.ProgramSpec
	step := len(specs) / n
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(specs) && len(out) < n; i += step {
		out = append(out, specs[i])
	}
	return out
}

// buildProbePair compiles a suite sample into original and Merlin programs.
func buildProbePair(specs []*corpus.ProgramSpec) (orig, merlin []*ebpf.Program, err error) {
	for _, spec := range specs {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, nil, false))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		orig = append(orig, res.Baseline)
		merlin = append(merlin, res.Prog)
	}
	return orig, merlin, nil
}

// Table4Suite is one suite's Table 4 block.
type Table4Suite struct {
	Suite    string
	Micro    []sysbench.MicroResult
	Macro    sysbench.MacroResult
	AvgMicro float64
}

// Table4 evaluates the runtime-overhead table for the three suites.
func Table4(cfg Config) ([]Table4Suite, error) {
	suites := []struct {
		name  string
		specs []*corpus.ProgramSpec
	}{
		{"Sysdig", corpus.Sysdig()},
		{"Tetragon", corpus.Tetragon()},
		{"Tracee", corpus.Tracee()},
	}
	var out []Table4Suite
	for _, s := range suites {
		origProgs, merlinProgs, err := buildProbePair(probeSample(s.specs, 10))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		orig, err := sysbench.Attach(origProgs)
		if err != nil {
			return nil, err
		}
		opt, err := sysbench.Attach(merlinProgs)
		if err != nil {
			return nil, err
		}
		micro := sysbench.RunMicro(orig, opt)
		sum := 0.0
		for _, m := range micro {
			sum += m.Reduction
		}
		out = append(out, Table4Suite{
			Suite:    s.name,
			Micro:    micro,
			Macro:    sysbench.RunPostmark(orig, opt),
			AvgMicro: sum / float64(len(micro)),
		})
	}
	return out, nil
}

// Fig12Row reports hardware counters of the probe work per event, as a
// percentage of the original (unoptimized) programs.
type Fig12Row struct {
	Suite               string
	InstructionsPercent float64
	CyclesPercent       float64
	CacheMissPercent    float64
	BranchMissPercent   float64
	InstructionsSaved   float64
	CyclesSaved         float64
}

// Fig12 compares per-event hardware counters before and after optimization.
func Fig12(cfg Config) ([]Fig12Row, error) {
	suites := []struct {
		name  string
		specs []*corpus.ProgramSpec
	}{
		{"Sysdig", corpus.Sysdig()},
		{"Tetragon", corpus.Tetragon()},
		{"Tracee", corpus.Tracee()},
	}
	var out []Fig12Row
	for _, s := range suites {
		origProgs, merlinProgs, err := buildProbePair(probeSample(s.specs, 10))
		if err != nil {
			return nil, err
		}
		orig, err := sysbench.Attach(origProgs)
		if err != nil {
			return nil, err
		}
		opt, err := sysbench.Attach(merlinProgs)
		if err != nil {
			return nil, err
		}
		o, m := orig.PerEventStats, opt.PerEventStats
		out = append(out, Fig12Row{
			Suite:               s.name,
			InstructionsPercent: 100 * float64(m.Instructions) / float64(o.Instructions),
			CyclesPercent:       100 * float64(m.Cycles) / float64(o.Cycles),
			CacheMissPercent:    percentOr100(m.CacheMisses, o.CacheMisses),
			BranchMissPercent:   percentOr100(m.BranchMisses, o.BranchMisses),
			InstructionsSaved:   float64(o.Instructions) - float64(m.Instructions),
			CyclesSaved:         float64(o.Cycles) - float64(m.Cycles),
		})
	}
	return out, nil
}

func percentOr100(m, o uint64) float64 {
	if o == 0 {
		return 100
	}
	return 100 * float64(m) / float64(o)
}

// Fig15Row is one cumulative stage of the Sysdig ablation.
type Fig15Row struct {
	Stage              string
	NIReduction        float64
	NPIReduction       float64
	VerifTimeReduction float64
	OverheadReduction  float64
}

// Fig15 applies the optimizers cumulatively to the Sysdig sample and
// measures size, verifier cost and runtime overhead at each stage.
func Fig15(cfg Config) ([]Fig15Row, error) {
	specs := probeSample(corpus.Sysdig(), 8)
	stages := []struct {
		name   string
		enable []core.Optimizer
	}{
		{"clang", []core.Optimizer{}},
		{"+DAO", stageOrder[:1]},
		{"+MoF", stageOrder[:2]},
		{"+CP&DCE", stageOrder[:3]},
		{"+SLM", stageOrder[:4]},
		{"+CC", stageOrder[:5]},
		{"+PO", stageOrder[:6]},
	}
	// Baselines.
	var baseProgs []*ebpf.Program
	var baseNI, baseNPI int
	var baseVerifNS int64
	for _, spec := range specs {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, []core.Optimizer{}, false))
		if err != nil {
			return nil, err
		}
		baseProgs = append(baseProgs, res.Prog)
		baseNI += res.Prog.NI()
		st := bestVerify(res.Prog)
		if !st.Passed {
			return nil, fmt.Errorf("fig15: baseline %s rejected: %v", spec.Name, st.Err)
		}
		baseNPI += st.NPI
		baseVerifNS += st.Duration.Nanoseconds()
	}
	baseSet, err := sysbench.Attach(baseProgs)
	if err != nil {
		return nil, err
	}
	var rows []Fig15Row
	for _, stg := range stages {
		var progs []*ebpf.Program
		ni, npi := 0, 0
		var verifNS int64
		for _, spec := range specs {
			res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, stg.enable, false))
			if err != nil {
				return nil, err
			}
			progs = append(progs, res.Prog)
			ni += res.Prog.NI()
			st := bestVerify(res.Prog)
			if !st.Passed {
				return nil, fmt.Errorf("fig15: %s@%s rejected: %v", spec.Name, stg.name, st.Err)
			}
			npi += st.NPI
			verifNS += st.Duration.Nanoseconds()
		}
		set, err := sysbench.Attach(progs)
		if err != nil {
			return nil, err
		}
		// Overhead reduction on the postmark macro test vs the baseline set.
		wo := sysbench.PostmarkVanillaS + float64(sysbench.PostmarkEvents)*baseSet.PerEventCycles/sysbench.CPUHz
		w := sysbench.PostmarkVanillaS + float64(sysbench.PostmarkEvents)*set.PerEventCycles/sysbench.CPUHz
		rows = append(rows, Fig15Row{
			Stage:              stg.name,
			NIReduction:        reduction(float64(baseNI), float64(ni)),
			NPIReduction:       reduction(float64(baseNPI), float64(npi)),
			VerifTimeReduction: reduction(float64(baseVerifNS), float64(verifNS)),
			OverheadReduction:  sysbench.OverheadReduction(sysbench.PostmarkVanillaS, wo, w),
		})
	}
	return rows, nil
}
