// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a pure function returning typed rows;
// cmd/merlin-bench renders them as the paper's tables, and bench_test.go
// wraps each in a testing.B benchmark. The experiment index lives in
// DESIGN.md; measured-vs-paper numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"merlin/internal/codegen"
	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ebpf"
	"merlin/internal/ir"
	"merlin/internal/irpass"
	"merlin/internal/k2"
	"merlin/internal/verifier"
)

// Config controls experiment scope.
type Config struct {
	// SuiteStride samples every Nth program of the big suites (1 = all).
	SuiteStride int
}

// DefaultConfig samples the suites lightly enough for interactive runs.
func DefaultConfig() Config { return Config{SuiteStride: 12} }

// Full runs everything.
func Full() Config { return Config{SuiteStride: 1} }

func (c Config) stride() int {
	if c.SuiteStride < 1 {
		return 1
	}
	return c.SuiteStride
}

func sample(specs []*corpus.ProgramSpec, stride int) []*corpus.ProgramSpec {
	if stride <= 1 {
		return specs
	}
	var out []*corpus.ProgramSpec
	for i := 0; i < len(specs); i += stride {
		out = append(out, specs[i])
	}
	return out
}

// buildOpts derives core options from a corpus spec.
func buildOpts(spec *corpus.ProgramSpec, enable []core.Optimizer, verify bool) core.Options {
	return core.Options{
		Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true,
		Enable: enable, Verify: verify,
	}
}

// baselineNI compiles the clang-only program (no verification) for size
// accounting.
func baselineNI(spec *corpus.ProgramSpec) (int, error) {
	mod := ir.Clone(spec.Mod)
	if _, err := irpass.Inline(mod); err != nil {
		return 0, err
	}
	(&irpass.Manager{Passes: irpass.Generic()}).Run(mod)
	prog, err := codegen.Compile(mod, spec.Func, codegen.Options{MCPU: spec.MCPU, Hook: spec.Hook})
	if err != nil {
		return 0, err
	}
	return prog.NI(), nil
}

// ---------------------------------------------------------------- Table 1

// Table1Row summarizes one benchmark suite.
type Table1Row struct {
	Suite    string
	Count    int
	Largest  int
	Smallest int
	Average  int
	MCPU     string
}

// Table1 reproduces the benchmark-details table. The stride samples suite
// programs; counts always reflect the full suite.
func Table1(cfg Config) ([]Table1Row, error) {
	suites := []struct {
		name  string
		specs []*corpus.ProgramSpec
	}{
		{"XDP", corpus.XDP()},
		{"Sysdig", corpus.Sysdig()},
		{"Tetragon", corpus.Tetragon()},
		{"Tracee", corpus.Tracee()},
	}
	var rows []Table1Row
	for _, s := range suites {
		specs := s.specs
		measured := specs
		if s.name != "XDP" {
			measured = sample(specs, cfg.stride())
		}
		largest, smallest, total := 0, 1<<30, 0
		for _, spec := range measured {
			ni, err := baselineNI(spec)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", s.name, spec.Name, err)
			}
			if ni > largest {
				largest = ni
			}
			if ni < smallest {
				smallest = ni
			}
			total += ni
		}
		rows = append(rows, Table1Row{
			Suite: s.name, Count: len(specs),
			Largest: largest, Smallest: smallest, Average: total / len(measured),
			MCPU: fmt.Sprintf("v%d", specs[0].MCPU),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------- Table 2

// Table2Row is the capability-matrix comparison of K2 and Merlin.
type Table2Row struct {
	System          string
	InstructionSets string
	Hooks           string
	HelperFunctions string
	MaxSize         string
}

// Table2 reproduces the limitation matrix. K2's cells come from the
// restrictions its implementation actually enforces.
func Table2() []Table2Row {
	return []Table2Row{
		{
			System:          "K2",
			InstructionSets: "v2",
			Hooks:           "XDP only",
			HelperFunctions: fmt.Sprintf("Limited (%d formalized)", len(k2.FormalizedHelpers)),
			MaxSize:         fmt.Sprintf("<%d", k2.MaxProgramSize),
		},
		{
			System:          "Merlin",
			InstructionSets: "-",
			Hooks:           "-",
			HelperFunctions: "-",
			MaxSize:         "1 Million",
		},
	}
}

// ---------------------------------------------------------------- Table 5

// Table5Row reports verifier state-count instability across kernel versions.
type Table5Row struct {
	Metric  string // "peak" or "total"
	Kernel  string
	Program string
	Change  float64 // optimized vs original, percent
}

// Table5 reproduces the state-count instability study: it surveys the
// corpus for the two programs whose verifier state counts move the most
// under optimization (ideally in opposite directions, as the paper observed)
// and reports the peak/total change under both kernel heuristics.
func Table5() ([]Table5Row, error) {
	candidates := corpus.XDP()
	sys := corpus.Sysdig()
	for i := 0; i < len(sys); i += 24 {
		candidates = append(candidates, sys[i])
	}
	type survey struct {
		spec   *corpus.ProgramSpec
		change [2][2]float64 // [version][peak,total]
		mag    float64
	}
	var surveyed []survey
	for _, spec := range candidates {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec, nil, false))
		if err != nil {
			return nil, err
		}
		var s survey
		s.spec = spec
		for vi, ver := range []verifier.KernelVersion{verifier.V519, verifier.V65} {
			before := verifier.Verify(res.Baseline, verifier.Options{Version: ver})
			after := verifier.Verify(res.Prog, verifier.Options{Version: ver})
			if !before.Passed || !after.Passed {
				return nil, fmt.Errorf("table5: %s rejected: %v %v", spec.Name, before.Err, after.Err)
			}
			s.change[vi][0] = pct(before.PeakStates, after.PeakStates)
			s.change[vi][1] = pct(before.TotalStates, after.TotalStates)
			s.mag += abs(s.change[vi][0]) + abs(s.change[vi][1])
		}
		surveyed = append(surveyed, s)
	}
	// Pick the largest mover and the best opposite-direction partner.
	best := 0
	for i, s := range surveyed {
		if s.mag > surveyed[best].mag {
			best = i
		}
	}
	// Partner: the biggest opposite-direction mover, or failing that the
	// second-biggest mover overall.
	partner, partnerMag := (best+1)%len(surveyed), -1.0
	foundOpposite := false
	for i, s := range surveyed {
		if i == best {
			continue
		}
		opposite := s.change[0][1]*surveyed[best].change[0][1] < 0 ||
			s.change[1][1]*surveyed[best].change[1][1] < 0
		switch {
		case opposite && (!foundOpposite || s.mag > partnerMag):
			partner, partnerMag, foundOpposite = i, s.mag, true
		case !foundOpposite && s.mag > partnerMag:
			partner, partnerMag = i, s.mag
		}
	}
	var rows []Table5Row
	for _, s := range []survey{surveyed[best], surveyed[partner]} {
		for vi, kn := range []string{"5.19", "6.5"} {
			rows = append(rows,
				Table5Row{Metric: "peak", Kernel: kn, Program: s.spec.Name, Change: s.change[vi][0]},
				Table5Row{Metric: "total", Kernel: kn, Program: s.spec.Name, Change: s.change[vi][1]},
			)
		}
	}
	return rows, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// pct returns the percentage change from a to b.
func pct(a, b int) float64 {
	if a == 0 {
		return 0
	}
	return (float64(b) - float64(a)) / float64(a) * 100
}

// reduction returns 1 - b/a as a fraction.
func reduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}

var _ = ebpf.HookXDP // keep import symmetry for sibling files
