package buildsvc

import (
	"encoding/json"
	"sync"

	"merlin/internal/ebpf"
	"merlin/internal/journal"
	"merlin/internal/objfile"
)

// artifactCompactThreshold bounds the artifact journal like the superopt
// cache bounds its verdict journal. Artifacts are bigger than verdicts, so
// the threshold is lower.
const artifactCompactThreshold = 64

// ArtifactStats is the build telemetry stored beside each cached program, so
// a cache hit can report what the original build did without rerunning any
// pass.
type ArtifactStats struct {
	// Insns / BaselineInsns are the optimized and clang-baseline slot
	// counts; InsnsSaved is their difference.
	Insns         int
	BaselineInsns int
	InsnsSaved    int
	// CyclesSaved is the superopt tier's modeled per-execution saving.
	CyclesSaved uint64
	// Searches / CacheHits / Rewrites summarize the superopt tier (zero
	// when the tier was off).
	Searches  int
	CacheHits int
	Rewrites  int
	// FellBack records how a guarded build degraded ("" for clean builds).
	FellBack string
	// BuildNanos is the original build's wall time.
	BuildNanos int64
}

// Artifact is one cached build output: the optimized program plus the stats
// of the build that produced it.
type Artifact struct {
	Prog  *ebpf.Program
	Stats ArtifactStats
}

// artifactEntry is the journal/wire record framing for one artifact. The
// program travels as an objfile envelope, the same serialization merlind
// uses for deploy sources.
type artifactEntry struct {
	Key   []byte
	Prog  []byte
	Stats ArtifactStats
}

// ArtifactCache is the content-addressed build-artifact cache: build key ->
// optimized program + stats. Persistence, framing and failure semantics
// mirror the superopt verdict cache exactly — journal-framed (CRC32C,
// torn-tail tolerant, atomic compaction, chaos-FS injectable through
// journal.Options), damaged entries degrade to misses, and the same
// iomu-before-mu lock ordering keeps readers off the disk path.
type ArtifactCache struct {
	iomu     sync.Mutex // mutator/journal order; acquired before mu
	mu       sync.RWMutex
	log      *journal.Log // nil for in-memory caches
	entries  map[string]Artifact
	appended int // journal records since the last compaction (under iomu)
}

// NewMemArtifactCache returns a transient in-memory artifact cache.
func NewMemArtifactCache() *ArtifactCache {
	return &ArtifactCache{entries: map[string]Artifact{}}
}

// OpenArtifactCache opens (creating if needed) a persistent artifact cache
// in dir. The journal's advisory lock makes a second opener fail fast naming
// the holder pid.
func OpenArtifactCache(dir string) (*ArtifactCache, error) {
	return OpenArtifactCacheWith(dir, journal.Options{})
}

// OpenArtifactCacheWith is OpenArtifactCache with explicit journal options
// (chaos.FS injection, segment rotation, fsync policy).
func OpenArtifactCacheWith(dir string, o journal.Options) (*ArtifactCache, error) {
	log, err := journal.OpenWith(dir, o)
	if err != nil {
		return nil, err
	}
	c := &ArtifactCache{log: log, entries: map[string]Artifact{}}
	if snap, ok := log.Snapshot(); ok {
		var es []artifactEntry
		if json.Unmarshal(snap, &es) == nil {
			for _, e := range es {
				c.addEntry(e)
			}
		}
	}
	_ = log.Replay(func(payload []byte) error {
		var e artifactEntry
		if json.Unmarshal(payload, &e) == nil {
			c.addEntry(e)
		}
		return nil
	})
	return c, nil
}

// addEntry inserts a decoded entry during open/replay (the cache is not yet
// shared). Undecodable programs degrade to misses.
func (c *ArtifactCache) addEntry(e artifactEntry) {
	if len(e.Key) == 0 || len(e.Prog) == 0 {
		return
	}
	prog, err := objfile.Unmarshal(e.Prog)
	if err != nil {
		return
	}
	if _, dup := c.entries[string(e.Key)]; dup {
		return
	}
	c.entries[string(e.Key)] = Artifact{Prog: prog, Stats: e.Stats}
}

// Get returns the cached artifact for key. The returned program is a clone:
// callers own it outright.
func (c *ArtifactCache) Get(key string) (Artifact, bool) {
	c.mu.RLock()
	a, ok := c.entries[key]
	c.mu.RUnlock()
	if !ok {
		return Artifact{}, false
	}
	return Artifact{Prog: a.Prog.Clone(), Stats: a.Stats}, true
}

// Put stores an artifact, appending it to the journal when persistent.
// Re-putting a known key is a no-op (the key is content-addressed: same key,
// same artifact). The program is cloned on the way in.
func (c *ArtifactCache) Put(key string, a Artifact) {
	c.iomu.Lock()
	defer c.iomu.Unlock()
	c.mu.Lock()
	if _, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return
	}
	a.Prog = a.Prog.Clone()
	c.entries[key] = a
	c.mu.Unlock()
	if c.log == nil {
		return
	}
	payload, err := encodeArtifact(key, a)
	if err != nil {
		return
	}
	if c.log.Append(payload, false) == nil {
		c.appended++
		if c.appended >= artifactCompactThreshold {
			_ = c.compactIOLocked()
		}
	}
}

func encodeArtifact(key string, a Artifact) ([]byte, error) {
	pb, err := objfile.Marshal(a.Prog)
	if err != nil {
		return nil, err
	}
	return json.Marshal(artifactEntry{Key: []byte(key), Prog: pb, Stats: a.Stats})
}

// Len returns the number of cached artifacts.
func (c *ArtifactCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// compactIOLocked folds the cache into one snapshot record; iomu held, mu
// taken only to collect a consistent view.
func (c *ArtifactCache) compactIOLocked() error {
	if c.log == nil {
		return nil
	}
	c.mu.RLock()
	es := make([]artifactEntry, 0, len(c.entries))
	for k, a := range c.entries {
		pb, err := objfile.Marshal(a.Prog)
		if err != nil {
			continue
		}
		es = append(es, artifactEntry{Key: []byte(k), Prog: pb, Stats: a.Stats})
	}
	c.mu.RUnlock()
	payload, err := json.Marshal(es)
	if err != nil {
		return err
	}
	if err := c.log.Compact(payload); err != nil {
		return err
	}
	c.appended = 0
	return nil
}

// Flush compacts appended artifacts into the snapshot.
func (c *ArtifactCache) Flush() error {
	c.iomu.Lock()
	defer c.iomu.Unlock()
	if c.appended == 0 {
		return nil
	}
	return c.compactIOLocked()
}

// Close flushes and releases the journal (and its directory lock).
func (c *ArtifactCache) Close() error {
	c.iomu.Lock()
	defer c.iomu.Unlock()
	if c.log == nil {
		return nil
	}
	var ferr error
	if c.appended != 0 {
		ferr = c.compactIOLocked()
	}
	err := c.log.Close()
	c.log = nil
	if ferr != nil {
		return ferr
	}
	return err
}
