package buildsvc

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"testing"
	"time"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/metrics"
	"merlin/internal/superopt"
)

// srcTag folds source bytes into an int32 so synthetic programs differ per
// source.
func srcTag(src []byte) int32 {
	h := fnv.New32a()
	h.Write(src)
	return int32(h.Sum32() & 0x7fffffff)
}

// countingBuild returns a BuildFunc that counts builds per key and a getter.
// The synthetic program encodes a source hash so different sources give
// different bytecode.
func countingBuild(delay time.Duration) (BuildFunc, func(key string) int) {
	var mu sync.Mutex
	counts := map[string]int{}
	fn := func(req Request) (*core.Result, error) {
		key := req.Key()
		mu.Lock()
		counts[key]++
		mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		prog := &ebpf.Program{Name: "t", Hook: ebpf.HookXDP, MCPU: 2, Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(0, srcTag(req.Source)),
			ebpf.Exit(),
		}}
		base := &ebpf.Program{Name: "t", Hook: ebpf.HookXDP, MCPU: 2, Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(0, srcTag(req.Source)),
			ebpf.Mov64Imm(1, 0),
			ebpf.Exit(),
		}}
		return &core.Result{Prog: prog, Baseline: base}, nil
	}
	get := func(key string) int {
		mu.Lock()
		defer mu.Unlock()
		return counts[key]
	}
	return fn, get
}

// TestDedupStress is the seeded -race stress: N goroutines submit identical
// and near-identical sources concurrently; every unique key builds exactly
// once, every waiter of one key receives byte-identical bytecode, and no
// submission errors (the queue is sized to hold all unique builds).
func TestDedupStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const uniques = 8
	const goroutines = 64
	build, builds := countingBuild(5 * time.Millisecond)
	reg := metrics.New()
	s := New(Config{Workers: 4, Queue: uniques, Build: build, Metrics: NewMetrics(reg)})
	defer s.Close()

	sources := make([][]byte, uniques)
	for i := range sources {
		sources[i] = []byte(fmt.Sprintf("module \"m%d\"\n; filler %d\n", i, rng.Int63()))
	}
	type got struct {
		key  string
		enc  []byte
		oc   Outcome
		err  error
		idx  int
		stat ArtifactStats
	}
	results := make([]got, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		idx := g % uniques // identical submissions spread across all uniques
		wg.Add(1)
		go func(g, idx int) {
			defer wg.Done()
			res, err := s.Submit(Request{Source: sources[idx], Func: "f", Opts: core.Options{}})
			if err != nil {
				results[g] = got{err: err, idx: idx}
				return
			}
			results[g] = got{key: res.Key, enc: res.Prog.Encode(), oc: res.Outcome, idx: idx, stat: res.Stats}
		}(g, idx)
	}
	wg.Wait()

	byKey := map[string][]got{}
	for g, r := range results {
		if r.err != nil {
			t.Fatalf("goroutine %d: unexpected error: %v", g, r.err)
		}
		byKey[r.key] = append(byKey[r.key], r)
	}
	if len(byKey) != uniques {
		t.Fatalf("got %d distinct keys, want %d", len(byKey), uniques)
	}
	for key, rs := range byKey {
		if n := builds(key); n != 1 {
			t.Errorf("key %s built %d times, want exactly 1", ShortKey(key), n)
		}
		first := rs[0]
		for _, r := range rs {
			if !bytes.Equal(r.enc, first.enc) {
				t.Errorf("key %s: waiters received different bytecode", ShortKey(key))
			}
			if r.stat.Insns != first.stat.Insns || r.stat.InsnsSaved != first.stat.InsnsSaved {
				t.Errorf("key %s: waiters received different stats", ShortKey(key))
			}
			switch r.oc {
			case OutcomeBuilt, OutcomeCoalesced, OutcomeCached:
			default:
				t.Errorf("key %s: unexpected outcome %q", ShortKey(key), r.oc)
			}
		}
	}
	// Distinct sources must not collide.
	seen := map[string]bool{}
	for _, r := range results {
		seen[string(r.enc)] = true
	}
	if len(seen) != uniques {
		t.Errorf("bytecode collided across sources: %d distinct, want %d", len(seen), uniques)
	}
}

// TestQueueFullTypedReject: with one worker busy and the one queue slot
// occupied, a third unique build gets the typed ErrQueueFull — while a
// duplicate of an in-flight build still coalesces fine.
func TestQueueFullTypedReject(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	build := func(req Request) (*core.Result, error) {
		started <- struct{}{}
		<-release
		prog := &ebpf.Program{Name: "t", Hook: ebpf.HookXDP, MCPU: 2, Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(0, 0), ebpf.Exit(),
		}}
		return &core.Result{Prog: prog, Baseline: prog.Clone()}, nil
	}
	s := New(Config{Workers: 1, Queue: 1, Build: build})
	defer func() {
		s.Close()
	}()

	reqA := Request{Source: []byte("module \"a\"\n"), Func: "f"}
	reqB := Request{Source: []byte("module \"b\"\n"), Func: "f"}
	reqC := Request{Source: []byte("module \"c\"\n"), Func: "f"}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); s.Submit(reqA) }()
	<-started // worker now blocked inside A's build

	wg.Add(1)
	go func() { defer wg.Done(); s.Submit(reqB) }()
	deadline := time.Now().Add(2 * time.Second)
	for s.Pending() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("B never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Submit(reqC); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue returned %v, want ErrQueueFull", err)
	}
	// A duplicate of the in-flight A coalesces — it needs no queue slot.
	wg.Add(1)
	var dupOutcome Outcome
	go func() {
		defer wg.Done()
		if res, err := s.Submit(reqA); err == nil {
			dupOutcome = res.Outcome
		}
	}()

	close(release)
	wg.Wait()
	if dupOutcome != OutcomeCoalesced && dupOutcome != OutcomeCached {
		t.Fatalf("duplicate of in-flight build got outcome %q", dupOutcome)
	}
}

// TestArtifactCachePersistence: a build's artifact survives service restart;
// the warm submission reports OutcomeCached with zero new builds and the
// original build's stats.
func TestArtifactCachePersistence(t *testing.T) {
	dir := t.TempDir()
	build, builds := countingBuild(0)
	req := Request{Source: []byte("module \"p\"\n"), Func: "f"}

	cache, err := OpenArtifactCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Build: build, Cache: cache})
	cold, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Outcome != OutcomeBuilt {
		t.Fatalf("cold outcome %q, want built", cold.Outcome)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cache2, err := OpenArtifactCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, Build: build, Cache: cache2})
	defer s2.Close()
	warm, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Outcome != OutcomeCached {
		t.Fatalf("warm outcome %q, want cached", warm.Outcome)
	}
	if builds(req.Key()) != 1 {
		t.Fatalf("warm submission re-built: %d builds", builds(req.Key()))
	}
	if !bytes.Equal(warm.Prog.Encode(), cold.Prog.Encode()) {
		t.Fatal("cached bytecode differs from built bytecode")
	}
	if warm.Stats.Insns != cold.Stats.Insns || warm.Stats.BuildNanos != cold.Stats.BuildNanos {
		t.Fatalf("cached stats differ: %+v vs %+v", warm.Stats, cold.Stats)
	}
}

// TestBuildFailurePropagates: a failing build reaches every waiter and is
// not cached — the next submission retries.
func TestBuildFailurePropagates(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	boom := errors.New("boom")
	build := func(req Request) (*core.Result, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			return nil, boom
		}
		prog := &ebpf.Program{Name: "t", Hook: ebpf.HookXDP, MCPU: 2, Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(0, 0), ebpf.Exit(),
		}}
		return &core.Result{Prog: prog, Baseline: prog.Clone()}, nil
	}
	s := New(Config{Workers: 1, Build: build})
	defer s.Close()
	req := Request{Source: []byte("module \"x\"\n"), Func: "f"}
	if _, err := s.Submit(req); !errors.Is(err, boom) {
		t.Fatalf("first submit err %v, want boom", err)
	}
	res, err := s.Submit(req)
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if res.Outcome != OutcomeBuilt {
		t.Fatalf("retry outcome %q, want built (failures are not cached)", res.Outcome)
	}
}

// TestKeyCanonicalization: semantically identical options share a key;
// semantic changes split it; plumbing does not.
func TestKeyCanonicalization(t *testing.T) {
	src := []byte("module \"k\"\n")
	base := Request{Source: src, Func: "f", Opts: core.Options{MCPU: 2, KernelALU32: true}}

	// Enable order must not matter; nil Enable equals the full set.
	all := Request{Source: src, Func: "f", Opts: core.Options{MCPU: 2, KernelALU32: true,
		Enable: []core.Optimizer{core.PO, core.CC, core.SLM, core.CPDCE, core.MoF, core.DAO}}}
	if base.Key() != all.Key() {
		t.Error("nil Enable and full reordered Enable must share a key")
	}
	subset := base
	subset.Opts.Enable = []core.Optimizer{core.DAO}
	if base.Key() == subset.Key() {
		t.Error("optimizer subset must change the key")
	}
	// MCPU 0 defaults to 2 inside core.Build — same build, same key.
	zero := base
	zero.Opts.MCPU = 0
	if base.Key() != zero.Key() {
		t.Error("MCPU 0 and 2 are the same build and must share a key")
	}
	// Plumbing (metrics, superopt cache handle and worker count) is not
	// semantic.
	plumbed := base
	plumbed.Opts.Metrics = core.NewMetrics(metrics.New())
	if base.Key() != plumbed.Key() {
		t.Error("metrics plumbing must not change the key")
	}
	soA := base
	soA.Opts.Superopt = &superopt.Config{Budget: 1000, Workers: 1}
	soB := base
	soB.Opts.Superopt = &superopt.Config{Budget: 1000, Workers: 8, Cache: superopt.NewMemCache()}
	if soA.Key() != soB.Key() {
		t.Error("superopt cache handle and worker count must not change the key")
	}
	soC := base
	soC.Opts.Superopt = &superopt.Config{Budget: 2000}
	if soA.Key() == soC.Key() {
		t.Error("superopt budget is part of the key (budget-qualified, like verdicts)")
	}
	// Different source or func must split the key.
	otherSrc := Request{Source: []byte("module \"k2\"\n"), Func: "f", Opts: base.Opts}
	otherFn := Request{Source: src, Func: "g", Opts: base.Opts}
	if base.Key() == otherSrc.Key() || base.Key() == otherFn.Key() {
		t.Error("source and func must be part of the key")
	}
}

// TestDefaultBuildEndToEnd runs the real pipeline through the service once,
// proving the glue: parse, build, cache, then a cached resubmit.
func TestDefaultBuildEndToEnd(t *testing.T) {
	src := []byte(`module "svc"

func fold(%ctx: ptr) -> i64 {
entry:
  %p = load ptr, %ctx, align 8
  %v = load i64, %p, align 8
  %a = bin add i64 %v, 5
  %b = bin add i64 %a, 3
  ret %b
}
`)
	s := New(Config{Workers: 1})
	defer s.Close()
	req := Request{Source: src, Func: "fold", Opts: core.Options{Hook: ebpf.HookXDP, MCPU: 2}}
	res, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeBuilt || res.Prog == nil || res.Stats.Insns == 0 {
		t.Fatalf("end-to-end build incomplete: %+v", res)
	}
	warm, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Outcome != OutcomeCached {
		t.Fatalf("resubmit outcome %q, want cached", warm.Outcome)
	}
	if !bytes.Equal(warm.Prog.Encode(), res.Prog.Encode()) {
		t.Fatal("cached program differs from built program")
	}
}
