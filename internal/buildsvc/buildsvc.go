// Package buildsvc turns Merlin's one-shot pipeline into a build service:
// a bounded worker-pool queue where identical submissions — content-addressed
// by source bytes plus canonicalized options, the same hashing discipline as
// the superopt verdict cache — are deduplicated so N concurrent requests for
// one program share a single underlying build, backed by a journal-framed
// artifact cache so repeat builds return bytecode and stats without running
// any pass. Together with superopt cache federation (superopt.Export/Merge,
// fleet.CacheSync) this is optimization-as-a-service: one machine's search
// pays for every machine's build.
package buildsvc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/ir"
)

// ErrQueueFull is the typed reject returned when the bounded queue cannot
// accept a new unique build. Coalesced joins and artifact-cache hits never
// see it: only work that would occupy a worker counts against the bound.
var ErrQueueFull = errors.New("buildsvc: build queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("buildsvc: service closed")

// Outcome says how a submission was satisfied.
type Outcome string

const (
	// OutcomeBuilt: this submission ran the pipeline.
	OutcomeBuilt Outcome = "built"
	// OutcomeCached: served from the artifact cache, no pass ran.
	OutcomeCached Outcome = "cached"
	// OutcomeCoalesced: joined an in-flight identical build and received
	// its result.
	OutcomeCoalesced Outcome = "coalesced"
	// OutcomeRejected: bounded queue full, typed reject.
	OutcomeRejected Outcome = "rejected"
	// OutcomeFailed: the underlying build errored (all waiters see it).
	OutcomeFailed Outcome = "failed"
)

// BuildFunc runs one build. Injectable so tests can count exactly how many
// underlying builds a stream of submissions caused.
type BuildFunc func(req Request) (*core.Result, error)

// DefaultBuild parses the request source as IR and runs the core pipeline.
func DefaultBuild(req Request) (*core.Result, error) {
	mod, err := ir.Parse(string(req.Source))
	if err != nil {
		return nil, fmt.Errorf("buildsvc: parse: %w", err)
	}
	return core.Build(mod, req.Func, req.Opts)
}

// Config configures a Service.
type Config struct {
	// Workers is the worker-pool size (<=0 means 1).
	Workers int
	// Queue bounds the number of unique builds waiting for a worker
	// (<=0 means Workers).
	Queue int
	// Build runs one build; nil means DefaultBuild.
	Build BuildFunc
	// Cache is the artifact cache; nil means a private in-memory cache.
	Cache *ArtifactCache
	// Metrics, when set, publishes queue/outcome/latency telemetry.
	Metrics *Metrics
}

// BuildResult is what one submission receives. Prog is always a private
// clone — byte-identical across every waiter of one flight, but never
// shared memory.
type BuildResult struct {
	// Key is the full content-addressed build key (hex).
	Key string
	// Outcome says how this submission was satisfied.
	Outcome Outcome
	// Prog is the optimized program.
	Prog *ebpf.Program
	// Stats is the producing build's telemetry (from the artifact cache on
	// hits — the stats of the build that filled the entry).
	Stats ArtifactStats
	// Result is the full pipeline result when this flight actually built
	// (nil for artifact-cache hits, which carry only Stats).
	Result *core.Result
}

// flight is one in-flight unique build; waiters block on done.
type flight struct {
	key      string
	req      Request
	enqueued time.Time
	done     chan struct{}
	res      *core.Result
	stats    ArtifactStats
	err      error
}

// Service is the deduplicating build queue.
type Service struct {
	cfg   Config
	cache *ArtifactCache
	met   *Metrics
	queue chan *flight
	wg    sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]*flight
	closed   bool
}

// New starts a Service with cfg's worker pool running.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Queue <= 0 {
		cfg.Queue = cfg.Workers
	}
	if cfg.Build == nil {
		cfg.Build = DefaultBuild
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewMemArtifactCache()
	}
	s := &Service{
		cfg:      cfg,
		cache:    cache,
		met:      cfg.Metrics,
		queue:    make(chan *flight, cfg.Queue),
		inflight: map[string]*flight{},
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit runs (or joins, or serves from cache) the build for req and blocks
// until its result is available. Concurrency-safe; every caller gets its own
// program clone.
func (s *Service) Submit(req Request) (*BuildResult, error) {
	key := req.Key()
	if a, ok := s.cache.Get(key); ok {
		s.met.outcome(OutcomeCached)
		return &BuildResult{Key: key, Outcome: OutcomeCached, Prog: a.Prog, Stats: a.Stats}, nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		return s.wait(f, OutcomeCoalesced)
	}
	f := &flight{key: key, req: req, enqueued: time.Now(), done: make(chan struct{})}
	select {
	case s.queue <- f:
		s.inflight[key] = f
		s.met.queued(1)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.met.outcome(OutcomeRejected)
		return nil, fmt.Errorf("%w (capacity %d)", ErrQueueFull, s.cfg.Queue)
	}
	return s.wait(f, OutcomeBuilt)
}

// wait blocks on a flight and materializes this waiter's private result.
func (s *Service) wait(f *flight, oc Outcome) (*BuildResult, error) {
	<-f.done
	if f.err != nil {
		s.met.outcome(OutcomeFailed)
		return nil, f.err
	}
	s.met.outcome(oc)
	return &BuildResult{
		Key:     f.key,
		Outcome: oc,
		Prog:    f.res.Prog.Clone(),
		Stats:   f.stats,
		Result:  f.res,
	}, nil
}

// worker drains the queue, running one build at a time.
func (s *Service) worker() {
	defer s.wg.Done()
	for f := range s.queue {
		s.met.queued(-1)
		s.met.observeQueueWait(time.Since(f.enqueued))
		start := time.Now()
		res, err := s.cfg.Build(f.req)
		dur := time.Since(start)
		s.met.observeBuild(dur)
		if err == nil {
			f.res = res
			f.stats = StatsFromResult(res, dur)
			// Fill the artifact cache before publishing and before leaving
			// the inflight map, so a submission arriving as we finish hits
			// the cache instead of starting a second build.
			s.cache.Put(f.key, Artifact{Prog: res.Prog, Stats: f.stats})
		} else {
			f.err = err
		}
		s.mu.Lock()
		delete(s.inflight, f.key)
		s.mu.Unlock()
		close(f.done)
	}
}

// StatsFromResult summarizes a pipeline result into artifact stats.
func StatsFromResult(res *core.Result, dur time.Duration) ArtifactStats {
	st := ArtifactStats{
		Insns:      res.Prog.NI(),
		FellBack:   res.FellBack,
		BuildNanos: dur.Nanoseconds(),
	}
	if res.Baseline != nil {
		st.BaselineInsns = res.Baseline.NI()
		st.InsnsSaved = st.BaselineInsns - st.Insns
	}
	if so := res.Superopt; so != nil {
		st.Searches = so.Searches
		st.CacheHits = so.CacheHits
		st.Rewrites = so.Rewrites
		st.CyclesSaved = so.CyclesSaved
	}
	return st
}

// Cache exposes the artifact cache (for stats verbs and flushing).
func (s *Service) Cache() *ArtifactCache { return s.cache }

// Pending returns the number of unique builds waiting for a worker.
func (s *Service) Pending() int { return len(s.queue) }

// Close stops accepting submissions, waits for in-flight builds to finish
// and flushes the artifact cache. Waiters of in-flight builds still receive
// their results.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	return s.cache.Close()
}
