package buildsvc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"merlin/internal/core"
)

// Request is one build submission: raw module source, the function to
// compile, and the build options. Two requests with equal Key() are the same
// build — same source bytes, same semantic options — and are deduplicated
// into one underlying pipeline run.
type Request struct {
	// Source is the IR module text, byte for byte as submitted.
	Source []byte
	// Func names the function to compile.
	Func string
	// Opts configures the pipeline. Only semantic fields participate in the
	// key (see canonOptions); per-process plumbing like Metrics, Injector,
	// the superopt cache handle and worker counts do not change what is
	// built and are excluded.
	Opts core.Options
}

// Key returns the content-addressed build key: sha256 over the source bytes,
// the function name and the canonicalized options, hex-encoded. This is the
// same hashing discipline as the superopt verdict cache — everything that
// changes the output is in the key, nothing else is.
func (r Request) Key() string {
	h := sha256.New()
	h.Write(r.Source)
	h.Write([]byte{0})
	h.Write([]byte(r.Func))
	h.Write([]byte{0})
	h.Write(canonOptions(r.Opts))
	return hex.EncodeToString(h.Sum(nil))
}

// canonOptions serializes the semantic build options deterministically.
// Fields that select or parameterize transformations are included; plumbing
// (Metrics, Injector, cache handles, search worker counts) is not. The
// enabled-optimizer set is canonicalized to pipeline order so Enable slices
// that name the same set in different orders share a key, mirroring how the
// superopt cache canonicalizes register names.
func canonOptions(o core.Options) []byte {
	var b []byte
	u32 := func(v uint32) {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	u32(uint32(o.Hook))
	mcpu := o.MCPU
	if mcpu == 0 {
		mcpu = 2 // core.Build's own default; 0 and 2 are the same build
	}
	u32(uint32(mcpu))
	flag := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	flag(o.KernelALU32)
	for _, opt := range core.AllOptimizers() {
		flag(o.Enable == nil || containsOpt(o.Enable, opt))
	}
	flag(o.Verify)
	u32(uint32(o.VerifierVersion))
	u32(uint32(o.VerifierLimits.MaxProcessedInsns))
	u32(uint32(o.VerifierLimits.MaxStates))
	flag(o.Guard)
	u32(uint32(o.GuardDiffInputs))
	b = binary.LittleEndian.AppendUint64(b, uint64(o.PassTimeout))
	if o.Superopt != nil {
		b = append(b, 1)
		u32(uint32(o.Superopt.Budget))
		flag(o.Superopt.ALU32)
		b = binary.LittleEndian.AppendUint64(b, uint64(o.Superopt.Seed))
		u32(uint32(o.Superopt.DiffInputs))
	} else {
		b = append(b, 0)
	}
	return b
}

func containsOpt(s []core.Optimizer, o core.Optimizer) bool {
	for _, e := range s {
		if e == o {
			return true
		}
	}
	return false
}

// ShortKey renders a key's 12-hex-digit prefix for logs and protocol lines.
func ShortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// String implements fmt.Stringer for diagnostics.
func (r Request) String() string {
	return fmt.Sprintf("build{func=%s src=%dB key=%s}", r.Func, len(r.Source), ShortKey(r.Key()))
}
