package buildsvc

import (
	"time"

	"merlin/internal/metrics"
)

// Metrics publishes build-service telemetry into a metrics.Registry. All
// methods are nil-receiver safe, matching the superopt.Metrics discipline.
type Metrics struct {
	depth     *metrics.Gauge
	outcomes  map[Outcome]*metrics.Counter
	buildDur  *metrics.Histogram
	queueWait *metrics.Histogram
}

// NewMetrics registers the merlin_build_* families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		depth:     reg.Gauge("merlin_build_queue_depth", "Unique builds waiting for a build worker."),
		outcomes:  map[Outcome]*metrics.Counter{},
		buildDur:  reg.Histogram("merlin_build_duration_us", "Underlying pipeline build wall time in microseconds."),
		queueWait: reg.Histogram("merlin_build_queue_wait_us", "Time a unique build waited for a worker in microseconds."),
	}
	for _, oc := range []Outcome{OutcomeBuilt, OutcomeCached, OutcomeCoalesced, OutcomeRejected, OutcomeFailed} {
		m.outcomes[oc] = reg.Counter("merlin_build_outcomes_total",
			"Build submissions by outcome.", "outcome", string(oc))
	}
	return m
}

// outcome counts one submission's outcome.
func (m *Metrics) outcome(oc Outcome) {
	if m == nil {
		return
	}
	if c, ok := m.outcomes[oc]; ok {
		c.Inc()
	}
}

// queued moves the queue-depth gauge by delta.
func (m *Metrics) queued(delta int64) {
	if m == nil {
		return
	}
	m.depth.Add(delta)
}

// observeBuild records one underlying build's wall time.
func (m *Metrics) observeBuild(d time.Duration) {
	if m == nil {
		return
	}
	m.buildDur.Observe(uint64(d.Microseconds()))
}

// observeQueueWait records how long a unique build sat in the queue.
func (m *Metrics) observeQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.queueWait.Observe(uint64(d.Microseconds()))
}
