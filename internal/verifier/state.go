// Package verifier implements a simulated kernel eBPF verifier: a
// path-sensitive symbolic executor that type-checks every register and
// memory access along every control-flow path, with state pruning at
// checkpoint sites. It reproduces the metrics the paper evaluates against
// the real verifier: NPI (number of processed instructions), verification
// time, and peak/total state counts — including their sensitivity to the
// pruning heuristics of different kernel versions (Table 5).
package verifier

import (
	"fmt"

	"merlin/internal/ebpf"
)

// RegType classifies a register's contents.
type RegType uint8

// Register types, mirroring the kernel's reg_type.
const (
	NotInit RegType = iota
	Scalar
	PtrToCtx
	PtrToStack
	PtrToPacket
	PtrToPacketEnd
	PtrToMapHandle
	PtrToMapValue
	PtrToMapValueOrNull
)

func (t RegType) String() string {
	switch t {
	case NotInit:
		return "?"
	case Scalar:
		return "scalar"
	case PtrToCtx:
		return "ctx"
	case PtrToStack:
		return "fp"
	case PtrToPacket:
		return "pkt"
	case PtrToPacketEnd:
		return "pkt_end"
	case PtrToMapHandle:
		return "map_ptr"
	case PtrToMapValue:
		return "map_value"
	case PtrToMapValueOrNull:
		return "map_value_or_null"
	}
	return "??"
}

// RegState is the abstract value of one register.
type RegState struct {
	Type RegType
	// Off is the constant byte offset for pointer types.
	Off int64
	// UMin/UMax bound scalar values (unsigned). Known constants have
	// UMin == UMax.
	UMin, UMax uint64
	// VarSpan is the extra variable byte range of a pointer whose offset
	// includes a bounded unknown scalar: the runtime offset lies in
	// [Off, Off+VarSpan].
	VarSpan uint64
	// MapIdx identifies the map for map pointer types.
	MapIdx int
	// ID links registers and spilled copies produced by the same
	// or-null-returning call, so a null check refines all of them.
	ID uint32
}

func scalarUnknown() RegState { return RegState{Type: Scalar, UMin: 0, UMax: ^uint64(0)} }

func scalarConst(v uint64) RegState { return RegState{Type: Scalar, UMin: v, UMax: v} }

// Known reports whether the scalar has a single possible value.
func (r RegState) Known() bool { return r.Type == Scalar && r.UMin == r.UMax }

func (r RegState) String() string {
	switch {
	case r.Type == Scalar && r.Known():
		return fmt.Sprintf("%d", int64(r.UMin))
	case r.Type == Scalar:
		return fmt.Sprintf("scalar[%d,%d]", r.UMin, r.UMax)
	case r.Type == PtrToStack, r.Type == PtrToCtx, r.Type == PtrToPacket, r.Type == PtrToMapValue:
		return fmt.Sprintf("%s%+d", r.Type, r.Off)
	default:
		return r.Type.String()
	}
}

// Stack slot bookkeeping: 64 8-byte slots, each either holding a spilled
// register (full-slot store of a pointer) or a byte-mask of initialized
// "misc" data.
type slotState struct {
	spill RegState // Type == NotInit when not a spill
	mask  uint8    // bit i set: byte i initialized (misc data)
}

// numSlots is the number of 8-byte stack slots (512 bytes).
const numSlots = 64

// state is one path-exploration state.
type state struct {
	regs [ebpf.NumRegisters]RegState
	// stack[i] covers bytes [-(i+1)*8, -i*8) relative to r10.
	stack [numSlots]slotState
	// pktSafe is the number of packet bytes proven in-bounds.
	pktSafe int64
	pc      int
}

func (s *state) clone() *state {
	c := *s
	return &c
}

// subsumes reports whether every concrete execution represented by new is
// also represented by old, so exploring new again is redundant — the
// states_equal/regsafe pruning logic of the kernel verifier. exactScalar
// demands identical scalar ranges instead of range inclusion, modelling the
// weaker pruning of older kernels. Or-null IDs are matched through a
// consistent renaming (the kernel's idmap).
func (old *state) subsumes(new *state, exactScalar bool) bool {
	idmap := map[uint32]uint32{}
	regOK := func(o, n RegState) bool {
		// A register the old path never assumed anything about imposes no
		// constraint: had the continuation read it, verification would have
		// failed from the old state.
		if o.Type == NotInit {
			return true
		}
		if o.Type != n.Type {
			return false
		}
		switch o.Type {
		case Scalar:
			if exactScalar {
				return o.UMin == n.UMin && o.UMax == n.UMax
			}
			return o.UMin <= n.UMin && n.UMax <= o.UMax
		case PtrToMapValueOrNull:
			if o.MapIdx != n.MapIdx || o.Off != n.Off || n.VarSpan > o.VarSpan {
				return false
			}
			if mapped, ok := idmap[o.ID]; ok {
				return mapped == n.ID
			}
			idmap[o.ID] = n.ID
			return true
		default:
			return o.Off == n.Off && n.VarSpan <= o.VarSpan && o.MapIdx == n.MapIdx
		}
	}
	for i := range old.regs {
		if !regOK(old.regs[i], new.regs[i]) {
			return false
		}
	}
	for i := range old.stack {
		o, n := old.stack[i], new.stack[i]
		if o.spill.Type != NotInit {
			if n.spill.Type == NotInit || !regOK(o.spill, n.spill) {
				return false
			}
		} else if o.mask&^n.mask != 0 && n.spill.Type == NotInit {
			// Old had bytes initialized that new does not: reads that
			// succeeded from old could fault from new.
			return false
		}
	}
	return old.pktSafe <= new.pktSafe
}

// setNullResolved rewrites every register and spill slot carrying the given
// or-null ID to its resolved form.
func (s *state) setNullResolved(id uint32, isNull bool) {
	fix := func(r *RegState) {
		if r.Type != PtrToMapValueOrNull || r.ID != id {
			return
		}
		if isNull {
			*r = scalarConst(0)
		} else {
			r.Type = PtrToMapValue
			r.ID = 0
		}
	}
	for i := range s.regs {
		fix(&s.regs[i])
	}
	for i := range s.stack {
		fix(&s.stack[i].spill)
	}
}

// writeStack models a store of size bytes at offset off (negative, relative
// to r10). val is the stored register's state.
func (s *state) writeStack(off int64, size int, val RegState) error {
	if off >= 0 || off < -int64(numSlots*8) || off+int64(size) > 0 {
		return fmt.Errorf("invalid stack write at fp%+d size %d", off, size)
	}
	start := -off - int64(size) // bytes below r10, from the top
	_ = start
	slot := int((-off - 1) / 8)
	if size == 8 && off%8 == 0 {
		if val.Type != Scalar && val.Type != NotInit {
			// Spilled pointer: remember it exactly.
			s.stack[slot] = slotState{spill: val, mask: 0xff}
			return nil
		}
		s.stack[slot] = slotState{mask: 0xff}
		if val.Type == NotInit {
			return fmt.Errorf("storing uninitialized register to stack")
		}
		return nil
	}
	if val.Type != Scalar {
		return fmt.Errorf("cannot store pointer with partial-width store")
	}
	// Partial write: demote slot(s) to misc and set byte mask.
	for b := 0; b < size; b++ {
		byteOff := off + int64(b) // negative
		sl := int((-byteOff - 1) / 8)
		within := uint(7 - ((-byteOff - 1) % 8))
		s.stack[sl].spill = RegState{}
		s.stack[sl].mask |= 1 << within
	}
	return nil
}

// readStack models a load of size bytes at offset off.
func (s *state) readStack(off int64, size int) (RegState, error) {
	if off >= 0 || off < -int64(numSlots*8) || off+int64(size) > 0 {
		return RegState{}, fmt.Errorf("invalid stack read at fp%+d size %d", off, size)
	}
	slot := int((-off - 1) / 8)
	if size == 8 && off%8 == 0 {
		sl := s.stack[slot]
		if sl.spill.Type != NotInit {
			return sl.spill, nil
		}
		if sl.mask != 0xff {
			return RegState{}, fmt.Errorf("read of uninitialized stack at fp%+d", off)
		}
		return scalarUnknown(), nil
	}
	for b := 0; b < size; b++ {
		byteOff := off + int64(b)
		sl := int((-byteOff - 1) / 8)
		within := uint(7 - ((-byteOff - 1) % 8))
		if s.stack[sl].spill.Type != NotInit {
			continue // reading part of a spilled pointer yields misc data
		}
		if s.stack[sl].mask&(1<<within) == 0 {
			return RegState{}, fmt.Errorf("read of uninitialized stack at fp%+d", off+int64(b))
		}
	}
	return boundedScalar(size), nil
}

// stackRangeInitialized checks that [off, off+n) is fully initialized
// (helper key/value arguments must point at initialized memory).
func (s *state) stackRangeInitialized(off, n int64) bool {
	for b := int64(0); b < n; b++ {
		byteOff := off + b
		if byteOff >= 0 || byteOff < -int64(numSlots*8) {
			return false
		}
		sl := int((-byteOff - 1) / 8)
		within := uint(7 - ((-byteOff - 1) % 8))
		if s.stack[sl].spill.Type != NotInit {
			continue
		}
		if s.stack[sl].mask&(1<<within) == 0 {
			return false
		}
	}
	return true
}

// markStackMisc initializes [off, off+n) as misc data (helper writes).
func (s *state) markStackMisc(off, n int64) {
	for b := int64(0); b < n; b++ {
		byteOff := off + b
		if byteOff >= 0 || byteOff < -int64(numSlots*8) {
			return
		}
		sl := int((-byteOff - 1) / 8)
		within := uint(7 - ((-byteOff - 1) % 8))
		s.stack[sl].spill = RegState{}
		s.stack[sl].mask |= 1 << within
	}
}

// boundedScalar returns an unknown scalar bounded by the loaded width
// (loads zero-extend).
func boundedScalar(size int) RegState {
	switch size {
	case 1:
		return RegState{Type: Scalar, UMax: 0xff}
	case 2:
		return RegState{Type: Scalar, UMax: 0xffff}
	case 4:
		return RegState{Type: Scalar, UMax: 0xffffffff}
	}
	return scalarUnknown()
}
