package verifier

import (
	"fmt"

	"merlin/internal/ebpf"
)

// condJump symbolically executes a conditional branch. It returns the
// fallthrough state, an optional taken-branch state to explore, or follows a
// single arm when the predicate is statically decidable.
func (v *checker) condJump(st *state, ins ebpf.Instruction) (*state, *state, bool, error) {
	a, err := v.regRead(st, ins.Dst)
	if err != nil {
		return nil, nil, false, err
	}
	var b RegState
	if ins.SourceField() == ebpf.SourceX {
		b, err = v.regRead(st, ins.Src)
		if err != nil {
			return nil, nil, false, err
		}
	} else {
		b = scalarConst(uint64(int64(ins.Imm)))
	}
	op := ins.JumpOpField()
	is32 := ins.Class() == ebpf.ClassJMP32

	tgt, ok := v.elemAt[v.slotOf[st.pc]+ins.Slots()+int(ins.Offset)]
	if !ok {
		return nil, nil, false, fmt.Errorf("branch into the middle of an instruction")
	}

	// Classify operand combination.
	switch {
	case a.Type == Scalar && b.Type == Scalar:
		return v.scalarBranch(st, ins, a, b, op, is32, tgt)
	case a.Type == PtrToPacket && b.Type == PtrToPacketEnd,
		a.Type == PtrToPacketEnd && b.Type == PtrToPacket:
		return v.packetBranch(st, a, b, op, tgt)
	case a.Type == PtrToMapValueOrNull && b.Known() && b.UMin == 0 && (op == ebpf.JumpEq || op == ebpf.JumpNE):
		return v.nullBranch(st, a.ID, op, tgt)
	case isPointer(a.Type) && isPointer(b.Type) && a.Type == b.Type:
		// Same-type pointer comparison: explore both arms without
		// refinement (the kernel permits these for pkt pointers and we are
		// permissive for the rest).
		taken := st.clone()
		taken.pc = tgt
		st.pc++
		return st, taken, false, nil
	case a.Type == PtrToMapValue && b.Known() && b.UMin == 0:
		// A resolved map value pointer is never null: == 0 is always false.
		if op == ebpf.JumpEq {
			st.pc++
			return st, nil, false, nil
		}
		if op == ebpf.JumpNE {
			st.pc = tgt
			return st, nil, false, nil
		}
		return nil, nil, false, fmt.Errorf("invalid comparison of map_value with constant")
	}
	return nil, nil, false, fmt.Errorf("R%d pointer comparison prohibited (%s vs %s)", ins.Dst, a.Type, b.Type)
}

// nullBranch resolves an or-null pointer on both arms.
func (v *checker) nullBranch(st *state, id uint32, op ebpf.JumpOp, tgt int) (*state, *state, bool, error) {
	taken := st.clone()
	taken.pc = tgt
	st.pc++
	if op == ebpf.JumpEq {
		taken.setNullResolved(id, true) // == 0 taken: it is null
		st.setNullResolved(id, false)
	} else {
		taken.setNullResolved(id, false) // != 0 taken: not null
		st.setNullResolved(id, true)
	}
	return st, taken, false, nil
}

// packetBranch refines the proven packet length on bounds checks like
// "if data + N > data_end goto drop".
func (v *checker) packetBranch(st *state, a, b RegState, op ebpf.JumpOp, tgt int) (*state, *state, bool, error) {
	// Normalize to pkt OP end.
	pkt := a
	if a.Type == PtrToPacketEnd {
		pkt = b
		op = swapCmp(op)
	}
	if pkt.VarSpan != 0 {
		// Variable-offset pointer: no refinement, explore both.
		taken := st.clone()
		taken.pc = tgt
		st.pc++
		return st, taken, false, nil
	}
	n := pkt.Off // pkt+n compared against end
	taken := st.clone()
	taken.pc = tgt
	st.pc++
	fall := st
	switch op {
	case ebpf.JumpGT: // taken: pkt+n > end; fall: pkt+n <= end → n bytes ok
		if n > fall.pktSafe {
			fall.pktSafe = n
		}
	case ebpf.JumpGE: // fall: pkt+n < end → n bytes ok (conservative)
		if n > fall.pktSafe {
			fall.pktSafe = n
		}
	case ebpf.JumpLT: // taken: pkt+n < end → n ok
		if n > taken.pktSafe {
			taken.pktSafe = n
		}
	case ebpf.JumpLE: // taken: pkt+n <= end → n ok
		if n > taken.pktSafe {
			taken.pktSafe = n
		}
	}
	return fall, taken, false, nil
}

func swapCmp(op ebpf.JumpOp) ebpf.JumpOp {
	switch op {
	case ebpf.JumpGT:
		return ebpf.JumpLT
	case ebpf.JumpGE:
		return ebpf.JumpLE
	case ebpf.JumpLT:
		return ebpf.JumpGT
	case ebpf.JumpLE:
		return ebpf.JumpGE
	}
	return op
}

// scalarBranch decides or forks on a scalar comparison, refining unsigned
// ranges against constants.
func (v *checker) scalarBranch(st *state, ins ebpf.Instruction, a, b RegState, op ebpf.JumpOp, is32 bool, tgt int) (*state, *state, bool, error) {
	if is32 {
		a, b = trunc32(a), trunc32(b)
	}
	decided, always := decide(op, a, b)
	if decided {
		if always {
			st.pc = tgt
		} else {
			st.pc++
		}
		return st, nil, false, nil
	}
	taken := st.clone()
	taken.pc = tgt
	st.pc++
	// Range refinement only for 64-bit compares against known constants on
	// the dst side (the common bounds-check shape).
	if !is32 && b.Known() && ins.SourceField() == ebpf.SourceK {
		c := b.UMin
		rT := &taken.regs[ins.Dst]
		rF := &st.regs[ins.Dst]
		refine(rT, rF, op, c)
	}
	return st, taken, false, nil
}

// decide returns (true, outcome) when the comparison is statically known.
func decide(op ebpf.JumpOp, a, b RegState) (bool, bool) {
	switch op {
	case ebpf.JumpEq:
		if a.Known() && b.Known() {
			return true, a.UMin == b.UMin
		}
		if a.UMax < b.UMin || a.UMin > b.UMax {
			return true, false
		}
	case ebpf.JumpNE:
		if a.Known() && b.Known() {
			return true, a.UMin != b.UMin
		}
		if a.UMax < b.UMin || a.UMin > b.UMax {
			return true, true
		}
	case ebpf.JumpGT:
		if a.UMin > b.UMax {
			return true, true
		}
		if a.UMax <= b.UMin {
			return true, false
		}
	case ebpf.JumpGE:
		if a.UMin >= b.UMax {
			return true, true
		}
		if a.UMax < b.UMin {
			return true, false
		}
	case ebpf.JumpLT:
		if a.UMax < b.UMin {
			return true, true
		}
		if a.UMin >= b.UMax {
			return true, false
		}
	case ebpf.JumpLE:
		if a.UMax <= b.UMin {
			return true, true
		}
		if a.UMin > b.UMax {
			return true, false
		}
	case ebpf.JumpSet:
		if a.Known() && b.Known() {
			return true, a.UMin&b.UMin != 0
		}
	}
	return false, false
}

// refine narrows the unsigned range of the compared register on both arms.
func refine(taken, fall *RegState, op ebpf.JumpOp, c uint64) {
	clampMin := func(r *RegState, v uint64) {
		if r.Type == Scalar && v > r.UMin {
			r.UMin = v
		}
	}
	clampMax := func(r *RegState, v uint64) {
		if r.Type == Scalar && v < r.UMax {
			r.UMax = v
		}
	}
	switch op {
	case ebpf.JumpEq:
		if taken.Type == Scalar {
			*taken = scalarConst(c)
		}
	case ebpf.JumpNE:
		if fall.Type == Scalar {
			*fall = scalarConst(c)
		}
	case ebpf.JumpGT:
		if c < ^uint64(0) {
			clampMin(taken, c+1)
		}
		clampMax(fall, c)
	case ebpf.JumpGE:
		clampMin(taken, c)
		if c > 0 {
			clampMax(fall, c-1)
		}
	case ebpf.JumpLT:
		if c > 0 {
			clampMax(taken, c-1)
		}
		clampMin(fall, c)
	case ebpf.JumpLE:
		clampMax(taken, c)
		if c < ^uint64(0) {
			clampMin(fall, c+1)
		}
	}
}
