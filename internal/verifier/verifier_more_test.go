package verifier

import (
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

func TestPointerArithmeticRules(t *testing.T) {
	// Multiplying a pointer is prohibited.
	mustFail(t, xdp(
		ebpf.ALU64Imm(ebpf.ALUMul, ebpf.R1, 4),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "pointer arithmetic")
	// 32-bit arithmetic on pointers is prohibited.
	mustFail(t, xdp(
		ebpf.ALU32Imm(ebpf.ALUAdd, ebpf.R1, 4),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "32-bit arithmetic on pointer")
	// Pointer + pointer is prohibited.
	mustFail(t, xdp(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R1, ebpf.R2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "pointer + pointer")
	// Subtracting an unbounded scalar from a pointer is prohibited.
	mustFail(t, xdp(
		ebpf.LoadMem(ebpf.SizeW, ebpf.R2, ebpf.R1, 0),
		ebpf.ALU64Reg(ebpf.ALUSub, ebpf.R1, ebpf.R2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "unbounded scalar")
	// Adding a bounded scalar to a pointer is fine.
	mustPass(t, xdp(
		ebpf.LoadMem(ebpf.SizeW, ebpf.R2, ebpf.R1, 0),
		ebpf.ALU64Imm(ebpf.ALUAnd, ebpf.R2, 7),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, -16),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -16, ebpf.R4),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R4),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R3, ebpf.R2),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R3, 0),
		ebpf.Exit(),
	))
}

func TestPointerComparisonRules(t *testing.T) {
	// Comparing a plain pointer against a non-zero constant is prohibited.
	mustFail(t, xdp(
		ebpf.JumpImm(ebpf.JumpGT, ebpf.R1, 5, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	), "pointer comparison prohibited")
	// Same-type pointer comparisons are allowed.
	mustPass(t, xdp(
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.JumpReg(ebpf.JumpEq, ebpf.R2, ebpf.R10, 1),
		ebpf.Jump(0),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	))
}

func TestStorePointerRules(t *testing.T) {
	// Spilling a pointer to the stack is fine (full-width, aligned).
	mustPass(t, xdp(
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R10, -8),
		ebpf.LoadMem(ebpf.SizeW, ebpf.R0, ebpf.R2, 0), // reloaded ctx ptr works
		ebpf.Exit(),
	))
	// Partial-width pointer stores are prohibited.
	mustFail(t, xdp(
		ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -8, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "partial-width")
	// Storing a pointer into the packet is prohibited.
	mustFail(t, xdp(
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 8),
		ebpf.Mov64Reg(ebpf.R4, ebpf.R2),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R4, 8),
		ebpf.JumpReg(ebpf.JumpGT, ebpf.R4, ebpf.R3, 2),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R2, 0, ebpf.R10),
		ebpf.Jump(0),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	), "storing pointer to packet")
}

func TestScalarBranchDecidability(t *testing.T) {
	// A branch whose outcome is provable explores one arm only; the other
	// arm is still reachable via the CFG (no unreachable-insn error) but
	// contributes nothing to NPI.
	st := mustPass(t, xdp(
		ebpf.Mov64Imm(ebpf.R1, 10),
		ebpf.JumpImm(ebpf.JumpGT, ebpf.R1, 5, 2), // always taken
		ebpf.Mov64Imm(ebpf.R0, 0),                // reachable per CFG, never walked
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	))
	if st.NPI != 4 {
		t.Fatalf("NPI = %d, want 4 (single-arm exploration)", st.NPI)
	}
}

func TestJmp32ScalarBranch(t *testing.T) {
	mustPass(t, xdp(
		ebpf.LoadMem(ebpf.SizeW, ebpf.R2, ebpf.R1, 0),
		ebpf.Jump32Imm(ebpf.JumpLT, ebpf.R2, 10, 1),
		ebpf.Jump(0),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	))
}

func TestMapUpdateSignature(t *testing.T) {
	p := mapProg(
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R1, 7),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -16, ebpf.R1),
		ebpf.LoadMapPtr(ebpf.R1, 0),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, -16),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(helpers.MapUpdateElem),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	)
	mustPass(t, p)
	// Value region uninitialized → reject.
	bad := mapProg(
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R1),
		ebpf.LoadMapPtr(ebpf.R1, 0),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, -16),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(helpers.MapUpdateElem),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	)
	mustFail(t, bad, "uninitialized stack")
}

func TestNullCheckEqBranch(t *testing.T) {
	// "if r0 == 0 goto miss" — the fallthrough is the non-null arm.
	mustPass(t, mapProg(append(lookupSeq(),
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R0, 0, 2),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	)...))
}

func TestJumpOutOfRange(t *testing.T) {
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R0, 0, 50),
		ebpf.Exit(),
	), "")
}

func TestStackAtomicRequiresInit(t *testing.T) {
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R2, 1),
		ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R10, -8, ebpf.R2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "uninitialized stack")
	// Misaligned atomics rejected.
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -16, ebpf.R1),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R2, 1),
		ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R10, -12, ebpf.R2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "misaligned atomic")
}

func TestPerfEventOutputSignature(t *testing.T) {
	p := &ebpf.Program{
		Name: "p", Hook: ebpf.HookTracepoint,
		Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R3, 0x11),
			ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R3),
			ebpf.LoadMapPtr(ebpf.R2, 0),
			ebpf.Mov64Imm(ebpf.R3, 0),
			ebpf.Mov64Reg(ebpf.R4, ebpf.R10),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R4, -8),
			ebpf.Mov64Imm(ebpf.R5, 8),
			ebpf.Call(helpers.PerfEventOutput),
			ebpf.Mov64Imm(ebpf.R0, 0),
			ebpf.Exit(),
		},
		Maps: []ebpf.MapSpec{{Name: "ev", Kind: 3, KeySize: 0, ValueSize: 64, MaxEntries: 8}},
	}
	// R1 must be the context: not set → NotInit at entry (R1 holds ctx
	// initially, but gets clobbered by LoadMapPtr into R2? No: R1 is ctx
	// throughout). This program leaves R1 as ctx: accepted.
	mustPass(t, p)

	bad := p.Clone()
	bad.Insns = append([]ebpf.Instruction{ebpf.Mov64Imm(ebpf.R1, 5)}, bad.Insns...)
	mustFail(t, bad, "expected=ctx")
}

func TestVerifierLogProcessedLine(t *testing.T) {
	st := Verify(xdp(
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	), Options{LogLevel: 4})
	if st.Log == "" {
		t.Fatal("log empty at LogLevel 4")
	}
	if Verify(xdp(ebpf.Mov64Imm(ebpf.R0, 1), ebpf.Exit()), Options{}).Log != "" {
		t.Fatal("log should be empty by default")
	}
}
