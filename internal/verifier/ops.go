package verifier

import (
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

func (v *checker) regRead(st *state, r ebpf.Register) (RegState, error) {
	rs := st.regs[r]
	if rs.Type == NotInit {
		return rs, fmt.Errorf("R%d !read_ok", r)
	}
	return rs, nil
}

// alu symbolically executes an ALU/ALU64 instruction.
func (v *checker) alu(st *state, ins ebpf.Instruction) error {
	if ins.Dst == ebpf.R10 {
		return fmt.Errorf("frame pointer is read only")
	}
	is32 := ins.Class() == ebpf.ClassALU
	op := ins.ALUOpField()

	var src RegState
	switch {
	case op == ebpf.ALUEnd || op == ebpf.ALUNeg:
		// Unary: the Src field is meaningless.
		src = scalarConst(0)
	case ins.SourceField() == ebpf.SourceX:
		s, err := v.regRead(st, ins.Src)
		if err != nil {
			return err
		}
		src = s
	default:
		src = scalarConst(uint64(int64(ins.Imm)))
	}

	if op == ebpf.ALUMov {
		if is32 {
			st.regs[ins.Dst] = trunc32(src)
		} else {
			st.regs[ins.Dst] = src
		}
		return nil
	}

	dst, err := v.regRead(st, ins.Dst)
	if err != nil {
		return err
	}
	if op == ebpf.ALUEnd {
		if dst.Type != Scalar {
			return fmt.Errorf("byte swap on non-scalar R%d", ins.Dst)
		}
		st.regs[ins.Dst] = boundedScalar(int(ins.Imm) / 8)
		return nil
	}
	if op == ebpf.ALUNeg {
		src = scalarConst(0)
	}

	// Pointer arithmetic.
	if isPointer(dst.Type) {
		if is32 {
			return fmt.Errorf("32-bit arithmetic on pointer prohibited")
		}
		switch op {
		case ebpf.ALUAdd, ebpf.ALUSub:
			return v.ptrArith(st, ins.Dst, dst, src, op == ebpf.ALUSub)
		default:
			return fmt.Errorf("R%d pointer arithmetic with %s prohibited", ins.Dst, op)
		}
	}
	if isPointer(src.Type) {
		if op == ebpf.ALUAdd && !is32 {
			// scalar + ptr: commutes
			return v.ptrArith(st, ins.Dst, src, dst, false)
		}
		return fmt.Errorf("R%d pointer operand prohibited", ins.Src)
	}

	res := aluScalar(op, is32, dst, src)
	st.regs[ins.Dst] = res
	return nil
}

func isPointer(t RegType) bool {
	switch t {
	case PtrToCtx, PtrToStack, PtrToPacket, PtrToPacketEnd, PtrToMapHandle, PtrToMapValue, PtrToMapValueOrNull:
		return true
	}
	return false
}

func trunc32(r RegState) RegState {
	if r.Type != Scalar {
		// Truncating a pointer leaks its low bits as an unknown scalar.
		return RegState{Type: Scalar, UMax: 0xffffffff}
	}
	if r.Known() {
		return scalarConst(r.UMin & 0xffffffff)
	}
	if r.UMax <= 0xffffffff {
		return r
	}
	return RegState{Type: Scalar, UMax: 0xffffffff}
}

// ptrArith adds (or subtracts) a scalar to a pointer.
func (v *checker) ptrArith(st *state, dstReg ebpf.Register, ptr, off RegState, sub bool) error {
	switch ptr.Type {
	case PtrToPacketEnd, PtrToMapHandle, PtrToMapValueOrNull:
		return fmt.Errorf("arithmetic on %s prohibited", ptr.Type)
	}
	if off.Type != Scalar {
		return fmt.Errorf("pointer + pointer prohibited")
	}
	res := ptr
	switch {
	case off.Known():
		d := int64(off.UMin)
		if sub {
			d = -d
		}
		res.Off += d
	case sub:
		return fmt.Errorf("subtracting unbounded scalar from pointer")
	case off.UMax <= 1<<29:
		// Variable but bounded offset: remember the span.
		res.Off += int64(off.UMin)
		res.VarSpan += off.UMax - off.UMin
	default:
		return fmt.Errorf("R%d unbounded memory access, pointer offset not bounded", dstReg)
	}
	st.regs[dstReg] = res
	return nil
}

// aluScalar computes conservative interval arithmetic.
func aluScalar(op ebpf.ALUOp, is32 bool, a, b RegState) RegState {
	bits := uint(64)
	if is32 {
		bits = 32
		a, b = trunc32(a), trunc32(b)
	}
	if a.Known() && b.Known() {
		return mask32(scalarConst(evalALU(op, bits, a.UMin, b.UMin)), is32)
	}
	out := scalarUnknown()
	switch op {
	case ebpf.ALUAnd:
		// x & y ≤ min(xmax, ymax)
		out = RegState{Type: Scalar, UMax: minU(a.UMax, b.UMax)}
	case ebpf.ALUOr, ebpf.ALUXor:
		if hi := orUpperBound(a.UMax, b.UMax); hi < ^uint64(0) {
			out = RegState{Type: Scalar, UMax: hi}
		}
	case ebpf.ALUAdd:
		if a.UMax <= 1<<62 && b.UMax <= 1<<62 {
			out = RegState{Type: Scalar, UMin: a.UMin + b.UMin, UMax: a.UMax + b.UMax}
		}
	case ebpf.ALURsh:
		if b.Known() {
			k := b.UMin & uint64(bits-1)
			out = RegState{Type: Scalar, UMin: a.UMin >> k, UMax: a.UMax >> k}
		} else {
			out = RegState{Type: Scalar, UMax: a.UMax}
		}
	case ebpf.ALULsh:
		if b.Known() {
			k := b.UMin & uint64(bits-1)
			if k < 63 && a.UMax <= (^uint64(0))>>k {
				out = RegState{Type: Scalar, UMin: a.UMin << k, UMax: a.UMax << k}
			}
		}
	case ebpf.ALUDiv:
		if b.Known() && b.UMin != 0 {
			out = RegState{Type: Scalar, UMin: a.UMin / b.UMin, UMax: a.UMax / b.UMin}
		} else {
			out = RegState{Type: Scalar, UMax: a.UMax}
		}
	case ebpf.ALUMod:
		if b.Known() && b.UMin != 0 {
			out = RegState{Type: Scalar, UMax: b.UMin - 1}
		}
	}
	return mask32(out, is32)
}

func mask32(r RegState, is32 bool) RegState {
	if !is32 {
		return r
	}
	if r.UMax > 0xffffffff {
		return RegState{Type: Scalar, UMax: 0xffffffff}
	}
	return r
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// orUpperBound returns the smallest all-ones value covering both maxima.
func orUpperBound(a, b uint64) uint64 {
	m := a | b
	// Round up to 2^k - 1.
	for i := uint(1); i < 64; i <<= 1 {
		m |= m >> i
	}
	return m
}

func evalALU(op ebpf.ALUOp, bits uint, a, b uint64) uint64 {
	var r uint64
	switch op {
	case ebpf.ALUAdd:
		r = a + b
	case ebpf.ALUSub:
		r = a - b
	case ebpf.ALUMul:
		r = a * b
	case ebpf.ALUDiv:
		if b == 0 {
			r = 0
		} else {
			r = a / b
		}
	case ebpf.ALUMod:
		if b == 0 {
			r = a
		} else {
			r = a % b
		}
	case ebpf.ALUOr:
		r = a | b
	case ebpf.ALUAnd:
		r = a & b
	case ebpf.ALUXor:
		r = a ^ b
	case ebpf.ALULsh:
		r = a << (b & uint64(bits-1))
	case ebpf.ALURsh:
		r = a >> (b & uint64(bits-1))
	case ebpf.ALUArsh:
		if bits == 32 {
			r = uint64(uint32(int32(uint32(a)) >> (b & 31)))
		} else {
			r = uint64(int64(a) >> (b & 63))
		}
	case ebpf.ALUNeg:
		r = -a
	}
	if bits == 32 {
		r &= 0xffffffff
	}
	return r
}

// load type-checks a memory load and returns the loaded abstract value.
func (v *checker) load(st *state, ins ebpf.Instruction) (RegState, error) {
	base, err := v.regRead(st, ins.Src)
	if err != nil {
		return RegState{}, err
	}
	size := ins.SizeField().Bytes()
	off := base.Off + int64(ins.Offset)
	switch base.Type {
	case PtrToCtx:
		cs := int64(ctxSize(v.prog.Hook))
		if off < 0 || off+int64(size) > cs || base.VarSpan != 0 {
			return RegState{}, fmt.Errorf("invalid ctx access off=%d size=%d", off, size)
		}
		if off%int64(size) != 0 {
			return RegState{}, fmt.Errorf("misaligned ctx access off=%d size=%d", off, size)
		}
		if v.prog.Hook == ebpf.HookXDP && size == 8 {
			if off == 0 {
				return RegState{Type: PtrToPacket}, nil
			}
			if off == 8 {
				return RegState{Type: PtrToPacketEnd}, nil
			}
		}
		return boundedScalar(size), nil
	case PtrToStack:
		return st.readStack(off, size)
	case PtrToPacket:
		if off < 0 || off+int64(size)+int64(base.VarSpan) > st.pktSafe {
			return RegState{}, fmt.Errorf("invalid access to packet, off=%d size=%d, R%d(pkt) allowed=%d", off, size, ins.Src, st.pktSafe)
		}
		return boundedScalar(size), nil
	case PtrToMapValue:
		vs := int64(v.prog.Maps[base.MapIdx].ValueSize)
		if off < 0 || off+int64(size)+int64(base.VarSpan) > vs {
			return RegState{}, fmt.Errorf("invalid access to map value, off=%d size=%d value_size=%d", off, size, vs)
		}
		return boundedScalar(size), nil
	case PtrToMapValueOrNull:
		return RegState{}, fmt.Errorf("R%d invalid mem access 'map_value_or_null'", ins.Src)
	}
	return RegState{}, fmt.Errorf("R%d invalid mem access '%s'", ins.Src, base.Type)
}

// store type-checks a memory store (including atomics).
func (v *checker) store(st *state, ins ebpf.Instruction) error {
	base, err := v.regRead(st, ins.Dst)
	if err != nil {
		return err
	}
	size := ins.SizeField().Bytes()
	off := base.Off + int64(ins.Offset)

	var val RegState
	if ins.Class() == ebpf.ClassST {
		val = scalarConst(uint64(int64(ins.Imm)))
	} else {
		s, err := v.regRead(st, ins.Src)
		if err != nil {
			return err
		}
		val = s
	}

	if ins.IsAtomic() {
		if size != 4 && size != 8 {
			return fmt.Errorf("invalid atomic operand size %d", size)
		}
		if val.Type != Scalar {
			return fmt.Errorf("atomic operand must be scalar")
		}
		if off%int64(size) != 0 {
			return fmt.Errorf("misaligned atomic access off=%d", off)
		}
		switch base.Type {
		case PtrToStack:
			if !st.stackRangeInitialized(off, int64(size)) {
				return fmt.Errorf("atomic on uninitialized stack at fp%+d", off)
			}
			return nil
		case PtrToMapValue:
			vs := int64(v.prog.Maps[base.MapIdx].ValueSize)
			if off < 0 || off+int64(size)+int64(base.VarSpan) > vs {
				return fmt.Errorf("invalid atomic access to map value off=%d", off)
			}
			return nil
		default:
			return fmt.Errorf("BPF_ATOMIC stores into R%d %s is not allowed", ins.Dst, base.Type)
		}
	}

	switch base.Type {
	case PtrToStack:
		return st.writeStack(off, size, val)
	case PtrToPacket:
		if isPointer(val.Type) {
			return fmt.Errorf("storing pointer to packet prohibited")
		}
		if off < 0 || off+int64(size)+int64(base.VarSpan) > st.pktSafe {
			return fmt.Errorf("invalid write to packet, off=%d size=%d allowed=%d", off, size, st.pktSafe)
		}
		return nil
	case PtrToMapValue:
		if isPointer(val.Type) {
			return fmt.Errorf("storing pointer to map value prohibited")
		}
		vs := int64(v.prog.Maps[base.MapIdx].ValueSize)
		if off < 0 || off+int64(size)+int64(base.VarSpan) > vs {
			return fmt.Errorf("invalid write to map value, off=%d size=%d value_size=%d", off, size, vs)
		}
		return nil
	case PtrToCtx:
		return fmt.Errorf("ctx is read-only")
	case PtrToMapValueOrNull:
		return fmt.Errorf("R%d invalid mem access 'map_value_or_null'", ins.Dst)
	}
	return fmt.Errorf("R%d invalid mem access '%s'", ins.Dst, base.Type)
}

// call type-checks a helper invocation against its signature.
func (v *checker) call(st *state, ins ebpf.Instruction) error {
	spec, ok := helpers.Table[int(ins.Imm)]
	if !ok {
		return fmt.Errorf("invalid func unknown#%d", ins.Imm)
	}
	if !helpers.AllowedAt(spec.ID, v.prog.Hook) {
		return fmt.Errorf("unknown func %s#%d for program type %s", spec.Name, spec.ID, v.prog.Hook)
	}
	var mapIdx = -1
	var memPtr *RegState
	for i, kind := range spec.Args {
		reg := ebpf.Register(1 + i)
		rs, err := v.regRead(st, reg)
		if err != nil {
			return fmt.Errorf("%s: R%d: %w", spec.Name, reg, err)
		}
		switch kind {
		case helpers.ArgScalar:
			if rs.Type != Scalar {
				return fmt.Errorf("%s: R%d type=%s expected=scalar", spec.Name, reg, rs.Type)
			}
		case helpers.ArgCtx:
			if rs.Type != PtrToCtx {
				return fmt.Errorf("%s: R%d type=%s expected=ctx", spec.Name, reg, rs.Type)
			}
		case helpers.ArgMap:
			if rs.Type != PtrToMapHandle {
				return fmt.Errorf("%s: R%d type=%s expected=map_ptr", spec.Name, reg, rs.Type)
			}
			mapIdx = rs.MapIdx
		case helpers.ArgMapKey, helpers.ArgMapValue:
			if mapIdx < 0 {
				return fmt.Errorf("%s: key/value argument without map", spec.Name)
			}
			n := int64(v.prog.Maps[mapIdx].KeySize)
			if kind == helpers.ArgMapValue {
				n = int64(v.prog.Maps[mapIdx].ValueSize)
			}
			if err := v.checkMemArg(st, rs, n, false); err != nil {
				return fmt.Errorf("%s: R%d %w", spec.Name, reg, err)
			}
		case helpers.ArgMem:
			cp := rs
			memPtr = &cp
		case helpers.ArgSize:
			if rs.Type != Scalar {
				return fmt.Errorf("%s: R%d size must be scalar", spec.Name, reg)
			}
			if memPtr == nil {
				return fmt.Errorf("%s: size argument without memory", spec.Name)
			}
			if rs.UMax > 1<<20 {
				return fmt.Errorf("%s: R%d unbounded size", spec.Name, reg)
			}
			if err := v.checkMemArg(st, *memPtr, int64(rs.UMax), spec.WritesMem); err != nil {
				return fmt.Errorf("%s: R%d %w", spec.Name, reg, err)
			}
			memPtr = nil
		}
	}
	// Return value and clobbers.
	for r := ebpf.R1; r <= ebpf.R5; r++ {
		st.regs[r] = RegState{}
	}
	switch spec.Ret {
	case helpers.RetMapValueOrNull:
		v.nextID++
		st.regs[0] = RegState{Type: PtrToMapValueOrNull, MapIdx: mapIdx, ID: v.nextID}
	default:
		st.regs[0] = scalarUnknown()
	}
	return nil
}

// checkMemArg validates a pointer argument to n bytes of memory. write
// marks the region initialized instead of requiring it.
func (v *checker) checkMemArg(st *state, rs RegState, n int64, write bool) error {
	if n == 0 {
		return nil
	}
	switch rs.Type {
	case PtrToStack:
		if write {
			if rs.Off-0 < -int64(numSlots*8) || rs.Off+n > 0 {
				return fmt.Errorf("invalid stack region [%d,%d)", rs.Off, rs.Off+n)
			}
			st.markStackMisc(rs.Off, n)
			return nil
		}
		if !st.stackRangeInitialized(rs.Off, n) {
			return fmt.Errorf("indirect access to uninitialized stack [fp%+d, +%d)", rs.Off, n)
		}
		return nil
	case PtrToMapValue:
		vs := int64(v.prog.Maps[rs.MapIdx].ValueSize)
		if rs.Off < 0 || rs.Off+n+int64(rs.VarSpan) > vs {
			return fmt.Errorf("map value region out of bounds")
		}
		return nil
	case PtrToPacket:
		if rs.Off < 0 || rs.Off+n+int64(rs.VarSpan) > st.pktSafe {
			return fmt.Errorf("packet region out of bounds (allowed=%d)", st.pktSafe)
		}
		return nil
	}
	return fmt.Errorf("type=%s expected=memory", rs.Type)
}
