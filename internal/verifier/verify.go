package verifier

import (
	"fmt"
	"strings"
	"time"

	"merlin/internal/ebpf"
)

// KernelVersion selects the pruning heuristics to emulate (Table 5 studies
// their effect on state counts).
type KernelVersion int

// Emulated kernel versions.
const (
	// V519 checkpoints at jump targets and hashes scalar ranges exactly.
	V519 KernelVersion = 519
	// V65 also checkpoints after helper calls and hashes scalars coarsely
	// (known vs unknown), pruning more aggressively per site.
	V65 KernelVersion = 65
)

// Limits mirrors the kernel's verification limits.
type Limits struct {
	// MaxProcessedInsns is the 1M complexity budget (kernel ≥ 5.2).
	MaxProcessedInsns int
	// MaxStates caps the pending-state stack.
	MaxStates int
}

// DefaultLimits returns the kernel defaults.
func DefaultLimits() Limits {
	return Limits{MaxProcessedInsns: 1_000_000, MaxStates: 100_000}
}

// Options configures a verification run.
type Options struct {
	Version KernelVersion
	Limits  Limits
	// LogLevel > 0 collects a kernel-style per-instruction log.
	LogLevel int
}

// Stats reports the verification outcome and cost metrics.
type Stats struct {
	Passed bool
	Err    error
	// NPI is the number of processed instructions across all paths
	// (insn_processed in the kernel log).
	NPI int
	// TotalStates and PeakStates mirror the kernel's state counters.
	TotalStates int
	PeakStates  int
	Duration    time.Duration
	Log         string
}

// ctxSize returns the context byte size per hook, and whether offset 0/8
// carry packet pointers (XDP).
func ctxSize(h ebpf.HookType) int {
	switch h {
	case ebpf.HookXDP:
		return 16
	case ebpf.HookSocketFilter:
		return 16
	default:
		return 64 // tracepoint/kprobe arg block
	}
}

// Verify statically checks prog. It never executes the program.
func Verify(prog *ebpf.Program, opts Options) Stats {
	start := time.Now()
	if opts.Limits == (Limits{}) {
		opts.Limits = DefaultLimits()
	}
	if opts.Version == 0 {
		opts.Version = V65
	}
	v := &checker{prog: prog, opts: opts, seen: map[int][]*state{}}
	err := v.run()
	st := Stats{
		Passed:      err == nil,
		Err:         err,
		NPI:         v.npi,
		TotalStates: v.totalStates,
		PeakStates:  v.peakStates,
		Duration:    time.Since(start),
		Log:         v.log.String(),
	}
	return st
}

type checker struct {
	prog *ebpf.Program
	opts Options

	npi         int
	totalStates int
	peakStates  int
	stored      int
	nextID      uint32
	branchSeen  int
	seen        map[int][]*state
	log         strings.Builder

	// element/slot mapping
	slotOf []int
	elemAt map[int]int
	// checkpoint sites (jump targets; + post-call sites on V65)
	checkpoint map[int]bool
}

func (v *checker) logf(format string, args ...interface{}) {
	if v.opts.LogLevel > 0 {
		fmt.Fprintf(&v.log, format, args...)
	}
}

func (v *checker) run() error {
	prog := v.prog
	if len(prog.Insns) == 0 {
		return fmt.Errorf("empty program")
	}
	if prog.NI() > 1_000_000 {
		return fmt.Errorf("program too large: %d insns", prog.NI())
	}
	last := prog.Insns[len(prog.Insns)-1]
	if !last.IsExit() && !last.IsUncondJump() {
		return fmt.Errorf("program does not end with exit")
	}
	v.slotOf = prog.SlotIndex()
	v.elemAt = map[int]int{}
	for i := range prog.Insns {
		v.elemAt[v.slotOf[i]] = i
	}
	v.checkpoint = map[int]bool{}
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return err
	}
	for i, t := range ed.Target {
		if t >= 0 {
			if t >= len(prog.Insns) {
				return fmt.Errorf("branch at %d falls off the program", i)
			}
			v.checkpoint[t] = true
		}
		if v.opts.Version == V65 && prog.Insns[i].IsCall() && i+1 < len(prog.Insns) {
			v.checkpoint[i+1] = true
		}
	}
	// check_cfg analog: every instruction must be reachable from the entry,
	// as the kernel requires ("unreachable insn").
	if bad := firstUnreachable(prog, ed); bad >= 0 {
		return fmt.Errorf("unreachable insn %d", v.slotOf[bad])
	}

	init := &state{}
	init.regs[1] = RegState{Type: PtrToCtx}
	init.regs[10] = RegState{Type: PtrToStack}
	pending := []*state{init}
	v.totalStates = 1
	v.peakStates = 1

	for len(pending) > 0 {
		st := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		for {
			if v.npi >= v.opts.Limits.MaxProcessedInsns {
				return fmt.Errorf("BPF program is too large. Processed %d insn", v.npi)
			}
			if st.pc < 0 || st.pc >= len(v.prog.Insns) {
				return fmt.Errorf("jump out of range to insn %d", st.pc)
			}
			// Prune at checkpoints via state subsumption.
			if v.checkpoint[st.pc] {
				exact := v.opts.Version == V519
				pruned := false
				for _, old := range v.seen[st.pc] {
					if old.subsumes(st, exact) {
						pruned = true
						break
					}
				}
				if pruned {
					break
				}
				// Remember this state for future pruning (bounded per site,
				// like the kernel's state lists).
				if len(v.seen[st.pc]) < 64 {
					v.seen[st.pc] = append(v.seen[st.pc], st.clone())
					v.stored++
					v.totalStates++
				}
			}
			ins := v.prog.Insns[st.pc]
			v.npi += ins.Slots()
			v.logf("%d: (%02x) %s\n", v.slotOf[st.pc], ins.Opcode, ebpf.Mnemonic(ins))

			// Periodic checkpointing, as the kernel does after enough
			// processed instructions: placement depends on instruction
			// positions, which is what makes state counts shift when
			// programs are optimized and differ across kernel versions
			// (Table 5). V6.5 checkpoints twice as densely as V5.19.
			if ins.IsCondJump() {
				period := 32
				if v.opts.Version == V65 {
					period = 16
				}
				if v.npi-v.branchSeen >= period {
					v.branchSeen = v.npi
					if t, ok := v.elemAt[v.slotOf[st.pc]+ins.Slots()+int(ins.Offset)]; ok {
						v.checkpoint[t] = true
					}
					if st.pc+1 < len(v.prog.Insns) {
						v.checkpoint[st.pc+1] = true
					}
				}
			}

			next, branched, done, err := v.step(st, ins)
			if err != nil {
				return fmt.Errorf("insn %d: %s: %w", v.slotOf[st.pc], ebpf.Mnemonic(ins), err)
			}
			if done {
				break
			}
			if branched != nil {
				if len(pending) >= v.opts.Limits.MaxStates {
					return fmt.Errorf("too many pending states")
				}
				pending = append(pending, branched)
				v.totalStates++
				if n := len(pending) + v.stored + 1; n > v.peakStates {
					v.peakStates = n
				}
			}
			st = next
		}
	}
	v.logf("processed %d insns\n", v.npi)
	return nil
}

// firstUnreachable returns the element index of the first instruction not
// reachable from the entry, or -1.
func firstUnreachable(prog *ebpf.Program, ed *ebpf.Editable) int {
	n := len(prog.Insns)
	seen := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i < 0 || i >= n || seen[i] {
			continue
		}
		seen[i] = true
		ins := prog.Insns[i]
		if t := ed.Target[i]; t >= 0 {
			stack = append(stack, t)
		}
		if !ins.Terminates() {
			stack = append(stack, i+1)
		}
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			return i
		}
	}
	return -1
}

// step executes one instruction symbolically. It returns the continuing
// state, an optional extra state to explore (the other branch arm), and
// done=true when the path ended (exit or pruned).
func (v *checker) step(st *state, ins ebpf.Instruction) (*state, *state, bool, error) {
	switch ins.Class() {
	case ebpf.ClassALU64, ebpf.ClassALU:
		if err := v.alu(st, ins); err != nil {
			return nil, nil, false, err
		}
	case ebpf.ClassLD:
		if !ins.IsWide() {
			return nil, nil, false, fmt.Errorf("legacy ld not supported")
		}
		if ins.IsMapLoad() {
			idx := int(ins.Imm64)
			if idx < 0 || idx >= len(v.prog.Maps) {
				return nil, nil, false, fmt.Errorf("bad map index %d", idx)
			}
			st.regs[ins.Dst] = RegState{Type: PtrToMapHandle, MapIdx: idx}
		} else {
			st.regs[ins.Dst] = scalarConst(uint64(ins.Imm64))
		}
	case ebpf.ClassLDX:
		val, err := v.load(st, ins)
		if err != nil {
			return nil, nil, false, err
		}
		st.regs[ins.Dst] = val
	case ebpf.ClassST, ebpf.ClassSTX:
		if err := v.store(st, ins); err != nil {
			return nil, nil, false, err
		}
	case ebpf.ClassJMP, ebpf.ClassJMP32:
		switch ins.JumpOpField() {
		case ebpf.JumpExit:
			if st.regs[0].Type == NotInit {
				return nil, nil, false, fmt.Errorf("R0 !read_ok")
			}
			return nil, nil, true, nil
		case ebpf.JumpCall:
			if err := v.call(st, ins); err != nil {
				return nil, nil, false, err
			}
		case ebpf.JumpAlways:
			tgt, ok := v.elemAt[v.slotOf[st.pc]+ins.Slots()+int(ins.Offset)]
			if !ok {
				return nil, nil, false, fmt.Errorf("jump into the middle of an instruction")
			}
			st.pc = tgt
			return st, nil, false, nil
		default:
			return v.condJump(st, ins)
		}
	default:
		return nil, nil, false, fmt.Errorf("unknown class")
	}
	st.pc++
	return st, nil, false, nil
}
