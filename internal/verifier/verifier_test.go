package verifier

import (
	"strings"
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

func verify(t *testing.T, p *ebpf.Program) Stats {
	t.Helper()
	return Verify(p, Options{})
}

func mustPass(t *testing.T, p *ebpf.Program) Stats {
	t.Helper()
	st := verify(t, p)
	if !st.Passed {
		t.Fatalf("rejected: %v\n%s", st.Err, ebpf.Disassemble(p))
	}
	return st
}

func mustFail(t *testing.T, p *ebpf.Program, frag string) {
	t.Helper()
	st := verify(t, p)
	if st.Passed {
		t.Fatalf("accepted but should fail (%s):\n%s", frag, ebpf.Disassemble(p))
	}
	if !strings.Contains(st.Err.Error(), frag) {
		t.Fatalf("err = %v, want containing %q", st.Err, frag)
	}
}

func xdp(insns ...ebpf.Instruction) *ebpf.Program {
	return &ebpf.Program{Name: "t", Hook: ebpf.HookXDP, Insns: insns}
}

func TestAcceptsTrivialProgram(t *testing.T) {
	st := mustPass(t, xdp(
		ebpf.Mov64Imm(ebpf.R0, 2),
		ebpf.Exit(),
	))
	if st.NPI != 2 {
		t.Fatalf("NPI = %d, want 2", st.NPI)
	}
}

func TestRejectsUninitR0AtExit(t *testing.T) {
	mustFail(t, xdp(ebpf.Exit()), "R0 !read_ok")
}

func TestRejectsUninitializedRegisterUse(t *testing.T) {
	mustFail(t, xdp(
		ebpf.Mov64Reg(ebpf.R0, ebpf.R3),
		ebpf.Exit(),
	), "R3 !read_ok")
}

func TestRejectsWriteToFramePointer(t *testing.T) {
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R10, 0),
		ebpf.Exit(),
	), "frame pointer is read only")
}

func TestRejectsMissingExit(t *testing.T) {
	mustFail(t, xdp(ebpf.Mov64Imm(ebpf.R0, 0)), "does not end with exit")
}

func TestStackReadBeforeWriteRejected(t *testing.T) {
	mustFail(t, xdp(
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	), "uninitialized stack")
}

func TestStackWriteThenReadOK(t *testing.T) {
	mustPass(t, xdp(
		ebpf.Mov64Imm(ebpf.R1, 7),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1),
		ebpf.LoadMem(ebpf.SizeW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	))
}

func TestStackOutOfRangeRejected(t *testing.T) {
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R1, 7),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -520, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "invalid stack write")
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R1, 7),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, 0, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "invalid stack write")
}

func TestPacketAccessRequiresBoundsCheck(t *testing.T) {
	// Unchecked packet load must be rejected...
	mustFail(t, xdp(
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R2, 0),
		ebpf.Exit(),
	), "invalid access to packet")
	// ...and accepted once proven in bounds.
	mustPass(t, xdp(
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0), // data
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 8), // data_end
		ebpf.Mov64Reg(ebpf.R4, ebpf.R2),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R4, 14),
		ebpf.JumpReg(ebpf.JumpGT, ebpf.R4, ebpf.R3, 2),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R2, 13),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	))
	// Access past the proven region still rejected.
	mustFail(t, xdp(
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 8),
		ebpf.Mov64Reg(ebpf.R4, ebpf.R2),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R4, 14),
		ebpf.JumpReg(ebpf.JumpGT, ebpf.R4, ebpf.R3, 2),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R2, 14), // one past
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	), "invalid access to packet")
}

func TestCtxBoundsAndAlignment(t *testing.T) {
	mustFail(t, xdp(
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 16), // past xdp_md
		ebpf.Exit(),
	), "invalid ctx access")
	mustFail(t, xdp(
		ebpf.LoadMem(ebpf.SizeW, ebpf.R0, ebpf.R1, 2), // misaligned
		ebpf.Exit(),
	), "misaligned ctx access")
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R2, 0),
		ebpf.StoreMem(ebpf.SizeW, ebpf.R1, 0, ebpf.R2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "read-only")
}

func mapProg(insns ...ebpf.Instruction) *ebpf.Program {
	p := xdp(insns...)
	p.Maps = []ebpf.MapSpec{{Name: "m", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 4}}
	return p
}

func lookupSeq() []ebpf.Instruction {
	return []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R1),
		ebpf.LoadMapPtr(ebpf.R1, 0),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Call(helpers.MapLookupElem),
	}
}

func TestMapLookupNullCheckEnforced(t *testing.T) {
	// Deref without null check → reject.
	mustFail(t, mapProg(append(lookupSeq(),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R0, 0),
		ebpf.Exit(),
	)...), "map_value_or_null")
	// With null check → accept.
	mustPass(t, mapProg(append(lookupSeq(),
		ebpf.JumpImm(ebpf.JumpNE, ebpf.R0, 0, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R0, 0),
		ebpf.Exit(),
	)...))
}

func TestNullCheckPropagatesThroughSpill(t *testing.T) {
	// Spill the or-null pointer, null-check the register, reload the spill:
	// the reloaded copy must be usable (ID-based resolution).
	mustPass(t, mapProg(append(lookupSeq(),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -16, ebpf.R0),
		ebpf.JumpImm(ebpf.JumpNE, ebpf.R0, 0, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R10, -16),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R6, 0),
		ebpf.Exit(),
	)...))
}

func TestMapValueBounds(t *testing.T) {
	mustFail(t, mapProg(append(lookupSeq(),
		ebpf.JumpImm(ebpf.JumpNE, ebpf.R0, 0, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R0, 8), // past value
		ebpf.Exit(),
	)...), "invalid access to map value")
}

func TestHelperArgTypeChecking(t *testing.T) {
	// Key pointer is uninitialized stack.
	mustFail(t, mapProg(
		ebpf.LoadMapPtr(ebpf.R1, 0),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Call(helpers.MapLookupElem),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "uninitialized stack")
	// R1 is not a map pointer.
	mustFail(t, mapProg(
		ebpf.Mov64Imm(ebpf.R1, 5),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Call(helpers.MapLookupElem),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "expected=map_ptr")
}

func TestHelperHookGating(t *testing.T) {
	// probe_read is not available to XDP programs.
	mustFail(t, xdp(
		ebpf.Mov64Reg(ebpf.R1, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, -8),
		ebpf.Mov64Imm(ebpf.R2, 8),
		ebpf.Mov64Imm(ebpf.R3, 0),
		ebpf.Call(helpers.ProbeRead),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "program type")
	// It is available to kprobes, and initializes its destination.
	p := &ebpf.Program{Name: "k", Hook: ebpf.HookKprobe, Insns: []ebpf.Instruction{
		ebpf.Mov64Reg(ebpf.R1, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, -8),
		ebpf.Mov64Imm(ebpf.R2, 8),
		ebpf.Mov64Imm(ebpf.R3, 0),
		ebpf.Call(helpers.ProbeRead),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	}}
	mustPass(t, p)
}

func TestCallClobbersCallerSaved(t *testing.T) {
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R3, 1),
		ebpf.Call(helpers.KtimeGetNS),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R3), // clobbered
		ebpf.Exit(),
	), "R3 !read_ok")
}

func TestRejectsUnknownHelperAndBadMapIndex(t *testing.T) {
	mustFail(t, xdp(
		ebpf.Call(999),
		ebpf.Exit(),
	), "invalid func")
	mustFail(t, xdp(
		ebpf.LoadMapPtr(ebpf.R1, 3), // no maps declared
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "bad map index")
}

func TestAtomicRestrictedToStackAndMapValue(t *testing.T) {
	mustPass(t, xdp(
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R2, 1),
		ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R10, -8, ebpf.R2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	))
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R2, 1),
		ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R1, 0, ebpf.R2), // ctx
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "not allowed")
}

func TestBoundedLoopTerminates(t *testing.T) {
	st := mustPass(t, xdp(
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, 1), // loop:
		ebpf.JumpImm(ebpf.JumpLT, ebpf.R1, 8, -2),
		ebpf.Exit(),
	))
	// Eight iterations walked: NPI reflects the unrolled traversal.
	if st.NPI < 16 {
		t.Fatalf("NPI = %d, want the loop walked", st.NPI)
	}
}

func TestComplexityLimit(t *testing.T) {
	p := xdp(
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, 1),
		ebpf.JumpImm(ebpf.JumpLT, ebpf.R1, 2_000_000, -2),
		ebpf.Exit(),
	)
	st := Verify(p, Options{Limits: Limits{MaxProcessedInsns: 10_000, MaxStates: 1000}})
	if st.Passed || !strings.Contains(st.Err.Error(), "too large") {
		t.Fatalf("err = %v", st.Err)
	}
}

func TestStatePruningReducesNPI(t *testing.T) {
	// Diamond control flow where both paths produce identical states: the
	// join must be walked once, not twice.
	prog := xdp(
		ebpf.LoadMem(ebpf.SizeW, ebpf.R2, ebpf.R1, 0), // unknown scalar... ctx load
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R2, 0, 1),
		ebpf.Jump(0),              // both arms converge with identical state
		ebpf.Mov64Imm(ebpf.R0, 0), // join (branch target → checkpoint)
		ebpf.Mov64Imm(ebpf.R3, 0),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Mov64Imm(ebpf.R5, 0),
		ebpf.Exit(),
	)
	st := mustPass(t, prog)
	// Without pruning the 5 post-join insns would be walked twice (NPI≥13);
	// with pruning the second path stops at the join.
	if st.NPI > 11 {
		t.Fatalf("NPI = %d: pruning did not deduplicate the join", st.NPI)
	}
	if st.TotalStates < 2 {
		t.Fatalf("TotalStates = %d", st.TotalStates)
	}
}

func TestVersionsDifferInStateAccounting(t *testing.T) {
	prog := mapProg(append(lookupSeq(),
		ebpf.JumpImm(ebpf.JumpNE, ebpf.R0, 0, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R0, 0),
		ebpf.Exit(),
	)...)
	a := Verify(prog, Options{Version: V519})
	b := Verify(prog, Options{Version: V65})
	if !a.Passed || !b.Passed {
		t.Fatalf("both versions must accept: %v %v", a.Err, b.Err)
	}
	// Not asserting a direction — Table 5's point is instability — but both
	// must produce sane counters.
	if a.NPI == 0 || b.NPI == 0 || a.PeakStates == 0 || b.PeakStates == 0 {
		t.Fatal("missing stats")
	}
}

func TestLogOutput(t *testing.T) {
	st := Verify(xdp(
		ebpf.Mov64Imm(ebpf.R0, 2),
		ebpf.Exit(),
	), Options{LogLevel: 4})
	if !strings.Contains(st.Log, "r0 = 2") || !strings.Contains(st.Log, "processed 2 insns") {
		t.Fatalf("log:\n%s", st.Log)
	}
}

func TestVarOffsetBoundedMapAccess(t *testing.T) {
	// idx = load & bounded via AND, then map value[idx] access.
	p := mapProg(append(lookupSeq(),
		ebpf.JumpImm(ebpf.JumpNE, ebpf.R0, 0, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.LoadMem(ebpf.SizeW, ebpf.R4, ebpf.R1, 0), // hmm: R1 clobbered
		ebpf.Exit(),
	)...)
	_ = p
	// R1 was clobbered by the call: construct explicitly instead.
	prog := mapProg(
		ebpf.Mov64Reg(ebpf.R6, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R1),
		ebpf.LoadMapPtr(ebpf.R1, 0),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Call(helpers.MapLookupElem),
		ebpf.JumpImm(ebpf.JumpNE, ebpf.R0, 0, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.LoadMem(ebpf.SizeW, ebpf.R4, ebpf.R6, 0), // scalar from ctx? no: ctx off 0 is pkt ptr (size 4 → scalar)
		ebpf.ALU64Imm(ebpf.ALUAnd, ebpf.R4, 7),        // bound to [0,7]
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R0, ebpf.R4),  // value + idx
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R0, 0), // within 8-byte value
		ebpf.Exit(),
	)
	mustPass(t, prog)
	// Without the AND the access must be rejected.
	bad := mapProg(
		ebpf.Mov64Reg(ebpf.R6, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R1),
		ebpf.LoadMapPtr(ebpf.R1, 0),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Call(helpers.MapLookupElem),
		ebpf.JumpImm(ebpf.JumpNE, ebpf.R0, 0, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.LoadMem(ebpf.SizeW, ebpf.R4, ebpf.R6, 0),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R0, ebpf.R4),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R0, 0),
		ebpf.Exit(),
	)
	st := verify(t, bad)
	if st.Passed {
		t.Fatal("unbounded variable map access accepted")
	}
}

func TestUnreachableCodeRejected(t *testing.T) {
	mustFail(t, xdp(
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 1), // unreachable
		ebpf.Exit(),
	), "unreachable insn")
}

func TestBswapVerifies(t *testing.T) {
	mustPass(t, xdp(
		ebpf.Mov64Imm(ebpf.R0, 0x1234),
		ebpf.Instruction{Opcode: uint8(ebpf.ClassALU) | uint8(ebpf.SourceX) | uint8(ebpf.ALUEnd), Dst: ebpf.R0, Imm: 16},
		ebpf.Exit(),
	))
	// Byte swap of a pointer is rejected.
	mustFail(t, xdp(
		ebpf.Instruction{Opcode: uint8(ebpf.ClassALU) | uint8(ebpf.SourceX) | uint8(ebpf.ALUEnd), Dst: ebpf.R1, Imm: 32},
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	), "byte swap on non-scalar")
}
