// Package codegen lowers IR functions to eBPF bytecode — the llc analog of
// the Merlin pipeline (Fig 1). It deliberately reproduces the codegen
// artifacts the paper's optimizations target:
//
//   - loads/stores whose alignment attribute is smaller than the access
//     width are decomposed into byte/halfword assembly (Fig 6),
//   - in mcpu=v2 mode, i32 values live dirty in 64-bit registers and are
//     cleaned with shl/shr pairs or lddw masks exactly where LLVM would
//     (Figs 8 and 9),
//   - constant stores round-trip through a register, never using the st-imm
//     encoding (Fig 4),
//   - read-modify-write IR triples are lowered naively unless macro-op
//     fusion already rewrote them to atomicrmw (Fig 7).
package codegen

import (
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/ir"
)

// Options configures lowering.
type Options struct {
	// MCPU 2 forbids ALU32/JMP32 (pre-v3 kernels); 3 allows them.
	MCPU int
	// Hook records the attachment type on the emitted program.
	Hook ebpf.HookType
}

// Compile lowers function fnName of mod to an eBPF program.
func Compile(mod *ir.Module, fnName string, opts Options) (*ebpf.Program, error) {
	f := mod.Func(fnName)
	if f == nil {
		return nil, fmt.Errorf("codegen: no function %q", fnName)
	}
	if opts.MCPU == 0 {
		opts.MCPU = 2
	}
	lw := &lowerer{mod: mod, fn: f, opts: opts}
	if err := lw.run(); err != nil {
		return nil, fmt.Errorf("codegen: %s: %w", fnName, err)
	}
	prog := &ebpf.Program{Name: fnName, Hook: opts.Hook, MCPU: opts.MCPU, Insns: lw.insns}
	for _, md := range mod.Maps {
		prog.Maps = append(prog.Maps, ebpf.MapSpec{
			Name: md.Name, Kind: int(md.Kind),
			KeySize: md.KeySize, ValueSize: md.ValueSize, MaxEntries: md.MaxEntries,
		})
	}
	if err := resolveBranches(prog, lw.fixups, lw.blockStart); err != nil {
		return nil, fmt.Errorf("codegen: %s: %w", fnName, err)
	}
	return prog, nil
}

type fixup struct {
	insn  int // element index of the branch instruction
	block *ir.Block
}

type lowerer struct {
	mod  *ir.Module
	fn   *ir.Function
	opts Options

	insns      []ebpf.Instruction
	fixups     []fixup
	blockStart map[*ir.Block]int

	// Stack frame: allocas first, then spill slots, all negative off R10.
	allocaOff map[*ir.Instr]int16
	frameSize int

	// Per-block register state.
	regs *regAlloc
}

func (lw *lowerer) emit(ins ebpf.Instruction) int {
	lw.insns = append(lw.insns, ins)
	return len(lw.insns) - 1
}

func (lw *lowerer) run() error {
	lw.blockStart = map[*ir.Block]int{}
	lw.allocaOff = map[*ir.Instr]int16{}

	// Lay out allocas. Entry-block allocas are function-scoped.
	for _, b := range lw.fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpAlloca {
				continue
			}
			align := in.Align
			if align < 1 {
				align = 1
			}
			lw.frameSize = alignUp(lw.frameSize+in.Size, align)
			if lw.frameSize > 512 {
				return fmt.Errorf("stack frame exceeds 512 bytes")
			}
			lw.allocaOff[in] = int16(-lw.frameSize)
		}
	}

	// Skip IR blocks no branch can reach: the kernel verifier rejects
	// unreachable instructions, so they must never be emitted.
	reachable := reachableBlocks(lw.fn)
	var layout []*ir.Block
	for _, b := range lw.fn.Blocks {
		if reachable[b] {
			layout = append(layout, b)
		}
	}
	for bi, b := range layout {
		lw.blockStart[b] = len(lw.insns)
		var next *ir.Block
		if bi+1 < len(layout) {
			next = layout[bi+1]
		}
		if err := lw.lowerBlock(b, next); err != nil {
			return fmt.Errorf("block %s: %w", b.Name, err)
		}
	}
	return nil
}

// reachableBlocks walks the IR control-flow graph from the entry.
func reachableBlocks(f *ir.Function) map[*ir.Block]bool {
	seen := map[*ir.Block]bool{}
	stack := []*ir.Block{f.Entry()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if term := b.Terminator(); term != nil {
			stack = append(stack, term.Blocks...)
		}
	}
	return seen
}

func alignUp(n, a int) int { return (n + a - 1) / a * a }

// resolveBranches converts element-index fixups to slot-relative offsets.
func resolveBranches(p *ebpf.Program, fixups []fixup, starts map[*ir.Block]int) error {
	idx := p.SlotIndex()
	for _, fx := range fixups {
		target, ok := starts[fx.block]
		if !ok {
			return fmt.Errorf("branch to unlowered block %s", fx.block.Name)
		}
		off := idx[target] - (idx[fx.insn] + p.Insns[fx.insn].Slots())
		if off < -32768 || off > 32767 {
			return fmt.Errorf("branch offset %d exceeds int16", off)
		}
		p.Insns[fx.insn].Offset = int16(off)
	}
	return nil
}
