package codegen

import (
	"strings"
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/ir"
	"merlin/internal/vm"
)

// compileSrc parses, lowers, and returns the program.
func compileSrc(t *testing.T, src string, opts Options) *ebpf.Program {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Compile(m, m.Funcs[0].Name, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// exec runs a compiled program on the VM.
func exec(t *testing.T, prog *ebpf.Program, ctx, pkt []byte) int64 {
	t.Helper()
	mach, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ret, _, err := mach.Run(ctx, pkt)
	if err != nil {
		t.Fatalf("vm: %v\n%s", err, ebpf.Disassemble(prog))
	}
	return ret
}

func TestRetConstant(t *testing.T) {
	prog := compileSrc(t, `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  ret 42
}
`, Options{})
	if got := exec(t, prog, make([]byte, 16), nil); got != 42 {
		t.Fatalf("ret = %d", got)
	}
}

func TestArithChain(t *testing.T) {
	prog := compileSrc(t, `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %a = load i64, %ctx, align 8
  %b = bin mul i64 %a, 3
  %c = bin add i64 %b, 7
  %d = bin xor i64 %c, 1
  ret %d
}
`, Options{})
	ctx := make([]byte, 16)
	ctx[0] = 10
	if got := exec(t, prog, ctx, nil); got != (10*3+7)^1 {
		t.Fatalf("ret = %d", got)
	}
}

func TestBranchingControlFlow(t *testing.T) {
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %a = load i64, %ctx, align 8
  %c = icmp ugt i64 %a, 100
  condbr %c, big, small
big:
  ret 1
small:
  %a2 = load i64, %ctx, align 8
  %c2 = icmp eq i64 %a2, 7
  condbr %c2, seven, other
seven:
  ret 2
other:
  ret 3
}
`
	prog := compileSrc(t, src, Options{})
	cases := map[uint8]int64{200: 1, 7: 2, 9: 3}
	for in, want := range cases {
		ctx := make([]byte, 16)
		ctx[0] = in
		if got := exec(t, prog, ctx, nil); got != want {
			t.Errorf("f(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestAlignedVsUnalignedLoadNI(t *testing.T) {
	mk := func(align int) *ebpf.Program {
		src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %p = gep %ctx, 4
  %x = load i32, %p, align ` + string(rune('0'+align)) + `
  %r = zext i64, %x
  ret %r
}
`
		return compileSrc(t, src, Options{})
	}
	aligned, unaligned := mk(4), mk(1)
	if aligned.NI() >= unaligned.NI() {
		t.Fatalf("aligned NI %d should beat unaligned NI %d", aligned.NI(), unaligned.NI())
	}
	// Both must compute the same value.
	ctx := make([]byte, 16)
	copy(ctx[4:], []byte{0x78, 0x56, 0x34, 0x12})
	wantVal := int64(0x12345678)
	if got := exec(t, aligned, ctx, nil); got != wantVal {
		t.Fatalf("aligned ret = %#x", got)
	}
	if got := exec(t, unaligned, ctx, nil); got != wantVal {
		t.Fatalf("unaligned ret = %#x", got)
	}
	// The unaligned version must contain the byte-assembly or/shift pattern.
	asm := ebpf.Disassemble(unaligned)
	if !strings.Contains(asm, "<<= 8") || !strings.Contains(asm, "|=") {
		t.Fatalf("missing byte assembly:\n%s", asm)
	}
}

func TestUnalignedStoreDecomposition(t *testing.T) {
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i32, %ctx, align 4
  %p = gep %ctx, 8
  store i32 %p, %x, align 1
  %y = load i32, %p, align 4
  %r = zext i64, %y
  ret %r
}
`
	prog := compileSrc(t, src, Options{})
	ctx := make([]byte, 16)
	copy(ctx, []byte{0xde, 0xad, 0xbe, 0xef})
	if got := exec(t, prog, ctx, nil); got != int64(0xefbeadde) {
		t.Fatalf("ret = %#x", got)
	}
}

func TestConstantStoreRoundTripsThroughRegister(t *testing.T) {
	// The Fig 4 artifact: baseline codegen must not emit st.imm.
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %slot = alloca 8, align 8
  store i64 %slot, 1, align 8
  %v = load i64, %slot, align 8
  ret %v
}
`
	prog := compileSrc(t, src, Options{})
	for _, ins := range prog.Insns {
		if ins.Class() == ebpf.ClassST {
			t.Fatalf("baseline emitted st.imm: %s", ebpf.Mnemonic(ins))
		}
	}
	if got := exec(t, prog, make([]byte, 16), nil); got != 1 {
		t.Fatalf("ret = %d", got)
	}
}

func TestI32DirtyMaskingV2(t *testing.T) {
	// i32 add may overflow into the upper half; zext must mask it.
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i32, %ctx, align 4
  %y = bin add i32 %x, 1
  %r = zext i64, %y
  ret %r
}
`
	prog := compileSrc(t, src, Options{MCPU: 2})
	ctx := make([]byte, 16)
	copy(ctx, []byte{0xff, 0xff, 0xff, 0xff}) // x = 0xffffffff
	if got := exec(t, prog, ctx, nil); got != 0 {
		t.Fatalf("i32 wrap: ret = %#x, want 0", got)
	}
	asm := ebpf.Disassemble(prog)
	if !strings.Contains(asm, "<<= 32") || !strings.Contains(asm, ">>= 32") {
		t.Fatalf("v2 masking pair missing:\n%s", asm)
	}
}

func TestI32ALU32V3(t *testing.T) {
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i32, %ctx, align 4
  %y = bin add i32 %x, 1
  %r = zext i64, %y
  ret %r
}
`
	prog := compileSrc(t, src, Options{MCPU: 3})
	ctx := make([]byte, 16)
	copy(ctx, []byte{0xff, 0xff, 0xff, 0xff})
	if got := exec(t, prog, ctx, nil); got != 0 {
		t.Fatalf("ret = %#x", got)
	}
	asm := ebpf.Disassemble(prog)
	if strings.Contains(asm, "<<= 32") {
		t.Fatalf("v3 should not need shift masking:\n%s", asm)
	}
	if !strings.Contains(asm, "w") {
		t.Fatalf("v3 should use 32-bit alu:\n%s", asm)
	}
}

func TestLShrI32DirtyEmitsLddwMask(t *testing.T) {
	// Fig 9 baseline: dirty i32 lshr by constant → lddw mask + and + shr.
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i32, %ctx, align 4
  %y = bin add i32 %x, 0x10
  %z = bin lshr i32 %y, 28
  %r = zext i64, %z
  ret %r
}
`
	prog := compileSrc(t, src, Options{MCPU: 2})
	found := false
	for _, ins := range prog.Insns {
		if ins.IsWide() && !ins.IsMapLoad() && uint64(ins.Imm64) == 0xf0000000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("lddw 0xf0000000 mask missing:\n%s", ebpf.Disassemble(prog))
	}
	ctx := make([]byte, 16)
	copy(ctx, []byte{0x00, 0x00, 0x00, 0xa0}) // x = 0xa0000000
	// y = 0xa0000010, z = y >> 28 = 0xa
	if got := exec(t, prog, ctx, nil); got != 0xa {
		t.Fatalf("ret = %#x, want 0xa", got)
	}
}

func TestSignedCompareI32(t *testing.T) {
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i32, %ctx, align 4
  %c = icmp slt i32 %x, 0
  condbr %c, neg, pos
neg:
  ret 1
pos:
  ret 0
}
`
	for _, mcpu := range []int{2, 3} {
		prog := compileSrc(t, src, Options{MCPU: mcpu})
		ctx := make([]byte, 16)
		copy(ctx, []byte{0xff, 0xff, 0xff, 0xff}) // -1 as i32
		if got := exec(t, prog, ctx, nil); got != 1 {
			t.Fatalf("mcpu=v%d: -1 not negative (ret=%d)\n%s", mcpu, got, ebpf.Disassemble(prog))
		}
		ctx2 := make([]byte, 16)
		ctx2[0] = 5
		if got := exec(t, prog, ctx2, nil); got != 0 {
			t.Fatalf("mcpu=v%d: 5 reported negative", mcpu)
		}
	}
}

func TestSExtTrunc(t *testing.T) {
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i8, %ctx, align 1
  %s = sext i64, %x
  ret %s
}
`
	prog := compileSrc(t, src, Options{})
	ctx := make([]byte, 16)
	ctx[0] = 0x80 // -128 as i8
	if got := exec(t, prog, ctx, nil); got != -128 {
		t.Fatalf("sext ret = %d", got)
	}
}

func TestMapCallAndNullCheck(t *testing.T) {
	src := `module "m"
map @counts : array key=4 value=8 max=4
func f(%ctx: ptr) -> i64 {
entry:
  %key = alloca 4, align 4
  %vslot = alloca 8, align 8
  store i32 %key, 1, align 4
  %mp = mapptr @counts
  %v = call 1, %mp, %key
  store i64 %vslot, %v, align 8
  %isnull = icmp eq i64 %v, 0
  condbr %isnull, miss, hit
miss:
  ret 0
hit:
  %vp = load ptr, %vslot, align 8
  %old = load i64, %vp, align 8
  %new = bin add i64 %old, 3
  store i64 %vp, %new, align 8
  ret %new
}
`
	prog := compileSrc(t, src, Options{})
	mach, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		ret, _, err := mach.Run(make([]byte, 16), nil)
		if err != nil {
			t.Fatalf("run %d: %v\n%s", i, err, ebpf.Disassemble(prog))
		}
		if ret != int64(3*i) {
			t.Fatalf("run %d: ret = %d, want %d", i, ret, 3*i)
		}
	}
}

func TestAtomicLowering(t *testing.T) {
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  atomicrmw add i64 %ctx, 5, align 8
  %v = load i64, %ctx, align 8
  ret %v
}
`
	prog := compileSrc(t, src, Options{})
	hasAtomic := false
	for _, ins := range prog.Insns {
		if ins.IsAtomic() {
			hasAtomic = true
		}
	}
	if !hasAtomic {
		t.Fatalf("no xadd emitted:\n%s", ebpf.Disassemble(prog))
	}
	ctx := make([]byte, 16)
	ctx[0] = 10
	if got := exec(t, prog, ctx, nil); got != 15 {
		t.Fatalf("ret = %d", got)
	}
}

func TestRegisterPressureSpills(t *testing.T) {
	// 12 simultaneously-live values force spilling.
	var b strings.Builder
	b.WriteString("module \"m\"\nfunc f(%ctx: ptr) -> i64 {\nentry:\n")
	for i := 0; i < 12; i++ {
		off := i * 8
		b.WriteString("  %p" + itoa(i) + " = gep %ctx, " + itoa(off) + "\n")
		b.WriteString("  %v" + itoa(i) + " = load i64, %p" + itoa(i) + ", align 8\n")
	}
	b.WriteString("  %s0 = bin add i64 %v0, %v1\n")
	for i := 1; i < 11; i++ {
		b.WriteString("  %s" + itoa(i) + " = bin add i64 %s" + itoa(i-1) + ", %v" + itoa(i+1) + "\n")
	}
	b.WriteString("  ret %s10\n}\n")
	prog := compileSrc(t, b.String(), Options{})
	ctx := make([]byte, 128)
	want := int64(0)
	for i := 0; i < 12; i++ {
		ctx[i*8] = byte(i + 1)
		want += int64(i + 1)
	}
	if got := exec(t, prog, ctx, nil); got != want {
		t.Fatalf("ret = %d, want %d", got, want)
	}
}

func TestValueLiveAcrossCall(t *testing.T) {
	src := `module "m"
map @mp : array key=4 value=8 max=4
func f(%ctx: ptr) -> i64 {
entry:
  %key = alloca 4, align 4
  store i32 %key, 0, align 4
  %x = load i64, %ctx, align 8
  %m = mapptr @mp
  %v = call 1, %m, %key
  %r = bin add i64 %x, 100
  ret %r
}
`
	prog := compileSrc(t, src, Options{})
	ctx := make([]byte, 16)
	ctx[0] = 7
	if got := exec(t, prog, ctx, nil); got != 107 {
		t.Fatalf("ret = %d: value lost across call\n%s", got, ebpf.Disassemble(prog))
	}
}

func TestICmpAsValue(t *testing.T) {
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i64, %ctx, align 8
  %c = icmp ugt i64 %x, 5
  %d = bin add i64 %c, 10
  ret %d
}
`
	prog := compileSrc(t, src, Options{})
	ctx := make([]byte, 16)
	ctx[0] = 9
	if got := exec(t, prog, ctx, nil); got != 11 {
		t.Fatalf("ret = %d", got)
	}
	ctx[0] = 1
	if got := exec(t, prog, ctx, nil); got != 10 {
		t.Fatalf("ret = %d", got)
	}
}

func TestLoopViaBlocks(t *testing.T) {
	// sum 1..n with alloca-mediated loop state.
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %i = alloca 8, align 8
  %acc = alloca 8, align 8
  %n = load i64, %ctx, align 8
  %nslot = alloca 8, align 8
  store i64 %nslot, %n, align 8
  store i64 %i, 1, align 8
  store i64 %acc, 0, align 8
  br loop
loop:
  %iv = load i64, %i, align 8
  %av = load i64, %acc, align 8
  %av2 = bin add i64 %av, %iv
  store i64 %acc, %av2, align 8
  %iv2 = bin add i64 %iv, 1
  store i64 %i, %iv2, align 8
  %nv = load i64, %nslot, align 8
  %more = icmp ule i64 %iv2, %nv
  condbr %more, loop, done
done:
  %res = load i64, %acc, align 8
  ret %res
}
`
	prog := compileSrc(t, src, Options{})
	ctx := make([]byte, 16)
	ctx[0] = 10
	if got := exec(t, prog, ctx, nil); got != 55 {
		t.Fatalf("ret = %d, want 55", got)
	}
}

func TestVarGEP(t *testing.T) {
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %idx = load i64, %ctx, align 8
  %p = gep %ctx, %idx
  %v = load i8, %p, align 1
  %r = zext i64, %v
  ret %r
}
`
	prog := compileSrc(t, src, Options{})
	ctx := make([]byte, 16)
	ctx[0] = 9
	ctx[9] = 0x5a
	if got := exec(t, prog, ctx, nil); got != 0x5a {
		t.Fatalf("ret = %#x", got)
	}
}

func TestCompileErrors(t *testing.T) {
	m, err := ir.Parse(`module "m"
func f(%ctx: ptr) -> i64 {
entry:
  ret 0
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(m, "missing", Options{}); err == nil {
		t.Fatal("compiling a missing function should fail")
	}
}

func TestBigStackRejected(t *testing.T) {
	var b strings.Builder
	b.WriteString("module \"m\"\nfunc f(%ctx: ptr) -> i64 {\nentry:\n")
	for i := 0; i < 70; i++ {
		b.WriteString("  %a" + itoa(i) + " = alloca 8, align 8\n")
	}
	b.WriteString("  ret 0\n}\n")
	m, err := ir.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(m, "f", Options{}); err == nil || !strings.Contains(err.Error(), "512") {
		t.Fatalf("err = %v, want stack overflow", err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestBswapLowering(t *testing.T) {
	src := `module "bs"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i16, %ctx, align 2
  %s = bswap i16, %x
  %r = zext i64, %s
  ret %r
}
`
	prog := compileSrc(t, src, Options{})
	ctx := make([]byte, 16)
	ctx[0], ctx[1] = 0x08, 0x00 // LE load = 0x0008; bswap16 = 0x0800
	if got := exec(t, prog, ctx, nil); got != 0x0800 {
		t.Fatalf("ret = %#x, want 0x0800", got)
	}
	found := false
	for _, ins := range prog.Insns {
		if ins.Class().IsALU() && ins.ALUOpField() == ebpf.ALUEnd {
			found = true
		}
	}
	if !found {
		t.Fatalf("no end/bswap instruction emitted:\n%s", ebpf.Disassemble(prog))
	}
}

func TestBswap32And64(t *testing.T) {
	src := `module "bs2"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i32, %ctx, align 4
  %s = bswap i32, %x
  %y = load i64, %ctx, align 8
  %t = bswap i64, %y
  %lo = zext i64, %s
  %r = bin xor i64 %lo, %t
  ret %r
}
`
	prog := compileSrc(t, src, Options{})
	ctx := []byte{1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0}
	want := int64(0x01020304) ^ int64(0x0102030405060708)
	if got := exec(t, prog, ctx, nil); got != want {
		t.Fatalf("ret = %#x, want %#x", got, want)
	}
}

func TestDeadBlocksNotEmitted(t *testing.T) {
	src := `module "dead"
func f(%ctx: ptr) -> i64 {
entry:
  ret 1
orphan:
  ret 2
}
`
	prog := compileSrc(t, src, Options{})
	// Prologue mov + mov r0 + exit; the orphan block's "ret 2" must be gone.
	if prog.NI() != 3 {
		t.Fatalf("NI = %d, want 3 (orphan block emitted?):\n%s", prog.NI(), ebpf.Disassemble(prog))
	}
	for _, ins := range prog.Insns {
		if ins.Class().IsALU() && ins.Imm == 2 {
			t.Fatalf("orphan code present:\n%s", ebpf.Disassemble(prog))
		}
	}
}
