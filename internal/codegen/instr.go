package codegen

import (
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/ir"
)

func (lw *lowerer) lowerInstr(in *ir.Instr, next *ir.Block) error {
	ra := lw.regs
	switch in.Op {
	case ir.OpAlloca, ir.OpMapPtr:
		return nil // materialized at use sites
	case ir.OpGEP:
		if lw.isFoldedGEP(in) {
			return nil // folded into load/store offsets at use sites
		}
		return lw.lowerVarGEP(in)
	case ir.OpLoad:
		return lw.lowerLoad(in)
	case ir.OpStore:
		return lw.lowerStore(in)
	case ir.OpBin:
		return lw.lowerBin(in)
	case ir.OpICmp:
		if ra.fused[in] {
			return nil // emitted by the terminator
		}
		return lw.lowerICmpValue(in)
	case ir.OpZExt:
		return lw.lowerZExt(in)
	case ir.OpSExt:
		return lw.lowerSExt(in)
	case ir.OpTrunc:
		return lw.lowerTrunc(in)
	case ir.OpBswap:
		return lw.lowerBswap(in)
	case ir.OpCall:
		return lw.lowerCall(in)
	case ir.OpCallLocal:
		return fmt.Errorf("local call to %s not inlined (run irpass.Inline first)", in.Target)
	case ir.OpAtomicRMW:
		return lw.lowerAtomic(in)
	case ir.OpBr:
		if in.Blocks[0] != next {
			fi := lw.emit(ebpf.Jump(0))
			lw.fixups = append(lw.fixups, fixup{fi, in.Blocks[0]})
		}
		return nil
	case ir.OpCondBr:
		return lw.lowerCondBr(in, next)
	case ir.OpRet:
		return lw.lowerRet(in)
	}
	return fmt.Errorf("unhandled op %d", in.Op)
}

// isFoldedGEP reports whether the GEP folds into access offsets: constant
// offset over a resolvable base chain.
func (lw *lowerer) isFoldedGEP(in *ir.Instr) bool {
	if in.Op != ir.OpGEP {
		return false
	}
	if _, ok := in.Args[1].(*ir.Const); !ok {
		return false
	}
	return true
}

// gepRoot resolves a value through folded-GEP chains to the underlying value
// whose register actually gets used.
func gepRoot(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Instr)
		if !ok || in.Op != ir.OpGEP {
			return v
		}
		if _, isConst := in.Args[1].(*ir.Const); !isConst {
			return v
		}
		v = in.Args[0]
	}
}

func (lw *lowerer) lowerVarGEP(in *ir.Instr) error {
	ra := lw.regs
	base, baseTemp, err := lw.operandReg(in.Args[0])
	if err != nil {
		return err
	}
	dst, err := ra.alloc(in, ra.cross[in])
	if err != nil {
		return err
	}
	lw.emit(ebpf.Mov64Reg(dst, base))
	if baseTemp {
		ra.freeTemp(base)
	}
	if c, ok := in.Args[1].(*ir.Const); ok {
		lw.emit(ebpf.ALU64Imm(ebpf.ALUAdd, dst, int32(c.Val)))
	} else {
		off, offTemp, err := lw.operandReg(in.Args[1])
		if err != nil {
			return err
		}
		lw.emit(ebpf.ALU64Reg(ebpf.ALUAdd, dst, off))
		if offTemp {
			ra.freeTemp(off)
		}
	}
	ra.locs[in].clean = true
	return nil
}

// address resolves a pointer operand for a memory access.
func (lw *lowerer) address(ptr ir.Value) (base ebpf.Register, off int16, temp bool, err error) {
	if b, o, ok := lw.foldedAddr(ptr); ok {
		return b, o, false, nil
	}
	r, isTemp, err := lw.operandReg(ptr)
	return r, 0, isTemp, err
}

// lowerLoad emits a load; when the alignment attribute is smaller than the
// access width the load is decomposed into align-sized chunks assembled with
// shifts and ors — the Fig 6 byte-assembly pattern DAO exists to eliminate.
func (lw *lowerer) lowerLoad(in *ir.Instr) error {
	ra := lw.regs
	width := in.Ty.Bytes()
	base, off, baseTemp, err := lw.address(in.Args[0])
	if err != nil {
		return err
	}
	dst, err := ra.alloc(in, ra.cross[in])
	if err != nil {
		return err
	}
	chunk := in.Align
	if chunk >= width {
		sz, _ := ebpf.SizeForBytes(width)
		lw.emit(ebpf.LoadMem(sz, dst, base, off))
	} else {
		sz, ok := ebpf.SizeForBytes(chunk)
		if !ok {
			return fmt.Errorf("bad alignment %d", chunk)
		}
		tmp, err := ra.alloc(nil, false)
		if err != nil {
			return err
		}
		lw.emit(ebpf.LoadMem(sz, dst, base, off))
		for i := 1; i*chunk < width; i++ {
			lw.emit(ebpf.LoadMem(sz, tmp, base, off+int16(i*chunk)))
			lw.emit(ebpf.ALU64Imm(ebpf.ALULsh, tmp, int32(i*chunk*8)))
			lw.emit(ebpf.ALU64Reg(ebpf.ALUOr, dst, tmp))
		}
		ra.freeTemp(tmp)
	}
	if baseTemp {
		ra.freeTemp(base)
	}
	ra.locs[in].clean = true // ldx zero-extends
	return nil
}

// lowerStore emits a store. Constant stores round-trip through a register
// (the Fig 4 pattern CP&DCE removes); under-aligned stores are decomposed
// into chunked stores of a shifted temp copy.
func (lw *lowerer) lowerStore(in *ir.Instr) error {
	ra := lw.regs
	val := in.Args[1]
	width := val.Type().Bytes()
	if c, ok := val.(*ir.Const); ok {
		width = c.Ty.Bytes()
	}
	base, off, baseTemp, err := lw.address(in.Args[0])
	if err != nil {
		return err
	}
	src, srcTemp, err := lw.operandReg(val)
	if err != nil {
		return err
	}
	chunk := in.Align
	if chunk >= width {
		sz, _ := ebpf.SizeForBytes(width)
		lw.emit(ebpf.StoreMem(sz, base, off, src))
	} else {
		sz, ok := ebpf.SizeForBytes(chunk)
		if !ok {
			return fmt.Errorf("bad alignment %d", chunk)
		}
		// Copy so shifting does not destroy a live value.
		tmp, err := ra.alloc(nil, false)
		if err != nil {
			return err
		}
		lw.emit(ebpf.Mov64Reg(tmp, src))
		n := width / chunk
		for i := 0; i < n; i++ {
			lw.emit(ebpf.StoreMem(sz, base, off+int16(i*chunk), tmp))
			if i < n-1 {
				lw.emit(ebpf.ALU64Imm(ebpf.ALURsh, tmp, int32(chunk*8)))
			}
		}
		ra.freeTemp(tmp)
	}
	if srcTemp {
		ra.freeTemp(src)
	}
	if baseTemp {
		ra.freeTemp(base)
	}
	return nil
}

var aluFor = map[ir.BinKind]ebpf.ALUOp{
	ir.Add: ebpf.ALUAdd, ir.Sub: ebpf.ALUSub, ir.Mul: ebpf.ALUMul,
	ir.UDiv: ebpf.ALUDiv, ir.URem: ebpf.ALUMod, ir.And: ebpf.ALUAnd,
	ir.Or: ebpf.ALUOr, ir.Xor: ebpf.ALUXor, ir.Shl: ebpf.ALULsh,
	ir.LShr: ebpf.ALURsh, ir.AShr: ebpf.ALUArsh,
}

// cleanInPlace zeroes the upper bits of r for a value of the given width.
// For i32 this is the shl/shr pair code compaction rewrites to movl (Fig 8).
func (lw *lowerer) cleanInPlace(r ebpf.Register, width int) {
	switch width {
	case 1:
		lw.emit(ebpf.ALU64Imm(ebpf.ALUAnd, r, 0xff))
	case 2:
		lw.emit(ebpf.ALU64Imm(ebpf.ALUAnd, r, 0xffff))
	case 4:
		lw.emit(ebpf.ALU64Imm(ebpf.ALULsh, r, 32))
		lw.emit(ebpf.ALU64Imm(ebpf.ALURsh, r, 32))
	}
}

// cleanOperand returns a register holding the zero-extended value of v at
// width. If v is already clean its register is returned as-is; otherwise the
// value is copied to a temp and masked there (the original stays intact).
func (lw *lowerer) cleanOperand(v ir.Value, width int) (ebpf.Register, bool, error) {
	r, isTemp, err := lw.operandReg(v)
	if err != nil {
		return 0, false, err
	}
	if lw.regs.isClean(v) || width == 8 {
		return r, isTemp, nil
	}
	if isTemp {
		lw.cleanInPlace(r, width)
		return r, true, nil
	}
	tmp, err := lw.regs.alloc(nil, false)
	if err != nil {
		return 0, false, err
	}
	lw.emit(ebpf.Mov64Reg(tmp, r))
	lw.cleanInPlace(tmp, width)
	return tmp, true, nil
}

// signExtendOperand returns a register holding the sign-extended value.
func (lw *lowerer) signExtendOperand(v ir.Value, width int) (ebpf.Register, bool, error) {
	r, isTemp, err := lw.operandReg(v)
	if err != nil {
		return 0, false, err
	}
	if width == 8 {
		return r, isTemp, nil
	}
	dst := r
	if !isTemp {
		tmp, err := lw.regs.alloc(nil, false)
		if err != nil {
			return 0, false, err
		}
		lw.emit(ebpf.Mov64Reg(tmp, r))
		dst = tmp
	}
	sh := int32(64 - width*8)
	lw.emit(ebpf.ALU64Imm(ebpf.ALULsh, dst, sh))
	lw.emit(ebpf.ALU64Imm(ebpf.ALUArsh, dst, sh))
	return dst, true, nil
}

func (lw *lowerer) lowerBin(in *ir.Instr) error {
	ra := lw.regs
	width := in.Ty.Bytes()
	kind := in.Bin
	alu := aluFor[kind]
	useALU32 := lw.opts.MCPU >= 3 && width == 4

	// Division, remainder and right shifts need clean inputs at sub-64
	// widths (unless ALU32 handles it).
	needCleanA := !useALU32 && width < 8 && (kind == ir.UDiv || kind == ir.URem || kind == ir.LShr)
	needCleanB := !useALU32 && width < 8 && (kind == ir.UDiv || kind == ir.URem)

	// The Fig 9 special case: lshr i32 by a constant on a dirty value is
	// emitted as lddw-mask + and + shr, which the bytecode peephole rewrites.
	if !useALU32 && width == 4 && kind == ir.LShr && !ra.isClean(in.Args[0]) {
		if c, ok := in.Args[1].(*ir.Const); ok && c.Val > 0 && c.Val < 32 {
			return lw.lowerMaskedShr(in, uint32(c.Val))
		}
	}

	var a ebpf.Register
	var aTemp bool
	var err error
	if needCleanA {
		a, aTemp, err = lw.cleanOperand(in.Args[0], width)
	} else if kind == ir.AShr && width < 8 {
		a, aTemp, err = lw.signExtendOperand(in.Args[0], width)
	} else {
		a, aTemp, err = lw.operandReg(in.Args[0])
	}
	if err != nil {
		return err
	}

	dst, err := ra.alloc(in, ra.cross[in])
	if err != nil {
		return err
	}
	if useALU32 {
		lw.emit(ebpf.Mov32Reg(dst, a))
	} else {
		lw.emit(ebpf.Mov64Reg(dst, a))
	}
	if aTemp {
		ra.freeTemp(a)
	}

	// Second operand: immediate form when it fits.
	if c, ok := in.Args[1].(*ir.Const); ok {
		bits := constBits(c)
		shiftLike := kind == ir.Shl || kind == ir.LShr || kind == ir.AShr
		if shiftLike {
			bits &= uint64(width*8 - 1)
		}
		if fitsImm32(bits) {
			if useALU32 {
				lw.emit(ebpf.ALU32Imm(alu, dst, int32(int64(bits))))
			} else {
				lw.emit(ebpf.ALU64Imm(alu, dst, int32(int64(bits))))
			}
			ra.locs[in].clean = lw.binResultClean(in, useALU32)
			return nil
		}
	}
	var b ebpf.Register
	var bTemp bool
	if needCleanB {
		b, bTemp, err = lw.cleanOperand(in.Args[1], width)
	} else {
		b, bTemp, err = lw.operandReg(in.Args[1])
	}
	if err != nil {
		return err
	}
	if useALU32 {
		lw.emit(ebpf.ALU32Reg(alu, dst, b))
	} else {
		lw.emit(ebpf.ALU64Reg(alu, dst, b))
	}
	if bTemp {
		ra.freeTemp(b)
	}
	ra.locs[in].clean = lw.binResultClean(in, useALU32)
	return nil
}

// binResultClean decides whether the result has known-zero upper bits.
func (lw *lowerer) binResultClean(in *ir.Instr, usedALU32 bool) bool {
	width := in.Ty.Bytes()
	if width == 8 || usedALU32 {
		return true
	}
	switch in.Bin {
	case ir.And, ir.Or, ir.Xor:
		// Bitwise ops preserve cleanliness when both inputs are clean.
		return lw.regs.isClean(in.Args[0]) && lw.regs.isClean(in.Args[1])
	case ir.UDiv, ir.URem, ir.LShr:
		return true // inputs were cleaned
	}
	return false // add/sub/mul/shl can carry into the upper bits; ashr smears sign
}

// lowerMaskedShr emits the paper's Fig 9 baseline for lshr i32 by k on a
// dirty value: load a 64-bit mask keeping bits k..31, and, then shift.
func (lw *lowerer) lowerMaskedShr(in *ir.Instr, k uint32) error {
	ra := lw.regs
	a, aTemp, err := lw.operandReg(in.Args[0])
	if err != nil {
		return err
	}
	dst, err := ra.alloc(in, ra.cross[in])
	if err != nil {
		return err
	}
	lw.emit(ebpf.Mov64Reg(dst, a))
	if aTemp {
		ra.freeTemp(a)
	}
	mask := uint64(0xffffffff>>k) << k
	tmp, err := ra.alloc(nil, false)
	if err != nil {
		return err
	}
	lw.emit(ebpf.LoadImm64(tmp, int64(mask)))
	lw.emit(ebpf.ALU64Reg(ebpf.ALUAnd, dst, tmp))
	lw.emit(ebpf.ALU64Imm(ebpf.ALURsh, dst, int32(k)))
	ra.freeTemp(tmp)
	ra.locs[in].clean = true
	return nil
}

func (lw *lowerer) lowerZExt(in *ir.Instr) error {
	ra := lw.regs
	src := in.Args[0]
	srcWidth := src.Type().Bytes()
	a, aTemp, err := lw.operandReg(src)
	if err != nil {
		return err
	}
	dst, err := ra.alloc(in, ra.cross[in])
	if err != nil {
		return err
	}
	lw.emit(ebpf.Mov64Reg(dst, a))
	if aTemp {
		ra.freeTemp(a)
	}
	if !ra.isClean(src) {
		lw.cleanInPlace(dst, srcWidth)
	}
	ra.locs[in].clean = true
	return nil
}

func (lw *lowerer) lowerSExt(in *ir.Instr) error {
	ra := lw.regs
	src := in.Args[0]
	srcWidth := src.Type().Bytes()
	a, aTemp, err := lw.operandReg(src)
	if err != nil {
		return err
	}
	dst, err := ra.alloc(in, ra.cross[in])
	if err != nil {
		return err
	}
	lw.emit(ebpf.Mov64Reg(dst, a))
	if aTemp {
		ra.freeTemp(a)
	}
	if srcWidth < 8 {
		sh := int32(64 - srcWidth*8)
		lw.emit(ebpf.ALU64Imm(ebpf.ALULsh, dst, sh))
		lw.emit(ebpf.ALU64Imm(ebpf.ALUArsh, dst, sh))
	}
	// Sign extension fills the upper bits; for a widening to i64 the value
	// is exact, for narrower targets the upper bits are the sign smear.
	ra.locs[in].clean = in.Ty.Bytes() == 8
	return nil
}

// lowerBswap emits the eBPF byte-swap (end) instruction, which
// zero-extends its result to 64 bits.
func (lw *lowerer) lowerBswap(in *ir.Instr) error {
	ra := lw.regs
	a, aTemp, err := lw.operandReg(in.Args[0])
	if err != nil {
		return err
	}
	dst, err := ra.alloc(in, ra.cross[in])
	if err != nil {
		return err
	}
	lw.emit(ebpf.Mov64Reg(dst, a))
	if aTemp {
		ra.freeTemp(a)
	}
	lw.emit(ebpf.Instruction{
		Opcode: uint8(ebpf.ClassALU) | uint8(ebpf.SourceX) | uint8(ebpf.ALUEnd),
		Dst:    dst,
		Imm:    int32(in.Ty.Bytes() * 8),
	})
	ra.locs[in].clean = true
	return nil
}

func (lw *lowerer) lowerTrunc(in *ir.Instr) error {
	ra := lw.regs
	a, aTemp, err := lw.operandReg(in.Args[0])
	if err != nil {
		return err
	}
	dst, err := ra.alloc(in, ra.cross[in])
	if err != nil {
		return err
	}
	lw.emit(ebpf.Mov64Reg(dst, a))
	if aTemp {
		ra.freeTemp(a)
	}
	// The register keeps the wider bits; the value is dirty at its new width
	// unless the source was itself clean at a width <= the target's.
	srcClean := ra.isClean(in.Args[0]) && in.Args[0].Type().Bytes() <= in.Ty.Bytes()
	ra.locs[in].clean = srcClean
	return nil
}
