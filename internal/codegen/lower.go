package codegen

import (
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/ir"
)

// loc tracks where a block-local value currently lives.
type loc struct {
	reg     ebpf.Register // PseudoReg when not register-resident
	slot    int16         // spill slot offset from R10 (valid when hasSlot)
	hasSlot bool
	clean   bool // for sub-64-bit values: upper register bits are zero
}

// regAlloc is the per-block register allocator: a greedy linear scan with
// farthest-next-use spilling. All instruction values are block-local (the IR
// has no phis), so no state survives past the block.
type regAlloc struct {
	lw     *lowerer
	block  *ir.Block
	pos    int
	locs   map[*ir.Instr]*loc
	inReg  [ebpf.NumRegisters]*ir.Instr
	pinned [ebpf.NumRegisters]bool
	uses   map[*ir.Instr][]int // ascending use positions within the block
	cross  map[*ir.Instr]bool  // live range crosses a helper call
	fused  map[*ir.Instr]bool  // icmps folded into the terminator
}

// Register pools. R0-R5 are clobbered by calls; R6 is reserved to pin the
// first parameter (the program context), following the universal eBPF idiom
// of saving r1 into r6 at entry.
var (
	callerRegs = []ebpf.Register{ebpf.R1, ebpf.R2, ebpf.R3, ebpf.R4, ebpf.R5, ebpf.R0}
	calleeRegs = []ebpf.Register{ebpf.R7, ebpf.R8, ebpf.R9}
)

func (lw *lowerer) paramReg(p *ir.Param) (ebpf.Register, error) {
	for i, prm := range lw.fn.Params {
		if prm == p {
			if i > 0 {
				return 0, fmt.Errorf("multiple parameters are not supported (param %s)", p.Name)
			}
			return ebpf.R6, nil
		}
	}
	return 0, fmt.Errorf("unknown parameter %s", p.Name)
}

func (lw *lowerer) lowerBlock(b *ir.Block, next *ir.Block) error {
	ra := &regAlloc{
		lw: lw, block: b,
		locs:  map[*ir.Instr]*loc{},
		uses:  map[*ir.Instr][]int{},
		cross: map[*ir.Instr]bool{},
		fused: map[*ir.Instr]bool{},
	}
	// Entry block prologue: pin the context parameter into R6.
	if b == lw.fn.Entry() && len(lw.fn.Params) > 0 {
		lw.emit(ebpf.Mov64Reg(ebpf.R6, ebpf.R1))
	}
	// Use positions. A use of a const-offset GEP is really a use of the
	// underlying base value, because folded GEPs emit no code of their own.
	record := func(a ir.Value, i int) {
		if ai, ok := gepRoot(a).(*ir.Instr); ok {
			ra.uses[ai] = append(ra.uses[ai], i)
		}
	}
	def := map[*ir.Instr]int{}
	callAt := []int{}
	for i, in := range b.Instrs {
		if in.Op == ir.OpCall {
			callAt = append(callAt, i)
		}
		for _, a := range in.Args {
			record(a, i)
		}
		def[in] = i
	}
	// Icmps used only by the terminator are fused into it: their operands
	// stay live until the terminator is emitted.
	if term := b.Terminator(); term != nil && term.Op == ir.OpCondBr {
		if cmp, ok := term.Args[0].(*ir.Instr); ok && cmp.Op == ir.OpICmp && cmp.Parent == b && len(ra.uses[cmp]) == 1 {
			ra.fused[cmp] = true
			tpos := len(b.Instrs) - 1
			for _, a := range cmp.Args {
				record(a, tpos)
			}
		}
	}
	for v, us := range ra.uses {
		d, ok := def[v]
		if !ok {
			continue // function-scoped alloca defined elsewhere
		}
		last := us[len(us)-1]
		for _, c := range callAt {
			if c > d && c <= last && b.Instrs[c] != v {
				ra.cross[v] = true
			}
		}
	}
	lw.regs = ra
	for i, in := range b.Instrs {
		ra.pos = i
		if err := lw.lowerInstr(in, next); err != nil {
			return fmt.Errorf("%s: %w", ir.FormatInstr(in), err)
		}
		ra.releaseDead(i)
		ra.unpinAll()
	}
	return nil
}

func (ra *regAlloc) unpinAll() {
	for i := range ra.pinned {
		ra.pinned[i] = false
	}
}

// releaseDead frees registers of values whose last use was at position i.
func (ra *regAlloc) releaseDead(i int) {
	for v, l := range ra.locs {
		if l.reg == ebpf.PseudoReg {
			continue
		}
		us := ra.uses[v]
		if len(us) == 0 || us[len(us)-1] <= i {
			ra.inReg[l.reg] = nil
			l.reg = ebpf.PseudoReg
		}
	}
}

// nextUseAfter returns v's next use position after p, or a large sentinel.
func (ra *regAlloc) nextUseAfter(v *ir.Instr, p int) int {
	for _, u := range ra.uses[v] {
		if u > p {
			return u
		}
	}
	return 1 << 30
}

// takeFree claims a free register from the given pool, or PseudoReg.
func (ra *regAlloc) takeFree(pool []ebpf.Register) ebpf.Register {
	for _, r := range pool {
		if ra.inReg[r] == nil && !ra.pinned[r] {
			return r
		}
	}
	return ebpf.PseudoReg
}

// spillSlot assigns (once) a stack slot for v.
func (ra *regAlloc) spillSlot(v *ir.Instr) (int16, error) {
	l := ra.locs[v]
	if l.hasSlot {
		return l.slot, nil
	}
	ra.lw.frameSize = alignUp(ra.lw.frameSize+8, 8)
	if ra.lw.frameSize > 512 {
		return 0, fmt.Errorf("stack frame exceeds 512 bytes (spill pressure)")
	}
	l.slot, l.hasSlot = int16(-ra.lw.frameSize), true
	return l.slot, nil
}

// spill stores the value occupying r to its stack slot and frees r.
func (ra *regAlloc) spill(r ebpf.Register) error {
	v := ra.inReg[r]
	if v == nil {
		return nil
	}
	slot, err := ra.spillSlot(v)
	if err != nil {
		return err
	}
	ra.lw.emit(ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, slot, r))
	ra.inReg[r] = nil
	ra.locs[v].reg = ebpf.PseudoReg
	return nil
}

// alloc claims a register for a new value (or a temp when v is nil),
// spilling the live value with the farthest next use if every register is
// occupied. preferCallee biases values that live across helper calls.
func (ra *regAlloc) alloc(v *ir.Instr, preferCallee bool) (ebpf.Register, error) {
	pools := [][]ebpf.Register{callerRegs, calleeRegs}
	if preferCallee {
		pools = [][]ebpf.Register{calleeRegs, callerRegs}
	}
	for _, pool := range pools {
		if r := ra.takeFree(pool); r != ebpf.PseudoReg {
			ra.claim(r, v)
			return r, nil
		}
	}
	// Spill the unpinned victim whose next use is farthest away.
	victim, worst := ebpf.PseudoReg, -1
	for _, r := range append(append([]ebpf.Register{}, callerRegs...), calleeRegs...) {
		if ra.pinned[r] || ra.inReg[r] == nil {
			continue
		}
		if d := ra.nextUseAfter(ra.inReg[r], ra.pos-1); d > worst {
			victim, worst = r, d
		}
	}
	if victim == ebpf.PseudoReg {
		return 0, fmt.Errorf("register pressure too high: all registers pinned")
	}
	if err := ra.spill(victim); err != nil {
		return 0, err
	}
	ra.claim(victim, v)
	return victim, nil
}

func (ra *regAlloc) claim(r ebpf.Register, v *ir.Instr) {
	ra.inReg[r] = v
	ra.pinned[r] = true
	if v != nil {
		l := ra.ensureLoc(v)
		l.reg = r
	}
}

func (ra *regAlloc) ensureLoc(v *ir.Instr) *loc {
	l := ra.locs[v]
	if l == nil {
		l = &loc{reg: ebpf.PseudoReg}
		ra.locs[v] = l
	}
	return l
}

// freeTemp releases a temp register claimed with alloc(nil, ...).
func (ra *regAlloc) freeTemp(r ebpf.Register) {
	if ra.inReg[r] == nil {
		ra.pinned[r] = false
	}
}

// valueReg returns the register currently holding instruction value v,
// reloading it from its spill slot if needed. The register is pinned for the
// remainder of the current IR instruction.
func (ra *regAlloc) valueReg(v *ir.Instr) (ebpf.Register, error) {
	l := ra.ensureLoc(v)
	if l.reg != ebpf.PseudoReg {
		ra.pinned[l.reg] = true
		return l.reg, nil
	}
	if !l.hasSlot {
		return 0, fmt.Errorf("value %%%s has no location (use before def?)", v.Name)
	}
	r, err := ra.alloc(v, ra.cross[v])
	if err != nil {
		return 0, err
	}
	ra.lw.emit(ebpf.LoadMem(ebpf.SizeDW, r, ebpf.R10, l.slot))
	return r, nil
}

// isClean reports whether a value's upper bits are known zero at its width.
func (ra *regAlloc) isClean(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Const:
		return true
	case *ir.Param:
		return true
	case *ir.Instr:
		if x.Type().Bytes() == 8 {
			return true
		}
		if l, ok := ra.locs[x]; ok {
			return l.clean
		}
	}
	return true
}

// fitsImm32 reports whether the 64-bit pattern v can be produced by a
// sign-extended 32-bit immediate.
func fitsImm32(v uint64) bool { return int64(v) >= -0x80000000 && int64(v) <= 0x7fffffff }

// constBits returns the canonical zero-extended bit pattern of c.
func constBits(c *ir.Const) uint64 {
	switch c.Ty.Bytes() {
	case 1:
		return uint64(c.Val) & 0xff
	case 2:
		return uint64(c.Val) & 0xffff
	case 4:
		return uint64(c.Val) & 0xffffffff
	}
	return uint64(c.Val)
}

// materializeConst emits code loading the zero-extended constant into r.
func (lw *lowerer) materializeConst(r ebpf.Register, bits uint64) {
	if fitsImm32(bits) {
		lw.emit(ebpf.Mov64Imm(r, int32(int64(bits))))
		return
	}
	lw.emit(ebpf.LoadImm64(r, int64(bits)))
}

// operandReg places any operand value into a register. Temps created for
// constants (and materialized pointers) must be freed by the caller via
// freeTemp when isTemp is true.
func (lw *lowerer) operandReg(v ir.Value) (r ebpf.Register, isTemp bool, err error) {
	ra := lw.regs
	switch x := v.(type) {
	case *ir.Const:
		r, err = ra.alloc(nil, false)
		if err != nil {
			return 0, false, err
		}
		lw.materializeConst(r, constBits(x))
		return r, true, nil
	case *ir.Param:
		r, err = lw.paramReg(x)
		return r, false, err
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			r, err = ra.alloc(nil, false)
			if err != nil {
				return 0, false, err
			}
			lw.emit(ebpf.Mov64Reg(r, ebpf.R10))
			lw.emit(ebpf.ALU64Imm(ebpf.ALUAdd, r, int32(lw.allocaOff[x])))
			return r, true, nil
		case ir.OpMapPtr:
			r, err = ra.alloc(nil, false)
			if err != nil {
				return 0, false, err
			}
			lw.emit(ebpf.LoadMapPtr(r, lw.mapIndex(x.Map)))
			return r, true, nil
		case ir.OpGEP:
			if base, off, ok := lw.foldedAddr(x); ok {
				// Materialize base+offset into a temp.
				r, err = ra.alloc(nil, false)
				if err != nil {
					return 0, false, err
				}
				lw.emit(ebpf.Mov64Reg(r, base))
				if off != 0 {
					lw.emit(ebpf.ALU64Imm(ebpf.ALUAdd, r, int32(off)))
				}
				return r, true, nil
			}
			r, err = ra.valueReg(x)
			return r, false, err
		default:
			r, err = ra.valueReg(x)
			return r, false, err
		}
	}
	return 0, false, fmt.Errorf("unsupported operand %T", v)
}

func (lw *lowerer) mapIndex(md *ir.MapDef) int {
	for i, m := range lw.mod.Maps {
		if m == md {
			return i
		}
	}
	return -1
}

// foldedAddr resolves a pointer expression into base register + constant
// offset when possible: allocas, const-offset GEP chains over resolvable
// bases, parameters, and register-resident pointers.
func (lw *lowerer) foldedAddr(v ir.Value) (ebpf.Register, int16, bool) {
	base, off, ok := lw.addrChain(v, 0)
	if !ok || off < -32768 || off > 32767 {
		return 0, 0, false
	}
	return base, int16(off), true
}

func (lw *lowerer) addrChain(v ir.Value, acc int64) (ebpf.Register, int64, bool) {
	switch x := v.(type) {
	case *ir.Param:
		r, err := lw.paramReg(x)
		if err != nil {
			return 0, 0, false
		}
		return r, acc, true
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			return ebpf.R10, acc + int64(lw.allocaOff[x]), true
		case ir.OpGEP:
			c, ok := x.Args[1].(*ir.Const)
			if !ok {
				break
			}
			return lw.addrChain(x.Args[0], acc+c.Val)
		}
		// Register-resident pointer (load result, call result, gep-var...).
		if l, ok := lw.regs.locs[x]; ok && (l.reg != ebpf.PseudoReg || l.hasSlot) {
			r, err := lw.regs.valueReg(x)
			if err != nil {
				return 0, 0, false
			}
			return r, acc, true
		}
	}
	return 0, 0, false
}
