package codegen

import (
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/ir"
)

// lowerCall emits a helper call. R0-R5 are clobbered, so live values in
// caller-saved registers are evacuated to callee-saved registers when one is
// free, otherwise spilled. Arguments are then staged into R1..R5 from
// conflict-free sources (callee regs, spill slots, constants, map pseudos).
func (lw *lowerer) lowerCall(in *ir.Instr) error {
	ra := lw.regs
	// Evacuate caller-saved registers.
	for _, r := range callerRegs {
		v := ra.inReg[r]
		if v == nil {
			continue
		}
		if dst := ra.takeFree(calleeRegs); dst != ebpf.PseudoReg {
			lw.emit(ebpf.Mov64Reg(dst, r))
			ra.inReg[r] = nil
			ra.inReg[dst] = v
			ra.locs[v].reg = dst
			continue
		}
		if err := ra.spill(r); err != nil {
			return err
		}
	}
	// Stage arguments.
	if len(in.Args) > 5 {
		return fmt.Errorf("helper %d called with %d args", in.Helper, len(in.Args))
	}
	for i, arg := range in.Args {
		dst := ebpf.Register(ebpf.R1 + ebpf.Register(i))
		if err := lw.stageArg(dst, arg); err != nil {
			return err
		}
	}
	lw.emit(ebpf.Call(int32(in.Helper)))
	// The result lives in R0 until something needs the register.
	if len(ra.uses[in]) > 0 {
		ra.inReg[ebpf.R0] = in
		l := ra.ensureLoc(in)
		l.reg = ebpf.R0
		l.clean = true
	}
	return nil
}

// stageArg loads an argument value into a specific register. Sources never
// reside in R1-R5 at this point (callers were evacuated), so staging in
// ascending order cannot clobber a pending source.
func (lw *lowerer) stageArg(dst ebpf.Register, arg ir.Value) error {
	switch x := arg.(type) {
	case *ir.Const:
		lw.materializeConst(dst, constBits(x))
		return nil
	case *ir.Param:
		r, err := lw.paramReg(x)
		if err != nil {
			return err
		}
		lw.emit(ebpf.Mov64Reg(dst, r))
		return nil
	case *ir.Instr:
		switch x.Op {
		case ir.OpMapPtr:
			lw.emit(ebpf.LoadMapPtr(dst, lw.mapIndex(x.Map)))
			return nil
		case ir.OpAlloca:
			lw.emit(ebpf.Mov64Reg(dst, ebpf.R10))
			lw.emit(ebpf.ALU64Imm(ebpf.ALUAdd, dst, int32(lw.allocaOff[x])))
			return nil
		case ir.OpGEP:
			if base, off, ok := lw.foldedAddr(x); ok {
				lw.emit(ebpf.Mov64Reg(dst, base))
				if off != 0 {
					lw.emit(ebpf.ALU64Imm(ebpf.ALUAdd, dst, int32(off)))
				}
				return nil
			}
		}
		l := lw.regs.locs[x]
		if l == nil {
			return fmt.Errorf("argument %%%s has no location", x.Name)
		}
		if l.reg != ebpf.PseudoReg {
			lw.emit(ebpf.Mov64Reg(dst, l.reg))
			return nil
		}
		if !l.hasSlot {
			return fmt.Errorf("argument %%%s neither in register nor spilled", x.Name)
		}
		lw.emit(ebpf.LoadMem(ebpf.SizeDW, dst, ebpf.R10, l.slot))
		return nil
	}
	return fmt.Errorf("unsupported argument %T", arg)
}

// lowerAtomic emits the locked read-modify-write (Fig 7's xadd family).
func (lw *lowerer) lowerAtomic(in *ir.Instr) error {
	ra := lw.regs
	width := in.Ty.Bytes()
	sz, _ := ebpf.SizeForBytes(width)
	var op ebpf.AtomicOp
	switch in.Bin {
	case ir.Add:
		op = ebpf.AtomicAdd
	case ir.And:
		op = ebpf.AtomicAnd
	case ir.Or:
		op = ebpf.AtomicOr
	case ir.Xor:
		op = ebpf.AtomicXor
	default:
		return fmt.Errorf("atomicrmw %s not supported", in.Bin)
	}
	base, off, baseTemp, err := lw.address(in.Args[0])
	if err != nil {
		return err
	}
	src, srcTemp, err := lw.operandReg(in.Args[1])
	if err != nil {
		return err
	}
	lw.emit(ebpf.Atomic(sz, op, base, off, src))
	if baseTemp {
		ra.freeTemp(base)
	}
	if srcTemp {
		ra.freeTemp(src)
	}
	return nil
}

var jumpFor = map[ir.CmpPred]ebpf.JumpOp{
	ir.EQ: ebpf.JumpEq, ir.NE: ebpf.JumpNE,
	ir.ULT: ebpf.JumpLT, ir.ULE: ebpf.JumpLE, ir.UGT: ebpf.JumpGT, ir.UGE: ebpf.JumpGE,
	ir.SLT: ebpf.JumpSLT, ir.SLE: ebpf.JumpSLE, ir.SGT: ebpf.JumpSGT, ir.SGE: ebpf.JumpSGE,
}

func predSigned(p ir.CmpPred) bool {
	switch p {
	case ir.SLT, ir.SLE, ir.SGT, ir.SGE:
		return true
	}
	return false
}

// cmpWidth picks the comparison width from the operands.
func cmpWidth(a, b ir.Value) int {
	w := 8
	if ai, ok := a.(*ir.Instr); ok {
		w = ai.Type().Bytes()
	} else if _, ok := a.(*ir.Const); ok {
		if bi, ok := b.(*ir.Instr); ok {
			w = bi.Type().Bytes()
		}
	}
	return w
}

// emitCompareJump emits "if a pred b goto <fixup>" and returns the fixup
// element index.
func (lw *lowerer) emitCompareJump(pred ir.CmpPred, a, b ir.Value) (int, error) {
	ra := lw.regs
	width := cmpWidth(a, b)
	useJMP32 := lw.opts.MCPU >= 3 && width == 4 && !predSigned(pred)

	prep := func(v ir.Value) (ebpf.Register, bool, error) {
		if useJMP32 || width == 8 {
			return lw.operandReg(v)
		}
		if predSigned(pred) {
			return lw.signExtendOperand(v, width)
		}
		return lw.cleanOperand(v, width)
	}

	ar, aTemp, err := prep(a)
	if err != nil {
		return 0, err
	}
	// Immediate form for constant right-hand sides.
	if c, ok := b.(*ir.Const); ok {
		bits := constBits(c)
		cmpBits := bits
		if predSigned(pred) {
			cmpBits = uint64(signExtendConst(c))
		}
		if fitsImm32(cmpBits) {
			var fi int
			if useJMP32 {
				fi = lw.emit(ebpf.Jump32Imm(jumpFor[pred], ar, int32(int64(cmpBits)), 0))
			} else {
				fi = lw.emit(ebpf.JumpImm(jumpFor[pred], ar, int32(int64(cmpBits)), 0))
			}
			if aTemp {
				ra.freeTemp(ar)
			}
			return fi, nil
		}
	}
	br, bTemp, err := prep(b)
	if err != nil {
		return 0, err
	}
	var fi int
	if useJMP32 {
		fi = lw.emit(ebpf.Jump32Reg(jumpFor[pred], ar, br, 0))
	} else {
		fi = lw.emit(ebpf.JumpReg(jumpFor[pred], ar, br, 0))
	}
	if aTemp {
		ra.freeTemp(ar)
	}
	if bTemp {
		ra.freeTemp(br)
	}
	return fi, nil
}

func signExtendConst(c *ir.Const) int64 {
	switch c.Ty.Bytes() {
	case 1:
		return int64(int8(c.Val))
	case 2:
		return int64(int16(c.Val))
	case 4:
		return int64(int32(c.Val))
	}
	return c.Val
}

// lowerICmpValue materializes a comparison result as 0/1 — used when the
// icmp is not fused into the terminator.
func (lw *lowerer) lowerICmpValue(in *ir.Instr) error {
	ra := lw.regs
	dst, err := ra.alloc(in, ra.cross[in])
	if err != nil {
		return err
	}
	lw.emit(ebpf.Mov64Imm(dst, 1))
	fi, err := lw.emitCompareJump(in.Pred, in.Args[0], in.Args[1])
	if err != nil {
		return err
	}
	lw.emit(ebpf.Mov64Imm(dst, 0))
	// Jump over the "mov 0": branch targets the next element.
	lw.insns[fi].Offset = 1
	ra.locs[in].clean = true
	return nil
}

func (lw *lowerer) lowerCondBr(in *ir.Instr, next *ir.Block) error {
	tBlk, fBlk := in.Blocks[0], in.Blocks[1]
	cmp, fusedOK := in.Args[0].(*ir.Instr)
	if fusedOK && lw.regs.fused[cmp] {
		pred, a, b := cmp.Pred, cmp.Args[0], cmp.Args[1]
		if tBlk == next {
			// Invert: jump to the false target, fall through to true.
			fi, err := lw.emitCompareJump(pred.Inverse(), a, b)
			if err != nil {
				return err
			}
			lw.fixups = append(lw.fixups, fixup{fi, fBlk})
			return nil
		}
		fi, err := lw.emitCompareJump(pred, a, b)
		if err != nil {
			return err
		}
		lw.fixups = append(lw.fixups, fixup{fi, tBlk})
		if fBlk != next {
			ji := lw.emit(ebpf.Jump(0))
			lw.fixups = append(lw.fixups, fixup{ji, fBlk})
		}
		return nil
	}
	// Generic: branch on cond != 0.
	r, isTemp, err := lw.operandReg(in.Args[0])
	if err != nil {
		return err
	}
	if tBlk == next {
		fi := lw.emit(ebpf.JumpImm(ebpf.JumpEq, r, 0, 0))
		lw.fixups = append(lw.fixups, fixup{fi, fBlk})
	} else {
		fi := lw.emit(ebpf.JumpImm(ebpf.JumpNE, r, 0, 0))
		lw.fixups = append(lw.fixups, fixup{fi, tBlk})
		if fBlk != next {
			ji := lw.emit(ebpf.Jump(0))
			lw.fixups = append(lw.fixups, fixup{ji, fBlk})
		}
	}
	if isTemp {
		lw.regs.freeTemp(r)
	}
	return nil
}

func (lw *lowerer) lowerRet(in *ir.Instr) error {
	switch x := in.Args[0].(type) {
	case *ir.Const:
		lw.materializeConst(ebpf.R0, constBits(x))
	default:
		r, _, err := lw.operandReg(in.Args[0])
		if err != nil {
			return err
		}
		if r != ebpf.R0 {
			lw.emit(ebpf.Mov64Reg(ebpf.R0, r))
		}
		if ai, ok := x.(*ir.Instr); ok && !lw.regs.isClean(x) {
			lw.cleanInPlace(ebpf.R0, ai.Type().Bytes())
		}
	}
	lw.emit(ebpf.Exit())
	return nil
}
