package difftest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// This file is the cross-interpreter differential rig: it proves the
// pre-decoded fast engine (vm.New) byte-for-byte equivalent to the reference
// switch interpreter (vm.NewRef) — same r0, same Stats, same fault kind, pc
// and detail, same post-run map bytes and helper state — over the whole
// program corpus, generated random programs, boundary-lattice inputs and a
// fuzz target. The reference interpreter is the oracle: any divergence is a
// fast-engine bug by definition.

// latticeU64 is the boundary lattice for scalar inputs: zeros, small values,
// and every power-of-two sign/width boundary the ALU and jump paths care
// about.
var latticeU64 = []uint64{
	0, 1, 2, 7, 0x7f, 0x80, 0xff, 0x100, 0x7fff, 0x8000, 0xffff,
	0x7fff_ffff, 0x8000_0000, 0xffff_ffff, 0x1_0000_0000,
	0x7fff_ffff_ffff_ffff, 0x8000_0000_0000_0000, 0xffff_ffff_ffff_ffff,
}

// enginePair is a fast/reference machine pair loaded from the same program
// with the same configuration.
type enginePair struct {
	fast *vm.Machine
	ref  *vm.RefMachine
}

func newEnginePair(t testing.TB, prog *ebpf.Program, cfg vm.Config) *enginePair {
	t.Helper()
	fast, err := vm.New(prog, cfg)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	if fast.Engine() != "fast" {
		t.Fatalf("program did not pre-decode (engine %q)", fast.Engine())
	}
	ref, err := vm.NewRef(prog, cfg)
	if err != nil {
		t.Fatalf("vm.NewRef: %v", err)
	}
	// Identical synthetic kernel memory so probe_read reads agree.
	rng := rand.New(rand.NewSource(99))
	rng.Read(fast.Kmem)
	copy(ref.Kmem, fast.Kmem)
	return &enginePair{fast: fast, ref: ref}
}

// runBoth executes one input on both engines and asserts every observable
// output matches.
func (p *enginePair) runBoth(t testing.TB, tag string, ctx, pkt []byte) {
	t.Helper()
	// The context and packet are mutable program memory: give each engine
	// its own copy, then compare the copies afterwards.
	ctxF, ctxR := append([]byte(nil), ctx...), append([]byte(nil), ctx...)
	pktF, pktR := append([]byte(nil), pkt...), append([]byte(nil), pkt...)
	rvF, stF, errF := p.fast.Run(ctxF, pktF)
	rvR, stR, errR := p.ref.Run(ctxR, pktR)
	sameFault(t, tag, errF, errR)
	if errF == nil && rvF != rvR {
		t.Fatalf("%s: r0 %d (fast) vs %d (ref)", tag, rvF, rvR)
	}
	if stF != stR {
		t.Fatalf("%s: stats diverged\nfast %+v\nref  %+v", tag, stF, stR)
	}
	if string(ctxF) != string(ctxR) {
		t.Fatalf("%s: post-run context bytes diverged", tag)
	}
	if string(pktF) != string(pktR) {
		t.Fatalf("%s: post-run packet bytes diverged", tag)
	}
	for i := 0; i < p.fast.NumMaps(); i++ {
		if string(p.fast.Map(i).Backing()) != string(p.ref.Map(i).Backing()) {
			t.Fatalf("%s: map %d bytes diverged after run", tag, i)
		}
	}
	rngF, ktF := p.fast.HelperState()
	rngR, ktR := p.ref.HelperState()
	if rngF != rngR || ktF != ktR {
		t.Fatalf("%s: helper state diverged: rng %#x/%#x ktime %d/%d",
			tag, rngF, rngR, ktF, ktR)
	}
}

// sameFault asserts two run errors are either both nil or carry the same
// fault kind, pc and detail.
func sameFault(t testing.TB, tag string, e1, e2 error) {
	t.Helper()
	if (e1 == nil) != (e2 == nil) {
		t.Fatalf("%s: fault divergence: %v (fast) vs %v (ref)", tag, e1, e2)
	}
	if e1 == nil {
		return
	}
	var r1, r2 *vm.RuntimeError
	if !errors.As(e1, &r1) || !errors.As(e2, &r2) {
		if e1.Error() != e2.Error() {
			t.Fatalf("%s: error divergence: %v vs %v", tag, e1, e2)
		}
		return
	}
	if r1.Kind != r2.Kind || r1.PC != r2.PC || r1.Detail != r2.Detail {
		t.Fatalf("%s: fault divergence:\nfast kind=%s pc=%d detail=%q\nref  kind=%s pc=%d detail=%q",
			tag, r1.Kind, r1.PC, r1.Detail, r2.Kind, r2.PC, r2.Detail)
	}
}

// latticePackets builds the XDP input set: realistic Ethernet/IPv4 frames,
// boundary-length frames (empty, truncated header, minimal, jumbo-ish) and
// adversarial byte patterns.
func latticePackets() [][]byte {
	rng := rand.New(rand.NewSource(4242))
	var pkts [][]byte
	for _, n := range []int{0, 1, 13, 14, 20, 34, 54, 64, 128, 256} {
		pkt := make([]byte, n)
		rng.Read(pkt)
		if n >= 14 {
			pkt[12], pkt[13] = 0x08, 0x00
		}
		if n >= 34 {
			pkt[14] = 0x45
			pkt[14+9] = 17
		}
		pkts = append(pkts, pkt)
	}
	// Well-formed TCP and UDP frames plus non-IP and all-ones/all-zeros.
	for i := 0; i < 8; i++ {
		pkt := make([]byte, 64)
		rng.Read(pkt)
		switch i % 4 {
		case 0:
			pkt[12], pkt[13], pkt[14], pkt[14+9] = 0x08, 0x00, 0x45, 6
		case 1:
			pkt[12], pkt[13], pkt[14], pkt[14+9] = 0x08, 0x00, 0x45, 17
		case 2:
			pkt[12], pkt[13] = 0x86, 0xdd // IPv6
		case 3:
			pkt[12], pkt[13] = 0x08, 0x06 // ARP
		}
		pkts = append(pkts, pkt)
	}
	pkts = append(pkts, make([]byte, 64))
	ones := make([]byte, 64)
	for i := range ones {
		ones[i] = 0xff
	}
	pkts = append(pkts, ones)
	return pkts
}

// latticeArgs builds tracepoint argument vectors walking the boundary
// lattice plus pseudo-random fill.
func latticeArgs() [][]uint64 {
	rng := rand.New(rand.NewSource(777))
	var out [][]uint64
	for i := 0; i < len(latticeU64); i++ {
		args := make([]uint64, 8)
		for j := range args {
			args[j] = latticeU64[(i+j)%len(latticeU64)]
		}
		out = append(out, args)
	}
	for i := 0; i < 8; i++ {
		args := make([]uint64, 8)
		for j := range args {
			args[j] = rng.Uint64()
		}
		out = append(out, args)
	}
	return out
}

// vmDiffConfigs is the configuration matrix the corpus sweep runs under:
// the deployment shape (no hardware models), the modelled shape (cache and
// branch predictor charged), and a tight step limit that expires mid-run —
// often in the middle of a fused micro-op group — to prove the fallback
// accounting matches.
func vmDiffConfigs() []vm.Config {
	return []vm.Config{
		{Seed: 9},
		{Seed: 9, UseHW: true},
		{Seed: 9, StepLimit: 23},
		{Seed: 9, UseHW: true, StepLimit: 7},
	}
}

// TestVMEquivalenceCorpus drives every corpus program through both engines
// on the boundary-lattice input set under each configuration.
func TestVMEquivalenceCorpus(t *testing.T) {
	specs := corpus.XDP()
	specs = append(specs, corpus.Sysdig()...)
	specs = append(specs, corpus.Tetragon()...)
	specs = append(specs, corpus.Tracee()...)
	if testing.Short() {
		specs = specs[:6]
	}
	pkts := latticePackets()
	argSets := latticeArgs()
	for _, spec := range specs {
		res, err := core.Build(spec.Mod, spec.Func, core.Options{
			Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true,
		})
		if err != nil {
			t.Fatalf("%s: build: %v", spec.Name, err)
		}
		for ci, cfg := range vmDiffConfigs() {
			p := newEnginePair(t, res.Prog, cfg)
			if spec.Hook == ebpf.HookXDP {
				for pi, pkt := range pkts {
					tag := fmt.Sprintf("%s cfg%d pkt%d", spec.Name, ci, pi)
					p.runBoth(t, tag, vm.BuildXDPContext(len(pkt)), pkt)
				}
			} else {
				for ai, args := range argSets {
					tag := fmt.Sprintf("%s cfg%d args%d", spec.Name, ci, ai)
					p.runBoth(t, tag, vm.TracepointContext(args...), nil)
				}
			}
		}
	}
}

// TestVMEquivalenceGenerated runs seeded random programs (both the baseline
// and the optimized build of each) through both engines.
func TestVMEquivalenceGenerated(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	argSets := latticeArgs()
	for seed := int64(0); seed < int64(seeds); seed++ {
		mod := Generate(seed, GenOptions{UseMaps: seed%2 == 0})
		res, err := core.Build(mod, mod.Funcs[0].Name, core.Options{
			Hook: ebpf.HookTracepoint, MCPU: 2 + int(seed%2), KernelALU32: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for pi, prog := range []*ebpf.Program{res.Baseline, res.Prog} {
			for ci, cfg := range vmDiffConfigs() {
				p := newEnginePair(t, prog, cfg)
				for ai := 0; ai < len(argSets); ai += 3 {
					tag := fmt.Sprintf("seed %d prog%d cfg%d args%d", seed, pi, ci, ai)
					p.runBoth(t, tag, vm.TracepointContext(argSets[ai]...), nil)
				}
			}
		}
	}
}

// FuzzVMEquivalence fuzzes the engine pair: the program shape comes from the
// generator seed, the input from the fuzzed argument vector, and the step
// limit (when tight) forces mid-group limit expiry.
func FuzzVMEquivalence(f *testing.F) {
	f.Add(int64(0), true, uint16(0), uint64(0), uint64(1), uint64(0xffff_ffff), uint64(0x8000_0000_0000_0000))
	f.Add(int64(3), false, uint16(17), uint64(7), uint64(0x7f), uint64(0x100000000), uint64(42))
	f.Add(int64(11), true, uint16(5), uint64(0xffffffffffffffff), uint64(0), uint64(0x8000), uint64(0x7fffffff))
	f.Fuzz(func(t *testing.T, seed int64, useMaps bool, stepLimit uint16, a0, a1, a2, a3 uint64) {
		mod := Generate(seed%512, GenOptions{UseMaps: useMaps})
		res, err := core.Build(mod, mod.Funcs[0].Name, core.Options{
			Hook: ebpf.HookTracepoint, MCPU: 2, KernelALU32: true,
		})
		if err != nil {
			t.Skip() // generator emitted something the pipeline rejects
		}
		cfg := vm.Config{Seed: 13, UseHW: seed%2 == 0, StepLimit: int(stepLimit)}
		p := newEnginePair(t, res.Prog, cfg)
		ctx := vm.TracepointContext(a0, a1, a2, a3, a0^a3, a1+a2, a2>>1, ^a0)
		p.runBoth(t, "fuzz", ctx, nil)
		// Second run on the same pair: warm maps, advanced helper state.
		p.runBoth(t, "fuzz-rerun", ctx, nil)
	})
}
