package difftest

import (
	"testing"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/ir"
	"merlin/internal/superopt"
)

// soCache is shared across seeds so the superoptimizer's memoization is
// itself under test: a verdict cached for one generated program must stay
// correct when a later program canonicalizes to the same window.
var soCache = superopt.NewMemCache()

// checkSuperoptEquivalence builds mod with and without the superoptimizer
// tier and requires byte-identical behavior on sampled inputs.
func checkSuperoptEquivalence(t *testing.T, seed int64, mod *ir.Module) {
	t.Helper()
	mcpu := 2
	if seed%3 == 0 {
		mcpu = 3
	}
	opts := core.Options{Hook: ebpf.HookTracepoint, MCPU: mcpu, KernelALU32: true}
	plain, err := core.Build(mod, mod.Funcs[0].Name, opts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	opts.Superopt = &superopt.Config{Cache: soCache, Budget: 5000}
	sup, err := core.Build(mod, mod.Funcs[0].Name, opts)
	if err != nil {
		t.Fatalf("seed %d (superopt): %v", seed, err)
	}
	if sup.Prog.NI() > plain.Prog.NI() {
		t.Fatalf("seed %d: superopt grew the program: %d -> %d",
			seed, plain.Prog.NI(), sup.Prog.NI())
	}
	if err := guard.DiffPrograms(plain.Prog, sup.Prog, guard.Inputs(ebpf.HookTracepoint, 12, seed+7)); err != nil {
		t.Fatalf("seed %d: superopt output diverges: %v\n--- plain ---\n%s--- superopt ---\n%s",
			seed, err, ebpf.Disassemble(plain.Prog), ebpf.Disassemble(sup.Prog))
	}
}

// TestSuperoptDifferential: across many generated programs the superopt
// build must stay behaviorally identical to the Merlin-only build.
func TestSuperoptDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		mod := Generate(seed, GenOptions{UseMaps: seed%2 == 0})
		if err := ir.Validate(mod); err != nil {
			t.Fatalf("seed %d: generated invalid IR: %v", seed, err)
		}
		checkSuperoptEquivalence(t, seed, mod)
	}
}

// FuzzSuperopt drives the same check from the fuzzer: any seed where the
// superoptimizer tier changes observable behavior is a soundness bug.
func FuzzSuperopt(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if seed < 0 {
			seed = -seed
		}
		mod := Generate(seed, GenOptions{UseMaps: seed%2 == 0})
		if err := ir.Validate(mod); err != nil {
			t.Skip("generator rejected seed")
		}
		checkSuperoptEquivalence(t, seed, mod)
	})
}
