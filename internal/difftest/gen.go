// Package difftest provides a seeded random-program generator used to
// differentially validate the whole pipeline: for every generated module,
// the clang-only baseline and the fully optimized program must (a) both pass
// the simulated kernel verifier under both kernel-version heuristics and
// (b) produce identical results and map side effects on random inputs.
// This is the repository's strongest end-to-end semantics check.
package difftest

import (
	"fmt"
	"math/rand"

	"merlin/internal/helpers"
	"merlin/internal/ir"
)

// GenOptions bounds the generated program shapes. Generated programs are
// tracepoint-style: the context is a block of scalar arguments.
type GenOptions struct {
	MaxUnits int  // number of code "units" strung together
	UseMaps  bool // include map lookup/update units
}

// Generate builds a random, valid, verifier-acceptable module from a seed.
// The same seed always yields the same module.
func Generate(seed int64, opts GenOptions) *ir.Module {
	if opts.MaxUnits <= 0 {
		opts.MaxUnits = 12
	}
	rng := rand.New(rand.NewSource(seed))
	g := &gen{
		rng:  rng,
		opts: opts,
	}
	return g.module(fmt.Sprintf("fuzz_%d", seed))
}

type gen struct {
	rng  *rand.Rand
	opts GenOptions
	b    *ir.Builder
	ctx  *ir.Param
	// slots are 8-byte allocas holding i64 values the units read and write;
	// they are always initialized in the entry block first.
	slots []*ir.Instr
	// key is a 4-byte initialized alloca for map calls.
	key   *ir.Instr
	vslot *ir.Instr
	cnt   *ir.MapDef
	label int
}

func (g *gen) newLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

func (g *gen) module(name string) *ir.Module {
	g.ctx = &ir.Param{Name: "ctx", Ty: ir.Ptr}
	g.b = ir.NewModule(name)
	if g.opts.UseMaps {
		g.cnt = g.b.DeclareMap("counters", ir.MapArray, 4, 8, 16)
	}
	g.b.NewFunc(name, g.ctx)

	// Entry: initialize a pool of stack slots with ctx-derived and constant
	// values so later units always read initialized memory.
	nslots := 3 + g.rng.Intn(4)
	for i := 0; i < nslots; i++ {
		s := g.b.Alloca(8, 8)
		g.slots = append(g.slots, s)
		if i%2 == 0 {
			// Tracepoint ctx args are scalars: offsets 0..56.
			v := g.b.Load(ir.I64, g.b.GEPc(g.ctx, int64(8*(i%7))), 8)
			g.b.Store(s, v, 8)
		} else {
			g.b.Store(s, ir.ConstInt(ir.I64, g.rng.Int63n(1<<32)), 8)
		}
	}
	g.key = g.b.Alloca(4, 4)
	g.b.Store(g.key, ir.ConstInt(ir.I32, g.rng.Int63n(16)), 4)
	g.vslot = g.b.Alloca(8, 8)
	g.b.Store(g.vslot, ir.ConstInt(ir.I64, 0), 8)

	units := 1 + g.rng.Intn(g.opts.MaxUnits)
	for i := 0; i < units; i++ {
		g.emitUnit()
	}
	// Final: fold the slot pool into the return value.
	acc := g.b.Load(ir.I64, g.slots[0], 8)
	for _, s := range g.slots[1:] {
		v := g.b.Load(ir.I64, s, 8)
		acc = g.b.Bin(ir.Xor, ir.I64, acc, v)
	}
	// Bound to a sane verdict range so it looks like a program return.
	r := g.b.Bin(ir.And, ir.I64, acc, ir.ConstInt(ir.I64, 0xffff))
	g.b.Ret(r)
	return g.b.Mod
}

// randSlot picks a random slot.
func (g *gen) randSlot() *ir.Instr { return g.slots[g.rng.Intn(len(g.slots))] }

// emitUnit appends one random code unit in the current block.
func (g *gen) emitUnit() {
	switch g.rng.Intn(8) {
	case 0:
		g.arithUnit(ir.I64)
	case 1:
		g.arithUnit(ir.I32)
	case 2:
		g.narrowUnit()
	case 3:
		g.branchUnit()
	case 4:
		g.constStoreUnit()
	case 5:
		g.rmwUnit()
	case 6:
		if g.opts.UseMaps && g.cnt != nil {
			g.mapUnit()
		} else {
			g.arithUnit(ir.I64)
		}
	default:
		g.bswapUnit()
	}
}

var binKinds = []ir.BinKind{
	ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.LShr, ir.AShr, ir.UDiv, ir.URem,
}

// arithUnit: load two slots, combine at the given width, store back.
func (g *gen) arithUnit(ty ir.Type) {
	a := g.b.Load(ir.I64, g.randSlot(), 8)
	bo := g.b.Load(ir.I64, g.randSlot(), 8)
	var x, y ir.Value = a, bo
	if ty != ir.I64 {
		x = g.b.Trunc(ty, a)
		y = g.b.Trunc(ty, bo)
	}
	kind := binKinds[g.rng.Intn(len(binKinds))]
	var rhs ir.Value = y
	if kind == ir.Shl || kind == ir.LShr || kind == ir.AShr || g.rng.Intn(3) == 0 {
		rhs = ir.ConstInt(ty, int64(g.rng.Intn(int(ty.Bytes())*8-1)+1))
	}
	r := g.b.Bin(kind, ty, x, rhs)
	var wide ir.Value = r
	if ty != ir.I64 {
		wide = g.b.ZExt(ir.I64, r)
	}
	g.b.Store(g.randSlot(), wide, 8)
}

// narrowUnit stores a narrow value at a random offset within a slot and
// reads it back with a random (often under-) alignment.
func (g *gen) narrowUnit() {
	s := g.randSlot()
	widths := []ir.Type{ir.I8, ir.I16, ir.I32}
	ty := widths[g.rng.Intn(len(widths))]
	off := int64(g.rng.Intn(8 - ty.Bytes() + 1))
	p := g.b.GEPc(s, off)
	v := g.b.Load(ir.I64, g.randSlot(), 8)
	tr := g.b.Trunc(ty, v)
	aligns := []int{1, 2, 4, 8}
	g.b.Store(p, tr, aligns[g.rng.Intn(2)])
	back := g.b.Load(ty, p, aligns[g.rng.Intn(4)%2+0])
	z := g.b.ZExt(ir.I64, back)
	g.b.Store(g.randSlot(), z, 8)
}

// branchUnit forks on a slot comparison; both arms write different
// constants to a slot and rejoin.
func (g *gen) branchUnit() {
	v := g.b.Load(ir.I64, g.randSlot(), 8)
	preds := []ir.CmpPred{ir.EQ, ir.NE, ir.ULT, ir.UGT, ir.SLT, ir.SGE}
	c := g.b.ICmp(preds[g.rng.Intn(len(preds))], v, ir.ConstInt(ir.I64, g.rng.Int63n(1000)))
	tb := g.b.Block(g.newLabel("t"))
	fb := g.b.Block(g.newLabel("f"))
	join := g.b.Block(g.newLabel("j"))
	g.b.CondBr(c, tb, fb)
	dst := g.randSlot()
	g.b.SetBlock(tb)
	g.b.Store(dst, ir.ConstInt(ir.I64, g.rng.Int63n(1<<20)), 8)
	g.b.Br(join)
	g.b.SetBlock(fb)
	g.b.Store(dst, ir.ConstInt(ir.I64, g.rng.Int63n(1<<20)), 8)
	g.b.Br(join)
	g.b.SetBlock(join)
}

// constStoreUnit writes adjacent narrow constants (SLM/CP&DCE fodder).
func (g *gen) constStoreUnit() {
	s := g.randSlot()
	g.b.Store(g.b.GEPc(s, 0), ir.ConstInt(ir.I32, g.rng.Int63n(3)), 4)
	g.b.Store(g.b.GEPc(s, 4), ir.ConstInt(ir.I32, g.rng.Int63n(3)), 4)
}

// rmwUnit emits a load/add/store triple on one slot (MoF fodder).
func (g *gen) rmwUnit() {
	s := g.randSlot()
	old := g.b.Load(ir.I64, s, 8)
	kinds := []ir.BinKind{ir.Add, ir.And, ir.Or, ir.Xor}
	r := g.b.Bin(kinds[g.rng.Intn(len(kinds))], ir.I64, old, ir.ConstInt(ir.I64, 1+g.rng.Int63n(255)))
	g.b.Store(s, r, 8)
}

// mapUnit performs a checked lookup-and-increment.
func (g *gen) mapUnit() {
	mp := g.b.MapPtr(g.cnt)
	v := g.b.Call(helpers.MapLookupElem, mp, g.key)
	g.b.Store(g.vslot, v, 8)
	isNull := g.b.ICmp(ir.EQ, v, ir.ConstInt(ir.I64, 0))
	cont := g.b.Block(g.newLabel("mc"))
	bump := g.b.Block(g.newLabel("mb"))
	g.b.CondBr(isNull, cont, bump)
	g.b.SetBlock(bump)
	vp := g.b.Load(ir.Ptr, g.vslot, 8)
	old := g.b.Load(ir.I64, vp, 8)
	inc := g.b.Bin(ir.Add, ir.I64, old, ir.ConstInt(ir.I64, 1))
	g.b.Store(vp, inc, 8)
	g.b.Br(cont)
	g.b.SetBlock(cont)
}

// bswapUnit swaps byte order at a random width.
func (g *gen) bswapUnit() {
	v := g.b.Load(ir.I64, g.randSlot(), 8)
	tys := []ir.Type{ir.I16, ir.I32, ir.I64}
	ty := tys[g.rng.Intn(len(tys))]
	var x ir.Value = v
	if ty != ir.I64 {
		x = g.b.Trunc(ty, v)
	}
	sw := g.b.Bswap(ty, x)
	var wide ir.Value = sw
	if ty != ir.I64 {
		wide = g.b.ZExt(ir.I64, sw)
	}
	g.b.Store(g.randSlot(), wide, 8)
}
