package difftest

import (
	"testing"
	"time"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
)

// TestGuardedDifferentialPipeline extends the differential fuzz check with
// fault injection: for generated programs, a seeded injector provokes a
// failure in one Merlin pass, and the guarded build must still return a
// verifying program that behaves exactly like the baseline. This is the
// guard's end-to-end proof over program shapes no hand-written test covers.
func TestGuardedDifferentialPipeline(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		mod := Generate(seed, GenOptions{UseMaps: seed%2 == 0})
		inj := guard.NewFaultInjector(seed)
		if inj.Mode == guard.FaultStall {
			// Stalls are covered by dedicated tests; skipping them here keeps
			// the fuzz loop fast (each stall burns the full pass budget).
			inj.Mode = guard.FaultPanic
		}
		res, err := core.Build(mod, mod.Funcs[0].Name, core.Options{
			Hook: ebpf.HookTracepoint, MCPU: 3, KernelALU32: true, Verify: true,
			Guard: true, GuardDiffInputs: 5, PassTimeout: 200 * time.Millisecond,
			Injector: inj,
		})
		if err != nil {
			t.Fatalf("seed %d: guarded build aborted: %v", seed, err)
		}
		if !res.Verification.Passed {
			t.Fatalf("seed %d: final program rejected: %v", seed, res.Verification.Err)
		}
		if inj.Fired() > 0 && len(res.PassFailures) == 0 && len(res.Culprits) == 0 {
			t.Fatalf("seed %d: injector fired (%s in %s) but no failure recorded",
				seed, inj.Mode, inj.Pass)
		}
		inputs := guard.Inputs(ebpf.HookTracepoint, 6, seed)
		if derr := guard.DiffPrograms(res.Baseline, res.Prog, inputs); derr != nil {
			t.Fatalf("seed %d: diverges from baseline: %v", seed, derr)
		}
	}
}
