package difftest

import (
	"testing"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/ir"
	"merlin/internal/verifier"
	"merlin/internal/vm"
)

// TestDifferentialPipeline is the repository's end-to-end fuzz check: for
// many random programs, the optimized build must verify under both kernel
// heuristics and behave exactly like the baseline on random inputs.
func TestDifferentialPipeline(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		mod := Generate(seed, GenOptions{UseMaps: seed%2 == 0})
		if err := ir.Validate(mod); err != nil {
			t.Fatalf("seed %d: generated invalid IR: %v", seed, err)
		}
		mcpu := 2
		if seed%3 == 0 {
			mcpu = 3
		}
		res, err := core.Build(mod, mod.Funcs[0].Name, core.Options{
			Hook: ebpf.HookTracepoint, MCPU: mcpu, KernelALU32: true, Verify: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Both kernel heuristics must accept the optimized program.
		if st := verifier.Verify(res.Prog, verifier.Options{Version: verifier.V519}); !st.Passed {
			t.Fatalf("seed %d: v5.19 rejected: %v", seed, st.Err)
		}
		// Differential execution on several inputs.
		base, err := vm.New(res.Baseline, vm.Config{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := vm.New(res.Prog, vm.Config{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			args := make([]uint64, 8)
			for i := range args {
				args[i] = uint64(seed)*2654435761 + uint64(trial*131+i*17)
			}
			ctx := vm.TracepointContext(args...)
			a, _, err1 := base.Run(ctx, nil)
			b, _, err2 := opt.Run(ctx, nil)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d trial %d: error divergence: %v vs %v\n--- baseline ---\n%s--- optimized ---\n%s",
					seed, trial, err1, err2, ebpf.Disassemble(res.Baseline), ebpf.Disassemble(res.Prog))
			}
			if a != b {
				t.Fatalf("seed %d trial %d: result %d vs %d\n--- baseline ---\n%s--- optimized ---\n%s",
					seed, trial, a, b, ebpf.Disassemble(res.Baseline), ebpf.Disassemble(res.Prog))
			}
		}
		for i := range res.Prog.Maps {
			if string(base.Map(i).Backing()) != string(opt.Map(i).Backing()) {
				t.Fatalf("seed %d: map %d diverged", seed, i)
			}
		}
	}
}

// TestGeneratorDeterminism pins the generator's output per seed.
func TestGeneratorDeterminism(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := ir.Print(Generate(seed, GenOptions{UseMaps: true}))
		b := ir.Print(Generate(seed, GenOptions{UseMaps: true}))
		if a != b {
			t.Fatalf("seed %d: non-deterministic generation", seed)
		}
	}
}

// TestGeneratedProgramsShrink checks the optimizer finds work in fuzz
// programs too (they are built from the idioms the paper targets).
func TestGeneratedProgramsShrink(t *testing.T) {
	shrunk := 0
	for seed := int64(0); seed < 20; seed++ {
		mod := Generate(seed, GenOptions{UseMaps: false})
		res, err := core.Build(mod, mod.Funcs[0].Name, core.Options{Hook: ebpf.HookTracepoint, MCPU: 2, KernelALU32: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Prog.NI() < res.Baseline.NI() {
			shrunk++
		}
		if res.Prog.NI() > res.Baseline.NI() {
			t.Fatalf("seed %d: grew %d → %d", seed, res.Baseline.NI(), res.Prog.NI())
		}
	}
	if shrunk < 15 {
		t.Fatalf("only %d/20 fuzz programs shrank", shrunk)
	}
}
