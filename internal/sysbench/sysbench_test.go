package sysbench

import (
	"math"
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

// probe builds a tracing program with n busywork store/load pairs.
func probe(n int) *ebpf.Program {
	insns := []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
	}
	for i := 0; i < n; i++ {
		insns = append(insns,
			ebpf.Mov64Imm(ebpf.R3, int32(i)),
			ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, int16(-8*(i%16+1)), ebpf.R3),
			ebpf.LoadMem(ebpf.SizeDW, ebpf.R4, ebpf.R10, int16(-8*(i%16+1))),
		)
	}
	insns = append(insns, ebpf.Call(helpers.GetCurrentPidTgid), ebpf.Exit())
	return &ebpf.Program{Name: "probe", Hook: ebpf.HookTracepoint, Insns: insns}
}

func TestAttachMeasuresCost(t *testing.T) {
	small, err := Attach([]*ebpf.Program{probe(2)})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Attach([]*ebpf.Program{probe(60)})
	if err != nil {
		t.Fatal(err)
	}
	if small.PerEventCycles <= 0 || big.PerEventCycles <= small.PerEventCycles {
		t.Fatalf("cost ordering wrong: %f vs %f", small.PerEventCycles, big.PerEventCycles)
	}
	if small.PerEventStats.Instructions == 0 {
		t.Fatal("stats not populated")
	}
}

func TestAttachEmptyFails(t *testing.T) {
	if _, err := Attach(nil); err == nil {
		t.Fatal("empty probe set accepted")
	}
}

func TestOverheadReductionEquation(t *testing.T) {
	// Paper Eq. 1 sanity: vanilla 1.0, original probes double the time,
	// optimized probes add only half the overhead → 50% reduction.
	if got := OverheadReduction(1.0, 2.0, 1.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("reduction = %f, want 0.5", got)
	}
	// No overhead at all → full reduction.
	if got := OverheadReduction(1.0, 2.0, 1.0); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("reduction = %f, want 1.0", got)
	}
	// Degenerate: probes add nothing.
	if got := OverheadReduction(1.0, 1.0, 1.0); got != 0 {
		t.Fatalf("degenerate reduction = %f", got)
	}
}

func TestRunMicroOrdering(t *testing.T) {
	orig, err := Attach([]*ebpf.Program{probe(60)})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Attach([]*ebpf.Program{probe(10)})
	if err != nil {
		t.Fatal(err)
	}
	rows := RunMicro(orig, opt)
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WithUS >= r.WithoutUS {
			t.Fatalf("%s: optimized not faster (%.3f vs %.3f)", r.Op.Name, r.WithUS, r.WithoutUS)
		}
		if r.Reduction <= 0 || r.Reduction > 1 {
			t.Fatalf("%s: reduction %.3f out of range", r.Op.Name, r.Reduction)
		}
		if r.VanillaUS != r.Op.VanillaUS {
			t.Fatalf("%s: vanilla mismatch", r.Op.Name)
		}
	}
	// Cheap ops are dominated by probe cost → larger relative reduction for
	// NULL call than for shell process.
	var null, shell MicroResult
	for _, r := range rows {
		switch r.Op.Name {
		case "NULL call":
			null = r
		case "shell process":
			shell = r
		}
	}
	nullOverhead := null.WithoutUS / null.VanillaUS
	shellOverhead := shell.WithoutUS / shell.VanillaUS
	if nullOverhead <= shellOverhead {
		t.Fatalf("probe overhead should dominate cheap ops: %f vs %f", nullOverhead, shellOverhead)
	}
}

func TestRunPostmark(t *testing.T) {
	orig, _ := Attach([]*ebpf.Program{probe(60)})
	opt, _ := Attach([]*ebpf.Program{probe(10)})
	pm := RunPostmark(orig, opt)
	if pm.WithoutS <= pm.VanillaS || pm.WithS <= pm.VanillaS {
		t.Fatalf("postmark overhead missing: %+v", pm)
	}
	if pm.WithS >= pm.WithoutS || pm.Reduction <= 0 {
		t.Fatalf("postmark reduction wrong: %+v", pm)
	}
}

func TestLmbenchTableShape(t *testing.T) {
	ops := LmbenchOps()
	if len(ops) != 15 {
		t.Fatalf("ops = %d", len(ops))
	}
	for _, op := range ops {
		if op.VanillaUS <= 0 || op.Events <= 0 {
			t.Fatalf("bad op %+v", op)
		}
	}
}
