// Package sysbench reproduces the paper's runtime-overhead testbed (§5.4):
// lmbench-style micro operations and a postmark-style macro workload, run
// against a machine with a security suite's eBPF probes attached. Each
// operation triggers a number of probe events; the probes' VM cycle costs
// become the observability overhead, and Equation 1 turns the three
// configurations (vanilla / original probes / Merlin probes) into an
// overhead-reduction percentage.
package sysbench

import (
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// CPUHz is the modelled application-server frequency (Ryzen 6800H class).
const CPUHz = 3.2e9

// MicroOp is one lmbench test: its vanilla latency (µs, straight from
// Table 4's vanilla column) and how many probe events it triggers.
type MicroOp struct {
	Name      string
	VanillaUS float64
	Events    int
}

// LmbenchOps returns the fifteen Table 4 micro tests.
func LmbenchOps() []MicroOp {
	return []MicroOp{
		{"NULL call", 0.06, 2},
		{"NULL I/O", 0.12, 4},
		{"stat", 0.36, 4},
		{"open/close file", 0.79, 8},
		{"signal install", 0.10, 2},
		{"signal handle", 0.83, 4},
		{"fork process", 72.87, 60},
		{"exec process", 321.53, 260},
		{"shell process", 738.76, 560},
		{"file create (0k)", 4.78, 12},
		{"file delete (0k)", 3.02, 8},
		{"file create (10k)", 9.73, 22},
		{"file delete (10k)", 5.00, 12},
		{"AF_UNIX", 3.42, 14},
		{"pipe", 5.24, 12},
	}
}

// PostmarkVanillaS is the vanilla postmark wall time (Table 4).
const PostmarkVanillaS = 58.86

// PostmarkEvents is the number of probe events a postmark run triggers
// (file-server transaction mix: creates, writes, reads, deletes).
const PostmarkEvents = 2_400_000

// ProbeSet is an attached collection of programs with measured per-event
// costs.
type ProbeSet struct {
	machines []*vm.Machine
	// PerEventCycles is the average cycles one event costs across the
	// attached probe mix.
	PerEventCycles float64
	// PerEventStats aggregates the VM counters of one averaged event.
	PerEventStats vm.Stats
}

// Attach loads a representative sample of suite programs and measures their
// per-event cost with warmed caches. Real deployments attach hundreds of
// probes but each syscall fires only its own handlers; the sample models
// the handlers on the hot paths.
func Attach(progs []*ebpf.Program) (*ProbeSet, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("sysbench: empty probe set")
	}
	ps := &ProbeSet{}
	var total vm.Stats
	events := 0
	for _, p := range progs {
		m, err := vm.New(p, vm.Config{Seed: 77, UseHW: true})
		if err != nil {
			return nil, err
		}
		ps.machines = append(ps.machines, m)
		// Warm.
		for w := 0; w < 4; w++ {
			ctx := vm.TracepointContext(uint64(w), 100, 2000, 3, 4, 5, 6, 7)
			if _, _, err := m.Run(ctx, nil); err != nil {
				return nil, fmt.Errorf("sysbench: %s: %w", p.Name, err)
			}
		}
		for e := 0; e < 8; e++ {
			ctx := vm.TracepointContext(uint64(e%6), uint64(40+e), 4096, 7, 9, 11, 13, 15)
			_, st, err := m.Run(ctx, nil)
			if err != nil {
				return nil, fmt.Errorf("sysbench: %s: %w", p.Name, err)
			}
			total.Add(st)
			events++
		}
	}
	ps.PerEventCycles = float64(total.Cycles) / float64(events)
	ps.PerEventStats = vm.Stats{
		Instructions: total.Instructions / uint64(events),
		Cycles:       total.Cycles / uint64(events),
		CacheRefs:    total.CacheRefs / uint64(events),
		CacheMisses:  total.CacheMisses / uint64(events),
		Branches:     total.Branches / uint64(events),
		BranchMisses: total.BranchMisses / uint64(events),
	}
	return ps, nil
}

// perEventUS converts the probe cost to microseconds.
func (ps *ProbeSet) perEventUS() float64 {
	return ps.PerEventCycles / CPUHz * 1e6
}

// MicroResult is one Table 4 row for one suite.
type MicroResult struct {
	Op        MicroOp
	VanillaUS float64
	WithoutUS float64 // original probes attached
	WithUS    float64 // Merlin-optimized probes attached
	Reduction float64 // Equation 1
}

// OverheadReduction implements Equation 1.
func OverheadReduction(vanilla, without, with float64) float64 {
	if without <= vanilla {
		return 0
	}
	return 1 - (with/vanilla-1)/(without/vanilla-1)
}

// RunMicro evaluates the lmbench table for a pair of probe sets.
func RunMicro(orig, merlin *ProbeSet) []MicroResult {
	var out []MicroResult
	for _, op := range LmbenchOps() {
		wo := op.VanillaUS + float64(op.Events)*orig.perEventUS()
		w := op.VanillaUS + float64(op.Events)*merlin.perEventUS()
		out = append(out, MicroResult{
			Op:        op,
			VanillaUS: op.VanillaUS,
			WithoutUS: wo,
			WithUS:    w,
			Reduction: OverheadReduction(op.VanillaUS, wo, w),
		})
	}
	return out
}

// MacroResult is the postmark row.
type MacroResult struct {
	VanillaS  float64
	WithoutS  float64
	WithS     float64
	Reduction float64
}

// RunPostmark evaluates the postmark macro test.
func RunPostmark(orig, merlin *ProbeSet) MacroResult {
	wo := PostmarkVanillaS + float64(PostmarkEvents)*orig.perEventUS()/1e6
	w := PostmarkVanillaS + float64(PostmarkEvents)*merlin.perEventUS()/1e6
	return MacroResult{
		VanillaS:  PostmarkVanillaS,
		WithoutS:  wo,
		WithS:     w,
		Reduction: OverheadReduction(PostmarkVanillaS, wo, w),
	}
}
