package vm

import (
	"encoding/binary"
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

func run(t *testing.T, insns []ebpf.Instruction, ctx, pkt []byte) (int64, Stats) {
	t.Helper()
	m, err := New(&ebpf.Program{Name: "t", Insns: insns}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ret, st, err := m.Run(ctx, pkt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ret, st
}

func TestALUBasics(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 10),
		ebpf.ALU64Imm(ebpf.ALUMul, ebpf.R1, 7),
		ebpf.ALU64Imm(ebpf.ALUSub, ebpf.R1, 5),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 65 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestALU32ZeroExtends(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R0, -1), // all ones
		ebpf.Mov32Reg(ebpf.R0, ebpf.R0),
		ebpf.Exit(),
	}, nil, nil)
	if uint64(ret) != 0xffffffff {
		t.Fatalf("ret = %#x, want 0xffffffff", uint64(ret))
	}
}

func TestDivModByZero(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 7),
		ebpf.Mov64Imm(ebpf.R2, 0),
		ebpf.ALU64Reg(ebpf.ALUDiv, ebpf.R1, ebpf.R2), // → 0
		ebpf.Mov64Imm(ebpf.R3, 9),
		ebpf.ALU64Reg(ebpf.ALUMod, ebpf.R3, ebpf.R2), // → 9 (unchanged)
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R0, ebpf.R3),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 9 {
		t.Fatalf("ret = %d, want 9", ret)
	}
}

func TestStackLoadStore(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 0x1234),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1),
		ebpf.LoadMem(ebpf.SizeH, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 0x1234 {
		t.Fatalf("ret = %#x", ret)
	}
}

func TestStoreImmAndByteAssembly(t *testing.T) {
	// st.imm a u16; read back two bytes little-endian.
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.StoreImm(ebpf.SizeH, ebpf.R10, -4, 0xbeef),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R1, ebpf.R10, -4),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R2, ebpf.R10, -3),
		ebpf.ALU64Imm(ebpf.ALULsh, ebpf.R2, 8),
		ebpf.ALU64Reg(ebpf.ALUOr, ebpf.R1, ebpf.R2),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 0xbeef {
		t.Fatalf("ret = %#x", ret)
	}
}

func TestXDPContextAndPacketAccess(t *testing.T) {
	pkt := []byte{0xaa, 0xbb, 0xcc, 0xdd}
	ctx := BuildXDPContext(len(pkt))
	// Load data pointer from ctx, bounds-check, read first byte.
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0), // data
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 8), // data_end
		ebpf.Mov64Reg(ebpf.R4, ebpf.R2),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R4, 1),
		ebpf.JumpReg(ebpf.JumpGT, ebpf.R4, ebpf.R3, 2), // out of bounds → drop
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R2, 0),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	}, ctx, pkt)
	if ret != 0xaa {
		t.Fatalf("ret = %#x", ret)
	}
}

func TestOutOfBoundsAccessFaults(t *testing.T) {
	m, err := New(&ebpf.Program{Name: "t", Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R2, 100), // past packet end
		ebpf.Exit(),
	}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pkt := []byte{1, 2, 3, 4}
	if _, _, err := m.Run(BuildXDPContext(len(pkt)), pkt); err == nil {
		t.Fatal("expected fault")
	}
}

func TestAtomicAdd(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 40),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R2, 2),
		ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R10, -8, ebpf.R2),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 42 {
		t.Fatalf("ret = %d", ret)
	}
}

func TestAtomicVariants(t *testing.T) {
	cases := []struct {
		op   ebpf.AtomicOp
		want int64
	}{
		{ebpf.AtomicOr, 0xf0 | 0x0f},
		{ebpf.AtomicAnd, 0xf0 & 0x3f},
		{ebpf.AtomicXor, 0xf0 ^ 0x3f},
	}
	for _, c := range cases {
		arg := int32(0x0f)
		if c.op != ebpf.AtomicOr {
			arg = 0x3f
		}
		ret, _ := run(t, []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R1, 0xf0),
			ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R1),
			ebpf.Mov64Imm(ebpf.R2, arg),
			ebpf.Atomic(ebpf.SizeW, c.op, ebpf.R10, -4, ebpf.R2),
			ebpf.LoadMem(ebpf.SizeW, ebpf.R0, ebpf.R10, -4),
			ebpf.Exit(),
		}, nil, nil)
		if ret != c.want {
			t.Errorf("%v: ret = %#x, want %#x", c.op, ret, c.want)
		}
	}
}

func TestJumpsAndLoop(t *testing.T) {
	// Sum 1..5 with a backwards jump.
	ret, st := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 5),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R0, ebpf.R1), // loop:
		ebpf.ALU64Imm(ebpf.ALUSub, ebpf.R1, 1),
		ebpf.JumpImm(ebpf.JumpGT, ebpf.R1, 0, -3),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 15 {
		t.Fatalf("ret = %d", ret)
	}
	if st.Branches != 5 {
		t.Fatalf("branches = %d, want 5", st.Branches)
	}
}

func TestJump32ComparesLowHalf(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R1, 0x1_00000005),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Jump32Imm(ebpf.JumpEq, ebpf.R1, 5, 1),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 1 {
		t.Fatal("jmp32 must ignore upper bits")
	}
}

func TestSignedCompare(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, -5),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.JumpImm(ebpf.JumpSLT, ebpf.R1, 0, 1),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 1 {
		t.Fatal("-5 s< 0 should be taken")
	}
}

func TestWideImmAndBranchOverIt(t *testing.T) {
	// Branch over a lddw: offsets are slot-based.
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 1),
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R1, 1, 3), // skip lddw + mov
		ebpf.LoadImm64(ebpf.R0, 0x123456789),
		ebpf.Mov64Imm(ebpf.R0, 7),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 0 {
		t.Fatalf("ret = %d, want 0 (r0 untouched)", ret)
	}
}

func TestStepLimit(t *testing.T) {
	m, err := New(&ebpf.Program{Name: "t", Insns: []ebpf.Instruction{
		ebpf.Jump(-1),
		ebpf.Exit(),
	}}, Config{StepLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Run(nil, nil); err == nil {
		t.Fatal("infinite loop must hit the step limit")
	}
}

func mapProg() *ebpf.Program {
	return &ebpf.Program{
		Name: "m",
		Insns: []ebpf.Instruction{
			// key = 1 at fp-4
			ebpf.Mov64Imm(ebpf.R1, 1),
			ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R1),
			ebpf.LoadMapPtr(ebpf.R1, 0),
			ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
			ebpf.Call(helpers.MapLookupElem),
			ebpf.JumpImm(ebpf.JumpNE, ebpf.R0, 0, 1),
			ebpf.Exit(),
			// *value += 5
			ebpf.Mov64Imm(ebpf.R1, 5),
			ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R0, 0, ebpf.R1),
			ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R0, 0),
			ebpf.Exit(),
		},
		Maps: []ebpf.MapSpec{{Name: "counts", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 4}},
	}
}

func TestMapLookupAndIncrement(t *testing.T) {
	m, err := New(mapProg(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		ret, _, err := m.Run(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ret != int64(5*i) {
			t.Fatalf("run %d: ret = %d, want %d", i, ret, 5*i)
		}
	}
	// The map's backing store has the value at index 1.
	got := binary.LittleEndian.Uint64(m.Map(0).Backing()[8:])
	if got != 15 {
		t.Fatalf("map value = %d", got)
	}
}

func TestHelperClobbersCallerRegs(t *testing.T) {
	m, err := New(&ebpf.Program{Name: "t", Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 99),
		ebpf.Call(helpers.KtimeGetNS),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1), // r1 is garbage now
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R0, 99, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ret, _, err := m.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 0 {
		t.Fatal("r1 must be clobbered across helper calls")
	}
}

func TestPerfEventOutput(t *testing.T) {
	prog := &ebpf.Program{
		Name: "p",
		Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R3, 0x11),
			ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R3),
			// perf_event_output(ctx, map, flags, data, size)
			ebpf.Mov64Reg(ebpf.R1, ebpf.R10), // ctx arg unused by model
			ebpf.LoadMapPtr(ebpf.R2, 0),
			ebpf.Mov64Imm(ebpf.R3, 0),
			ebpf.Mov64Reg(ebpf.R4, ebpf.R10),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R4, -8),
			ebpf.Mov64Imm(ebpf.R5, 8),
			ebpf.Call(helpers.PerfEventOutput),
			ebpf.Exit(),
		},
		Maps: []ebpf.MapSpec{{Name: "events", Kind: 3, KeySize: 0, ValueSize: 64, MaxEntries: 16}},
	}
	m, err := New(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Run(nil, nil); err != nil {
		t.Fatal(err)
	}
	back := m.Map(0).Backing()
	if back[0] != 0x11 {
		t.Fatalf("ring contents = %v", back[:8])
	}
}

func TestStatsCountCyclesAndInstructions(t *testing.T) {
	_, st := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.LoadImm64(ebpf.R1, 5),
		ebpf.Exit(),
	}, nil, nil)
	if st.Instructions != 4 { // mov(1) + lddw(2) + exit(1)
		t.Fatalf("instructions = %d, want 4", st.Instructions)
	}
	if st.Cycles == 0 {
		t.Fatal("cycles not counted")
	}
}

func TestHWModelsEngage(t *testing.T) {
	prog := &ebpf.Program{Name: "h", Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 7),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	}}
	m, err := New(prog, Config{UseHW: true})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := m.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheRefs != 2 || st.CacheMisses == 0 {
		t.Fatalf("cache refs=%d misses=%d", st.CacheRefs, st.CacheMisses)
	}
	// Second run: cache is warm.
	_, st2, err := m.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheMisses != 0 {
		t.Fatalf("warm run missed %d times", st2.CacheMisses)
	}
	if m.Total.Instructions != st.Instructions+st2.Instructions {
		t.Fatal("Total not accumulated")
	}
}

func TestPrandomDeterminism(t *testing.T) {
	mk := func() uint64 {
		m, _ := New(&ebpf.Program{Name: "r", Insns: []ebpf.Instruction{
			ebpf.Call(helpers.GetPrandomU32),
			ebpf.Exit(),
		}}, Config{Seed: 42})
		ret, _, err := m.Run(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return uint64(ret)
	}
	if mk() != mk() {
		t.Fatal("same seed must give same sequence")
	}
}
