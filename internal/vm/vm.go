// Package vm executes eBPF programs with a deterministic cycle cost model
// and optional microarchitecture models (cache, branch predictor). It plays
// the role of the kernel's interpreter/JIT in the paper's testbed: runtime
// overhead, throughput and latency experiments are all driven by the cycle
// counts this machine reports.
package vm

import (
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/hw"
	"merlin/internal/maps"
)

// Synthetic address-space bases. Regions are disjoint and sparse so stray
// pointer arithmetic faults instead of silently aliasing.
const (
	stackBase  = 0x7fff_0000_0200 // r10; valid bytes are [base-512, base)
	ctxBase    = 0x1000_0000_0000
	pktBase    = 0x2000_0000_0000
	kmemBase   = 0x3000_0000_0000
	mapHandle  = 0x4000_0000_0000 // opaque map handles (not dereferenceable)
	mapValBase = 0x5000_0000_0000
	mapValStep = 0x1_0000_0000
)

// StackSize is the per-program stack limit, as in the kernel.
const StackSize = 512

// CostModel assigns cycle costs per instruction class. Helper costs come
// from the helpers table.
type CostModel struct {
	ALU        uint64
	WideImm    uint64 // lddw
	Load       uint64
	Store      uint64
	Atomic     uint64
	Branch     uint64
	CallBase   uint64
	CacheMiss  uint64 // added per missing memory access
	BranchMiss uint64 // added per mispredicted branch
}

// DefaultCosts mirrors the relative latencies the paper leans on (Agner Fog
// tables): single-cycle ALU, multi-cycle loads, expensive locked ops that
// are still cheaper than load+op+store round trips, and costly helpers.
func DefaultCosts() CostModel {
	return CostModel{
		ALU:        1,
		WideImm:    2,
		Load:       4,
		Store:      2,
		Atomic:     7,
		Branch:     1,
		CallBase:   10,
		CacheMiss:  30,
		BranchMiss: 14,
	}
}

// Stats are the per-run (or accumulated) execution counters.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	CacheRefs    uint64
	CacheMisses  uint64
	Branches     uint64
	BranchMisses uint64
	HelperCalls  uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Instructions += other.Instructions
	s.Cycles += other.Cycles
	s.CacheRefs += other.CacheRefs
	s.CacheMisses += other.CacheMisses
	s.Branches += other.Branches
	s.BranchMisses += other.BranchMisses
	s.HelperCalls += other.HelperCalls
}

// Config parameterizes a Machine.
type Config struct {
	Costs CostModel
	// NCPU sizes per-CPU maps; CPU selects the executing processor.
	NCPU int
	CPU  int
	// Seed drives get_prandom_u32 and ktime.
	Seed uint64
	// UseHW enables the cache and branch-predictor models.
	UseHW bool
	// StepLimit aborts runaway programs (default 1<<22 steps).
	StepLimit int
	// Metrics, when set, receives per-run telemetry (run/instruction/cycle
	// counters, cycle and instruction histograms, fault kinds). Recording
	// is lock-free and allocation-free; one Metrics is typically shared by
	// every machine of a deployment.
	Metrics *Metrics
}

// Machine holds a loaded program plus its maps and microarchitectural state.
// State persists across runs (warm caches, populated maps), matching a
// long-running attached program.
type Machine struct {
	prog  *ebpf.Program
	cfg   Config
	maps  []maps.Map
	Cache *hw.Cache
	Pred  *hw.BranchPredictor

	// Kmem is the synthetic kernel memory probe_read reads from
	// (task structs, filenames, ...). Harnesses populate it per event.
	Kmem []byte

	// slotOf / elemAt are the branch-resolution tables, computed once at
	// load time (the program is immutable) so Run allocates nothing.
	slotOf []int
	elemAt map[int]int

	// mapKeySz / mapValSz cache per-map key and value sizes so the hot
	// map helpers skip the Spec() interface call (and its struct copy).
	mapKeySz []int
	mapValSz []int

	// code is the pre-decoded direct-threaded form (decode.go), compiled
	// once at load, with rarely-touched per-element details split into the
	// parallel cold table. nil code pins the reference switch interpreter
	// (RefMachine, or the fallback when decoding rejects a program). fr is
	// the fast engine's register file and accounting state, embedded here
	// so runs allocate nothing.
	code []uop
	cold []coldOp
	fr   frame

	rng   uint64
	ktime uint64
	stack [StackSize]byte

	// Accumulated counters across all runs.
	Total Stats
}

// New loads prog into a fresh machine, instantiating its maps.
func New(prog *ebpf.Program, cfg Config) (*Machine, error) {
	if cfg.NCPU <= 0 {
		cfg.NCPU = 1
	}
	if cfg.StepLimit <= 0 {
		cfg.StepLimit = 1 << 22
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	m := &Machine{prog: prog, cfg: cfg, rng: cfg.Seed*2654435761 + 1, Kmem: make([]byte, 4096)}
	m.slotOf = prog.SlotIndex()
	m.elemAt = make(map[int]int, len(prog.Insns))
	for i := range prog.Insns {
		m.elemAt[m.slotOf[i]] = i
	}
	for _, spec := range prog.Maps {
		mp, err := maps.New(spec, cfg.NCPU)
		if err != nil {
			return nil, err
		}
		m.maps = append(m.maps, mp)
		m.mapKeySz = append(m.mapKeySz, spec.KeySize)
		m.mapValSz = append(m.mapValSz, spec.ValueSize)
	}
	if cfg.UseHW {
		m.Cache = hw.NewL1D()
		m.Pred = hw.NewBranchPredictor()
	}
	// Pre-decode into the direct-threaded form. Decoding never rejects a
	// program the reference interpreter accepts (would-be faults compile to
	// fault closures), but if it ever does, the machine silently serves
	// with the reference interpreter instead.
	if code, cold, err := compile(m); err == nil {
		m.code, m.cold = code, cold
	}
	return m, nil
}

// Map returns the instantiated map at index i (for harness inspection).
func (m *Machine) Map(i int) maps.Map { return m.maps[i] }

// NumMaps returns the number of instantiated maps.
func (m *Machine) NumMaps() int { return len(m.maps) }

// MapStates serializes every map's contents in declaration order, for
// journaling and state transfer at promotion.
func (m *Machine) MapStates() [][]byte {
	out := make([][]byte, len(m.maps))
	for i, mp := range m.maps {
		out[i] = maps.SaveState(mp)
	}
	return out
}

// SetMapStates restores contents produced by MapStates. The map list must
// match (same count, same specs) — it does for a program journaled and
// reloaded unchanged.
func (m *Machine) SetMapStates(states [][]byte) error {
	if len(states) != len(m.maps) {
		return fmt.Errorf("vm: %d map states for %d maps", len(states), len(m.maps))
	}
	for i, st := range states {
		if err := maps.LoadState(m.maps[i], st); err != nil {
			return fmt.Errorf("vm: map %d (%s): %w", i, m.maps[i].Spec().Name, err)
		}
	}
	return nil
}

// TransferMapsFrom copies the contents of every map in src that has a
// same-named, identically-specced map in m. Maps without a match (the new
// program added or dropped one) are left as they are; the count of maps
// actually transferred is returned. The lifecycle manager calls this at
// promotion so a hot-swapped program inherits the incumbent's counters.
func (m *Machine) TransferMapsFrom(src *Machine) (int, error) {
	n := 0
	for _, dst := range m.maps {
		s := src.MapByName(dst.Spec().Name)
		if s == nil || s.Spec() != dst.Spec() {
			continue
		}
		if err := maps.Transfer(dst, s); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// MapByName returns the named map, or nil.
func (m *Machine) MapByName(name string) maps.Map {
	for _, mp := range m.maps {
		if mp.Spec().Name == name {
			return mp
		}
	}
	return nil
}

// Program returns the loaded program.
func (m *Machine) Program() *ebpf.Program { return m.prog }

// region resolves a VM address range to backing memory.
func (m *Machine) region(addr uint64, size int, ctx, pkt []byte) ([]byte, int, error) {
	end := addr + uint64(size)
	switch {
	case addr >= stackBase-StackSize && end <= stackBase:
		return m.stack[:], int(addr - (stackBase - StackSize)), nil
	case addr >= ctxBase && end <= ctxBase+uint64(len(ctx)):
		return ctx, int(addr - ctxBase), nil
	case addr >= pktBase && end <= pktBase+uint64(len(pkt)):
		return pkt, int(addr - pktBase), nil
	case addr >= kmemBase && end <= kmemBase+uint64(len(m.Kmem)):
		return m.Kmem, int(addr - kmemBase), nil
	case addr >= mapValBase:
		idx := int((addr - mapValBase) / mapValStep)
		if idx < len(m.maps) {
			back := m.maps[idx].Backing()
			off := (addr - mapValBase) % mapValStep
			if off+uint64(size) <= uint64(len(back)) {
				return back, int(off), nil
			}
		}
	}
	return nil, 0, &RuntimeError{Kind: FaultBadMemory, PC: -1,
		Detail: fmt.Sprintf("bad memory access at %#x size %d", addr, size)}
}

// HelperState snapshots the nondeterministic helper state (the PRNG behind
// get_prandom_u32 and the synthetic ktime clock).
func (m *Machine) HelperState() (rng, ktime uint64) { return m.rng, m.ktime }

// SetHelperState overwrites the helper state. The lifecycle manager uses it
// to replay the incumbent's helper stream into a mirrored candidate, so a
// return-value divergence means the programs differ — not their dice rolls.
func (m *Machine) SetHelperState(rng, ktime uint64) { m.rng, m.ktime = rng, ktime }

func (m *Machine) prandom() uint64 {
	// xorshift64*
	m.rng ^= m.rng >> 12
	m.rng ^= m.rng << 25
	m.rng ^= m.rng >> 27
	return m.rng * 2685821657736338717
}
