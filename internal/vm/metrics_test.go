package vm

import (
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/metrics"
)

func passProg() *ebpf.Program {
	return &ebpf.Program{Name: "pass", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R1, 0),
		ebpf.Mov64Imm(ebpf.R0, 2),
		ebpf.Exit(),
	}}
}

func badMemProg() *ebpf.Program {
	return &ebpf.Program{Name: "boom", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 4096),
		ebpf.Exit(),
	}}
}

func TestRunMetricsCounters(t *testing.T) {
	reg := metrics.New()
	mm := NewMetrics(reg)
	m, err := New(passProg(), Config{Metrics: mm})
	if err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, 64)
	ctx := BuildXDPContext(len(pkt))
	var wantInsns, wantCycles uint64
	const runs = 5
	for i := 0; i < runs; i++ {
		_, st, err := m.Run(ctx, pkt)
		if err != nil {
			t.Fatal(err)
		}
		wantInsns += st.Instructions
		wantCycles += st.Cycles
	}

	snap := reg.Snapshot()
	for key, want := range map[string]int64{
		"merlin_vm_runs_total":         runs,
		"merlin_vm_instructions_total": int64(wantInsns),
		"merlin_vm_cycles_total":       int64(wantCycles),
		"merlin_vm_run_cycles_count":   runs,
		"merlin_vm_run_cycles_sum":     int64(wantCycles),
	} {
		if got := snap[key]; got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	if got := snap[`merlin_vm_faults_total{kind="bad-memory"}`]; got != 0 {
		t.Errorf("clean runs recorded %d bad-memory faults", got)
	}
}

func TestRunMetricsFaultKinds(t *testing.T) {
	reg := metrics.New()
	mm := NewMetrics(reg)
	m, err := New(badMemProg(), Config{Metrics: mm})
	if err != nil {
		t.Fatal(err)
	}
	pkt := make([]byte, 16)
	ctx := BuildXDPContext(len(pkt))
	if _, _, err := m.Run(ctx, pkt); err == nil {
		t.Fatal("bad-memory program did not fault")
	}
	snap := reg.Snapshot()
	if got := snap[`merlin_vm_faults_total{kind="bad-memory"}`]; got != 1 {
		t.Fatalf("bad-memory faults = %d, want 1 (snapshot %v)", got, snap)
	}
	if got := snap["merlin_vm_runs_total"]; got != 1 {
		t.Fatalf("faulted run not counted: runs = %d", got)
	}
}

// TestRunMetricsLastFaultPC: the exemplar gauge pins the most recent fault of
// each kind to its instruction index, and later faults of the same kind
// overwrite it.
func TestRunMetricsLastFaultPC(t *testing.T) {
	reg := metrics.New()
	mm := NewMetrics(reg)

	run := func(p *ebpf.Program) {
		t.Helper()
		m, err := New(p, Config{Metrics: mm})
		if err != nil {
			t.Fatal(err)
		}
		pkt := make([]byte, 16)
		if _, _, err := m.Run(BuildXDPContext(len(pkt)), pkt); err == nil {
			t.Fatal("program did not fault")
		}
	}

	run(badMemProg()) // faults at insn 0
	if got := reg.Snapshot()[`merlin_vm_last_fault_pc{kind="bad-memory"}`]; got != 0 {
		t.Errorf("last bad-memory fault pc = %d, want 0", got)
	}

	// Same kind, different pc: the gauge tracks the most recent fault.
	run(&ebpf.Program{Name: "boom2", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, 2),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 4096),
		ebpf.Exit(),
	}})
	if got := reg.Snapshot()[`merlin_vm_last_fault_pc{kind="bad-memory"}`]; got != 1 {
		t.Errorf("last bad-memory fault pc = %d, want 1", got)
	}
}

// TestRunMetricsAllocationFree is the packet-path guarantee: attaching
// metrics to a machine must not add a single per-run heap allocation over an
// uninstrumented machine.
func TestRunMetricsAllocationFree(t *testing.T) {
	pkt := make([]byte, 64)
	ctx := BuildXDPContext(len(pkt))

	bare, err := New(passProg(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := New(passProg(), Config{Metrics: NewMetrics(metrics.New())})
	if err != nil {
		t.Fatal(err)
	}

	runAllocs := func(m *Machine) float64 {
		return testing.AllocsPerRun(200, func() {
			if _, _, err := m.Run(ctx, pkt); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := runAllocs(bare)
	withMetrics := runAllocs(instrumented)
	if withMetrics > base {
		t.Fatalf("metrics add %.1f allocations per run (bare %.1f, instrumented %.1f)",
			withMetrics-base, base, withMetrics)
	}
}
