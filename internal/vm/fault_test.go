package vm

import (
	"testing"

	"merlin/internal/ebpf"
)

// faultRun executes insns and returns the typed fault, failing if none fires.
func faultRun(t *testing.T, insns []ebpf.Instruction, cfg Config, ctx, pkt []byte) *RuntimeError {
	t.Helper()
	m, err := New(&ebpf.Program{Name: "fault", Insns: insns}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rerr := m.Run(ctx, pkt)
	if rerr == nil {
		t.Fatal("program expected to fault")
	}
	re, ok := AsRuntimeError(rerr)
	if !ok {
		t.Fatalf("fault is not a RuntimeError: %v", rerr)
	}
	return re
}

func TestFaultStepLimit(t *testing.T) {
	re := faultRun(t, []ebpf.Instruction{
		ebpf.Jump(-1),
		ebpf.Exit(),
	}, Config{StepLimit: 64}, nil, nil)
	if re.Kind != FaultStepLimit {
		t.Fatalf("kind = %s, want %s", re.Kind, FaultStepLimit)
	}
}

func TestFaultBadMemoryCarriesPC(t *testing.T) {
	re := faultRun(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 4096), // ctx is 16 bytes
		ebpf.Exit(),
	}, Config{}, BuildXDPContext(64), make([]byte, 64))
	if re.Kind != FaultBadMemory {
		t.Fatalf("kind = %s, want %s", re.Kind, FaultBadMemory)
	}
	if re.PC != 1 {
		t.Fatalf("pc = %d, want 1", re.PC)
	}
}

func TestFaultBadPC(t *testing.T) {
	re := faultRun(t, []ebpf.Instruction{
		ebpf.Jump(100),
		ebpf.Exit(),
	}, Config{}, nil, nil)
	if re.Kind != FaultBadPC {
		t.Fatalf("kind = %s, want %s", re.Kind, FaultBadPC)
	}
}

func TestFaultHelperUnknown(t *testing.T) {
	re := faultRun(t, []ebpf.Instruction{
		ebpf.Call(9999),
		ebpf.Exit(),
	}, Config{}, nil, nil)
	if re.Kind != FaultHelper {
		t.Fatalf("kind = %s, want %s", re.Kind, FaultHelper)
	}
	if re.PC != 0 {
		t.Fatalf("pc = %d, want 0", re.PC)
	}
}
