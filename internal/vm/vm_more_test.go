package vm

import (
	"strings"
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

func TestBswapExecution(t *testing.T) {
	bswap := func(dst ebpf.Register, bits int32) ebpf.Instruction {
		return ebpf.Instruction{
			Opcode: uint8(ebpf.ClassALU) | uint8(ebpf.SourceX) | uint8(ebpf.ALUEnd),
			Dst:    dst, Imm: bits,
		}
	}
	cases := []struct {
		in   int64
		bits int32
		want uint64
	}{
		{0x1234, 16, 0x3412},
		{0x12345678, 32, 0x78563412},
		{0x0102030405060708, 64, 0x0807060504030201},
		{-1, 16, 0xffff}, // swap truncates to its width and zero-extends
	}
	for _, c := range cases {
		ret, _ := run(t, []ebpf.Instruction{
			ebpf.LoadImm64(ebpf.R0, c.in),
			bswap(ebpf.R0, c.bits),
			ebpf.Exit(),
		}, nil, nil)
		if uint64(ret) != c.want {
			t.Errorf("bswap%d(%#x) = %#x, want %#x", c.bits, c.in, uint64(ret), c.want)
		}
	}
}

func TestALU32Variants(t *testing.T) {
	// arsh32 on a negative 32-bit value keeps the sign within 32 bits and
	// zero-extends the result.
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov32Imm(ebpf.R0, -8), // w0 = 0xfffffff8
		ebpf.ALU32Imm(ebpf.ALUArsh, ebpf.R0, 2),
		ebpf.Exit(),
	}, nil, nil)
	if uint64(ret) != 0xfffffffe {
		t.Fatalf("arsh32 = %#x, want 0xfffffffe", uint64(ret))
	}
	// div32/mod32 operate on the low halves only.
	ret, _ = run(t, []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R0, 0xf_0000_0064), // low half 100
		ebpf.ALU32Imm(ebpf.ALUDiv, ebpf.R0, 7),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 14 {
		t.Fatalf("div32 = %d, want 14", ret)
	}
}

func TestMoreHelpers(t *testing.T) {
	p := &ebpf.Program{Name: "h", Hook: ebpf.HookKprobe, Insns: []ebpf.Instruction{
		ebpf.Call(helpers.GetSmpProcessorID),
		ebpf.Mov64Reg(ebpf.R6, ebpf.R0),
		ebpf.Call(helpers.GetCurrentPidTgid),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R6, ebpf.R0),
		// get_current_comm(fp-16, 8)
		ebpf.Mov64Reg(ebpf.R1, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, -16),
		ebpf.Mov64Imm(ebpf.R2, 8),
		ebpf.Call(helpers.GetCurrentComm),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R7, ebpf.R10, -16),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R6, ebpf.R7),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R6),
		ebpf.Exit(),
	}}
	m, err := New(p, Config{CPU: 3})
	if err != nil {
		t.Fatal(err)
	}
	ret, _, err := m.Run(make([]byte, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(3) + (4242<<32 | 4242) + int64('c')
	if ret != want {
		t.Fatalf("ret = %d, want %d", ret, want)
	}
}

func TestProbeReadFromKmem(t *testing.T) {
	p := &ebpf.Program{Name: "pr", Hook: ebpf.HookKprobe, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 0), // src addr from ctx
		ebpf.Mov64Reg(ebpf.R1, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, -8),
		ebpf.Mov64Imm(ebpf.R2, 8),
		ebpf.Call(helpers.ProbeRead),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	}}
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Kmem[128:], []byte{0xaa, 0xbb, 0, 0, 0, 0, 0, 0})
	ctx := TracepointContext(KmemAddr(128))
	ret, _, err := m.Run(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(ret) != 0xbbaa {
		t.Fatalf("ret = %#x", uint64(ret))
	}
	// probe_read of a bad address returns -1 without faulting.
	ctx = TracepointContext(0xdead_0000)
	ret, _, err = m.Run(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 0 { // r0 from the final load: dst untouched on failed read
		t.Logf("ret = %d (dst retains old contents)", ret)
	}
}

func TestRedirectHelpers(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 3),
		ebpf.Mov64Imm(ebpf.R2, 0),
		ebpf.Call(helpers.Redirect),
		ebpf.Exit(),
	}, nil, nil)
	if ret != ebpf.XDPRedirect {
		t.Fatalf("redirect = %d", ret)
	}
}

func TestTracePrintk(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R3, 0),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R3),
		ebpf.Mov64Reg(ebpf.R1, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, -8),
		ebpf.Mov64Imm(ebpf.R2, 8),
		ebpf.Call(helpers.TracePrintk),
		ebpf.Exit(),
	}, nil, nil)
	if ret != 8 {
		t.Fatalf("trace_printk = %d", ret)
	}
}

func TestUnknownHelperFails(t *testing.T) {
	m, _ := New(&ebpf.Program{Name: "u", Insns: []ebpf.Instruction{
		ebpf.Call(424242),
		ebpf.Exit(),
	}}, Config{})
	if _, _, err := m.Run(nil, nil); err == nil || !strings.Contains(err.Error(), "unknown helper") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadMapHandleFails(t *testing.T) {
	m, _ := New(&ebpf.Program{
		Name: "bm",
		Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R1, 5), // not a map handle
			ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
			ebpf.Mov64Imm(ebpf.R3, 0),
			ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R3),
			ebpf.Call(helpers.MapLookupElem),
			ebpf.Exit(),
		},
		Maps: []ebpf.MapSpec{{Name: "m", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 1}},
	}, Config{})
	if _, _, err := m.Run(nil, nil); err == nil || !strings.Contains(err.Error(), "bad map handle") {
		t.Fatalf("err = %v", err)
	}
}

func TestNegAndArsh64(t *testing.T) {
	ret, _ := run(t, []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, 5),
		{Opcode: uint8(ebpf.ClassALU64) | uint8(ebpf.ALUNeg), Dst: ebpf.R0},
		ebpf.ALU64Imm(ebpf.ALUArsh, ebpf.R0, 1),
		ebpf.Exit(),
	}, nil, nil)
	if ret != -3 { // -5 >> 1 arithmetic
		t.Fatalf("ret = %d, want -3", ret)
	}
}

func TestMapByName(t *testing.T) {
	m, _ := New(&ebpf.Program{
		Name:  "n",
		Insns: []ebpf.Instruction{ebpf.Mov64Imm(ebpf.R0, 0), ebpf.Exit()},
		Maps:  []ebpf.MapSpec{{Name: "stats", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 1}},
	}, Config{})
	if m.MapByName("stats") == nil || m.MapByName("nope") != nil {
		t.Fatal("MapByName broken")
	}
	if m.Program().Name != "n" {
		t.Fatal("Program() broken")
	}
}
