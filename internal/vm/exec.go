package vm

import (
	"encoding/binary"
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

// BuildXDPContext returns the xdp_md-style context for a packet: two 64-bit
// fields holding the packet data and data_end addresses.
func BuildXDPContext(pktLen int) []byte {
	ctx := make([]byte, 16)
	binary.LittleEndian.PutUint64(ctx[0:], pktBase)
	binary.LittleEndian.PutUint64(ctx[8:], pktBase+uint64(pktLen))
	return ctx
}

// BuildXDPContextInto writes the xdp_md-style context into buf, reusing its
// backing storage when it is large enough. Batch serving loops use it to
// refresh per-packet contexts without allocating: programs may rewrite their
// context in place, so every packet needs a pristine one, but not a fresh
// allocation.
func BuildXDPContextInto(buf []byte, pktLen int) []byte {
	if cap(buf) < 16 {
		return BuildXDPContext(pktLen)
	}
	ctx := buf[:16]
	binary.LittleEndian.PutUint64(ctx[0:], pktBase)
	binary.LittleEndian.PutUint64(ctx[8:], pktBase+uint64(pktLen))
	return ctx
}

// TracepointContext builds a raw-args context: each argument occupies eight
// bytes. Pointer arguments into the machine's Kmem should be passed as
// KmemAddr offsets.
func TracepointContext(args ...uint64) []byte {
	ctx := make([]byte, 8*len(args))
	for i, a := range args {
		binary.LittleEndian.PutUint64(ctx[8*i:], a)
	}
	return ctx
}

// KmemAddr converts an offset into Machine.Kmem to a VM address.
func KmemAddr(off int) uint64 { return kmemBase + uint64(off) }

// Run executes the loaded program against a context and (for XDP) a packet
// buffer. It returns r0 and the per-run stats. When Config.Metrics is set
// the run is also recorded there (counters, cycle/instruction histograms,
// fault kinds) without any per-run heap allocation.
func (m *Machine) Run(ctx, pkt []byte) (int64, Stats, error) {
	rv, st, err := m.run(ctx, pkt)
	m.cfg.Metrics.record(st, err)
	return rv, st, err
}

// run dispatches to the pre-decoded engine (decode.go) when the program
// compiled, else to the reference switch interpreter below. RefMachine pins
// m.code to nil so this always takes the reference path.
func (m *Machine) run(ctx, pkt []byte) (int64, Stats, error) {
	if m.code != nil {
		rv, err := m.runFast(ctx, pkt, &m.fr.st)
		return rv, m.fr.st, err
	}
	return m.runRef(ctx, pkt)
}

// runRef is the original switch interpreter — the VM's reference semantics
// and the oracle for internal/difftest's cross-engine equivalence rig. Any
// behavior change here must be mirrored in decode.go (the rig will catch a
// divergence, but keep them in lockstep deliberately, not by test failure).
func (m *Machine) runRef(ctx, pkt []byte) (int64, Stats, error) {
	var regs [regSlots]uint64
	regs[1] = ctxBase
	regs[10] = stackBase
	var st Stats
	c := &m.cfg.Costs
	insns := m.prog.Insns
	slotOf, elemAt := m.slotOf, m.elemAt
	m.ktime += 1000

	memAccess := func(addr uint64, size int, write bool) ([]byte, int, error) {
		buf, off, err := m.region(addr, size, ctx, pkt)
		if err != nil {
			return nil, 0, err
		}
		st.CacheRefs++
		if m.Cache != nil {
			if !m.Cache.Access(addr) {
				st.CacheMisses++
				st.Cycles += c.CacheMiss
			}
		}
		return buf, off, nil
	}

	branch := func(i int, taken bool) {
		st.Branches++
		st.Cycles += c.Branch
		if m.Pred != nil {
			if !m.Pred.Predict(slotOf[i], taken) {
				st.BranchMisses++
				st.Cycles += c.BranchMiss
			}
		}
	}

	pc := 0
	for step := 0; ; step++ {
		if step >= m.cfg.StepLimit {
			return 0, st, faultf(FaultStepLimit, pc, "step limit %d exceeded", m.cfg.StepLimit)
		}
		if pc < 0 || pc >= len(insns) {
			return 0, st, faultf(FaultBadPC, -1, "pc %d out of range", pc)
		}
		ins := insns[pc]
		st.Instructions += uint64(ins.Slots())

		switch ins.Class() {
		case ebpf.ClassALU64:
			st.Cycles += c.ALU
			if err := execALU(&regs, ins, false, m); err != nil {
				return 0, st, wrapFault(err, FaultBadInstruction, pc, "")
			}
		case ebpf.ClassALU:
			st.Cycles += c.ALU
			if err := execALU(&regs, ins, true, m); err != nil {
				return 0, st, wrapFault(err, FaultBadInstruction, pc, "")
			}
		case ebpf.ClassLD:
			if !ins.IsWide() {
				return 0, st, faultf(FaultBadInstruction, pc, "unsupported legacy ld")
			}
			st.Cycles += c.WideImm
			if ins.IsMapLoad() {
				regs[ins.Dst] = mapHandle + uint64(ins.Imm64)
			} else {
				regs[ins.Dst] = uint64(ins.Imm64)
			}
		case ebpf.ClassLDX:
			st.Cycles += c.Load
			size := ins.SizeField().Bytes()
			buf, off, err := memAccess(regs[ins.Src]+uint64(int64(ins.Offset)), size, false)
			if err != nil {
				return 0, st, wrapFault(err, FaultBadMemory, pc, ebpf.Mnemonic(ins))
			}
			regs[ins.Dst] = loadBytes(buf[off:], size)
		case ebpf.ClassST, ebpf.ClassSTX:
			size := ins.SizeField().Bytes()
			addr := regs[ins.Dst] + uint64(int64(ins.Offset))
			if ins.IsAtomic() {
				st.Cycles += c.Atomic
				buf, off, err := memAccess(addr, size, true)
				if err != nil {
					return 0, st, wrapFault(err, FaultBadMemory, pc, ebpf.Mnemonic(ins))
				}
				old := loadBytes(buf[off:], size)
				var nv uint64
				switch ebpf.AtomicOp(ins.Imm) {
				case ebpf.AtomicAdd:
					nv = old + regs[ins.Src]
				case ebpf.AtomicOr:
					nv = old | regs[ins.Src]
				case ebpf.AtomicAnd:
					nv = old & regs[ins.Src]
				case ebpf.AtomicXor:
					nv = old ^ regs[ins.Src]
				default:
					return 0, st, faultf(FaultBadInstruction, pc, "unknown atomic op %#x", ins.Imm)
				}
				storeBytes(buf[off:], size, nv)
			} else {
				st.Cycles += c.Store
				buf, off, err := memAccess(addr, size, true)
				if err != nil {
					return 0, st, wrapFault(err, FaultBadMemory, pc, ebpf.Mnemonic(ins))
				}
				val := regs[ins.Src]
				if ins.Class() == ebpf.ClassST {
					val = uint64(int64(ins.Imm))
				}
				storeBytes(buf[off:], size, val)
			}
		case ebpf.ClassJMP, ebpf.ClassJMP32:
			op := ins.JumpOpField()
			switch op {
			case ebpf.JumpExit:
				st.Cycles += c.Branch
				m.Total.Add(st)
				return int64(regs[0]), st, nil
			case ebpf.JumpCall:
				st.Cycles += c.CallBase
				st.HelperCalls++
				if err := m.call(&regs, ins.Imm, &st, ctx, pkt); err != nil {
					return 0, st, wrapFault(err, FaultHelper, pc, "")
				}
			case ebpf.JumpAlways:
				st.Cycles += c.Branch
				tgt, ok := elemAt[slotOf[pc]+ins.Slots()+int(ins.Offset)]
				if !ok {
					return 0, st, faultf(FaultBadPC, pc, "bad jump target")
				}
				pc = tgt
				continue
			default:
				taken := evalJump(ins, regs)
				branch(pc, taken)
				if taken {
					tgt, ok := elemAt[slotOf[pc]+ins.Slots()+int(ins.Offset)]
					if !ok {
						return 0, st, faultf(FaultBadPC, pc, "bad branch target")
					}
					pc = tgt
					continue
				}
			}
		default:
			return 0, st, faultf(FaultBadInstruction, pc, "unsupported class %s", ins.Class())
		}
		pc++
	}
}

func loadBytes(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeBytes(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

func execALU(regs *[regSlots]uint64, ins ebpf.Instruction, is32 bool, m *Machine) error {
	dst := ins.Dst
	var src uint64
	if ins.SourceField() == ebpf.SourceX {
		src = regs[ins.Src]
	} else {
		src = uint64(int64(ins.Imm))
	}
	a := regs[dst]
	if ins.ALUOpField() == ebpf.ALUEnd {
		// Byte swap of the low imm bits, zero-extended (bswap16/32/64).
		regs[dst] = bswapBits(a, ins.Imm)
		return nil
	}
	if is32 {
		a &= 0xffffffff
		src &= 0xffffffff
	}
	bits := uint64(64)
	if is32 {
		bits = 32
	}
	var r uint64
	switch ins.ALUOpField() {
	case ebpf.ALUAdd:
		r = a + src
	case ebpf.ALUSub:
		r = a - src
	case ebpf.ALUMul:
		r = a * src
	case ebpf.ALUDiv:
		if src == 0 {
			r = 0
		} else {
			r = a / src
		}
	case ebpf.ALUMod:
		if src == 0 {
			r = a
		} else {
			r = a % src
		}
	case ebpf.ALUOr:
		r = a | src
	case ebpf.ALUAnd:
		r = a & src
	case ebpf.ALUXor:
		r = a ^ src
	case ebpf.ALULsh:
		r = a << (src & (bits - 1))
	case ebpf.ALURsh:
		r = a >> (src & (bits - 1))
	case ebpf.ALUArsh:
		if is32 {
			r = uint64(uint32(int32(uint32(a)) >> (src & 31)))
		} else {
			r = uint64(int64(a) >> (src & 63))
		}
	case ebpf.ALUNeg:
		r = -a
	case ebpf.ALUMov:
		r = src
	default:
		return faultf(FaultBadInstruction, -1, "unsupported alu op %#x", ins.Opcode)
	}
	if is32 {
		r &= 0xffffffff
	}
	regs[dst] = r
	return nil
}

// bswapBits reverses the byte order of the low `bits` bits of v.
func bswapBits(v uint64, bits int32) uint64 {
	switch bits {
	case 16:
		return uint64(uint16(v)>>8 | uint16(v)<<8)
	case 32:
		x := uint32(v)
		return uint64(x>>24 | x>>8&0xff00 | x<<8&0xff0000 | x<<24)
	default:
		r := uint64(0)
		for i := 0; i < 8; i++ {
			r = r<<8 | (v >> (8 * i) & 0xff)
		}
		return r
	}
}

func evalJump(ins ebpf.Instruction, regs [regSlots]uint64) bool {
	a := regs[ins.Dst]
	var b uint64
	if ins.SourceField() == ebpf.SourceX {
		b = regs[ins.Src]
	} else {
		b = uint64(int64(ins.Imm))
	}
	var sa, sb int64
	if ins.Class() == ebpf.ClassJMP32 {
		a &= 0xffffffff
		b &= 0xffffffff
		sa, sb = int64(int32(uint32(a))), int64(int32(uint32(b)))
	} else {
		sa, sb = int64(a), int64(b)
	}
	switch ins.JumpOpField() {
	case ebpf.JumpEq:
		return a == b
	case ebpf.JumpNE:
		return a != b
	case ebpf.JumpGT:
		return a > b
	case ebpf.JumpGE:
		return a >= b
	case ebpf.JumpLT:
		return a < b
	case ebpf.JumpLE:
		return a <= b
	case ebpf.JumpSet:
		return a&b != 0
	case ebpf.JumpSGT:
		return sa > sb
	case ebpf.JumpSGE:
		return sa >= sb
	case ebpf.JumpSLT:
		return sa < sb
	case ebpf.JumpSLE:
		return sa <= sb
	}
	return false
}

// call dispatches a helper invocation. Bodies live in helpers_exec.go and
// are shared with the pre-decoded engine, which binds them at load time.
func (m *Machine) call(regs *[regSlots]uint64, id int32, st *Stats, ctx, pkt []byte) error {
	spec, ok := helpers.Table[int(id)]
	if !ok {
		return fmt.Errorf("unknown helper %d", id)
	}
	st.Cycles += spec.Cost
	body, ok := helperBodies[int(id)]
	if !ok {
		return fmt.Errorf("helper %s not implemented", spec.Name)
	}
	return body(m, regs, ctx, pkt)
}
