package vm

import (
	"errors"
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
	"merlin/internal/metrics"
)

// bothEngines loads prog into the fast machine and a RefMachine with the
// same config and hands them to fn.
func bothEngines(t *testing.T, prog *ebpf.Program, cfg Config, fn func(name string, m *Machine)) {
	t.Helper()
	fast, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Engine() != "fast" {
		t.Fatalf("New: engine = %q, want fast", fast.Engine())
	}
	ref, err := NewRef(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Engine() != "ref" {
		t.Fatalf("NewRef: engine = %q, want ref", ref.Engine())
	}
	fn("fast", fast)
	fn("ref", ref.Machine)
}

// TestFaultParityBothEngines is the fault-path consistency table: every
// fault class the VM can produce must carry an identical kind, pc, detail
// string and partial Stats on both engines.
func TestFaultParityBothEngines(t *testing.T) {
	legacyLD := ebpf.Instruction{Opcode: byte(ebpf.ClassLD) | byte(ebpf.ModeABS)}
	badALU := ebpf.Instruction{Opcode: 0xe0 | byte(ebpf.ClassALU64)}

	cases := []struct {
		name  string
		insns []ebpf.Instruction
		cfg   Config
		ctx   []byte
		pkt   []byte
		kind  FaultKind
		pc    int
	}{
		{
			name:  "step-limit",
			insns: []ebpf.Instruction{ebpf.Jump(-1), ebpf.Exit()},
			cfg:   Config{StepLimit: 64},
			kind:  FaultStepLimit,
			pc:    0,
		},
		{
			name: "fallthrough-past-end",
			insns: []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R0, 1),
			},
			kind: FaultBadPC,
			pc:   -1,
		},
		{
			name: "bad-jump-target-into-lddw",
			insns: []ebpf.Instruction{
				ebpf.Jump(1), // lands in the middle of the lddw pair
				ebpf.LoadImm64(ebpf.R0, 0x1234),
				ebpf.Exit(),
			},
			kind: FaultBadPC,
			pc:   0,
		},
		{
			name: "bad-branch-target-taken",
			insns: []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R1, 1),
				ebpf.JumpImm(ebpf.JumpEq, ebpf.R1, 1, 100),
				ebpf.Exit(),
			},
			kind: FaultBadPC,
			pc:   1,
		},
		{
			name:  "legacy-ld",
			insns: []ebpf.Instruction{legacyLD, ebpf.Exit()},
			kind:  FaultBadInstruction,
			pc:    0,
		},
		{
			name:  "unknown-alu-op",
			insns: []ebpf.Instruction{badALU, ebpf.Exit()},
			kind:  FaultBadInstruction,
			pc:    0,
		},
		{
			name: "unknown-atomic-op",
			insns: []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R1, 1),
				func() ebpf.Instruction {
					ins := ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R10, -8, ebpf.R1)
					ins.Imm = 0x99
					return ins
				}(),
				ebpf.Exit(),
			},
			kind: FaultBadInstruction,
			pc:   1,
		},
		{
			name: "ldx-bad-memory",
			insns: []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R1, 0x42),
				ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 0),
				ebpf.Exit(),
			},
			kind: FaultBadMemory,
			pc:   1,
		},
		{
			name: "stx-bad-memory",
			insns: []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R1, 0x42),
				ebpf.StoreMem(ebpf.SizeW, ebpf.R1, 0, ebpf.R1),
				ebpf.Exit(),
			},
			kind: FaultBadMemory,
			pc:   1,
		},
		{
			name: "st-imm-bad-memory",
			insns: []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R1, 0x42),
				ebpf.StoreImm(ebpf.SizeW, ebpf.R1, 0, 7),
				ebpf.Exit(),
			},
			kind: FaultBadMemory,
			pc:   1,
		},
		{
			name: "atomic-bad-memory",
			insns: []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R1, 0x42),
				ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R1, 0, ebpf.R1),
				ebpf.Exit(),
			},
			kind: FaultBadMemory,
			pc:   1,
		},
		{
			name:  "unknown-helper",
			insns: []ebpf.Instruction{ebpf.Call(9999), ebpf.Exit()},
			kind:  FaultHelper,
			pc:    0,
		},
		{
			name: "helper-bad-map-handle",
			insns: []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R1, 3), // not a map handle
				ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
				ebpf.Call(helpers.MapLookupElem),
				ebpf.Exit(),
			},
			kind: FaultHelper,
			pc:   2,
		},
		{
			name: "helper-bad-memory-arg",
			insns: []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R1, 0x42), // bad dst pointer
				ebpf.Mov64Imm(ebpf.R2, 8),
				ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
				ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, -8),
				ebpf.Call(helpers.ProbeRead),
				ebpf.Exit(),
			},
			kind: FaultBadMemory,
			pc:   4,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := &ebpf.Program{Name: "fault-" + tc.name, Insns: tc.insns}
			type outcome struct {
				re *RuntimeError
				st Stats
			}
			got := map[string]outcome{}
			bothEngines(t, prog, tc.cfg, func(name string, m *Machine) {
				_, st, err := m.Run(tc.ctx, tc.pkt)
				if err == nil {
					t.Fatalf("%s: expected fault", name)
				}
				re, ok := AsRuntimeError(err)
				if !ok {
					t.Fatalf("%s: not a RuntimeError: %v", name, err)
				}
				got[name] = outcome{re, st}
			})
			for name, o := range got {
				if o.re.Kind != tc.kind {
					t.Errorf("%s: kind = %s, want %s (%v)", name, o.re.Kind, tc.kind, o.re)
				}
				if o.re.PC != tc.pc {
					t.Errorf("%s: pc = %d, want %d (%v)", name, o.re.PC, tc.pc, o.re)
				}
			}
			f, r := got["fast"], got["ref"]
			if f.re.Detail != r.re.Detail {
				t.Errorf("detail diverges: fast %q, ref %q", f.re.Detail, r.re.Detail)
			}
			if f.re.Error() != r.re.Error() {
				t.Errorf("error string diverges: fast %q, ref %q", f.re.Error(), r.re.Error())
			}
			if f.st != r.st {
				t.Errorf("partial stats diverge:\nfast %+v\nref  %+v", f.st, r.st)
			}
		})
	}
}

// batchCounterProg bumps a per-run counter in a map and returns its value,
// so batch position is observable and map effects persist across packets.
func batchCounterProg() *ebpf.Program {
	return mapProg()
}

func TestRunBatchMatchesSequentialRun(t *testing.T) {
	const n = 8
	pkts := make([][]byte, n)
	ctxs := make([][]byte, n)
	for i := range pkts {
		pkts[i] = make([]byte, 64)
		pkts[i][0] = byte(i)
		ctxs[i] = BuildXDPContext(len(pkts[i]))
	}
	prog := batchCounterProg()

	seq, err := New(prog, Config{Seed: 3, UseHW: true})
	if err != nil {
		t.Fatal(err)
	}
	bat, err := New(prog, Config{Seed: 3, UseHW: true})
	if err != nil {
		t.Fatal(err)
	}

	var out Batch
	if faults := bat.RunBatch(ctxs, pkts, &out); faults != 0 {
		t.Fatalf("faults = %d", faults)
	}
	for i := 0; i < n; i++ {
		rv, st, err := seq.Run(ctxs[i], pkts[i])
		if err != nil {
			t.Fatal(err)
		}
		if out.RV[i] != rv {
			t.Errorf("packet %d: rv = %d, sequential %d", i, out.RV[i], rv)
		}
		if out.Stats[i] != st {
			t.Errorf("packet %d stats diverge:\nbatch %+v\nseq   %+v", i, out.Stats[i], st)
		}
		if out.Errs[i] != nil {
			t.Errorf("packet %d: err = %v", i, out.Errs[i])
		}
	}
	if seq.Total != bat.Total {
		t.Errorf("Total diverges: batch %+v, seq %+v", bat.Total, seq.Total)
	}
}

// TestRunBatchMidBatchFault: a faulting packet mid-batch must not disturb
// earlier packets' effects, must report its error in its own slot, and later
// packets must still be served. Asserted on both engines.
func TestRunBatchMidBatchFault(t *testing.T) {
	// Reads pkt[20]: faults on packets shorter than 21 bytes.
	prog := &ebpf.Program{Name: "deep-read", Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R2, 20),
		ebpf.Exit(),
	}}
	mkBatch := func() ([][]byte, [][]byte) {
		pkts := [][]byte{make([]byte, 64), make([]byte, 4), make([]byte, 64)}
		pkts[0][20] = 0x11
		pkts[2][20] = 0x33
		ctxs := make([][]byte, len(pkts))
		for i := range pkts {
			ctxs[i] = BuildXDPContext(len(pkts[i]))
		}
		return ctxs, pkts
	}

	bothEngines(t, prog, Config{}, func(name string, m *Machine) {
		ctxs, pkts := mkBatch()
		var out Batch
		faults := m.RunBatch(ctxs, pkts, &out)
		if faults != 1 {
			t.Fatalf("%s: faults = %d, want 1", name, faults)
		}
		if out.RV[0] != 0x11 || out.RV[2] != 0x33 {
			t.Errorf("%s: rv = %v", name, out.RV)
		}
		if out.Errs[0] != nil || out.Errs[2] != nil {
			t.Errorf("%s: healthy slots carry errors: %v", name, out.Errs)
		}
		re, ok := AsRuntimeError(out.Errs[1])
		if !ok {
			t.Fatalf("%s: slot 1 error = %v", name, out.Errs[1])
		}
		if re.Kind != FaultBadMemory || re.PC != 1 {
			t.Errorf("%s: slot 1 fault = %v, want bad-memory at pc 1", name, re)
		}
	})
}

// TestRunBatchReusesStorage: a second batch through the same Batch value
// must not grow its slices, and stale errors must be cleared.
func TestRunBatchReusesStorage(t *testing.T) {
	prog := &ebpf.Program{Name: "deep-read", Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R2, 20),
		ebpf.Exit(),
	}}
	m, err := New(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	short := make([]byte, 4)
	long := make([]byte, 64)
	var out Batch
	m.RunBatch([][]byte{BuildXDPContext(4)}, [][]byte{short}, &out)
	if out.Errs[0] == nil {
		t.Fatal("first batch should fault")
	}
	if faults := m.RunBatch([][]byte{BuildXDPContext(64)}, [][]byte{long}, &out); faults != 0 {
		t.Fatalf("second batch faults = %d; stale error not cleared: %v", faults, out.Errs[0])
	}
	if out.Errs[0] != nil {
		t.Fatalf("stale error survived Reset: %v", out.Errs[0])
	}
}

// TestDecodeFallbackToRef: a machine whose program failed to pre-decode
// (simulated by clearing code) still runs via the reference interpreter.
func TestDecodeFallbackToRef(t *testing.T) {
	m, err := New(passProg(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.code = nil
	if m.Engine() != "ref" {
		t.Fatalf("engine = %q", m.Engine())
	}
	pkt := make([]byte, 64)
	rv, _, err := m.Run(BuildXDPContext(len(pkt)), pkt)
	if err != nil || rv != 2 {
		t.Fatalf("fallback run: rv=%d err=%v", rv, err)
	}
}

// TestRunBatchZeroAlloc is the batch-serve extension of the existing
// AllocsPerRun guards: steady-state batches through the fast engine
// allocate nothing, with and without metrics attached, for XDP and
// tracepoint programs. (The reference interpreter keeps its historical one
// register-file escape per run; it is exercised here for correctness but
// only the fast engine carries the zero-alloc guarantee.)
func TestRunBatchZeroAlloc(t *testing.T) {
	xdp := &ebpf.Program{Name: "xdp", Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R0, ebpf.R2, 0),
		ebpf.Exit(),
	}}
	tp := &ebpf.Program{Name: "tp", Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R1, 0),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R6),
		ebpf.Call(helpers.KtimeGetNS),
		ebpf.Exit(),
	}}

	const bn = 16
	xdpPkts := make([][]byte, bn)
	xdpCtxs := make([][]byte, bn)
	for i := range xdpPkts {
		xdpPkts[i] = make([]byte, 64)
		xdpCtxs[i] = BuildXDPContext(64)
	}
	tpCtxs := make([][]byte, bn)
	for i := range tpCtxs {
		tpCtxs[i] = TracepointContext(uint64(i), 7)
	}

	cases := []struct {
		name string
		prog *ebpf.Program
		ctxs [][]byte
		pkts [][]byte
	}{
		{"xdp", xdp, xdpCtxs, xdpPkts},
		{"tracepoint", tp, tpCtxs, nil},
	}
	for _, tc := range cases {
		for _, withMetrics := range []bool{false, true} {
			name := tc.name + "/bare"
			cfg := Config{UseHW: true}
			if withMetrics {
				name = tc.name + "/metrics"
				cfg.Metrics = NewMetrics(metrics.New())
			}
			t.Run(name, func(t *testing.T) {
				bothEngines(t, tc.prog, cfg, func(engine string, m *Machine) {
					var out Batch
					m.RunBatch(tc.ctxs, tc.pkts, &out) // warm the batch storage
					allocs := testing.AllocsPerRun(100, func() {
						if faults := m.RunBatch(tc.ctxs, tc.pkts, &out); faults != 0 {
							t.Fatalf("%s: faults = %d: %v", engine, faults, firstErr(out.Errs))
						}
					})
					if engine == "fast" && allocs != 0 {
						t.Errorf("%s: RunBatch allocates %.1f per batch, want 0", engine, allocs)
					}
				})
			})
		}
	}
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return errors.New("none")
}

func benchProg() *ebpf.Program {
	// A representative mix: ctx loads, bounds check, packet reads, a map
	// update via atomic, arithmetic, branches.
	return &ebpf.Program{
		Name: "bench",
		Insns: []ebpf.Instruction{
			ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0), // data
			ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 8), // data_end
			ebpf.Mov64Reg(ebpf.R4, ebpf.R2),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R4, 14),
			ebpf.JumpReg(ebpf.JumpGT, ebpf.R4, ebpf.R3, 9), // → drop
			ebpf.LoadMem(ebpf.SizeW, ebpf.R5, ebpf.R2, 0),
			ebpf.LoadMem(ebpf.SizeW, ebpf.R6, ebpf.R2, 4),
			ebpf.ALU64Reg(ebpf.ALUXor, ebpf.R5, ebpf.R6),
			ebpf.ALU64Imm(ebpf.ALUAnd, ebpf.R5, 0xff),
			ebpf.Mov64Imm(ebpf.R0, 2), // XDP_PASS
			ebpf.JumpImm(ebpf.JumpNE, ebpf.R5, 0, 1),
			ebpf.Mov64Imm(ebpf.R0, 1),
			ebpf.Exit(),
			ebpf.Mov64Imm(ebpf.R0, 1), // drop
			ebpf.Exit(),
		},
	}
}

func benchMachine(b *testing.B, ref, hw bool) *Machine {
	b.Helper()
	var m *Machine
	var err error
	if ref {
		var rm *RefMachine
		rm, err = NewRef(benchProg(), Config{UseHW: hw})
		if rm != nil {
			m = rm.Machine
		}
	} else {
		m, err = New(benchProg(), Config{UseHW: hw})
	}
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// The HW variants model cache+predictor (the offline netbench config); the
// NoHW variants are the deployment serve config (merlind runs without the
// microarchitectural models).
func BenchmarkRunSingleRef(b *testing.B)      { benchmarkRunSingle(b, true, true) }
func BenchmarkRunSingleFast(b *testing.B)     { benchmarkRunSingle(b, false, true) }
func BenchmarkRunSingleRefNoHW(b *testing.B)  { benchmarkRunSingle(b, true, false) }
func BenchmarkRunSingleFastNoHW(b *testing.B) { benchmarkRunSingle(b, false, false) }

func benchmarkRunSingle(b *testing.B, ref, hw bool) {
	m := benchMachine(b, ref, hw)
	pkt := make([]byte, 64)
	ctx := BuildXDPContext(len(pkt))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Run(ctx, pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunBatchRef(b *testing.B)      { benchmarkRunBatch(b, true, true) }
func BenchmarkRunBatchFast(b *testing.B)     { benchmarkRunBatch(b, false, true) }
func BenchmarkRunBatchRefNoHW(b *testing.B)  { benchmarkRunBatch(b, true, false) }
func BenchmarkRunBatchFastNoHW(b *testing.B) { benchmarkRunBatch(b, false, false) }

func benchmarkRunBatch(b *testing.B, ref, hw bool) {
	m := benchMachine(b, ref, hw)
	const bn = 64
	pkts := make([][]byte, bn)
	ctxs := make([][]byte, bn)
	for i := range pkts {
		pkts[i] = make([]byte, 64)
		ctxs[i] = BuildXDPContext(64)
	}
	var out Batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += bn {
		if faults := m.RunBatch(ctxs, pkts, &out); faults != 0 {
			b.Fatal(firstErr(out.Errs))
		}
	}
}
