package vm

import (
	"fmt"
	"testing"

	"merlin/internal/ebpf"
)

// hash7Insns is the unrolled hash-mix round the fuser collapses into a
// single kFHash7 dispatch: three setup moves, then the 7-op group at
// pc 3..9 (mov;xor;mov;sub;mov;lsh;rsh), then exit at pc 10.
func hash7Insns() []ebpf.Instruction {
	return []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 0x1234),
		ebpf.Mov64Imm(ebpf.R2, 0x77),
		ebpf.Mov64Imm(ebpf.R3, 5),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.ALU64Reg(ebpf.ALUXor, ebpf.R0, ebpf.R2),
		ebpf.Mov64Reg(ebpf.R4, ebpf.R0),
		ebpf.ALU64Reg(ebpf.ALUSub, ebpf.R4, ebpf.R3),
		ebpf.Mov64Reg(ebpf.R5, ebpf.R4),
		ebpf.ALU64Imm(ebpf.ALULsh, ebpf.R5, 7),
		ebpf.ALU64Imm(ebpf.ALURsh, ebpf.R5, 3),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R5),
		ebpf.Exit(),
	}
}

// TestHash7GroupFuses pins the fuser's output shape: if the pattern matcher
// drifts, the step-limit and interior-entry tests below would silently stop
// exercising the superinstruction paths.
func TestHash7GroupFuses(t *testing.T) {
	prog := &ebpf.Program{Name: "hash7", Insns: hash7Insns()}
	m, err := New(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.code[3].exec != kFHash7 {
		t.Fatalf("pc 3: kind = %d, want kFHash7 (%d)", m.code[3].exec, kFHash7)
	}
	// Interior slots keep executable forms for mid-group entry.
	if m.code[4].exec != kXorR || m.code[5].exec != kFMovSub || m.code[7].exec != kFMovLshRsh {
		t.Fatalf("interior slots lost their forms: %d %d %d",
			m.code[4].exec, m.code[5].exec, m.code[7].exec)
	}
}

// TestStepLimitMidFusedGroup expires the step limit at every offset inside
// the fused 7-op group (and at the exit just past it): both engines must
// report the identical step-limit fault pc — the fast engine falls back to
// the retained per-op slots when the group cannot complete.
func TestStepLimitMidFusedGroup(t *testing.T) {
	prog := &ebpf.Program{Name: "hash7-limit", Insns: hash7Insns()}
	for limit := 4; limit <= 11; limit++ {
		t.Run(fmt.Sprintf("limit-%d", limit), func(t *testing.T) {
			type outcome struct {
				re *RuntimeError
				st Stats
			}
			got := map[string]outcome{}
			bothEngines(t, prog, Config{StepLimit: limit}, func(name string, m *Machine) {
				_, st, err := m.Run(nil, nil)
				if err == nil {
					t.Fatalf("%s: expected step-limit fault", name)
				}
				re, ok := AsRuntimeError(err)
				if !ok {
					t.Fatalf("%s: not a RuntimeError: %v", name, err)
				}
				got[name] = outcome{re, st}
			})
			for name, o := range got {
				if o.re.Kind != FaultStepLimit {
					t.Errorf("%s: kind = %s, want %s", name, o.re.Kind, FaultStepLimit)
				}
				// One instruction per step from pc 0, so the limit
				// expires exactly at pc == limit.
				if o.re.PC != limit {
					t.Errorf("%s: pc = %d, want %d", name, o.re.PC, limit)
				}
			}
			f, r := got["fast"], got["ref"]
			if f.re.Error() != r.re.Error() {
				t.Errorf("error diverges: fast %q, ref %q", f.re.Error(), r.re.Error())
			}
			if f.st != r.st {
				t.Errorf("partial stats diverge:\nfast %+v\nref  %+v", f.st, r.st)
			}
		})
	}
}

// TestFusedGroupInteriorEntry jumps into the middle of the fused group —
// every interior slot in turn — and checks both engines agree on r0 and
// Stats: interior slots must stay executable in their original form.
func TestFusedGroupInteriorEntry(t *testing.T) {
	// entry is the slot offset into the 7-slot group at pc 6..12.
	for entry := 0; entry <= 6; entry++ {
		t.Run(fmt.Sprintf("entry-%d", entry), func(t *testing.T) {
			insns := []ebpf.Instruction{
				ebpf.Mov64Imm(ebpf.R1, 0x1234),
				ebpf.Mov64Imm(ebpf.R2, 0x77),
				ebpf.Mov64Imm(ebpf.R3, 5),
				ebpf.Mov64Imm(ebpf.R4, 9),
				ebpf.Mov64Imm(ebpf.R5, 21),
				// Jump over the group head into an interior slot.
				ebpf.Jump(int16(entry)), // pc 5, target = 6+entry
			}
			group := hash7Insns()[3:] // group + tail mov + exit at 6..14
			insns = append(insns, group...)
			rv := map[string]int64{}
			st := map[string]Stats{}
			prog := &ebpf.Program{Name: "hash7-entry", Insns: insns}
			bothEngines(t, prog, Config{}, func(name string, m *Machine) {
				r, s, err := m.Run(nil, nil)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				rv[name], st[name] = r, s
			})
			if rv["fast"] != rv["ref"] {
				t.Errorf("r0 diverges: fast %d, ref %d", rv["fast"], rv["ref"])
			}
			if st["fast"] != st["ref"] {
				t.Errorf("stats diverge:\nfast %+v\nref  %+v", st["fast"], st["ref"])
			}
		})
	}
}
