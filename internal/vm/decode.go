package vm

import (
	"encoding/binary"
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

// This file implements the pre-decoded execution engine. At load time
// compile() translates the program into a []uop — a micro-op stream with
// every operand already resolved: register numbers, sign-extended (and
// pre-masked) immediates, branch targets as element indices, map handles
// folded into lddw constants, and helper calls bound to their spec cost and
// body. runFast executes the stream in one tight switch loop; hot operations
// (ALU, loads/stores, branches) are fully inlined micro-ops, while complex
// or cold ones (helper calls, atomics, guaranteed faults) are pre-bound
// closures invoked through the kClosure escape hatch. All decoding, table
// lookups and branch-target resolution happened once, at load.
//
// Two further load-time transformations matter for speed:
//
//   - The uop struct holds only the hot 24 bytes the dispatch loop touches
//     (kind, registers, two operand words, branch target). Everything
//     touched rarely — fault mnemonics, pre-built fault errors, generic
//     compare/ALU functions, closures, branch-predictor keys — lives in a
//     parallel cold table indexed by the same pc, so large programs keep
//     several times more of their instruction stream resident in L1.
//
//   - fuse() combines the corpus's hottest consecutive micro-op pairs and
//     triples (the mov/shift/xor/sub chains of hashing and field-extraction
//     code) into single superinstructions, removing a dispatch per fused
//     element. Fused ops charge exactly the per-instruction cycles and
//     step-limit iterations of their parts: when the step limit would
//     expire between two fused halves, the op executes only the first half
//     and lets the ordinary loop-head check fault at the second half's pc
//     (whose original uop still occupies its slot), so even mid-pair
//     step-limit faults are bit-identical to the reference interpreter.
//
// The cycle/cache cost model is preserved as an accounting layer: each
// micro-op charges exactly the cycles, cache references and branch-predictor
// events the reference interpreter (exec.go) charges, in the same order
// relative to faults, so both engines produce identical Stats and identical
// RuntimeError kind/pc/detail on every input. internal/difftest holds the
// rig that proves this continuously; RefMachine (ref.go) pins the original
// switch interpreter as the oracle.

// Sentinel next-pc values a dop closure can return instead of an element
// index.
const (
	opExit  = -1 // clean exit; fr.rv holds r0
	opFault = -2 // runtime fault; fr.err holds the error
)

// regSlots pads the architectural registers (ebpf.NumRegisters = 11) to a
// power of two so fused micro-ops can index the register file with packed
// nibbles (&15) without bounds checks. Slots 11-15 are never named by a
// valid instruction and stay zero.
const regSlots = 16

// frame is the per-run machine state of the fast engine: register file,
// stats accumulator and the run's memory arguments. It is embedded in
// Machine (m.fr) and reused across runs so executing allocates nothing.
// stp points at the Stats being filled by the current run — &fr.st for
// single runs, the caller's Batch.Stats slot during RunBatch, so batch
// serving skips a per-packet 56-byte copy.
type frame struct {
	regs [regSlots]uint64
	st   Stats
	stp  *Stats
	ctx  []byte
	pkt  []byte
	rv   int64
	err  error
}

// dop is a pre-bound closure for a complex instruction (helper call, atomic,
// always-faulting op): execute against the frame, return the next element
// index or a sentinel. Closures account their own instructions and cycles.
type dop func(m *Machine, fr *frame) int

// Micro-op kinds. The zero value is the closure escape hatch so a
// half-initialized uop can never be misread as an inline op.
const (
	kClosure uint8 = iota // invoke cold.d (calls, atomics, fault ops)
	kExit
	kJa   // unconditional jump to u.tgt
	kJccI // conditional via cold.cmp against u.imm
	kJccR // conditional via cold.cmp against reg u.src
	kLddw // 64-bit immediate (map handles pre-folded)
	kAluI // generic ALU via cold.alu, imm operand (div/mod/arsh32/bswap)
	kAluR // generic ALU via cold.alu, reg operand

	kLdx1
	kLdx2
	kLdx4
	kLdx8
	kStx1 // store register
	kStx2
	kStx4
	kStx8
	kSti1 // store immediate
	kSti2
	kSti4
	kSti8

	// Inlined 64-bit ALU. Immediates are sign-extended; shift amounts
	// pre-masked.
	kMovI
	kMovR
	kAddI
	kAddR
	kSubI
	kSubR
	kAndI
	kAndR
	kOrI
	kOrR
	kXorI
	kXorR
	kLshI
	kLshR
	kRshI
	kRshR
	kMulI
	kMulR
	kArshI
	kArshR
	kNeg

	// Inlined 32-bit ALU (results truncated; kMovI covers mov32 imm with a
	// pre-masked immediate).
	kMov32R
	kAdd32I
	kAdd32R
	kSub32I
	kSub32R
	kAnd32I
	kAnd32R
	kOr32I
	kOr32R
	kXor32I
	kXor32R
	kLsh32I
	kLsh32R
	kRsh32I
	kRsh32R
	kNeg32

	// Fused superinstructions (see fuse). Operand layout per kind:
	//   kFMovLshRsh  mov dst,src ; lsh64 dst,imm ; rsh64 dst,off
	//   kFMovLsh     mov dst,src ; lsh64 dst,imm
	//   kFMovXor     mov dst,src ; xor64 dst,imm
	//   kFMovAddI    mov dst,src ; add64 dst,imm
	//   kFMovSub     mov dst,src ; sub64 dst,reg(tgt)      [tgt != dst]
	//   kFLshRsh     lsh64 dst,imm ; rsh64 dst,off
	//   kFXorMov     xor64 dst,imm ; mov tgt>>8,reg(tgt&255)
	//   kFSubMov     sub64 dst,src ; mov tgt>>8,reg(tgt&255)
	//   kFRshMov     rsh64 dst,imm ; mov tgt>>8,reg(tgt&255)
	//   kFMovMov     mov dst,src ; mov tgt>>8,reg(tgt&255)
	//   kFHash7      the 7-op unrolled hash-mix round; see fuse for the
	//                imm nibble/shift packing
	kFMovLshRsh
	kFMovLsh
	kFMovXor
	kFMovAddI
	kFMovSub
	kFLshRsh
	kFXorMov
	kFSubMov
	kFRshMov
	kFMovMov
	kFHash7

	// Specialized 64-bit conditional jumps: the compare is inlined in the
	// dispatch case (no indirect call, no cold-table touch on the hot
	// path). Immediate/register variants alternate. JMP32 and unknown
	// compare ops stay on the generic kJccI/kJccR path.
	kJeqI
	kJeqR
	kJneI
	kJneR
	kJgtI
	kJgtR
	kJgeI
	kJgeR
	kJltI
	kJltR
	kJleI
	kJleR
	kJsetI
	kJsetR
	kJsgtI
	kJsgtR
	kJsgeI
	kJsgeR
	kJsltI
	kJsltR
	kJsleI
	kJsleR
)

// jccKind maps a 64-bit conditional jump op to its specialized
// immediate-variant kind (the register variant is the next kind).
var jccKind = map[ebpf.JumpOp]uint8{
	ebpf.JumpEq:  kJeqI,
	ebpf.JumpNE:  kJneI,
	ebpf.JumpGT:  kJgtI,
	ebpf.JumpGE:  kJgeI,
	ebpf.JumpLT:  kJltI,
	ebpf.JumpLE:  kJleI,
	ebpf.JumpSet: kJsetI,
	ebpf.JumpSGT: kJsgtI,
	ebpf.JumpSGE: kJsgeI,
	ebpf.JumpSLT: kJsltI,
	ebpf.JumpSLE: kJsleI,
}

// uop is one pre-decoded instruction element: the 24 hot bytes the dispatch
// loop touches. Cold details live in the parallel coldOp table.
type uop struct {
	exec uint8
	dst  uint8
	src  uint8
	_    uint8
	tgt  int32  // branch target element index (-1: fault when taken); fused second-op regs
	imm  uint64 // immediate / first fused operand
	off  uint64 // load/store displacement / second fused operand
}

// coldOp holds the rarely-touched parts of an element, indexed by the same
// pc as code.
type coldOp struct {
	mn   string                   // mnemonic prefix for memory-fault details
	cmp  func(a, b uint64) bool   // conditional-jump compare
	alu  func(a, b uint64) uint64 // generic ALU operation
	d    dop                      // closure body for kClosure
	fe   *RuntimeError            // pre-built fault for bad taken-branch targets
	slot int32                    // original slot index; branch-predictor key
}

// compile translates the loaded program into its pre-decoded form. It never
// rejects programs the reference interpreter accepts — instructions that
// would fault at runtime compile to fault ops producing the identical
// fault — but an error return is kept so New can fall back to the reference
// interpreter if decoding is ever impossible.
func compile(m *Machine) ([]uop, []coldOp, error) {
	insns := m.prog.Insns
	code := make([]uop, len(insns))
	cold := make([]coldOp, len(insns))
	for i := range insns {
		u, co, err := m.compileInsn(i, insns[i])
		if err != nil {
			return nil, nil, fmt.Errorf("insn %d (%s): %w", i, ebpf.Mnemonic(insns[i]), err)
		}
		code[i] = u
		cold[i] = co
	}
	fuse(code)
	return code, cold, nil
}

// fuse replaces the hottest consecutive micro-op sequences with single
// superinstructions. An interior element of a fused group must not be a
// branch target (control may only enter at the head); interior elements
// keep their original uops in place, both as jump targets resolved before
// fusion and as the continuation point when the step limit expires
// mid-group.
func fuse(code []uop) {
	isTarget := make([]bool, len(code))
	for i := range code {
		switch code[i].exec {
		case kJa, kJccI, kJccR:
			if t := code[i].tgt; t >= 0 && int(t) < len(code) {
				isTarget[t] = true
			}
		}
	}
	pack := func(dst, src uint8) int32 { return int32(dst)<<8 | int32(src) }
	for i := 0; i < len(code)-1; i++ {
		if isTarget[i+1] {
			continue
		}
		a, b := code[i], code[i+1]
		// Triple: the field-extract / hash idiom mov;lsh;rsh.
		if i+2 < len(code) && !isTarget[i+2] {
			c := code[i+2]
			if a.exec == kMovR && b.exec == kLshI && c.exec == kRshI &&
				b.dst == a.dst && c.dst == a.dst {
				code[i] = uop{exec: kFMovLshRsh, dst: a.dst, src: a.src, imm: b.imm, off: c.imm}
				i += 2
				continue
			}
		}
		var f uop
		switch {
		case a.exec == kMovR && b.exec == kLshI && b.dst == a.dst:
			f = uop{exec: kFMovLsh, dst: a.dst, src: a.src, imm: b.imm}
		case a.exec == kMovR && b.exec == kXorI && b.dst == a.dst:
			f = uop{exec: kFMovXor, dst: a.dst, src: a.src, imm: b.imm}
		case a.exec == kMovR && b.exec == kAddI && b.dst == a.dst:
			f = uop{exec: kFMovAddI, dst: a.dst, src: a.src, imm: b.imm}
		case a.exec == kMovR && b.exec == kSubR && b.dst == a.dst && b.src != a.dst:
			f = uop{exec: kFMovSub, dst: a.dst, src: a.src, tgt: int32(b.src)}
		case a.exec == kLshI && b.exec == kRshI && b.dst == a.dst:
			f = uop{exec: kFLshRsh, dst: a.dst, imm: a.imm, off: b.imm}
		case a.exec == kXorI && b.exec == kMovR:
			f = uop{exec: kFXorMov, dst: a.dst, imm: a.imm, tgt: pack(b.dst, b.src)}
		case a.exec == kSubR && b.exec == kMovR:
			f = uop{exec: kFSubMov, dst: a.dst, src: a.src, tgt: pack(b.dst, b.src)}
		case a.exec == kRshI && b.exec == kMovR:
			f = uop{exec: kFRshMov, dst: a.dst, imm: a.imm, tgt: pack(b.dst, b.src)}
		case a.exec == kMovR && b.exec == kMovR:
			f = uop{exec: kFMovMov, dst: a.dst, src: a.src, tgt: pack(b.dst, b.src)}
		default:
			continue
		}
		code[i] = f
		i++ // consumed second op keeps its slot but is skipped over
	}
	// Second tier: collapse the unrolled hash-mix round — by far the
	// hottest straight-line block in the corpus — into one dispatch. After
	// pair fusion it appears as kMovR, kXorR, kFMovSub, kFMovLshRsh over 7
	// slots (widths 1,1,2,3). All nine register numbers and both shift
	// amounts fit in imm: nibbles d2 s2 d3 s3 t3 d4 s4 at bits 0..27, the
	// lsh amount at 28..33 and the rsh amount at 34..39. Interior slots
	// keep their previous forms, so mid-group entry and the step-limit
	// fallback replay exact per-op semantics.
	for i := 0; i+6 < len(code); i++ {
		a, b, c, d := code[i], code[i+1], code[i+2], code[i+4]
		if a.exec != kMovR || b.exec != kXorR || c.exec != kFMovSub || d.exec != kFMovLshRsh {
			continue
		}
		w := uint64(b.dst) | uint64(b.src)<<4 |
			uint64(c.dst)<<8 | uint64(c.src)<<12 | uint64(c.tgt&15)<<16 |
			uint64(d.dst)<<20 | uint64(d.src)<<24 |
			d.imm<<28 | d.off<<34
		code[i] = uop{exec: kFHash7, dst: a.dst, src: a.src, imm: w}
		i += 6
	}
}

// runFast executes the pre-decoded stream into st. The step-limit and
// pc-bounds checks mirror the reference loop exactly (same fault pc and
// detail, including pc==len on fall-through past the last instruction).
func (m *Machine) runFast(ctx, pkt []byte, st *Stats) (int64, error) {
	fr := &m.fr
	fr.regs = [regSlots]uint64{}
	*st = Stats{}
	fr.stp = st
	fr.ctx, fr.pkt = ctx, pkt
	fr.regs[1] = ctxBase
	fr.regs[10] = stackBase
	m.ktime += 1000

	code := m.code
	cold := m.cold
	regs := &fr.regs
	pred := m.Pred
	cache := m.Cache
	c := &m.cfg.Costs
	aluC, wideC, ldC, stC, brC, brMissC, missC := c.ALU, c.WideImm, c.Load, c.Store, c.Branch, c.BranchMiss, c.CacheMiss
	limit := m.cfg.StepLimit

	// Hot counters stay in registers and are flushed into st only at exit
	// points. memAccess and dop closures add to st directly while amounts
	// are still pending here; accumulation commutes, and nothing observes
	// st before a flush runs.
	var instrs, cycles, branches, misses, crefs, cmisses uint64
	var taken bool

	pc := 0
	for step := 0; ; step++ {
		if step >= limit {
			st.Instructions += instrs
			st.Cycles += cycles
			st.Branches += branches
			st.BranchMisses += misses
			st.CacheRefs += crefs
			st.CacheMisses += cmisses
			return 0, faultf(FaultStepLimit, pc, "step limit %d exceeded", limit)
		}
		if uint(pc) >= uint(len(code)) {
			st.Instructions += instrs
			st.Cycles += cycles
			st.Branches += branches
			st.BranchMisses += misses
			st.CacheRefs += crefs
			st.CacheMisses += cmisses
			return 0, faultf(FaultBadPC, -1, "pc %d out of range", pc)
		}
		u := &code[pc]
		switch u.exec {
		case kMovI:
			instrs++
			cycles += aluC
			regs[u.dst] = u.imm
			pc++
		case kMovR:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.src]
			pc++
		case kAddI:
			instrs++
			cycles += aluC
			regs[u.dst] += u.imm
			pc++
		case kAddR:
			instrs++
			cycles += aluC
			regs[u.dst] += regs[u.src]
			pc++
		case kSubI:
			instrs++
			cycles += aluC
			regs[u.dst] -= u.imm
			pc++
		case kSubR:
			instrs++
			cycles += aluC
			regs[u.dst] -= regs[u.src]
			pc++
		case kAndI:
			instrs++
			cycles += aluC
			regs[u.dst] &= u.imm
			pc++
		case kAndR:
			instrs++
			cycles += aluC
			regs[u.dst] &= regs[u.src]
			pc++
		case kOrI:
			instrs++
			cycles += aluC
			regs[u.dst] |= u.imm
			pc++
		case kOrR:
			instrs++
			cycles += aluC
			regs[u.dst] |= regs[u.src]
			pc++
		case kXorI:
			instrs++
			cycles += aluC
			regs[u.dst] ^= u.imm
			pc++
		case kXorR:
			instrs++
			cycles += aluC
			regs[u.dst] ^= regs[u.src]
			pc++
		case kLshI:
			instrs++
			cycles += aluC
			regs[u.dst] <<= u.imm // pre-masked
			pc++
		case kLshR:
			instrs++
			cycles += aluC
			regs[u.dst] <<= regs[u.src] & 63
			pc++
		case kRshI:
			instrs++
			cycles += aluC
			regs[u.dst] >>= u.imm
			pc++
		case kRshR:
			instrs++
			cycles += aluC
			regs[u.dst] >>= regs[u.src] & 63
			pc++
		case kMulI:
			instrs++
			cycles += aluC
			regs[u.dst] *= u.imm
			pc++
		case kMulR:
			instrs++
			cycles += aluC
			regs[u.dst] *= regs[u.src]
			pc++
		case kArshI:
			instrs++
			cycles += aluC
			regs[u.dst] = uint64(int64(regs[u.dst]) >> u.imm)
			pc++
		case kArshR:
			instrs++
			cycles += aluC
			regs[u.dst] = uint64(int64(regs[u.dst]) >> (regs[u.src] & 63))
			pc++
		case kNeg:
			instrs++
			cycles += aluC
			regs[u.dst] = -regs[u.dst]
			pc++

		case kMov32R:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.src] & 0xffffffff
			pc++
		case kAdd32I:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] + u.imm) & 0xffffffff
			pc++
		case kAdd32R:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] + regs[u.src]) & 0xffffffff
			pc++
		case kSub32I:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] - u.imm) & 0xffffffff
			pc++
		case kSub32R:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] - regs[u.src]) & 0xffffffff
			pc++
		case kAnd32I:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.dst] & u.imm & 0xffffffff
			pc++
		case kAnd32R:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.dst] & regs[u.src] & 0xffffffff
			pc++
		case kOr32I:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] | u.imm) & 0xffffffff
			pc++
		case kOr32R:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] | regs[u.src]) & 0xffffffff
			pc++
		case kXor32I:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] ^ u.imm) & 0xffffffff
			pc++
		case kXor32R:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] ^ regs[u.src]) & 0xffffffff
			pc++
		case kLsh32I:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] << u.imm) & 0xffffffff
			pc++
		case kLsh32R:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] << (regs[u.src] & 31)) & 0xffffffff
			pc++
		case kRsh32I:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] & 0xffffffff) >> u.imm
			pc++
		case kRsh32R:
			instrs++
			cycles += aluC
			regs[u.dst] = (regs[u.dst] & 0xffffffff) >> (regs[u.src] & 31)
			pc++
		case kNeg32:
			instrs++
			cycles += aluC
			regs[u.dst] = (-regs[u.dst]) & 0xffffffff
			pc++

		case kFMovLshRsh:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.src]
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[u.dst] <<= u.imm
			if step+1 >= limit {
				pc += 2
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[u.dst] >>= u.off
			pc += 3
		case kFMovLsh:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.src]
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[u.dst] <<= u.imm
			pc += 2
		case kFMovXor:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.src]
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[u.dst] ^= u.imm
			pc += 2
		case kFMovAddI:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.src]
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[u.dst] += u.imm
			pc += 2
		case kFMovSub:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.src]
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[u.dst] -= regs[u.tgt]
			pc += 2
		case kFLshRsh:
			instrs++
			cycles += aluC
			regs[u.dst] <<= u.imm
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[u.dst] >>= u.off
			pc += 2
		case kFXorMov:
			instrs++
			cycles += aluC
			regs[u.dst] ^= u.imm
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[uint8(u.tgt>>8)] = regs[uint8(u.tgt)]
			pc += 2
		case kFSubMov:
			instrs++
			cycles += aluC
			regs[u.dst] -= regs[u.src]
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[uint8(u.tgt>>8)] = regs[uint8(u.tgt)]
			pc += 2
		case kFRshMov:
			instrs++
			cycles += aluC
			regs[u.dst] >>= u.imm
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[uint8(u.tgt>>8)] = regs[uint8(u.tgt)]
			pc += 2
		case kFMovMov:
			instrs++
			cycles += aluC
			regs[u.dst] = regs[u.src]
			if step+1 >= limit {
				pc++
				continue
			}
			step++
			instrs++
			cycles += aluC
			regs[uint8(u.tgt>>8)] = regs[uint8(u.tgt)]
			pc += 2
		case kFHash7:
			if step+7 > limit {
				// Can't complete the group before the limit: execute
				// the head element only and fall through to the
				// retained interior ops, which re-check per op.
				instrs++
				cycles += aluC
				regs[u.dst] = regs[u.src]
				pc++
				continue
			}
			w := u.imm
			regs[u.dst] = regs[u.src]
			regs[w&15] ^= regs[w>>4&15]
			regs[w>>8&15] = regs[w>>12&15]
			regs[w>>8&15] -= regs[w>>16&15]
			regs[w>>20&15] = regs[w>>24&15] << (w >> 28 & 63) >> (w >> 34 & 63)
			instrs += 7
			cycles += 7 * aluC
			step += 6
			pc += 7

		case kAluI:
			instrs++
			cycles += aluC
			regs[u.dst] = cold[pc].alu(regs[u.dst], u.imm)
			pc++
		case kAluR:
			instrs++
			cycles += aluC
			regs[u.dst] = cold[pc].alu(regs[u.dst], regs[u.src])
			pc++

		case kLddw:
			instrs += 2
			cycles += wideC
			regs[u.dst] = u.imm
			pc++

		case kLdx1, kLdx2, kLdx4, kLdx8:
			instrs++
			cycles += ldC
			size := 1 << (u.exec - kLdx1)
			addr := regs[u.src] + u.off
			// Inline the hot regions (stack first: any wrapped range
			// matches it in both engines); cold regions and faults take
			// the generic fallback.
			var buf []byte
			var o int
			var err error
			end := addr + uint64(size)
			switch {
			case addr >= stackBase-StackSize && end <= stackBase:
				buf, o = m.stack[:], int(addr-(stackBase-StackSize))
			case addr >= pktBase && end <= pktBase+uint64(len(pkt)):
				buf, o = pkt, int(addr-pktBase)
			case addr >= ctxBase && end <= ctxBase+uint64(len(ctx)):
				buf, o = ctx, int(addr-ctxBase)
			default:
				buf, o, err = m.region(addr, size, ctx, pkt)
			}
			if err == nil {
				crefs++
				if cache != nil {
					if !cache.Access(addr) {
						cmisses++
						cycles += missC
					}
				}
			} else {
				st.Instructions += instrs
				st.Cycles += cycles
				st.Branches += branches
				st.BranchMisses += misses
				st.CacheRefs += crefs
				st.CacheMisses += cmisses
				return 0, wrapFault(err, FaultBadMemory, pc, cold[pc].mn)
			}
			switch u.exec {
			case kLdx1:
				regs[u.dst] = uint64(buf[o])
			case kLdx2:
				regs[u.dst] = uint64(binary.LittleEndian.Uint16(buf[o:]))
			case kLdx4:
				regs[u.dst] = uint64(binary.LittleEndian.Uint32(buf[o:]))
			default:
				regs[u.dst] = binary.LittleEndian.Uint64(buf[o:])
			}
			pc++

		case kStx1, kStx2, kStx4, kStx8, kSti1, kSti2, kSti4, kSti8:
			instrs++
			cycles += stC
			k := u.exec
			v := u.imm
			if k <= kStx8 {
				v = regs[u.src]
			} else {
				k -= kSti1 - kStx1
			}
			size := 1 << (k - kStx1)
			addr := regs[u.dst] + u.off
			var buf []byte
			var o int
			var err error
			end := addr + uint64(size)
			switch {
			case addr >= stackBase-StackSize && end <= stackBase:
				buf, o = m.stack[:], int(addr-(stackBase-StackSize))
			case addr >= pktBase && end <= pktBase+uint64(len(pkt)):
				buf, o = pkt, int(addr-pktBase)
			case addr >= ctxBase && end <= ctxBase+uint64(len(ctx)):
				buf, o = ctx, int(addr-ctxBase)
			default:
				buf, o, err = m.region(addr, size, ctx, pkt)
			}
			if err == nil {
				crefs++
				if cache != nil {
					if !cache.Access(addr) {
						cmisses++
						cycles += missC
					}
				}
			} else {
				st.Instructions += instrs
				st.Cycles += cycles
				st.Branches += branches
				st.BranchMisses += misses
				st.CacheRefs += crefs
				st.CacheMisses += cmisses
				return 0, wrapFault(err, FaultBadMemory, pc, cold[pc].mn)
			}
			switch k {
			case kStx1:
				buf[o] = byte(v)
			case kStx2:
				binary.LittleEndian.PutUint16(buf[o:], uint16(v))
			case kStx4:
				binary.LittleEndian.PutUint32(buf[o:], uint32(v))
			default:
				binary.LittleEndian.PutUint64(buf[o:], v)
			}
			pc++

		case kJa:
			instrs++
			cycles += brC
			pc = int(u.tgt)

		case kJeqI:
			taken = regs[u.dst] == u.imm
			goto brTail
		case kJeqR:
			taken = regs[u.dst] == regs[u.src]
			goto brTail
		case kJneI:
			taken = regs[u.dst] != u.imm
			goto brTail
		case kJneR:
			taken = regs[u.dst] != regs[u.src]
			goto brTail
		case kJgtI:
			taken = regs[u.dst] > u.imm
			goto brTail
		case kJgtR:
			taken = regs[u.dst] > regs[u.src]
			goto brTail
		case kJgeI:
			taken = regs[u.dst] >= u.imm
			goto brTail
		case kJgeR:
			taken = regs[u.dst] >= regs[u.src]
			goto brTail
		case kJltI:
			taken = regs[u.dst] < u.imm
			goto brTail
		case kJltR:
			taken = regs[u.dst] < regs[u.src]
			goto brTail
		case kJleI:
			taken = regs[u.dst] <= u.imm
			goto brTail
		case kJleR:
			taken = regs[u.dst] <= regs[u.src]
			goto brTail
		case kJsetI:
			taken = regs[u.dst]&u.imm != 0
			goto brTail
		case kJsetR:
			taken = regs[u.dst]&regs[u.src] != 0
			goto brTail
		case kJsgtI:
			taken = int64(regs[u.dst]) > int64(u.imm)
			goto brTail
		case kJsgtR:
			taken = int64(regs[u.dst]) > int64(regs[u.src])
			goto brTail
		case kJsgeI:
			taken = int64(regs[u.dst]) >= int64(u.imm)
			goto brTail
		case kJsgeR:
			taken = int64(regs[u.dst]) >= int64(regs[u.src])
			goto brTail
		case kJsltI:
			taken = int64(regs[u.dst]) < int64(u.imm)
			goto brTail
		case kJsltR:
			taken = int64(regs[u.dst]) < int64(regs[u.src])
			goto brTail
		case kJsleI:
			taken = int64(regs[u.dst]) <= int64(u.imm)
			goto brTail
		case kJsleR:
			taken = int64(regs[u.dst]) <= int64(regs[u.src])
			goto brTail

		case kJccI, kJccR:
			b := u.imm
			if u.exec == kJccR {
				b = regs[u.src]
			}
			taken = cold[pc].cmp(regs[u.dst], b)
			goto brTail

		case kExit:
			instrs++
			cycles += brC
			st.Instructions += instrs
			st.Cycles += cycles
			st.Branches += branches
			st.BranchMisses += misses
			st.CacheRefs += crefs
			st.CacheMisses += cmisses
			m.Total.Add(*st)
			return int64(regs[0]), nil

		default: // kClosure
			pc = cold[pc].d(m, fr)
			if pc < 0 {
				st.Instructions += instrs
				st.Cycles += cycles
				st.Branches += branches
				st.BranchMisses += misses
				st.CacheRefs += crefs
				st.CacheMisses += cmisses
				if pc == opExit {
					m.Total.Add(*st)
					return fr.rv, nil
				}
				return 0, fr.err
			}
		}
		continue

		// Shared conditional-branch tail: every jcc kind computes taken
		// and lands here for accounting, prediction and target selection.
	brTail:
		instrs++
		branches++
		cycles += brC
		if pred != nil {
			if !pred.Predict(int(cold[pc].slot), taken) {
				misses++
				cycles += brMissC
			}
		}
		if !taken {
			pc++
		} else if u.tgt >= 0 {
			pc = int(u.tgt)
		} else {
			st.Instructions += instrs
			st.Cycles += cycles
			st.Branches += branches
			st.BranchMisses += misses
			st.CacheRefs += crefs
			st.CacheMisses += cmisses
			return 0, cold[pc].fe
		}
	}
}

// memAccess resolves a load/store address and charges the cache model,
// identically to the reference interpreter's per-run closure. The hot
// regions (stack first — any wrapped range matches it in both engines —
// then packet, context and map values) resolve inline; kernel memory and
// faulting addresses take the generic region fallback.
func (m *Machine) memAccess(fr *frame, addr uint64, size int) ([]byte, int, error) {
	var buf []byte
	var off int
	end := addr + uint64(size)
	switch {
	case addr >= stackBase-StackSize && end <= stackBase:
		buf, off = m.stack[:], int(addr-(stackBase-StackSize))
	case addr >= pktBase && end <= pktBase+uint64(len(fr.pkt)):
		buf, off = fr.pkt, int(addr-pktBase)
	case addr >= ctxBase && end <= ctxBase+uint64(len(fr.ctx)):
		buf, off = fr.ctx, int(addr-ctxBase)
	default:
		var err error
		buf, off, err = m.region(addr, size, fr.ctx, fr.pkt)
		if err != nil {
			return nil, 0, err
		}
	}
	fr.stp.CacheRefs++
	if m.Cache != nil {
		if !m.Cache.Access(addr) {
			fr.stp.CacheMisses++
			fr.stp.Cycles += m.cfg.Costs.CacheMiss
		}
	}
	return buf, off, nil
}

// faultDop builds a closure for an instruction that always faults, charging
// the given instruction slots and cycles first (mirroring how far the
// reference interpreter accounts before rejecting).
func faultDop(slots, cost uint64, e *RuntimeError) dop {
	return func(m *Machine, fr *frame) int {
		fr.stp.Instructions += slots
		fr.stp.Cycles += cost
		fr.err = e
		return opFault
	}
}

func closureOp(d dop) (uop, coldOp) { return uop{exec: kClosure}, coldOp{d: d} }

func (m *Machine) compileInsn(pc int, ins ebpf.Instruction) (uop, coldOp, error) {
	c := m.cfg.Costs
	slots := uint64(ins.Slots())

	switch ins.Class() {
	case ebpf.ClassALU64:
		u, co := compileALU(ins, false, pc, c.ALU)
		return u, co, nil
	case ebpf.ClassALU:
		u, co := compileALU(ins, true, pc, c.ALU)
		return u, co, nil

	case ebpf.ClassLD:
		if !ins.IsWide() {
			u, co := closureOp(faultDop(slots, 0, faultf(FaultBadInstruction, pc, "unsupported legacy ld")))
			return u, co, nil
		}
		val := uint64(ins.Imm64)
		if ins.IsMapLoad() {
			// Pre-bind the map slot: the runtime handle is a compile-time
			// constant.
			val = mapHandle + uint64(ins.Imm64)
		}
		return uop{exec: kLddw, dst: uint8(ins.Dst), imm: val}, coldOp{}, nil

	case ebpf.ClassLDX:
		u := uop{
			dst: uint8(ins.Dst), src: uint8(ins.Src),
			off: uint64(int64(ins.Offset)),
		}
		switch ins.SizeField().Bytes() {
		case 1:
			u.exec = kLdx1
		case 2:
			u.exec = kLdx2
		case 4:
			u.exec = kLdx4
		default:
			u.exec = kLdx8
		}
		return u, coldOp{mn: ebpf.Mnemonic(ins)}, nil

	case ebpf.ClassST, ebpf.ClassSTX:
		if ins.IsAtomic() {
			u, co := closureOp(compileAtomic(&c, ins, pc))
			return u, co, nil
		}
		u := uop{
			dst: uint8(ins.Dst), src: uint8(ins.Src),
			off: uint64(int64(ins.Offset)),
		}
		base := kStx1
		if ins.Class() == ebpf.ClassST {
			base = kSti1
			u.imm = uint64(int64(ins.Imm))
		}
		switch ins.SizeField().Bytes() {
		case 1:
			u.exec = base
		case 2:
			u.exec = base + 1
		case 4:
			u.exec = base + 2
		default:
			u.exec = base + 3
		}
		return u, coldOp{mn: ebpf.Mnemonic(ins)}, nil

	case ebpf.ClassJMP, ebpf.ClassJMP32:
		u, co := m.compileJump(&c, ins, pc)
		return u, co, nil

	default:
		e := faultf(FaultBadInstruction, pc, "unsupported class %s", ins.Class())
		u, co := closureOp(faultDop(slots, 0, e))
		return u, co, nil
	}
}

// compileALU maps an ALU instruction to an inline micro-op where one exists
// and to the generic kAluI/kAluR (via a binALU function) otherwise.
func compileALU(ins ebpf.Instruction, is32 bool, pc int, aluCost uint64) (uop, coldOp) {
	op := ins.ALUOpField()
	u := uop{dst: uint8(ins.Dst), src: uint8(ins.Src)}
	isReg := ins.SourceField() == ebpf.SourceX
	u.imm = uint64(int64(ins.Imm))

	if op == ebpf.ALUEnd {
		// Byte swap works on the full register regardless of class width;
		// the swap width rides in the immediate.
		bits := ins.Imm
		u.exec = kAluI
		return u, coldOp{alu: func(a, _ uint64) uint64 { return bswapBits(a, bits) }}
	}

	type pair struct{ imm, reg uint8 }
	var tbl map[ebpf.ALUOp]pair
	if is32 {
		tbl = map[ebpf.ALUOp]pair{
			ebpf.ALUAdd: {kAdd32I, kAdd32R},
			ebpf.ALUSub: {kSub32I, kSub32R},
			ebpf.ALUAnd: {kAnd32I, kAnd32R},
			ebpf.ALUOr:  {kOr32I, kOr32R},
			ebpf.ALUXor: {kXor32I, kXor32R},
			ebpf.ALULsh: {kLsh32I, kLsh32R},
			ebpf.ALURsh: {kRsh32I, kRsh32R},
			// mov32 imm zero-extends a pre-masked immediate: plain kMovI.
			ebpf.ALUMov: {kMovI, kMov32R},
			ebpf.ALUNeg: {kNeg32, kNeg32},
		}
	} else {
		tbl = map[ebpf.ALUOp]pair{
			ebpf.ALUAdd:  {kAddI, kAddR},
			ebpf.ALUSub:  {kSubI, kSubR},
			ebpf.ALUAnd:  {kAndI, kAndR},
			ebpf.ALUOr:   {kOrI, kOrR},
			ebpf.ALUXor:  {kXorI, kXorR},
			ebpf.ALULsh:  {kLshI, kLshR},
			ebpf.ALURsh:  {kRshI, kRshR},
			ebpf.ALUMul:  {kMulI, kMulR},
			ebpf.ALUArsh: {kArshI, kArshR},
			ebpf.ALUMov:  {kMovI, kMovR},
			ebpf.ALUNeg:  {kNeg, kNeg},
		}
	}
	if p, ok := tbl[op]; ok {
		if isReg {
			u.exec = p.reg
		} else {
			u.exec = p.imm
			switch op {
			case ebpf.ALULsh, ebpf.ALURsh, ebpf.ALUArsh:
				// Shift amounts are masked at decode, not per execution.
				if is32 {
					u.imm &= 31
				} else {
					u.imm &= 63
				}
			case ebpf.ALUMov:
				if is32 {
					u.imm &= 0xffffffff
				}
			}
		}
		return u, coldOp{}
	}

	// Cold ops (div, mod, 32-bit mul/arsh) via the generic path; unknown ops
	// fault after charging the ALU cycle, exactly like the reference.
	f := binALU(op, is32)
	if f == nil {
		e := faultf(FaultBadInstruction, pc, "unsupported alu op %#x", ins.Opcode)
		return closureOp(faultDop(uint64(ins.Slots()), aluCost, e))
	}
	if isReg {
		u.exec = kAluR
	} else {
		u.exec = kAluI
	}
	return u, coldOp{alu: f}
}

// binALU returns the arithmetic for an ALU op with the reference
// interpreter's exact masking (operands masked before div/mod/shift in
// 32-bit mode, results truncated after), or nil for unknown ops.
func binALU(op ebpf.ALUOp, is32 bool) func(a, b uint64) uint64 {
	const m32 = 0xffffffff
	if is32 {
		switch op {
		case ebpf.ALUMul:
			return func(a, b uint64) uint64 { return (a * b) & m32 }
		case ebpf.ALUDiv:
			return func(a, b uint64) uint64 {
				a, b = a&m32, b&m32
				if b == 0 {
					return 0
				}
				return a / b
			}
		case ebpf.ALUMod:
			return func(a, b uint64) uint64 {
				a, b = a&m32, b&m32
				if b == 0 {
					return a
				}
				return a % b
			}
		case ebpf.ALUArsh:
			return func(a, b uint64) uint64 { return uint64(uint32(int32(uint32(a)) >> (b & 31))) }
		}
		return nil
	}
	switch op {
	case ebpf.ALUDiv:
		return func(a, b uint64) uint64 {
			if b == 0 {
				return 0
			}
			return a / b
		}
	case ebpf.ALUMod:
		return func(a, b uint64) uint64 {
			if b == 0 {
				return a
			}
			return a % b
		}
	}
	return nil
}

func compileAtomic(c *CostModel, ins ebpf.Instruction, pc int) dop {
	slots := uint64(ins.Slots())
	cost := c.Atomic
	dst, src := ins.Dst, ins.Src
	off := uint64(int64(ins.Offset))
	size := ins.SizeField().Bytes()
	mn := ebpf.Mnemonic(ins)

	f := atomicFunc(ebpf.AtomicOp(ins.Imm))
	if f == nil {
		// Unknown atomic op: the reference interpreter resolves (and
		// charges) the memory access before rejecting the op.
		e := faultf(FaultBadInstruction, pc, "unknown atomic op %#x", ins.Imm)
		return func(m *Machine, fr *frame) int {
			fr.stp.Instructions += slots
			fr.stp.Cycles += cost
			if _, _, err := m.memAccess(fr, fr.regs[dst]+off, size); err != nil {
				fr.err = wrapFault(err, FaultBadMemory, pc, mn)
				return opFault
			}
			fr.err = e
			return opFault
		}
	}
	next := pc + 1
	return func(m *Machine, fr *frame) int {
		fr.stp.Instructions += slots
		fr.stp.Cycles += cost
		buf, o, err := m.memAccess(fr, fr.regs[dst]+off, size)
		if err != nil {
			fr.err = wrapFault(err, FaultBadMemory, pc, mn)
			return opFault
		}
		old := loadBytes(buf[o:], size)
		storeBytes(buf[o:], size, f(old, fr.regs[src]))
		return next
	}
}

func atomicFunc(op ebpf.AtomicOp) func(old, src uint64) uint64 {
	switch op {
	case ebpf.AtomicAdd:
		return func(old, src uint64) uint64 { return old + src }
	case ebpf.AtomicOr:
		return func(old, src uint64) uint64 { return old | src }
	case ebpf.AtomicAnd:
		return func(old, src uint64) uint64 { return old & src }
	case ebpf.AtomicXor:
		return func(old, src uint64) uint64 { return old ^ src }
	}
	return nil
}

func (m *Machine) compileJump(c *CostModel, ins ebpf.Instruction, pc int) (uop, coldOp) {
	slots := uint64(ins.Slots())

	switch ins.JumpOpField() {
	case ebpf.JumpExit:
		return uop{exec: kExit}, coldOp{}

	case ebpf.JumpCall:
		return closureOp(compileCall(c, ins, pc))

	case ebpf.JumpAlways:
		tgt, ok := m.elemAt[m.slotOf[pc]+ins.Slots()+int(ins.Offset)]
		if !ok {
			e := faultf(FaultBadPC, pc, "bad jump target")
			return closureOp(faultDop(slots, c.Branch, e))
		}
		return uop{exec: kJa, tgt: int32(tgt)}, coldOp{}
	}

	// Conditional branch: operands, comparison and the taken-side target are
	// all resolved now; a missing target faults only when the branch is
	// taken, as in the reference interpreter.
	slot := m.slotOf[pc]
	u := uop{
		dst: uint8(ins.Dst),
		src: uint8(ins.Src),
		imm: uint64(int64(ins.Imm)),
		tgt: -1,
	}
	co := coldOp{
		cmp:  cmpFunc(ins.JumpOpField(), ins.Class() == ebpf.ClassJMP32),
		slot: int32(slot),
	}
	if tgt, ok := m.elemAt[slot+ins.Slots()+int(ins.Offset)]; ok {
		u.tgt = int32(tgt)
	} else {
		co.fe = faultf(FaultBadPC, pc, "bad branch target")
	}
	isReg := ins.SourceField() == ebpf.SourceX
	if k, ok := jccKind[ins.JumpOpField()]; ok && ins.Class() == ebpf.ClassJMP {
		u.exec = k
		if isReg {
			u.exec++
		}
		return u, co
	}
	if isReg {
		u.exec = kJccR
	} else {
		u.exec = kJccI
	}
	return u, co
}

// cmpFunc returns the comparison for a conditional jump, with JMP32's
// 32-bit truncation folded in. Unknown ops compare as never-taken, matching
// evalJump's default.
func cmpFunc(op ebpf.JumpOp, is32 bool) func(a, b uint64) bool {
	u := func(f func(a, b uint64) bool) func(a, b uint64) bool {
		if !is32 {
			return f
		}
		return func(a, b uint64) bool { return f(a&0xffffffff, b&0xffffffff) }
	}
	s := func(f func(a, b int64) bool) func(a, b uint64) bool {
		if is32 {
			return func(a, b uint64) bool { return f(int64(int32(uint32(a))), int64(int32(uint32(b)))) }
		}
		return func(a, b uint64) bool { return f(int64(a), int64(b)) }
	}
	switch op {
	case ebpf.JumpEq:
		return u(func(a, b uint64) bool { return a == b })
	case ebpf.JumpNE:
		return u(func(a, b uint64) bool { return a != b })
	case ebpf.JumpGT:
		return u(func(a, b uint64) bool { return a > b })
	case ebpf.JumpGE:
		return u(func(a, b uint64) bool { return a >= b })
	case ebpf.JumpLT:
		return u(func(a, b uint64) bool { return a < b })
	case ebpf.JumpLE:
		return u(func(a, b uint64) bool { return a <= b })
	case ebpf.JumpSet:
		return u(func(a, b uint64) bool { return a&b != 0 })
	case ebpf.JumpSGT:
		return s(func(a, b int64) bool { return a > b })
	case ebpf.JumpSGE:
		return s(func(a, b int64) bool { return a >= b })
	case ebpf.JumpSLT:
		return s(func(a, b int64) bool { return a < b })
	case ebpf.JumpSLE:
		return s(func(a, b int64) bool { return a <= b })
	}
	return func(a, b uint64) bool { return false }
}

// compileCall pre-binds the helper thunk: spec lookup, cycle cost and body
// are resolved at load time. Unknown or unimplemented helpers compile to
// closures producing the reference interpreter's fault (with its exact
// cost accounting: the spec cost is charged only once the helper is known).
func compileCall(c *CostModel, ins ebpf.Instruction, pc int) dop {
	slots := uint64(ins.Slots())
	callCost := c.CallBase
	next := pc + 1
	id := int(ins.Imm)

	spec, ok := helpers.Table[id]
	if !ok {
		e := &RuntimeError{Kind: FaultHelper, PC: pc, Detail: fmt.Sprintf("unknown helper %d", id)}
		return func(m *Machine, fr *frame) int {
			fr.stp.Instructions += slots
			fr.stp.Cycles += callCost
			fr.stp.HelperCalls++
			fr.err = e
			return opFault
		}
	}
	helperCost := spec.Cost
	body, ok := helperBodies[id]
	if !ok {
		e := &RuntimeError{Kind: FaultHelper, PC: pc, Detail: fmt.Sprintf("helper %s not implemented", spec.Name)}
		return func(m *Machine, fr *frame) int {
			fr.stp.Instructions += slots
			fr.stp.Cycles += callCost
			fr.stp.HelperCalls++
			fr.stp.Cycles += helperCost
			fr.err = e
			return opFault
		}
	}
	return func(m *Machine, fr *frame) int {
		fr.stp.Instructions += slots
		fr.stp.Cycles += callCost
		fr.stp.HelperCalls++
		fr.stp.Cycles += helperCost
		if err := body(m, &fr.regs, fr.ctx, fr.pkt); err != nil {
			fr.err = wrapFault(err, FaultHelper, pc, "")
			return opFault
		}
		return next
	}
}
