package vm

import "merlin/internal/metrics"

// Metrics holds preresolved registry handles for per-run VM telemetry.
// Handles are looked up once at construction; recording a run is a handful
// of atomic adds with no locks and no heap allocation, cheap enough for the
// packet path (guarded by TestRunMetricsAllocationFree). One Metrics value
// is typically shared by every Machine a deployment manager creates, so the
// counters aggregate across live and mirrored programs.
type Metrics struct {
	runs      *metrics.Counter
	insns     *metrics.Counter
	cycles    *metrics.Counter
	helpers   *metrics.Counter
	runCycles *metrics.Histogram
	runInsns  *metrics.Histogram
	faults    map[FaultKind]*metrics.Counter
	faultMisc *metrics.Counter
}

// NewMetrics registers the VM metric family in reg and returns the handles.
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		runs: reg.Counter("merlin_vm_runs_total",
			"Machine.Run invocations, including faulted runs."),
		insns: reg.Counter("merlin_vm_instructions_total",
			"eBPF instructions executed across all runs."),
		cycles: reg.Counter("merlin_vm_cycles_total",
			"Modeled cycles consumed across all runs."),
		helpers: reg.Counter("merlin_vm_helper_calls_total",
			"Helper invocations across all runs."),
		runCycles: reg.Histogram("merlin_vm_run_cycles",
			"Per-run modeled cycle cost (log2 buckets)."),
		runInsns: reg.Histogram("merlin_vm_run_instructions",
			"Per-run executed instruction count (log2 buckets)."),
		faults: map[FaultKind]*metrics.Counter{},
		faultMisc: reg.Counter("merlin_vm_faults_total",
			"Runtime faults by kind.", "kind", "other"),
	}
	for _, k := range []FaultKind{
		FaultStepLimit, FaultBadPC, FaultBadMemory, FaultBadInstruction, FaultHelper,
	} {
		m.faults[k] = reg.Counter("merlin_vm_faults_total",
			"Runtime faults by kind.", "kind", string(k))
	}
	return m
}

// record accounts one finished run. Safe on a nil receiver so Machine.Run
// does not branch on configuration.
func (m *Metrics) record(st Stats, err error) {
	if m == nil {
		return
	}
	m.runs.Add(1)
	m.insns.Add(st.Instructions)
	m.cycles.Add(st.Cycles)
	m.helpers.Add(st.HelperCalls)
	m.runCycles.Observe(st.Cycles)
	m.runInsns.Observe(st.Instructions)
	if err != nil {
		c := m.faultMisc
		if re, ok := AsRuntimeError(err); ok {
			if fc := m.faults[re.Kind]; fc != nil {
				c = fc
			}
		}
		c.Add(1)
	}
}
