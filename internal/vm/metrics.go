package vm

import "merlin/internal/metrics"

// Metrics holds preresolved registry handles for per-run VM telemetry.
// Handles are looked up once at construction; recording a run is a handful
// of atomic adds with no locks and no heap allocation, cheap enough for the
// packet path (guarded by TestRunMetricsAllocationFree). One Metrics value
// is typically shared by every Machine a deployment manager creates, so the
// counters aggregate across live and mirrored programs.
type Metrics struct {
	runs      *metrics.Counter
	insns     *metrics.Counter
	cycles    *metrics.Counter
	helpers   *metrics.Counter
	runCycles *metrics.Histogram
	runInsns  *metrics.Histogram
	faults    map[FaultKind]*metrics.Counter
	faultMisc *metrics.Counter
	// lastFaultPC gauges act as exemplars: the instruction index of the most
	// recent fault of each kind, so an operator reading a scrape can jump from
	// "faults are climbing" straight to the offending instruction without
	// trawling logs. -1 means the fault had no attributable instruction.
	lastFaultPC   map[FaultKind]*metrics.Gauge
	lastFaultMisc *metrics.Gauge
}

// NewMetrics registers the VM metric family in reg and returns the handles.
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		runs: reg.Counter("merlin_vm_runs_total",
			"Machine.Run invocations, including faulted runs."),
		insns: reg.Counter("merlin_vm_instructions_total",
			"eBPF instructions executed across all runs."),
		cycles: reg.Counter("merlin_vm_cycles_total",
			"Modeled cycles consumed across all runs."),
		helpers: reg.Counter("merlin_vm_helper_calls_total",
			"Helper invocations across all runs."),
		runCycles: reg.Histogram("merlin_vm_run_cycles",
			"Per-run modeled cycle cost (log2 buckets)."),
		runInsns: reg.Histogram("merlin_vm_run_instructions",
			"Per-run executed instruction count (log2 buckets)."),
		faults: map[FaultKind]*metrics.Counter{},
		faultMisc: reg.Counter("merlin_vm_faults_total",
			"Runtime faults by kind.", "kind", "other"),
		lastFaultPC: map[FaultKind]*metrics.Gauge{},
		lastFaultMisc: reg.Gauge("merlin_vm_last_fault_pc",
			"Instruction index of the most recent fault of each kind (-1: unattributed).",
			"kind", "other"),
	}
	for _, k := range []FaultKind{
		FaultStepLimit, FaultBadPC, FaultBadMemory, FaultBadInstruction, FaultHelper,
	} {
		m.faults[k] = reg.Counter("merlin_vm_faults_total",
			"Runtime faults by kind.", "kind", string(k))
		m.lastFaultPC[k] = reg.Gauge("merlin_vm_last_fault_pc",
			"Instruction index of the most recent fault of each kind (-1: unattributed).",
			"kind", string(k))
	}
	return m
}

// record accounts one finished run. Safe on a nil receiver so Machine.Run
// does not branch on configuration.
func (m *Metrics) record(st Stats, err error) {
	if m == nil {
		return
	}
	m.runs.Add(1)
	m.insns.Add(st.Instructions)
	m.cycles.Add(st.Cycles)
	m.helpers.Add(st.HelperCalls)
	m.runCycles.Observe(st.Cycles)
	m.runInsns.Observe(st.Instructions)
	if err != nil {
		c, g, pc := m.faultMisc, m.lastFaultMisc, -1
		if re, ok := AsRuntimeError(err); ok {
			pc = re.PC
			if fc := m.faults[re.Kind]; fc != nil {
				c = fc
				g = m.lastFaultPC[re.Kind]
			}
		}
		c.Add(1)
		g.Set(int64(pc))
	}
}
