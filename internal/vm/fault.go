package vm

import (
	"errors"
	"fmt"
)

// FaultKind classifies how a program faulted at runtime. The lifecycle
// watchdog (internal/lifecycle) keys its quarantine decisions off these
// kinds instead of matching error strings.
type FaultKind string

const (
	// FaultStepLimit: the program exceeded Config.StepLimit (runaway loop).
	FaultStepLimit FaultKind = "step-limit"
	// FaultBadPC: the program counter left the instruction stream, or a
	// branch resolved to no instruction boundary.
	FaultBadPC FaultKind = "bad-pc"
	// FaultBadMemory: a load, store or helper memory argument fell outside
	// every mapped region (stack, ctx, packet, kmem, map values).
	FaultBadMemory FaultKind = "bad-memory"
	// FaultBadInstruction: an undecodable or unsupported instruction was
	// executed (legacy ld, unknown ALU/atomic op, unknown class).
	FaultBadInstruction FaultKind = "bad-instruction"
	// FaultHelper: a helper call failed (unknown helper id, bad map handle,
	// unsupported helper for this machine).
	FaultHelper FaultKind = "helper"
)

// RuntimeError is the typed error Machine.Run returns when a program faults.
// PC is the element index of the faulting instruction (as used by the
// disassembler), or -1 when the fault cannot be attributed to one.
type RuntimeError struct {
	Kind   FaultKind
	PC     int
	Detail string
}

func (e *RuntimeError) Error() string {
	if e.PC < 0 {
		return fmt.Sprintf("vm: %s: %s", e.Kind, e.Detail)
	}
	return fmt.Sprintf("vm: %s at insn %d: %s", e.Kind, e.PC, e.Detail)
}

// AsRuntimeError unwraps err to the machine's typed runtime error, if any.
func AsRuntimeError(err error) (*RuntimeError, bool) {
	var re *RuntimeError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// faultf builds a RuntimeError at a known instruction.
func faultf(kind FaultKind, pc int, format string, args ...any) *RuntimeError {
	return &RuntimeError{Kind: kind, PC: pc, Detail: fmt.Sprintf(format, args...)}
}

// wrapFault attributes an error bubbling out of a memory, helper or ALU path
// to the executing instruction: an existing RuntimeError keeps its kind and
// gains the pc (and context prefix); anything else is adapted into one with
// the given default kind.
func wrapFault(err error, kind FaultKind, pc int, context string) *RuntimeError {
	re, ok := AsRuntimeError(err)
	if !ok {
		re = &RuntimeError{Kind: kind, PC: -1, Detail: err.Error()}
	}
	if re.PC < 0 {
		re.PC = pc
	}
	if context != "" {
		re.Detail = context + ": " + re.Detail
	}
	return re
}
