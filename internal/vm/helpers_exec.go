package vm

import (
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

// Helper implementations shared by both execution engines. The reference
// interpreter dispatches through Machine.call's table lookup; the pre-decoded
// engine binds the body once at load time (decode.go). Keeping a single body
// per helper is what makes the engines' helper semantics identical by
// construction — including the exact register-clobber and early-return
// behavior the differential rig asserts on.
//
// Contract per body: on a nil return, r0 holds the helper's result and the
// caller-saved registers r1-r5 are clobbered if and only if the body called
// clobberCallerSaved (the kernel always clobbers; probe_read's source-fault
// path historically returns -1 in r0 *without* reaching the clobber, and both
// engines preserve that quirk). A non-nil return faults the program with
// FaultHelper (or the body's own RuntimeError kind).

// helperBody executes one helper invocation against the machine's state.
type helperBody func(m *Machine, regs *[regSlots]uint64, ctx, pkt []byte) error

// helperBodies maps helper IDs to implementations. A Table entry with no
// body here faults as "not implemented", exactly as before the split.
var helperBodies = map[int]helperBody{
	helpers.MapLookupElem:     (*Machine).hMapLookupElem,
	helpers.MapUpdateElem:     (*Machine).hMapUpdateElem,
	helpers.MapDeleteElem:     (*Machine).hMapDeleteElem,
	helpers.ProbeRead:         (*Machine).hProbeRead,
	helpers.KtimeGetNS:        (*Machine).hKtimeGetNS,
	helpers.TracePrintk:       (*Machine).hTracePrintk,
	helpers.GetPrandomU32:     (*Machine).hGetPrandomU32,
	helpers.GetSmpProcessorID: (*Machine).hGetSmpProcessorID,
	helpers.GetCurrentPidTgid: (*Machine).hGetCurrentPidTgid,
	helpers.GetCurrentComm:    (*Machine).hGetCurrentComm,
	helpers.Redirect:          (*Machine).hRedirect,
	helpers.RedirectMap:       (*Machine).hRedirectMap,
	helpers.PerfEventOutput:   (*Machine).hPerfEventOutput,
}

// clobberCallerSaved poisons r1-r5 the way the kernel's calling convention
// does after a helper returns.
func clobberCallerSaved(regs *[regSlots]uint64) {
	regs[1], regs[2], regs[3], regs[4], regs[5] = 0xdead1, 0xdead2, 0xdead3, 0xdead4, 0xdead5
}

// mapArg resolves a map handle register value to a map index.
func (m *Machine) mapArg(h uint64, helperName string) (int, error) {
	idx := int(h - mapHandle)
	if h < mapHandle || idx >= len(m.maps) {
		return 0, fmt.Errorf("%s: bad map handle %#x", helperName, h)
	}
	return idx, nil
}

// helperMem resolves an n-byte helper memory argument. Helper accesses are
// not charged to the cache model (matching the original interpreter).
func (m *Machine) helperMem(addr uint64, n int, ctx, pkt []byte) ([]byte, error) {
	buf, off, err := m.region(addr, n, ctx, pkt)
	if err != nil {
		return nil, err
	}
	return buf[off : off+n], nil
}

func (m *Machine) hMapLookupElem(regs *[regSlots]uint64, ctx, pkt []byte) error {
	idx, err := m.mapArg(regs[1], "map_lookup_elem")
	if err != nil {
		return err
	}
	mp := m.maps[idx]
	key, err := m.helperMem(regs[2], m.mapKeySz[idx], ctx, pkt)
	if err != nil {
		return err
	}
	off := mp.Lookup(key, m.cfg.CPU)
	if off < 0 {
		regs[0] = 0
	} else {
		regs[0] = mapValBase + uint64(idx)*mapValStep + uint64(off)
	}
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hMapUpdateElem(regs *[regSlots]uint64, ctx, pkt []byte) error {
	idx, err := m.mapArg(regs[1], "map_update_elem")
	if err != nil {
		return err
	}
	mp := m.maps[idx]
	key, err := m.helperMem(regs[2], m.mapKeySz[idx], ctx, pkt)
	if err != nil {
		return err
	}
	val, err := m.helperMem(regs[3], m.mapValSz[idx], ctx, pkt)
	if err != nil {
		return err
	}
	if err := mp.Update(key, val, m.cfg.CPU); err != nil {
		regs[0] = ^uint64(0) // -1
	} else {
		regs[0] = 0
	}
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hMapDeleteElem(regs *[regSlots]uint64, ctx, pkt []byte) error {
	idx, err := m.mapArg(regs[1], "map_delete_elem")
	if err != nil {
		return err
	}
	mp := m.maps[idx]
	key, err := m.helperMem(regs[2], m.mapKeySz[idx], ctx, pkt)
	if err != nil {
		return err
	}
	if err := mp.Delete(key); err != nil {
		regs[0] = ^uint64(0)
	} else {
		regs[0] = 0
	}
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hProbeRead(regs *[regSlots]uint64, ctx, pkt []byte) error {
	n := int(regs[2])
	dst, err := m.helperMem(regs[1], n, ctx, pkt)
	if err != nil {
		return err
	}
	src, err := m.helperMem(regs[3], n, ctx, pkt)
	if err != nil {
		// Unreadable source: -1 to the program, registers NOT clobbered.
		regs[0] = ^uint64(0)
		return nil
	}
	copy(dst, src)
	regs[0] = 0
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hKtimeGetNS(regs *[regSlots]uint64, _, _ []byte) error {
	m.ktime += 137
	regs[0] = m.ktime
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hTracePrintk(regs *[regSlots]uint64, _, _ []byte) error {
	regs[0] = regs[2]
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hGetPrandomU32(regs *[regSlots]uint64, _, _ []byte) error {
	regs[0] = m.prandom() & 0xffffffff
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hGetSmpProcessorID(regs *[regSlots]uint64, _, _ []byte) error {
	regs[0] = uint64(m.cfg.CPU)
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hGetCurrentPidTgid(regs *[regSlots]uint64, _, _ []byte) error {
	regs[0] = (uint64(4242) << 32) | 4242
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hGetCurrentComm(regs *[regSlots]uint64, ctx, pkt []byte) error {
	n := int(regs[2])
	dst, err := m.helperMem(regs[1], n, ctx, pkt)
	if err != nil {
		return err
	}
	copy(dst, "comm")
	regs[0] = 0
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hRedirect(regs *[regSlots]uint64, _, _ []byte) error {
	regs[0] = uint64(ebpf.XDPRedirect)
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hRedirectMap(regs *[regSlots]uint64, _, _ []byte) error {
	if _, err := m.mapArg(regs[1], "redirect_map"); err != nil {
		return err
	}
	regs[0] = uint64(ebpf.XDPRedirect)
	clobberCallerSaved(regs)
	return nil
}

func (m *Machine) hPerfEventOutput(regs *[regSlots]uint64, ctx, pkt []byte) error {
	idx, err := m.mapArg(regs[2], "perf_event_output")
	if err != nil {
		return err
	}
	rb, ok := m.maps[idx].(interface{ Output([]byte) })
	if !ok {
		return fmt.Errorf("perf_event_output into non-ring map")
	}
	n := int(regs[5])
	data, err := m.helperMem(regs[4], n, ctx, pkt)
	if err != nil {
		return err
	}
	rb.Output(data)
	regs[0] = 0
	clobberCallerSaved(regs)
	return nil
}
