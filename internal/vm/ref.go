package vm

import "merlin/internal/ebpf"

// RefMachine is a Machine pinned to the original switch interpreter
// (exec.go). It is the reference semantics of the VM: the differential rig
// in internal/difftest runs every program on both engines and asserts
// identical r0, Stats, faults and map state, and New falls back to this
// dispatch path if pre-decoding ever rejects a program.
//
// It embeds *Machine, so every harness API (Run, RunBatch, maps, helper
// state) works identically; only the dispatch differs.
type RefMachine struct {
	*Machine
}

// NewRef loads prog into a machine that executes with the reference switch
// interpreter, bypassing the pre-decoded engine.
func NewRef(prog *ebpf.Program, cfg Config) (*RefMachine, error) {
	m, err := New(prog, cfg)
	if err != nil {
		return nil, err
	}
	m.code = nil
	return &RefMachine{Machine: m}, nil
}

// Engine reports which dispatch path Run uses: "fast" for the pre-decoded
// direct-threaded engine, "ref" for the switch interpreter.
func (m *Machine) Engine() string {
	if m.code != nil {
		return "fast"
	}
	return "ref"
}
