package vm

// Batch is a reusable result set for RunBatch. Reset grows the backing
// slices only when a batch is larger than any seen before, so a caller that
// holds one Batch per serving loop performs zero steady-state allocations.
type Batch struct {
	RV    []int64 // r0 per packet (0 when the packet faulted)
	Stats []Stats // per-packet stats (partial up to the fault, like Run)
	Errs  []error // nil, or the packet's *RuntimeError
}

// Reset sizes the batch for n results, reusing capacity.
func (b *Batch) Reset(n int) {
	if cap(b.RV) < n {
		b.RV = make([]int64, n)
	}
	if cap(b.Stats) < n {
		b.Stats = make([]Stats, n)
	}
	if cap(b.Errs) < n {
		b.Errs = make([]error, n)
	}
	b.RV = b.RV[:n]
	b.Stats = b.Stats[:n]
	b.Errs = b.Errs[:n]
	for i := range b.Errs {
		b.Errs[i] = nil
	}
}

// RunBatch executes the program once per context, filling out with one
// result per slot, and returns the number of faulting packets. Semantics
// match len(ctxs) sequential Run calls: machine state (maps, caches, helper
// rng/ktime) carries across packets, a faulting packet leaves its earlier
// siblings' effects in place and reports its error in its own Errs slot, and
// later packets still run. pkts may be shorter than ctxs (tracepoint batches
// pass nil); missing entries run with no packet.
//
// The fast engine executes each packet with zero heap allocations; the
// batch amortizes everything else a serving loop pays per packet (metrics
// fan-in, lifecycle locking, context rebuild) across n packets.
func (m *Machine) RunBatch(ctxs, pkts [][]byte, out *Batch) int {
	out.Reset(len(ctxs))
	faults := 0
	for i := range ctxs {
		var pkt []byte
		if i < len(pkts) {
			pkt = pkts[i]
		}
		var rv int64
		var err error
		if m.code != nil {
			// The fast engine accumulates straight into the caller's
			// Stats slot; no per-packet copy.
			rv, err = m.runFast(ctxs[i], pkt, &out.Stats[i])
		} else {
			rv, out.Stats[i], err = m.runRef(ctxs[i], pkt)
		}
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.record(out.Stats[i], err)
		}
		out.RV[i] = rv
		out.Errs[i] = err
		if err != nil {
			faults++
		}
	}
	return faults
}
