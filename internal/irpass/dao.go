package irpass

import "merlin/internal/ir"

// DataAlignment is Optimization 3 (§3.4): it computes the provable alignment
// of every pointer expression and raises the alignment attribute of loads and
// stores whose declared alignment is weaker than what the address guarantees.
// Code generation decomposes a load of n bytes with align < n into n
// byte-sized loads plus shift/or assembly (exactly what LLVM emits for eBPF);
// raising the attribute lets it emit a single load instead — the 4x code-size
// win of Fig 6.
//
// Alignment facts injected as eBPF domain knowledge, per the paper:
// context pointers, packet data pointers, map value pointers, and helper
// results are 8-byte aligned kernel objects; stack slots carry the alloca's
// declared alignment.
func DataAlignment(f *ir.Function) int {
	applied := 0
	for _, b := range f.Blocks {
		align := map[ir.Value]int{}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				ptr := in.Args[0]
				a := pointerAlign(ptr, align)
				width := accessWidth(in)
				if a > in.Align && in.Align < width {
					// Raise, capped at the access width (larger alignment
					// brings no further codegen benefit).
					if a > width {
						a = width
					}
					in.Align = a
					applied++
				}
			}
			if in.Type() == ir.Ptr && in.HasResult() {
				align[in] = pointerAlign(in, align)
			}
		}
	}
	return applied
}

func accessWidth(in *ir.Instr) int {
	if in.Op == ir.OpLoad {
		return in.Ty.Bytes()
	}
	return in.Args[1].Type().Bytes()
}

// pointerAlign computes the provable alignment of a pointer expression.
// The cache holds already-computed block-local results.
func pointerAlign(v ir.Value, cache map[ir.Value]int) int {
	if a, ok := cache[v]; ok {
		return a
	}
	switch p := v.(type) {
	case *ir.Param:
		// Program context: an 8-byte-aligned kernel object.
		return 8
	case *ir.Instr:
		switch p.Op {
		case ir.OpAlloca:
			return p.Align
		case ir.OpMapPtr:
			return 8
		case ir.OpCall:
			// Helper-returned pointers (map values, ringbuf slots) are
			// 8-byte aligned in the kernel.
			return 8
		case ir.OpLoad:
			if p.Ty == ir.Ptr {
				// Pointers loaded from memory (packet data from ctx, spilled
				// pointers) reference 8-byte-aligned kernel buffers.
				return 8
			}
		case ir.OpGEP:
			base := pointerAlign(p.Args[0], cache)
			if c, ok := p.Args[1].(*ir.Const); ok {
				return gcdAlign(base, c.Val)
			}
			return 1
		}
	}
	return 1
}

// gcdAlign returns the alignment of base+off: the largest power of two
// dividing both the base alignment and the offset.
func gcdAlign(base int, off int64) int {
	if off == 0 {
		return base
	}
	if off < 0 {
		off = -off
	}
	// Largest power of two dividing off.
	p := int(off & -off)
	if p < base {
		return p
	}
	return base
}
