package irpass

import (
	"strings"
	"testing"
	"testing/quick"

	"merlin/internal/ir"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func TestConstFold(t *testing.T) {
	m := parse(t, `module "cf"
func f(%ctx: ptr) -> i64 {
entry:
  %a = bin add i64 3, 4
  %b = bin shl i64 %a, 2
  %c = bin add i64 %b, 0
  %d = bin mul i64 %c, 1
  ret %d
}
`)
	f := m.Funcs[0]
	if n := ConstFold(f); n == 0 {
		t.Fatal("expected folds")
	}
	DCE(f)
	// Everything folds to ret 28.
	if got := f.NumInstrs(); got != 1 {
		t.Fatalf("NumInstrs = %d, want 1:\n%s", got, ir.Print(m))
	}
	ret := f.Entry().Terminator()
	c, ok := ret.Args[0].(*ir.Const)
	if !ok || c.Val != 28 {
		t.Fatalf("ret operand = %v", ret.Args[0])
	}
}

func TestConstFoldDivByZero(t *testing.T) {
	m := parse(t, `module "dz"
func f(%ctx: ptr) -> i64 {
entry:
  %a = bin udiv i64 7, 0
  %b = bin urem i64 9, 0
  %c = bin add i64 %a, %b
  ret %c
}
`)
	f := m.Funcs[0]
	ConstFold(f)
	ret := f.Entry().Terminator()
	c, ok := ret.Args[0].(*ir.Const)
	if !ok || c.Val != 9 { // div→0, rem→dst unchanged (9), eBPF semantics
		t.Fatalf("ret operand = %v, want 9", ret.Args[0])
	}
}

func TestEvalBinWidths(t *testing.T) {
	if got := EvalBin(ir.Add, ir.I32, 0xffffffff, 1); got != 0 {
		t.Errorf("i32 wrap add = %#x", got)
	}
	if got := EvalBin(ir.AShr, ir.I32, 0x80000000, 4); got != 0xf8000000 {
		t.Errorf("i32 ashr = %#x", got)
	}
	if got := EvalBin(ir.Shl, ir.I8, 1, 9); got != 2 { // shift mod width
		t.Errorf("i8 shl 9 = %#x", got)
	}
	if !EvalCmp(ir.SLT, ir.I32, 0xffffffff, 0) {
		t.Error("i32 -1 should be SLT 0")
	}
	if EvalCmp(ir.ULT, ir.I32, 0xffffffff, 0) {
		t.Error("i32 0xffffffff should not be ULT 0")
	}
}

// Property: folding agrees with re-evaluating at each width.
func TestEvalBinTruncProperty(t *testing.T) {
	f := func(a, b uint64, kindRaw, tyRaw uint8) bool {
		kind := ir.BinKind(kindRaw % 11)
		ty := ir.Type(tyRaw % 4) // integer types only
		r := EvalBin(kind, ty, a, b)
		// Result must already be truncated.
		return r == truncTo(ty, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDCERemovesDeadAllocaStores(t *testing.T) {
	// Mirrors Fig 4's dead store: a slot written but never read.
	m := parse(t, `module "dce"
func f(%ctx: ptr) -> i64 {
entry:
  %slot = alloca 4, align 4
  store i32 %slot, 0, align 4
  store i32 %slot, 1, align 4
  ret 0
}
`)
	f := m.Funcs[0]
	if n := DCE(f); n != 3 {
		t.Fatalf("DCE removed %d, want 3 (2 stores + alloca)", n)
	}
	if f.NumInstrs() != 1 {
		t.Fatalf("leftovers:\n%s", ir.Print(m))
	}
}

func TestDCEKeepsEscapedAlloca(t *testing.T) {
	m := parse(t, `module "esc"
map @m : array key=4 value=8 max=4
func f(%ctx: ptr) -> i64 {
entry:
  %key = alloca 4, align 4
  store i32 %key, 0, align 4
  %mp = mapptr @m
  %v = call 1, %mp, %key
  ret %v
}
`)
	f := m.Funcs[0]
	DCE(f)
	if f.NumInstrs() != 5 {
		t.Fatalf("escaped alloca store must survive:\n%s", ir.Print(m))
	}
}

func TestStoreToLoadForward(t *testing.T) {
	m := parse(t, `module "s2l"
func f(%ctx: ptr) -> i64 {
entry:
  %slot = alloca 8, align 8
  %x = load i64, %ctx, align 8
  store i64 %slot, %x, align 8
  %y = load i64, %slot, align 8
  %z = bin add i64 %y, 1
  ret %z
}
`)
	f := m.Funcs[0]
	if n := StoreToLoadForward(f); n != 1 {
		t.Fatalf("forwarded %d, want 1", n)
	}
	DCE(f)
	// load %slot gone; add consumes %x directly. Store+alloca now dead too.
	if got := f.NumInstrs(); got != 3 {
		t.Fatalf("NumInstrs = %d:\n%s", got, ir.Print(m))
	}
}

func TestS2LForwardRespectsEscapes(t *testing.T) {
	m := parse(t, `module "s2lesc"
map @m : array key=4 value=8 max=4
func f(%ctx: ptr) -> i64 {
entry:
  %key = alloca 4, align 4
  store i32 %key, 7, align 4
  %mp = mapptr @m
  %v = call 1, %mp, %key
  %y = load i32, %key, align 4
  %z = zext i64, %y
  ret %z
}
`)
	f := m.Funcs[0]
	if n := StoreToLoadForward(f); n != 0 {
		t.Fatalf("forwarded through an escaped alloca (%d)", n)
	}
}

func TestDAORaisesAlignment(t *testing.T) {
	// Fig 6: load i16 with align 1 from an 8-aligned base + even offset.
	m := parse(t, `module "dao"
func f(%ctx: ptr) -> i64 {
entry:
  %data = load ptr, %ctx, align 8
  %p = gep %data, 36
  %x = load i16, %p, align 1
  %r = zext i64, %x
  ret %r
}
`)
	f := m.Funcs[0]
	if n := DataAlignment(f); n != 1 {
		t.Fatalf("applied %d, want 1", n)
	}
	ld := f.Entry().Instrs[2]
	if ld.Align != 2 {
		t.Fatalf("align = %d, want 2", ld.Align)
	}
}

func TestDAOOddOffsetStaysByteAligned(t *testing.T) {
	m := parse(t, `module "dao2"
func f(%ctx: ptr) -> i64 {
entry:
  %data = load ptr, %ctx, align 8
  %p = gep %data, 37
  %x = load i16, %p, align 1
  %r = zext i64, %x
  ret %r
}
`)
	f := m.Funcs[0]
	if n := DataAlignment(f); n != 0 {
		t.Fatal("odd offset must not be realigned")
	}
}

func TestDAOVariableOffsetUnknown(t *testing.T) {
	m := parse(t, `module "dao3"
func f(%ctx: ptr) -> i64 {
entry:
  %data = load ptr, %ctx, align 8
  %i = load i64, %ctx, align 8
  %p = gep %data, %i
  %x = load i32, %p, align 1
  %r = zext i64, %x
  ret %r
}
`)
	f := m.Funcs[0]
	if n := DataAlignment(f); n != 0 {
		t.Fatal("variable offset must not be realigned")
	}
}

func TestDAOStackSlot(t *testing.T) {
	m := parse(t, `module "dao4"
func f(%ctx: ptr) -> i64 {
entry:
  %slot = alloca 8, align 8
  store i64 %slot, 1, align 1
  %v = load i64, %slot, align 8
  ret %v
}
`)
	f := m.Funcs[0]
	if n := DataAlignment(f); n != 1 {
		t.Fatalf("applied %d, want 1 (store realigned)", n)
	}
	if st := f.Entry().Instrs[1]; st.Align != 8 {
		t.Fatalf("store align = %d, want 8", st.Align)
	}
}

func TestMacroOpFusion(t *testing.T) {
	// Fig 7: load/add/store on the same address becomes atomicrmw.
	m := parse(t, `module "mof"
func f(%ctx: ptr) -> i64 {
entry:
  %p = gep %ctx, 16
  %x = load i64, %p, align 8
  %inc = load i64, %ctx, align 8
  %y = bin add i64 %x, %inc
  store i64 %p, %y, align 8
  ret 0
}
`)
	f := m.Funcs[0]
	if n := MacroOpFusion(f); n != 1 {
		t.Fatalf("fused %d, want 1:\n%s", n, ir.Print(m))
	}
	var rmw *ir.Instr
	for _, in := range f.Entry().Instrs {
		if in.Op == ir.OpAtomicRMW {
			rmw = in
		}
		if in.Op == ir.OpStore {
			t.Fatal("store should have been fused away")
		}
	}
	if rmw == nil || rmw.Bin != ir.Add {
		t.Fatalf("missing atomicrmw add:\n%s", ir.Print(m))
	}
}

func TestMoFConstantIncrement(t *testing.T) {
	m := parse(t, `module "mofc"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i64, %ctx, align 8
  %y = bin add i64 %x, 1
  store i64 %ctx, %y, align 8
  ret 0
}
`)
	if n := MacroOpFusion(m.Funcs[0]); n != 1 {
		t.Fatalf("fused %d, want 1", n)
	}
}

func TestMoFRejects(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"sub not fusible", `
  %x = load i64, %ctx, align 8
  %y = bin sub i64 %x, 1
  store i64 %ctx, %y, align 8
  ret 0`},
		{"intervening call", `
  %x = load i64, %ctx, align 8
  %c = call 5
  %y = bin add i64 %x, 1
  store i64 %ctx, %y, align 8
  ret 0`},
		{"different pointer", `
  %p = gep %ctx, 8
  %x = load i64, %ctx, align 8
  %y = bin add i64 %x, 1
  store i64 %p, %y, align 8
  ret 0`},
		{"underaligned", `
  %x = load i64, %ctx, align 4
  %y = bin add i64 %x, 1
  store i64 %ctx, %y, align 8
  ret 0`},
		{"narrow width", `
  %x = load i16, %ctx, align 2
  %y = bin add i16 %x, 1
  store i16 %ctx, %y, align 2
  ret 0`},
		{"load multiply used", `
  %x = load i64, %ctx, align 8
  %y = bin add i64 %x, 1
  %z = bin add i64 %x, 2
  store i64 %ctx, %y, align 8
  store i64 %ctx, %z, align 8
  ret 0`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := parse(t, "module \"r\"\nfunc f(%ctx: ptr) -> i64 {\nentry:"+c.body+"\n}\n")
			if n := MacroOpFusion(m.Funcs[0]); n != 0 {
				t.Fatalf("fused %d, want 0:\n%s", n, ir.Print(m))
			}
		})
	}
}

func TestManagerRunsAndRecords(t *testing.T) {
	m := parse(t, `module "mgr"
func f(%ctx: ptr) -> i64 {
entry:
  %a = bin add i64 1, 2
  ret %a
}
`)
	mgr := &Manager{Passes: append(Generic(), Merlin()...)}
	mgr.Run(m)
	if len(mgr.Stats) != 5 {
		t.Fatalf("stats = %d, want 5", len(mgr.Stats))
	}
	names := []string{}
	for _, s := range mgr.Stats {
		names = append(names, s.Pass)
	}
	joined := strings.Join(names, ",")
	if joined != "constfold,s2lforward,dce,DAO,MoF" {
		t.Fatalf("pass order = %s", joined)
	}
	if err := ir.Validate(m); err != nil {
		t.Fatalf("post-pipeline IR invalid: %v", err)
	}
}
