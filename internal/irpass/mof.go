package irpass

import "merlin/internal/ir"

// MacroOpFusion is Optimization 4 (§4.1): it fuses a read-modify-write
// triple — load from p, a single add/and/or/xor of the loaded value, store
// of the result back to p — into one atomicrmw instruction, which codegen
// emits as a single locked xadd-family instruction (Fig 7). The rewrite
// requires:
//
//   - the load's only use is the operation, the operation's only use is the
//     store, and the store writes through the very same pointer value;
//   - load, op and store sit in the same block with no intervening
//     instruction that may write memory (store, call, atomicrmw);
//   - the access is naturally aligned and 4 or 8 bytes wide, since eBPF
//     atomics exist only at those widths.
func MacroOpFusion(f *ir.Function) int {
	applied := 0
	for _, b := range f.Blocks {
		applied += fuseBlock(f, b)
	}
	return applied
}

func fuseBlock(f *ir.Function, b *ir.Block) int {
	applied := 0
	for {
		uses := useCounts(f)
		fused := false
		for si, st := range b.Instrs {
			if st.Op != ir.OpStore {
				continue
			}
			op, ok := st.Args[1].(*ir.Instr)
			if !ok || op.Op != ir.OpBin || uses[op] != 1 || op.Parent != b {
				continue
			}
			switch op.Bin {
			case ir.Add, ir.And, ir.Or, ir.Xor:
			default:
				continue
			}
			ld, other := rmwOperands(op)
			if ld == nil || uses[ld] != 1 || ld.Parent != b {
				continue
			}
			if ld.Args[0] != st.Args[0] {
				continue // different pointer values
			}
			width := ld.Ty.Bytes()
			if width != 4 && width != 8 {
				continue
			}
			if op.Ty.Bytes() != width || valueWidth(other) > width {
				continue
			}
			if ld.Align < width || st.Align < width {
				continue // atomics need natural alignment
			}
			li := indexOf(b, ld)
			oi := indexOf(b, op)
			if li < 0 || oi < 0 || !(li < oi && oi < si) {
				continue
			}
			if memWriteBetween(b, li, si, ld, op, st) {
				continue
			}
			// Rewrite: drop load+op+store, insert atomicrmw where the store was.
			rmw := &ir.Instr{
				Op: ir.OpAtomicRMW, Bin: op.Bin, Ty: ld.Ty, Align: width,
				Args: []ir.Value{st.Args[0], other},
			}
			b.Instrs[si] = rmw
			rmw.Parent = b
			removeInstr(op)
			removeInstr(ld)
			applied++
			fused = true
			break // indices shifted; rescan the block
		}
		if !fused {
			return applied
		}
	}
}

// rmwOperands splits a candidate bin's operands into (the load of the target
// address, the other operand). For non-commutative layouts only load-first
// order is accepted for Sub-like ops, but all fusible ops are commutative.
func rmwOperands(op *ir.Instr) (*ir.Instr, ir.Value) {
	if ld, ok := op.Args[0].(*ir.Instr); ok && ld.Op == ir.OpLoad {
		return ld, op.Args[1]
	}
	if ld, ok := op.Args[1].(*ir.Instr); ok && ld.Op == ir.OpLoad {
		return ld, op.Args[0]
	}
	return nil, nil
}

func valueWidth(v ir.Value) int {
	if _, ok := v.(*ir.Const); ok {
		return 0 // immediates adapt to the access width
	}
	return v.Type().Bytes()
}

func indexOf(b *ir.Block, in *ir.Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// memWriteBetween reports whether any instruction strictly between positions
// lo and hi may write memory, other than the triple being fused.
func memWriteBetween(b *ir.Block, lo, hi int, skip ...*ir.Instr) bool {
	isSkip := func(in *ir.Instr) bool {
		for _, s := range skip {
			if in == s {
				return true
			}
		}
		return false
	}
	for i := lo + 1; i < hi; i++ {
		in := b.Instrs[i]
		if isSkip(in) {
			continue
		}
		switch in.Op {
		case ir.OpStore, ir.OpCall, ir.OpAtomicRMW:
			return true
		}
	}
	return false
}
