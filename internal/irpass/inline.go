package irpass

import (
	"fmt"

	"merlin/internal/ir"
)

// Inline splices every local-function call site into its caller. eBPF
// programs frequently factor helpers (hash functions, header parsers) into
// local functions; the kernel verifier checks them inside their callers
// (the paper's Table 1 notes 7 such program-local functions), and our code
// generator requires a single flat function — so the generic pipeline
// inlines all local calls before optimization.
//
// A local call is an ir.OpCallLocal instruction naming another function in
// the same module. Restrictions (checked here):
//
//   - no recursion (direct or mutual);
//   - callee parameters are i64/ptr scalars, matching the call's operands;
//   - the callee returns through its ret instructions, whose operand
//     replaces the call's result value.
//
// Inlining clones the callee body, maps its parameters to the call
// arguments, funnels every callee return through a join block with the
// result passed in a dedicated stack slot (the IR has no phis), and hoists
// callee allocas into the caller's entry block.
func Inline(mod *ir.Module) (int, error) {
	inlined := 0
	for _, f := range mod.Funcs {
		n, err := inlineFunc(mod, f, map[string]bool{f.Name: true})
		if err != nil {
			return inlined, err
		}
		inlined += n
	}
	return inlined, nil
}

func inlineFunc(mod *ir.Module, f *ir.Function, stack map[string]bool) (int, error) {
	inlined := 0
	for {
		site := findCallSite(f)
		if site == nil {
			return inlined, nil
		}
		callee := mod.Func(site.Callee)
		if callee == nil {
			return inlined, fmt.Errorf("irpass: %s calls unknown local function %q", f.Name, site.Callee)
		}
		if stack[callee.Name] {
			return inlined, fmt.Errorf("irpass: recursive local call to %s", callee.Name)
		}
		// Make sure the callee itself is call-free first.
		stack[callee.Name] = true
		if _, err := inlineFunc(mod, callee, stack); err != nil {
			return inlined, err
		}
		delete(stack, callee.Name)
		if err := spliceCall(f, site, callee); err != nil {
			return inlined, err
		}
		inlined++
	}
}

type callSite struct {
	Block  *ir.Block
	Index  int
	Instr  *ir.Instr
	Callee string
}

func findCallSite(f *ir.Function) *callSite {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpCallLocal {
				return &callSite{Block: b, Index: i, Instr: in, Callee: in.Target}
			}
		}
	}
	return nil
}

// spliceCall replaces one call site with the callee's cloned body.
func spliceCall(f *ir.Function, site *callSite, callee *ir.Function) error {
	if len(site.Instr.Args) != len(callee.Params) {
		return fmt.Errorf("irpass: call to %s passes %d args, callee takes %d",
			callee.Name, len(site.Instr.Args), len(callee.Params))
	}
	suffix := fmt.Sprintf(".%s.%d", callee.Name, nameCounter(f))

	// Result slot: callee rets store here; the continuation loads it.
	entry := f.Entry()
	retSlot := &ir.Instr{Name: "ret" + suffix, Op: ir.OpAlloca, Size: 8, Align: 8}
	insertAllocaTop(entry, retSlot)

	// Argument slots: parameters become allocas initialized at the call
	// site, and parameter uses in the cloned body load from them. This
	// respects the IR's alloca-mediated cross-block dataflow rule without
	// needing dominance analysis.
	argSlots := make([]*ir.Instr, len(callee.Params))
	for i := range callee.Params {
		s := &ir.Instr{Name: fmt.Sprintf("arg%d%s", i, suffix), Op: ir.OpAlloca, Size: 8, Align: 8}
		insertAllocaTop(entry, s)
		argSlots[i] = s
	}

	// Alloca insertions shift positions when the call lives in the entry
	// block, so locate the call by identity rather than trusting the index.
	callIdx := indexOfInstr(site.Block, site.Instr)
	if callIdx < 0 {
		return fmt.Errorf("irpass: call site vanished during inlining")
	}

	// Split the call block: instructions after the call move to a
	// continuation block that starts by loading the return slot.
	cont := f.AddBlock(site.Block.Name + ".cont" + suffix)
	tail := append([]*ir.Instr(nil), site.Block.Instrs[callIdx+1:]...)
	retLoad := &ir.Instr{Name: "rv" + suffix, Op: ir.OpLoad, Ty: ir.I64, Align: 8, Args: []ir.Value{retSlot}}
	cont.Append(retLoad)
	for _, in := range tail {
		in.Parent = cont
		cont.Instrs = append(cont.Instrs, in)
	}

	// Clone the callee body with fresh names; parameter loads substitute
	// for parameter references.
	cloneBlocks, err := cloneBody(f, callee, suffix, argSlots, retSlot, cont)
	if err != nil {
		return err
	}

	// Rewrite the call block: store the arguments, then branch to the
	// cloned entry. cloneBody may have hoisted callee allocas into the
	// entry block, shifting positions again — recompute the index.
	callIdx = indexOfInstr(site.Block, site.Instr)
	if callIdx < 0 {
		return fmt.Errorf("irpass: call site vanished during body cloning")
	}
	site.Block.Instrs = site.Block.Instrs[:callIdx]
	for i, arg := range site.Instr.Args {
		st := &ir.Instr{Op: ir.OpStore, Align: 8, Args: []ir.Value{argSlots[i], arg}}
		site.Block.Append(st)
	}
	site.Block.Append(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{cloneBlocks[0]}})

	// Uses of the call's result become uses of the continuation's load.
	replaceUses(f, site.Instr, retLoad)
	return nil
}

// cloneBody copies the callee's blocks into f. Every cloned block starts by
// loading the callee's parameters from the argument slots (unused loads are
// swept by the generic DCE that runs after inlining), so parameter
// references always resolve to an earlier in-block definition. Each ret
// stores to retSlot and branches to cont.
func cloneBody(f *ir.Function, callee *ir.Function, suffix string, argSlots []*ir.Instr, retSlot *ir.Instr, cont *ir.Block) ([]*ir.Block, error) {
	blockOf := map[*ir.Block]*ir.Block{}
	paramOf := map[*ir.Block]map[*ir.Param]*ir.Instr{}
	var clones []*ir.Block
	for _, b := range callee.Blocks {
		nb := f.AddBlock(b.Name + suffix)
		blockOf[b] = nb
		clones = append(clones, nb)
		// Per-block parameter reloads.
		loads := map[*ir.Param]*ir.Instr{}
		for i, p := range callee.Params {
			ld := &ir.Instr{
				Name: fmt.Sprintf("%s.%s%s", p.Name, b.Name, suffix),
				Op:   ir.OpLoad, Ty: paramLoadType(p), Align: 8,
				Args: []ir.Value{argSlots[i]},
			}
			nb.Append(ld)
			loads[p] = ld
		}
		paramOf[nb] = loads
	}
	valOf := map[ir.Value]ir.Value{}
	// First pass: copy instructions (operands patched in pass two).
	for _, b := range callee.Blocks {
		nb := blockOf[b]
		for _, in := range b.Instrs {
			if in.Op == ir.OpRet {
				continue // handled in pass two
			}
			ni := &ir.Instr{
				Op: in.Op, Ty: in.Ty, Bin: in.Bin, Pred: in.Pred,
				Align: in.Align, Size: in.Size, Helper: in.Helper,
				Map: in.Map, Target: in.Target,
			}
			if in.HasResult() {
				ni.Name = in.Name + suffix
			}
			if in.Op == ir.OpAlloca {
				// Hoist into the caller's entry so the slot stays
				// function-scoped.
				insertAllocaTop(f.Entry(), ni)
			} else {
				nb.Append(ni)
			}
			valOf[in] = ni
		}
	}
	// Second pass: patch operands, block targets, and synthesize returns.
	for _, b := range callee.Blocks {
		nb := blockOf[b]
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				continue
			}
			if in.Op == ir.OpRet {
				rv, err := mapOperand(in.Args[0], valOf, paramOf[nb])
				if err != nil {
					return nil, err
				}
				nb.Append(&ir.Instr{Op: ir.OpStore, Align: 8, Args: []ir.Value{retSlot, rv}})
				nb.Append(&ir.Instr{Op: ir.OpBr, Blocks: []*ir.Block{cont}})
				continue
			}
			ni := valOf[in].(*ir.Instr)
			for _, a := range in.Args {
				na, err := mapOperand(a, valOf, paramOf[nb])
				if err != nil {
					return nil, err
				}
				ni.Args = append(ni.Args, na)
			}
			for _, t := range in.Blocks {
				ni.Blocks = append(ni.Blocks, blockOf[t])
			}
		}
	}
	return clones, nil
}

// mapOperand resolves a callee operand in the cloned context.
func mapOperand(a ir.Value, valOf map[ir.Value]ir.Value, params map[*ir.Param]*ir.Instr) (ir.Value, error) {
	switch v := a.(type) {
	case *ir.Const:
		c := *v
		return &c, nil
	case *ir.Param:
		if ld, ok := params[v]; ok {
			return ld, nil
		}
		return nil, fmt.Errorf("irpass: unknown parameter %%%s", v.Name)
	case *ir.Instr:
		nv, ok := valOf[v]
		if !ok {
			return nil, fmt.Errorf("irpass: operand %%%s not cloned", v.Name)
		}
		return nv, nil
	}
	return nil, fmt.Errorf("irpass: unsupported operand %T", a)
}

func paramLoadType(p *ir.Param) ir.Type {
	if p.Ty == ir.Ptr {
		return ir.Ptr
	}
	return ir.I64
}

// indexOfInstr finds in within b, or -1.
func indexOfInstr(b *ir.Block, in *ir.Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// insertAllocaTop places in after existing leading allocas of entry.
func insertAllocaTop(entry *ir.Block, in *ir.Instr) {
	pos := 0
	for pos < len(entry.Instrs) && entry.Instrs[pos].Op == ir.OpAlloca {
		pos++
	}
	entry.Instrs = append(entry.Instrs, nil)
	copy(entry.Instrs[pos+1:], entry.Instrs[pos:])
	entry.Instrs[pos] = in
	in.Parent = entry
}

// nameCounter derives a unique-ish counter from the function's size.
func nameCounter(f *ir.Function) int { return f.NumInstrs() }
