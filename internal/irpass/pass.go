// Package irpass implements the IR-tier optimizations of the Merlin
// pipeline: a handful of generic clang-O2-style cleanups (constant folding,
// dead code elimination, store-to-load forwarding) and the two passes the
// paper contributes at this tier — data alignment optimization (Opt 3) and
// macro-op fusion into atomic read-modify-writes (Opt 4).
package irpass

import (
	"time"

	"merlin/internal/ir"
)

// Pass is a function-level transformation. It returns the number of rewrites
// it performed (zero means the function was left untouched).
type Pass struct {
	Name string
	Run  func(*ir.Function) int
}

// Stat records one pass execution for the compilation-cost experiments.
type Stat struct {
	Pass     string
	Applied  int
	Duration time.Duration
}

// Manager runs a pipeline of passes over every function of a module and
// accumulates per-pass statistics.
type Manager struct {
	Passes []Pass
	Stats  []Stat
}

// Generic returns the clang-O2-analog pipeline that runs before Merlin's own
// IR optimizers (Fig 1: "the IR first undergoes optimizations by clang").
func Generic() []Pass {
	return []Pass{
		{Name: "constfold", Run: ConstFold},
		{Name: "s2lforward", Run: StoreToLoadForward},
		{Name: "dce", Run: DCE},
	}
}

// Merlin returns the paper's IR-tier optimizers (§4.1).
func Merlin() []Pass {
	return []Pass{
		{Name: "DAO", Run: DataAlignment},
		{Name: "MoF", Run: MacroOpFusion},
	}
}

// Run applies every pass to every function, in order, recording stats.
func (m *Manager) Run(mod *ir.Module) {
	for _, p := range m.Passes {
		start := time.Now()
		applied := 0
		for _, f := range mod.Funcs {
			applied += p.Run(f)
		}
		m.Stats = append(m.Stats, Stat{Pass: p.Name, Applied: applied, Duration: time.Since(start)})
	}
}

// useCounts returns how many operand slots reference each instruction value.
func useCounts(f *ir.Function) map[*ir.Instr]int {
	uses := map[*ir.Instr]int{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Instr); ok {
					uses[ai]++
				}
			}
		}
	}
	return uses
}

// replaceUses rewrites every operand referencing old to new.
func replaceUses(f *ir.Function, old, new ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

// removeInstr deletes in from its block.
func removeInstr(in *ir.Instr) {
	b := in.Parent
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			return
		}
	}
}
