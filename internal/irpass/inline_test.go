package irpass

import (
	"strings"
	"testing"

	"merlin/internal/ir"
)

const inlineSrc = `module "in"
func helper(%a: i64, %b: i64) -> i64 {
entry:
  %s = bin add i64 %a, %b
  %c = icmp ugt i64 %s, 100
  condbr %c, big, small
big:
  ret 100
small:
  %a2 = load i64, %aslot, align 8
  ret %a2
}

func main(%ctx: ptr) -> i64 {
entry:
  %x = load i64, %ctx, align 8
  %r = call_local @helper, %x, 5
  %out = bin add i64 %r, 1
  ret %out
}
`

// The helper above references %aslot which doesn't exist — build a correct
// version programmatically instead; the string form documents the syntax.
func buildInlineModule(t *testing.T) *ir.Module {
	t.Helper()
	b := ir.NewModule("in")

	pa := &ir.Param{Name: "a", Ty: ir.I64}
	pb2 := &ir.Param{Name: "b", Ty: ir.I64}
	b.NewFunc("helper", pa, pb2)
	s := b.Bin(ir.Add, ir.I64, pa, pb2)
	c := b.ICmp(ir.UGT, s, ir.ConstInt(ir.I64, 100))
	big := b.Block("big")
	small := b.Block("small")
	b.CondBr(c, big, small)
	b.SetBlock(big)
	b.Ret(ir.ConstInt(ir.I64, 100))
	b.SetBlock(small)
	// Cross-block rule: reload the parameter, which is function-scoped.
	s2 := b.Bin(ir.Mul, ir.I64, pa, ir.ConstInt(ir.I64, 2))
	b.Ret(s2)

	ctx := &ir.Param{Name: "ctx", Ty: ir.Ptr}
	b.NewFunc("main", ctx)
	x := b.Load(ir.I64, ctx, 8)
	r := b.CallLocal("helper", x, ir.ConstInt(ir.I64, 5))
	out := b.Bin(ir.Add, ir.I64, r, ir.ConstInt(ir.I64, 1))
	b.Ret(out)

	if err := ir.Validate(b.Mod); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return b.Mod
}

func TestInlineSplicesCall(t *testing.T) {
	mod := buildInlineModule(t)
	n, err := Inline(mod)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("inlined %d, want 1", n)
	}
	main := mod.Func("main")
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpCallLocal {
				t.Fatalf("call survived inlining:\n%s", ir.Print(mod))
			}
		}
	}
	if err := ir.Validate(mod); err != nil {
		t.Fatalf("post-inline IR invalid: %v\n%s", err, ir.Print(mod))
	}
	// Both helper arms must now exist inside main.
	text := ir.Print(mod)
	if !strings.Contains(text, "big.helper") || !strings.Contains(text, "small.helper") {
		t.Fatalf("helper blocks missing from main:\n%s", text)
	}
}

func TestInlineRejectsRecursion(t *testing.T) {
	b := ir.NewModule("rec")
	ctx := &ir.Param{Name: "ctx", Ty: ir.Ptr}
	b.NewFunc("loopy", ctx)
	b.CallLocal("loopy", ctx)
	b.Ret(ir.ConstInt(ir.I64, 0))
	if _, err := Inline(b.Mod); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("err = %v", err)
	}
}

func TestInlineUnknownCallee(t *testing.T) {
	b := ir.NewModule("u")
	ctx := &ir.Param{Name: "ctx", Ty: ir.Ptr}
	b.NewFunc("f", ctx)
	b.Cur.Append(&ir.Instr{Name: "x", Op: ir.OpCallLocal, Target: "ghost"})
	b.Ret(ir.ConstInt(ir.I64, 0))
	if _, err := Inline(b.Mod); err == nil || !strings.Contains(err.Error(), "unknown local function") {
		t.Fatalf("err = %v", err)
	}
}

func TestInlineNestedCalls(t *testing.T) {
	b := ir.NewModule("nest")
	a := &ir.Param{Name: "a", Ty: ir.I64}
	b.NewFunc("leaf", a)
	v := b.Bin(ir.Add, ir.I64, a, ir.ConstInt(ir.I64, 1))
	b.Ret(v)

	x := &ir.Param{Name: "x", Ty: ir.I64}
	b.NewFunc("mid", x)
	r := b.CallLocal("leaf", x)
	r2 := b.Bin(ir.Mul, ir.I64, r, ir.ConstInt(ir.I64, 3))
	b.Ret(r2)

	ctx := &ir.Param{Name: "ctx", Ty: ir.Ptr}
	b.NewFunc("main", ctx)
	y := b.Load(ir.I64, ctx, 8)
	z := b.CallLocal("mid", y)
	b.Ret(z)

	if err := ir.Validate(b.Mod); err != nil {
		t.Fatal(err)
	}
	n, err := Inline(b.Mod)
	if err != nil {
		t.Fatalf("%v\n%s", err, ir.Print(b.Mod))
	}
	if n < 2 {
		t.Fatalf("inlined %d, want >= 2 (nested)", n)
	}
	if err := ir.Validate(b.Mod); err != nil {
		t.Fatalf("post-inline invalid: %v\n%s", err, ir.Print(b.Mod))
	}
}

func TestCallLocalParsePrint(t *testing.T) {
	src := `module "clp"
func helper(%a: i64) -> i64 {
entry:
  %r = bin add i64 %a, 7
  ret %r
}

func main(%ctx: ptr) -> i64 {
entry:
  %x = load i64, %ctx, align 8
  %r = call_local @helper, %x
  ret %r
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ir.Parse(ir.Print(m))
	if err != nil {
		t.Fatal(err)
	}
	if ir.Print(m) != ir.Print(again) {
		t.Fatal("call_local round trip mismatch")
	}
	// Undefined callee rejected by the validator.
	bad := strings.Replace(src, "@helper, %x", "@ghost, %x", 1)
	if _, err := ir.Parse(bad); err == nil {
		t.Fatal("call_local to ghost accepted")
	}
	// Arity mismatch rejected.
	bad2 := strings.Replace(src, "@helper, %x", "@helper, %x, %x", 1)
	if _, err := ir.Parse(bad2); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
