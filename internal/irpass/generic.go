package irpass

import "merlin/internal/ir"

// truncTo masks v to the width of ty (no-op for i64).
func truncTo(ty ir.Type, v uint64) uint64 {
	switch ty.Bytes() {
	case 1:
		return v & 0xff
	case 2:
		return v & 0xffff
	case 4:
		return v & 0xffffffff
	}
	return v
}

// signExtend interprets the low width bits of v as signed.
func signExtend(ty ir.Type, v uint64) int64 {
	switch ty.Bytes() {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	}
	return int64(v)
}

// EvalBin computes a binary operation at the given width with eBPF
// semantics: wrapping arithmetic, division by zero yields zero, shift
// amounts are taken modulo the width. It is shared with the VM so constant
// folding and execution can never disagree.
func EvalBin(kind ir.BinKind, ty ir.Type, a, b uint64) uint64 {
	a, b = truncTo(ty, a), truncTo(ty, b)
	bits := uint64(ty.Bytes()) * 8
	var r uint64
	switch kind {
	case ir.Add:
		r = a + b
	case ir.Sub:
		r = a - b
	case ir.Mul:
		r = a * b
	case ir.UDiv:
		if b == 0 {
			r = 0
		} else {
			r = a / b
		}
	case ir.URem:
		if b == 0 {
			r = a
		} else {
			r = a % b
		}
	case ir.And:
		r = a & b
	case ir.Or:
		r = a | b
	case ir.Xor:
		r = a ^ b
	case ir.Shl:
		r = a << (b & (bits - 1))
	case ir.LShr:
		r = a >> (b & (bits - 1))
	case ir.AShr:
		r = uint64(signExtend(ty, a) >> (b & (bits - 1)))
	}
	return truncTo(ty, r)
}

// EvalCmp computes an icmp at the width of ty.
func EvalCmp(pred ir.CmpPred, ty ir.Type, a, b uint64) bool {
	ua, ub := truncTo(ty, a), truncTo(ty, b)
	sa, sb := signExtend(ty, a), signExtend(ty, b)
	switch pred {
	case ir.EQ:
		return ua == ub
	case ir.NE:
		return ua != ub
	case ir.ULT:
		return ua < ub
	case ir.ULE:
		return ua <= ub
	case ir.UGT:
		return ua > ub
	case ir.UGE:
		return ua >= ub
	case ir.SLT:
		return sa < sb
	case ir.SLE:
		return sa <= sb
	case ir.SGT:
		return sa > sb
	case ir.SGE:
		return sa >= sb
	}
	return false
}

// ConstFold folds constant expressions and applies algebraic identities
// (x+0, x*1, x&x, or-with-zero, shifts by zero, gep by zero). It is part of
// the generic pre-Merlin pipeline, mirroring what clang -O2 already does.
func ConstFold(f *ir.Function) int {
	applied := 0
	for {
		changed := 0
		for _, b := range f.Blocks {
			// Apply folds immediately so later instructions in the block see
			// already-simplified operands; operands precede uses, so a single
			// top-down sweep propagates whole chains.
			for i := 0; i < len(b.Instrs); {
				in := b.Instrs[i]
				v, ok := foldInstr(in)
				if !ok {
					i++
					continue
				}
				replaceUses(f, in, v)
				b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
				changed++
			}
		}
		if changed == 0 {
			return applied
		}
		applied += changed
	}
}

func constOf(v ir.Value) (uint64, bool) {
	c, ok := v.(*ir.Const)
	if !ok {
		return 0, false
	}
	return uint64(c.Val), true
}

// foldInstr returns a replacement value for in when it can be simplified.
func foldInstr(in *ir.Instr) (ir.Value, bool) {
	switch in.Op {
	case ir.OpBin:
		a, aok := constOf(in.Args[0])
		b, bok := constOf(in.Args[1])
		if aok && bok {
			return ir.ConstInt(in.Ty, int64(EvalBin(in.Bin, in.Ty, a, b))), true
		}
		if bok {
			switch {
			case b == 0 && (in.Bin == ir.Add || in.Bin == ir.Sub || in.Bin == ir.Or ||
				in.Bin == ir.Xor || in.Bin == ir.Shl || in.Bin == ir.LShr || in.Bin == ir.AShr):
				return in.Args[0], true
			case b == 1 && (in.Bin == ir.Mul || in.Bin == ir.UDiv):
				return in.Args[0], true
			case b == 0 && (in.Bin == ir.Mul || in.Bin == ir.And):
				return ir.ConstInt(in.Ty, 0), true
			}
		}
		if aok && a == 0 && (in.Bin == ir.Add || in.Bin == ir.Or || in.Bin == ir.Xor) {
			return in.Args[1], true
		}
	case ir.OpICmp:
		a, aok := constOf(in.Args[0])
		b, bok := constOf(in.Args[1])
		if aok && bok {
			ty := ir.I64
			if ai, ok := in.Args[0].(*ir.Const); ok {
				ty = ai.Ty
			}
			if EvalCmp(in.Pred, ty, a, b) {
				return ir.ConstInt(ir.I64, 1), true
			}
			return ir.ConstInt(ir.I64, 0), true
		}
	case ir.OpZExt:
		if a, ok := constOf(in.Args[0]); ok {
			src := in.Args[0].(*ir.Const).Ty
			return ir.ConstInt(in.Ty, int64(truncTo(src, a))), true
		}
	case ir.OpSExt:
		if a, ok := constOf(in.Args[0]); ok {
			src := in.Args[0].(*ir.Const).Ty
			return ir.ConstInt(in.Ty, int64(truncTo(in.Ty, uint64(signExtend(src, a))))), true
		}
	case ir.OpTrunc:
		if a, ok := constOf(in.Args[0]); ok {
			return ir.ConstInt(in.Ty, int64(truncTo(in.Ty, a))), true
		}
	case ir.OpBswap:
		if a, ok := constOf(in.Args[0]); ok {
			v := truncTo(in.Ty, a)
			r := uint64(0)
			for i := 0; i < in.Ty.Bytes(); i++ {
				r = r<<8 | (v >> (8 * i) & 0xff)
			}
			return ir.ConstInt(in.Ty, int64(r)), true
		}
	case ir.OpGEP:
		if off, ok := constOf(in.Args[1]); ok && off == 0 {
			return in.Args[0], true
		}
	}
	return nil, false
}

// sideEffectFree reports whether an unused instruction can be deleted.
// Loads are removable like in LLVM: eBPF loads have no observable side
// effects, and the verifier checks safety independently.
func sideEffectFree(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpAlloca, ir.OpLoad, ir.OpBin, ir.OpICmp, ir.OpGEP,
		ir.OpZExt, ir.OpSExt, ir.OpTrunc, ir.OpBswap, ir.OpMapPtr:
		return true
	}
	return false
}

// DCE deletes instructions whose results are never used and that have no
// side effects, iterating to a fixpoint. Unused allocas are deleted together
// with the stores into them (the stores are unobservable once the slot has
// no loads and never escapes).
func DCE(f *ir.Function) int {
	applied := 0
	for {
		uses := useCounts(f)
		// Identify allocas that never escape and are never loaded: stores to
		// them are dead too.
		deadSlotStores := deadAllocaStores(f)
		var victims []*ir.Instr
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if deadSlotStores[in] {
					victims = append(victims, in)
					continue
				}
				if in.HasResult() && uses[in] == 0 && sideEffectFree(in) {
					victims = append(victims, in)
				}
			}
		}
		if len(victims) == 0 {
			return applied
		}
		for _, v := range victims {
			removeInstr(v)
		}
		applied += len(victims)
	}
}

// deadAllocaStores finds stores whose target alloca never escapes and is
// never loaded from.
func deadAllocaStores(f *ir.Function) map[*ir.Instr]bool {
	type slotInfo struct {
		escapes bool
		loaded  bool
		stores  []*ir.Instr
	}
	slots := map[*ir.Instr]*slotInfo{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				slots[in] = &slotInfo{}
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				al, ok := a.(*ir.Instr)
				if !ok {
					continue
				}
				si, ok := slots[al]
				if !ok {
					continue
				}
				switch {
				case in.Op == ir.OpLoad:
					si.loaded = true
				case in.Op == ir.OpStore && i == 0:
					si.stores = append(si.stores, in)
				default:
					// Address passed to a call, gep, stored as a value,
					// compared, etc: treat as escaping.
					si.escapes = true
				}
			}
		}
	}
	dead := map[*ir.Instr]bool{}
	for _, si := range slots {
		if si.escapes || si.loaded {
			continue
		}
		for _, st := range si.stores {
			dead[st] = true
		}
	}
	return dead
}

// StoreToLoadForward replaces loads from non-escaping allocas with the most
// recent value stored to them within the same block (a lightweight slice of
// mem2reg/GVN). Widths must match exactly.
func StoreToLoadForward(f *ir.Function) int {
	escaped := escapedAllocas(f)
	applied := 0
	for _, b := range f.Blocks {
		last := map[*ir.Instr]*ir.Instr{} // alloca → latest store in block
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				if al, ok := in.Args[0].(*ir.Instr); ok && al.Op == ir.OpAlloca && !escaped[al] {
					last[al] = in
				}
			case ir.OpLoad:
				al, ok := in.Args[0].(*ir.Instr)
				if !ok || al.Op != ir.OpAlloca || escaped[al] {
					continue
				}
				st := last[al]
				if st == nil {
					continue
				}
				val := st.Args[1]
				if val.Type().Bytes() != in.Ty.Bytes() {
					continue
				}
				replaceUses(f, in, val)
				applied++
			}
		}
	}
	return applied
}

// escapedAllocas reports allocas whose address leaves direct load/store use.
func escapedAllocas(f *ir.Function) map[*ir.Instr]bool {
	escaped := map[*ir.Instr]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				al, ok := a.(*ir.Instr)
				if !ok || al.Op != ir.OpAlloca {
					continue
				}
				direct := (in.Op == ir.OpLoad && i == 0) || (in.Op == ir.OpStore && i == 0)
				if !direct {
					escaped[al] = true
				}
			}
		}
	}
	return escaped
}
