// Package bopt implements Merlin's bytecode refinement tier (§4.2): the
// optimizations that run on emitted eBPF bytecode right before it would be
// loaded with bpf(). Passes:
//
//   - CPDCE    — constant propagation + dead code elimination (Opt 1, Fig 4)
//   - SLM      — superword-level merging of adjacent stores (Opt 2, Fig 5)
//   - Compact  — code compaction with ALU32 movl (Opt 5, Fig 8)
//   - Peephole — shift/mask rewriting and algebraic cleanups (Opt 6, Fig 9)
//
// All passes preserve program semantics instruction-for-instruction: they
// are validated by differential execution against the unoptimized program in
// the test suite and by the verifier's acceptance of every output.
package bopt

import (
	"time"

	"merlin/internal/analysis"
	"merlin/internal/ebpf"
)

// Options gates passes on the deployment target.
type Options struct {
	// ALU32 permits emitting ALU32 instructions during refinement, even for
	// programs compiled at mcpu=v2 — the paper's "code compaction with
	// unsupported instructions". Disable for kernels whose verifier cannot
	// track 32-bit ops (pre-5.13 quirks, §4.2).
	ALU32 bool
}

// Stat records one pass execution.
type Stat struct {
	Pass     string
	Applied  int
	Duration time.Duration
	NIBefore int
	NIAfter  int
}

// Pass is a bytecode transformation returning how many rewrites it applied.
type Pass struct {
	Name string
	Run  func(*ebpf.Program, Options) (*ebpf.Program, int, error)
}

// Pipeline returns the refinement passes in the order Merlin applies them.
// The dependency analysis (Dep) is charged separately inside each pass via
// the analysis package; RunAll surfaces its cost as a synthetic stat.
func Pipeline() []Pass {
	return []Pass{
		{Name: "CP&DCE", Run: CPDCE},
		{Name: "SLM", Run: SLM},
		{Name: "CC", Run: Compact},
		{Name: "PO", Run: Peephole},
	}
}

// RunAll applies the full refinement pipeline and returns the refined
// program plus per-pass stats. The input program is not modified.
func RunAll(prog *ebpf.Program, opts Options) (*ebpf.Program, []Stat, error) {
	cur := prog.Clone()
	var stats []Stat

	// Dep: the shared static analysis. Its results are recomputed inside
	// passes after mutations; this initial build is the analysis cost the
	// compilation-cost experiment reports.
	depStart := time.Now()
	cfg, err := analysis.BuildCFG(cur)
	if err != nil {
		return nil, nil, err
	}
	analysis.Liveness(cfg)
	analysis.Constants(cfg)
	stats = append(stats, Stat{Pass: "Dep", Duration: time.Since(depStart), NIBefore: cur.NI(), NIAfter: cur.NI()})

	for _, p := range Pipeline() {
		start := time.Now()
		niBefore := cur.NI()
		next, applied, err := p.Run(cur, opts)
		if err != nil {
			return nil, nil, err
		}
		cur = next
		stats = append(stats, Stat{
			Pass: p.Name, Applied: applied, Duration: time.Since(start),
			NIBefore: niBefore, NIAfter: cur.NI(),
		})
	}
	return cur, stats, nil
}

// isBranchTarget returns a set of elements that are jump targets.
func branchTargets(prog *ebpf.Program) (map[int]bool, error) {
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return nil, err
	}
	targets := map[int]bool{}
	for _, t := range ed.Target {
		if t >= 0 {
			targets[t] = true
		}
	}
	return targets, nil
}
