package bopt

import (
	"merlin/internal/ebpf"
)

// SLM is Optimization 2 (Fig 5): superword-level merging. Two adjacent
// store-immediate instructions writing consecutive memory through the same
// base register merge into one store of twice the width, when the combined
// immediate is encodable. Merges cascade (u8+u8 → u16, u16+u16 → u32,
// u32+u32 → u64) until a fixpoint.
func SLM(prog *ebpf.Program, opts Options) (*ebpf.Program, int, error) {
	applied := 0
	cur := prog
	for {
		n, next, err := slmRound(cur)
		if err != nil {
			return nil, 0, err
		}
		cur = next
		applied += n
		if n == 0 {
			return cur, applied, nil
		}
	}
}

func slmRound(prog *ebpf.Program) (int, *ebpf.Program, error) {
	targets, err := branchTargets(prog)
	if err != nil {
		return 0, nil, err
	}
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return 0, nil, err
	}
	applied := 0
	// Collect merge pairs left to right, skipping overlaps.
	i := 0
	var merges [][2]int
	for i+1 < len(ed.Insns) {
		if targets[i+1] {
			i++
			continue // control can land between the two stores
		}
		a, b := ed.Insns[i], ed.Insns[i+1]
		if ok := mergeableStores(a, b); ok {
			merges = append(merges, [2]int{i, i + 1})
			i += 2
			continue
		}
		i++
	}
	if len(merges) == 0 {
		return 0, prog, nil
	}
	for k := len(merges) - 1; k >= 0; k-- {
		lo, hi := orderByOffset(ed.Insns[merges[k][0]], ed.Insns[merges[k][1]])
		merged, ok := mergeStores(lo, hi)
		if !ok {
			continue
		}
		ed.Replace(merges[k][0], merged)
		ed.Delete(merges[k][1])
		applied++
	}
	if applied == 0 {
		return 0, prog, nil
	}
	out, err := ed.Finalize()
	return applied, out, err
}

// mergeableStores reports whether a and b are same-width store-immediates
// through the same base covering adjacent memory.
func mergeableStores(a, b ebpf.Instruction) bool {
	if a.Class() != ebpf.ClassST || b.Class() != ebpf.ClassST {
		return false
	}
	if a.ModeField() != ebpf.ModeMEM || b.ModeField() != ebpf.ModeMEM {
		return false
	}
	if a.Dst != b.Dst || a.SizeField() != b.SizeField() {
		return false
	}
	w := a.SizeField().Bytes()
	if w == 8 {
		return false // cannot widen past u64
	}
	lo, hi := orderByOffset(a, b)
	if int(hi.Offset)-int(lo.Offset) != w {
		return false
	}
	// Result must be naturally aligned at the doubled width.
	if int(lo.Offset)%(2*w) != 0 {
		return false
	}
	_, ok := mergeStores(lo, hi)
	return ok
}

func orderByOffset(a, b ebpf.Instruction) (lo, hi ebpf.Instruction) {
	if a.Offset <= b.Offset {
		return a, b
	}
	return b, a
}

// mergeStores combines two adjacent stores into one of twice the width.
// Little-endian: the lower-address store supplies the low bits.
func mergeStores(lo, hi ebpf.Instruction) (ebpf.Instruction, bool) {
	w := lo.SizeField().Bytes()
	mask := uint64(1)<<(uint(w)*8) - 1
	combined := (uint64(hi.Imm)&mask)<<(uint(w)*8) | (uint64(lo.Imm) & mask)
	// st stores signext(imm32) truncated to the access width; the combined
	// value must survive that encoding.
	var ok bool
	switch w {
	case 1, 2:
		ok = true // 16/32-bit results always encodable in imm32
	case 4:
		ok = int64(combined) == int64(int32(uint32(combined)))
	}
	if !ok {
		return ebpf.Instruction{}, false
	}
	newSize, _ := ebpf.SizeForBytes(2 * w)
	return ebpf.StoreImm(newSize, lo.Dst, lo.Offset, int32(combined)), true
}
