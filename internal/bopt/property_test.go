package bopt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// genLinear builds a random straight-line program that is memory-safe by
// construction: it only touches its own stack, initializes slots before
// reading them, and ends by folding the registers into r0. This exercises
// the bytecode passes on shapes the IR pipeline never emits.
func genLinear(seed int64) *ebpf.Program {
	rng := rand.New(rand.NewSource(seed))
	var insns []ebpf.Instruction
	regs := []ebpf.Register{ebpf.R1, ebpf.R2, ebpf.R3, ebpf.R4, ebpf.R5, ebpf.R6, ebpf.R7}
	// Initialize registers and a few stack slots.
	for _, r := range regs {
		insns = append(insns, ebpf.Mov64Imm(r, int32(rng.Intn(1<<16))))
	}
	slots := []int16{-8, -16, -24, -32}
	for _, off := range slots {
		insns = append(insns, ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, off, regs[rng.Intn(len(regs))]))
	}
	reg := func() ebpf.Register { return regs[rng.Intn(len(regs))] }
	slot := func() int16 { return slots[rng.Intn(len(slots))] }
	alus := []ebpf.ALUOp{ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUMul, ebpf.ALUAnd, ebpf.ALUOr, ebpf.ALUXor}
	n := 10 + rng.Intn(40)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			insns = append(insns, ebpf.Mov64Imm(reg(), int32(rng.Intn(1<<20))))
		case 1:
			insns = append(insns, ebpf.ALU64Imm(alus[rng.Intn(len(alus))], reg(), int32(rng.Intn(256))))
		case 2:
			insns = append(insns, ebpf.ALU64Reg(alus[rng.Intn(len(alus))], reg(), reg()))
		case 3:
			insns = append(insns, ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, slot(), reg()))
		case 4:
			insns = append(insns, ebpf.LoadMem(ebpf.SizeDW, reg(), ebpf.R10, slot()))
		case 5:
			// Narrow constant store pairs (SLM bait).
			off := slot()
			insns = append(insns,
				ebpf.StoreImm(ebpf.SizeW, ebpf.R10, off, int32(rng.Intn(4))),
				ebpf.StoreImm(ebpf.SizeW, ebpf.R10, off+4, int32(rng.Intn(4))))
		case 6:
			// Zero-extension pair (CC bait).
			r := reg()
			insns = append(insns,
				ebpf.ALU64Imm(ebpf.ALULsh, r, 32),
				ebpf.ALU64Imm(ebpf.ALURsh, r, 32))
		default:
			// Mask/shift triple (PO bait).
			k := int32(rng.Intn(24) + 4)
			mask := (uint64(0xffffffff) >> k) << k
			r := reg()
			m := reg()
			if m == r {
				m = ebpf.R8
			}
			insns = append(insns,
				ebpf.LoadImm64(m, int64(mask)),
				ebpf.ALU64Reg(ebpf.ALUAnd, r, m),
				ebpf.ALU64Imm(ebpf.ALURsh, r, k))
		}
	}
	// Fold everything into r0.
	insns = append(insns, ebpf.Mov64Imm(ebpf.R0, 0))
	for _, r := range regs {
		insns = append(insns, ebpf.ALU64Reg(ebpf.ALUXor, ebpf.R0, r))
	}
	for _, off := range slots {
		insns = append(insns,
			ebpf.LoadMem(ebpf.SizeDW, ebpf.R8, ebpf.R10, off),
			ebpf.ALU64Reg(ebpf.ALUXor, ebpf.R0, ebpf.R8))
	}
	insns = append(insns, ebpf.Exit())
	return &ebpf.Program{Name: "prop", Hook: ebpf.HookXDP, Insns: insns}
}

func runR0(t *testing.T, p *ebpf.Program) int64 {
	t.Helper()
	m, err := vm.New(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ret, _, err := m.Run(nil, nil)
	if err != nil {
		t.Fatalf("vm: %v\n%s", err, ebpf.Disassemble(p))
	}
	return ret
}

// TestPassesPreserveSemanticsProperty: every refinement pass, and the whole
// pipeline, must preserve the program result on random linear programs, and
// must never grow NI.
func TestPassesPreserveSemanticsProperty(t *testing.T) {
	passes := Pipeline()
	f := func(seed int64) bool {
		p := genLinear(seed % 10000)
		want := runR0(t, p)
		// Each pass alone.
		for _, pass := range passes {
			out, _, err := pass.Run(p, Options{ALU32: true})
			if err != nil {
				t.Logf("seed %d: %s failed: %v", seed, pass.Name, err)
				return false
			}
			if out.NI() > p.NI() {
				t.Logf("seed %d: %s grew NI %d → %d", seed, pass.Name, p.NI(), out.NI())
				return false
			}
			if got := runR0(t, out); got != want {
				t.Logf("seed %d: %s changed result %d → %d\n--- before ---\n%s--- after ---\n%s",
					seed, pass.Name, want, got, ebpf.Disassemble(p), ebpf.Disassemble(out))
				return false
			}
		}
		// Full pipeline.
		out, _, err := RunAll(p, Options{ALU32: true})
		if err != nil {
			return false
		}
		return runR0(t, out) == want && out.NI() <= p.NI()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineShrinksBaitedPrograms: the generated programs contain
// deliberate redundancy, so the pipeline should consistently find wins.
func TestPipelineShrinksBaitedPrograms(t *testing.T) {
	shrunk := 0
	for seed := int64(0); seed < 30; seed++ {
		p := genLinear(seed)
		out, _, err := RunAll(p, Options{ALU32: true})
		if err != nil {
			t.Fatal(err)
		}
		if out.NI() < p.NI() {
			shrunk++
		}
	}
	if shrunk < 25 {
		t.Fatalf("only %d/30 baited programs shrank", shrunk)
	}
}
