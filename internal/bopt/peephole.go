package bopt

import (
	"merlin/internal/analysis"
	"merlin/internal/ebpf"
)

// Peephole is Optimization 6 (Fig 9): local rewrites that are obvious in
// bytecode but awkward at the IR level.
//
//   - lddw rM, mask; and rD, rM; shr rD, k — where mask keeps the 32-bit
//     bits k..31 and rM is dead afterwards — becomes shl rD, 32;
//     shr rD, 32+k, saving two slots and freeing a register.
//   - algebraic identities: self-moves and no-op ALU immediates
//     (±0 shifts/adds, or/xor 0, mul/div by 1) are deleted.
func Peephole(prog *ebpf.Program, opts Options) (*ebpf.Program, int, error) {
	applied := 0
	cur := prog
	for {
		n, next, err := maskShiftRound(cur)
		if err != nil {
			return nil, 0, err
		}
		m, next2, err := identityRound(next)
		if err != nil {
			return nil, 0, err
		}
		cur = next2
		applied += n + m
		if n+m == 0 {
			return cur, applied, nil
		}
	}
}

// maskShiftRound rewrites the lddw-mask/and/shr triple.
func maskShiftRound(prog *ebpf.Program) (int, *ebpf.Program, error) {
	cfg, err := analysis.BuildCFG(prog)
	if err != nil {
		return 0, nil, err
	}
	liveOut := analysis.Liveness(cfg)
	targets, err := branchTargets(prog)
	if err != nil {
		return 0, nil, err
	}
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return 0, nil, err
	}
	type match struct {
		at int
		k  int32
	}
	var matches []match
	for i := 0; i+2 < len(ed.Insns); i++ {
		ld, and, shr := ed.Insns[i], ed.Insns[i+1], ed.Insns[i+2]
		if !ld.IsWide() || ld.IsMapLoad() || targets[i+1] || targets[i+2] {
			continue
		}
		if !(and.Class() == ebpf.ClassALU64 && and.ALUOpField() == ebpf.ALUAnd &&
			and.SourceField() == ebpf.SourceX && and.Src == ld.Dst) {
			continue
		}
		if !(shr.Class() == ebpf.ClassALU64 && shr.ALUOpField() == ebpf.ALURsh &&
			shr.SourceField() == ebpf.SourceK && shr.Dst == and.Dst) {
			continue
		}
		k := shr.Imm
		if k <= 0 || k >= 32 {
			continue
		}
		wantMask := (uint64(0xffffffff) >> uint(k)) << uint(k)
		if uint64(ld.Imm64) != wantMask {
			continue
		}
		// The mask register must die at the and.
		if liveOut[i+1].Has(ld.Dst) {
			continue
		}
		matches = append(matches, match{at: i, k: k})
		i += 2
	}
	if len(matches) == 0 {
		return 0, prog, nil
	}
	for j := len(matches) - 1; j >= 0; j-- {
		m := matches[j]
		rd := ed.Insns[m.at+1].Dst
		ed.Replace(m.at, ebpf.ALU64Imm(ebpf.ALULsh, rd, 32))
		ed.Replace(m.at+1, ebpf.ALU64Imm(ebpf.ALURsh, rd, 32+m.k))
		ed.Delete(m.at + 2)
	}
	out, err := ed.Finalize()
	return len(matches), out, err
}

// identityRound removes no-op instructions.
func identityRound(prog *ebpf.Program) (int, *ebpf.Program, error) {
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return 0, nil, err
	}
	var victims []int
	for i, ins := range ed.Insns {
		if isNoop(ins) {
			victims = append(victims, i)
		}
	}
	if len(victims) == 0 {
		return 0, prog, nil
	}
	for k := len(victims) - 1; k >= 0; k-- {
		ed.Delete(victims[k])
	}
	out, err := ed.Finalize()
	return len(victims), out, err
}

// isNoop reports whether ins provably changes nothing. Note that 32-bit
// self-moves are NOT no-ops (they zero the upper half).
func isNoop(ins ebpf.Instruction) bool {
	if ins.Class() != ebpf.ClassALU64 {
		return false
	}
	op := ins.ALUOpField()
	if ins.SourceField() == ebpf.SourceX {
		return op == ebpf.ALUMov && ins.Dst == ins.Src
	}
	switch op {
	case ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUOr, ebpf.ALUXor, ebpf.ALULsh, ebpf.ALURsh, ebpf.ALUArsh:
		return ins.Imm == 0
	case ebpf.ALUMul, ebpf.ALUDiv:
		return ins.Imm == 1
	}
	return false
}
