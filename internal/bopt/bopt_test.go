package bopt

import (
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// runProg executes a program and returns r0 plus the final stack-adjacent
// side effects via map state when present.
func runProg(t *testing.T, p *ebpf.Program, ctx, pkt []byte) int64 {
	t.Helper()
	m, err := vm.New(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ret, _, err := m.Run(ctx, pkt)
	if err != nil {
		t.Fatalf("vm: %v\n%s", err, ebpf.Disassemble(p))
	}
	return ret
}

func TestCPDCEFig4(t *testing.T) {
	// movq $1, r1; movq r1, -0x40(r10)  →  movq $1, -0x40(r10)
	p := &ebpf.Program{Name: "fig4", Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 1),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -64, ebpf.R1),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -64),
		ebpf.Exit(),
	}}
	out, n, err := CPDCE(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || out.NI() != 3 {
		t.Fatalf("NI = %d (applied %d), want 3:\n%s", out.NI(), n, ebpf.Disassemble(out))
	}
	if out.Insns[0].Class() != ebpf.ClassST {
		t.Fatalf("expected st.imm first:\n%s", ebpf.Disassemble(out))
	}
	if got := runProg(t, out, nil, nil); got != 1 {
		t.Fatalf("ret = %d", got)
	}
}

func TestCPDCEKeepsLiveMov(t *testing.T) {
	// r1 is also returned: the mov must survive.
	p := &ebpf.Program{Name: "live", Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 1),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -64, ebpf.R1),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.Exit(),
	}}
	out, _, err := CPDCE(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := runProg(t, out, nil, nil); got != 1 {
		t.Fatalf("ret = %d", got)
	}
}

func TestCPDCEAcrossBranchJoinStaysPut(t *testing.T) {
	// r1 differs per path: the store must NOT become an immediate.
	p := &ebpf.Program{Name: "join", Insns: []ebpf.Instruction{
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R1, 0, 2),
		ebpf.Mov64Imm(ebpf.R2, 1),
		ebpf.Jump(1),
		ebpf.Mov64Imm(ebpf.R2, 2),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R2),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	}}
	out, _, err := CPDCE(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hasSTX := false
	for _, ins := range out.Insns {
		if ins.Class() == ebpf.ClassSTX {
			hasSTX = true
		}
	}
	if !hasSTX {
		t.Fatalf("join store must remain register-based:\n%s", ebpf.Disassemble(out))
	}
}

func TestCPDCEWideConstantStore(t *testing.T) {
	// A 64-bit constant that doesn't fit imm32 must not fold into st.dw.
	p := &ebpf.Program{Name: "wide", Insns: []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R1, 0x1_0000_0000),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	}}
	out, _, err := CPDCE(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := runProg(t, out, nil, nil); got != 0x1_0000_0000 {
		t.Fatalf("ret = %#x", got)
	}
}

func TestCPDCERewritesALUAndJumps(t *testing.T) {
	p := &ebpf.Program{Name: "alu", Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R2, 3),
		ebpf.Mov64Imm(ebpf.R0, 10),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R0, ebpf.R2), // → add r0, 3 (then folds)
		ebpf.JumpReg(ebpf.JumpGT, ebpf.R0, ebpf.R2, 1),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	}}
	out, n, err := CPDCE(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rewrites applied")
	}
	if got := runProg(t, out, nil, nil); got != 13 {
		t.Fatalf("ret = %d, want 13", got)
	}
	if out.NI() >= p.NI() {
		t.Fatalf("NI did not shrink: %d → %d", p.NI(), out.NI())
	}
}

func TestSLMFig5(t *testing.T) {
	// movl $0, -4(r10); movl $1, -8(r10) → movq $1, -8(r10)
	p := &ebpf.Program{Name: "fig5", Insns: []ebpf.Instruction{
		ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -4, 0),
		ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -8, 1),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	}}
	out, n, err := SLM(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || out.NI() != 3 {
		t.Fatalf("applied=%d NI=%d:\n%s", n, out.NI(), ebpf.Disassemble(out))
	}
	if out.Insns[0].SizeField() != ebpf.SizeDW || out.Insns[0].Offset != -8 || out.Insns[0].Imm != 1 {
		t.Fatalf("bad merge: %s", ebpf.Mnemonic(out.Insns[0]))
	}
	if got := runProg(t, out, nil, nil); got != 1 {
		t.Fatalf("ret = %d", got)
	}
}

func TestSLMCascade(t *testing.T) {
	// Four u8 stores cascade into one u32 store.
	p := &ebpf.Program{Name: "cascade", Insns: []ebpf.Instruction{
		ebpf.StoreImm(ebpf.SizeB, ebpf.R10, -4, 0x44),
		ebpf.StoreImm(ebpf.SizeB, ebpf.R10, -3, 0x33),
		ebpf.StoreImm(ebpf.SizeB, ebpf.R10, -2, 0x22),
		ebpf.StoreImm(ebpf.SizeB, ebpf.R10, -1, 0x11),
		ebpf.LoadMem(ebpf.SizeW, ebpf.R0, ebpf.R10, -4),
		ebpf.Exit(),
	}}
	out, _, err := SLM(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NI() != 3 {
		t.Fatalf("NI = %d, want 3:\n%s", out.NI(), ebpf.Disassemble(out))
	}
	if got := runProg(t, out, nil, nil); got != 0x11223344 {
		t.Fatalf("ret = %#x", got)
	}
}

func TestSLMRejectsMisaligned(t *testing.T) {
	// Adjacent u32 stores at -12/-8: merged u64 store at -12 would be
	// misaligned; must stay split.
	p := &ebpf.Program{Name: "mis", Insns: []ebpf.Instruction{
		ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -12, 1),
		ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -8, 2),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	}}
	out, n, err := SLM(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || out.NI() != p.NI() {
		t.Fatalf("misaligned merge applied:\n%s", ebpf.Disassemble(out))
	}
}

func TestSLMRejectsGapAndDifferentBase(t *testing.T) {
	p := &ebpf.Program{Name: "gap", Insns: []ebpf.Instruction{
		ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -16, 1),
		ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -8, 2), // gap
		ebpf.Mov64Reg(ebpf.R1, ebpf.R10),
		ebpf.StoreImm(ebpf.SizeW, ebpf.R10, -24, 1),
		ebpf.StoreImm(ebpf.SizeW, ebpf.R1, -20, 2), // different base reg
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	}}
	_, n, err := SLM(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unsafe merges applied: %d", n)
	}
}

func TestCompactFig8(t *testing.T) {
	p := &ebpf.Program{Name: "fig8", Insns: []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R0, -1),
		ebpf.ALU64Imm(ebpf.ALULsh, ebpf.R0, 32),
		ebpf.ALU64Imm(ebpf.ALURsh, ebpf.R0, 32),
		ebpf.Exit(),
	}}
	out, n, err := Compact(p, Options{ALU32: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || out.NI() != 4 { // lddw(2) + movl + exit
		t.Fatalf("applied=%d NI=%d:\n%s", n, out.NI(), ebpf.Disassemble(out))
	}
	if got := runProg(t, out, nil, nil); uint64(got) != 0xffffffff {
		t.Fatalf("ret = %#x", got)
	}
}

func TestCompactMovFusion(t *testing.T) {
	// mov r0, r1; shl; shr → movl r0, r1
	p := &ebpf.Program{Name: "movfuse", Insns: []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R1, 0x1_2345_6789),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.ALU64Imm(ebpf.ALULsh, ebpf.R0, 32),
		ebpf.ALU64Imm(ebpf.ALURsh, ebpf.R0, 32),
		ebpf.Exit(),
	}}
	out, n, err := Compact(p, Options{ALU32: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || out.NI() != 4 {
		t.Fatalf("applied=%d NI=%d:\n%s", n, out.NI(), ebpf.Disassemble(out))
	}
	if got := runProg(t, out, nil, nil); got != 0x23456789 {
		t.Fatalf("ret = %#x", got)
	}
}

func TestCompactDisabledWithoutALU32(t *testing.T) {
	p := &ebpf.Program{Name: "noalu32", Insns: []ebpf.Instruction{
		ebpf.ALU64Imm(ebpf.ALULsh, ebpf.R0, 32),
		ebpf.ALU64Imm(ebpf.ALURsh, ebpf.R0, 32),
		ebpf.Exit(),
	}}
	_, n, err := Compact(p, Options{ALU32: false})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("pass must be gated on ALU32 capability")
	}
}

func TestCompactRespectsBranchTarget(t *testing.T) {
	// A branch lands between shl and shr: rewrite is unsound.
	p := &ebpf.Program{Name: "target", Insns: []ebpf.Instruction{
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R1, 0, 1),
		ebpf.ALU64Imm(ebpf.ALULsh, ebpf.R0, 32),
		ebpf.ALU64Imm(ebpf.ALURsh, ebpf.R0, 32), // branch target
		ebpf.Exit(),
	}}
	_, n, err := Compact(p, Options{ALU32: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("rewrote across a branch target")
	}
}

func TestPeepholeFig9(t *testing.T) {
	// lddw r3, 0xf0000000; and r8, r3; shr r8, 28  →  shl r8, 32; shr r8, 60
	p := &ebpf.Program{Name: "fig9", Insns: []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R8, 0xdeadbeef),
		ebpf.LoadImm64(ebpf.R3, 0xf0000000),
		ebpf.ALU64Reg(ebpf.ALUAnd, ebpf.R8, ebpf.R3),
		ebpf.ALU64Imm(ebpf.ALURsh, ebpf.R8, 28),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R8),
		ebpf.Exit(),
	}}
	out, n, err := Peephole(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applied = %d:\n%s", n, ebpf.Disassemble(out))
	}
	if out.NI() != p.NI()-2 {
		t.Fatalf("NI %d → %d, want -2 slots", p.NI(), out.NI())
	}
	want := runProg(t, p, nil, nil)
	if got := runProg(t, out, nil, nil); got != want || got != 0xd {
		t.Fatalf("ret = %#x, want %#x", got, want)
	}
}

func TestPeepholeRequiresDeadMask(t *testing.T) {
	// r3 used again afterwards: rewrite must not fire.
	p := &ebpf.Program{Name: "livemask", Insns: []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R8, 0xdeadbeef),
		ebpf.LoadImm64(ebpf.R3, 0xf0000000),
		ebpf.ALU64Reg(ebpf.ALUAnd, ebpf.R8, ebpf.R3),
		ebpf.ALU64Imm(ebpf.ALURsh, ebpf.R8, 28),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R3),
		ebpf.Exit(),
	}}
	_, n, err := Peephole(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("rewrote despite live mask register")
	}
}

func TestPeepholeWrongMaskIgnored(t *testing.T) {
	p := &ebpf.Program{Name: "wrongmask", Insns: []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R3, 0xf0000001), // not a shift mask
		ebpf.ALU64Reg(ebpf.ALUAnd, ebpf.R8, ebpf.R3),
		ebpf.ALU64Imm(ebpf.ALURsh, ebpf.R8, 28),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R8),
		ebpf.Exit(),
	}}
	_, n, err := Peephole(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("rewrote a non-mask and")
	}
}

func TestPeepholeIdentities(t *testing.T) {
	p := &ebpf.Program{Name: "ids", Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, 7),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R0, 0),
		ebpf.ALU64Imm(ebpf.ALUMul, ebpf.R0, 1),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R0),
		ebpf.ALU64Imm(ebpf.ALULsh, ebpf.R0, 0),
		ebpf.Exit(),
	}}
	out, n, err := Peephole(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || out.NI() != 2 {
		t.Fatalf("applied=%d NI=%d:\n%s", n, out.NI(), ebpf.Disassemble(out))
	}
	if got := runProg(t, out, nil, nil); got != 7 {
		t.Fatalf("ret = %d", got)
	}
}

func TestRunAllPipelineStats(t *testing.T) {
	p := &ebpf.Program{Name: "all", Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R1),
		ebpf.Mov64Imm(ebpf.R1, 1),
		ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -8, ebpf.R1),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
		ebpf.Exit(),
	}}
	out, stats, err := RunAll(p, Options{ALU32: true})
	if err != nil {
		t.Fatal(err)
	}
	// CP&DCE: stores become immediates, movs die. SLM: stores merge.
	if out.NI() != 3 {
		t.Fatalf("NI = %d, want 3:\n%s", out.NI(), ebpf.Disassemble(out))
	}
	if len(stats) != 5 { // Dep + 4 passes
		t.Fatalf("stats = %d", len(stats))
	}
	if stats[0].Pass != "Dep" {
		t.Fatalf("first stat = %s", stats[0].Pass)
	}
	if got := runProg(t, out, nil, nil); got != 1 {
		t.Fatalf("ret = %d", got)
	}
	// Input must be untouched.
	if p.NI() != 6 {
		t.Fatalf("input mutated: NI = %d", p.NI())
	}
}

func TestCPDCEBranchFolding(t *testing.T) {
	// r1 is provably 5: the branch is always taken, the dead arm vanishes.
	p := &ebpf.Program{Name: "fold", Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 5),
		ebpf.JumpImm(ebpf.JumpGT, ebpf.R1, 3, 2), // always taken
		ebpf.Mov64Imm(ebpf.R0, 111),              // dead
		ebpf.Exit(),                              // dead
		ebpf.Mov64Imm(ebpf.R0, 7),
		ebpf.Exit(),
	}}
	out, n, err := CPDCE(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no folds applied")
	}
	if got := runProg(t, out, nil, nil); got != 7 {
		t.Fatalf("ret = %d, want 7", got)
	}
	for _, ins := range out.Insns {
		if ins.Class().IsALU() && ins.Imm == 111 {
			t.Fatalf("dead arm survived:\n%s", ebpf.Disassemble(out))
		}
	}
}

func TestCPDCENeverTakenBranchDeleted(t *testing.T) {
	p := &ebpf.Program{Name: "nofold", Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 1),
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R1, 2, 2), // never taken
		ebpf.Mov64Imm(ebpf.R0, 7),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 9), // unreachable once branch folds
		ebpf.Exit(),
	}}
	out, _, err := CPDCE(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := runProg(t, out, nil, nil); got != 7 {
		t.Fatalf("ret = %d", got)
	}
	if out.NI() != 2 { // mov 7 + exit (mov r1 dead too)
		t.Fatalf("NI = %d, want 2:\n%s", out.NI(), ebpf.Disassemble(out))
	}
}
