package bopt

import (
	"merlin/internal/analysis"
	"merlin/internal/ebpf"
)

// CPDCE is Optimization 1 (Fig 4): constant propagation turns
// register-indirect constant stores into store-immediate instructions and
// register ALU operands into immediates; dead code elimination then removes
// definitions whose results are never observed — most prominently the mov
// that fed the rewritten store.
func CPDCE(prog *ebpf.Program, opts Options) (*ebpf.Program, int, error) {
	applied := 0
	cur := prog
	for {
		n, next, err := cpRound(cur)
		if err != nil {
			return nil, 0, err
		}
		cur = next
		f, next2, err := foldBranchesRound(cur)
		if err != nil {
			return nil, 0, err
		}
		cur = next2
		u, next3, err := unreachableRound(cur)
		if err != nil {
			return nil, 0, err
		}
		cur = next3
		d, next4, err := dceRound(cur)
		if err != nil {
			return nil, 0, err
		}
		cur = next4
		applied += n + f + u + d
		if n+f+u+d == 0 {
			return cur, applied, nil
		}
	}
}

// foldBranchesRound resolves conditional branches whose outcome constant
// propagation proves: always-taken branches become unconditional jumps,
// never-taken branches are deleted.
func foldBranchesRound(prog *ebpf.Program) (int, *ebpf.Program, error) {
	cfg, err := analysis.BuildCFG(prog)
	if err != nil {
		return 0, nil, err
	}
	consts := analysis.Constants(cfg)
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return 0, nil, err
	}
	applied := 0
	var deletions []int
	for i, ins := range ed.Insns {
		if !ins.IsCondJump() {
			continue
		}
		rc := consts[i]
		a := rc[ins.Dst]
		if !a.Known {
			continue
		}
		var b analysis.ConstVal
		if ins.SourceField() == ebpf.SourceX {
			b = rc[ins.Src]
		} else {
			b = analysis.ConstVal{Known: true, Val: int64(ins.Imm)}
		}
		if !b.Known {
			continue
		}
		taken, ok := evalCondConst(ins, uint64(a.Val), uint64(b.Val))
		if !ok {
			continue
		}
		if taken {
			tgt := ed.Target[i]
			ed.Replace(i, ebpf.Jump(0))
			ed.SetTarget(i, tgt)
		} else {
			deletions = append(deletions, i)
		}
		applied++
	}
	for k := len(deletions) - 1; k >= 0; k-- {
		ed.Delete(deletions[k])
	}
	if applied == 0 {
		return 0, prog, nil
	}
	out, err := ed.Finalize()
	return applied, out, err
}

// evalCondConst decides a conditional branch over known constants.
func evalCondConst(ins ebpf.Instruction, a, b uint64) (bool, bool) {
	if ins.Class() == ebpf.ClassJMP32 {
		a &= 0xffffffff
		b &= 0xffffffff
	}
	sa, sb := int64(a), int64(b)
	if ins.Class() == ebpf.ClassJMP32 {
		sa, sb = int64(int32(uint32(a))), int64(int32(uint32(b)))
	}
	switch ins.JumpOpField() {
	case ebpf.JumpEq:
		return a == b, true
	case ebpf.JumpNE:
		return a != b, true
	case ebpf.JumpGT:
		return a > b, true
	case ebpf.JumpGE:
		return a >= b, true
	case ebpf.JumpLT:
		return a < b, true
	case ebpf.JumpLE:
		return a <= b, true
	case ebpf.JumpSet:
		return a&b != 0, true
	case ebpf.JumpSGT:
		return sa > sb, true
	case ebpf.JumpSGE:
		return sa >= sb, true
	case ebpf.JumpSLT:
		return sa < sb, true
	case ebpf.JumpSLE:
		return sa <= sb, true
	}
	return false, false
}

// unreachableRound removes instructions no path from the entry reaches
// (produced by branch folding). The kernel rejects unreachable code, so the
// refined program must not contain any.
func unreachableRound(prog *ebpf.Program) (int, *ebpf.Program, error) {
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return 0, nil, err
	}
	n := len(ed.Insns)
	seen := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i < 0 || i >= n || seen[i] {
			continue
		}
		seen[i] = true
		if t := ed.Target[i]; t >= 0 {
			stack = append(stack, t)
		}
		if !ed.Insns[i].Terminates() {
			stack = append(stack, i+1)
		}
	}
	applied := 0
	for i := n - 1; i >= 0; i-- {
		if !seen[i] {
			ed.Delete(i)
			applied++
		}
	}
	if applied == 0 {
		return 0, prog, nil
	}
	out, err := ed.Finalize()
	return applied, out, err
}

// cpRound rewrites instructions whose register operands are known constants.
func cpRound(prog *ebpf.Program) (int, *ebpf.Program, error) {
	cfg, err := analysis.BuildCFG(prog)
	if err != nil {
		return 0, nil, err
	}
	consts := analysis.Constants(cfg)
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return 0, nil, err
	}
	applied := 0
	for i, ins := range ed.Insns {
		rc := consts[i]
		switch {
		case ins.Class() == ebpf.ClassSTX && ins.ModeField() == ebpf.ModeMEM:
			// stx [dst+off], src with src == const → st [dst+off], imm
			cv := rc[ins.Src]
			if !cv.Known {
				continue
			}
			if !immFitsStore(ins.SizeField(), cv.Val) {
				continue
			}
			ed.Replace(i, ebpf.StoreImm(ins.SizeField(), ins.Dst, ins.Offset, int32(cv.Val)))
			applied++
		case ins.Class().IsALU() && ins.SourceField() == ebpf.SourceX && ins.ALUOpField() != ebpf.ALUMov:
			// alu dst, src with src == const → alu dst, imm
			cv := rc[ins.Src]
			if !cv.Known || !fitsInt32(cv.Val) {
				continue
			}
			repl := ins
			repl.Opcode = (ins.Opcode &^ uint8(ebpf.SourceX))
			repl.Src = 0
			repl.Imm = int32(cv.Val)
			ed.Replace(i, repl)
			applied++
		case ins.IsCondJump() && ins.SourceField() == ebpf.SourceX:
			cv := rc[ins.Src]
			if !cv.Known || !fitsInt32(cv.Val) {
				continue
			}
			repl := ins
			repl.Opcode = (ins.Opcode &^ uint8(ebpf.SourceX))
			repl.Src = 0
			repl.Imm = int32(cv.Val)
			ed.Replace(i, repl)
			ed.SetTarget(i, ed.Target[i])
			applied++
		}
	}
	if applied == 0 {
		return 0, prog, nil
	}
	out, err := ed.Finalize()
	return applied, out, err
}

// immFitsStore reports whether val can be encoded as the imm of a st.<size>:
// the store writes the low size bytes of the sign-extended imm32, so the
// encoding is exact when the truncated bits match.
func immFitsStore(size ebpf.Size, val int64) bool {
	switch size {
	case ebpf.SizeB:
		return true
	case ebpf.SizeH:
		return true
	case ebpf.SizeW:
		return true
	default: // SizeDW: st.dw stores signext(imm32); need exact value
		return fitsInt32(val)
	}
}

func fitsInt32(v int64) bool { return v >= -0x80000000 && v <= 0x7fffffff }

// dceRound removes side-effect-free definitions of dead registers.
func dceRound(prog *ebpf.Program) (int, *ebpf.Program, error) {
	cfg, err := analysis.BuildCFG(prog)
	if err != nil {
		return 0, nil, err
	}
	liveOut := analysis.Liveness(cfg)
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return 0, nil, err
	}
	var victims []int
	for i, ins := range ed.Insns {
		if !removableDef(ins) {
			continue
		}
		if !liveOut[i].Has(ins.Dst) {
			victims = append(victims, i)
		}
	}
	if len(victims) == 0 {
		return 0, prog, nil
	}
	for k := len(victims) - 1; k >= 0; k-- {
		ed.Delete(victims[k])
	}
	out, err := ed.Finalize()
	return len(victims), out, err
}

// removableDef reports whether ins only produces a register value (no
// memory writes, no control flow, no helper side effects). Loads are
// removable: eBPF loads are side-effect-free and verifier-checked.
func removableDef(ins ebpf.Instruction) bool {
	switch ins.Class() {
	case ebpf.ClassALU, ebpf.ClassALU64:
		return true
	case ebpf.ClassLD:
		return ins.IsWide()
	case ebpf.ClassLDX:
		return ins.ModeField() == ebpf.ModeMEM
	}
	return false
}
