package bopt

import (
	"merlin/internal/ebpf"
)

// Compact is Optimization 5 (Fig 8): code compaction with instructions the
// compiler would not emit. The shl-32/shr-32 zero-extension pair becomes a
// single 32-bit movl, and a mov feeding straight into such a pair collapses
// to movl dst, src. Requires an ALU32-capable target verifier.
func Compact(prog *ebpf.Program, opts Options) (*ebpf.Program, int, error) {
	if !opts.ALU32 {
		return prog, 0, nil
	}
	targets, err := branchTargets(prog)
	if err != nil {
		return nil, 0, err
	}
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return nil, 0, err
	}
	// Collect non-overlapping matches left to right.
	type match struct {
		start int // element index of the first instruction of the pattern
		movIn bool
	}
	var matches []match
	for i := 0; i+1 < len(ed.Insns); i++ {
		a, b := ed.Insns[i], ed.Insns[i+1]
		if !(isShl32(a) && isShr32(b) && a.Dst == b.Dst) || targets[i+1] {
			continue
		}
		// A mov feeding the pair joins the match. It can never overlap a
		// previous match: matches end in a shr, which is not a mov.
		if i > 0 && !targets[i] && isMov64(ed.Insns[i-1]) && ed.Insns[i-1].Dst == a.Dst {
			matches = append(matches, match{start: i - 1, movIn: true})
			i++ // consume the pair
			continue
		}
		matches = append(matches, match{start: i})
		i++
	}
	if len(matches) == 0 {
		return prog, 0, nil
	}
	for k := len(matches) - 1; k >= 0; k-- {
		m := matches[k]
		if m.movIn {
			mov := ed.Insns[m.start]
			ed.Replace(m.start, ebpf.Mov32Reg(mov.Dst, mov.Src))
			ed.Delete(m.start + 2)
			ed.Delete(m.start + 1)
		} else {
			r := ed.Insns[m.start].Dst
			ed.Replace(m.start, ebpf.Mov32Reg(r, r))
			ed.Delete(m.start + 1)
		}
	}
	out, err := ed.Finalize()
	return out, len(matches), err
}

func isShl32(ins ebpf.Instruction) bool {
	return ins.Class() == ebpf.ClassALU64 && ins.ALUOpField() == ebpf.ALULsh &&
		ins.SourceField() == ebpf.SourceK && ins.Imm == 32
}

func isShr32(ins ebpf.Instruction) bool {
	return ins.Class() == ebpf.ClassALU64 && ins.ALUOpField() == ebpf.ALURsh &&
		ins.SourceField() == ebpf.SourceK && ins.Imm == 32
}

func isMov64(ins ebpf.Instruction) bool {
	return ins.Class() == ebpf.ClassALU64 && ins.ALUOpField() == ebpf.ALUMov &&
		ins.SourceField() == ebpf.SourceX
}
