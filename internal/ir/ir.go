// Package ir defines the intermediate representation Merlin's IR-tier
// optimizations operate on. It is deliberately LLVM-flavoured: typed values,
// basic blocks, explicit loads and stores with alignment attributes, and an
// atomicrmw instruction. Unlike LLVM it has no phi nodes: values produced by
// instructions are block-local, and cross-block dataflow goes through stack
// slots created by alloca. This mirrors pre-mem2reg LLVM output and is what
// produces the redundant load/store patterns the paper's bytecode-tier
// optimizations clean up.
package ir

import "fmt"

// Type is a first-class IR type.
type Type uint8

// IR types. Pointers are untyped byte pointers (getelementptr arithmetic is
// in bytes), matching how eBPF programs treat ctx/packet/stack memory.
const (
	I8 Type = iota
	I16
	I32
	I64
	Ptr
)

func (t Type) String() string {
	switch t {
	case I8:
		return "i8"
	case I16:
		return "i16"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case Ptr:
		return "ptr"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Bytes returns the storage width of t; pointers are 8 bytes.
func (t Type) Bytes() int {
	switch t {
	case I8:
		return 1
	case I16:
		return 2
	case I32:
		return 4
	case I64, Ptr:
		return 8
	}
	return 0
}

// IsInt reports whether t is an integer type.
func (t Type) IsInt() bool { return t != Ptr }

// TypeForBytes returns the integer type of width n bytes.
func TypeForBytes(n int) (Type, bool) {
	switch n {
	case 1:
		return I8, true
	case 2:
		return I16, true
	case 4:
		return I32, true
	case 8:
		return I64, true
	}
	return I64, false
}

// Value is anything an instruction can consume: constants, parameters, and
// the results of other instructions.
type Value interface {
	Type() Type
	// Ref renders the value as an operand reference (%name, constant, etc).
	Ref() string
}

// Const is an integer constant.
type Const struct {
	Ty  Type
	Val int64
}

// ConstInt builds a constant of the given type.
func ConstInt(ty Type, v int64) *Const { return &Const{Ty: ty, Val: v} }

// Type implements Value.
func (c *Const) Type() Type { return c.Ty }

// Ref implements Value.
func (c *Const) Ref() string { return fmt.Sprintf("%d", c.Val) }

// Param is a function parameter.
type Param struct {
	Name string
	Ty   Type
}

// Type implements Value.
func (p *Param) Type() Type { return p.Ty }

// Ref implements Value.
func (p *Param) Ref() string { return "%" + p.Name }

// Op identifies an instruction kind.
type Op uint8

// Instruction opcodes.
const (
	OpAlloca Op = iota
	OpLoad
	OpStore
	OpBin
	OpICmp
	OpGEP
	OpZExt
	OpSExt
	OpTrunc
	OpCall
	OpCallLocal
	OpBswap
	OpAtomicRMW
	OpMapPtr
	OpBr
	OpCondBr
	OpRet
)

// BinKind is the operation of an OpBin instruction.
type BinKind uint8

// Binary operations. Division and remainder are unsigned, as in eBPF.
const (
	Add BinKind = iota
	Sub
	Mul
	UDiv
	URem
	And
	Or
	Xor
	Shl
	LShr
	AShr
)

func (k BinKind) String() string {
	return [...]string{"add", "sub", "mul", "udiv", "urem", "and", "or", "xor", "shl", "lshr", "ashr"}[k]
}

// ParseBinKind maps a mnemonic back to a BinKind.
func ParseBinKind(s string) (BinKind, bool) {
	for k := Add; k <= AShr; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// CmpPred is an icmp predicate.
type CmpPred uint8

// Comparison predicates (LLVM naming).
const (
	EQ CmpPred = iota
	NE
	ULT
	ULE
	UGT
	UGE
	SLT
	SLE
	SGT
	SGE
)

func (p CmpPred) String() string {
	return [...]string{"eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge"}[p]
}

// ParseCmpPred maps a mnemonic back to a predicate.
func ParseCmpPred(s string) (CmpPred, bool) {
	for p := EQ; p <= SGE; p++ {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// Inverse returns the negated predicate.
func (p CmpPred) Inverse() CmpPred {
	switch p {
	case EQ:
		return NE
	case NE:
		return EQ
	case ULT:
		return UGE
	case ULE:
		return UGT
	case UGT:
		return ULE
	case UGE:
		return ULT
	case SLT:
		return SGE
	case SLE:
		return SGT
	case SGT:
		return SLE
	case SGE:
		return SLT
	}
	return p
}

// Instr is a single IR instruction. Which fields are meaningful depends on Op:
//
//	Alloca:    Size, Align (result: Ptr)
//	Load:      Ty, Args[0]=ptr, Align
//	Store:     Args[0]=ptr, Args[1]=value, Align
//	Bin:       Bin, Ty, Args[0], Args[1]
//	ICmp:      Pred, Args[0], Args[1] (result: i64 0/1)
//	GEP:       Args[0]=ptr, Args[1]=byte offset (result: Ptr)
//	ZExt/SExt/Trunc: Ty=result type, Args[0]
//	Call:      Helper, Args (result: i64)
//	CallLocal: Target (function name), Args (result: i64); must be inlined
//	           by irpass.Inline before code generation
//	AtomicRMW: Bin (Add/And/Or/Xor), Args[0]=ptr, Args[1]=value, Ty, Align
//	MapPtr:    Map (result: Ptr)
//	Br:        Blocks[0]
//	CondBr:    Args[0]=cond, Blocks[0]=true, Blocks[1]=false
//	Ret:       Args[0]
type Instr struct {
	Name   string // SSA-style result name; empty for void instructions
	Op     Op
	Ty     Type
	Bin    BinKind
	Pred   CmpPred
	Align  int
	Size   int    // alloca size in bytes
	Helper int    // helper number for OpCall
	Target string // callee name for OpCallLocal
	Map    *MapDef
	Args   []Value
	Blocks []*Block

	// Parent is the containing block, maintained by Block append/edit helpers.
	Parent *Block
}

// Type implements Value, returning the result type.
func (in *Instr) Type() Type {
	switch in.Op {
	case OpAlloca, OpGEP, OpMapPtr:
		return Ptr
	case OpLoad, OpBin, OpZExt, OpSExt, OpTrunc, OpBswap:
		return in.Ty
	case OpICmp, OpCall, OpCallLocal:
		return I64
	case OpAtomicRMW:
		return in.Ty
	}
	return I64
}

// Ref implements Value.
func (in *Instr) Ref() string { return "%" + in.Name }

// IsTerminator reports whether the instruction ends a block.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpCondBr || in.Op == OpRet
}

// HasResult reports whether the instruction produces a value.
func (in *Instr) HasResult() bool {
	switch in.Op {
	case OpStore, OpBr, OpCondBr, OpRet:
		return false
	case OpAtomicRMW:
		// Our atomicrmw is fire-and-forget (lowered to xadd, which does not
		// return the old value), so it produces no usable result.
		return false
	}
	return true
}

// Block is a basic block: a named sequence of instructions ending in a
// terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	Fn     *Function
}

// Append adds an instruction to the end of the block.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// Terminator returns the final instruction, or nil if the block is empty or
// unterminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// MapKind distinguishes the map implementations in internal/maps.
type MapKind uint8

// Map kinds.
const (
	MapArray MapKind = iota
	MapHash
	MapPerCPUArray
	MapRingBuf
)

func (k MapKind) String() string {
	switch k {
	case MapArray:
		return "array"
	case MapHash:
		return "hash"
	case MapPerCPUArray:
		return "percpu_array"
	case MapRingBuf:
		return "ringbuf"
	}
	return fmt.Sprintf("mapkind(%d)", uint8(k))
}

// ParseMapKind maps a kind name back to a MapKind.
func ParseMapKind(s string) (MapKind, bool) {
	for k := MapArray; k <= MapRingBuf; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// MapDef declares an eBPF map used by a module.
type MapDef struct {
	Name       string
	Kind       MapKind
	KeySize    int
	ValueSize  int
	MaxEntries int
}

// Function is a single eBPF program entry point.
type Function struct {
	Name   string
	Params []*Param
	Blocks []*Block
}

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// AddBlock appends a new named block.
func (f *Function) AddBlock(name string) *Block {
	b := &Block{Name: name, Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NumInstrs returns the total instruction count across all blocks.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Module is a compilation unit: maps plus functions.
type Module struct {
	Name  string
	Maps  []*MapDef
	Funcs []*Function
}

// Map returns the map named name, or nil.
func (m *Module) Map(name string) *MapDef {
	for _, md := range m.Maps {
		if md.Name == name {
			return md
		}
	}
	return nil
}

// Func returns the function named name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
