package ir

// Clone deep-copies a module: new instructions, blocks, functions and maps,
// with all internal references (operands, branch targets, map refs)
// repointed into the copy. Optimization pipelines clone before mutating so
// callers can compile the same module under different option sets.
func Clone(m *Module) *Module {
	out := &Module{Name: m.Name}
	mapOf := map[*MapDef]*MapDef{}
	for _, md := range m.Maps {
		c := *md
		out.Maps = append(out.Maps, &c)
		mapOf[md] = &c
	}
	for _, f := range m.Funcs {
		out.Funcs = append(out.Funcs, cloneFunc(f, mapOf))
	}
	return out
}

func cloneFunc(f *Function, mapOf map[*MapDef]*MapDef) *Function {
	nf := &Function{Name: f.Name}
	valOf := map[Value]Value{}
	for _, p := range f.Params {
		np := &Param{Name: p.Name, Ty: p.Ty}
		nf.Params = append(nf.Params, np)
		valOf[p] = np
	}
	blockOf := map[*Block]*Block{}
	for _, b := range f.Blocks {
		nb := nf.AddBlock(b.Name)
		blockOf[b] = nb
	}
	// First pass: create instruction copies so forward value references
	// (which cannot occur, but map refs can) resolve uniformly.
	for _, b := range f.Blocks {
		nb := blockOf[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Name: in.Name, Op: in.Op, Ty: in.Ty, Bin: in.Bin, Pred: in.Pred,
				Align: in.Align, Size: in.Size, Helper: in.Helper, Target: in.Target,
			}
			if in.Map != nil {
				ni.Map = mapOf[in.Map]
				if ni.Map == nil {
					ni.Map = in.Map
				}
			}
			nb.Append(ni)
			if in.HasResult() {
				valOf[in] = ni
			} else {
				valOf[in] = ni // terminators aren't referenced, harmless
			}
		}
	}
	// Second pass: rewrite operands and block targets.
	for _, b := range f.Blocks {
		nb := blockOf[b]
		for i, in := range b.Instrs {
			ni := nb.Instrs[i]
			for _, a := range in.Args {
				switch v := a.(type) {
				case *Const:
					c := *v
					ni.Args = append(ni.Args, &c)
				default:
					ni.Args = append(ni.Args, valOf[a])
				}
			}
			for _, t := range in.Blocks {
				ni.Blocks = append(ni.Blocks, blockOf[t])
			}
		}
	}
	return nf
}
