package ir

import "fmt"

// Validate checks structural well-formedness of a module:
//
//   - every function has at least one block; the entry block is first
//   - every block ends in exactly one terminator, with no terminators inside
//   - value names are unique per function
//   - instruction operands that are themselves instructions are either
//     allocas in the entry block (function-scoped, like LLVM) or defined
//     earlier in the same block (the IR has no phis, so cross-block dataflow
//     must go through allocas)
//   - types line up: loads/stores/geps take pointers, bin operands match the
//     result type, conversions change width in the right direction
//   - alignments are powers of two; alloca sizes are positive
//   - branch targets belong to the same function; map references are declared
func Validate(m *Module) error {
	for _, f := range m.Funcs {
		if err := validateFunc(m, f); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	return nil
}

func validateFunc(m *Module, f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	names := map[string]bool{}
	for _, p := range f.Params {
		if names[p.Name] {
			return fmt.Errorf("duplicate name %%%s", p.Name)
		}
		names[p.Name] = true
	}
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	// Function-scoped values: params and entry-block allocas.
	scoped := map[Value]bool{}
	for _, p := range f.Params {
		scoped[p] = true
	}
	for _, in := range f.Entry().Instrs {
		if in.Op == OpAlloca {
			scoped[in] = true
		}
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty", b.Name)
		}
		local := map[Value]bool{}
		for i, in := range b.Instrs {
			if in.HasResult() {
				if in.Name == "" {
					return fmt.Errorf("block %s: unnamed result at %d", b.Name, i)
				}
				if names[in.Name] {
					return fmt.Errorf("duplicate name %%%s", in.Name)
				}
				names[in.Name] = true
			}
			if in.IsTerminator() != (i == len(b.Instrs)-1) {
				return fmt.Errorf("block %s: terminator misplaced at instruction %d (%s)", b.Name, i, FormatInstr(in))
			}
			for _, a := range in.Args {
				ai, ok := a.(*Instr)
				if !ok {
					continue
				}
				if !local[ai] && !scoped[ai] {
					return fmt.Errorf("block %s: %s uses %%%s which is not defined earlier in the block (cross-block values must go through allocas)", b.Name, FormatInstr(in), ai.Name)
				}
			}
			if err := checkInstr(m, f, blockSet, in); err != nil {
				return fmt.Errorf("block %s: %s: %w", b.Name, FormatInstr(in), err)
			}
			if in.HasResult() {
				local[in] = true
			}
		}
	}
	return nil
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

func checkInstr(m *Module, f *Function, blocks map[*Block]bool, in *Instr) error {
	wantArgs := map[Op]int{
		OpAlloca: 0, OpLoad: 1, OpStore: 2, OpBin: 2, OpICmp: 2, OpGEP: 2,
		OpZExt: 1, OpSExt: 1, OpTrunc: 1, OpBswap: 1, OpAtomicRMW: 2, OpMapPtr: 0,
		OpBr: 0, OpCondBr: 1, OpRet: 1,
	}
	if n, ok := wantArgs[in.Op]; ok && in.Op != OpCall && len(in.Args) != n {
		return fmt.Errorf("want %d operands, have %d", n, len(in.Args))
	}
	switch in.Op {
	case OpAlloca:
		if in.Size <= 0 || in.Size > 512 {
			return fmt.Errorf("alloca size %d out of range", in.Size)
		}
		if !powerOfTwo(in.Align) {
			return fmt.Errorf("alignment %d is not a power of two", in.Align)
		}
	case OpLoad:
		if in.Args[0].Type() != Ptr {
			return fmt.Errorf("load from non-pointer")
		}
		if !powerOfTwo(in.Align) {
			return fmt.Errorf("alignment %d is not a power of two", in.Align)
		}
	case OpStore:
		if in.Args[0].Type() != Ptr {
			return fmt.Errorf("store to non-pointer")
		}
		if !powerOfTwo(in.Align) {
			return fmt.Errorf("alignment %d is not a power of two", in.Align)
		}
	case OpBin:
		if !in.Ty.IsInt() {
			return fmt.Errorf("bin on non-integer type")
		}
		for _, a := range in.Args {
			if _, isConst := a.(*Const); !isConst && a.Type() != in.Ty && a.Type() != Ptr {
				return fmt.Errorf("operand type %s does not match %s", a.Type(), in.Ty)
			}
		}
	case OpICmp:
		// Pointer comparisons (packet bounds checks) are allowed.
	case OpGEP:
		if in.Args[0].Type() != Ptr {
			return fmt.Errorf("gep base is not a pointer")
		}
		if !in.Args[1].Type().IsInt() {
			return fmt.Errorf("gep offset is not an integer")
		}
	case OpZExt, OpSExt:
		if src, ok := in.Args[0].(*Const); ok && src.Ty.Bytes() > in.Ty.Bytes() {
			return fmt.Errorf("extension narrows")
		}
		if ai, ok := in.Args[0].(*Instr); ok && ai.Type().Bytes() > in.Ty.Bytes() {
			return fmt.Errorf("extension narrows %s to %s", ai.Type(), in.Ty)
		}
	case OpTrunc:
		if ai, ok := in.Args[0].(*Instr); ok && ai.Type().Bytes() < in.Ty.Bytes() {
			return fmt.Errorf("truncation widens %s to %s", ai.Type(), in.Ty)
		}
	case OpBswap:
		if in.Ty.Bytes() < 2 || !in.Ty.IsInt() {
			return fmt.Errorf("bswap width must be i16/i32/i64")
		}
	case OpAtomicRMW:
		switch in.Bin {
		case Add, And, Or, Xor:
		default:
			return fmt.Errorf("atomicrmw does not support %s", in.Bin)
		}
		if in.Ty != I32 && in.Ty != I64 {
			return fmt.Errorf("atomicrmw width must be i32 or i64")
		}
		if in.Args[0].Type() != Ptr {
			return fmt.Errorf("atomicrmw on non-pointer")
		}
	case OpMapPtr:
		if in.Map == nil || m.Map(in.Map.Name) == nil {
			return fmt.Errorf("reference to undeclared map")
		}
	case OpBr:
		if len(in.Blocks) != 1 || !blocks[in.Blocks[0]] {
			return fmt.Errorf("branch target outside function")
		}
	case OpCondBr:
		if len(in.Blocks) != 2 || !blocks[in.Blocks[0]] || !blocks[in.Blocks[1]] {
			return fmt.Errorf("branch target outside function")
		}
	case OpCall:
		if in.Helper < 0 {
			return fmt.Errorf("negative helper number")
		}
		if len(in.Args) > 5 {
			return fmt.Errorf("helper calls take at most 5 arguments")
		}
	case OpCallLocal:
		if in.Target == "" {
			return fmt.Errorf("call_local without a target")
		}
		if m.Func(in.Target) == nil {
			return fmt.Errorf("call_local to undefined function %q", in.Target)
		}
		callee := m.Func(in.Target)
		if len(in.Args) != len(callee.Params) {
			return fmt.Errorf("call_local to %s passes %d args, callee takes %d",
				in.Target, len(in.Args), len(callee.Params))
		}
	}
	return nil
}
