package ir

import "fmt"

// Builder constructs IR with automatic value naming. It tracks an insertion
// block; every emit method appends there.
type Builder struct {
	Mod  *Module
	Fn   *Function
	Cur  *Block
	next int
}

// NewModule creates an empty module and a builder over it.
func NewModule(name string) *Builder {
	return &Builder{Mod: &Module{Name: name}}
}

// DeclareMap adds a map definition to the module.
func (bld *Builder) DeclareMap(name string, kind MapKind, keySize, valueSize, maxEntries int) *MapDef {
	md := &MapDef{Name: name, Kind: kind, KeySize: keySize, ValueSize: valueSize, MaxEntries: maxEntries}
	bld.Mod.Maps = append(bld.Mod.Maps, md)
	return md
}

// NewFunc starts a function with the given parameters and positions the
// builder at a fresh entry block.
func (bld *Builder) NewFunc(name string, params ...*Param) *Function {
	f := &Function{Name: name, Params: params}
	bld.Mod.Funcs = append(bld.Mod.Funcs, f)
	bld.Fn = f
	bld.next = 0
	bld.Cur = f.AddBlock("entry")
	return f
}

// Block creates a new block in the current function without moving the
// insertion point.
func (bld *Builder) Block(name string) *Block { return bld.Fn.AddBlock(name) }

// SetBlock moves the insertion point.
func (bld *Builder) SetBlock(b *Block) { bld.Cur = b }

func (bld *Builder) autoName() string {
	bld.next++
	return fmt.Sprintf("v%d", bld.next)
}

func (bld *Builder) emit(in *Instr) *Instr {
	if in.HasResult() && in.Name == "" {
		in.Name = bld.autoName()
	}
	return bld.Cur.Append(in)
}

// Alloca reserves size bytes of stack with the given alignment. Allocas are
// always placed in the entry block (after any existing leading allocas), the
// way clang emits them, so the slot is function-scoped regardless of where
// the builder currently is.
func (bld *Builder) Alloca(size, align int) *Instr {
	in := &Instr{Op: OpAlloca, Size: size, Align: align, Name: bld.autoName()}
	entry := bld.Fn.Entry()
	pos := 0
	for pos < len(entry.Instrs) && entry.Instrs[pos].Op == OpAlloca {
		pos++
	}
	entry.Instrs = append(entry.Instrs, nil)
	copy(entry.Instrs[pos+1:], entry.Instrs[pos:])
	entry.Instrs[pos] = in
	in.Parent = entry
	return in
}

// Load reads ty from ptr with the given alignment attribute.
func (bld *Builder) Load(ty Type, ptr Value, align int) *Instr {
	return bld.emit(&Instr{Op: OpLoad, Ty: ty, Align: align, Args: []Value{ptr}})
}

// Store writes val to ptr with the given alignment attribute.
func (bld *Builder) Store(ptr, val Value, align int) *Instr {
	return bld.emit(&Instr{Op: OpStore, Align: align, Args: []Value{ptr, val}})
}

// Bin emits a binary operation of the given result type.
func (bld *Builder) Bin(kind BinKind, ty Type, a, b Value) *Instr {
	return bld.emit(&Instr{Op: OpBin, Bin: kind, Ty: ty, Args: []Value{a, b}})
}

// ICmp emits a comparison producing i64 0/1.
func (bld *Builder) ICmp(pred CmpPred, a, b Value) *Instr {
	return bld.emit(&Instr{Op: OpICmp, Pred: pred, Args: []Value{a, b}})
}

// GEP emits pointer arithmetic: ptr + off bytes.
func (bld *Builder) GEP(ptr, off Value) *Instr {
	return bld.emit(&Instr{Op: OpGEP, Args: []Value{ptr, off}})
}

// GEPc emits ptr + constant byte offset.
func (bld *Builder) GEPc(ptr Value, off int64) *Instr {
	return bld.GEP(ptr, ConstInt(I64, off))
}

// ZExt zero-extends v to ty.
func (bld *Builder) ZExt(ty Type, v Value) *Instr {
	return bld.emit(&Instr{Op: OpZExt, Ty: ty, Args: []Value{v}})
}

// SExt sign-extends v to ty.
func (bld *Builder) SExt(ty Type, v Value) *Instr {
	return bld.emit(&Instr{Op: OpSExt, Ty: ty, Args: []Value{v}})
}

// Bswap reverses the byte order of v at width ty (i16/i32/i64), the
// htons/htonl family network code leans on.
func (bld *Builder) Bswap(ty Type, v Value) *Instr {
	return bld.emit(&Instr{Op: OpBswap, Ty: ty, Args: []Value{v}})
}

// Trunc truncates v to ty.
func (bld *Builder) Trunc(ty Type, v Value) *Instr {
	return bld.emit(&Instr{Op: OpTrunc, Ty: ty, Args: []Value{v}})
}

// Call emits a helper call.
func (bld *Builder) Call(helper int, args ...Value) *Instr {
	return bld.emit(&Instr{Op: OpCall, Helper: helper, Args: args})
}

// CallLocal emits a call to another function in the same module; the
// inliner splices it away before code generation.
func (bld *Builder) CallLocal(target string, args ...Value) *Instr {
	return bld.emit(&Instr{Op: OpCallLocal, Target: target, Args: args})
}

// AtomicRMW emits a locked read-modify-write (no result).
func (bld *Builder) AtomicRMW(kind BinKind, ty Type, ptr, val Value, align int) *Instr {
	return bld.emit(&Instr{Op: OpAtomicRMW, Bin: kind, Ty: ty, Align: align, Args: []Value{ptr, val}})
}

// MapPtr emits a reference to a declared map.
func (bld *Builder) MapPtr(md *MapDef) *Instr {
	return bld.emit(&Instr{Op: OpMapPtr, Map: md})
}

// Br emits an unconditional branch.
func (bld *Builder) Br(target *Block) *Instr {
	return bld.emit(&Instr{Op: OpBr, Blocks: []*Block{target}})
}

// CondBr branches to t when cond is non-zero, else to f.
func (bld *Builder) CondBr(cond Value, t, f *Block) *Instr {
	return bld.emit(&Instr{Op: OpCondBr, Args: []Value{cond}, Blocks: []*Block{t, f}})
}

// Ret returns v from the program.
func (bld *Builder) Ret(v Value) *Instr {
	return bld.emit(&Instr{Op: OpRet, Args: []Value{v}})
}
