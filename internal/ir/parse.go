package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual IR format produced by Print. It returns a
// validated module or a descriptive error with a line number.
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m, err := p.module()
	if err != nil {
		return nil, fmt.Errorf("ir: line %d: %w", p.ln, err)
	}
	// Resolve map references against the module's declarations.
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != OpMapPtr {
					continue
				}
				md := m.Map(in.Map.Name)
				if md == nil {
					return nil, fmt.Errorf("ir: func %s: mapptr @%s: map not declared", f.Name, in.Map.Name)
				}
				in.Map = md
			}
		}
	}
	if err := Validate(m); err != nil {
		return nil, err
	}
	return m, nil
}

type parser struct {
	lines []string
	pos   int
	ln    int // 1-based line of the most recently consumed line
}

// next returns the next non-blank line with comments stripped, or "" at EOF.
func (p *parser) next() string {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		p.ln = p.pos
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line
		}
	}
	return ""
}

func (p *parser) module() (*Module, error) {
	line := p.next()
	if !strings.HasPrefix(line, "module ") {
		return nil, fmt.Errorf("expected module header, got %q", line)
	}
	name, err := strconv.Unquote(strings.TrimSpace(strings.TrimPrefix(line, "module ")))
	if err != nil {
		return nil, fmt.Errorf("bad module name: %v", err)
	}
	m := &Module{Name: name}
	for {
		line = p.next()
		switch {
		case line == "":
			if len(m.Funcs) == 0 {
				return nil, fmt.Errorf("module has no functions")
			}
			return m, nil
		case strings.HasPrefix(line, "map "):
			md, err := parseMap(line)
			if err != nil {
				return nil, err
			}
			m.Maps = append(m.Maps, md)
		case strings.HasPrefix(line, "func "):
			if err := p.function(m, line); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unexpected line %q", line)
		}
	}
}

// parseMap parses: map @name : kind key=N value=N max=N
func parseMap(line string) (*MapDef, error) {
	fields := strings.Fields(line)
	if len(fields) != 7 || fields[2] != ":" || !strings.HasPrefix(fields[1], "@") {
		return nil, fmt.Errorf("bad map declaration %q", line)
	}
	kind, ok := ParseMapKind(fields[3])
	if !ok {
		return nil, fmt.Errorf("unknown map kind %q", fields[3])
	}
	md := &MapDef{Name: fields[1][1:], Kind: kind}
	for i, dst := range []*int{&md.KeySize, &md.ValueSize, &md.MaxEntries} {
		kv := strings.SplitN(fields[4+i], "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad map attribute %q", fields[4+i])
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, fmt.Errorf("bad map attribute %q", fields[4+i])
		}
		*dst = n
	}
	return md, nil
}

func parseType(s string) (Type, error) {
	switch s {
	case "i8":
		return I8, nil
	case "i16":
		return I16, nil
	case "i32":
		return I32, nil
	case "i64":
		return I64, nil
	case "ptr":
		return Ptr, nil
	}
	return I64, fmt.Errorf("unknown type %q", s)
}

type funcParser struct {
	p       *parser
	fn      *Function
	vals    map[string]Value  // %name → value
	blocks  map[string]*Block // label → block
	defined map[string]bool   // labels that actually appeared
	// forward references: block names used by branches, verified against
	// defined labels once the function body is complete
	fixups []string
}

func (p *parser) function(m *Module, header string) error {
	// func name(%a: ptr, %b: i64) -> i64 {
	rest := strings.TrimPrefix(header, "func ")
	open := strings.Index(rest, "(")
	closeP := strings.Index(rest, ")")
	if open < 0 || closeP < open || !strings.HasSuffix(rest, "{") {
		return fmt.Errorf("bad function header %q", header)
	}
	f := &Function{Name: strings.TrimSpace(rest[:open])}
	fp := &funcParser{p: p, fn: f, vals: map[string]Value{}, blocks: map[string]*Block{}, defined: map[string]bool{}}
	params := strings.TrimSpace(rest[open+1 : closeP])
	if params != "" {
		for _, ps := range strings.Split(params, ",") {
			nameTy := strings.SplitN(strings.TrimSpace(ps), ":", 2)
			if len(nameTy) != 2 || !strings.HasPrefix(nameTy[0], "%") {
				return fmt.Errorf("bad parameter %q", ps)
			}
			ty, err := parseType(strings.TrimSpace(nameTy[1]))
			if err != nil {
				return err
			}
			prm := &Param{Name: strings.TrimSpace(nameTy[0])[1:], Ty: ty}
			f.Params = append(f.Params, prm)
			fp.vals[prm.Name] = prm
		}
	}
	var cur *Block
	for {
		line := p.next()
		if line == "" {
			return fmt.Errorf("unterminated function %s", f.Name)
		}
		if line == "}" {
			break
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			label := strings.TrimSuffix(line, ":")
			if fp.defined[label] {
				return fmt.Errorf("duplicate block label %q", label)
			}
			fp.defined[label] = true
			cur = fp.block(label)
			f.Blocks = append(f.Blocks, cur)
			continue
		}
		if cur == nil {
			return fmt.Errorf("instruction before first label: %q", line)
		}
		in, err := fp.instr(line)
		if err != nil {
			return err
		}
		cur.Append(in)
		if in.HasResult() {
			if _, dup := fp.vals[in.Name]; dup {
				return fmt.Errorf("duplicate value name %%%s", in.Name)
			}
			fp.vals[in.Name] = in
		}
	}
	for _, name := range fp.fixups {
		if !fp.defined[name] {
			return fmt.Errorf("branch to unknown block %q in %s", name, f.Name)
		}
	}
	m.Funcs = append(m.Funcs, f)
	// Attach module so mapptr can resolve; done in instr via fp.p? maps were
	// resolved eagerly against m in instr below.
	return nil
}

// block returns the Block for a label, creating a placeholder when the label
// is referenced before it is defined.
func (fp *funcParser) block(label string) *Block {
	if b, ok := fp.blocks[label]; ok {
		b.Fn = fp.fn
		return b
	}
	b := &Block{Name: label, Fn: fp.fn}
	fp.blocks[label] = b
	return b
}

// operand parses %name or an integer constant typed ty.
func (fp *funcParser) operand(tok string, ty Type) (Value, error) {
	tok = strings.TrimSpace(tok)
	if strings.HasPrefix(tok, "%") {
		v, ok := fp.vals[tok[1:]]
		if !ok {
			return nil, fmt.Errorf("use of undefined value %s", tok)
		}
		return v, nil
	}
	n, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return nil, fmt.Errorf("bad operand %q", tok)
	}
	return ConstInt(ty, n), nil
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseAlign parses a trailing "align N" argument.
func parseAlign(tok string) (int, error) {
	fields := strings.Fields(tok)
	if len(fields) != 2 || fields[0] != "align" {
		return 0, fmt.Errorf("expected align attribute, got %q", tok)
	}
	return strconv.Atoi(fields[1])
}

func (fp *funcParser) instr(line string) (*Instr, error) {
	name := ""
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("bad instruction %q", line)
		}
		name = strings.TrimSpace(line[1:eq])
		line = strings.TrimSpace(line[eq+1:])
	}
	sp := strings.IndexByte(line, ' ')
	op := line
	rest := ""
	if sp >= 0 {
		op, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	in := &Instr{Name: name}
	args := splitArgs(rest)
	switch op {
	case "alloca":
		if len(args) != 2 {
			return nil, fmt.Errorf("alloca wants size and align: %q", line)
		}
		size, err := strconv.Atoi(args[0])
		if err != nil {
			return nil, err
		}
		align, err := parseAlign(args[1])
		if err != nil {
			return nil, err
		}
		in.Op, in.Size, in.Align = OpAlloca, size, align
	case "load":
		if len(args) != 3 {
			return nil, fmt.Errorf("load wants type, ptr, align: %q", line)
		}
		ty, err := parseType(args[0])
		if err != nil {
			return nil, err
		}
		ptr, err := fp.operand(args[1], Ptr)
		if err != nil {
			return nil, err
		}
		align, err := parseAlign(args[2])
		if err != nil {
			return nil, err
		}
		in.Op, in.Ty, in.Align, in.Args = OpLoad, ty, align, []Value{ptr}
	case "store":
		// store <ty> <ptr>, <val>, align N
		tySp := strings.IndexByte(rest, ' ')
		if tySp < 0 {
			return nil, fmt.Errorf("bad store %q", line)
		}
		ty, err := parseType(rest[:tySp])
		if err != nil {
			return nil, err
		}
		args = splitArgs(strings.TrimSpace(rest[tySp+1:]))
		if len(args) != 3 {
			return nil, fmt.Errorf("store wants ptr, val, align: %q", line)
		}
		ptr, err := fp.operand(args[0], Ptr)
		if err != nil {
			return nil, err
		}
		val, err := fp.operand(args[1], ty)
		if err != nil {
			return nil, err
		}
		align, err := parseAlign(args[2])
		if err != nil {
			return nil, err
		}
		in.Op, in.Align, in.Args = OpStore, align, []Value{ptr, val}
	case "bin", "atomicrmw":
		// bin <kind> <ty> a, b   |   atomicrmw <kind> <ty> ptr, val, align N
		fields := strings.SplitN(rest, " ", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad %s %q", op, line)
		}
		kind, ok := ParseBinKind(fields[0])
		if !ok {
			return nil, fmt.Errorf("unknown bin kind %q", fields[0])
		}
		ty, err := parseType(fields[1])
		if err != nil {
			return nil, err
		}
		args = splitArgs(fields[2])
		if op == "bin" {
			if len(args) != 2 {
				return nil, fmt.Errorf("bin wants two operands: %q", line)
			}
			a, err := fp.operand(args[0], ty)
			if err != nil {
				return nil, err
			}
			b, err := fp.operand(args[1], ty)
			if err != nil {
				return nil, err
			}
			in.Op, in.Bin, in.Ty, in.Args = OpBin, kind, ty, []Value{a, b}
		} else {
			if len(args) != 3 {
				return nil, fmt.Errorf("atomicrmw wants ptr, val, align: %q", line)
			}
			ptr, err := fp.operand(args[0], Ptr)
			if err != nil {
				return nil, err
			}
			val, err := fp.operand(args[1], ty)
			if err != nil {
				return nil, err
			}
			align, err := parseAlign(args[2])
			if err != nil {
				return nil, err
			}
			in.Op, in.Bin, in.Ty, in.Align, in.Args = OpAtomicRMW, kind, ty, align, []Value{ptr, val}
		}
	case "icmp":
		fields := strings.SplitN(rest, " ", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad icmp %q", line)
		}
		pred, ok := ParseCmpPred(fields[0])
		if !ok {
			return nil, fmt.Errorf("unknown predicate %q", fields[0])
		}
		ty, err := parseType(fields[1])
		if err != nil {
			return nil, err
		}
		args = splitArgs(fields[2])
		if len(args) != 2 {
			return nil, fmt.Errorf("icmp wants two operands: %q", line)
		}
		a, err := fp.operand(args[0], ty)
		if err != nil {
			return nil, err
		}
		b, err := fp.operand(args[1], ty)
		if err != nil {
			return nil, err
		}
		in.Op, in.Pred, in.Args = OpICmp, pred, []Value{a, b}
	case "gep":
		if len(args) != 2 {
			return nil, fmt.Errorf("gep wants ptr, offset: %q", line)
		}
		ptr, err := fp.operand(args[0], Ptr)
		if err != nil {
			return nil, err
		}
		off, err := fp.operand(args[1], I64)
		if err != nil {
			return nil, err
		}
		in.Op, in.Args = OpGEP, []Value{ptr, off}
	case "zext", "sext", "trunc", "bswap":
		if len(args) != 2 {
			return nil, fmt.Errorf("%s wants type, value: %q", op, line)
		}
		ty, err := parseType(args[0])
		if err != nil {
			return nil, err
		}
		v, err := fp.operand(args[1], ty)
		if err != nil {
			return nil, err
		}
		in.Ty, in.Args = ty, []Value{v}
		switch op {
		case "zext":
			in.Op = OpZExt
		case "sext":
			in.Op = OpSExt
		case "bswap":
			in.Op = OpBswap
		default:
			in.Op = OpTrunc
		}
	case "call_local":
		if len(args) < 1 || !strings.HasPrefix(args[0], "@") {
			return nil, fmt.Errorf("call_local wants @function: %q", line)
		}
		in.Op, in.Target = OpCallLocal, args[0][1:]
		for _, a := range args[1:] {
			v, err := fp.operand(a, I64)
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, v)
		}
	case "call":
		if len(args) < 1 {
			return nil, fmt.Errorf("call wants a helper number: %q", line)
		}
		helper, err := strconv.Atoi(args[0])
		if err != nil {
			return nil, err
		}
		in.Op, in.Helper = OpCall, helper
		for _, a := range args[1:] {
			v, err := fp.operand(a, I64)
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, v)
		}
	case "mapptr":
		if len(args) != 1 || !strings.HasPrefix(args[0], "@") {
			return nil, fmt.Errorf("mapptr wants @map: %q", line)
		}
		in.Op = OpMapPtr
		in.Map = &MapDef{Name: args[0][1:]} // resolved by Validate/link step
	case "br":
		if len(args) != 1 {
			return nil, fmt.Errorf("br wants a label: %q", line)
		}
		in.Op, in.Blocks = OpBr, []*Block{fp.block(args[0])}
		fp.fixups = append(fp.fixups, args[0])
	case "condbr":
		if len(args) != 3 {
			return nil, fmt.Errorf("condbr wants cond, t, f: %q", line)
		}
		c, err := fp.operand(args[0], I64)
		if err != nil {
			return nil, err
		}
		in.Op, in.Args = OpCondBr, []Value{c}
		in.Blocks = []*Block{fp.block(args[1]), fp.block(args[2])}
		fp.fixups = append(fp.fixups, args[1], args[2])
	case "ret":
		if len(args) != 1 {
			return nil, fmt.Errorf("ret wants a value: %q", line)
		}
		v, err := fp.operand(args[0], I64)
		if err != nil {
			return nil, err
		}
		in.Op, in.Args = OpRet, []Value{v}
	default:
		return nil, fmt.Errorf("unknown instruction %q", op)
	}
	return in, nil
}
