package ir

import (
	"strings"
	"testing"
)

// buildSample constructs a small module exercising most instruction kinds.
func buildSample() *Builder {
	b := NewModule("sample")
	counters := b.DeclareMap("counters", MapPerCPUArray, 4, 8, 256)
	ctx := &Param{Name: "ctx", Ty: Ptr}
	b.NewFunc("prog", ctx)

	key := b.Alloca(4, 4)
	vslot := b.Alloca(8, 8)
	b.Store(key, ConstInt(I32, 0), 4)
	dataPtrP := b.GEPc(ctx, 0)
	data := b.Load(I64, dataPtrP, 8)
	endPtrP := b.GEPc(ctx, 8)
	end := b.Load(I64, endPtrP, 8)
	limit := b.Bin(Add, I64, data, ConstInt(I64, 14))
	cmp := b.ICmp(UGT, limit, end)
	drop := b.Block("drop")
	parse := b.Block("parse")
	b.CondBr(cmp, drop, parse)

	b.SetBlock(drop)
	b.Ret(ConstInt(I64, 1))

	b.SetBlock(parse)
	m := b.MapPtr(counters)
	v := b.Call(1, m, key)
	b.Store(vslot, v, 8)
	isNil := b.ICmp(EQ, v, ConstInt(I64, 0))
	done := b.Block("done")
	bump := b.Block("bump")
	b.CondBr(isNil, done, bump)

	b.SetBlock(bump)
	vp := b.Load(Ptr, vslot, 8)
	old := b.Load(I64, vp, 8)
	inc := b.Bin(Add, I64, old, ConstInt(I64, 1))
	b.Store(vp, inc, 8)
	b.Br(done)

	b.SetBlock(done)
	b.Ret(ConstInt(I64, 2))
	return b
}

func TestBuilderAndValidate(t *testing.T) {
	b := buildSample()
	if err := Validate(b.Mod); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got := b.Mod.Func("prog").NumInstrs(); got < 15 {
		t.Errorf("NumInstrs = %d, want >= 15", got)
	}
	if b.Mod.Map("counters") == nil || b.Mod.Map("nope") != nil {
		t.Error("Map lookup broken")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := buildSample().Mod
	text := Print(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("parse printed module: %v\n%s", err, text)
	}
	text2 := Print(m2)
	if text != text2 {
		t.Fatalf("round trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no module", "func f() -> i64 {\nentry:\n  ret 0\n}", "expected module"},
		{"bad map", "module \"m\"\nmap @x : blah key=1 value=1 max=1\nfunc f() -> i64 {\nentry:\n ret 0\n}", "unknown map kind"},
		{"undefined value", "module \"m\"\nfunc f() -> i64 {\nentry:\n  ret %nope\n}", "undefined value"},
		{"unknown instr", "module \"m\"\nfunc f() -> i64 {\nentry:\n  frob 1\n  ret 0\n}", "unknown instruction"},
		{"unknown block", "module \"m\"\nfunc f() -> i64 {\nentry:\n  br missing\n}", "unknown block"},
		{"undeclared map", "module \"m\"\nfunc f() -> i64 {\nentry:\n  %m = mapptr @ghost\n  ret 0\n}", "not declared"},
		{"dup name", "module \"m\"\nfunc f() -> i64 {\nentry:\n  %a = alloca 4, align 4\n  %a = alloca 4, align 4\n  ret 0\n}", "duplicate"},
		{"unterminated", "module \"m\"\nfunc f() -> i64 {\nentry:\n  ret 0\n", "unterminated"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Parse error = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateRejections(t *testing.T) {
	ctx := &Param{Name: "ctx", Ty: Ptr}

	t.Run("cross-block value", func(t *testing.T) {
		b := NewModule("m")
		b.NewFunc("f", ctx)
		v := b.Load(I64, ctx, 8)
		next := b.Block("next")
		b.Br(next)
		b.SetBlock(next)
		b.Ret(v) // illegal: v defined in entry, used in next
		if err := Validate(b.Mod); err == nil || !strings.Contains(err.Error(), "allocas") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("alloca visible across blocks", func(t *testing.T) {
		b := NewModule("m")
		b.NewFunc("f", ctx)
		slot := b.Alloca(8, 8)
		next := b.Block("next")
		b.Br(next)
		b.SetBlock(next)
		v := b.Load(I64, slot, 8)
		b.Ret(v)
		if err := Validate(b.Mod); err != nil {
			t.Fatalf("entry alloca should be function-scoped: %v", err)
		}
	})

	t.Run("terminator in middle", func(t *testing.T) {
		b := NewModule("m")
		b.NewFunc("f", ctx)
		b.Ret(ConstInt(I64, 0))
		b.Cur.Append(&Instr{Op: OpRet, Args: []Value{ConstInt(I64, 1)}})
		if err := Validate(b.Mod); err == nil {
			t.Fatal("want terminator error")
		}
	})

	t.Run("bad alignment", func(t *testing.T) {
		b := NewModule("m")
		b.NewFunc("f", ctx)
		b.Load(I32, ctx, 3)
		b.Ret(ConstInt(I64, 0))
		if err := Validate(b.Mod); err == nil || !strings.Contains(err.Error(), "power of two") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("atomicrmw sub rejected", func(t *testing.T) {
		b := NewModule("m")
		b.NewFunc("f", ctx)
		b.AtomicRMW(Sub, I64, ctx, ConstInt(I64, 1), 8)
		b.Ret(ConstInt(I64, 0))
		if err := Validate(b.Mod); err == nil || !strings.Contains(err.Error(), "atomicrmw") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("too many call args", func(t *testing.T) {
		b := NewModule("m")
		b.NewFunc("f", ctx)
		c := ConstInt(I64, 0)
		b.Call(1, c, c, c, c, c, c)
		b.Ret(ConstInt(I64, 0))
		if err := Validate(b.Mod); err == nil || !strings.Contains(err.Error(), "5 arguments") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("load from non-pointer", func(t *testing.T) {
		b := NewModule("m")
		b.NewFunc("f", ctx)
		x := b.Bin(Add, I64, ConstInt(I64, 1), ConstInt(I64, 2))
		b.Load(I64, x, 8)
		b.Ret(ConstInt(I64, 0))
		if err := Validate(b.Mod); err == nil || !strings.Contains(err.Error(), "non-pointer") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestTypeProperties(t *testing.T) {
	for _, c := range []struct {
		ty    Type
		bytes int
	}{{I8, 1}, {I16, 2}, {I32, 4}, {I64, 8}, {Ptr, 8}} {
		if c.ty.Bytes() != c.bytes {
			t.Errorf("%s.Bytes() = %d", c.ty, c.ty.Bytes())
		}
	}
	for n, want := range map[int]Type{1: I8, 2: I16, 4: I32, 8: I64} {
		got, ok := TypeForBytes(n)
		if !ok || got != want {
			t.Errorf("TypeForBytes(%d) = %v,%v", n, got, ok)
		}
	}
	if _, ok := TypeForBytes(5); ok {
		t.Error("TypeForBytes(5) should fail")
	}
}

func TestPredicateInverse(t *testing.T) {
	for p := EQ; p <= SGE; p++ {
		if p.Inverse().Inverse() != p {
			t.Errorf("double inverse of %s is %s", p, p.Inverse().Inverse())
		}
		if p.Inverse() == p {
			t.Errorf("%s is its own inverse", p)
		}
	}
}

func TestParseBinKindAndPred(t *testing.T) {
	for k := Add; k <= AShr; k++ {
		got, ok := ParseBinKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseBinKind(%s) = %v,%v", k, got, ok)
		}
	}
	if _, ok := ParseBinKind("nope"); ok {
		t.Error("ParseBinKind(nope) should fail")
	}
	for p := EQ; p <= SGE; p++ {
		got, ok := ParseCmpPred(p.String())
		if !ok || got != p {
			t.Errorf("ParseCmpPred(%s) = %v,%v", p, got, ok)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
module "c" ; trailing comment

; a full-line comment
func f(%ctx: ptr) -> i64 {
entry:
  %a = load i64, %ctx, align 8 ; read
  ret %a
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Funcs[0].NumInstrs() != 2 {
		t.Fatalf("NumInstrs = %d", m.Funcs[0].NumInstrs())
	}
}

func TestForwardBranchParse(t *testing.T) {
	src := `module "f"
func f(%ctx: ptr) -> i64 {
entry:
  %a = load i64, %ctx, align 8
  %c = icmp eq i64 %a, 0
  condbr %c, yes, no
yes:
  ret 1
no:
  ret 0
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	term := m.Funcs[0].Entry().Terminator()
	if term == nil || term.Op != OpCondBr {
		t.Fatal("entry not terminated by condbr")
	}
	if term.Blocks[0].Name != "yes" || term.Blocks[1].Name != "no" {
		t.Fatalf("targets = %s,%s", term.Blocks[0].Name, term.Blocks[1].Name)
	}
	// Forward-declared blocks must be the same objects as the labelled ones.
	if term.Blocks[0] != m.Funcs[0].Blocks[1] {
		t.Fatal("forward block reference not unified with definition")
	}
}

func TestBswapParsePrintRoundTrip(t *testing.T) {
	src := `module "bs"
func f(%ctx: ptr) -> i64 {
entry:
  %x = load i16, %ctx, align 2
  %s = bswap i16, %x
  %w = zext i32, %s
  %s2 = bswap i32, %w
  %z = zext i64, %s2
  %s3 = bswap i64, %z
  ret %s3
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(Print(m))
	if err != nil {
		t.Fatal(err)
	}
	if Print(m) != Print(again) {
		t.Fatal("bswap round trip mismatch")
	}
}

func TestBswapValidation(t *testing.T) {
	// i8 bswap is invalid.
	b := NewModule("m")
	b.NewFunc("g", &Param{Name: "ctx", Ty: Ptr})
	y := b.Load(I8, b.Fn.Params[0], 1)
	b.Bswap(I8, y)
	b.Ret(ConstInt(I64, 0))
	if err := Validate(b.Mod); err == nil {
		t.Fatal("i8 bswap accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := buildSample().Mod
	c := Clone(m)
	if Print(m) != Print(c) {
		t.Fatal("clone prints differently")
	}
	// Mutating the clone must not affect the original.
	c.Funcs[0].Entry().Instrs[0].Align = 1
	c.Maps[0].ValueSize = 999
	if Print(m) == Print(c) {
		t.Fatal("clone shares instruction storage")
	}
	if m.Maps[0].ValueSize == 999 {
		t.Fatal("clone shares map storage")
	}
	// Clone's map refs point at the clone's maps.
	for _, b := range c.Funcs[0].Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpMapPtr && in.Map != c.Maps[0] {
				t.Fatal("clone mapptr points at the original module")
			}
		}
	}
}
