package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in the textual IR format accepted by Parse.
func Print(m *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %q\n", m.Name)
	for _, md := range m.Maps {
		fmt.Fprintf(&b, "map @%s : %s key=%d value=%d max=%d\n",
			md.Name, md.Kind, md.KeySize, md.ValueSize, md.MaxEntries)
	}
	for _, f := range m.Funcs {
		b.WriteString("\n")
		printFunc(&b, f)
	}
	return b.String()
}

func printFunc(b *strings.Builder, f *Function) {
	fmt.Fprintf(b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%%%s: %s", p.Name, p.Ty)
	}
	b.WriteString(") -> i64 {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(b, "  %s\n", FormatInstr(in))
		}
	}
	b.WriteString("}\n")
}

// FormatInstr renders one instruction in the textual format.
func FormatInstr(in *Instr) string {
	lhs := ""
	if in.HasResult() {
		lhs = "%" + in.Name + " = "
	}
	switch in.Op {
	case OpAlloca:
		return fmt.Sprintf("%salloca %d, align %d", lhs, in.Size, in.Align)
	case OpLoad:
		return fmt.Sprintf("%sload %s, %s, align %d", lhs, in.Ty, in.Args[0].Ref(), in.Align)
	case OpStore:
		return fmt.Sprintf("store %s %s, %s, align %d", storeType(in), in.Args[0].Ref(), in.Args[1].Ref(), in.Align)
	case OpBin:
		return fmt.Sprintf("%sbin %s %s %s, %s", lhs, in.Bin, in.Ty, in.Args[0].Ref(), in.Args[1].Ref())
	case OpICmp:
		return fmt.Sprintf("%sicmp %s %s %s, %s", lhs, in.Pred, cmpType(in), in.Args[0].Ref(), in.Args[1].Ref())
	case OpGEP:
		return fmt.Sprintf("%sgep %s, %s", lhs, in.Args[0].Ref(), in.Args[1].Ref())
	case OpZExt:
		return fmt.Sprintf("%szext %s, %s", lhs, in.Ty, in.Args[0].Ref())
	case OpSExt:
		return fmt.Sprintf("%ssext %s, %s", lhs, in.Ty, in.Args[0].Ref())
	case OpTrunc:
		return fmt.Sprintf("%strunc %s, %s", lhs, in.Ty, in.Args[0].Ref())
	case OpBswap:
		return fmt.Sprintf("%sbswap %s, %s", lhs, in.Ty, in.Args[0].Ref())
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.Ref()
		}
		s := fmt.Sprintf("%scall %d", lhs, in.Helper)
		if len(args) > 0 {
			s += ", " + strings.Join(args, ", ")
		}
		return s
	case OpCallLocal:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.Ref()
		}
		s := fmt.Sprintf("%scall_local @%s", lhs, in.Target)
		if len(args) > 0 {
			s += ", " + strings.Join(args, ", ")
		}
		return s
	case OpAtomicRMW:
		return fmt.Sprintf("atomicrmw %s %s %s, %s, align %d", in.Bin, in.Ty, in.Args[0].Ref(), in.Args[1].Ref(), in.Align)
	case OpMapPtr:
		return fmt.Sprintf("%smapptr @%s", lhs, in.Map.Name)
	case OpBr:
		return fmt.Sprintf("br %s", in.Blocks[0].Name)
	case OpCondBr:
		return fmt.Sprintf("condbr %s, %s, %s", in.Args[0].Ref(), in.Blocks[0].Name, in.Blocks[1].Name)
	case OpRet:
		return fmt.Sprintf("ret %s", in.Args[0].Ref())
	}
	return fmt.Sprintf("<?op %d>", in.Op)
}

// storeType returns the stored value's type so constants can be parsed back
// at the right width.
func storeType(in *Instr) Type { return in.Args[1].Type() }

// cmpType returns the operand type used for icmp, preferring a non-constant
// operand so parsing can re-type constant operands.
func cmpType(in *Instr) Type {
	if _, ok := in.Args[0].(*Const); !ok {
		return in.Args[0].Type()
	}
	return in.Args[1].Type()
}
