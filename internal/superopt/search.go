package superopt

import (
	"sort"

	"merlin/internal/analysis"
	"merlin/internal/ebpf"
)

// Verdict is the memoized outcome of one window search.
type Verdict struct {
	// Improved reports that Repl (possibly empty) is a proven, strictly
	// shorter replacement for the canonical window.
	Improved bool
	// Repl is the replacement in canonical registers.
	Repl []ebpf.Instruction
}

// searchOps is the replacement vocabulary, most-likely-useful first. Div and
// mod never shorten ALU windows under the uniform cost model and are
// excluded.
var searchOps = []ebpf.ALUOp{
	ebpf.ALUMov, ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUAnd, ebpf.ALUOr,
	ebpf.ALUXor, ebpf.ALULsh, ebpf.ALURsh, ebpf.ALUArsh, ebpf.ALUMul,
	ebpf.ALUNeg,
}

// searchWindow resolves one canonical window: it enumerates candidate
// sequences strictly shorter than the window, filters them on the test
// vectors with the fast evaluator, and proves survivors on the vm. It
// returns the verdict plus the number of candidates constructed.
func searchWindow(cw canonWindow, cfg Config) (Verdict, int) {
	if cw.liveOut == 0 {
		// Nothing the window defines is live: it is dead code and the empty
		// sequence replaces it (pure ALU has no side effects to preserve).
		return Verdict{Improved: true}, 0
	}
	s := newSearcher(cw, cfg)
	repl, ok := s.run()
	if !ok {
		return Verdict{}, s.candidates
	}
	return Verdict{Improved: true, Repl: repl}, s.candidates
}

type searcher struct {
	cw         canonWindow
	cfg        Config
	liveIn     []ebpf.Register
	liveOut    []ebpf.Register
	defs       []ebpf.Register
	imms       []int32
	vectors    [][]uint64
	baseline   [][]uint64 // expected live-out values per vector
	proofVecs  [][]uint64
	candidates int
}

func newSearcher(cw canonWindow, cfg Config) *searcher {
	s := &searcher{
		cw:      cw,
		cfg:     cfg,
		liveIn:  regList(cw.liveIn),
		liveOut: regList(cw.liveOut),
		defs:    regList(cw.defs),
		imms:    immPool(cw.insns),
	}
	s.vectors = buildVectors(len(s.liveIn), cfg.Seed)
	s.proofVecs = append(s.vectors, randomVectors(len(s.liveIn), cfg.Seed+0x517e, 32)...)
	s.baseline = make([][]uint64, len(s.vectors))
	var rf regFile
	for vi, vec := range s.vectors {
		fillRegs(&rf, s.liveIn, vec)
		evalSeq(cw.insns, &rf)
		outs := make([]uint64, len(s.liveOut))
		for oi, r := range s.liveOut {
			outs[oi] = rf[r]
		}
		s.baseline[vi] = outs
	}
	return s
}

// immPool builds the immediate vocabulary: the window's own immediates,
// 0/1/-1, and the pairwise arithmetic closure of the window immediates so
// foldable constants (add 5; add 3 -> add 8) are reachable in one step.
func immPool(insns []ebpf.Instruction) []int32 {
	seen := map[int32]bool{0: true, 1: true, -1: true}
	var window []int32
	for _, ins := range insns {
		if ins.SourceField() == ebpf.SourceK && ins.ALUOpField() != ebpf.ALUEnd && ins.ALUOpField() != ebpf.ALUNeg {
			if !seen[ins.Imm] {
				seen[ins.Imm] = true
			}
			window = append(window, ins.Imm)
		}
	}
	for _, a := range window {
		for _, b := range window {
			for _, v := range [...]int32{a + b, a - b, a * b, a | b, a & b, a ^ b} {
				seen[v] = true
			}
		}
	}
	pool := make([]int32, 0, len(seen))
	for v := range seen {
		pool = append(pool, v)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	const maxImms = 32
	if len(pool) > maxImms {
		pool = pool[:maxImms]
	}
	return pool
}

// run searches lengths 0..len(window)-1 in order, so the first hit is the
// minimal-length replacement and the outcome is deterministic.
func (s *searcher) run() ([]ebpf.Instruction, bool) {
	for l := 0; l < len(s.cw.insns); l++ {
		seq := make([]ebpf.Instruction, l)
		found, abort := s.dfs(seq, 0, s.cw.liveIn)
		if found {
			return seq, true
		}
		if abort {
			break
		}
	}
	return nil, false
}

// dfs fills seq[depth:] from the vocabulary. readable tracks which canonical
// registers hold defined values (live-ins plus everything the candidate has
// written); reading outside it would make the candidate's behavior depend on
// garbage, so such sequences are never constructed.
func (s *searcher) dfs(seq []ebpf.Instruction, depth int, readable analysis.RegMask) (found, abort bool) {
	if depth == len(seq) {
		s.candidates++
		if s.candidates > s.cfg.Budget {
			return false, true
		}
		if s.accept(seq) && proveEquivalent(s.cw.insns, seq, s.liveIn, s.liveOut, s.proofVecs, s.cfg.Seed) {
			return true, false
		}
		return false, false
	}
	last := depth == len(seq)-1
	try := func(ins ebpf.Instruction) (bool, bool) {
		seq[depth] = ins
		return s.dfs(seq, depth+1, readable.With(ins.Dst))
	}
	for _, dst := range s.defs {
		if last && !s.cw.liveOut.Has(dst) {
			continue // a final insn defining a dead register is wasted
		}
		dstReadable := readable.Has(dst)
		prevDefined := depth > 0 && seq[depth-1].Dst == dst
		for _, op := range searchOps {
			switch op {
			case ebpf.ALUNeg:
				if !dstReadable {
					continue
				}
				if f, a := try(ebpf.ALU64Imm(ebpf.ALUNeg, dst, 0)); f || a {
					return f, a
				}
			case ebpf.ALUMov:
				if prevDefined {
					continue // would kill the previous insn's only effect
				}
				for _, src := range s.defs {
					if src == dst || !readable.Has(src) {
						continue
					}
					if f, a := try(ebpf.Mov64Reg(dst, src)); f || a {
						return f, a
					}
					if s.cfg.ALU32 {
						if f, a := try(ebpf.Mov32Reg(dst, src)); f || a {
							return f, a
						}
					}
				}
				if s.cfg.ALU32 && dstReadable {
					// movl dst, dst: the zero-extension idiom.
					if f, a := try(ebpf.Mov32Reg(dst, dst)); f || a {
						return f, a
					}
				}
				for _, imm := range s.imms {
					if f, a := try(ebpf.Mov64Imm(dst, imm)); f || a {
						return f, a
					}
				}
			default:
				if !dstReadable {
					continue // binary ops read dst
				}
				for _, src := range s.defs {
					if !readable.Has(src) {
						continue
					}
					if src == dst && !selfOpUseful(op) {
						continue
					}
					if f, a := try(ebpf.ALU64Reg(op, dst, src)); f || a {
						return f, a
					}
				}
				for _, imm := range s.imms {
					if immIdentity(op, imm) {
						continue
					}
					if f, a := try(ebpf.ALU64Imm(op, dst, imm)); f || a {
						return f, a
					}
				}
			}
		}
	}
	return false, false
}

// selfOpUseful reports whether op with src == dst computes something a
// shorter form doesn't: add (doubling) and mul (squaring) do; and/or are
// identities; sub/xor/shifts are redundant with mov 0 or rarely useful.
func selfOpUseful(op ebpf.ALUOp) bool {
	return op == ebpf.ALUAdd || op == ebpf.ALUMul
}

// immIdentity reports op with this immediate is a no-op (or redundant with a
// plain mov), so no minimal sequence contains it.
func immIdentity(op ebpf.ALUOp, imm int32) bool {
	switch op {
	case ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUOr, ebpf.ALUXor,
		ebpf.ALULsh, ebpf.ALURsh, ebpf.ALUArsh:
		return imm == 0
	case ebpf.ALUMul:
		return imm == 1 || imm == 0
	case ebpf.ALUAnd:
		return imm == -1 || imm == 0
	}
	return false
}

// accept runs the fast evaluator over every test vector, comparing the
// candidate's live-out registers against the window's.
func (s *searcher) accept(seq []ebpf.Instruction) bool {
	var rf regFile
	for vi, vec := range s.vectors {
		fillRegs(&rf, s.liveIn, vec)
		evalSeq(seq, &rf)
		base := s.baseline[vi]
		for oi, r := range s.liveOut {
			if rf[r] != base[oi] {
				return false
			}
		}
	}
	return true
}
