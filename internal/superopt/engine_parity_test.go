package superopt

import (
	"encoding/hex"
	"testing"

	"merlin/internal/analysis"
	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// The superoptimizer's equivalence proofs run on the pre-decoded fast
// engine (harnessMachine uses vm.New). These tests pin two invariants the
// engine work must never disturb:
//
//  1. Verdict parity — a proof replayed on the reference switch interpreter
//     reaches the same verdict on every proof vector, so verdicts cached
//     before the engine existed stay valid, and
//  2. Cache-key stability — the content-addressed key has no engine
//     dependence at all, pinned byte-for-byte against a golden value.

// refProveEquivalent is proveEquivalent with every harness run on the
// reference interpreter instead of the fast engine.
func refProveEquivalent(t *testing.T, orig, cand []ebpf.Instruction, liveIn, liveOut []ebpf.Register, vecs [][]uint64, seed int64) bool {
	t.Helper()
	for _, out := range liveOut {
		mo, err := vm.NewRef(harnessProgram(orig, liveIn, out), vm.Config{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		mc, err := vm.NewRef(harnessProgram(cand, liveIn, out), vm.Config{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		for _, vec := range vecs {
			ctx := vm.TracepointContext(vec...)
			r1, _, e1 := mo.Run(ctx, nil)
			r2, _, e2 := mc.Run(ctx, nil)
			if (e1 != nil) != (e2 != nil) {
				return false
			}
			if e1 == nil && r1 != r2 {
				return false
			}
		}
	}
	return true
}

func TestProofVerdictEngineParity(t *testing.T) {
	r2, r3 := ebpf.R2, ebpf.R3
	cases := []struct {
		name       string
		orig, cand []ebpf.Instruction
		liveIn     []ebpf.Register
		liveOut    []ebpf.Register
		want       bool
	}{
		{
			name: "fold-add-chain",
			orig: []ebpf.Instruction{
				ebpf.ALU64Imm(ebpf.ALUAdd, r2, 5),
				ebpf.ALU64Imm(ebpf.ALUAdd, r2, 3),
			},
			cand:   []ebpf.Instruction{ebpf.ALU64Imm(ebpf.ALUAdd, r2, 8)},
			liveIn: []ebpf.Register{r2}, liveOut: []ebpf.Register{r2},
			want: true,
		},
		{
			name:   "mul-to-shift",
			orig:   []ebpf.Instruction{ebpf.ALU64Imm(ebpf.ALUMul, r2, 8)},
			cand:   []ebpf.Instruction{ebpf.ALU64Imm(ebpf.ALULsh, r2, 3)},
			liveIn: []ebpf.Register{r2}, liveOut: []ebpf.Register{r2},
			want: true,
		},
		{
			name:   "xor-self-vs-mov-zero",
			orig:   []ebpf.Instruction{ebpf.ALU64Reg(ebpf.ALUXor, r2, r2)},
			cand:   []ebpf.Instruction{ebpf.Mov64Imm(r2, 0)},
			liveIn: []ebpf.Register{r2}, liveOut: []ebpf.Register{r2},
			want: true,
		},
		{
			name:   "wrong-constant",
			orig:   []ebpf.Instruction{ebpf.ALU64Imm(ebpf.ALUAdd, r2, 1)},
			cand:   []ebpf.Instruction{ebpf.ALU64Imm(ebpf.ALUAdd, r2, 2)},
			liveIn: []ebpf.Register{r2}, liveOut: []ebpf.Register{r2},
			want: false,
		},
		{
			// 32-bit add truncates the upper half; only lattice boundary
			// vectors separate it from the 64-bit add. A proof that agrees
			// here agrees on the sign/width boundaries both engines must
			// implement identically.
			name:   "alu32-vs-alu64",
			orig:   []ebpf.Instruction{ebpf.ALU64Reg(ebpf.ALUAdd, r2, r3)},
			cand:   []ebpf.Instruction{ebpf.ALU32Reg(ebpf.ALUAdd, r2, r3)},
			liveIn: []ebpf.Register{r2, r3}, liveOut: []ebpf.Register{r2},
			want: false,
		},
		{
			// Two-register swap-free exchange via xor: exercises multi-insn
			// candidates and multiple live-outs.
			name: "xor-swap",
			orig: []ebpf.Instruction{
				ebpf.ALU64Reg(ebpf.ALUXor, r2, r3),
				ebpf.ALU64Reg(ebpf.ALUXor, r3, r2),
				ebpf.ALU64Reg(ebpf.ALUXor, r2, r3),
			},
			cand: []ebpf.Instruction{
				ebpf.Mov64Reg(ebpf.R4, r2),
				ebpf.Mov64Reg(r2, r3),
				ebpf.Mov64Reg(r3, ebpf.R4),
			},
			liveIn: []ebpf.Register{r2, r3}, liveOut: []ebpf.Register{r2, r3},
			want: true,
		},
	}
	const seed = int64(7)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The exact vector recipe searchWindow proves against.
			vecs := buildVectors(len(tc.liveIn), seed)
			vecs = append(vecs, randomVectors(len(tc.liveIn), seed+0x517e, 32)...)
			fast := proveEquivalent(tc.orig, tc.cand, tc.liveIn, tc.liveOut, vecs, seed)
			ref := refProveEquivalent(t, tc.orig, tc.cand, tc.liveIn, tc.liveOut, vecs, seed)
			if fast != ref {
				t.Fatalf("engines disagree: fast=%v ref=%v", fast, ref)
			}
			if fast != tc.want {
				t.Fatalf("verdict = %v, want %v", fast, tc.want)
			}
		})
	}
}

// TestCacheKeyPinned pins the content-addressed cache key byte-for-byte: it
// must depend only on the canonical window, live-out obligation, ALU32 flag
// and budget — never on which engine proves the verdict — or every cache
// populated before a change silently invalidates.
func TestCacheKeyPinned(t *testing.T) {
	w := window{
		insns: []ebpf.Instruction{
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, 5),
			ebpf.ALU64Reg(ebpf.ALUXor, ebpf.R3, ebpf.R4),
		},
		liveIn:  analysis.RegMask(0).With(ebpf.R3).With(ebpf.R4),
		defs:    analysis.RegMask(0).With(ebpf.R3),
		liveOut: analysis.RegMask(0).With(ebpf.R3),
	}
	got := hex.EncodeToString([]byte(cacheKey(canonicalize(w), true, 40000)))
	// 9-byte insns (op dst src off imm), liveOut mask LE16, flags, budget
	// LE32: {add r0,5}{xor r0,r1} | 0x0001 | alu32 | 40000.
	const want = "070000000005000000af0001000000000000010001409c0000"
	if got != want {
		t.Fatalf("cache key drifted:\ngot  %s\nwant %s", got, want)
	}
}
