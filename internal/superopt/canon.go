package superopt

import (
	"encoding/binary"

	"merlin/internal/analysis"
	"merlin/internal/ebpf"
)

// canonWindow is a window with registers renamed to 0..nregs-1 in order of
// first appearance. Two windows that differ only in register allocation (or
// position) canonicalize identically and share one cache entry.
type canonWindow struct {
	insns   []ebpf.Instruction
	nregs   int
	liveIn  analysis.RegMask // canonical
	defs    analysis.RegMask // canonical
	liveOut analysis.RegMask // canonical
	// toActual maps canonical register index back to the original register.
	toActual [ebpf.NumRegisters]ebpf.Register
}

// canonicalize renames w's registers. The rename is a bijection on the
// registers the window touches, so any replacement expressed in canonical
// registers maps back losslessly via toActual.
func canonicalize(w window) canonWindow {
	cw := canonWindow{insns: make([]ebpf.Instruction, len(w.insns))}
	var toCanon [ebpf.NumRegisters]int8
	for i := range toCanon {
		toCanon[i] = -1
	}
	rename := func(r ebpf.Register) ebpf.Register {
		if toCanon[r] < 0 {
			toCanon[r] = int8(cw.nregs)
			cw.toActual[cw.nregs] = r
			cw.nregs++
		}
		return ebpf.Register(toCanon[r])
	}
	for i, ins := range w.insns {
		ins.Dst = rename(ins.Dst)
		if ins.SourceField() == ebpf.SourceX {
			ins.Src = rename(ins.Src)
		}
		cw.insns[i] = ins
	}
	remask := func(m analysis.RegMask) analysis.RegMask {
		var out analysis.RegMask
		for r := ebpf.Register(0); r < ebpf.NumRegisters; r++ {
			if m.Has(r) && toCanon[r] >= 0 {
				out = out.With(ebpf.Register(toCanon[r]))
			}
		}
		return out
	}
	cw.liveIn = remask(w.liveIn)
	cw.defs = remask(w.defs)
	cw.liveOut = remask(w.liveOut)
	return cw
}

// cacheKey serializes the canonical window plus everything the verdict
// depends on: the live-out obligation, whether ALU32 replacements were
// allowed, and the search budget (a verdict reached under a small budget
// must not shadow a search under a larger one).
func cacheKey(cw canonWindow, alu32 bool, budget int) string {
	b := make([]byte, 0, 9*len(cw.insns)+8)
	for _, ins := range cw.insns {
		b = appendInsn(b, ins)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(cw.liveOut))
	var flags byte
	if alu32 {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint32(b, uint32(budget))
	return string(b)
}

// appendInsn appends a 9-byte fixed encoding of one ALU instruction
// (opcode, dst, src, offset, imm) — the on-disk codec for cache keys and
// stored replacements.
func appendInsn(b []byte, ins ebpf.Instruction) []byte {
	b = append(b, ins.Opcode, byte(ins.Dst), byte(ins.Src))
	b = binary.LittleEndian.AppendUint16(b, uint16(ins.Offset))
	return binary.LittleEndian.AppendUint32(b, uint32(ins.Imm))
}

// decodeInsns reverses appendInsn over a replacement blob. It reports false
// on any framing damage so a corrupt cache entry degrades to a miss.
func decodeInsns(b []byte) ([]ebpf.Instruction, bool) {
	if len(b)%9 != 0 {
		return nil, false
	}
	out := make([]ebpf.Instruction, 0, len(b)/9)
	for len(b) > 0 {
		out = append(out, ebpf.Instruction{
			Opcode: b[0],
			Dst:    ebpf.Register(b[1]),
			Src:    ebpf.Register(b[2]),
			Offset: int16(binary.LittleEndian.Uint16(b[3:])),
			Imm:    int32(binary.LittleEndian.Uint32(b[5:])),
		})
		b = b[9:]
	}
	return out, true
}
