package superopt

import (
	"time"

	"merlin/internal/metrics"
)

// Metrics publishes superoptimizer telemetry into a metrics.Registry. All
// methods are nil-receiver safe so the instrumented paths need no guards.
type Metrics struct {
	windows     *metrics.Counter
	unique      *metrics.Counter
	hits        *metrics.Counter
	misses      *metrics.Counter
	searches    *metrics.Counter
	candidates  *metrics.Counter
	rewrites    *metrics.Counter
	reverts     *metrics.Counter
	searchDur   *metrics.Histogram
	cyclesSaved *metrics.Histogram
}

// NewMetrics registers the merlin_superopt_* families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		windows:     reg.Counter("merlin_superopt_windows_total", "Candidate windows extracted by the superoptimizer tier."),
		unique:      reg.Counter("merlin_superopt_unique_windows_total", "Distinct canonical windows after deduplication."),
		hits:        reg.Counter("merlin_superopt_cache_hits_total", "Window verdicts served from the rewrite cache."),
		misses:      reg.Counter("merlin_superopt_cache_misses_total", "Window verdicts that required an enumerative search."),
		searches:    reg.Counter("merlin_superopt_searches_total", "Enumerative searches run (one per cache miss)."),
		candidates:  reg.Counter("merlin_superopt_candidates_total", "Candidate sequences constructed across all searches."),
		rewrites:    reg.Counter("merlin_superopt_rewrites_total", "Windows replaced by a proven shorter sequence."),
		reverts:     reg.Counter("merlin_superopt_reverts_total", "Builds whose rewrites were dropped by the whole-program recheck."),
		searchDur:   reg.Histogram("merlin_superopt_search_duration_us", "Per-window enumerative search time in microseconds."),
		cyclesSaved: reg.Histogram("merlin_superopt_cycles_saved", "Modeled VM cycles saved per build with applied rewrites."),
	}
}

// observeSearch records one window search's duration.
func (m *Metrics) observeSearch(d time.Duration) {
	if m == nil {
		return
	}
	m.searchDur.Observe(uint64(d.Microseconds()))
}

// record folds one Optimize call's stats into the registry.
func (m *Metrics) record(st *Stats) {
	if m == nil {
		return
	}
	m.windows.Add(uint64(st.Windows))
	m.unique.Add(uint64(st.UniqueWindows))
	m.hits.Add(uint64(st.CacheHits))
	m.misses.Add(uint64(st.CacheMisses))
	m.searches.Add(uint64(st.Searches))
	m.candidates.Add(uint64(st.Candidates))
	m.rewrites.Add(uint64(st.Rewrites))
	if st.Reverted {
		m.reverts.Inc()
	}
	if st.Rewrites > 0 {
		m.cyclesSaved.Observe(st.CyclesSaved)
	}
}
