package superopt

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"merlin/internal/ebpf"
)

// fedVerdict builds a distinct verdict keyed by n for federation tests.
func fedVerdict(n int) Verdict {
	return Verdict{Improved: true, Repl: []ebpf.Instruction{ebpf.Mov64Imm(0, int32(n))}}
}

// TestFederationRoundTrip: export everything from one cache, merge into a
// fresh one, and every verdict arrives byte-for-byte.
func TestFederationRoundTrip(t *testing.T) {
	a := NewMemCache()
	for i := 0; i < 10; i++ {
		a.Put(fmt.Sprintf("k%d", i), fedVerdict(i))
	}
	a.Put("k-neg", Verdict{})
	blob, seq, n, err := a.Export(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 || seq != 11 {
		t.Fatalf("export n=%d seq=%d, want 11/11", n, seq)
	}
	b := NewMemCache()
	st, err := b.Merge(blob)
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 11 || st.Known != 0 {
		t.Fatalf("merge stats %+v, want Added=11 Known=0", st)
	}
	for i := 0; i < 10; i++ {
		got, ok := b.Get(fmt.Sprintf("k%d", i))
		if !ok || !verdictsEqual(got, fedVerdict(i)) {
			t.Fatalf("k%d lost or corrupted in merge: %+v ok=%v", i, got, ok)
		}
	}
	if v, ok := b.Get("k-neg"); !ok || v.Improved {
		t.Fatalf("negative verdict lost: %+v ok=%v", v, ok)
	}
	// Idempotence: re-merging the same blob adds nothing and errors nothing.
	st, err = b.Merge(blob)
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 0 || st.Known != 11 {
		t.Fatalf("re-merge stats %+v, want Added=0 Known=11", st)
	}
}

// TestFederationDelta: the seq watermark returned by Export bounds the next
// delta, and a stale (too-large) watermark degrades to a full export.
func TestFederationDelta(t *testing.T) {
	c := NewMemCache()
	c.Put("a", fedVerdict(1))
	c.Put("b", fedVerdict(2))
	_, seq, n, err := c.Export(0)
	if err != nil || n != 2 {
		t.Fatalf("first export n=%d err=%v", n, err)
	}
	c.Put("c", fedVerdict(3))
	blob, seq2, n, err := c.Export(seq)
	if err != nil || n != 1 || seq2 != 3 {
		t.Fatalf("delta export n=%d seq=%d err=%v, want 1/3", n, seq2, err)
	}
	b := NewMemCache()
	if _, err := b.Merge(blob); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("delta merged %d entries, want 1", b.Len())
	}
	if _, ok := b.Get("c"); !ok {
		t.Fatal("delta missed the new key")
	}
	// Watermark beyond the cache's length (e.g. cache rebuilt after restart)
	// must fall back to a full export, never panic or return nothing.
	_, _, n, err = c.Export(99)
	if err != nil || n != 3 {
		t.Fatalf("stale watermark export n=%d err=%v, want full 3", n, err)
	}
}

// TestFederationConflict: two caches holding different verdicts for the same
// key must refuse to merge — loud error, neither side mutated.
func TestFederationConflict(t *testing.T) {
	a := NewMemCache()
	b := NewMemCache()
	a.Put("shared", fedVerdict(1))
	a.Put("only-a", fedVerdict(7))
	b.Put("shared", fedVerdict(2)) // conflicting verdict for the same key
	b.Put("only-b", fedVerdict(9))

	blobA, _, _, err := a.Export(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Merge(blobA); err == nil {
		t.Fatal("conflicting merge succeeded; want loud error")
	} else if !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("conflict error does not say so: %v", err)
	}
	// Neither cache mutated: b keeps its own verdict, never gains only-a,
	// and a is untouched.
	if v, _ := b.Get("shared"); !verdictsEqual(v, fedVerdict(2)) {
		t.Fatalf("b's verdict overwritten by failed merge: %+v", v)
	}
	if _, ok := b.Get("only-a"); ok {
		t.Fatal("failed merge leaked entries into b")
	}
	if b.Len() != 2 || a.Len() != 2 {
		t.Fatalf("cache sizes changed: a=%d b=%d, want 2/2", a.Len(), b.Len())
	}
	blobB, _, _, err := b.Export(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Merge(blobB); err == nil {
		t.Fatal("reverse merge must conflict too")
	}
	if a.Len() != 2 {
		t.Fatalf("a mutated by failed merge: %d entries", a.Len())
	}
}

// TestFederationBlobInternalConflict: a blob carrying two different verdicts
// for one key is rejected before anything is applied.
func TestFederationBlobInternalConflict(t *testing.T) {
	blob, err := json.Marshal([]cacheEntry{
		encodeEntry("dup", fedVerdict(1)),
		encodeEntry("dup", fedVerdict(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewMemCache()
	c.Put("pre", fedVerdict(5))
	if _, err := c.Merge(blob); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("internal blob conflict not rejected: %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("failed merge mutated cache: %d entries", c.Len())
	}
}

// TestMergeWhileCompacting is the -race regression for the quiesced-cache
// assumption the old single-mutex compaction made: concurrent Put-driven
// compactions, Merges, Exports, and Gets on one persistent cache must be
// data-race free and lose nothing.
func TestMergeWhileCompacting(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A remote cache exporting blobs that overlap the local key space.
	remote := NewMemCache()
	for i := 0; i < 300; i++ {
		remote.Put(fmt.Sprintf("shared%d", i), fedVerdict(i))
	}
	blob, _, _, err := remote.Export(0)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Writer: enough Puts to trip compactThreshold several times.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3*compactThreshold; i++ {
			c.Put(fmt.Sprintf("local%d", i), fedVerdict(i))
		}
	}()
	// Mergers racing the compactions.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := c.Merge(blob); err != nil {
					t.Errorf("merge during compaction: %v", err)
					return
				}
			}
		}()
	}
	// Readers: Get + Export must never block on or race the snapshot write.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var since uint64
			for i := 0; i < 200; i++ {
				c.Get(fmt.Sprintf("shared%d", (g*37+i)%300))
				c.Len()
				_, seq, _, err := c.Export(since)
				if err != nil {
					t.Errorf("export during compaction: %v", err)
					return
				}
				since = seq
			}
		}(g)
	}
	// Explicit Flush (compaction) racing everyone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := c.Flush(); err != nil {
				t.Errorf("flush during merge: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	want := 3*compactThreshold + 300
	if c.Len() != want {
		t.Fatalf("entries lost under concurrency: %d, want %d", c.Len(), want)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything survives the journal round trip.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != want {
		t.Fatalf("reload lost entries: %d, want %d", c2.Len(), want)
	}
	for i := 0; i < 300; i++ {
		if _, ok := c2.Get(fmt.Sprintf("shared%d", i)); !ok {
			t.Fatalf("merged key shared%d lost across reload", i)
		}
	}
}

// TestFederationPersistentMerge: merged entries journal like local ones and
// survive a reopen.
func TestFederationPersistentMerge(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	remote := NewMemCache()
	remote.Put("r1", fedVerdict(1))
	remote.Put("r2", Verdict{})
	blob, _, _, err := remote.Export(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Merge(blob); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if v, ok := c2.Get("r1"); !ok || !verdictsEqual(v, fedVerdict(1)) {
		t.Fatalf("merged verdict lost across reopen: %+v ok=%v", v, ok)
	}
	if _, ok := c2.Get("r2"); !ok {
		t.Fatal("merged negative verdict lost across reopen")
	}
}
