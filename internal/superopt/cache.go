package superopt

import (
	"encoding/json"
	"fmt"
	"sync"

	"merlin/internal/journal"
)

// compactThreshold bounds journal growth: once this many entries have been
// appended since open, the cache folds everything into one snapshot record.
const compactThreshold = 256

// Cache is the content-addressed rewrite cache: canonical window key ->
// Verdict. With a directory it persists through an internal/journal log
// (CRC-framed records, torn-tail tolerant, atomically compacted), so warm
// builds resolve every previously seen window without searching. Without a
// directory it is a plain in-memory map.
//
// Damaged or undecodable entries degrade to cache misses — the cache is an
// accelerator, never a source of truth: every verdict it returns was proven
// before it was stored, and applied rewrites are still re-checked
// whole-program on every build.
//
// Verdicts are append-only (a key's verdict never changes; see Merge for
// what happens when two caches disagree), which is what makes fleet-wide
// federation a union: Export serializes a suffix of the insertion order,
// Merge unions it in with conflict detection.
//
// Locking: iomu serializes every mutator (Put, Merge, Flush, Close) and
// orders journal appends against compaction; mu guards the entries map and
// insertion order and is only ever held for map access, never across journal
// I/O. iomu is always acquired before mu. Readers (Get, Len, Export) take mu
// alone, so lookups and exports proceed while a compaction is writing the
// snapshot — compaction no longer assumes a quiesced cache.
type Cache struct {
	iomu     sync.Mutex // mutator/journal order; acquired before mu
	mu       sync.RWMutex
	log      *journal.Log // nil for in-memory caches
	entries  map[string]Verdict
	order    []string // keys in first-insert order; Export's delta basis
	appended int      // journal records since the last compaction (under iomu)
}

// cacheEntry is the JSON record framing for one verdict, shared by the
// on-disk journal records and the Export/Merge wire format.
type cacheEntry struct {
	Key      []byte
	Improved bool
	Repl     []byte `json:",omitempty"`
}

// NewMemCache returns a transient in-memory cache.
func NewMemCache() *Cache {
	return &Cache{entries: map[string]Verdict{}}
}

// OpenCache opens (creating if needed) a persistent cache in dir. The
// underlying journal takes a cross-process advisory lock on dir, so a
// concurrent build sharing the same cache directory fails fast with a clear
// error rather than interleaving appends.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheWith(dir, journal.Options{})
}

// OpenCacheWith is OpenCache with explicit journal options: a chaos.FS for
// fault injection, a segment-rotation threshold, and the fsync policy. The
// cache's appends are never forced — verdicts are re-provable, so the async
// policies only risk re-searching a window, never wrong results.
func OpenCacheWith(dir string, o journal.Options) (*Cache, error) {
	log, err := journal.OpenWith(dir, o)
	if err != nil {
		return nil, err
	}
	c := &Cache{log: log, entries: map[string]Verdict{}}
	if snap, ok := log.Snapshot(); ok {
		var es []cacheEntry
		if json.Unmarshal(snap, &es) == nil {
			for _, e := range es {
				c.addEntry(e)
			}
		}
	}
	_ = log.Replay(func(payload []byte) error {
		var e cacheEntry
		if json.Unmarshal(payload, &e) == nil {
			c.addEntry(e)
		}
		return nil
	})
	return c, nil
}

// addEntry inserts a decoded entry during open/replay (no locking needed:
// the cache is not yet shared).
func (c *Cache) addEntry(e cacheEntry) {
	if len(e.Key) == 0 {
		return
	}
	repl, ok := decodeInsns(e.Repl)
	if !ok {
		return
	}
	if _, dup := c.entries[string(e.Key)]; dup {
		return
	}
	c.entries[string(e.Key)] = Verdict{Improved: e.Improved, Repl: repl}
	c.order = append(c.order, string(e.Key))
}

// Get returns the memoized verdict for key.
func (c *Cache) Get(key string) (Verdict, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.entries[key]
	return v, ok
}

// Put memoizes a verdict, appending it to the journal when persistent.
// Re-putting a known key is a no-op.
func (c *Cache) Put(key string, v Verdict) {
	c.iomu.Lock()
	defer c.iomu.Unlock()
	c.putIOLocked(key, v)
}

// putIOLocked inserts key under iomu: map insert under a short mu critical
// section, then the journal append without holding mu, so concurrent readers
// never wait on disk.
func (c *Cache) putIOLocked(key string, v Verdict) {
	c.mu.Lock()
	if _, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return
	}
	c.entries[key] = v
	c.order = append(c.order, key)
	c.mu.Unlock()
	if c.log == nil {
		return
	}
	payload, err := json.Marshal(encodeEntry(key, v))
	if err != nil {
		return
	}
	if c.log.Append(payload, false) == nil {
		c.appended++
		if c.appended >= compactThreshold {
			_ = c.compactIOLocked()
		}
	}
}

// encodeEntry converts one verdict to its wire/journal record.
func encodeEntry(key string, v Verdict) cacheEntry {
	var repl []byte
	for _, ins := range v.Repl {
		repl = appendInsn(repl, ins)
	}
	return cacheEntry{Key: []byte(key), Improved: v.Improved, Repl: repl}
}

// verdictsEqual reports whether two verdicts agree instruction for
// instruction — the federation conflict predicate.
func verdictsEqual(a, b Verdict) bool {
	if a.Improved != b.Improved || len(a.Repl) != len(b.Repl) {
		return false
	}
	for i := range a.Repl {
		if a.Repl[i] != b.Repl[i] {
			return false
		}
	}
	return true
}

// Len returns the number of memoized windows.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Seq returns the cache's insertion sequence number: the value to pass to a
// later Export to receive only entries added after this call.
func (c *Cache) Seq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return uint64(len(c.order))
}

// Export serializes every entry inserted at sequence >= since (0 exports
// everything) and returns the blob plus the cache's current sequence — the
// watermark to pass to the next Export for a pure delta. A since beyond the
// current sequence (a restarted cache whose insertion order was rebuilt
// shorter) degrades to a full export: merging is idempotent, so over-sending
// is always safe and self-healing.
func (c *Cache) Export(since uint64) (blob []byte, seq uint64, n int, err error) {
	c.mu.RLock()
	if since > uint64(len(c.order)) {
		since = 0
	}
	keys := c.order[since:]
	es := make([]cacheEntry, 0, len(keys))
	for _, k := range keys {
		es = append(es, encodeEntry(k, c.entries[k]))
	}
	seq = uint64(len(c.order))
	c.mu.RUnlock()
	blob, err = json.Marshal(es)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("superopt: export: %w", err)
	}
	return blob, seq, len(es), nil
}

// MergeStats reports what one Merge did.
type MergeStats struct {
	// Added is the number of entries new to this cache.
	Added int
	// Known is the number of entries already present with an identical
	// verdict (the idempotent overlap of a union).
	Known int
}

// Merge unions an Export blob into the cache. Every entry is validated
// before anything is applied: a conflict — the same key carrying a different
// verdict, whether against an existing entry or between two entries inside
// the blob — fails the whole merge loudly and leaves the cache unmutated.
// Silent overwrite is never an option: two proven verdicts for one canonical
// window cannot disagree unless a proof (or a cache) is corrupt, and that
// must surface, not vanish.
func (c *Cache) Merge(blob []byte) (MergeStats, error) {
	var st MergeStats
	var es []cacheEntry
	if err := json.Unmarshal(blob, &es); err != nil {
		return st, fmt.Errorf("superopt: merge: undecodable export: %w", err)
	}
	type decoded struct {
		key string
		v   Verdict
	}
	incoming := make([]decoded, 0, len(es))
	inBlob := map[string]Verdict{}
	for i, e := range es {
		if len(e.Key) == 0 {
			return st, fmt.Errorf("superopt: merge: entry %d has an empty key", i)
		}
		repl, ok := decodeInsns(e.Repl)
		if !ok {
			return st, fmt.Errorf("superopt: merge: entry %d has a corrupt replacement", i)
		}
		v := Verdict{Improved: e.Improved, Repl: repl}
		if prev, dup := inBlob[string(e.Key)]; dup {
			if !verdictsEqual(prev, v) {
				return st, fmt.Errorf("superopt: merge conflict: blob carries two verdicts for key %x", e.Key)
			}
			continue
		}
		inBlob[string(e.Key)] = v
		incoming = append(incoming, decoded{key: string(e.Key), v: v})
	}

	// iomu blocks concurrent mutators, so the validate-then-apply pair below
	// is atomic against every other writer; readers keep being served the
	// pre-merge (then incrementally merged) map throughout.
	c.iomu.Lock()
	defer c.iomu.Unlock()
	c.mu.RLock()
	for _, d := range incoming {
		if have, ok := c.entries[d.key]; ok {
			if !verdictsEqual(have, d.v) {
				c.mu.RUnlock()
				return st, fmt.Errorf("superopt: merge conflict: key %x holds a different verdict (local improved=%v len=%d, incoming improved=%v len=%d); refusing to overwrite",
					d.key, have.Improved, len(have.Repl), d.v.Improved, len(d.v.Repl))
			}
			st.Known++
		}
	}
	c.mu.RUnlock()
	for _, d := range incoming {
		if _, ok := c.Get(d.key); ok {
			continue
		}
		c.putIOLocked(d.key, d.v)
		st.Added++
	}
	return st, nil
}

// compactIOLocked folds the cache into one snapshot record. Called with iomu
// held; mu is only taken to marshal a consistent view, so concurrent Get and
// Export are never blocked behind the snapshot write.
func (c *Cache) compactIOLocked() error {
	if c.log == nil {
		return nil
	}
	c.mu.RLock()
	es := make([]cacheEntry, 0, len(c.order))
	for _, k := range c.order {
		es = append(es, encodeEntry(k, c.entries[k]))
	}
	c.mu.RUnlock()
	payload, err := json.Marshal(es)
	if err != nil {
		return err
	}
	if err := c.log.Compact(payload); err != nil {
		return err
	}
	c.appended = 0
	return nil
}

// Flush compacts any appended entries into the snapshot (durable and fast to
// reload). No-op for in-memory caches.
func (c *Cache) Flush() error {
	c.iomu.Lock()
	defer c.iomu.Unlock()
	if c.appended == 0 {
		return nil
	}
	return c.compactIOLocked()
}

// Close flushes and releases the journal (and its state-dir lock).
func (c *Cache) Close() error {
	c.iomu.Lock()
	defer c.iomu.Unlock()
	if c.log == nil {
		return nil
	}
	var ferr error
	if c.appended != 0 {
		ferr = c.compactIOLocked()
	}
	err := c.log.Close()
	c.log = nil
	if ferr != nil {
		return ferr
	}
	return err
}
