package superopt

import (
	"encoding/json"
	"sync"

	"merlin/internal/journal"
)

// compactThreshold bounds journal growth: once this many entries have been
// appended since open, the cache folds everything into one snapshot record.
const compactThreshold = 256

// Cache is the content-addressed rewrite cache: canonical window key ->
// Verdict. With a directory it persists through an internal/journal log
// (CRC-framed records, torn-tail tolerant, atomically compacted), so warm
// builds resolve every previously seen window without searching. Without a
// directory it is a plain in-memory map.
//
// Damaged or undecodable entries degrade to cache misses — the cache is an
// accelerator, never a source of truth: every verdict it returns was proven
// before it was stored, and applied rewrites are still re-checked
// whole-program on every build.
type Cache struct {
	mu       sync.Mutex
	log      *journal.Log // nil for in-memory caches
	entries  map[string]Verdict
	appended int
}

// cacheEntry is the JSON record framing for one verdict.
type cacheEntry struct {
	Key      []byte
	Improved bool
	Repl     []byte `json:",omitempty"`
}

// NewMemCache returns a transient in-memory cache.
func NewMemCache() *Cache {
	return &Cache{entries: map[string]Verdict{}}
}

// OpenCache opens (creating if needed) a persistent cache in dir. The
// underlying journal takes a cross-process advisory lock on dir, so a
// concurrent build sharing the same cache directory fails fast with a clear
// error rather than interleaving appends.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheWith(dir, journal.Options{})
}

// OpenCacheWith is OpenCache with explicit journal options: a chaos.FS for
// fault injection, a segment-rotation threshold, and the fsync policy. The
// cache's appends are never forced — verdicts are re-provable, so the async
// policies only risk re-searching a window, never wrong results.
func OpenCacheWith(dir string, o journal.Options) (*Cache, error) {
	log, err := journal.OpenWith(dir, o)
	if err != nil {
		return nil, err
	}
	c := &Cache{log: log, entries: map[string]Verdict{}}
	if snap, ok := log.Snapshot(); ok {
		var es []cacheEntry
		if json.Unmarshal(snap, &es) == nil {
			for _, e := range es {
				c.addEntry(e)
			}
		}
	}
	_ = log.Replay(func(payload []byte) error {
		var e cacheEntry
		if json.Unmarshal(payload, &e) == nil {
			c.addEntry(e)
		}
		return nil
	})
	return c, nil
}

func (c *Cache) addEntry(e cacheEntry) {
	if len(e.Key) == 0 {
		return
	}
	repl, ok := decodeInsns(e.Repl)
	if !ok {
		return
	}
	c.entries[string(e.Key)] = Verdict{Improved: e.Improved, Repl: repl}
}

// Get returns the memoized verdict for key.
func (c *Cache) Get(key string) (Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	return v, ok
}

// Put memoizes a verdict, appending it to the journal when persistent.
// Re-putting a known key is a no-op.
func (c *Cache) Put(key string, v Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = v
	if c.log == nil {
		return
	}
	var repl []byte
	for _, ins := range v.Repl {
		repl = appendInsn(repl, ins)
	}
	payload, err := json.Marshal(cacheEntry{Key: []byte(key), Improved: v.Improved, Repl: repl})
	if err != nil {
		return
	}
	if c.log.Append(payload, false) == nil {
		c.appended++
		if c.appended >= compactThreshold {
			_ = c.compactLocked()
		}
	}
}

// Len returns the number of memoized windows.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) compactLocked() error {
	if c.log == nil {
		return nil
	}
	es := make([]cacheEntry, 0, len(c.entries))
	for k, v := range c.entries {
		var repl []byte
		for _, ins := range v.Repl {
			repl = appendInsn(repl, ins)
		}
		es = append(es, cacheEntry{Key: []byte(k), Improved: v.Improved, Repl: repl})
	}
	payload, err := json.Marshal(es)
	if err != nil {
		return err
	}
	if err := c.log.Compact(payload); err != nil {
		return err
	}
	c.appended = 0
	return nil
}

// Flush compacts any appended entries into the snapshot (durable and fast to
// reload). No-op for in-memory caches.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.appended == 0 {
		return nil
	}
	return c.compactLocked()
}

// Close flushes and releases the journal (and its state-dir lock).
func (c *Cache) Close() error {
	if err := c.Flush(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return nil
	}
	err := c.log.Close()
	c.log = nil
	return err
}
