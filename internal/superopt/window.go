package superopt

import (
	"merlin/internal/analysis"
	"merlin/internal/ebpf"
)

// Window length bounds. Singleton windows are pointless (the only shorter
// sequence is empty, which plain DCE already finds); beyond five instructions
// the search space dwarfs any practical budget.
const (
	minWindow = 2
	maxWindow = 5
)

// window is one candidate region: elements [start,end) of the program, all
// pure ALU, all inside a single basic block so no branch lands in the
// interior.
type window struct {
	start, end int
	insns      []ebpf.Instruction
	// liveIn is the registers the window reads before writing.
	liveIn analysis.RegMask
	// defs is everything the window writes.
	defs analysis.RegMask
	// liveOut is the subset of defs still live after the window — the only
	// registers a replacement must reproduce.
	liveOut analysis.RegMask
}

// windowable reports whether ins may be part of a window: a register ALU
// instruction with no memory, control-flow or frame-pointer involvement.
func windowable(ins ebpf.Instruction) bool {
	switch ins.Class() {
	case ebpf.ClassALU, ebpf.ClassALU64:
	default:
		return false
	}
	if ins.ALUOpField() > ebpf.ALUEnd {
		return false
	}
	if ins.Dst == ebpf.R10 {
		return false
	}
	if ins.SourceField() == ebpf.SourceX && ins.Src == ebpf.R10 {
		return false
	}
	return true
}

// extractWindows enumerates every candidate window of prog: all lengths
// [minWindow,maxWindow] at all positions inside maximal ALU runs within
// basic blocks, annotated with the dependency facts (live-in set, defs,
// live-out set) from internal/analysis.
func extractWindows(prog *ebpf.Program) ([]window, error) {
	cfg, err := analysis.BuildCFG(prog)
	if err != nil {
		return nil, err
	}
	live := analysis.Liveness(cfg)

	var ws []window
	for _, blk := range cfg.Blocks {
		i := blk[0]
		for i < blk[1] {
			if !windowable(prog.Insns[i]) {
				i++
				continue
			}
			j := i
			for j < blk[1] && windowable(prog.Insns[j]) {
				j++
			}
			for s := i; s+minWindow <= j; s++ {
				max := j - s
				if max > maxWindow {
					max = maxWindow
				}
				for l := max; l >= minWindow; l-- {
					ws = append(ws, makeWindow(prog, live, s, s+l))
				}
			}
			i = j
		}
	}
	return ws, nil
}

// makeWindow computes the dependency facts for elements [start,end).
func makeWindow(prog *ebpf.Program, live []analysis.RegMask, start, end int) window {
	w := window{start: start, end: end, insns: prog.Insns[start:end]}
	for _, ins := range w.insns {
		eff := analysis.InsnEffects(ins)
		w.liveIn |= eff.Uses &^ w.defs
		w.defs |= eff.Defs
	}
	w.liveOut = w.defs & live[end-1]
	return w
}
