package superopt

import (
	"math/rand"

	"merlin/internal/analysis"
	"merlin/internal/ebpf"
)

// regFile is the register state used by the fast filter evaluator.
type regFile [ebpf.NumRegisters]uint64

// evalSeq executes a straight-line ALU sequence over regs, mirroring the
// semantics of internal/vm's execALU exactly: div-by-zero yields 0,
// mod-by-zero leaves dst, shifts mask the count by width-1, 32-bit ops
// truncate then zero-extend, and ALUEnd byte-swaps the low imm bits.
//
// The evaluator is only a filter: any divergence from the vm is caught when
// survivors are re-proven on the vm itself (a too-permissive evaluator costs
// proof time, a too-strict one costs only missed rewrites — never
// correctness).
func evalSeq(insns []ebpf.Instruction, regs *regFile) {
	for _, ins := range insns {
		is32 := ins.Class() == ebpf.ClassALU
		var src uint64
		if ins.SourceField() == ebpf.SourceX {
			src = regs[ins.Src]
		} else {
			src = uint64(int64(ins.Imm))
		}
		a := regs[ins.Dst]
		if ins.ALUOpField() == ebpf.ALUEnd {
			regs[ins.Dst] = bswapBits(a, ins.Imm)
			continue
		}
		bits := uint64(64)
		if is32 {
			a &= 0xffffffff
			src &= 0xffffffff
			bits = 32
		}
		var r uint64
		switch ins.ALUOpField() {
		case ebpf.ALUAdd:
			r = a + src
		case ebpf.ALUSub:
			r = a - src
		case ebpf.ALUMul:
			r = a * src
		case ebpf.ALUDiv:
			if src == 0 {
				r = 0
			} else {
				r = a / src
			}
		case ebpf.ALUMod:
			if src == 0 {
				r = a
			} else {
				r = a % src
			}
		case ebpf.ALUOr:
			r = a | src
		case ebpf.ALUAnd:
			r = a & src
		case ebpf.ALUXor:
			r = a ^ src
		case ebpf.ALULsh:
			r = a << (src & (bits - 1))
		case ebpf.ALURsh:
			r = a >> (src & (bits - 1))
		case ebpf.ALUArsh:
			if is32 {
				r = uint64(uint32(int32(uint32(a)) >> (src & 31)))
			} else {
				r = uint64(int64(a) >> (src & 63))
			}
		case ebpf.ALUNeg:
			r = -a
		case ebpf.ALUMov:
			r = src
		}
		if is32 {
			r &= 0xffffffff
		}
		regs[ins.Dst] = r
	}
}

// bswapBits reverses the byte order of the low bits of v (16/32/64),
// matching the vm's ALUEnd semantics.
func bswapBits(v uint64, bits int32) uint64 {
	switch bits {
	case 16:
		return uint64(uint16(v)>>8 | uint16(v)<<8)
	case 32:
		x := uint32(v)
		return uint64(x>>24 | x>>8&0xff00 | x<<8&0xff0000 | x<<24)
	default:
		r := uint64(0)
		for i := 0; i < 8; i++ {
			r = r<<8 | (v >> (8 * i) & 0xff)
		}
		return r
	}
}

// lattice is the exhaustive small-input set: boundary values of every
// operand width plus small naturals, chosen to separate sign extension,
// truncation, shift-count masking and carry behavior.
var lattice = []uint64{
	0, 1, 2, 3, 7, 8, 31, 32, 63, 64,
	0x7f, 0x80, 0xff, 0x7fff, 0x8000, 0xffff,
	0x7fffffff, 0x80000000, 0xffffffff, 0x100000000,
	0x7fffffffffffffff, 0x8000000000000000, 0xffffffffffffffff,
}

// regList expands a mask into ascending register order.
func regList(m analysis.RegMask) []ebpf.Register {
	var rs []ebpf.Register
	for r := ebpf.Register(0); r < ebpf.NumRegisters; r++ {
		if m.Has(r) {
			rs = append(rs, r)
		}
	}
	return rs
}

// buildVectors produces the live-in test vectors for a window with n live-in
// registers: the full lattice cross-product when n <= 2 (the common case),
// lattice rotations otherwise, plus seeded random vectors mixing full-range,
// narrow and single-bit patterns.
func buildVectors(n int, seed int64) [][]uint64 {
	if n == 0 {
		return [][]uint64{{}}
	}
	var vecs [][]uint64
	switch n {
	case 1:
		for _, v := range lattice {
			vecs = append(vecs, []uint64{v})
		}
	case 2:
		for _, a := range lattice {
			for _, b := range lattice {
				vecs = append(vecs, []uint64{a, b})
			}
		}
	default:
		for j := range lattice {
			vec := make([]uint64, n)
			for i := range vec {
				vec[i] = lattice[(i+j)%len(lattice)]
			}
			vecs = append(vecs, vec)
		}
	}
	return append(vecs, randomVectors(n, seed, 32)...)
}

// randomVectors returns count seeded vectors of n values each.
func randomVectors(n int, seed int64, count int) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]uint64, count)
	for i := range vecs {
		vec := make([]uint64, n)
		for k := range vec {
			v := rng.Uint64()
			switch rng.Intn(4) {
			case 0: // full range
			case 1:
				v &= 0xff
			case 2:
				v &= 0xffffffff
			case 3:
				v = 1 << (v & 63)
			}
			vec[k] = v
		}
		vecs[i] = vec
	}
	return vecs
}

// fillRegs loads a live-in vector into a register file. Registers outside
// the live-in set get a poison pattern: every legal candidate is structurally
// barred from reading them, so if a bug ever lets one through, the poison
// makes the divergence visible instead of silently matching zeroes.
func fillRegs(rf *regFile, liveIn []ebpf.Register, vec []uint64) {
	for i := range rf {
		rf[i] = 0xbad0bad000000000 | uint64(i)
	}
	for i, r := range liveIn {
		rf[r] = vec[i]
	}
}
