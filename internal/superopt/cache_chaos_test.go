package superopt

import (
	"fmt"
	"testing"
	"time"

	"merlin/internal/chaos"
	"merlin/internal/ebpf"
	"merlin/internal/journal"
)

// TestCacheChaosSurvival: with seeded faults fired at every cache I/O site,
// Put/Flush/Close never panic or corrupt, and a clean reopen serves every
// entry that survived — a damaged entry is a miss, never a wrong verdict.
func TestCacheChaosSurvival(t *testing.T) {
	verdict := func(i int) Verdict {
		if i%3 == 0 {
			return Verdict{Improved: false}
		}
		return Verdict{Improved: true, Repl: []ebpf.Instruction{ebpf.Mov64Imm(ebpf.R0, int32(i))}}
	}
	for seed := int64(1); seed <= 4; seed++ {
		dir := t.TempDir()
		inj := chaos.Wrap(chaos.OS(), chaos.NewRate(seed, 0.05, chaos.EIO, chaos.ENOSPC, chaos.Torn))
		inj.SlowDelay = 0
		c, err := OpenCacheWith(dir, journal.Options{FS: inj, SegmentBytes: 512})
		if err != nil {
			continue // the open itself faulted; nothing persisted to verify
		}
		for i := 0; i < 100; i++ {
			c.Put(fmt.Sprintf("window-%03d", i), verdict(i))
		}
		_ = c.Close() // flush/compact may fault too; must not panic

		c2, err := OpenCache(dir)
		if err != nil {
			t.Fatalf("seed %d: clean reopen failed: %v", seed, err)
		}
		for i := 0; i < 100; i++ {
			got, ok := c2.Get(fmt.Sprintf("window-%03d", i))
			if !ok {
				continue // lost to a fault: a miss, which is safe
			}
			want := verdict(i)
			if got.Improved != want.Improved || len(got.Repl) != len(want.Repl) {
				t.Fatalf("seed %d: window-%03d corrupted: got %+v want %+v", seed, i, got, want)
			}
		}
		c2.Close()
	}
}

// TestCacheGroupCommitPolicy: the cache runs under the group-commit policy
// and still round-trips through close/reopen, with fewer fsyncs than
// appends.
func TestCacheGroupCommitPolicy(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCacheWith(dir, journal.Options{
		Policy: journal.Policy{Mode: journal.ModeGroup, Interval: time.Hour, MaxBatch: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("k%02d", i), Verdict{Improved: i%2 == 0})
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 64 {
		t.Fatalf("reopened cache has %d entries, want 64", c2.Len())
	}
}
