// Package superopt is Merlin's optional third optimization tier: a caching
// peephole superoptimizer in the EPSO tradition ("A Caching-Based Efficient
// Superoptimizer for BPF Bytecode"). It runs after the rule-based bytecode
// refinement and hunts for shorter equivalent sequences that no fixed rewrite
// rule covers.
//
// The tier works on windows: 2-5 consecutive pure-ALU instructions inside one
// basic block. Each window is canonicalized (registers renamed in order of
// first appearance) and looked up in a content-addressed rewrite cache; on a
// miss an enumerative search tries every candidate sequence that is strictly
// shorter than the window, over a bounded ISA subset, pruned structurally and
// filtered by differential execution on input vectors (an exhaustive small
// lattice plus seeded random vectors). Surviving candidates are proven
// against the real internal/vm interpreter, and every accepted build output
// is re-checked whole-program with internal/guard's differential validation.
// Verdicts — including "no improvement found" — are memoized, optionally on
// disk via internal/journal framing, so warm builds skip search entirely.
package superopt

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/vm"
)

// DefaultBudget bounds the candidate sequences enumerated per window search.
// The budget is counted in candidates, not wall time, so verdicts (and the
// cache contents) are deterministic across machines.
const DefaultBudget = 50000

// Config configures one superoptimizer run.
type Config struct {
	// Cache memoizes window verdicts. Nil means a transient in-memory cache
	// private to the call; use OpenCache to share verdicts across builds.
	Cache *Cache
	// Budget caps candidate sequences per window search (0 = DefaultBudget).
	// The budget is part of the cache key: verdicts found under different
	// budgets never shadow each other.
	Budget int
	// Workers sizes the search worker pool (0 = GOMAXPROCS).
	Workers int
	// ALU32 allows replacements to use 32-bit ALU instructions.
	ALU32 bool
	// Seed drives the random test vectors and the whole-program recheck
	// inputs (0 = 1).
	Seed int64
	// DiffInputs is the sample count for the whole-program differential
	// recheck of the rewritten output (0 = 16).
	DiffInputs int
	// Metrics, when set, records window/hit/search/rewrite telemetry.
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = DefaultBudget
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DiffInputs <= 0 {
		c.DiffInputs = 16
	}
	return c
}

// Stats reports what one Optimize call did.
type Stats struct {
	// Windows is the number of candidate windows extracted (all positions
	// and lengths, before deduplication).
	Windows int
	// UniqueWindows is the number of distinct canonical windows.
	UniqueWindows int
	// CacheHits / CacheMisses count verdict lookups per unique window.
	CacheHits   int
	CacheMisses int
	// Searches counts enumerative searches run — one per cache miss.
	Searches int
	// Candidates counts candidate sequences constructed across all searches.
	Candidates int
	// Rewrites is the number of windows replaced in the output program.
	Rewrites int
	// InsnsSaved is the instruction-slot reduction of the output.
	InsnsSaved int
	// CyclesSaved is the modeled per-execution VM cycle saving of the
	// applied rewrites (ALU cost x instructions removed).
	CyclesSaved uint64
	// SearchTime is the wall time spent searching (sum across workers).
	SearchTime time.Duration
	// Reverted reports that rewrites were found but dropped because the
	// whole-program differential recheck or structural validation failed.
	Reverted bool
}

// rewrite is one accepted replacement: elements [start,end) of the input
// program become repl (already mapped back to actual registers).
type rewrite struct {
	start, end int
	repl       []ebpf.Instruction
}

// Optimize applies the superoptimizer tier to prog and returns the optimized
// program (the input is never mutated; the input pointer is returned
// unchanged when nothing improved). Every applied rewrite has been proven
// equivalent on the vm and the whole output re-checked differentially
// against the input program.
func Optimize(prog *ebpf.Program, cfg Config) (*ebpf.Program, Stats, error) {
	cfg = cfg.withDefaults()
	var st Stats
	defer func() { cfg.Metrics.record(&st) }()

	windows, err := extractWindows(prog)
	if err != nil {
		return nil, st, fmt.Errorf("superopt: %w", err)
	}
	st.Windows = len(windows)
	if len(windows) == 0 {
		return prog, st, nil
	}

	cache := cfg.Cache
	if cache == nil {
		cache = NewMemCache()
	}

	// Canonicalize every window and dedupe by cache key: identical windows
	// share one verdict no matter where (or in which program) they appear.
	type job struct {
		cw  canonWindow
		key string
	}
	keyed := make([]struct {
		win window
		cw  canonWindow
		key string
	}, len(windows))
	seen := map[string]bool{}
	var jobs []job
	for i, w := range windows {
		cw := canonicalize(w)
		key := cacheKey(cw, cfg.ALU32, cfg.Budget)
		keyed[i].win, keyed[i].cw, keyed[i].key = w, cw, key
		if !seen[key] {
			seen[key] = true
			jobs = append(jobs, job{cw: cw, key: key})
		}
	}
	st.UniqueWindows = len(jobs)

	// Resolve verdicts: cache first, then fan the misses out across the
	// worker pool. Each search is independent and deterministic, so the
	// result is scheduling-invariant.
	verdicts := make(map[string]Verdict, len(jobs))
	var misses []job
	for _, j := range jobs {
		if v, ok := cache.Get(j.key); ok {
			st.CacheHits++
			verdicts[j.key] = v
			continue
		}
		st.CacheMisses++
		misses = append(misses, j)
	}
	if len(misses) > 0 {
		st.Searches = len(misses)
		results := make([]Verdict, len(misses))
		candidates := make([]int, len(misses))
		durs := make([]time.Duration, len(misses))
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					start := time.Now()
					results[i], candidates[i] = searchWindow(misses[i].cw, cfg)
					durs[i] = time.Since(start)
				}
			}()
		}
		for i := range misses {
			idx <- i
		}
		close(idx)
		wg.Wait()
		for i, j := range misses {
			verdicts[j.key] = results[i]
			st.Candidates += candidates[i]
			st.SearchTime += durs[i]
			cfg.Metrics.observeSearch(durs[i])
			cache.Put(j.key, results[i])
		}
	}

	// Greedy selection: scan left to right, taking the longest improved
	// window at each position. Windows never overlap, so the per-window
	// live-out proofs compose (see DESIGN.md section 11).
	byStart := map[int][]int{}
	for i := range keyed {
		byStart[keyed[i].win.start] = append(byStart[keyed[i].win.start], i)
	}
	for _, is := range byStart {
		sort.Slice(is, func(a, b int) bool { return keyed[is[a]].win.end > keyed[is[b]].win.end })
	}
	var rewrites []rewrite
	for i := 0; i < len(prog.Insns); {
		advanced := false
		for _, ki := range byStart[i] {
			k := keyed[ki]
			v := verdicts[k.key]
			if !v.Improved {
				continue
			}
			rewrites = append(rewrites, rewrite{
				start: k.win.start,
				end:   k.win.end,
				repl:  mapToActual(v.Repl, k.cw),
			})
			i = k.win.end
			advanced = true
			break
		}
		if !advanced {
			i++
		}
	}
	if len(rewrites) == 0 {
		return prog, st, nil
	}

	out, err := applyRewrites(prog, rewrites)
	if err != nil {
		st.Reverted = true
		return prog, st, nil
	}
	// Final safety net: structural validation plus whole-program
	// differential execution against the input, exactly as internal/guard
	// validates any bytecode pass. A failure here means a proof gap (or an
	// evaluator/vm divergence); the honest answer is to keep the input.
	if err := guard.ValidateProgram(out); err != nil {
		st.Reverted = true
		return prog, st, nil
	}
	inputs := guard.Inputs(prog.Hook, cfg.DiffInputs, cfg.Seed)
	if err := guard.DiffPrograms(prog, out, inputs); err != nil {
		st.Reverted = true
		return prog, st, nil
	}

	st.Rewrites = len(rewrites)
	st.InsnsSaved = prog.NI() - out.NI()
	st.CyclesSaved = uint64(st.InsnsSaved) * vm.DefaultCosts().ALU
	return out, st, nil
}

// applyRewrites splices the accepted replacements into a fresh copy of prog.
// Rewrites are applied last-to-first so earlier indices stay valid; branches
// into a window start are redirected to the replacement (or the successor
// when the replacement is empty) by the Editable primitives.
func applyRewrites(prog *ebpf.Program, rws []rewrite) (*ebpf.Program, error) {
	ed, err := ebpf.MakeEditable(prog.Clone())
	if err != nil {
		return nil, err
	}
	sort.Slice(rws, func(a, b int) bool { return rws[a].start > rws[b].start })
	for _, rw := range rws {
		for k, ins := range rw.repl {
			ed.InsertBefore(rw.start+k, ins)
		}
		base := rw.start + len(rw.repl)
		for i := rw.end - 1; i >= rw.start; i-- {
			ed.Delete(base + (i - rw.start))
		}
	}
	return ed.Finalize()
}

// mapToActual maps a canonical replacement back to the window's original
// registers.
func mapToActual(repl []ebpf.Instruction, cw canonWindow) []ebpf.Instruction {
	out := make([]ebpf.Instruction, len(repl))
	for i, ins := range repl {
		ins.Dst = cw.toActual[ins.Dst]
		if ins.SourceField() == ebpf.SourceX {
			ins.Src = cw.toActual[ins.Src]
		}
		out[i] = ins
	}
	return out
}
