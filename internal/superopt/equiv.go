package superopt

import (
	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// proveEquivalent checks a filter-surviving candidate against the real vm
// interpreter: for every live-out register, a harness program loads the
// live-in registers from a tracepoint-style context, runs the sequence, and
// returns that register. Original and candidate harnesses must agree on
// return value and error behavior for every proof vector.
//
// This is differential proof, not symbolic proof: the vectors are the
// exhaustive small lattice plus seeded random values. The residual risk of a
// coincidental match is further covered by the whole-program differential
// recheck in Optimize.
func proveEquivalent(orig, cand []ebpf.Instruction, liveIn, liveOut []ebpf.Register, vecs [][]uint64, seed int64) bool {
	for _, out := range liveOut {
		mo, err := harnessMachine(orig, liveIn, out, seed)
		if err != nil {
			return false
		}
		mc, err := harnessMachine(cand, liveIn, out, seed)
		if err != nil {
			return false
		}
		for _, vec := range vecs {
			ctx := vm.TracepointContext(vec...)
			r1, _, e1 := mo.Run(ctx, nil)
			r2, _, e2 := mc.Run(ctx, nil)
			if (e1 != nil) != (e2 != nil) {
				return false
			}
			if e1 == nil && r1 != r2 {
				return false
			}
		}
	}
	return true
}

// harnessMachine builds a vm over: load live-ins from ctx (r1 last, since it
// holds the context pointer), run body, return register out.
func harnessMachine(body []ebpf.Instruction, liveIn []ebpf.Register, out ebpf.Register, seed int64) (*vm.Machine, error) {
	return vm.New(harnessProgram(body, liveIn, out), vm.Config{Seed: uint64(seed)})
}

// harnessProgram is the proof harness bytecode shared by the fast-engine
// proof above and the engine-parity regression test, which replays it on
// the reference interpreter.
func harnessProgram(body []ebpf.Instruction, liveIn []ebpf.Register, out ebpf.Register) *ebpf.Program {
	insns := make([]ebpf.Instruction, 0, len(liveIn)+len(body)+2)
	for i, r := range liveIn {
		if r == ebpf.R1 {
			continue
		}
		insns = append(insns, ebpf.LoadMem(ebpf.SizeDW, r, ebpf.R1, int16(8*i)))
	}
	for i, r := range liveIn {
		if r == ebpf.R1 {
			insns = append(insns, ebpf.LoadMem(ebpf.SizeDW, ebpf.R1, ebpf.R1, int16(8*i)))
		}
	}
	insns = append(insns, body...)
	if out != ebpf.R0 {
		insns = append(insns, ebpf.Mov64Reg(ebpf.R0, out))
	}
	insns = append(insns, ebpf.Exit())
	return &ebpf.Program{Name: "superopt-harness", Hook: ebpf.HookTracepoint, MCPU: 3, Insns: insns}
}
