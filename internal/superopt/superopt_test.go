package superopt

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/guard"
)

// xdpProg wraps ALU instructions into a runnable XDP program body.
func xdpProg(insns ...ebpf.Instruction) *ebpf.Program {
	return &ebpf.Program{Name: "t", Hook: ebpf.HookXDP, MCPU: 2, Insns: insns}
}

// checkEquivalent asserts the optimizer output matches the input on sampled
// traffic.
func checkEquivalent(t *testing.T, pre, post *ebpf.Program) {
	t.Helper()
	if err := guard.ValidateProgram(post); err != nil {
		t.Fatalf("output invalid: %v", err)
	}
	if err := guard.DiffPrograms(pre, post, guard.Inputs(pre.Hook, 24, 3)); err != nil {
		t.Fatalf("output diverges: %v", err)
	}
}

// TestEvalSeqMatchesVM cross-checks the fast filter evaluator against the
// real vm on random ALU sequences — the filter may be stricter than the vm
// but never looser, and here it must agree exactly.
func TestEvalSeqMatchesVM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	allOps := []ebpf.ALUOp{
		ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUMul, ebpf.ALUDiv, ebpf.ALUMod,
		ebpf.ALUOr, ebpf.ALUAnd, ebpf.ALUXor, ebpf.ALULsh, ebpf.ALURsh,
		ebpf.ALUArsh, ebpf.ALUNeg, ebpf.ALUMov, ebpf.ALUEnd,
	}
	const nregs = 4
	liveIn := []ebpf.Register{0, 1, 2, 3}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		seq := make([]ebpf.Instruction, n)
		for i := range seq {
			op := allOps[rng.Intn(len(allOps))]
			dst := ebpf.Register(rng.Intn(nregs))
			switch {
			case op == ebpf.ALUEnd:
				width := []int32{16, 32, 64}[rng.Intn(3)]
				seq[i] = ebpf.ALU64Imm(ebpf.ALUEnd, dst, width)
			case op == ebpf.ALUNeg:
				seq[i] = ebpf.ALU64Imm(ebpf.ALUNeg, dst, 0)
			case rng.Intn(2) == 0:
				src := ebpf.Register(rng.Intn(nregs))
				if rng.Intn(2) == 0 {
					seq[i] = ebpf.ALU64Reg(op, dst, src)
				} else {
					seq[i] = ebpf.ALU32Reg(op, dst, src)
				}
			default:
				imm := int32(rng.Uint32())
				if rng.Intn(2) == 0 {
					seq[i] = ebpf.ALU64Imm(op, dst, imm)
				} else {
					seq[i] = ebpf.ALU32Imm(op, dst, imm)
				}
			}
		}
		vecs := randomVectors(nregs, int64(trial), 8)
		for _, out := range liveIn {
			m, err := harnessMachine(seq, liveIn, out, 7)
			if err != nil {
				t.Fatal(err)
			}
			for _, vec := range vecs {
				var rf regFile
				fillRegs(&rf, liveIn, vec)
				evalSeq(seq, &rf)
				got, _, runErr := m.Run(tracepointCtx(vec), nil)
				if runErr != nil {
					t.Fatalf("trial %d: vm error: %v", trial, runErr)
				}
				if uint64(got) != rf[out] {
					t.Fatalf("trial %d: seq %v out r%d: vm=%#x eval=%#x",
						trial, seq, out, uint64(got), rf[out])
				}
			}
		}
	}
}

func tracepointCtx(vec []uint64) []byte {
	ctx := make([]byte, 8*len(vec))
	for i, v := range vec {
		for b := 0; b < 8; b++ {
			ctx[8*i+b] = byte(v >> (8 * b))
		}
	}
	return ctx
}

// TestOptimizeMovChain: a copy-in / modify / copy-back chain folds down to a
// single constant move — the class of rewrite no fixed rule in bopt covers.
func TestOptimizeMovChain(t *testing.T) {
	prog := xdpProg(
		ebpf.Mov64Imm(ebpf.R6, 5),
		ebpf.Mov64Reg(ebpf.R1, ebpf.R6),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, 1),
		ebpf.Mov64Reg(ebpf.R6, ebpf.R1),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R6),
		ebpf.Exit(),
	)
	out, st, err := Optimize(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewrites == 0 || out.NI() >= prog.NI() {
		t.Fatalf("no improvement: stats %+v, NI %d -> %d", st, prog.NI(), out.NI())
	}
	if out.NI() != 2 { // mov r0, 6; exit
		t.Errorf("NI = %d, want 2 (whole chain folds to one mov)", out.NI())
	}
	checkEquivalent(t, prog, out)
}

// TestOptimizeImmFold: consecutive immediates on a non-constant register
// fold into one — outside CP&DCE's reach because the register value is
// unknown at compile time.
func TestOptimizeImmFold(t *testing.T) {
	prog := &ebpf.Program{Name: "t", Hook: ebpf.HookTracepoint, MCPU: 3, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, 5),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, 3),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R2),
		ebpf.Exit(),
	}}
	out, st, err := Optimize(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewrites == 0 || out.NI() >= prog.NI() {
		t.Fatalf("no improvement: stats %+v, NI %d -> %d", st, prog.NI(), out.NI())
	}
	checkEquivalent(t, prog, out)
}

// TestOptimizeDeadWindow: a window whose definitions are all dead is
// replaced by nothing without any search.
func TestOptimizeDeadWindow(t *testing.T) {
	prog := xdpProg(
		ebpf.Mov64Imm(ebpf.R3, 7),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, 9),
		ebpf.Mov64Imm(ebpf.R0, 2),
		ebpf.Exit(),
	)
	out, _, err := Optimize(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NI() != 2 {
		t.Fatalf("NI = %d, want 2 (dead pair removed)", out.NI())
	}
	checkEquivalent(t, prog, out)
}

// TestOptimizeBranchIntoWindowStart: a branch targeting the first
// instruction of a rewritten window must be redirected to the replacement.
func TestOptimizeBranchIntoWindowStart(t *testing.T) {
	prog := xdpProg(
		ebpf.Mov64Imm(ebpf.R6, 1),
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R6, 1, 2), // -> element 4
		ebpf.Mov64Imm(ebpf.R6, 2),
		ebpf.Jump(1), // -> element 5 (skip window start)
		// window: branch target lands here
		ebpf.Mov64Reg(ebpf.R7, ebpf.R6),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R7, 1),
		ebpf.Mov64Reg(ebpf.R6, ebpf.R7),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R6),
		ebpf.Exit(),
	)
	out, _, err := Optimize(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, prog, out)
}

// TestOptimizeDeterministic: identical inputs and configuration produce
// bit-identical outputs regardless of worker count.
func TestOptimizeDeterministic(t *testing.T) {
	prog := &ebpf.Program{Name: "t", Hook: ebpf.HookTracepoint, MCPU: 3, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 8),
		ebpf.Mov64Reg(ebpf.R4, ebpf.R2),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R4, ebpf.R3),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R4),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, 4),
		ebpf.ALU64Imm(ebpf.ALUSub, ebpf.R2, 1),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R2),
		ebpf.Exit(),
	}}
	var outs []*ebpf.Program
	for _, workers := range []int{1, 8} {
		out, _, err := Optimize(prog, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	if !reflect.DeepEqual(outs[0].Insns, outs[1].Insns) {
		t.Errorf("outputs differ across worker counts:\n%v\n%v", outs[0].Insns, outs[1].Insns)
	}
	checkEquivalent(t, prog, outs[0])
}

// TestVerdictCachedUnderBudget: an exhausted search is still memoized, so
// the warm pass skips it, and a different budget does not reuse it.
func TestVerdictCachedUnderBudget(t *testing.T) {
	prog := &ebpf.Program{Name: "t", Hook: ebpf.HookTracepoint, MCPU: 3, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.ALU64Imm(ebpf.ALUMul, ebpf.R2, 37),
		ebpf.ALU64Imm(ebpf.ALUXor, ebpf.R2, 11),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R2),
		ebpf.Exit(),
	}}
	cache := NewMemCache()
	_, st1, err := Optimize(prog, Config{Cache: cache, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Searches == 0 {
		t.Fatal("first pass ran no searches")
	}
	_, st2, err := Optimize(prog, Config{Cache: cache, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Searches != 0 || st2.CacheHits == 0 {
		t.Errorf("second pass: searches=%d hits=%d, want 0 and >0", st2.Searches, st2.CacheHits)
	}
	_, st3, err := Optimize(prog, Config{Cache: cache, Budget: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Searches == 0 {
		t.Error("budget change must not reuse verdicts found under a different budget")
	}
}

// TestCachePersistence: verdicts survive Close/Open, including improved
// verdicts with and without replacement bodies, and a torn journal tail or
// an undecodable entry degrades to a miss instead of an error.
func TestCachePersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Verdict{
		"k-improved": {Improved: true, Repl: []ebpf.Instruction{ebpf.Mov64Imm(0, 6)}},
		"k-dead":     {Improved: true},
		"k-negative": {},
	}
	for k, v := range want {
		c.Put(k, v)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, ok := c2.Get(k)
		if !ok {
			t.Fatalf("key %q lost across reopen", k)
		}
		if got.Improved != v.Improved || len(got.Repl) != len(v.Repl) {
			t.Errorf("key %q: got %+v want %+v", k, got, v)
		}
		if len(v.Repl) > 0 && got.Repl[0] != v.Repl[0] {
			t.Errorf("key %q: replacement corrupted: %+v", k, got.Repl[0])
		}
	}
	// Unknown garbage appended raw to the journal must not poison reloads.
	c2.Put("k-live", Verdict{Improved: true})
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	log := filepath.Join(dir, "journal.log")
	f, err := os.OpenFile(log, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn tail garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	c3, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer c3.Close()
	if _, ok := c3.Get("k-live"); !ok {
		t.Error("intact entry lost after torn tail")
	}
}

// TestCanonicalSharing: windows that differ only in register names share a
// cache key, so one program's search pays for another's hit.
func TestCanonicalSharing(t *testing.T) {
	a := xdpProg(
		ebpf.Mov64Reg(ebpf.R1, ebpf.R6),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, 1),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.Exit(),
	)
	b := xdpProg(
		ebpf.Mov64Reg(ebpf.R3, ebpf.R8),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, 1),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R3),
		ebpf.Exit(),
	)
	wa, err := extractWindows(a)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := extractWindows(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(wa) == 0 || len(wa) != len(wb) {
		t.Fatalf("window counts differ: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		ka := cacheKey(canonicalize(wa[i]), false, DefaultBudget)
		kb := cacheKey(canonicalize(wb[i]), false, DefaultBudget)
		if ka != kb {
			t.Errorf("window %d: keys differ after renaming", i)
		}
	}
	cache := NewMemCache()
	if _, _, err := Optimize(a, Config{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	_, st, err := Optimize(b, Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if st.Searches != 0 {
		t.Errorf("renamed twin ran %d searches, want all verdicts shared", st.Searches)
	}
}

// TestWindowsExcludeUnsafeInstructions: memory, control flow and the frame
// pointer never appear inside a window.
func TestWindowsExcludeUnsafeInstructions(t *testing.T) {
	prog := &ebpf.Program{Name: "t", Hook: ebpf.HookTracepoint, MCPU: 3, Insns: []ebpf.Instruction{
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),              // fp read: not windowable
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -8),       // fp-derived but plain ALU: windowable
		ebpf.StoreImm(ebpf.SizeW, ebpf.R2, 0, 1),      // store: not windowable
		ebpf.LoadMem(ebpf.SizeW, ebpf.R3, ebpf.R2, 0), // load: not windowable
		ebpf.Mov64Reg(ebpf.R0, ebpf.R3),
		ebpf.Exit(),
	}}
	ws, err := extractWindows(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		for _, ins := range w.insns {
			if !windowable(ins) {
				t.Errorf("window [%d,%d) contains non-ALU %v", w.start, w.end, ins)
			}
		}
	}
}
