package superopt_test

import (
	"fmt"
	"testing"

	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/metrics"
	"merlin/internal/superopt"
	"merlin/internal/vm"
)

// buildMerlinOnly compiles every XDP corpus program through the full Merlin
// pipeline without the superopt tier.
func buildMerlinOnly(t *testing.T) map[string]*ebpf.Program {
	t.Helper()
	progs := map[string]*ebpf.Program{}
	for _, spec := range corpus.XDP() {
		res, err := core.Build(spec.Mod, spec.Func, core.Options{
			Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		progs[spec.Name] = res.Prog
	}
	return progs
}

// totalCycles runs prog over the sampled inputs with a metrics-instrumented
// vm and reads the cycle total back from the run histogram, as the
// acceptance criterion prescribes.
func totalCycles(t *testing.T, prog *ebpf.Program, inputs []guard.Input) uint64 {
	t.Helper()
	reg := metrics.New()
	m, err := vm.New(prog, vm.Config{Seed: 7, Metrics: vm.NewMetrics(reg)})
	if err != nil {
		t.Fatalf("%s: vm.New: %v", prog.Name, err)
	}
	for _, in := range inputs {
		_, _, _ = m.Run(in.Ctx, in.Pkt)
	}
	cycles, ok := reg.Snapshot()["merlin_vm_run_cycles_sum"]
	if !ok {
		t.Fatalf("%s: run cycle histogram missing", prog.Name)
	}
	return uint64(cycles)
}

// TestCorpusColdWarm is the tier's acceptance scenario end to end: a cold
// pass over the whole XDP corpus must find proven rewrites that strictly
// reduce VM cycles on at least two programs while every program stays
// semantically identical; a warm pass over the same corpus with the same
// persistent cache must run zero enumerative searches.
func TestCorpusColdWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the whole corpus")
	}
	progs := buildMerlinOnly(t)

	dir := t.TempDir()
	cache, err := superopt.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := superopt.Config{Cache: cache, ALU32: true}

	optimized := map[string]*ebpf.Program{}
	improved := 0
	var cold superopt.Stats
	for name, prog := range progs {
		out, st, err := superopt.Optimize(prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		optimized[name] = out
		cold.Windows += st.Windows
		cold.CacheHits += st.CacheHits
		cold.Searches += st.Searches
		cold.Rewrites += st.Rewrites
		if st.Reverted {
			t.Errorf("%s: rewrites reverted by whole-program recheck", name)
		}

		// Semantics: byte-identical results (return values, fault behavior,
		// map contents) on sampled traffic, for every corpus program.
		inputs := guard.Inputs(prog.Hook, 32, 11)
		if err := guard.DiffPrograms(prog, out, inputs); err != nil {
			t.Errorf("%s: superopt output diverges: %v", name, err)
		}
		if st.Rewrites > 0 {
			before := totalCycles(t, prog, inputs)
			after := totalCycles(t, out, inputs)
			t.Logf("%s: rewrites=%d insns %d->%d cycles %d->%d",
				name, st.Rewrites, prog.NI(), out.NI(), before, after)
			if after < before {
				improved++
			}
		}
	}
	if cold.Windows == 0 {
		t.Fatal("no windows extracted from the corpus")
	}
	if improved < 2 {
		t.Errorf("superopt strictly reduced VM cycles on %d corpus programs, want >= 2", improved)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm pass: reopen the cache from disk; every window must be served
	// from it without a single search, and the output must be unchanged.
	cache2, err := superopt.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cache2.Close()
	cfg.Cache = cache2
	var warm superopt.Stats
	for name, prog := range progs {
		out, st, err := superopt.Optimize(prog, cfg)
		if err != nil {
			t.Fatalf("%s: warm: %v", name, err)
		}
		warm.CacheHits += st.CacheHits
		warm.CacheMisses += st.CacheMisses
		warm.Searches += st.Searches
		if fmt.Sprint(out.Insns) != fmt.Sprint(optimized[name].Insns) {
			t.Errorf("%s: warm output differs from cold output", name)
		}
	}
	if warm.Searches != 0 || warm.CacheMisses != 0 {
		t.Errorf("warm pass ran %d searches (%d misses), want 0", warm.Searches, warm.CacheMisses)
	}
	if warm.CacheHits == 0 {
		t.Error("warm pass reported zero cache hits")
	}
}
