// Package k2 reimplements the K2 baseline (Xu et al., SIGCOMM '21): a
// stochastic-search bytecode optimizer that proposes random program
// mutations and keeps those that are cheaper, equivalent, and verifiable.
//
// Faithfulness notes (also documented in DESIGN.md):
//
//   - Real K2 proves equivalence with an SMT solver; this reproduction uses
//     differential execution over a seeded input corpus plus mandatory
//     verifier acceptance, which captures K2's observable behaviour for the
//     paper's comparisons.
//   - Real K2's search takes minutes to days; this reproduction runs a
//     budgeted search and models the paper's reported wall time with a
//     calibrated exponential (xdp-balancer, 1771 insns ≈ 2.5 days), which
//     Fig 13b consumes.
//   - Table 2's restrictions are enforced: XDP programs only, v2 ISA only
//     (no ALU32/JMP32), a limited formalized helper set, and a practical
//     size ceiling.
package k2

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
	"merlin/internal/verifier"
)

// FormalizedHelpers is the helper subset K2's models cover (Table 2:
// "Limited").
var FormalizedHelpers = map[int]bool{
	helpers.MapLookupElem: true,
	helpers.MapUpdateElem: true,
	helpers.MapDeleteElem: true,
	helpers.Redirect:      true,
	helpers.RedirectMap:   true,
	helpers.KtimeGetNS:    true,
}

// MaxProgramSize is the practical NI ceiling for a < 2-day search (Table 2).
const MaxProgramSize = 2000

// Options configures the search.
type Options struct {
	Seed int64
	// Iterations caps the MCMC proposals; 0 picks a budget from the
	// program size.
	Iterations int
	// TestInputs is the differential-testing corpus size.
	TestInputs int
	// Beta is the Metropolis acceptance temperature.
	Beta float64
}

// Stats reports the search outcome.
type Stats struct {
	Iterations  int
	Accepted    int
	Improved    int
	NIBefore    int
	NIAfter     int
	SearchTime  time.Duration
	ModeledTime time.Duration // what the real system would have taken
}

// ModeledSearchTime is the calibrated wall-time model for the real K2:
// exponential in program size, anchored so an 18-insn program costs about a
// minute and the 1771-insn xdp-balancer about 2.5 days (§2.3, §5.5).
func ModeledSearchTime(ni int) time.Duration {
	seconds := 60 * math.Pow(2, float64(ni)/150)
	return time.Duration(seconds * float64(time.Second))
}

// Optimize runs the search on prog. It returns an equivalent program that is
// never worse than the input, or an error when prog is outside K2's
// supported envelope.
func Optimize(prog *ebpf.Program, opts Options) (*ebpf.Program, Stats, error) {
	st := Stats{NIBefore: prog.NI()}
	if err := Supports(prog); err != nil {
		return nil, st, err
	}
	if opts.TestInputs <= 0 {
		opts.TestInputs = 16
	}
	if opts.Beta == 0 {
		opts.Beta = 0.15
	}
	if opts.Iterations <= 0 {
		// Budget shrinks for large programs, mirroring how the real search
		// degrades: it stops before finding the optimum (§5.2).
		opts.Iterations = 4000
		if prog.NI() > 200 {
			opts.Iterations = 1500
		}
		if prog.NI() > 1000 {
			opts.Iterations = 600
		}
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed*1000003 + int64(prog.NI())))

	oracle, err := newOracle(prog, opts.TestInputs, rng)
	if err != nil {
		return nil, st, fmt.Errorf("k2: building test oracle: %w", err)
	}

	cur := prog.Clone()
	curCost := oracle.cost(cur)
	best := cur.Clone()
	bestCost := curCost

	for i := 0; i < opts.Iterations; i++ {
		cand, ok := mutate(cur, rng)
		if !ok {
			continue
		}
		if !verifier.Verify(cand, verifier.Options{Limits: verifier.Limits{MaxProcessedInsns: 200000, MaxStates: 10000}}).Passed {
			continue
		}
		if !oracle.equivalent(cand) {
			continue
		}
		c := oracle.cost(cand)
		accept := c <= curCost
		if !accept {
			// Metropolis: occasionally walk uphill.
			accept = rng.Float64() < math.Exp(-opts.Beta*float64(c-curCost))
		}
		if accept {
			cur, curCost = cand, c
			st.Accepted++
			if c < bestCost {
				best, bestCost = cand.Clone(), c
				st.Improved++
			}
		}
	}
	st.Iterations = opts.Iterations
	st.NIAfter = best.NI()
	st.SearchTime = time.Since(start)
	st.ModeledTime = ModeledSearchTime(prog.NI())
	return best, st, nil
}

// Supports reports whether prog is inside K2's envelope (Table 2).
func Supports(prog *ebpf.Program) error {
	if prog.Hook != ebpf.HookXDP {
		return fmt.Errorf("k2: only XDP programs are supported (got %s)", prog.Hook)
	}
	if prog.NI() > MaxProgramSize {
		return fmt.Errorf("k2: program too large for search (%d > %d insns)", prog.NI(), MaxProgramSize)
	}
	for i, ins := range prog.Insns {
		switch ins.Class() {
		case ebpf.ClassALU:
			// Byte swaps live in the ALU class but predate v3.
			if ins.ALUOpField() != ebpf.ALUEnd {
				return fmt.Errorf("k2: v3 instruction at %d not supported (v2 ISA only)", i)
			}
		case ebpf.ClassJMP32:
			return fmt.Errorf("k2: v3 instruction at %d not supported (v2 ISA only)", i)
		}
		if ins.IsCall() && !FormalizedHelpers[int(ins.Imm)] {
			return fmt.Errorf("k2: helper %d not formalized", ins.Imm)
		}
	}
	return nil
}
