package k2

import (
	"strings"
	"testing"
	"time"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
	"merlin/internal/verifier"
	"merlin/internal/vm"
)

// wastefulProg contains easy-to-find slack: a dead mov and a two-step store.
func wastefulProg() *ebpf.Program {
	return &ebpf.Program{
		Name: "waste",
		Hook: ebpf.HookXDP,
		Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R4, 99), // dead
			ebpf.Mov64Imm(ebpf.R1, 1),
			ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1),
			ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R10, -8),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R0, 1),
			ebpf.Exit(),
		},
	}
}

func TestOptimizeFindsImprovements(t *testing.T) {
	prog := wastefulProg()
	out, st, err := Optimize(prog, Options{Seed: 1, Iterations: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if st.NIAfter > st.NIBefore {
		t.Fatalf("K2 made the program bigger: %d → %d", st.NIBefore, st.NIAfter)
	}
	if st.NIAfter >= st.NIBefore {
		t.Logf("no improvement found in budget (NI %d); acceptable but unusual", st.NIAfter)
	}
	// The result must still verify and be semantically equal.
	if !verifier.Verify(out, verifier.Options{}).Passed {
		t.Fatal("K2 output rejected by verifier")
	}
	for _, n := range []int{1, 14, 60} {
		pkt := make([]byte, n)
		want := run(t, prog, pkt)
		got := run(t, out, pkt)
		if want != got {
			t.Fatalf("pkt len %d: want %d, got %d", n, want, got)
		}
	}
}

func run(t *testing.T, p *ebpf.Program, pkt []byte) int64 {
	t.Helper()
	m, err := vm.New(p, vm.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ret, _, err := m.Run(vm.BuildXDPContext(len(pkt)), pkt)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return ret
}

func TestOptimizeDeterministic(t *testing.T) {
	a, sa, err := Optimize(wastefulProg(), Options{Seed: 42, Iterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Optimize(wastefulProg(), Options{Seed: 42, Iterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if sa.NIAfter != sb.NIAfter || a.NI() != b.NI() {
		t.Fatalf("same seed diverged: %d vs %d", a.NI(), b.NI())
	}
}

func TestSupportsRestrictions(t *testing.T) {
	tp := wastefulProg()
	tp.Hook = ebpf.HookTracepoint
	if err := Supports(tp); err == nil || !strings.Contains(err.Error(), "XDP") {
		t.Fatalf("err = %v, want XDP restriction", err)
	}

	v3 := wastefulProg()
	v3.Insns[1] = ebpf.Mov32Imm(ebpf.R1, 1)
	if err := Supports(v3); err == nil || !strings.Contains(err.Error(), "v2") {
		t.Fatalf("err = %v, want v2 restriction", err)
	}

	helper := wastefulProg()
	helper.Insns = append([]ebpf.Instruction{ebpf.Call(helpers.GetPrandomU32)}, helper.Insns...)
	if err := Supports(helper); err == nil || !strings.Contains(err.Error(), "formalized") {
		t.Fatalf("err = %v, want helper restriction", err)
	}

	big := wastefulProg()
	for len(big.Insns) < MaxProgramSize+10 {
		big.Insns = append(big.Insns[:len(big.Insns)-1], ebpf.Mov64Imm(ebpf.R3, 0), ebpf.Exit())
	}
	if err := Supports(big); err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("err = %v, want size restriction", err)
	}
}

func TestModeledSearchTimeCalibration(t *testing.T) {
	small := ModeledSearchTime(18)
	if small < 30*time.Second || small > 5*time.Minute {
		t.Fatalf("18-insn model = %v", small)
	}
	big := ModeledSearchTime(1771)
	if big < 36*time.Hour || big > 96*time.Hour {
		t.Fatalf("1771-insn model = %v, want ≈ 2-3 days", big)
	}
	if ModeledSearchTime(100) >= ModeledSearchTime(1000) {
		t.Fatal("model must grow with size")
	}
}

func TestOptimizePreservesMapSemantics(t *testing.T) {
	prog := &ebpf.Program{
		Name: "mapcount",
		Hook: ebpf.HookXDP,
		Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R1, 0),
			ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R1),
			ebpf.LoadMapPtr(ebpf.R1, 0),
			ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
			ebpf.Call(helpers.MapLookupElem),
			ebpf.JumpImm(ebpf.JumpNE, ebpf.R0, 0, 2),
			ebpf.Mov64Imm(ebpf.R0, 1),
			ebpf.Exit(),
			ebpf.Mov64Imm(ebpf.R1, 1),
			ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R0, 0, ebpf.R1),
			ebpf.Mov64Imm(ebpf.R0, 2),
			ebpf.Exit(),
		},
		Maps: []ebpf.MapSpec{{Name: "c", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 2}},
	}
	out, _, err := Optimize(prog, Options{Seed: 3, Iterations: 400})
	if err != nil {
		t.Fatal(err)
	}
	// Count with both and compare map contents.
	check := func(p *ebpf.Program) byte {
		m, _ := vm.New(p, vm.Config{Seed: 7})
		for i := 0; i < 3; i++ {
			pkt := make([]byte, 20)
			if _, _, err := m.Run(vm.BuildXDPContext(len(pkt)), pkt); err != nil {
				t.Fatal(err)
			}
		}
		return m.Map(0).Backing()[0]
	}
	if check(prog) != check(out) {
		t.Fatal("map side effects diverged")
	}
}
