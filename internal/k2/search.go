package k2

import (
	"bytes"
	"math/rand"

	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// oracle holds the differential-testing corpus and evaluates candidate
// programs for equivalence and cost.
type oracle struct {
	ref     *ebpf.Program
	packets [][]byte
	want    []outcome
}

type outcome struct {
	ret  int64
	maps []byte // concatenated map backings after the run
	pkt  []byte // final packet contents (XDP programs rewrite packets)
	err  bool
}

func newOracle(prog *ebpf.Program, n int, rng *rand.Rand) (*oracle, error) {
	o := &oracle{ref: prog}
	for i := 0; i < n; i++ {
		ln := 64 + rng.Intn(64)
		if i%5 == 4 {
			ln = 14 + rng.Intn(24) // short frames exercise bounds failures
		}
		pkt := make([]byte, ln)
		rng.Read(pkt)
		// Bias well-formed headers so parsers take their match arms: most
		// packets are IPv4 with TCP or UDP payloads.
		if i%4 != 3 && ln >= 34 {
			pkt[12], pkt[13] = 0x08, 0x00
			pkt[14] = 0x45
			if i%2 == 0 {
				pkt[14+9] = 6 // TCP
			} else {
				pkt[14+9] = 17 // UDP
			}
		}
		o.packets = append(o.packets, pkt)
	}
	// Also the degenerate tiny packet.
	o.packets = append(o.packets, make([]byte, 1))
	for _, pkt := range o.packets {
		o.want = append(o.want, runOutcome(prog, pkt))
	}
	return o, nil
}

// populateMaps fills the machine's maps with deterministic contents so
// lookup-dependent program paths execute under the test oracle. Real K2
// feeds the solver symbolic map state; without population, code guarded by
// map hits would look dead and get "optimized" away unsoundly. Array maps
// are filled wholesale; hash maps get keys derived from the test packets at
// the header offsets parsers read (addresses, 5-tuples, connection IDs).
func populateMaps(m *vm.Machine, prog *ebpf.Program, packets [][]byte) {
	for mi, spec := range prog.Maps {
		mp := m.Map(mi)
		val := make([]byte, spec.ValueSize)
		for i := range val {
			// Values vary with the test input so a candidate cannot pass by
			// constant-folding through map contents (real K2 treats map
			// state symbolically).
			val[i] = byte(mi*37 + i + 1)
			for _, pkt := range packets {
				if len(pkt) > 0 {
					val[i] ^= pkt[(i*13+7)%len(pkt)]
				}
			}
		}
		switch spec.Kind {
		case 0, 2: // array, per-CPU array
			key := make([]byte, 4)
			for idx := 0; idx < spec.MaxEntries; idx++ {
				key[0], key[1], key[2], key[3] = byte(idx), byte(idx>>8), byte(idx>>16), byte(idx>>24)
				_ = mp.Update(key, val, 0)
			}
		case 1: // hash: derive plausible keys from packet headers
			// Alternate two value patterns so verdict-style fields (action
			// flags in byte 0) take both arms under the oracle.
			val2 := append([]byte(nil), val...)
			val2[0] = 1
			flip := false
			insert := func(key []byte) {
				if len(key) != spec.KeySize {
					return
				}
				v := val
				if flip {
					v = val2
				}
				flip = !flip
				_ = mp.Update(key, v, 0)
			}
			for _, pkt := range packets {
				if len(pkt) < 42 {
					continue
				}
				switch spec.KeySize {
				case 4:
					insert(append([]byte(nil), pkt[14+12:14+16]...)) // saddr
					insert(append([]byte(nil), pkt[14+16:14+20]...)) // daddr
				case 8:
					insert(append([]byte(nil), pkt[14+12:14+20]...)) // sa||da
					// da||sa (programs often build (sa<<32)|da, whose LE
					// byte order is da first).
					rev := make([]byte, 8)
					copy(rev[0:4], pkt[14+16:14+20])
					copy(rev[4:8], pkt[14+12:14+16])
					insert(rev)
					if len(pkt) >= 14+20+8+9 {
						insert(append([]byte(nil), pkt[14+20+8+1:14+20+8+9]...)) // QUIC CID
					}
					// Route-table style keys: (prefix_len << 32) | masked_daddr.
					da := uint32(pkt[14+16]) | uint32(pkt[14+17])<<8 | uint32(pkt[14+18])<<16 | uint32(pkt[14+19])<<24
					for _, plen := range []uint32{32, 24, 16, 8} {
						masked := da & (uint32(0xffffffff) >> (32 - plen)) // low plen bits
						key := make([]byte, 8)
						key[0], key[1], key[2], key[3] = byte(masked), byte(masked>>8), byte(masked>>16), byte(masked>>24)
						key[4] = byte(plen)
						insert(key)
					}
				case 16:
					// parseFiveTuple layout: sa, da, sp, dp, proto, pad.
					key := make([]byte, 16)
					copy(key[0:4], pkt[14+12:14+16])
					copy(key[4:8], pkt[14+16:14+20])
					copy(key[8:10], pkt[14+20:14+22])
					copy(key[10:12], pkt[14+22:14+24])
					key[12] = pkt[14+9]
					insert(key)
				}
			}
		}
	}
}

func runOutcome(prog *ebpf.Program, pkt []byte) outcome {
	m, err := vm.New(prog, vm.Config{Seed: 7})
	if err != nil {
		return outcome{err: true}
	}
	populateMaps(m, prog, [][]byte{pkt})
	buf := append([]byte(nil), pkt...) // programs may rewrite the packet
	ctx := vm.BuildXDPContext(len(buf))
	ret, _, err := m.Run(ctx, buf)
	if err != nil {
		return outcome{err: true}
	}
	var maps []byte
	for i := 0; i < len(prog.Maps); i++ {
		maps = append(maps, m.Map(i).Backing()...)
	}
	return outcome{ret: ret, maps: maps, pkt: buf}
}

// equivalent checks the candidate against the recorded outcomes.
func (o *oracle) equivalent(cand *ebpf.Program) bool {
	for i, pkt := range o.packets {
		got := runOutcome(cand, pkt)
		want := o.want[i]
		if got.err != want.err || got.ret != want.ret ||
			!bytes.Equal(got.maps, want.maps) || !bytes.Equal(got.pkt, want.pkt) {
			return false
		}
	}
	return true
}

// cost scores a program: size plus measured cycles over the corpus — the
// same composite objective K2 optimizes.
func (o *oracle) cost(p *ebpf.Program) int {
	cycles := uint64(0)
	m, err := vm.New(p, vm.Config{Seed: 7})
	if err != nil {
		return 1 << 30
	}
	populateMaps(m, p, o.packets)
	for _, pkt := range o.packets {
		// Run on a copy: programs rewrite packets, and the oracle's inputs
		// must stay pristine.
		buf := append([]byte(nil), pkt...)
		ctx := vm.BuildXDPContext(len(buf))
		_, st, err := m.Run(ctx, buf)
		if err != nil {
			return 1 << 30
		}
		cycles += st.Cycles
	}
	return p.NI()*100 + int(cycles)
}

// mutate proposes one random rewrite of the program. It returns false when
// the proposal is structurally impossible.
func mutate(p *ebpf.Program, rng *rand.Rand) (*ebpf.Program, bool) {
	ed, err := ebpf.MakeEditable(p)
	if err != nil {
		return nil, false
	}
	n := len(ed.Insns)
	if n <= 1 {
		return nil, false
	}
	switch rng.Intn(4) {
	case 0: // delete a random non-branch, non-exit instruction
		i := rng.Intn(n)
		ins := ed.Insns[i]
		if ins.IsExit() || ins.IsCondJump() || ins.IsUncondJump() || ins.IsCall() {
			return nil, false
		}
		ed.Delete(i)
	case 1: // replace an ALU op with a random cheaper/equal form
		i := rng.Intn(n)
		ins := ed.Insns[i]
		if !ins.Class().IsALU() {
			return nil, false
		}
		repl := randomALU(ins, rng)
		ed.Replace(i, repl)
	case 2: // rewrite a register-store into a store-immediate guess
		i := rng.Intn(n)
		ins := ed.Insns[i]
		if ins.Class() != ebpf.ClassSTX || ins.ModeField() != ebpf.ModeMEM {
			return nil, false
		}
		ed.Replace(i, ebpf.StoreImm(ins.SizeField(), ins.Dst, ins.Offset, int32(rng.Intn(3))))
	case 3: // swap two adjacent non-control instructions
		if n < 2 {
			return nil, false
		}
		i := rng.Intn(n - 1)
		a, b := ed.Insns[i], ed.Insns[i+1]
		if a.IsCondJump() || a.IsUncondJump() || a.IsExit() || a.IsCall() ||
			b.IsCondJump() || b.IsUncondJump() || b.IsExit() || b.IsCall() {
			return nil, false
		}
		ed.Insns[i], ed.Insns[i+1] = b, a
	}
	out, err := ed.Finalize()
	if err != nil {
		return nil, false
	}
	return out, true
}

// randomALU perturbs an ALU instruction into a nearby form.
func randomALU(ins ebpf.Instruction, rng *rand.Rand) ebpf.Instruction {
	out := ins
	switch rng.Intn(3) {
	case 0: // tweak the immediate
		if ins.SourceField() == ebpf.SourceK {
			out.Imm = ins.Imm + int32(rng.Intn(3)-1)
		}
	case 1: // change the operation
		ops := []ebpf.ALUOp{ebpf.ALUAdd, ebpf.ALUSub, ebpf.ALUOr, ebpf.ALUAnd, ebpf.ALUXor, ebpf.ALUMov}
		op := ops[rng.Intn(len(ops))]
		out.Opcode = uint8(ebpf.ClassALU64) | uint8(ins.SourceField()) | uint8(op)
	case 2: // flip imm/reg form keeping dst
		if ins.SourceField() == ebpf.SourceK {
			out.Opcode = ins.Opcode | uint8(ebpf.SourceX)
			out.Src = ebpf.Register(rng.Intn(10))
			out.Imm = 0
		}
	}
	return out
}
