// Package corpus provides the benchmark programs the paper evaluates on
// (Table 1): 19 XDP programs modelled on the Linux kernel samples, Meta's
// load balancer, hXDP and Cilium, plus generators that produce the
// Sysdig/Tetragon/Tracee-like security suites with matching size
// distributions. All programs are written in (or generated as) the IR of
// internal/ir and compile through the full pipeline.
package corpus

import (
	"fmt"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
	"merlin/internal/ir"
)

// ProgramSpec couples an IR module with its build parameters.
type ProgramSpec struct {
	Name  string
	Suite string // "xdp", "sysdig", "tetragon", "tracee"
	Mod   *ir.Module
	Func  string
	Hook  ebpf.HookType
	MCPU  int
}

// pb wraps the IR builder with eBPF program idioms shared across the corpus.
type pb struct {
	*ir.Builder
	ctx *ir.Param
}

func newProg(name string) (*pb, *ir.Param) {
	ctx := &ir.Param{Name: "ctx", Ty: ir.Ptr}
	b := ir.NewModule(name)
	b.NewFunc(name, ctx)
	return &pb{Builder: b, ctx: ctx}, ctx
}

// loadData returns a fresh packet-data pointer (ctx field 0).
func (p *pb) loadData() *ir.Instr { return p.Load(ir.Ptr, p.ctx, 8) }

// loadEnd returns the packet-end pointer (ctx field 8).
func (p *pb) loadEnd() *ir.Instr {
	ep := p.GEPc(p.ctx, 8)
	return p.Load(ir.Ptr, ep, 8)
}

// boundsCheck emits "if data+n > data_end goto fail" and leaves the builder
// positioned in the ok block. The packet pointer must be re-derived with
// loadData inside any later block that needs it.
func (p *pb) boundsCheck(n int64, fail *ir.Block, okName string) *ir.Block {
	data := p.loadData()
	end := p.loadEnd()
	lim := p.Bin(ir.Add, ir.I64, data, ir.ConstInt(ir.I64, n))
	oob := p.ICmp(ir.UGT, lim, end)
	ok := p.Block(okName)
	p.CondBr(oob, fail, ok)
	p.SetBlock(ok)
	return ok
}

// fieldBE16 loads a big-endian u16 at packet offset off (align 1, packed)
// and converts it to host order with bswap — the ntohs every parser does.
func (p *pb) fieldBE16(data *ir.Instr, off int64) *ir.Instr {
	fp := p.GEPc(data, off)
	v := p.Load(ir.I16, fp, 1)
	sw := p.Bswap(ir.I16, v)
	return p.ZExt(ir.I64, sw)
}

// field loads width bytes at packet offset off with the given alignment
// attribute (align 1 models packed network structs) and zero-extends to i64.
func (p *pb) field(data *ir.Instr, off int64, ty ir.Type, align int) *ir.Instr {
	fp := p.GEPc(data, off)
	v := p.Load(ty, fp, align)
	if ty == ir.I64 {
		return v
	}
	return p.ZExt(ir.I64, v)
}

// storeField writes val (i64-typed) at packet offset off with width ty.
func (p *pb) storeField(data *ir.Instr, off int64, ty ir.Type, align int, val ir.Value) {
	fp := p.GEPc(data, off)
	if ty != ir.I64 {
		v := p.Trunc(ty, val)
		p.Store(fp, v, align)
		return
	}
	p.Store(fp, val, align)
}

// keySlot allocates a 4-byte stack key holding a constant.
func (p *pb) keySlot(v int64) *ir.Instr {
	k := p.Alloca(4, 4)
	p.Store(k, ir.ConstInt(ir.I32, v), 4)
	return k
}

// mapBump emits the canonical per-key counter increment: lookup, null
// check, load/add/store on the value (macro-op fusion's favourite shape).
// It leaves the builder in the continuation block.
func (p *pb) mapBump(md *ir.MapDef, key *ir.Instr, contName string) {
	vslot := findOrMakeSlot(p)
	mp := p.MapPtr(md)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(vslot, v, 8)
	isNull := p.ICmp(ir.EQ, v, ir.ConstInt(ir.I64, 0))
	cont := p.Block(contName)
	bump := p.Block(contName + "_bump")
	p.CondBr(isNull, cont, bump)
	p.SetBlock(bump)
	vp := p.Load(ir.Ptr, vslot, 8)
	old := p.Load(ir.I64, vp, 8)
	inc := p.Bin(ir.Add, ir.I64, old, ir.ConstInt(ir.I64, 1))
	p.Store(vp, inc, 8)
	p.Br(cont)
	p.SetBlock(cont)
}

// findOrMakeSlot reuses a per-function 8-byte scratch alloca in the entry
// block (allocas are function-scoped only when they live in the entry).
func findOrMakeSlot(p *pb) *ir.Instr {
	entry := p.Fn.Entry()
	for _, in := range entry.Instrs {
		if in.Op == ir.OpAlloca && in.Size == 8 && in.Name == "vscratch" {
			return in
		}
	}
	slot := &ir.Instr{Name: "vscratch", Op: ir.OpAlloca, Size: 8, Align: 8}
	// Insert at the top of entry so it is function-scoped.
	entry.Instrs = append([]*ir.Instr{slot}, entry.Instrs...)
	slot.Parent = entry
	return slot
}

// jhashRound emits one round of Jenkins-style mixing on three i32 values,
// producing shift/xor/sub chains whose masking the bytecode tier optimizes.
func (p *pb) jhashRound(a, b, c ir.Value) (ir.Value, ir.Value, ir.Value) {
	mix := func(x, y, z ir.Value, k int64) (ir.Value, ir.Value) {
		t := p.Bin(ir.Sub, ir.I32, x, y)
		t = p.Bin(ir.Xor, ir.I32, t, p.Bin(ir.LShr, ir.I32, z, ir.ConstInt(ir.I32, k)))
		return t, z
	}
	a2, _ := mix(a, b, c, 13)
	b2, _ := mix(b, c, a2, 8)
	c2, _ := mix(c, a2, b2, 28)
	return a2, b2, c2
}

// validate panics when a generated module is malformed — corpus builders are
// compile-time-fixed, so a failure is a programming error.
func mustValidate(m *ir.Module) *ir.Module {
	if err := ir.Validate(m); err != nil {
		panic(fmt.Sprintf("corpus: generated invalid IR: %v", err))
	}
	return m
}
