package corpus

import (
	"testing"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/ir"
	"merlin/internal/vm"
)

func buildOpts(spec *ProgramSpec) core.Options {
	return core.Options{Hook: spec.Hook, MCPU: spec.MCPU, KernelALU32: true, Verify: true}
}

func TestXDPCorpusShape(t *testing.T) {
	specs := XDP()
	if len(specs) != 19 {
		t.Fatalf("XDP count = %d, want 19", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
		if s.MCPU != 2 || s.Hook != ebpf.HookXDP {
			t.Errorf("%s: wrong build params", s.Name)
		}
	}
	if !names["xdp-balancer"] || !names["xdp2"] || !names["xdp_fwd"] || !names["xdp_router_ipv4"] {
		t.Error("missing the Table 3 programs")
	}
}

// TestXDPBuildVerifyAndSizes is the paper's headline safety claim on our
// corpus: every program compiles, every optimized program passes the
// verifier, and sizes span the Table 1 spread.
func TestXDPBuildVerifyAndSizes(t *testing.T) {
	minNI, maxNI, total := 1<<30, 0, 0
	for _, spec := range XDP() {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		ni := res.Baseline.NI()
		total += ni
		if ni < minNI {
			minNI = ni
		}
		if ni > maxNI {
			maxNI = ni
		}
		if res.Prog.NI() > ni {
			t.Errorf("%s: optimization grew the program %d → %d", spec.Name, ni, res.Prog.NI())
		}
	}
	avg := total / 19
	t.Logf("XDP sizes: min=%d max=%d avg=%d (paper: 18/1771/141)", minNI, maxNI, avg)
	if minNI > 60 {
		t.Errorf("smallest program too big: %d", minNI)
	}
	if maxNI < 900 || maxNI > 4000 {
		t.Errorf("largest program out of band: %d (want ≈1771)", maxNI)
	}
	if avg < 40 || avg > 500 {
		t.Errorf("average out of band: %d (want ≈141)", avg)
	}
}

// TestXDPSemanticEquivalence runs baseline vs optimized on packet inputs.
func TestXDPSemanticEquivalence(t *testing.T) {
	packets := testPackets()
	for _, spec := range XDP() {
		res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		base, err := vm.New(res.Baseline, vm.Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := vm.New(res.Prog, vm.Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for pi, pkt := range packets {
			ctx := vm.BuildXDPContext(len(pkt))
			wantRet, _, err1 := base.Run(ctx, pkt)
			gotRet, _, err2 := opt.Run(ctx, pkt)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s pkt %d: error divergence: %v vs %v", spec.Name, pi, err1, err2)
			}
			if wantRet != gotRet {
				t.Fatalf("%s pkt %d: ret %d vs %d", spec.Name, pi, wantRet, gotRet)
			}
		}
		// Map side effects must match too.
		for i := range res.Prog.Maps {
			b := base.Map(i).Backing()
			o := opt.Map(i).Backing()
			if string(b) != string(o) {
				t.Fatalf("%s: map %d contents diverged", spec.Name, i)
			}
		}
	}
}

// testPackets returns a deterministic packet mix: IPv4/TCP-ish frames,
// non-IP frames, and short frames.
func testPackets() [][]byte {
	var out [][]byte
	mk := func(n int, proto uint16, fill byte) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(i) ^ fill
		}
		if n >= 14 {
			p[12] = byte(proto & 0xff)
			p[13] = byte(proto >> 8)
		}
		if n >= 34 {
			p[14] = 0x45
			p[14+9] = 6 // TCP
		}
		return p
	}
	out = append(out,
		mk(64, 0x0008, 0x00),  // IPv4
		mk(64, 0x0008, 0x5a),  // IPv4, different bytes
		mk(128, 0xdd86, 0x10), // IPv6 ethertype → non-match path
		mk(60, 0x0608, 0x01),  // ARP
		mk(14, 0x0008, 0x00),  // header only
		mk(13, 0, 0),          // runt
		mk(640, 0x0008, 0x33), // large
	)
	// UDP qualifier for the QUIC program.
	udp := mk(96, 0x0008, 0x07)
	udp[14+9] = 17
	out = append(out, udp)
	return out
}

func TestSuiteShapes(t *testing.T) {
	cases := []struct {
		name  string
		specs []*ProgramSpec
		shape suiteShape
	}{
		{"sysdig", Sysdig(), sysdigShape},
		{"tetragon", Tetragon(), tetragonShape},
		{"tracee", Tracee(), traceeShape},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if len(c.specs) != c.shape.count {
				t.Fatalf("count = %d, want %d", len(c.specs), c.shape.count)
			}
			for _, s := range c.specs {
				if s.MCPU != c.shape.mcpu {
					t.Fatalf("%s: mcpu = %d", s.Name, s.MCPU)
				}
			}
		})
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a := Sysdig()
	b := Sysdig()
	for i := range a {
		if ir.Print(a[i].Mod) != ir.Print(b[i].Mod) {
			t.Fatalf("program %d differs between generations", i)
		}
	}
}

// TestSuiteSampleBuildAndVerify compiles a systematic sample of each suite
// (every program in -short mode would be slow; full coverage lives in the
// table1 experiment).
func TestSuiteSampleBuildAndVerify(t *testing.T) {
	for _, specs := range [][]*ProgramSpec{Sysdig(), Tetragon(), Tracee()} {
		step := 12
		if testing.Short() {
			step = 40
		}
		for i := 0; i < len(specs); i += step {
			spec := specs[i]
			res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec))
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			if res.Prog.NI() > res.Baseline.NI() {
				t.Errorf("%s: grew %d → %d", spec.Name, res.Baseline.NI(), res.Prog.NI())
			}
		}
	}
}

// TestSuiteSampleSemantics runs a few suite programs on the VM.
func TestSuiteSampleSemantics(t *testing.T) {
	for _, specs := range [][]*ProgramSpec{Sysdig(), Tetragon(), Tracee()} {
		for _, idx := range []int{0, 7, len(specs) / 2} {
			spec := specs[idx]
			res, err := core.Build(spec.Mod, spec.Func, buildOpts(spec))
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			base, _ := vm.New(res.Baseline, vm.Config{Seed: 9})
			opt, _ := vm.New(res.Prog, vm.Config{Seed: 9})
			for trial := 0; trial < 3; trial++ {
				ctx := vm.TracepointContext(uint64(trial), 42, 77, 99, 3, 1, 12, 9)
				a, _, err1 := base.Run(ctx, nil)
				b, _, err2 := opt.Run(ctx, nil)
				if (err1 == nil) != (err2 == nil) || a != b {
					t.Fatalf("%s trial %d: %d/%v vs %d/%v", spec.Name, trial, a, err1, b, err2)
				}
			}
			for i := range res.Prog.Maps {
				if string(base.Map(i).Backing()) != string(opt.Map(i).Backing()) {
					t.Fatalf("%s: map %d diverged", spec.Name, i)
				}
			}
		}
	}
}

func TestSuiteSizeBands(t *testing.T) {
	if testing.Short() {
		t.Skip("size survey is slow")
	}
	// Compile a sample and check the min/max targets are representable.
	specs := Sysdig()
	first, err := core.Build(specs[0].Mod, specs[0].Func, core.Options{Hook: specs[0].Hook, MCPU: 3, KernelALU32: true})
	if err != nil {
		t.Fatal(err)
	}
	last, err := core.Build(specs[len(specs)-1].Mod, specs[len(specs)-1].Func, core.Options{Hook: specs[0].Hook, MCPU: 3, KernelALU32: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sysdig smallest baseline NI=%d (target 180), largest NI=%d (target 33765)", first.Baseline.NI(), last.Baseline.NI())
	if first.Baseline.NI() < 60 || first.Baseline.NI() > 600 {
		t.Errorf("smallest out of band: %d", first.Baseline.NI())
	}
	if last.Baseline.NI() < 12000 || last.Baseline.NI() > 70000 {
		t.Errorf("largest out of band: %d", last.Baseline.NI())
	}
}
