package corpus

import (
	"merlin/internal/ebpf"
	"merlin/internal/helpers"
	"merlin/internal/ir"
)

// XDP returns the 19 XDP benchmark programs (Table 1: sizes 18…1771,
// mcpu=v2), modelled on the Linux kernel samples, Meta's pktcntr/balancer,
// hXDP's firewall suite, and Cilium datapath pieces.
func XDP() []*ProgramSpec {
	builders := []struct {
		name  string
		build func(name string) *ir.Module
	}{
		{"xdp_dropworld", xdpDropWorld},
		{"xdp1", xdp1},
		{"xdp2", xdp2},
		{"xdp_pktcntr", xdpPktcntr},
		{"xdp_rxq_info", xdpRxqInfo},
		{"xdp_redirect", xdpRedirect},
		{"xdp_redirect_map", xdpRedirectMap},
		{"xdp_adjust_tail", xdpAdjustTail},
		{"xdp_fwd", xdpFwd},
		{"xdp_router_ipv4", xdpRouterIPv4},
		{"xdp_tx_iptunnel", xdpTxIptunnel},
		{"xdp_ddos_mitigator", xdpDDoS},
		{"xdp_firewall", xdpFirewall},
		{"xdp_policer", xdpPolicer},
		{"cilium_lb4", ciliumLB4},
		{"cilium_policy", ciliumPolicy},
		{"cilium_encap", ciliumEncap},
		{"xdp_quic_lb", xdpQuicLB},
		{"xdp-balancer", xdpBalancer},
	}
	var out []*ProgramSpec
	for _, b := range builders {
		out = append(out, &ProgramSpec{
			Name:  b.name,
			Suite: "xdp",
			Mod:   mustValidate(b.build(b.name)),
			Func:  b.name,
			Hook:  ebpf.HookXDP,
			MCPU:  2,
		})
	}
	return out
}

// ret emits "ret <verdict>" in the current block.
func (p *pb) ret(v int64) { p.Ret(ir.ConstInt(ir.I64, v)) }

// dropBlock creates the shared failure block returning XDP_DROP… callers
// must create it before branching to it.
func (p *pb) dropBlock() *ir.Block {
	d := p.Block("drop")
	cur := p.Cur
	p.SetBlock(d)
	p.ret(int64(ebpf.XDPDrop))
	p.SetBlock(cur)
	return d
}

func (p *pb) passBlock() *ir.Block {
	d := p.Block("pass")
	cur := p.Cur
	p.SetBlock(d)
	p.ret(int64(ebpf.XDPPass))
	p.SetBlock(cur)
	return d
}

// tr32 truncates an i64 value to i32 for hashing arithmetic.
func (p *pb) tr32(v ir.Value) *ir.Instr { return p.Trunc(ir.I32, v) }

// xdpDropWorld is the smallest program: bounds-check the Ethernet header
// and drop everything (≈18 NI compiled).
func xdpDropWorld(name string) *ir.Module {
	p, _ := newProg(name)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14, drop, "parse")
	data := p.loadData()
	proto := p.field(data, 12, ir.I16, 1)
	isIP := p.ICmp(ir.EQ, proto, ir.ConstInt(ir.I64, 0x0008))
	p.CondBr(isIP, drop, pass)
	return p.Mod
}

// xdp1 parses the Ethernet/IP headers and counts packets per IP protocol in
// a per-CPU array, then drops (kernel samples/bpf/xdp1).
func xdp1(name string) *ir.Module {
	p, _ := newProg(name)
	rxcnt := p.DeclareMap("rxcnt", ir.MapPerCPUArray, 4, 8, 256)
	drop := p.dropBlock()
	p.boundsCheck(14+20, drop, "l3")
	data := p.loadData()
	eth := p.fieldBE16(data, 12)
	isIP := p.ICmp(ir.EQ, eth, ir.ConstInt(ir.I64, 0x0800)) // ETH_P_IP
	l4 := p.Block("l4")
	p.CondBr(isIP, l4, drop)
	p.SetBlock(l4)
	d2 := p.loadData()
	proto := p.field(d2, 14+9, ir.I8, 1)
	key := p.Alloca(4, 4)
	pr32 := p.Trunc(ir.I32, proto)
	p.Store(key, pr32, 4)
	p.mapBump(rxcnt, key, "done")
	p.ret(int64(ebpf.XDPDrop))
	return p.Mod
}

// xdp2 is xdp1 plus a MAC swap and TX (kernel samples/bpf/xdp2).
func xdp2(name string) *ir.Module {
	p, _ := newProg(name)
	rxcnt := p.DeclareMap("rxcnt", ir.MapPerCPUArray, 4, 8, 256)
	drop := p.dropBlock()
	p.boundsCheck(14+20, drop, "l3")
	data := p.loadData()
	eth := p.fieldBE16(data, 12)
	isIP := p.ICmp(ir.EQ, eth, ir.ConstInt(ir.I64, 0x0800))
	swap := p.Block("swap")
	p.CondBr(isIP, swap, drop)
	p.SetBlock(swap)
	d2 := p.loadData()
	// Swap src/dst MACs byte by byte (packed, align 1).
	for i := int64(0); i < 6; i++ {
		dstB := p.field(d2, i, ir.I8, 1)
		srcB := p.field(d2, 6+i, ir.I8, 1)
		p.storeField(d2, i, ir.I8, 1, srcB)
		p.storeField(d2, 6+i, ir.I8, 1, dstB)
	}
	proto := p.field(d2, 14+9, ir.I8, 1)
	key := p.Alloca(4, 4)
	p.Store(key, p.Trunc(ir.I32, proto), 4)
	p.mapBump(rxcnt, key, "count")
	p.ret(int64(ebpf.XDPTx))
	return p.Mod
}

// xdpPktcntr counts all packets into a per-CPU array slot 0 and passes
// (Meta's xdp_pktcntr).
func xdpPktcntr(name string) *ir.Module {
	p, _ := newProg(name)
	cnt := p.DeclareMap("cntrs_array", ir.MapPerCPUArray, 4, 8, 32)
	key := p.keySlot(0)
	p.mapBump(cnt, key, "out")
	p.ret(int64(ebpf.XDPPass))
	return p.Mod
}

// xdpRxqInfo counts per rx-queue (queue index faked from a ctx-derived
// value) and passes (kernel samples xdp_rxq_info).
func xdpRxqInfo(name string) *ir.Module {
	p, _ := newProg(name)
	stats := p.DeclareMap("rx_queue_index", ir.MapPerCPUArray, 4, 8, 64)
	drop := p.dropBlock()
	p.boundsCheck(14, drop, "q")
	data := p.loadData()
	b0 := p.field(data, 0, ir.I8, 1)
	q := p.Bin(ir.And, ir.I64, b0, ir.ConstInt(ir.I64, 63))
	key := p.Alloca(4, 4)
	p.Store(key, p.Trunc(ir.I32, q), 4)
	p.mapBump(stats, key, "done")
	p.ret(int64(ebpf.XDPPass))
	return p.Mod
}

// xdpRedirect rewrites the destination MAC and redirects to a fixed
// ifindex (kernel samples xdp_redirect).
func xdpRedirect(name string) *ir.Module {
	p, _ := newProg(name)
	drop := p.dropBlock()
	p.boundsCheck(14, drop, "go")
	data := p.loadData()
	for i := int64(0); i < 6; i++ {
		p.storeField(data, i, ir.I8, 1, ir.ConstInt(ir.I64, int64(0xde)))
	}
	r := p.Call(helpers.Redirect, ir.ConstInt(ir.I64, 7), ir.ConstInt(ir.I64, 0))
	p.Ret(r)
	return p.Mod
}

// xdpRedirectMap redirects through a devmap-style array keyed by the
// low bits of the source MAC (kernel samples xdp_redirect_map).
func xdpRedirectMap(name string) *ir.Module {
	p, _ := newProg(name)
	devs := p.DeclareMap("tx_port", ir.MapArray, 4, 8, 64)
	drop := p.dropBlock()
	p.boundsCheck(14, drop, "go")
	data := p.loadData()
	b := p.field(data, 6, ir.I8, 1)
	slot := p.Bin(ir.And, ir.I64, b, ir.ConstInt(ir.I64, 63))
	mp := p.MapPtr(devs)
	r := p.Call(helpers.RedirectMap, mp, slot, ir.ConstInt(ir.I64, 0))
	p.Ret(r)
	return p.Mod
}

// xdpAdjustTail parses IP, validates the length field, and emulates an ICMP
// truncation reply by rewriting header bytes (kernel xdp_adjust_tail).
func xdpAdjustTail(name string) *ir.Module {
	p, _ := newProg(name)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20+8, drop, "ip")
	data := p.loadData()
	eth := p.field(data, 12, ir.I16, 1)
	isIP := p.ICmp(ir.EQ, eth, ir.ConstInt(ir.I64, 0x0008))
	l3 := p.Block("l3")
	p.CondBr(isIP, l3, pass)
	p.SetBlock(l3)
	d := p.loadData()
	totLen := p.field(d, 14+2, ir.I16, 1)
	big := p.ICmp(ir.UGT, totLen, ir.ConstInt(ir.I64, 600))
	trim := p.Block("trim")
	p.CondBr(big, trim, pass)
	p.SetBlock(trim)
	d2 := p.loadData()
	// Rewrite the IP header for the truncated reply: new length, TTL, csum.
	p.storeField(d2, 14+2, ir.I16, 1, ir.ConstInt(ir.I64, 0x5802))
	p.storeField(d2, 14+8, ir.I8, 1, ir.ConstInt(ir.I64, 64))
	csum := p.field(d2, 14+10, ir.I16, 1)
	c1 := p.Bin(ir.Add, ir.I64, csum, ir.ConstInt(ir.I64, 0x101))
	p.storeField(d2, 14+10, ir.I16, 1, c1)
	// ICMP type/code in the payload area.
	p.storeField(d2, 14+20, ir.I8, 1, ir.ConstInt(ir.I64, 3))
	p.storeField(d2, 14+21, ir.I8, 1, ir.ConstInt(ir.I64, 4))
	p.storeField(d2, 14+22, ir.I16, 1, ir.ConstInt(ir.I64, 0))
	p.storeField(d2, 14+24, ir.I16, 1, ir.ConstInt(ir.I64, 0x4605))
	p.ret(int64(ebpf.XDPTx))
	return p.Mod
}

// parseFiveTuple loads the IPv4 5-tuple into a stack key (13 bytes packed,
// written field by field — byte-aligned on purpose, as the real firewall
// structs are packed).
func (p *pb) parseFiveTuple(key *ir.Instr) {
	d := p.loadData()
	sa := p.field(d, 14+12, ir.I32, 1)
	da := p.field(d, 14+16, ir.I32, 1)
	pr := p.field(d, 14+9, ir.I8, 1)
	sp := p.field(d, 14+20, ir.I16, 1)
	dp := p.field(d, 14+22, ir.I16, 1)
	p.Store(p.GEPc(key, 0), p.Trunc(ir.I32, sa), 1)
	p.Store(p.GEPc(key, 4), p.Trunc(ir.I32, da), 1)
	p.Store(p.GEPc(key, 8), p.Trunc(ir.I16, sp), 1)
	p.Store(p.GEPc(key, 10), p.Trunc(ir.I16, dp), 1)
	p.Store(p.GEPc(key, 12), p.Trunc(ir.I8, pr), 1)
	p.Store(p.GEPc(key, 13), ir.ConstInt(ir.I8, 0), 1)
	p.Store(p.GEPc(key, 14), ir.ConstInt(ir.I16, 0), 1)
}

// xdpFwd parses L2/L3, looks up a next-hop entry and rewrites both MACs
// before transmitting (kernel samples xdp_fwd).
func xdpFwd(name string) *ir.Module {
	p, _ := newProg(name)
	fib := p.DeclareMap("xdp_tx_ports", ir.MapHash, 4, 16, 256)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20+8, drop, "l3")
	data := p.loadData()
	eth := p.field(data, 12, ir.I16, 1)
	isIP := p.ICmp(ir.EQ, eth, ir.ConstInt(ir.I64, 0x0008))
	fwd := p.Block("fwd")
	p.CondBr(isIP, fwd, pass)
	p.SetBlock(fwd)
	d := p.loadData()
	ttl := p.field(d, 14+8, ir.I8, 1)
	alive := p.ICmp(ir.UGT, ttl, ir.ConstInt(ir.I64, 1))
	lookup := p.Block("lookup")
	p.CondBr(alive, lookup, drop)
	p.SetBlock(lookup)
	d2 := p.loadData()
	daddr := p.field(d2, 14+16, ir.I32, 1)
	key := p.Alloca(4, 4)
	vslot := findOrMakeSlot(p)
	p.Store(key, p.Trunc(ir.I32, daddr), 4)
	mp := p.MapPtr(fib)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(vslot, v, 8)
	miss := p.ICmp(ir.EQ, v, ir.ConstInt(ir.I64, 0))
	rewrite := p.Block("rewrite")
	p.CondBr(miss, pass, rewrite)
	p.SetBlock(rewrite)
	vp := p.Load(ir.Ptr, vslot, 8)
	d3 := p.loadData()
	// dst MAC from nexthop entry bytes 0..5, src MAC from 6..11.
	for i := int64(0); i < 6; i++ {
		nb := p.Load(ir.I8, p.GEPc(vp, i), 1)
		p.Store(p.GEPc(d3, i), nb, 1)
	}
	for i := int64(0); i < 6; i++ {
		nb := p.Load(ir.I8, p.GEPc(vp, 6+i), 1)
		p.Store(p.GEPc(d3, 6+i), nb, 1)
	}
	// Decrement TTL and fix the checksum incrementally.
	t2 := p.field(d3, 14+8, ir.I8, 1)
	t3 := p.Bin(ir.Sub, ir.I64, t2, ir.ConstInt(ir.I64, 1))
	p.storeField(d3, 14+8, ir.I8, 1, t3)
	cs := p.field(d3, 14+10, ir.I16, 1)
	cs2 := p.Bin(ir.Add, ir.I64, cs, ir.ConstInt(ir.I64, 0x100))
	p.storeField(d3, 14+10, ir.I16, 1, cs2)
	p.ret(int64(ebpf.XDPTx))
	return p.Mod
}

// xdpRouterIPv4 does a longest-prefix-style route lookup over four unrolled
// prefix lengths (kernel samples xdp_router_ipv4).
func xdpRouterIPv4(name string) *ir.Module {
	p, _ := newProg(name)
	routes := p.DeclareMap("route_table", ir.MapHash, 8, 16, 1024)
	arp := p.DeclareMap("arp_table", ir.MapHash, 4, 8, 1024)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20, drop, "l3")
	data := p.loadData()
	eth := p.field(data, 12, ir.I16, 1)
	isIP := p.ICmp(ir.EQ, eth, ir.ConstInt(ir.I64, 0x0008))
	route := p.Block("route")
	p.CondBr(isIP, route, pass)
	p.SetBlock(route)

	key := p.Alloca(8, 8)
	vslot := findOrMakeSlot(p)
	found := p.Alloca(8, 8)
	p.Store(found, ir.ConstInt(ir.I64, 0), 8)

	// Unrolled prefix probes /32, /24, /16, /8.
	masks := []int64{0xffffffff, 0xffffff, 0xffff, 0xff}
	for pi, m := range masks {
		d := p.loadData()
		da := p.field(d, 14+16, ir.I32, 1)
		masked := p.Bin(ir.And, ir.I64, da, ir.ConstInt(ir.I64, m))
		plen := ir.ConstInt(ir.I64, int64(32-8*pi))
		pk := p.Bin(ir.Shl, ir.I64, plen, ir.ConstInt(ir.I64, 32))
		full := p.Bin(ir.Or, ir.I64, pk, masked)
		p.Store(key, full, 8)
		mp := p.MapPtr(routes)
		v := p.Call(helpers.MapLookupElem, mp, key)
		p.Store(vslot, v, 8)
		hit := p.ICmp(ir.NE, v, ir.ConstInt(ir.I64, 0))
		next := p.Block(blockName("probe", pi))
		take := p.Block(blockName("take", pi))
		p.CondBr(hit, take, next)
		p.SetBlock(take)
		vp := p.Load(ir.Ptr, vslot, 8)
		nh := p.Load(ir.I64, vp, 8)
		p.Store(found, nh, 8)
		p.Br(next)
		p.SetBlock(next)
	}
	nh := p.Load(ir.I64, found, 8)
	have := p.ICmp(ir.NE, nh, ir.ConstInt(ir.I64, 0))
	deliver := p.Block("deliver")
	p.CondBr(have, deliver, pass)
	p.SetBlock(deliver)
	// ARP lookup for the nexthop's MAC and rewrite.
	nh2 := p.Load(ir.I64, found, 8)
	akey := p.Alloca(4, 4)
	p.Store(akey, p.Trunc(ir.I32, nh2), 4)
	amp := p.MapPtr(arp)
	av := p.Call(helpers.MapLookupElem, amp, akey)
	p.Store(vslot, av, 8)
	amiss := p.ICmp(ir.EQ, av, ir.ConstInt(ir.I64, 0))
	tx := p.Block("tx")
	p.CondBr(amiss, pass, tx)
	p.SetBlock(tx)
	avp := p.Load(ir.Ptr, vslot, 8)
	mac := p.Load(ir.I64, avp, 8)
	d4 := p.loadData()
	p.storeField(d4, 0, ir.I32, 1, mac)
	sh := p.Bin(ir.LShr, ir.I64, mac, ir.ConstInt(ir.I64, 32))
	p.storeField(d4, 4, ir.I16, 1, sh)
	t := p.field(d4, 14+8, ir.I8, 1)
	t2 := p.Bin(ir.Sub, ir.I64, t, ir.ConstInt(ir.I64, 1))
	p.storeField(d4, 14+8, ir.I8, 1, t2)
	p.ret(int64(ebpf.XDPTx))
	return p.Mod
}

func blockName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// xdpTxIptunnel encapsulates matching flows in an outer IPv4 header written
// field by field (kernel samples xdp_tx_iptunnel).
func xdpTxIptunnel(name string) *ir.Module {
	p, _ := newProg(name)
	vips := p.DeclareMap("vip2tnl", ir.MapHash, 16, 24, 256)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20+20+8, drop, "l3")
	data := p.loadData()
	eth := p.field(data, 12, ir.I16, 1)
	isIP := p.ICmp(ir.EQ, eth, ir.ConstInt(ir.I64, 0x0008))
	match := p.Block("match")
	p.CondBr(isIP, match, pass)
	p.SetBlock(match)
	key := p.Alloca(16, 4)
	p.parseFiveTuple(key)
	vslot := findOrMakeSlot(p)
	mp := p.MapPtr(vips)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(vslot, v, 8)
	miss := p.ICmp(ir.EQ, v, ir.ConstInt(ir.I64, 0))
	encap := p.Block("encap")
	p.CondBr(miss, pass, encap)
	p.SetBlock(encap)
	vp := p.Load(ir.Ptr, vslot, 8)
	saddr := p.Load(ir.I32, p.GEPc(vp, 0), 4)
	daddr := p.Load(ir.I32, p.GEPc(vp, 4), 4)
	d := p.loadData()
	// Write the outer IP header over the (reserved) headroom area, packed.
	p.storeField(d, 14+0, ir.I8, 1, ir.ConstInt(ir.I64, 0x45))
	p.storeField(d, 14+1, ir.I8, 1, ir.ConstInt(ir.I64, 0))
	p.storeField(d, 14+2, ir.I16, 1, ir.ConstInt(ir.I64, 0x0045))
	p.storeField(d, 14+4, ir.I16, 1, ir.ConstInt(ir.I64, 0))
	p.storeField(d, 14+6, ir.I16, 1, ir.ConstInt(ir.I64, 0x40))
	p.storeField(d, 14+8, ir.I8, 1, ir.ConstInt(ir.I64, 64))
	p.storeField(d, 14+9, ir.I8, 1, ir.ConstInt(ir.I64, 4)) // IPIP
	sz := p.ZExt(ir.I64, saddr)
	dz := p.ZExt(ir.I64, daddr)
	p.storeField(d, 14+12, ir.I32, 1, sz)
	p.storeField(d, 14+16, ir.I32, 1, dz)
	// Fold a simple checksum over the new header words.
	acc := p.Bin(ir.Add, ir.I64, sz, dz)
	acc = p.Bin(ir.Add, ir.I64, acc, ir.ConstInt(ir.I64, 0x4540))
	hi := p.Bin(ir.LShr, ir.I64, acc, ir.ConstInt(ir.I64, 16))
	acc2 := p.Bin(ir.Add, ir.I64, acc, hi)
	p.storeField(d, 14+10, ir.I16, 1, acc2)
	p.ret(int64(ebpf.XDPTx))
	return p.Mod
}

// xdpDDoS rate-checks source addresses against a blocklist and counts
// drops (hXDP's ddos mitigator).
func xdpDDoS(name string) *ir.Module {
	p, _ := newProg(name)
	blocked := p.DeclareMap("srcblocklist", ir.MapHash, 4, 8, 4096)
	dropcnt := p.DeclareMap("dropcnt", ir.MapPerCPUArray, 4, 8, 4)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20, drop, "l3")
	data := p.loadData()
	eth := p.field(data, 12, ir.I16, 1)
	isIP := p.ICmp(ir.EQ, eth, ir.ConstInt(ir.I64, 0x0008))
	check := p.Block("check")
	p.CondBr(isIP, check, pass)
	p.SetBlock(check)
	d := p.loadData()
	sa := p.field(d, 14+12, ir.I32, 1)
	key := p.Alloca(4, 4)
	p.Store(key, p.Trunc(ir.I32, sa), 4)
	vslot := findOrMakeSlot(p)
	mp := p.MapPtr(blocked)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(vslot, v, 8)
	hit := p.ICmp(ir.NE, v, ir.ConstInt(ir.I64, 0))
	punish := p.Block("punish")
	p.CondBr(hit, punish, pass)
	p.SetBlock(punish)
	ck := p.keySlot(0)
	p.mapBump(dropcnt, ck, "done")
	p.ret(int64(ebpf.XDPDrop))
	return p.Mod
}

// xdpFirewall matches the 5-tuple against an allowlist (hXDP firewall).
func xdpFirewall(name string) *ir.Module {
	p, _ := newProg(name)
	rules := p.DeclareMap("fw_rules", ir.MapHash, 16, 8, 8192)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20+8, drop, "l3")
	data := p.loadData()
	eth := p.field(data, 12, ir.I16, 1)
	isIP := p.ICmp(ir.EQ, eth, ir.ConstInt(ir.I64, 0x0008))
	tuple := p.Block("tuple")
	p.CondBr(isIP, tuple, pass)
	p.SetBlock(tuple)
	key := p.Alloca(16, 4)
	p.parseFiveTuple(key)
	vslot := findOrMakeSlot(p)
	mp := p.MapPtr(rules)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(vslot, v, 8)
	hit := p.ICmp(ir.NE, v, ir.ConstInt(ir.I64, 0))
	verdict := p.Block("verdict")
	p.CondBr(hit, verdict, drop)
	p.SetBlock(verdict)
	vp := p.Load(ir.Ptr, vslot, 8)
	action := p.Load(ir.I64, vp, 8)
	allow := p.ICmp(ir.EQ, action, ir.ConstInt(ir.I64, 1))
	okb := p.Block("allow")
	p.CondBr(allow, okb, drop)
	p.SetBlock(okb)
	p.ret(int64(ebpf.XDPPass))
	return p.Mod
}

// xdpPolicer implements a token-bucket-ish per-source rate limiter.
func xdpPolicer(name string) *ir.Module {
	p, _ := newProg(name)
	buckets := p.DeclareMap("buckets", ir.MapHash, 4, 16, 1024)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20, drop, "l3")
	d := p.loadData()
	sa := p.field(d, 14+12, ir.I32, 1)
	key := p.Alloca(4, 4)
	p.Store(key, p.Trunc(ir.I32, sa), 4)
	vslot := findOrMakeSlot(p)
	mp := p.MapPtr(buckets)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(vslot, v, 8)
	miss := p.ICmp(ir.EQ, v, ir.ConstInt(ir.I64, 0))
	meter := p.Block("meter")
	p.CondBr(miss, pass, meter)
	p.SetBlock(meter)
	vp := p.Load(ir.Ptr, vslot, 8)
	now := p.Call(helpers.KtimeGetNS)
	last := p.Load(ir.I64, p.GEPc(vp, 8), 8)
	delta := p.Bin(ir.Sub, ir.I64, now, last)
	vp2 := p.Load(ir.Ptr, vslot, 8)
	tokens := p.Load(ir.I64, vp2, 8)
	refill := p.Bin(ir.LShr, ir.I64, delta, ir.ConstInt(ir.I64, 20))
	t2 := p.Bin(ir.Add, ir.I64, tokens, refill)
	empty := p.ICmp(ir.EQ, t2, ir.ConstInt(ir.I64, 0))
	spend := p.Block("spend")
	p.CondBr(empty, drop, spend)
	p.SetBlock(spend)
	vp3 := p.Load(ir.Ptr, vslot, 8)
	t3 := p.Load(ir.I64, vp3, 8)
	t4 := p.Bin(ir.Sub, ir.I64, t3, ir.ConstInt(ir.I64, 1))
	p.Store(vp3, t4, 8)
	p.ret(int64(ebpf.XDPPass))
	return p.Mod
}

// lb4Core emits the shared load-balancer body: 5-tuple hash with rounds
// Jenkins rounds, backend lookup, stats bump, and encap rewrite. Used by
// cilium_lb4 (small) and xdp-balancer (large, many rounds/unrolls).
func lb4Core(p *pb, rounds, encapWrites int, statsKeys int) {
	backends := p.DeclareMap("backends", ir.MapArray, 4, 16, 512)
	stats := p.DeclareMap("lb_stats", ir.MapPerCPUArray, 4, 8, 64)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20+8, drop, "l3")
	data := p.loadData()
	eth := p.fieldBE16(data, 12)
	isIP := p.ICmp(ir.EQ, eth, ir.ConstInt(ir.I64, 0x0800))
	hash := p.Block("hash")
	p.CondBr(isIP, hash, pass)
	p.SetBlock(hash)

	d := p.loadData()
	sa := p.field(d, 14+12, ir.I32, 1)
	da := p.field(d, 14+16, ir.I32, 1)
	ports := p.field(d, 14+20, ir.I32, 1)
	// The flow hash lives in a program-local function (the paper's Table 1
	// notes such local functions; the verifier checks them inside main, and
	// our pipeline inlines them before optimization).
	hz := p.CallLocal("jhash3", sa, da, ports)
	idx := p.Bin(ir.And, ir.I64, hz, ir.ConstInt(ir.I64, 511))
	key := p.Alloca(4, 4)
	p.Store(key, p.Trunc(ir.I32, idx), 4)
	bslot := p.Alloca(8, 8)
	mp := p.MapPtr(backends)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(bslot, v, 8)
	miss := p.ICmp(ir.EQ, v, ir.ConstInt(ir.I64, 0))
	fwd := p.Block("fwd")
	p.CondBr(miss, drop, fwd)
	p.SetBlock(fwd)

	// Per-backend statistics.
	for k := 0; k < statsKeys; k++ {
		sk := p.keySlot(int64(k))
		p.mapBump(stats, sk, blockName("stat", k))
	}

	// Encap/rewrite: write backend address + tunnel header fields.
	vp := p.Load(ir.Ptr, bslot, 8)
	baddr := p.Load(ir.I32, p.GEPc(vp, 0), 4)
	bz := p.ZExt(ir.I64, baddr)
	d2 := p.loadData()
	p.storeField(d2, 14+16, ir.I32, 1, bz)
	for w := 0; w < encapWrites; w++ {
		p.storeField(d2, int64(w%12), ir.I8, 1, ir.ConstInt(ir.I64, int64(w&0xff)))
	}
	// Incremental checksum fix.
	cs := p.field(d2, 14+10, ir.I16, 1)
	cs2 := p.Bin(ir.Add, ir.I64, cs, bz)
	hi := p.Bin(ir.LShr, ir.I64, cs2, ir.ConstInt(ir.I64, 16))
	cs3 := p.Bin(ir.Add, ir.I64, cs2, hi)
	p.storeField(d2, 14+10, ir.I16, 1, cs3)
	p.ret(int64(ebpf.XDPTx))

	defineJhash3(p, rounds)
}

// defineJhash3 appends the program-local hash function jhash3(a,b,c) used
// by the load balancers. It runs the requested number of Jenkins-style
// mixing rounds over the three words.
func defineJhash3(p *pb, rounds int) {
	pa := &ir.Param{Name: "a", Ty: ir.I64}
	pbv := &ir.Param{Name: "b", Ty: ir.I64}
	pc := &ir.Param{Name: "c", Ty: ir.I64}
	p.NewFunc("jhash3", pa, pbv, pc)
	var a, b, c ir.Value = p.Trunc(ir.I32, pa), p.Trunc(ir.I32, pbv), p.Trunc(ir.I32, pc)
	for i := 0; i < rounds; i++ {
		a, b, c = p.jhashRound(a, b, c)
	}
	h := p.Bin(ir.Xor, ir.I32, a, c)
	hz := p.ZExt(ir.I64, h)
	p.Ret(hz)
}

// ciliumLB4 is a small L4 load balancer (Cilium datapath style).
func ciliumLB4(name string) *ir.Module {
	p, _ := newProg(name)
	lb4Core(p, 2, 4, 1)
	return p.Mod
}

// ciliumPolicy checks an identity/policy map and returns a verdict.
func ciliumPolicy(name string) *ir.Module {
	p, _ := newProg(name)
	policy := p.DeclareMap("cilium_policy", ir.MapHash, 8, 8, 16384)
	drop := p.dropBlock()
	p.boundsCheck(14+20, drop, "id")
	d := p.loadData()
	sa := p.field(d, 14+12, ir.I32, 1)
	da := p.field(d, 14+16, ir.I32, 1)
	sh := p.Bin(ir.Shl, ir.I64, sa, ir.ConstInt(ir.I64, 32))
	idkey := p.Bin(ir.Or, ir.I64, sh, da)
	key := p.Alloca(8, 8)
	p.Store(key, idkey, 8)
	vslot := findOrMakeSlot(p)
	mp := p.MapPtr(policy)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(vslot, v, 8)
	deny := p.ICmp(ir.EQ, v, ir.ConstInt(ir.I64, 0))
	verd := p.Block("verdict")
	p.CondBr(deny, drop, verd)
	p.SetBlock(verd)
	vp := p.Load(ir.Ptr, vslot, 8)
	action := p.Load(ir.I64, vp, 8)
	p.Ret(action)
	return p.Mod
}

// ciliumEncap writes a VXLAN-ish tunnel header.
func ciliumEncap(name string) *ir.Module {
	p, _ := newProg(name)
	tunnels := p.DeclareMap("tunnel_map", ir.MapHash, 4, 8, 1024)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20+16, drop, "enc")
	d := p.loadData()
	da := p.field(d, 14+16, ir.I32, 1)
	key := p.Alloca(4, 4)
	p.Store(key, p.Trunc(ir.I32, da), 4)
	vslot := findOrMakeSlot(p)
	mp := p.MapPtr(tunnels)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(vslot, v, 8)
	miss := p.ICmp(ir.EQ, v, ir.ConstInt(ir.I64, 0))
	wr := p.Block("write")
	p.CondBr(miss, pass, wr)
	p.SetBlock(wr)
	vp := p.Load(ir.Ptr, vslot, 8)
	vni := p.Load(ir.I32, p.GEPc(vp, 0), 4)
	vz := p.ZExt(ir.I64, vni)
	d2 := p.loadData()
	// VXLAN header: flags, reserved, VNI — all packed writes.
	p.storeField(d2, 14+20+0, ir.I8, 1, ir.ConstInt(ir.I64, 0x08))
	p.storeField(d2, 14+20+1, ir.I8, 1, ir.ConstInt(ir.I64, 0))
	p.storeField(d2, 14+20+2, ir.I16, 1, ir.ConstInt(ir.I64, 0))
	p.storeField(d2, 14+20+4, ir.I32, 1, vz)
	sh := p.Bin(ir.LShr, ir.I64, vz, ir.ConstInt(ir.I64, 8))
	p.storeField(d2, 14+20+8, ir.I32, 1, sh)
	p.storeField(d2, 14+20+12, ir.I32, 1, ir.ConstInt(ir.I64, 0))
	p.ret(int64(ebpf.XDPTx))
	return p.Mod
}

// xdpQuicLB routes QUIC connection IDs to backend servers.
func xdpQuicLB(name string) *ir.Module {
	p, _ := newProg(name)
	conns := p.DeclareMap("cid_map", ir.MapHash, 8, 8, 65536)
	drop := p.dropBlock()
	pass := p.passBlock()
	p.boundsCheck(14+20+8+9, drop, "quic")
	d := p.loadData()
	proto := p.field(d, 14+9, ir.I8, 1)
	isUDP := p.ICmp(ir.EQ, proto, ir.ConstInt(ir.I64, 17))
	cid := p.Block("cid")
	p.CondBr(isUDP, cid, pass)
	p.SetBlock(cid)
	d2 := p.loadData()
	// Connection ID: 8 bytes at the start of the QUIC payload, byte-wise.
	var acc ir.Value = ir.ConstInt(ir.I64, 0)
	for i := int64(0); i < 8; i++ {
		bb := p.field(d2, 14+20+8+1+i, ir.I8, 1)
		sh := p.Bin(ir.Shl, ir.I64, bb, ir.ConstInt(ir.I64, 8*i))
		acc = p.Bin(ir.Or, ir.I64, acc, sh)
	}
	key := p.Alloca(8, 8)
	p.Store(key, acc, 8)
	vslot := findOrMakeSlot(p)
	mp := p.MapPtr(conns)
	v := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(vslot, v, 8)
	miss := p.ICmp(ir.EQ, v, ir.ConstInt(ir.I64, 0))
	tx := p.Block("tx")
	p.CondBr(miss, pass, tx)
	p.SetBlock(tx)
	vp := p.Load(ir.Ptr, vslot, 8)
	backend := p.Load(ir.I32, vp, 4)
	bz := p.ZExt(ir.I64, backend)
	d3 := p.loadData()
	p.storeField(d3, 14+16, ir.I32, 1, bz)
	p.ret(int64(ebpf.XDPTx))
	return p.Mod
}

// xdpBalancer is the big one: a katran-style L4 balancer with deep hashing,
// per-VIP statistics and a full encap rewrite (≈1771 NI in the paper).
func xdpBalancer(name string) *ir.Module {
	p, _ := newProg(name)
	lb4Core(p, 47, 150, 9)
	return p.Mod
}
