package corpus

import (
	"fmt"
	"math/rand"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
	"merlin/internal/ir"
)

// Suite size targets from Table 1 (NI of the compiled, unoptimized
// programs). Generated sizes approximate these: the distribution is
// long-tailed with the declared min/max pinned.
type suiteShape struct {
	name     string
	count    int
	smallest int
	largest  int
	average  int
	mcpu     int
	hook     ebpf.HookType
	seed     int64
}

var (
	sysdigShape   = suiteShape{name: "sysdig", count: 168, smallest: 180, largest: 33765, average: 1094, mcpu: 3, hook: ebpf.HookTracepoint, seed: 11}
	tetragonShape = suiteShape{name: "tetragon", count: 186, smallest: 21, largest: 15673, average: 3405, mcpu: 3, hook: ebpf.HookKprobe, seed: 22}
	traceeShape   = suiteShape{name: "tracee", count: 129, smallest: 29, largest: 16633, average: 2654, mcpu: 2, hook: ebpf.HookTracepoint, seed: 33}
)

// Sysdig returns the Sysdig-like suite (168 syscall-capture programs, v3).
func Sysdig() []*ProgramSpec { return genSuite(sysdigShape) }

// Tetragon returns the Tetragon-like suite (186 programs, v3).
func Tetragon() []*ProgramSpec { return genSuite(tetragonShape) }

// Tracee returns the Tracee-like suite (129 programs, v2).
func Tracee() []*ProgramSpec { return genSuite(traceeShape) }

// targetSizes produces a deterministic long-tailed size list matching the
// shape's min/max/avg approximately.
func targetSizes(s suiteShape) []int {
	rng := rand.New(rand.NewSource(s.seed))
	sizes := make([]int, s.count)
	// Long tail: most programs small-ish, a few huge. Draw from an
	// exponential and rescale to hit the average.
	total := 0
	for i := range sizes {
		v := s.smallest + int(rng.ExpFloat64()*float64(s.average-s.smallest))
		if v > s.largest {
			v = s.largest
		}
		sizes[i] = v
		total += v
	}
	// Rescale toward the requested average.
	wantTotal := s.average * s.count
	scale := float64(wantTotal) / float64(total)
	for i := range sizes {
		v := int(float64(sizes[i]) * scale)
		if v < s.smallest {
			v = s.smallest
		}
		if v > s.largest {
			v = s.largest
		}
		sizes[i] = v
	}
	// Pin the extremes.
	sizes[0] = s.smallest
	sizes[len(sizes)-1] = s.largest
	return sizes
}

func genSuite(s suiteShape) []*ProgramSpec {
	sizes := targetSizes(s)
	rng := rand.New(rand.NewSource(s.seed * 7919))
	var out []*ProgramSpec
	for i, target := range sizes {
		name := fmt.Sprintf("%s_%s_%03d", s.name, syscallName(i), i)
		mod := genProbe(name, target, s, rng.Int63())
		out = append(out, &ProgramSpec{
			Name:  name,
			Suite: s.name,
			Mod:   mustValidate(mod),
			Func:  name,
			Hook:  s.hook,
			MCPU:  s.mcpu,
		})
	}
	return out
}

var syscallNames = []string{
	"read", "write", "open", "close", "stat", "fstat", "lstat", "poll",
	"lseek", "mmap", "mprotect", "munmap", "brk", "ioctl", "pread", "pwrite",
	"readv", "writev", "access", "pipe", "select", "dup", "dup2", "socket",
	"connect", "accept", "sendto", "recvfrom", "sendmsg", "recvmsg", "bind",
	"listen", "execve", "exit", "wait4", "kill", "fcntl", "flock", "fsync",
	"rename", "mkdir", "rmdir", "creat", "link", "unlink", "symlink", "chmod",
	"chown", "umask", "getpid", "clone", "fork", "vfork", "ptrace", "setuid",
}

func syscallName(i int) string { return syscallNames[i%len(syscallNames)] }

// genProbe generates a syscall-capture probe whose compiled size lands near
// target NI. Structure mirrors real capture probes: read ctx args, filter,
// marshal an event record into a per-CPU scratch buffer with packed writes,
// copy argument memory, bump counters, and emit the record.
//
// Approximate baseline cost per unit (calibrated against compiled output):
// header ≈ 31 NI, arg ≈ 14, hash round ≈ 14, counter ≈ 14. The mix is
// deterministic per seed.
func genProbe(name string, target int, s suiteShape, seed int64) *ir.Module {
	rng := rand.New(rand.NewSource(seed))
	p, ctx := newProg(name)
	scratch := p.DeclareMap("frame_scratch_map", ir.MapPerCPUArray, 4, 256, 1)
	counts := p.DeclareMap("event_counts", ir.MapPerCPUArray, 4, 8, 64)
	ring := p.DeclareMap("perf_events", ir.MapRingBuf, 0, 64, 1024)

	// Prologue ≈ 30 NI: syscall-id filter + scratch buffer lookup.
	id := p.Load(ir.I64, ctx, 8)
	match := p.ICmp(ir.ULE, id, ir.ConstInt(ir.I64, 450))
	out := p.Block("out")
	cur := p.Cur
	p.SetBlock(out)
	p.Ret(ir.ConstInt(ir.I64, 0))
	p.SetBlock(cur)
	body := p.Block("body")
	p.CondBr(match, body, out)
	p.SetBlock(body)

	key := p.keySlot(0)
	bufSlot := p.Alloca(8, 8)
	mp := p.MapPtr(scratch)
	buf := p.Call(helpers.MapLookupElem, mp, key)
	p.Store(bufSlot, buf, 8)
	nobuf := p.ICmp(ir.EQ, buf, ir.ConstInt(ir.I64, 0))
	fill := p.Block("fill")
	p.CondBr(nobuf, out, fill)
	p.SetBlock(fill)

	// Estimate unit costs to hit the target.
	budget := target - 28
	units := 0
	counters := 0
	for budget > 20 && units < 4000 {
		switch pick := rng.Intn(10); {
		case pick < 3:
			p.headerUnit(bufSlot, rng)
			budget -= 31
		case pick < 8:
			p.argUnit(ctx, bufSlot, rng)
			budget -= 14
		case pick < 9 && s.mcpu == 2:
			p.hashUnit(ctx, rng)
			budget -= 14
		default:
			if counters < 6 {
				ck := p.keySlot(int64(rng.Intn(64)))
				p.mapBump(counts, ck, blockName("cnt", counters))
				counters++
				budget -= 14
			} else {
				p.argUnit(ctx, bufSlot, rng)
				budget -= 14
			}
		}
		units++
	}

	// Epilogue: emit the event record.
	bp := p.Load(ir.Ptr, bufSlot, 8)
	rp := p.MapPtr(ring)
	p.Call(helpers.PerfEventOutput, ctx, rp, ir.ConstInt(ir.I64, 0), bp, ir.ConstInt(ir.I64, 64))
	p.Ret(ir.ConstInt(ir.I64, 0))
	return p.Mod
}

// headerUnit writes a run of packed constant header fields into the event
// buffer — the CP&DCE + SLM + DAO pattern.
func (p *pb) headerUnit(bufSlot *ir.Instr, rng *rand.Rand) {
	bp := p.Load(ir.Ptr, bufSlot, 8)
	base := int64(rng.Intn(20)) * 8
	p.Store(p.GEPc(bp, base+0), ir.ConstInt(ir.I32, 0), 1)
	p.Store(p.GEPc(bp, base+4), ir.ConstInt(ir.I32, 1), 1)
	p.Store(p.GEPc(bp, base+8), ir.ConstInt(ir.I16, 26), 1)
	p.Store(p.GEPc(bp, base+10), ir.ConstInt(ir.I16, 0), 1)
	p.Store(p.GEPc(bp, base+12), ir.ConstInt(ir.I8, 3), 1)
	p.Store(p.GEPc(bp, base+13), ir.ConstInt(ir.I8, 0), 1)
}

// argUnit reads one syscall argument from the context and marshals it into
// the event buffer at a packed offset.
func (p *pb) argUnit(ctx *ir.Param, bufSlot *ir.Instr, rng *rand.Rand) {
	argOff := int64(8 * (1 + rng.Intn(6)))
	ap := p.GEPc(ctx, argOff)
	arg := p.Load(ir.I64, ap, 8)
	bp := p.Load(ir.Ptr, bufSlot, 8)
	dst := int64(16 + rng.Intn(200))
	switch rng.Intn(3) {
	case 0: // full 8-byte arg, packed
		p.Store(p.GEPc(bp, dst), arg, 1)
	case 1: // 32-bit truncation, packed
		tr := p.Trunc(ir.I32, arg)
		p.Store(p.GEPc(bp, dst), tr, 1)
	default: // length-style field with bounding
		ln := p.Bin(ir.And, ir.I64, arg, ir.ConstInt(ir.I64, 0xffff))
		tr := p.Trunc(ir.I16, ln)
		p.Store(p.GEPc(bp, dst), tr, 1)
	}
}

// hashUnit mixes argument words (Tracee computes flow hashes in v2 ISA,
// generating the masking patterns CC and PO clean up).
func (p *pb) hashUnit(ctx *ir.Param, rng *rand.Rand) {
	a := p.tr32(p.Load(ir.I64, p.GEPc(ctx, 8), 8))
	b := p.tr32(p.Load(ir.I64, p.GEPc(ctx, 16), 8))
	c := p.tr32(p.Load(ir.I64, p.GEPc(ctx, 24), 8))
	x, y, z := p.jhashRound(a, b, c)
	h := p.Bin(ir.Xor, ir.I32, x, y)
	h2 := p.Bin(ir.Xor, ir.I32, h, z)
	sh := p.Bin(ir.LShr, ir.I32, h2, ir.ConstInt(ir.I32, int64(20+rng.Intn(8))))
	hz := p.ZExt(ir.I64, sh)
	slot := findOrMakeSlot(p)
	p.Store(slot, hz, 8)
}
