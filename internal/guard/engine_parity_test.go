package guard

import (
	"bytes"
	"fmt"
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// DiffPrograms — the differential proof gating every optimizer pass — runs
// on the pre-decoded fast engine. This test replays the exact same proof on
// the reference switch interpreter and requires the identical verdict,
// down to the error text: a verdict that depends on which engine proved it
// would silently change which rewrites are accepted.

// refDiffPrograms mirrors DiffPrograms on the reference interpreter.
func refDiffPrograms(pre, post *ebpf.Program, inputs []Input) error {
	if len(pre.Maps) != len(post.Maps) {
		return fmt.Errorf("guard: map count changed: %d -> %d", len(pre.Maps), len(post.Maps))
	}
	a, err := vm.NewRef(pre, vm.Config{Seed: 7})
	if err != nil {
		return fmt.Errorf("guard: load pre: %w", err)
	}
	b, err := vm.NewRef(post, vm.Config{Seed: 7})
	if err != nil {
		return fmt.Errorf("guard: load post: %w", err)
	}
	for i, in := range inputs {
		ra, _, errA := a.Run(in.Ctx, in.Pkt)
		rb, _, errB := b.Run(in.Ctx, in.Pkt)
		if (errA == nil) != (errB == nil) {
			return fmt.Errorf("guard: input %d: error divergence: %v vs %v", i, errA, errB)
		}
		if ra != rb {
			return fmt.Errorf("guard: input %d: result %d vs %d", i, ra, rb)
		}
	}
	for i := range pre.Maps {
		if !bytes.Equal(a.Map(i).Backing(), b.Map(i).Backing()) {
			return fmt.Errorf("guard: map %d (%s) diverged", i, pre.Maps[i].Name)
		}
	}
	return nil
}

func TestDiffVerdictEngineParity(t *testing.T) {
	tp := func(name string, insns ...ebpf.Instruction) *ebpf.Program {
		return &ebpf.Program{Name: name, Hook: ebpf.HookTracepoint, Insns: insns}
	}
	argSum := tp("sum",
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R2, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 8),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R2),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R0, ebpf.R3),
		ebpf.Exit(),
	)
	argSumFolded := tp("sum-folded",
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 8),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R0, ebpf.R3),
		ebpf.Exit(),
	)
	argSumOff := tp("sum-off",
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R3, ebpf.R1, 8),
		ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R0, ebpf.R3),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R0, 1),
		ebpf.Exit(),
	)
	wildLoad := tp("wild",
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 4096),
		ebpf.Exit(),
	)
	cases := []struct {
		name      string
		pre, post *ebpf.Program
		hook      ebpf.HookType
		wantOK    bool
	}{
		{"identical", argSum, argSum, ebpf.HookTracepoint, true},
		{"equivalent-rewrite", argSum, argSumFolded, ebpf.HookTracepoint, true},
		{"result-divergence", argSum, argSumOff, ebpf.HookTracepoint, false},
		{"fault-divergence", argSum, wildLoad, ebpf.HookTracepoint, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inputs := Inputs(tc.hook, 16, 99)
			fast := DiffPrograms(tc.pre, tc.post, inputs)
			ref := refDiffPrograms(tc.pre, tc.post, inputs)
			if (fast == nil) != (ref == nil) {
				t.Fatalf("engines disagree: fast=%v ref=%v", fast, ref)
			}
			if fast != nil && fast.Error() != ref.Error() {
				t.Fatalf("verdict text diverged:\nfast %v\nref  %v", fast, ref)
			}
			if (fast == nil) != tc.wantOK {
				t.Fatalf("verdict = %v, wantOK %v", fast, tc.wantOK)
			}
		})
	}
}

// TestDiffVerdictEngineParityXDP runs the packet-shaped input generator
// through both engines on an XDP drop/pass pair.
func TestDiffVerdictEngineParityXDP(t *testing.T) {
	xdp := func(name string, verdict int32) *ebpf.Program {
		return &ebpf.Program{Name: name, Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
			ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R1, 0),
			ebpf.LoadMem(ebpf.SizeB, ebpf.R7, ebpf.R6, 0),
			ebpf.Mov64Imm(ebpf.R0, verdict),
			ebpf.Exit(),
		}}
	}
	inputs := Inputs(ebpf.HookXDP, 16, 42)
	for _, tc := range []struct {
		name      string
		pre, post *ebpf.Program
		wantOK    bool
	}{
		{"same-verdict", xdp("pass-a", 2), xdp("pass-b", 2), true},
		{"flipped-verdict", xdp("pass", 2), xdp("drop", 1), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast := DiffPrograms(tc.pre, tc.post, inputs)
			ref := refDiffPrograms(tc.pre, tc.post, inputs)
			if (fast == nil) != (ref == nil) ||
				(fast != nil && fast.Error() != ref.Error()) {
				t.Fatalf("engines disagree:\nfast %v\nref  %v", fast, ref)
			}
			if (fast == nil) != tc.wantOK {
				t.Fatalf("verdict = %v, wantOK %v", fast, tc.wantOK)
			}
		})
	}
}
