package guard

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"merlin/internal/ebpf"
	"merlin/internal/ir"
)

// FaultMode selects the failure a FaultInjector provokes inside a pass.
type FaultMode string

// Injectable failure modes, one per containment path the guard claims to
// cover.
const (
	// FaultPanic panics inside the pass body.
	FaultPanic FaultMode = "panic"
	// FaultStall sleeps past the pass's wall-clock budget.
	FaultStall FaultMode = "stall"
	// FaultCorrupt semantically corrupts the pass output: the program stays
	// structurally valid but computes a different return value, so only
	// differential execution can catch it.
	FaultCorrupt FaultMode = "corrupt"
	// FaultBadBranch structurally corrupts the pass output (an out-of-range
	// branch at the bytecode tier, a misplaced terminator at the IR tier), so
	// the invariant checks must catch it.
	FaultBadBranch FaultMode = "badbranch"
	// FaultUnverifiable corrupts the output in a way the VM cannot observe
	// but the simulated kernel verifier rejects (an uninitialized-register
	// read at the bytecode tier, an out-of-bounds stack access at the IR
	// tier), forcing the final-verification fallback path.
	FaultUnverifiable FaultMode = "unverifiable"
)

// Modes lists every injectable failure mode.
func Modes() []FaultMode {
	return []FaultMode{FaultPanic, FaultStall, FaultCorrupt, FaultBadBranch, FaultUnverifiable}
}

// ParseFaultMode maps a flag string to a FaultMode.
func ParseFaultMode(s string) (FaultMode, bool) {
	for _, m := range Modes() {
		if string(m) == s {
			return m, true
		}
	}
	return "", false
}

// DefaultPassNames is the pass universe NewFaultInjector draws from: the
// paper's two IR-tier and four bytecode-tier optimizers.
func DefaultPassNames() []string {
	return []string{"DAO", "MoF", "CP&DCE", "SLM", "CC", "PO"}
}

// FaultInjector deterministically injects failures into guarded passes so
// tests and merlin-fuzz can prove the guard catches each failure mode. The
// zero value injects nothing; a nil *FaultInjector is safe to call.
type FaultInjector struct {
	// Pass is the exact name of the targeted pass; "*" targets every pass.
	Pass string
	// Mode is the failure to inject.
	Mode FaultMode
	// StallFor overrides how long FaultStall sleeps. Zero means four times
	// the pass budget.
	StallFor time.Duration

	fired atomic.Int64
}

// NewFaultInjector derives a deterministic injector from a seed: it picks one
// pass (from passes, defaulting to DefaultPassNames) and one failure mode.
// The same seed always targets the same pass with the same mode.
func NewFaultInjector(seed int64, passes ...string) *FaultInjector {
	if len(passes) == 0 {
		passes = DefaultPassNames()
	}
	rng := rand.New(rand.NewSource(seed))
	modes := Modes()
	return &FaultInjector{
		Pass: passes[rng.Intn(len(passes))],
		Mode: modes[rng.Intn(len(modes))],
	}
}

// Fired reports how many times the injector has triggered.
func (fi *FaultInjector) Fired() int {
	if fi == nil {
		return 0
	}
	return int(fi.fired.Load())
}

func (fi *FaultInjector) matches(pass string) bool {
	return fi != nil && fi.Mode != "" && (fi.Pass == "*" || fi.Pass == pass)
}

// Before runs inside the guarded pass ahead of the real transformation:
// FaultPanic panics, FaultStall sleeps past the budget. Other modes are
// applied to the pass output via MutateBytecode/MutateIR.
func (fi *FaultInjector) Before(pass string, budget time.Duration) {
	if !fi.matches(pass) {
		return
	}
	switch fi.Mode {
	case FaultPanic:
		fi.fired.Add(1)
		panic(fmt.Sprintf("guard: injected panic in %s", pass))
	case FaultStall:
		fi.fired.Add(1)
		d := fi.StallFor
		if d <= 0 {
			d = 4 * Budget(budget)
		}
		time.Sleep(d)
	}
}

// MutateBytecode corrupts the output of a bytecode pass according to the
// injector's mode. It returns prog unchanged when the injector does not
// target this pass or the corruption found no applicable site.
func (fi *FaultInjector) MutateBytecode(pass string, prog *ebpf.Program) *ebpf.Program {
	if !fi.matches(pass) {
		return prog
	}
	switch fi.Mode {
	case FaultCorrupt:
		// r0 ^= 0x55 right before every exit: structurally pristine,
		// observably wrong on every input and every path out.
		out := insertBeforeExits(prog, ebpf.ALU64Imm(ebpf.ALUXor, ebpf.R0, 0x55), -1)
		if out != prog {
			fi.fired.Add(1)
		}
		return out
	case FaultBadBranch:
		out := prog.Clone()
		for i, ins := range out.Insns {
			if ins.IsCondJump() || ins.IsUncondJump() {
				out.Insns[i].Offset = 0x7fff // far outside any program we build
				fi.fired.Add(1)
				return out
			}
		}
		// No branch to break: drop the final exit so the program falls off
		// the end instead.
		if n := len(out.Insns); n > 0 && out.Insns[n-1].IsExit() {
			out.Insns = out.Insns[:n-1]
			fi.fired.Add(1)
		}
		return out
	case FaultUnverifiable:
		// r0 += r9 before the first exit: the VM zero-initializes registers,
		// so execution is unchanged whenever r9 is never written — but the
		// verifier rejects the uninitialized read.
		out := insertBeforeExits(prog, ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R0, ebpf.R9), 1)
		if out != prog {
			fi.fired.Add(1)
		}
		return out
	}
	return prog
}

// insertBeforeExits returns a copy of prog with ins inserted immediately
// before up to max exit instructions (max < 0 means all of them), or prog
// itself if there is no exit or editing fails.
func insertBeforeExits(prog *ebpf.Program, ins ebpf.Instruction, max int) *ebpf.Program {
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return prog
	}
	inserted := 0
	for i := len(ed.Insns) - 1; i >= 0; i-- {
		if ed.Insns[i].IsExit() {
			ed.InsertBefore(i, ins)
			inserted++
			if max >= 0 && inserted >= max {
				break
			}
		}
	}
	if inserted == 0 {
		return prog
	}
	out, err := ed.Finalize()
	if err != nil {
		return prog
	}
	return out
}

// MutateIR corrupts a post-pass IR module in place according to the
// injector's mode.
func (fi *FaultInjector) MutateIR(pass string, mod *ir.Module) {
	if !fi.matches(pass) {
		return
	}
	switch fi.Mode {
	case FaultCorrupt:
		// Route every returned value through an xor: well-formed IR,
		// different observable result on every path out.
		n := 0
		for _, f := range mod.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.OpRet || len(in.Args) != 1 || in.Args[0].Type() != ir.I64 {
						continue
					}
					inj := &ir.Instr{
						Name: fmt.Sprintf("guard_inject_%d", n), Op: ir.OpBin, Bin: ir.Xor, Ty: ir.I64,
						Args: []ir.Value{in.Args[0], ir.ConstInt(ir.I64, 0x55)}, Parent: b,
					}
					insertBeforeTerminator(b, inj)
					in.Args[0] = inj
					n++
				}
			}
		}
		if n > 0 {
			fi.fired.Add(1)
		}
	case FaultBadBranch:
		// Chop the entry block's terminator: ir.Validate must refuse this.
		for _, f := range mod.Funcs {
			if len(f.Blocks) == 0 {
				continue
			}
			b := f.Entry()
			if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsTerminator() {
				b.Instrs = b.Instrs[:n-1]
				fi.fired.Add(1)
				return
			}
		}
	case FaultUnverifiable:
		// Fold a load from 4KiB past a stack slot into the return value: the
		// verifier rejects the out-of-bounds stack access; under the VM both
		// programs fault identically or the diff check reports divergence.
		ret, blk := findRet(mod)
		if ret == nil {
			return
		}
		base := findAlloca(blk.Fn)
		if base == nil {
			return
		}
		gep := &ir.Instr{Name: "guard_oob_p", Op: ir.OpGEP, Args: []ir.Value{base, ir.ConstInt(ir.I64, 4096)}, Parent: blk}
		ld := &ir.Instr{Name: "guard_oob", Op: ir.OpLoad, Ty: ir.I64, Align: 8, Args: []ir.Value{gep}, Parent: blk}
		inj := &ir.Instr{Name: "guard_oob_x", Op: ir.OpBin, Bin: ir.Xor, Ty: ir.I64, Args: []ir.Value{ret.Args[0], ld}, Parent: blk}
		insertBeforeTerminator(blk, gep, ld, inj)
		ret.Args[0] = inj
		fi.fired.Add(1)
	}
}

// findRet returns the first ret instruction carrying an i64-typed value.
func findRet(mod *ir.Module) (*ir.Instr, *ir.Block) {
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpRet && len(in.Args) == 1 && in.Args[0].Type() == ir.I64 {
					return in, b
				}
			}
		}
	}
	return nil, nil
}

// findAlloca returns the first entry-block alloca of f, or nil.
func findAlloca(f *ir.Function) *ir.Instr {
	if f == nil || len(f.Blocks) == 0 {
		return nil
	}
	for _, in := range f.Entry().Instrs {
		if in.Op == ir.OpAlloca {
			return in
		}
	}
	return nil
}

// insertBeforeTerminator splices instrs ahead of b's terminator.
func insertBeforeTerminator(b *ir.Block, instrs ...*ir.Instr) {
	n := len(b.Instrs)
	term := b.Instrs[n-1]
	b.Instrs = append(b.Instrs[:n-1], append(instrs, term)...)
}
