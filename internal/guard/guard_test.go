package guard

import (
	"errors"
	"strings"
	"testing"
	"time"

	"merlin/internal/ebpf"
	"merlin/internal/ir"
)

func TestExecCleanRun(t *testing.T) {
	ran := false
	if f := Exec("p", "bytecode", 0, func() error { ran = true; return nil }); f != nil {
		t.Fatalf("clean run reported failure: %v", f)
	}
	if !ran {
		t.Fatal("fn did not run")
	}
}

func TestExecContainsPanic(t *testing.T) {
	f := Exec("p", "ir", 0, func() error { panic("boom") })
	if f == nil || f.Kind != FailPanic {
		t.Fatalf("want panic failure, got %v", f)
	}
	if !strings.Contains(f.Detail, "boom") || f.Stack == "" {
		t.Fatalf("panic record incomplete: %+v", f)
	}
	if f.Pass != "p" || f.Tier != "ir" {
		t.Fatalf("wrong attribution: %+v", f)
	}
}

func TestExecReportsError(t *testing.T) {
	f := Exec("p", "bytecode", 0, func() error { return errors.New("nope") })
	if f == nil || f.Kind != FailError || f.Detail != "nope" {
		t.Fatalf("want error failure, got %v", f)
	}
}

func TestExecEnforcesTimeout(t *testing.T) {
	start := time.Now()
	f := Exec("p", "bytecode", 20*time.Millisecond, func() error {
		time.Sleep(2 * time.Second)
		return nil
	})
	if f == nil || f.Kind != FailTimeout {
		t.Fatalf("want timeout failure, got %v", f)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout did not cut the wait short")
	}
}

// tinyProg builds a minimal structurally valid program with one branch.
func tinyProg() *ebpf.Program {
	return &ebpf.Program{
		Name: "tiny", Hook: ebpf.HookTracepoint, MCPU: 2,
		Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R0, 1),
			ebpf.JumpImm(ebpf.JumpEq, ebpf.R0, 0, 1),
			ebpf.Mov64Imm(ebpf.R0, 7),
			ebpf.Exit(),
		},
	}
}

func TestValidateProgramAcceptsWellFormed(t *testing.T) {
	if err := ValidateProgram(tinyProg()); err != nil {
		t.Fatalf("well-formed program rejected: %v", err)
	}
}

func TestValidateProgramRejections(t *testing.T) {
	empty := &ebpf.Program{Name: "empty"}
	if err := ValidateProgram(empty); err == nil {
		t.Error("empty program accepted")
	}

	fallsOff := tinyProg()
	fallsOff.Insns = fallsOff.Insns[:len(fallsOff.Insns)-1]
	if err := ValidateProgram(fallsOff); err == nil {
		t.Error("program falling off the end accepted")
	}

	badBranch := tinyProg()
	badBranch.Insns[1].Offset = 0x7fff
	if err := ValidateProgram(badBranch); err == nil {
		t.Error("out-of-range branch accepted")
	}
}

func TestInputsDeterministicAndHookShaped(t *testing.T) {
	a := Inputs(ebpf.HookXDP, 8, 3)
	b := Inputs(ebpf.HookXDP, 8, 3)
	if len(a) != 8 {
		t.Fatalf("want 8 inputs, got %d", len(a))
	}
	for i := range a {
		if string(a[i].Pkt) != string(b[i].Pkt) || string(a[i].Ctx) != string(b[i].Ctx) {
			t.Fatalf("input %d not deterministic", i)
		}
		if a[i].Pkt == nil {
			t.Fatalf("XDP input %d has no packet", i)
		}
	}
	tp := Inputs(ebpf.HookTracepoint, 4, 3)
	for i := range tp {
		if tp[i].Pkt != nil || len(tp[i].Ctx) != 64 {
			t.Fatalf("tracepoint input %d malformed", i)
		}
	}
}

func TestDiffProgramsCatchesDivergence(t *testing.T) {
	pre := tinyProg()
	inputs := Inputs(ebpf.HookTracepoint, 4, 9)
	if err := DiffPrograms(pre, pre.Clone(), inputs); err != nil {
		t.Fatalf("identical programs diverged: %v", err)
	}
	post := pre.Clone()
	post.Insns[2] = ebpf.Mov64Imm(ebpf.R0, 8)
	if err := DiffPrograms(pre, post, inputs); err == nil {
		t.Fatal("semantic change not caught")
	}
}

func TestFaultInjectorDeterminismAndSafety(t *testing.T) {
	a, b := NewFaultInjector(42), NewFaultInjector(42)
	if a.Pass != b.Pass || a.Mode != b.Mode {
		t.Fatalf("injector not deterministic: %v/%v vs %v/%v", a.Pass, a.Mode, b.Pass, b.Mode)
	}
	var nilFI *FaultInjector
	nilFI.Before("SLM", 0) // must not panic
	if got := nilFI.MutateBytecode("SLM", tinyProg()); got == nil {
		t.Fatal("nil injector swallowed the program")
	}
	if nilFI.Fired() != 0 {
		t.Fatal("nil injector fired")
	}
}

func TestFaultInjectorBytecodeModes(t *testing.T) {
	prog := tinyProg()

	corrupt := &FaultInjector{Pass: "SLM", Mode: FaultCorrupt}
	mutated := corrupt.MutateBytecode("SLM", prog.Clone())
	if corrupt.Fired() != 1 {
		t.Fatal("corrupt did not fire")
	}
	if err := ValidateProgram(mutated); err != nil {
		t.Fatalf("corruption must stay structurally valid: %v", err)
	}
	if err := DiffPrograms(prog, mutated, Inputs(ebpf.HookTracepoint, 4, 9)); err == nil {
		t.Fatal("corruption must be observable under differential execution")
	}

	bad := &FaultInjector{Pass: "SLM", Mode: FaultBadBranch}
	broken := bad.MutateBytecode("SLM", prog.Clone())
	if bad.Fired() != 1 {
		t.Fatal("badbranch did not fire")
	}
	if err := ValidateProgram(broken); err == nil {
		t.Fatal("structural corruption must fail validation")
	}

	// Wrong pass name: untouched.
	other := &FaultInjector{Pass: "CC", Mode: FaultCorrupt}
	if got := other.MutateBytecode("SLM", prog); got != prog || other.Fired() != 0 {
		t.Fatal("injector fired on non-target pass")
	}
}

func TestFaultInjectorIRModes(t *testing.T) {
	src := `module "m"
func f(%ctx: ptr) -> i64 {
entry:
  %s = alloca 8, align 8
  store i64 %s, 3, align 8
  %v = load i64, %s, align 8
  ret %v
}
`
	parse := func() *ir.Module {
		m, err := ir.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	mod := parse()
	corrupt := &FaultInjector{Pass: "DAO", Mode: FaultCorrupt}
	corrupt.MutateIR("DAO", mod)
	if corrupt.Fired() != 1 {
		t.Fatal("IR corrupt did not fire")
	}
	if err := ir.Validate(mod); err != nil {
		t.Fatalf("IR corruption must stay well-formed: %v", err)
	}

	mod = parse()
	bad := &FaultInjector{Pass: "DAO", Mode: FaultBadBranch}
	bad.MutateIR("DAO", mod)
	if bad.Fired() != 1 {
		t.Fatal("IR badbranch did not fire")
	}
	if err := ir.Validate(mod); err == nil {
		t.Fatal("IR structural corruption must fail validation")
	}
}
