// Package guard provides pass-level fault isolation for the Merlin pipeline.
// Merlin's optimizers run between clang and bpf(), so a buggy rewrite must
// never take the build down with it: each pass executes inside a guard that
// contains panics, enforces a wall-clock budget, validates the pass output
// with cheap structural invariants and optional differential execution, and
// lets the caller roll back to the pre-pass snapshot on any failure. The
// package also ships a deterministic FaultInjector so tests and merlin-fuzz
// can prove each containment path actually fires.
package guard

import (
	"fmt"
	"runtime/debug"
	"time"
)

// FailureKind classifies how a guarded pass failed.
type FailureKind string

// The containment paths a guarded pass can trip.
const (
	// FailPanic: the pass panicked and was recovered.
	FailPanic FailureKind = "panic"
	// FailError: the pass returned an error.
	FailError FailureKind = "error"
	// FailTimeout: the pass exceeded its wall-clock budget.
	FailTimeout FailureKind = "timeout"
	// FailInvariant: the pass output broke a structural invariant
	// (encode/decode roundtrip, branch targets, CFG construction, IR
	// well-formedness, or lowering).
	FailInvariant FailureKind = "invariant"
	// FailDiff: the pass output diverged from its input under differential
	// execution on sampled inputs.
	FailDiff FailureKind = "diff"
	// FailVerifier: the final program was rejected by the simulated kernel
	// verifier (recorded by core.Build before culprit bisection).
	FailVerifier FailureKind = "verifier"
)

// PassFailure is the structured record of one contained pass failure.
type PassFailure struct {
	// Pass is the name of the offending pass ("DAO", "SLM", ...).
	Pass string
	// Tier is "ir", "bytecode", or "final" for post-pipeline failures.
	Tier string
	// Kind is the containment path that fired.
	Kind FailureKind
	// Detail is a human-readable description (panic value, invariant text,
	// first diverging input, ...).
	Detail string
	// Stack holds the recovered goroutine stack when Kind is FailPanic.
	Stack string
}

func (f PassFailure) String() string {
	return fmt.Sprintf("%s pass %s: %s: %s", f.Tier, f.Pass, f.Kind, f.Detail)
}

// DefaultTimeout is the per-pass wall-clock budget when none is configured.
const DefaultTimeout = 2 * time.Second

// Budget normalizes a configured per-pass timeout.
func Budget(timeout time.Duration) time.Duration {
	if timeout <= 0 {
		return DefaultTimeout
	}
	return timeout
}

// Exec runs fn with panic containment and a wall-clock budget. It returns nil
// when fn completes cleanly, and a PassFailure describing the containment
// otherwise. On timeout the runaway goroutine is abandoned (it may still be
// running); callers must therefore hand fn private copies of any data they
// keep using — the pipeline passes each guarded stage a clone and adopts it
// only on success.
func Exec(pass, tier string, timeout time.Duration, fn func() error) *PassFailure {
	timeout = Budget(timeout)
	done := make(chan *PassFailure, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- &PassFailure{
					Pass: pass, Tier: tier, Kind: FailPanic,
					Detail: fmt.Sprint(r), Stack: string(debug.Stack()),
				}
			}
		}()
		if err := fn(); err != nil {
			done <- &PassFailure{Pass: pass, Tier: tier, Kind: FailError, Detail: err.Error()}
			return
		}
		done <- nil
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case f := <-done:
		return f
	case <-t.C:
		return &PassFailure{
			Pass: pass, Tier: tier, Kind: FailTimeout,
			Detail: fmt.Sprintf("exceeded %v budget", timeout),
		}
	}
}
