package guard

import (
	"bytes"
	"fmt"
	"math/rand"

	"merlin/internal/analysis"
	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// ValidateProgram checks the cheap structural invariants every pass output
// must satisfy before it is allowed to replace the pre-pass program:
//
//   - the program is non-empty and cannot fall off the end
//   - it survives an encode/decode roundtrip through the wire format
//   - every branch target lands on an instruction boundary in range
//   - a control-flow graph can still be built over it
func ValidateProgram(prog *ebpf.Program) error {
	if prog == nil || len(prog.Insns) == 0 {
		return fmt.Errorf("guard: empty program")
	}
	if last := prog.Insns[len(prog.Insns)-1]; !last.Terminates() {
		return fmt.Errorf("guard: program falls off the end (%s)", ebpf.Mnemonic(last))
	}
	raw := prog.Encode()
	insns, err := ebpf.Decode(raw)
	if err != nil {
		return fmt.Errorf("guard: roundtrip decode: %w", err)
	}
	if len(insns) != len(prog.Insns) {
		return fmt.Errorf("guard: roundtrip length %d != %d", len(insns), len(prog.Insns))
	}
	re := (&ebpf.Program{Insns: insns}).Encode()
	if !bytes.Equal(raw, re) {
		return fmt.Errorf("guard: encode/decode roundtrip mismatch")
	}
	if _, err := ebpf.MakeEditable(prog); err != nil {
		return fmt.Errorf("guard: branch targets: %w", err)
	}
	if _, err := analysis.BuildCFG(prog); err != nil {
		return fmt.Errorf("guard: cfg: %w", err)
	}
	return nil
}

// Input is one sampled VM input for differential validation.
type Input struct {
	Ctx []byte
	Pkt []byte
}

// Inputs generates n deterministic sampled inputs appropriate for the hook:
// packet mixes for XDP/socket-filter programs (varying length, ethertype and
// payload), scalar argument blocks for tracepoint/kprobe programs. The same
// (hook, n, seed) always yields the same inputs.
func Inputs(hook ebpf.HookType, n int, seed int64) []Input {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Input, 0, n)
	switch hook {
	case ebpf.HookXDP, ebpf.HookSocketFilter:
		lens := []int{14, 34, 60, 64, 96, 128, 256, 640}
		for i := 0; i < n; i++ {
			pkt := make([]byte, lens[i%len(lens)])
			fill := byte(rng.Intn(256))
			for j := range pkt {
				pkt[j] = byte(j) ^ fill
			}
			if len(pkt) >= 14 {
				// Bias toward IPv4 so parse paths get exercised.
				if rng.Intn(2) == 0 {
					pkt[12], pkt[13] = 0x08, 0x00
				}
				if len(pkt) >= 34 {
					pkt[14] = 0x45
					pkt[14+9] = []byte{6, 17, 1}[rng.Intn(3)]
				}
			}
			out = append(out, Input{Ctx: vm.BuildXDPContext(len(pkt)), Pkt: pkt})
		}
	default:
		for i := 0; i < n; i++ {
			args := make([]uint64, 8)
			for j := range args {
				args[j] = rng.Uint64() >> uint(rng.Intn(33))
			}
			out = append(out, Input{Ctx: vm.TracepointContext(args...)})
		}
	}
	return out
}

// DiffPrograms executes pre and post on the sampled inputs with identical VM
// seeds and reports the first divergence in return value, error behaviour, or
// final map contents. A nil return means the programs are observationally
// equivalent on these inputs.
func DiffPrograms(pre, post *ebpf.Program, inputs []Input) error {
	if len(pre.Maps) != len(post.Maps) {
		return fmt.Errorf("guard: map count changed: %d -> %d", len(pre.Maps), len(post.Maps))
	}
	a, err := vm.New(pre, vm.Config{Seed: 7})
	if err != nil {
		return fmt.Errorf("guard: load pre: %w", err)
	}
	b, err := vm.New(post, vm.Config{Seed: 7})
	if err != nil {
		return fmt.Errorf("guard: load post: %w", err)
	}
	for i, in := range inputs {
		ra, _, errA := a.Run(in.Ctx, in.Pkt)
		rb, _, errB := b.Run(in.Ctx, in.Pkt)
		if (errA == nil) != (errB == nil) {
			return fmt.Errorf("guard: input %d: error divergence: %v vs %v", i, errA, errB)
		}
		if ra != rb {
			return fmt.Errorf("guard: input %d: result %d vs %d", i, ra, rb)
		}
	}
	for i := range pre.Maps {
		if !bytes.Equal(a.Map(i).Backing(), b.Map(i).Backing()) {
			return fmt.Errorf("guard: map %d (%s) diverged", i, pre.Maps[i].Name)
		}
	}
	return nil
}
