// The replica-loss soak: where RunFleet churns a mirror-mode fleet, this one
// exercises the placement layer specifically. A token-armed controller places
// every slot on R workers, then the harness takes a replica away twice — once
// by SIGKILL, once by one-way partition — while traffic hammers every slot
// from the driver and a background pump. The invariants audited are the
// placement tier's promises:
//
//  1. zero drops, unconditionally: with R=2 and one victim at a time, every
//     slot keeps a continuously-reachable replica, so failover must absorb
//     every fan-out for the whole outage;
//  2. self-healing: the rebalancer re-replicates every affected slot onto a
//     surviving worker through the normal gated pipeline (the completion
//     counters are mode-labeled; there is no ungated path to count);
//  3. rejoin hygiene: a healed victim's stale copies are drained, never
//     silently served;
//  4. durability: a SIGKILLed controller recovers the exact placement map
//     from its journal and routes immediately.
package soak

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"merlin/internal/chaos"
	"merlin/internal/fleet"
	"merlin/internal/journal"
	"merlin/internal/lifecycle"
	"merlin/internal/metrics"
)

// ReplicaConfig parameterizes one replica-loss soak run.
type ReplicaConfig struct {
	// Dir hosts the controller journal (required).
	Dir string
	// Seed drives controller jitter and victim choice.
	Seed int64
	// Workers is the fleet size (default 4, minimum 3: one victim must leave
	// both a surviving replica and a repair target).
	Workers int
	// Replication is the per-slot replica count (default 2).
	Replication int
	// Token is the shared control secret; every controller→worker RPC and the
	// whole soak runs authenticated (default "soak-secret").
	Token string
	// HealBudget bounds each phase's convergence wait (default 20s).
	HealBudget time.Duration
}

func (c ReplicaConfig) withDefaults() ReplicaConfig {
	if c.Workers < 3 {
		c.Workers = 4
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Token == "" {
		c.Token = "soak-secret"
	}
	if c.HealBudget <= 0 {
		c.HealBudget = 20 * time.Second
	}
	return c
}

// ReplicaReport is what one replica-loss soak observed.
type ReplicaReport struct {
	Slots                int
	Kills, Partitions    int
	Sent, Dropped        int
	Failovers            int64 // traffic chunks served by a non-primary replica
	RepairsBootstrap     int64 // repairs completed onto empty targets
	RepairsGated         int64 // repairs that paid the full canary gate
	Drains               int64 // stale copies drained off rejoined victims
	AuthFailures         int64 // must stay 0: every RPC carries the token
	ControllerRecoveries int
}

func (r *ReplicaReport) String() string {
	return fmt.Sprintf("slots=%d kills=%d partitions=%d sent=%d dropped=%d "+
		"failovers=%d repairs_bootstrap=%d repairs_gated=%d drains=%d "+
		"auth_failures=%d controller_recoveries=%d",
		r.Slots, r.Kills, r.Partitions, r.Sent, r.Dropped,
		r.Failovers, r.RepairsBootstrap, r.RepairsGated, r.Drains,
		r.AuthFailures, r.ControllerRecoveries)
}

// replicaControllerConfig tunes one controller incarnation: placement on,
// authenticated, repair pacing fast enough to converge inside a test budget.
func replicaControllerConfig(cfg ReplicaConfig, reg *metrics.Registry) fleet.Config {
	return fleet.Config{
		RPCTimeout: time.Second,
		RetryBase:  time.Millisecond, RetryMax: 20 * time.Millisecond,
		BreakerBase: 5 * time.Millisecond, BreakerMax: 100 * time.Millisecond,
		TrafficBatch: 4, VNodes: 64, CompactEvery: 64,
		Replication:   cfg.Replication,
		AuthToken:     cfg.Token,
		RepairBackoff: 2 * time.Millisecond, RepairBackoffMax: 50 * time.Millisecond,
		Seed: uint64(cfg.Seed) | 1, Metrics: reg,
	}
}

// RunReplicaLoss executes one seeded replica-loss soak and returns its
// report; any audit violation returns a non-nil error alongside whatever was
// counted so far.
func RunReplicaLoss(cfg ReplicaConfig) (*ReplicaReport, error) {
	cfg = cfg.withDefaults()
	rep := &ReplicaReport{}
	if cfg.Dir == "" {
		return rep, fmt.Errorf("replica soak: Dir is required")
	}

	// The world: N token-armed workers behind a mutable partition layer.
	lt := fleet.NewLocalTransport()
	names := make([]string, 0, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("w%d", i+1)
		lt.AddWorker(name, lifecycle.Config{ShadowRuns: 2, CanaryRuns: 2, CycleSlack: 1000})
		lt.SetToken(name, cfg.Token)
		names = append(names, name)
	}
	part := chaos.NewPartition()
	ct := fleet.WithChaos(lt, part)

	reg := metrics.New()
	journalOpts := journal.Options{SegmentBytes: 4096}
	jl, err := journal.OpenWith(cfg.Dir, journalOpts)
	if err != nil {
		return rep, fmt.Errorf("replica soak: open journal: %w", err)
	}
	defer func() {
		if jl != nil {
			jl.Close()
		}
	}()

	ctl := fleet.New(replicaControllerConfig(cfg, reg), ct)
	ctl.AttachJournal(jl)

	var cmu sync.RWMutex
	cur := ctl
	getCtl := func() *fleet.Controller {
		cmu.RLock()
		defer cmu.RUnlock()
		return cur
	}

	for _, name := range names {
		if err := getCtl().Join(name, name); err != nil {
			return rep, fmt.Errorf("replica soak: join %s: %w", name, err)
		}
	}

	// Bootstrap: three slots so each chaos phase has placements both on and
	// off the victim.
	slots := []string{"alpha", "beta", "gamma"}
	rep.Slots = len(slots)
	drive := func(c *fleet.Controller, budget int) *fleet.Rollout {
		for i := 0; i < budget; i++ {
			if done, _ := c.Step(); done {
				break
			}
		}
		return c.RolloutStatus()
	}
	for i, sl := range slots {
		if err := getCtl().Deploy(sl, fmt.Sprintf("pass:%d", 4+4*i)); err != nil {
			return rep, fmt.Errorf("replica soak: bootstrap %s: %w", sl, err)
		}
		if r := drive(getCtl(), 200); r == nil || r.Phase != fleet.PhaseDone {
			return rep, fmt.Errorf("replica soak: bootstrap rollout %s = %+v", sl, r)
		}
	}
	for sl, reps := range getCtl().Placements() {
		if len(reps) != cfg.Replication {
			return rep, fmt.Errorf("replica soak: slot %s placed on %v, want %d replicas", sl, reps, cfg.Replication)
		}
	}

	// The pump: background fan-out across every slot while the driver kills
	// and heals, so failover, repair and recovery interleave under -race.
	// Every drop is a violation — a continuously-reachable replica always
	// exists in this soak.
	var pumpSent, pumpDropped atomic.Int64
	var pumpErrMu sync.Mutex
	var pumpErr error
	getPumpErr := func() error {
		pumpErrMu.Lock()
		defer pumpErrMu.Unlock()
		return pumpErr
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := getCtl()
			for _, sl := range slots {
				tr := c.Traffic(sl, 8)
				pumpSent.Add(int64(tr.Sent))
				pumpDropped.Add(int64(tr.Dropped))
				if tr.Dropped != 0 {
					pumpErrMu.Lock()
					if pumpErr == nil {
						pumpErr = fmt.Errorf("pump: dropped %d packets for %s\n  %s",
							tr.Dropped, sl, strings.Join(c.FleetStatus().Lines(), "\n  "))
					}
					pumpErrMu.Unlock()
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	// driveTraffic fans out on every slot once, asserting zero drops.
	driveTraffic := func(c *fleet.Controller) error {
		for _, sl := range slots {
			tr := c.Traffic(sl, 16)
			rep.Sent += tr.Sent
			rep.Dropped += tr.Dropped
			if tr.Dropped != 0 {
				return fmt.Errorf("dropped %d packets for %s\n  %s",
					tr.Dropped, sl, strings.Join(c.FleetStatus().Lines(), "\n  "))
			}
		}
		return nil
	}

	// healedOff waits until no placement names the victim, every placement is
	// back to full live strength on non-victim workers, and no rollout is in
	// flight — traffic keeps flowing (and keeps being audited) throughout.
	healedOff := func(victim string) error {
		deadline := time.Now().Add(cfg.HealBudget)
		for {
			c := getCtl()
			c.Tick()
			drive(c, 50)
			if err := driveTraffic(c); err != nil {
				return err
			}
			if err := getPumpErr(); err != nil {
				return err
			}
			st := c.FleetStatus()
			converged := len(st.Placements) == len(slots) && rolloutSettled(st.Rollout)
			for _, pv := range st.Placements {
				if len(pv.Replicas) != cfg.Replication || pv.Live != cfg.Replication {
					converged = false
				}
				for _, rn := range pv.Replicas {
					if rn == victim {
						converged = false
					}
				}
			}
			if converged {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("fleet never healed off %s:\n  %s",
					victim, strings.Join(st.Lines(), "\n  "))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// victimFor picks a current replica of the slot to take away.
	victimFor := func(slot string) (string, error) {
		reps := getCtl().Placements()[slot]
		if len(reps) == 0 {
			return "", fmt.Errorf("replica soak: slot %s has no placement", slot)
		}
		return reps[0], nil
	}

	// --- Phase A: SIGKILL one replica mid-traffic. -------------------------
	victimA, err := victimFor(slots[0])
	if err != nil {
		return rep, err
	}
	lt.Kill(victimA)
	rep.Kills++
	if err := healedOff(victimA); err != nil {
		return rep, fmt.Errorf("replica soak: kill phase: %w", err)
	}

	// Heal: restart the victim with its state intact, so its stale copies
	// must be drained — rejoined workers never silently serve what the
	// placement moved away from them.
	lt.Restart(victimA, false)
	if err := getCtl().Join(victimA, victimA); err != nil {
		return rep, fmt.Errorf("replica soak: rejoin %s: %w", victimA, err)
	}
	{
		deadline := time.Now().Add(cfg.HealBudget)
		for {
			c := getCtl()
			c.Tick()
			if err := driveTraffic(c); err != nil {
				return rep, fmt.Errorf("replica soak: rejoin traffic: %w", err)
			}
			healthy := false
			for _, w := range c.FleetStatus().Workers {
				if w.Name == victimA && w.Health == fleet.Healthy {
					healthy = true
				}
			}
			stale := false
			for _, sl := range slots {
				if _, err := lt.Manager(victimA).StatusOf(sl); err == nil {
					if reps := c.Placements()[sl]; !containsName(reps, victimA) {
						stale = true // placed elsewhere yet still held here
					}
				}
			}
			if healthy && !stale {
				break
			}
			if time.Now().After(deadline) {
				return rep, fmt.Errorf("replica soak: %s rejoined but not reconciled (healthy=%v stale=%v)",
					victimA, healthy, stale)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// --- Phase B: one-way partition (requests land, replies vanish). -------
	victimB, err := victimFor(slots[1])
	if err != nil {
		return rep, err
	}
	part.Isolate(victimB, chaos.NetOneWay)
	rep.Partitions++
	if err := healedOff(victimB); err != nil {
		return rep, fmt.Errorf("replica soak: partition phase: %w", err)
	}
	part.Heal(victimB)
	{
		// The partitioned worker was never removed from the fleet: probes
		// re-admit it, reconcile drains whatever the placements moved away.
		deadline := time.Now().Add(cfg.HealBudget)
		for {
			c := getCtl()
			c.Tick()
			if err := driveTraffic(c); err != nil {
				return rep, fmt.Errorf("replica soak: post-heal traffic: %w", err)
			}
			healthy := false
			for _, w := range c.FleetStatus().Workers {
				if w.Name == victimB && w.Health == fleet.Healthy {
					healthy = true
				}
			}
			if healthy {
				break
			}
			if time.Now().After(deadline) {
				return rep, fmt.Errorf("replica soak: %s never re-admitted after heal", victimB)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// --- Phase C: the controller dies; its successor must recover the exact
	// placement map and route immediately. --------------------------------
	getCtl().Flush()
	before := getCtl().Placements()
	if err := jl.Close(); err != nil {
		return rep, fmt.Errorf("replica soak: close journal: %w", err)
	}
	jl2, err := journal.OpenWith(cfg.Dir, journalOpts)
	if err != nil {
		return rep, fmt.Errorf("replica soak: reopen journal: %w", err)
	}
	jl = jl2
	nc := fleet.New(replicaControllerConfig(cfg, reg), ct)
	nc.AttachJournal(jl2)
	rs, err := nc.Recover()
	if err != nil {
		return rep, fmt.Errorf("replica soak: controller recovery: %w", err)
	}
	if rs.Workers != len(names) || rs.Placements != len(slots) {
		return rep, fmt.Errorf("replica soak: recovered %d workers / %d placements, want %d / %d",
			rs.Workers, rs.Placements, len(names), len(slots))
	}
	for sl, want := range before {
		got := nc.Placements()[sl]
		if strings.Join(got, ",") != strings.Join(want, ",") {
			return rep, fmt.Errorf("replica soak: placement of %s drifted across recovery: %v != %v", sl, got, want)
		}
	}
	nc.Tick()
	cmu.Lock()
	cur = nc
	cmu.Unlock()
	rep.ControllerRecoveries++
	if err := driveTraffic(nc); err != nil {
		return rep, fmt.Errorf("replica soak: recovered controller: %w", err)
	}

	// --- Final audits. -----------------------------------------------------
	if err := getPumpErr(); err != nil {
		return rep, fmt.Errorf("replica soak: %w", err)
	}
	snap := reg.Snapshot()
	for k, v := range snap {
		switch {
		case strings.HasPrefix(k, "merlin_fleet_repairs_completed_total") && strings.Contains(k, "bootstrap"):
			rep.RepairsBootstrap += v
		case strings.HasPrefix(k, "merlin_fleet_repairs_completed_total") && strings.Contains(k, "gated"):
			rep.RepairsGated += v
		case k == "merlin_fleet_failovers_total":
			rep.Failovers = v
		case k == "merlin_fleet_drains_total":
			rep.Drains = v
		case k == "merlin_fleet_under_replicated":
			if v != 0 {
				return rep, fmt.Errorf("replica soak: %d slots still under-replicated at the end", v)
			}
		}
	}
	// Worker-side auth refusals live in each worker's registry.
	for _, name := range names {
		rep.AuthFailures += lt.AuthFailures(name)
	}
	if rep.AuthFailures != 0 {
		return rep, fmt.Errorf("replica soak: %d authenticated RPCs were refused", rep.AuthFailures)
	}
	// Both outages forced at least one repair each, and every completion went
	// through the pipeline: the two mode labels are the only completion
	// counters that exist — there is no ungated path to have taken.
	if rep.RepairsBootstrap+rep.RepairsGated < 2 {
		return rep, fmt.Errorf("replica soak: only %d repairs completed, want >= 2 (one per outage)",
			rep.RepairsBootstrap+rep.RepairsGated)
	}
	if rep.Failovers == 0 {
		return rep, fmt.Errorf("replica soak: no traffic ever failed over — the outages were not exercised")
	}
	rep.Sent += int(pumpSent.Load())
	rep.Dropped += int(pumpDropped.Load())
	return rep, nil
}

func containsName(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
