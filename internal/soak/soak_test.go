package soak

import (
	"os"
	"strconv"
	"testing"

	"merlin/internal/journal"
)

// envInt lets ci.sh scale the soak (MERLIN_SOAK_OPS, MERLIN_SOAK_SEEDS)
// without a custom flag plumbing through `go test`.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestChaosSoak is the headline acceptance test: seeded storage faults at
// every journal I/O site, concurrent traffic under -race, and afterwards a
// full recovery audit including the truncation-prefix sweep. Run across
// several seeds and both fsync policies that matter.
func TestChaosSoak(t *testing.T) {
	ops := envInt("MERLIN_SOAK_OPS", 300)
	seeds := envInt("MERLIN_SOAK_SEEDS", 3)
	for _, pol := range []struct {
		name   string
		policy journal.Policy
	}{
		{"sync", journal.Policy{Mode: journal.ModeSync}},
		{"group", journal.Policy{Mode: journal.ModeGroup}},
		{"async", journal.Policy{Mode: journal.ModeAsync}},
	} {
		for seed := 1; seed <= seeds; seed++ {
			t.Run(pol.name+"/seed"+strconv.Itoa(seed), func(t *testing.T) {
				dir := t.TempDir()
				rep, err := Run(Config{
					Dir:       dir,
					Seed:      int64(seed * 7919),
					FaultRate: 0.01,
					Ops:       ops,
					Policy:    pol.policy,
				})
				if err != nil {
					t.Fatalf("soak: %v", err)
				}
				t.Logf("soak report: %s", rep)
				if rep.ServeFailures != 0 {
					t.Fatalf("incumbent stopped serving %d times; first: %s", rep.ServeFailures, rep.FirstServeErr)
				}
				if rep.Serves == 0 {
					t.Fatal("soak served nothing; harness broken")
				}
				if _, err := VerifyRecovery(dir); err != nil {
					t.Fatalf("post-soak recovery inconsistent: %v", err)
				}
				if err := SweepPrefixes(dir, 6); err != nil {
					t.Fatalf("prefix sweep: %v", err)
				}
			})
		}
	}
}

// TestSoakGroupCommitBatches is the group-commit acceptance half, run
// fault-free so the fsync arithmetic is deterministic: fewer fsyncs than
// appended records, while stage transitions still fsync individually.
func TestSoakGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	// Big segments: rotation fsyncs (each rollover syncs the old segment's
	// tail) would otherwise drown the steady-state batching this test is
	// measuring.
	rep, err := Run(Config{
		Dir:          dir,
		Seed:         42,
		Ops:          envInt("MERLIN_SOAK_OPS", 300),
		Policy:       journal.Policy{Mode: journal.ModeGroup},
		SegmentBytes: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak report: %s", rep)
	if rep.ServeFailures != 0 {
		t.Fatalf("serving failed without faults: %s", rep.FirstServeErr)
	}
	j := rep.Journal
	if j.Appends == 0 {
		t.Fatal("no appends; churn broken")
	}
	if j.Fsyncs >= j.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", j.Fsyncs, j.Appends)
	}
	if j.ForcedFsyncs == 0 {
		t.Fatal("no forced fsyncs: stage transitions lost their individual durability")
	}
	if rep.EndDegraded {
		t.Fatalf("degraded with no faults injected: %+v", rep.Health)
	}
	if _, err := VerifyRecovery(dir); err != nil {
		t.Fatal(err)
	}
}

// TestSoakRotationUnderChurn: the 2KiB segment bound must actually rotate
// under churn, and the sweep must hold across segment boundaries.
func TestSoakRotationUnderChurn(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(Config{
		Dir:          dir,
		Seed:         7,
		Ops:          envInt("MERLIN_SOAK_OPS", 300),
		SegmentBytes: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak report: %s", rep)
	if rep.Journal.Rotations == 0 {
		t.Fatalf("no segment rotations with 1KiB segments: %+v", rep.Journal)
	}
	if err := SweepPrefixes(dir, 4); err != nil {
		t.Fatalf("multi-segment prefix sweep: %v", err)
	}
}
