// Package soak is the storage-chaos soak harness: it drives a lifecycle
// manager through deploy / promote / rollback / traffic churn while a
// seeded chaos.Injector fires ENOSPC, EIO and torn writes at every journal
// I/O site, then audits the wreckage. The three invariants it exists to
// check, matching the durability contract documented in DESIGN.md §12:
//
//  1. the incumbent never stops serving — not one Serve call may fail, no
//     matter what storage does;
//  2. nothing panics, under -race, with concurrent traffic workers;
//  3. whatever bytes survive on disk, Recover yields a consistent (possibly
//     older, never corrupt) state — including on every truncation prefix of
//     the surviving journal segments.
//
// The harness is a plain library so tests and ci.sh drive it with their own
// budgets; it performs the churn and reports, the caller asserts.
package soak

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"merlin/internal/chaos"
	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/helpers"
	"merlin/internal/journal"
	"merlin/internal/lifecycle"
	"merlin/internal/metrics"
	"merlin/internal/vm"
)

// Config parameterizes one soak run.
type Config struct {
	// Dir is the state directory (required).
	Dir string
	// Seed drives both the fault plan and the churn schedule — the same seed
	// replays the same soak.
	Seed int64
	// FaultRate is the per-operation fault probability (0.01 = 1%).
	FaultRate float64
	// Ops is the churn-loop length (default 400).
	Ops int
	// Workers is the count of concurrent traffic goroutines hammering Serve
	// while the churn loop mutates state (default 2).
	Workers int
	// Policy / SegmentBytes configure the journal under test (defaults: the
	// sync-every-record policy, 2KiB segments so rotation actually happens).
	Policy       journal.Policy
	SegmentBytes int64
	// Slots are the program slots to churn (default "alpha", "beta").
	Slots []string
}

// Report is what one soak run observed.
type Report struct {
	// Serves counts successful Serve calls (workers + churn loop);
	// ServeFailures MUST be 0 — any failure means the incumbent stopped
	// serving, the one thing the lifecycle tier promises never happens.
	Serves        uint64
	ServeFailures uint64
	// FirstServeErr is the first serving failure, for the postmortem.
	FirstServeErr string
	// Churn-op counts.
	Deploys, Promotes, Rollbacks, Flushes, Compacts int
	// StartupDegraded reports that journal.Open itself failed and the run
	// began in-memory; EndDegraded is the health state at the end.
	StartupDegraded bool
	EndDegraded     bool
	Health          lifecycle.JournalHealth
	// Journal is the journal's own accounting (zero when the journal never
	// attached); Injector is what the fault plan actually did.
	Journal  journal.Stats
	Injector chaos.Stats
}

func (r *Report) String() string {
	return fmt.Sprintf("serves=%d serve_failures=%d deploys=%d promotes=%d rollbacks=%d "+
		"appends=%d fsyncs=%d forced_fsyncs=%d rotations=%d segments=%d wedge_repairs=%d "+
		"injected=%d torn=%d degraded=%v reattaches=%d",
		r.Serves, r.ServeFailures, r.Deploys, r.Promotes, r.Rollbacks,
		r.Journal.Appends, r.Journal.Fsyncs, r.Journal.ForcedFsyncs, r.Journal.Rotations,
		r.Journal.Segments, r.Journal.WedgeRepairs,
		r.Injector.Injected, r.Injector.TornWrites, r.EndDegraded, r.Health.Reattaches)
}

// splitmix64 is the churn PRNG — self-contained so the soak never depends
// on math/rand ordering across Go versions.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// countProg counts every packet into slot 0 of an array map and returns
// XDP_PASS(2): the soak's workload program, chosen so recovery consistency
// is observable as map state and the incumbent verdict is a constant the
// workers can assert.
func countProg(name string) *ebpf.Program {
	return &ebpf.Program{
		Name: name,
		Hook: ebpf.HookXDP,
		Insns: []ebpf.Instruction{
			ebpf.Mov64Imm(ebpf.R6, 0),
			ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R6),
			ebpf.LoadMapPtr(ebpf.R1, 0),
			ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
			ebpf.Call(helpers.MapLookupElem),
			ebpf.JumpImm(ebpf.JumpEq, ebpf.R0, 0, 2),
			ebpf.Mov64Imm(ebpf.R1, 1),
			ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R0, 0, ebpf.R1),
			ebpf.Mov64Imm(ebpf.R0, 2),
			ebpf.Exit(),
		},
		Maps: []ebpf.MapSpec{{Name: "cnt", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 1}},
	}
}

func source(gen int) lifecycle.Source {
	return func() (*core.Result, error) {
		return &core.Result{Prog: countProg(fmt.Sprintf("soak-g%d", gen))}, nil
	}
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 400
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 2 << 10
	}
	if len(c.Slots) == 0 {
		c.Slots = []string{"alpha", "beta"}
	}
	return c
}

// Run executes one soak and returns its report. The error return covers
// harness-level problems (bad config, initial deploy impossible); invariant
// violations are in the Report for the caller to assert on.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("soak: Config.Dir required")
	}
	rep := &Report{}
	inj := chaos.Wrap(chaos.OS(), chaos.NewRate(cfg.Seed, cfg.FaultRate, chaos.EIO, chaos.ENOSPC, chaos.Torn))
	inj.SlowDelay = 0

	// Open the journal through the injector; the open path itself is a fault
	// surface, so a few retries, then start degraded like merlind would.
	var jl *journal.Log
	var jerr error
	for attempt := 0; attempt < 5 && jl == nil; attempt++ {
		jl, jerr = journal.OpenWith(cfg.Dir, journal.Options{
			FS: inj, SegmentBytes: cfg.SegmentBytes, Policy: cfg.Policy,
		})
	}
	m := lifecycle.NewManager(lifecycle.Config{
		ShadowRuns:          3,
		CanaryRuns:          3,
		Journal:             jl, // nil when every open attempt faulted
		Metrics:             metrics.New(),
		CompactEvery:        32,
		JournalDegradeAfter: 2,
		JournalRetryBase:    time.Millisecond,
		JournalRetryMax:     10 * time.Millisecond,
	})
	if jl == nil {
		rep.StartupDegraded = true
		m.MarkJournalUnavailable(jerr.Error())
	}

	for _, name := range cfg.Slots {
		if err := m.DeployWith(name, source(0), lifecycle.DeployOptions{SourceDesc: name}); err != nil {
			return nil, fmt.Errorf("soak: initial deploy %s: %w", name, err)
		}
	}

	// Traffic workers: concurrent Serve pressure for the whole churn window.
	serveOnce := func(slot string, b byte) {
		pkt := make([]byte, 64)
		pkt[0] = b
		rv, _, err := m.Serve(slot, vm.BuildXDPContext(len(pkt)), pkt)
		if err != nil || rv != 2 {
			if atomic.AddUint64(&rep.ServeFailures, 1) == 1 {
				rep.FirstServeErr = fmt.Sprintf("slot %s: rv=%d err=%v", slot, rv, err)
			}
			return
		}
		atomic.AddUint64(&rep.Serves, 1)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := splitmix64(cfg.Seed ^ int64(w+1)*0x5851f42d)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := rng.next()
				serveOnce(cfg.Slots[r%uint64(len(cfg.Slots))], byte(r>>8))
			}
		}(w)
	}

	// The churn loop: mostly traffic, with deploys, promotions, rollbacks,
	// flushes, ticks and compactions sprinkled in on the seeded schedule.
	rng := splitmix64(cfg.Seed)
	gen := 1
	for i := 0; i < cfg.Ops; i++ {
		r := rng.next()
		slot := cfg.Slots[(r>>32)%uint64(len(cfg.Slots))]
		switch v := r % 100; {
		case v < 8:
			gen++
			_ = m.DeployWith(slot, source(gen), lifecycle.DeployOptions{SourceDesc: slot})
			rep.Deploys++
		case v < 14:
			if m.Promote(slot, v < 11) == nil {
				rep.Promotes++
			}
		case v < 16:
			if m.Rollback(slot) == nil {
				rep.Rollbacks++
			}
		case v < 24:
			_ = m.Flush() // steady-state map drift: the group-commit workload
			rep.Flushes++
		case v < 26:
			m.Tick()
		case v < 28:
			m.Compact()
			rep.Compacts++
		default:
			serveOnce(slot, byte(r>>16))
		}
	}
	close(stop)
	wg.Wait()

	_ = m.Flush()
	rep.Health = m.JournalHealth()
	rep.EndDegraded = rep.Health.Degraded
	rep.Injector = inj.Stats()
	if jl != nil {
		rep.Journal = jl.Stats()
		_ = jl.Close()
	}
	return rep, nil
}

// VerifyRecovery opens dir fault-free, recovers, and proves the result
// consistent: Recover must not error, and every recovered slot must serve
// the incumbent verdict. An empty recovery (all state lost) is consistent —
// older state always is; corrupt state never.
func VerifyRecovery(dir string) (lifecycle.RecoverStats, error) {
	jl, err := journal.Open(dir)
	if err != nil {
		return lifecycle.RecoverStats{}, fmt.Errorf("soak: verify open: %w", err)
	}
	defer jl.Close()
	m := lifecycle.NewManager(lifecycle.Config{Journal: jl})
	rs, err := m.Recover()
	if err != nil {
		return rs, fmt.Errorf("soak: recover: %w", err)
	}
	for _, name := range m.Slots() {
		pkt := make([]byte, 64)
		rv, _, err := m.Serve(name, vm.BuildXDPContext(len(pkt)), pkt)
		if err != nil || rv != 2 {
			return rs, fmt.Errorf("soak: recovered slot %s does not serve: rv=%d err=%v", name, rv, err)
		}
	}
	return rs, nil
}

// survivingSegments lists dir's journal segment files in replay order.
func survivingSegments(dir string) ([]string, error) {
	return journal.SegmentFiles(dir)
}

// SweepPrefixes replays the crash at every point of the surviving byte
// stream: for each segment and a set of truncation offsets within it, it
// builds a copy of the state dir holding exactly the stream's prefix (whole
// earlier segments, the truncated one, no later ones) and requires
// VerifyRecovery to pass on it. samplesPerSegment bounds the offsets tried
// per segment (boundary cases 0 and full size are always included).
func SweepPrefixes(dir string, samplesPerSegment int) error {
	if samplesPerSegment < 2 {
		samplesPerSegment = 2
	}
	segs, err := survivingSegments(dir)
	if err != nil {
		return err
	}
	scratch, err := os.MkdirTemp("", "soak-sweep-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	snap, _ := os.ReadFile(filepath.Join(dir, "snapshot.db"))
	caseNum := 0
	for k, seg := range segs {
		data, err := os.ReadFile(filepath.Join(dir, seg))
		if err != nil {
			return err
		}
		for s := 0; s < samplesPerSegment; s++ {
			cut := int64(len(data)) * int64(s) / int64(samplesPerSegment-1)
			caseDir := filepath.Join(scratch, fmt.Sprintf("case-%03d", caseNum))
			caseNum++
			if err := os.MkdirAll(caseDir, 0o755); err != nil {
				return err
			}
			if snap != nil {
				if err := os.WriteFile(filepath.Join(caseDir, "snapshot.db"), snap, 0o644); err != nil {
					return err
				}
			}
			for _, prev := range segs[:k] {
				b, err := os.ReadFile(filepath.Join(dir, prev))
				if err != nil {
					return err
				}
				if err := os.WriteFile(filepath.Join(caseDir, prev), b, 0o644); err != nil {
					return err
				}
			}
			if err := os.WriteFile(filepath.Join(caseDir, seg), data[:cut], 0o644); err != nil {
				return err
			}
			if _, err := VerifyRecovery(caseDir); err != nil {
				return fmt.Errorf("prefix %s truncated to %d bytes (case %d): %w", seg, cut, caseNum-1, err)
			}
			os.RemoveAll(caseDir)
		}
	}
	return nil
}
