package soak

import (
	"testing"
)

// TestReplicaLossSoak runs the seeded replica-loss soak: a token-armed
// placement fleet (R=2) loses one replica to SIGKILL and one to a one-way
// partition while traffic hammers every slot, then the controller itself is
// SIGKILLed and recovered. RunReplicaLoss returns an error on any audit
// violation — a single dropped fan-out, a placement left under-replicated,
// an unrepaired slot, a stale copy served after rejoin, a placement drifting
// across controller recovery — so the test asserts the run was eventful.
func TestReplicaLossSoak(t *testing.T) {
	rep, err := RunReplicaLoss(ReplicaConfig{Dir: t.TempDir(), Seed: 1})
	if err != nil {
		t.Fatalf("replica soak: %v\nreport: %s", err, rep)
	}
	t.Logf("replica soak: %s", rep)
	if rep.Dropped != 0 {
		t.Fatalf("replica soak dropped packets: %s", rep)
	}
	if rep.Kills != 1 || rep.Partitions != 1 || rep.ControllerRecoveries != 1 {
		t.Fatalf("soak skipped a chaos phase: %s", rep)
	}
	if rep.Failovers == 0 || rep.RepairsBootstrap+rep.RepairsGated < 2 {
		t.Fatalf("soak was not eventful: %s", rep)
	}
}

// TestReplicaLossSoakSeeds varies controller jitter and ring layout across
// seeds; every seed must hold the same zero-drop and self-heal audits.
func TestReplicaLossSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for _, seed := range []int64{2, 5} {
		rep, err := RunReplicaLoss(ReplicaConfig{Dir: t.TempDir(), Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v\nreport: %s", seed, err, rep)
		}
		t.Logf("seed %d: %s", seed, rep)
	}
}
