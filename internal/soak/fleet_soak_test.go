package soak

import (
	"testing"
)

// TestFleetSoak runs the seeded fleet soak: rolling deploys and traffic
// against workers being killed, partitioned and restarted, with the
// controller itself SIGKILLed and journal-recovered mid-run. RunFleet
// returns an error on any audit violation — no drop while a reachable
// worker holds the program, no divergent promotion,
// journal-replays-to-observed-state — so the test just asserts the run was
// actually eventful.
func TestFleetSoak(t *testing.T) {
	rep, err := RunFleet(FleetConfig{Dir: t.TempDir(), Seed: 1, Rounds: 40})
	if err != nil {
		t.Fatalf("fleet soak: %v\nreport: %s", err, rep)
	}
	t.Logf("fleet soak: %s", rep)
	if rep.Sent == 0 || rep.Deploys < 3 {
		t.Fatalf("soak was not eventful: %s", rep)
	}
	if rep.Kills == 0 && rep.Partitions == 0 {
		t.Fatalf("no chaos was injected: %s", rep)
	}
	if rep.ControllerRecoveries == 0 {
		t.Fatalf("controller was never killed: %s", rep)
	}
}

// TestFleetSoakSeeds varies the schedule: different seeds walk different
// kill/partition/deploy interleavings through the same audits.
func TestFleetSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for _, seed := range []int64{2, 3} {
		rep, err := RunFleet(FleetConfig{Dir: t.TempDir(), Seed: seed, Rounds: 25})
		if err != nil {
			t.Fatalf("seed %d: %v\nreport: %s", seed, err, rep)
		}
		t.Logf("seed %d: %s", seed, rep)
	}
}
