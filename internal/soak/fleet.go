// The fleet half of the soak package: where RunSoak hammers one manager's
// storage, RunFleet hammers the whole control plane. A controller drives N
// in-process workers through rolling deploys and traffic fan-out while a
// seeded schedule kills workers, imposes one-way partitions, injects random
// network faults into control RPCs, and SIGKILLs the controller itself —
// then audits the invariants the fleet tier promises:
//
//  1. no slot is lost: every traffic fan-out lands somewhere as long as one
//     reachable worker holds the program (a drop is tolerated only during a
//     total outage — every holder killed or partitioned at once);
//  2. no divergent program is promoted anywhere the controller routes to,
//     and the catalog never blesses one;
//  3. the controller journal replays to the observed fleet state: a cold
//     recovery at the end reconciles with zero corrective pushes.
//
// Like RunSoak this is a plain library: tests and ci.sh drive it with their
// own budgets, the harness churns and reports, the caller asserts.
package soak

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"merlin/internal/chaos"
	"merlin/internal/fleet"
	"merlin/internal/journal"
	"merlin/internal/lifecycle"
	"merlin/internal/metrics"
	"merlin/internal/vm"
)

// FleetConfig parameterizes one fleet soak run.
type FleetConfig struct {
	// Dir hosts the controller journal (required).
	Dir string
	// Seed drives the churn schedule and every chaos plan.
	Seed int64
	// Rounds is the churn-loop length (default 60).
	Rounds int
	// Workers is the fleet size (default 3, minimum 3 — the no-route-lost
	// audit needs a worker to usually remain behind one kill plus one
	// partition).
	Workers int
	// TrafficPerRound is the per-slot fan-out the driver sends each round
	// (default 24); a background pump adds more concurrently.
	TrafficPerRound int
	// ControllerKillEvery SIGKILLs and journal-recovers the controller every
	// this many rounds (default 20; negative disables).
	ControllerKillEvery int
	// FaultRate is the probability of a random network fault per control RPC
	// (default 0.02). Traffic RPCs are exempt: the zero-drop audit must fail
	// only on routing bugs, never on every replica being faulted at once.
	FaultRate float64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Rounds <= 0 {
		c.Rounds = 60
	}
	if c.Workers < 3 {
		c.Workers = 3
	}
	if c.TrafficPerRound <= 0 {
		c.TrafficPerRound = 24
	}
	if c.ControllerKillEvery == 0 {
		c.ControllerKillEvery = 20
	}
	if c.FaultRate == 0 {
		c.FaultRate = 0.02
	}
	if c.FaultRate < 0 {
		c.FaultRate = 0
	}
	return c
}

// FleetReport is what one fleet soak observed.
type FleetReport struct {
	Rounds  int
	Deploys int
	// Rollout outcomes witnessed (a rollout may span rounds).
	RolloutsDone, RolloutsFailed int
	// Chaos actions taken.
	Kills, Restarts, Partitions, Heals int
	ControllerRecoveries               int
	// Traffic totals across driver and pump. Dropped counts packets lost
	// during a total outage — every worker holding the program unreachable —
	// which is the only circumstance a drop is not an audit violation.
	Sent, Rerouted, Dropped int
	// Network-fault accounting from the chaos transport.
	NetRPCs, NetFaults int
}

func (r *FleetReport) String() string {
	return fmt.Sprintf("rounds=%d deploys=%d rollouts_done=%d rollouts_failed=%d "+
		"kills=%d restarts=%d partitions=%d heals=%d controller_recoveries=%d "+
		"sent=%d rerouted=%d dropped=%d net_rpcs=%d net_faults=%d",
		r.Rounds, r.Deploys, r.RolloutsDone, r.RolloutsFailed,
		r.Kills, r.Restarts, r.Partitions, r.Heals, r.ControllerRecoveries,
		r.Sent, r.Rerouted, r.Dropped, r.NetRPCs, r.NetFaults)
}

// controlOnly applies its inner fault plan to control-verb RPCs only,
// letting traffic fan-out through untouched.
type controlOnly struct{ inner chaos.NetPlan }

func (p controlOnly) NextNet(worker, verb string) chaos.NetFault {
	f := p.inner.NextNet(worker, verb) // always consult: seeded plans stay deterministic
	if verb == "traffic" {
		return chaos.NetNone
	}
	return f
}

// gatedPlan switches its inner plan on and off, so bootstrap and the final
// quiesce run fault-free while the churn loop runs under fire.
type gatedPlan struct {
	mu    sync.Mutex
	on    bool
	inner chaos.NetPlan
}

func (g *gatedPlan) set(on bool) {
	g.mu.Lock()
	g.on = on
	g.mu.Unlock()
}

func (g *gatedPlan) NextNet(worker, verb string) chaos.NetFault {
	f := g.inner.NextNet(worker, verb)
	g.mu.Lock()
	on := g.on
	g.mu.Unlock()
	if !on {
		return chaos.NetNone
	}
	return f
}

// fleetSrc picks the next source descriptor: mostly distinct pass:N
// versions, with a divergent drop:* every 4th deploy and an unbuildable
// bad:* every 9th, so halts fire at both the canary gate and the deploy.
func fleetSrc(v int) string {
	switch {
	case v%4 == 3:
		return fmt.Sprintf("drop:%d", 4+v%13)
	case v%9 == 7:
		return fmt.Sprintf("bad:%d", v)
	default:
		return fmt.Sprintf("pass:%d", 4+4*(v%13))
	}
}

func rolloutSettled(r *fleet.Rollout) bool {
	return r == nil || r.Phase == fleet.PhaseDone || r.Phase == fleet.PhaseFailed
}

// groundTruth is the soak's own record of which workers are physically
// unreachable — the killed one and the partitioned one — versioned so a
// traffic audit can tell whether the world changed under it mid-fan-out.
type groundTruth struct {
	mu      sync.Mutex
	version int
	killed  string
	parted  string
}

func (g *groundTruth) set(killed, parted string) {
	g.mu.Lock()
	g.version++
	g.killed, g.parted = killed, parted
	g.mu.Unlock()
}

func (g *groundTruth) snapshot() (int, string, string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.version, g.killed, g.parted
}

// fleetSoakControllerConfig is the controller tuning shared by every
// controller incarnation in one run — short timers so breakers and probes
// cycle within the test budget.
func fleetSoakControllerConfig(seed int64, reg *metrics.Registry) fleet.Config {
	return fleet.Config{
		RPCTimeout: time.Second,
		RetryBase:  time.Millisecond, RetryMax: 20 * time.Millisecond,
		BreakerBase: 5 * time.Millisecond, BreakerMax: 100 * time.Millisecond,
		TrafficBatch: 4, VNodes: 16, CompactEvery: 64,
		Seed: uint64(seed) | 1, Metrics: reg,
	}
}

// RunFleet executes one seeded fleet soak and returns its report; any audit
// violation returns a non-nil error alongside whatever was counted so far.
func RunFleet(cfg FleetConfig) (*FleetReport, error) {
	cfg = cfg.withDefaults()
	rep := &FleetReport{}
	if cfg.Dir == "" {
		return rep, fmt.Errorf("fleet soak: Dir is required")
	}

	// The world: N in-process workers behind a chaos transport layering a
	// mutable partition set over gated random control-RPC faults.
	lt := fleet.NewLocalTransport()
	names := make([]string, 0, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("w%d", i+1)
		lt.AddWorker(name, lifecycle.Config{ShadowRuns: 2, CanaryRuns: 2, CycleSlack: 1000})
		names = append(names, name)
	}
	part := chaos.NewPartition()
	gate := &gatedPlan{inner: controlOnly{chaos.NewNetRate(cfg.Seed+1, cfg.FaultRate,
		chaos.NetOneWay, chaos.NetDup, chaos.NetDrop, chaos.NetReset)}}
	ct := fleet.WithChaos(lt, chaos.NetChain{part, gate})
	ct.Delay = time.Millisecond

	reg := metrics.New()
	journalOpts := journal.Options{SegmentBytes: 4096}
	jl, err := journal.OpenWith(cfg.Dir, journalOpts)
	if err != nil {
		return rep, fmt.Errorf("fleet soak: open journal: %w", err)
	}
	defer func() {
		if jl != nil {
			jl.Close()
		}
	}()

	ctl := fleet.New(fleetSoakControllerConfig(cfg.Seed, reg), ct)
	ctl.AttachJournal(jl)

	// cur is the live controller; the crash/recover path swaps it.
	var cmu sync.RWMutex
	cur := ctl
	getCtl := func() *fleet.Controller {
		cmu.RLock()
		defer cmu.RUnlock()
		return cur
	}

	for _, name := range names {
		if err := getCtl().Join(name, name); err != nil {
			return rep, fmt.Errorf("fleet soak: join %s: %w", name, err)
		}
	}

	// Bootstrap the catalog fault-free: two slots, distinct versions.
	slots := []string{"alpha", "beta"}
	drive := func(c *fleet.Controller, budget int) *fleet.Rollout {
		for i := 0; i < budget; i++ {
			if done, _ := c.Step(); done {
				break
			}
		}
		return c.RolloutStatus()
	}
	for i, sl := range slots {
		if err := getCtl().Deploy(sl, fmt.Sprintf("pass:%d", 4+4*i)); err != nil {
			return rep, fmt.Errorf("fleet soak: bootstrap %s: %w", sl, err)
		}
		if r := drive(getCtl(), 200); r == nil || r.Phase != fleet.PhaseDone {
			return rep, fmt.Errorf("fleet soak: bootstrap rollout %s = %+v", sl, r)
		}
		rep.Deploys++
		rep.RolloutsDone++
	}
	gate.set(true)

	gt := &groundTruth{}

	// trafficAudit sends one fan-out and judges any drop against ground
	// truth: a drop is a violation only if some worker that was reachable for
	// the whole fan-out holds the slot's program — the controller had a route
	// and failed to use it. Drops during a total outage (every holder killed
	// or partitioned at once) are legitimately lost packets, merely counted;
	// fan-outs racing a kill/heal transition are ambiguous and not judged.
	trafficAudit := func(c *fleet.Controller, slot string, n int) (fleet.TrafficReport, error) {
		v0, _, _ := gt.snapshot()
		tr := c.Traffic(slot, n)
		if tr.Dropped == 0 {
			return tr, nil
		}
		v1, k, p := gt.snapshot()
		if v0 != v1 {
			return tr, nil
		}
		for _, name := range names {
			if name == k || name == p {
				continue
			}
			if _, err := lt.Manager(name).StatusOf(slot); err != nil {
				continue // reachable but does not hold the program (e.g. rejoined empty)
			}
			evs := c.Events()
			if len(evs) > 12 {
				evs = evs[len(evs)-12:]
			}
			var evLines []string
			for _, ev := range evs {
				evLines = append(evLines, ev.String())
			}
			return tr, fmt.Errorf("dropped %d packets for %s while reachable %s holds it (killed=%q parted=%q)\n  %s\nevents:\n  %s",
				tr.Dropped, slot, name, k, p,
				strings.Join(c.FleetStatus().Lines(), "\n  "), strings.Join(evLines, "\n  "))
		}
		return tr, nil
	}

	// The pump: background traffic hammering every blessed slot while the
	// driver churns, so fan-out, rollouts, probes and recovery all interleave
	// under -race. Violations are latched for the driver to surface.
	var pumpSent, pumpRerouted, pumpDropped atomic.Int64
	var pumpErrMu sync.Mutex
	var pumpErr error
	getPumpErr := func() error {
		pumpErrMu.Lock()
		defer pumpErrMu.Unlock()
		return pumpErr
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := getCtl()
			for _, cs := range c.FleetStatus().Catalog {
				tr, err := trafficAudit(c, cs.Name, 8)
				pumpSent.Add(int64(tr.Sent))
				pumpRerouted.Add(int64(tr.Rerouted))
				pumpDropped.Add(int64(tr.Dropped))
				if err != nil {
					pumpErrMu.Lock()
					if pumpErr == nil {
						pumpErr = fmt.Errorf("pump: %w", err)
					}
					pumpErrMu.Unlock()
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	rng := splitmix64(cfg.Seed*2654435761 + 11)
	pick := func(exclude string) string {
		for {
			n := names[int(rng.next()%uint64(len(names)))]
			if n != exclude {
				return n
			}
		}
	}

	killed, parted := "", ""
	version := 2
	counted := map[string]bool{}

	for round := 0; round < cfg.Rounds; round++ {
		rep.Rounds = round + 1

		// Periodically the controller "dies": the journal handle is all that
		// survives. A fresh controller recovers from it against the same
		// fleet and takes over only after its first Tick re-admits workers.
		if cfg.ControllerKillEvery > 0 && round > 0 && round%cfg.ControllerKillEvery == 0 {
			if err := jl.Close(); err != nil {
				return rep, fmt.Errorf("fleet soak: close journal for controller kill: %w", err)
			}
			jl2, err := journal.OpenWith(cfg.Dir, journalOpts)
			if err != nil {
				return rep, fmt.Errorf("fleet soak: reopen journal: %w", err)
			}
			jl = jl2
			nc := fleet.New(fleetSoakControllerConfig(cfg.Seed+int64(round), reg), ct)
			nc.AttachJournal(jl2)
			rs, err := nc.Recover()
			if err != nil {
				return rep, fmt.Errorf("fleet soak: controller recovery: %w", err)
			}
			if rs.Workers != len(names) {
				return rep, fmt.Errorf("fleet soak: recovery found %d workers, want %d", rs.Workers, len(names))
			}
			nc.Tick()
			cmu.Lock()
			cur = nc
			cmu.Unlock()
			rep.ControllerRecoveries++
		}

		c := getCtl()
		switch rng.next() % 8 {
		case 0: // SIGKILL a worker (at most one down at a time)
			if killed == "" {
				killed = pick(parted)
				gt.set(killed, parted)
				lt.Kill(killed)
				rep.Kills++
			}
		case 1: // restart the killed worker, sometimes with its state wiped
			if killed != "" {
				lt.Restart(killed, rng.next()%2 == 0)
				_ = c.Join(killed, killed) // announce; failures retry via Tick probes
				killed = ""
				gt.set(killed, parted)
				rep.Restarts++
			}
		case 2: // one-way partition (requests land, replies are lost)
			if parted == "" {
				parted = pick(killed)
				gt.set(killed, parted)
				part.Isolate(parted, chaos.NetOneWay)
				rep.Partitions++
			}
		case 3: // heal the partition
			if parted != "" {
				part.Heal(parted)
				parted = ""
				gt.set(killed, parted)
				rep.Heals++
			}
		case 4, 5: // start the next rolling deploy
			if rolloutSettled(c.RolloutStatus()) {
				sl := slots[version%len(slots)]
				if err := c.Deploy(sl, fleetSrc(version)); err == nil {
					rep.Deploys++
				}
				version++
			}
		}

		// Drive: a few rollout steps, then a maintenance tick (probes down
		// workers, reconciles recovering ones).
		for i := 0; i < 6; i++ {
			if done, _ := c.Step(); done {
				break
			}
		}
		c.Tick()

		// Tally each rollout's outcome exactly once.
		if r := c.RolloutStatus(); r != nil && rolloutSettled(r) {
			key := fmt.Sprintf("%s#%d", r.Slot, r.Gen)
			if !counted[key] {
				counted[key] = true
				if r.Phase == fleet.PhaseDone {
					rep.RolloutsDone++
				} else {
					rep.RolloutsFailed++
				}
			}
		}

		st := c.FleetStatus()

		// Audit: the catalog never blesses a divergent or broken source.
		for _, cs := range st.Catalog {
			if !strings.HasPrefix(cs.Src, "pass:") {
				return rep, fmt.Errorf("fleet soak: round %d: catalog blessed %q for %s", round, cs.Src, cs.Name)
			}
		}

		// Audit: a fan-out is never dropped while a reachable worker holds
		// the program, every round, regardless of chaos.
		for _, cs := range st.Catalog {
			tr, err := trafficAudit(c, cs.Name, cfg.TrafficPerRound)
			rep.Sent += tr.Sent
			rep.Rerouted += tr.Rerouted
			rep.Dropped += tr.Dropped
			if err != nil {
				return rep, fmt.Errorf("fleet soak: round %d: %w", round, err)
			}
		}
		if err := getPumpErr(); err != nil {
			return rep, fmt.Errorf("fleet soak: round %d: %w", round, err)
		}

		// Audit: no routable worker serves a divergent verdict once the
		// rollout has settled and reconcile has run. Workers the controller
		// does not route to are pending repair and exempt until quiesce.
		if rolloutSettled(st.Rollout) {
			for _, w := range st.Workers {
				if w.Health != fleet.Healthy {
					continue
				}
				for _, cs := range st.Catalog {
					if _, err := serveVerdict(lt, w.Name, cs.Name); err != nil {
						return rep, fmt.Errorf("fleet soak: round %d: %w", round, err)
					}
				}
			}
		}
	}

	// Quiesce fault-free: heal everything and let the control plane converge.
	gate.set(false)
	c := getCtl()
	if parted != "" {
		part.Heal(parted)
		parted = ""
		rep.Heals++
	}
	if killed != "" {
		lt.Restart(killed, rng.next()%2 == 0)
		_ = c.Join(killed, killed)
		killed = ""
		rep.Restarts++
	}
	gt.set(killed, parted)
	drive(c, 400)
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.Tick()
		st := c.FleetStatus()
		if !st.Degraded && rolloutSettled(st.Rollout) {
			break
		}
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("fleet soak: fleet did not quiesce: %v", st.Lines())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Final audits on the quiesced fleet.
	st := c.FleetStatus()
	for _, w := range st.Workers {
		if w.Health != fleet.Healthy {
			return rep, fmt.Errorf("fleet soak: worker %s ended %s", w.Name, w.Health)
		}
	}
	for _, cs := range st.Catalog {
		// In mirror mode every worker holds every slot; under placement only
		// the slot's replicas are expected to serve it.
		holders := names
		if reps := c.Placements()[cs.Name]; len(reps) > 0 {
			holders = reps
		}
		var want uint64
		for i, name := range holders {
			insns, err := serveVerdict(lt, name, cs.Name)
			if err != nil {
				return rep, fmt.Errorf("fleet soak: final: %w", err)
			}
			if i == 0 {
				want = insns
			} else if insns != want {
				return rep, fmt.Errorf("fleet soak: fleet not uniform for %s: %s serves %d insns, %s serves %d",
					cs.Name, name, insns, holders[0], want)
			}
		}
	}

	// Audit: the journal replays to the observed fleet state. A cold
	// controller recovered from the journal must reconcile the live fleet
	// with zero corrective pushes and route traffic to every slot.
	c.Flush()
	if err := jl.Close(); err != nil {
		return rep, fmt.Errorf("fleet soak: close journal: %w", err)
	}
	jl2, err := journal.OpenWith(cfg.Dir, journalOpts)
	if err != nil {
		return rep, fmt.Errorf("fleet soak: reopen for replay audit: %w", err)
	}
	jl = jl2
	c2 := fleet.New(fleetSoakControllerConfig(cfg.Seed+7, reg), ct)
	c2.AttachJournal(jl2)
	rs, err := c2.Recover()
	if err != nil {
		return rep, fmt.Errorf("fleet soak: replay audit recovery: %w", err)
	}
	if rs.Workers != len(names) || rs.Slots != len(slots) {
		return rep, fmt.Errorf("fleet soak: replay audit recovered %d workers / %d slots, want %d / %d",
			rs.Workers, rs.Slots, len(names), len(slots))
	}
	c2.Tick()
	for _, ev := range c2.Events() {
		if ev.Kind == fleet.EventReconciled {
			return rep, fmt.Errorf("fleet soak: journal drifted from observed state: %s", ev.String())
		}
	}
	for _, sl := range slots {
		tr := c2.Traffic(sl, 32)
		rep.Sent += tr.Sent
		rep.Rerouted += tr.Rerouted
		if tr.Dropped != 0 {
			return rep, fmt.Errorf("fleet soak: recovered controller dropped %d packets for %s", tr.Dropped, sl)
		}
	}

	rep.Sent += int(pumpSent.Load())
	rep.Rerouted += int(pumpRerouted.Load())
	rep.Dropped += int(pumpDropped.Load())
	if err := getPumpErr(); err != nil {
		return rep, fmt.Errorf("fleet soak: %w", err)
	}
	ns := ct.Stats()
	rep.NetRPCs = ns.RPCs
	rep.NetFaults = ns.Injected()
	return rep, nil
}

// serveVerdict serves one packet on a worker's live program, failing on any
// verdict other than XDP_PASS — a divergent (drop) program leaking through
// a rollout is exactly what this catches — and returns the instruction
// count, the observable that distinguishes fleet versions.
func serveVerdict(lt *fleet.LocalTransport, worker, slot string) (uint64, error) {
	pkt := make([]byte, 64)
	rv, stats, err := lt.Manager(worker).Serve(slot, vm.BuildXDPContext(len(pkt)), pkt)
	if err != nil {
		return 0, fmt.Errorf("serve %s on %s: %w", slot, worker, err)
	}
	if rv != 2 {
		return 0, fmt.Errorf("worker %s serves verdict %d for %s — a divergent program is live", worker, rv, slot)
	}
	return stats.Instructions, nil
}
