package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSRoundTrip: the OS adapter is a faithful passthrough.
func TestOSRoundTrip(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	if err := fs.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "a/b/f.txt")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := f.Read(buf)
	if string(buf[:n]) != "hell" {
		t.Fatalf("read %q, want hell", buf[:n])
	}
	f.Close()
	if err := fs.Rename(path, filepath.Join(dir, "a/b/g.txt")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(filepath.Join(dir, "a/b"))
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.Remove(filepath.Join(dir, "a/b/g.txt")); err != nil {
		t.Fatal(err)
	}
}

// TestRatePlanDeterminism: same seed → identical fault sequence; different
// seed → (almost surely) a different one.
func TestRatePlanDeterminism(t *testing.T) {
	seq := func(seed int64) []Fault {
		p := NewRate(seed, 0.3)
		out := make([]Fault, 200)
		for i := range out {
			out[i] = p.Next(OpWrite, "f")
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
	faults := 0
	for _, f := range a {
		if f != None {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("rate 0.3 injected %d/%d faults; want a non-degenerate count", faults, len(a))
	}
}

// TestScheduleFiresNthOp: a scripted plan fails exactly the chosen op.
func TestScheduleFiresNthOp(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS(), NewSchedule(
		Step{Op: OpSync, Skip: 1, Fault: EIO}, // second fsync fails
		Step{Op: OpRename, Fault: ENOSPC},     // then the next rename
	))
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync must pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("second sync = %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync must pass again: %v", err)
	}
	if err := fs.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")); err == nil {
		t.Fatal("scripted rename fault did not fire")
	}
	if err := fs.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")); err != nil {
		t.Fatalf("rename after script drained: %v", err)
	}
	st := fs.Stats()
	if st.Injected != 2 || st.Faults[OpSync] != 1 || st.Faults[OpRename] != 1 {
		t.Fatalf("stats = %+v, want 2 injected (1 sync, 1 rename)", st)
	}
	f.Close()
}

// TestTornWriteLeavesPrefix: a torn write persists exactly half the buffer
// and reports ENOSPC.
func TestTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS(), NewSchedule(Step{Op: OpWrite, Fault: Torn}))
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn write error = %v, want ENOSPC", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write reported %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("file holds %q after torn write, want 01234", got)
	}
	if st := fs.Stats(); st.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", st.TornWrites)
	}
}

// TestInjectedErrorsAreRealistic: errors.Is sees the underlying errno, the
// way real storage-error handling expects.
func TestInjectedErrorsAreRealistic(t *testing.T) {
	fs := Wrap(OS(), NewSchedule(
		Step{Op: OpOpen, Fault: ENOSPC},
		Step{Op: OpOpen, Fault: EIO},
	))
	_, err := fs.OpenFile("/nonexistent/zzz", os.O_RDONLY, 0)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	_, err = fs.OpenFile("/nonexistent/zzz", os.O_RDONLY, 0)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	var pe *os.PathError
	if !errors.As(err, &pe) || pe.Path != "/nonexistent/zzz" {
		t.Fatalf("injected error is not a *os.PathError naming the path: %v", err)
	}
}

// TestSlowIsTransparent: Slow delays but never fails.
func TestSlowIsTransparent(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS(), NewRate(1, 1.0, Slow)) // every op slow, none failing
	fs.SlowDelay = 0
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := fs.Stats(); st.Slowed < 3 {
		t.Fatalf("Slowed = %d, want >= 3 (open, write, sync)", st.Slowed)
	}
}
