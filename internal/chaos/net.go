package chaos

import (
	"sync"
)

// The network half of the chaos package: where chaos.FS models what disks do
// to the journal, NetPlan models what networks do to the fleet controller's
// RPCs. The fleet transport consults a NetPlan before and after every RPC it
// carries and applies the returned fault, so a seeded soak can impose dropped
// connections, brown-out delays, duplicated deliveries, one-way partitions
// (the request reaches the worker and takes effect, but the reply is lost)
// and mid-stream resets — the failure modes that make distributed rollouts
// interesting — deterministically and without real sockets.

// NetFault is a plan's decision for one RPC.
type NetFault int

const (
	// NetNone lets the RPC through untouched.
	NetNone NetFault = iota
	// NetDrop fails the RPC before it reaches the worker: a refused or
	// black-holed connection. No side effect lands.
	NetDrop
	// NetDelay stalls the RPC briefly, then lets it through: the brown-out.
	NetDelay
	// NetDup delivers the request twice; both executions take effect and the
	// caller sees the second reply. Exercises idempotency.
	NetDup
	// NetOneWay is the one-way partition: the request reaches the worker and
	// its side effects land, but the reply never comes back — the caller sees
	// a timeout and cannot tell whether the operation happened.
	NetOneWay
	// NetReset delivers the request and then resets the connection mid-reply:
	// like NetOneWay the side effects land, but the caller sees a hard
	// connection error instead of a timeout.
	NetReset
)

func (f NetFault) String() string {
	switch f {
	case NetNone:
		return "none"
	case NetDrop:
		return "drop"
	case NetDelay:
		return "delay"
	case NetDup:
		return "dup"
	case NetOneWay:
		return "oneway"
	case NetReset:
		return "reset"
	}
	return "unknown"
}

// NetPlan decides the fate of each RPC, identified by the worker it targets
// and the RPC's first token (its verb: "deploy", "status", "traffic", ...).
// Implementations must be safe for concurrent use; the fleet transport may
// carry RPCs from several goroutines.
type NetPlan interface {
	NextNet(worker, verb string) NetFault
}

// NetRatePlan faults each RPC independently with a seeded Bernoulli schedule,
// cycling fault kinds from a fixed mix — the network twin of RatePlan. The
// same seed always yields the same decision sequence (for the same RPC
// order; concurrent callers serialize through the plan's lock).
type NetRatePlan struct {
	mu   sync.Mutex
	rng  uint64
	rate float64
	mix  []NetFault
}

// NewNetRate returns a plan faulting each RPC with the given probability,
// cycling kinds from mix (default: NetDrop, NetDelay, NetDup, NetOneWay,
// NetReset).
func NewNetRate(seed int64, rate float64, mix ...NetFault) *NetRatePlan {
	if len(mix) == 0 {
		mix = []NetFault{NetDrop, NetDelay, NetDup, NetOneWay, NetReset}
	}
	return &NetRatePlan{rng: uint64(seed), rate: rate, mix: mix}
}

func (p *NetRatePlan) NextNet(worker, verb string) NetFault {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := splitmix64(&p.rng)
	if float64(u>>11)/float64(uint64(1)<<53) >= p.rate {
		return NetNone
	}
	return p.mix[int(splitmix64(&p.rng)%uint64(len(p.mix)))]
}

// NetStep is one scripted network fault: after Skip matching RPCs pass
// through, the next one fires Fault. Worker and Verb, when non-empty, must
// match the RPC's target worker (substring) and verb (exact) for the step to
// count.
type NetStep struct {
	Worker string
	Verb   string
	Skip   int
	Fault  NetFault
}

// NetSchedulePlan fires an explicit sequence of network faults, in order,
// then goes quiet — the network twin of SchedulePlan.
type NetSchedulePlan struct {
	mu    sync.Mutex
	steps []NetStep
	idx   int
	seen  int
}

// NewNetSchedule returns a plan that fires steps in order.
func NewNetSchedule(steps ...NetStep) *NetSchedulePlan {
	return &NetSchedulePlan{steps: steps}
}

func (p *NetSchedulePlan) NextNet(worker, verb string) NetFault {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idx >= len(p.steps) {
		return NetNone
	}
	st := p.steps[p.idx]
	if (st.Worker != "" && !contains(worker, st.Worker)) || (st.Verb != "" && st.Verb != verb) {
		return NetNone
	}
	if p.seen < st.Skip {
		p.seen++
		return NetNone
	}
	p.idx++
	p.seen = 0
	return st.Fault
}

// Partition is a mutable set of partitioned workers: a soak isolates and
// heals workers mid-run while the transport keeps consulting the same plan.
// Each isolated worker is assigned the fault its RPCs receive — NetDrop
// models a full partition (requests never arrive), NetOneWay the asymmetric
// one (requests arrive, replies do not).
type Partition struct {
	mu       sync.Mutex
	isolated map[string]NetFault
}

// NewPartition returns an empty partition set.
func NewPartition() *Partition {
	return &Partition{isolated: map[string]NetFault{}}
}

// Isolate places worker behind the partition with the given fault
// (NetDrop or NetOneWay are the sensible choices).
func (p *Partition) Isolate(worker string, fault NetFault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.isolated[worker] = fault
}

// IsolateSet partitions several workers at once with the same fault — the
// replica-set partition: every holder of a slot's placement drops off the
// network in one step, which is how a soak proves failover has nothing left
// to fail over to (and that repair restores service after HealAll).
func (p *Partition) IsolateSet(fault NetFault, workers ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range workers {
		p.isolated[w] = fault
	}
}

// Heal removes worker from the partition.
func (p *Partition) Heal(worker string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.isolated, worker)
}

// HealAll empties the partition set: the network is whole again.
func (p *Partition) HealAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := range p.isolated {
		delete(p.isolated, w)
	}
}

// Isolated reports whether worker is currently partitioned.
func (p *Partition) Isolated(worker string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.isolated[worker]
	return ok
}

func (p *Partition) NextNet(worker, verb string) NetFault {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.isolated[worker]; ok {
		return f
	}
	return NetNone
}

// NetChain composes plans: the first non-NetNone decision wins. Every plan
// is consulted for every RPC, so seeded plans advance deterministically
// regardless of what earlier plans in the chain decide.
type NetChain []NetPlan

func (c NetChain) NextNet(worker, verb string) NetFault {
	out := NetNone
	for _, p := range c {
		if f := p.NextNet(worker, verb); f != NetNone && out == NetNone {
			out = f
		}
	}
	return out
}

// NetStats accounts for what a chaos transport saw and did.
type NetStats struct {
	// RPCs counts RPCs carried (faulted or not); Faults counts injected
	// faults by kind.
	RPCs   int
	Faults map[NetFault]int
}

// Injected is the total number of injected network faults.
func (s NetStats) Injected() int {
	n := 0
	for _, v := range s.Faults {
		n += v
	}
	return n
}
