// Package chaos is a fault-injecting filesystem abstraction for durability
// testing. The persistence layers (internal/journal and, through it, the
// superoptimizer's verdict cache) perform every file operation through the FS
// interface here, so a test — or a long-running soak — can interpose a
// deterministic, seeded fault injector that produces the storage failures
// real disks produce: ENOSPC, EIO on writes and fsyncs, torn (partial)
// writes, failed renames, and slow I/O.
//
// Two implementations ship:
//
//   - OS() is the real thing: a thin adapter over the os package.
//   - Wrap(fs, plan) interposes an Injector whose Plan decides, operation by
//     operation, whether to let the call through, fail it, or tear it.
//
// Plans are deterministic. NewRate is a seeded Bernoulli schedule (same seed
// → same fault sequence), NewSchedule fires an explicit script of faults
// ("the 3rd fsync fails with EIO"). Injected errors are realistic: they are
// *os.PathError values wrapping syscall.EIO / syscall.ENOSPC, so production
// code that inspects errors sees exactly what a real kernel would return.
package chaos

import (
	"io"
	"os"
	"sync"
	"syscall"
	"time"
)

// Op names one injectable filesystem operation.
type Op string

const (
	OpOpen     Op = "open"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdir    Op = "mkdir"
	OpReadDir  Op = "readdir"
	OpStat     Op = "stat"
)

// Fault is a plan's decision for one operation.
type Fault int

const (
	// None lets the operation through untouched.
	None Fault = iota
	// EIO fails the operation with syscall.EIO.
	EIO
	// ENOSPC fails the operation with syscall.ENOSPC.
	ENOSPC
	// Torn applies to writes: half the buffer reaches the file, then the
	// write fails with ENOSPC — the classic disk-full torn record. On
	// non-write operations it degrades to ENOSPC.
	Torn
	// Slow delays the operation briefly (Injector.SlowDelay), then lets it
	// succeed — the brown-out failure mode.
	Slow
)

func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case EIO:
		return "eio"
	case ENOSPC:
		return "enospc"
	case Torn:
		return "torn"
	case Slow:
		return "slow"
	}
	return "unknown"
}

// File is the file handle surface the journal needs. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the filesystem surface the journal needs.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
}

// ReadFile reads a whole file through fs, so read paths (program sources,
// object files, corpora) see injected faults exactly like the journal does.
func ReadFile(fs FS, name string) ([]byte, error) {
	f, err := fs.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFile writes data to name through fs with the usual create/truncate
// semantics.
func WriteFile(fs FS, name string, data []byte, perm os.FileMode) error {
	f, err := fs.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ---- the real filesystem -------------------------------------------------

type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// ---- plans ---------------------------------------------------------------

// Plan decides the fate of each operation. Implementations must be safe for
// concurrent use when the wrapped FS is used concurrently (the Injector
// serializes calls into the plan under its own lock, so plans written against
// that guarantee need no locking of their own).
type Plan interface {
	Next(op Op, name string) Fault
}

// RatePlan injects faults with a seeded Bernoulli schedule: each operation
// independently faults with probability Rate, drawing the fault kind from a
// fixed mix. The same seed always yields the same decision sequence.
type RatePlan struct {
	rng  uint64
	rate float64
	mix  []Fault
}

// NewRate returns a plan faulting each operation with the given probability,
// cycling kinds from mix (default: EIO, ENOSPC, Torn, Slow).
func NewRate(seed int64, rate float64, mix ...Fault) *RatePlan {
	if len(mix) == 0 {
		mix = []Fault{EIO, ENOSPC, Torn, Slow}
	}
	return &RatePlan{rng: uint64(seed), rate: rate, mix: mix}
}

// splitmix64 is the PRNG step — tiny, seedable, and good enough for fault
// scheduling.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *RatePlan) Next(op Op, name string) Fault {
	u := splitmix64(&p.rng)
	if float64(u>>11)/float64(uint64(1)<<53) >= p.rate {
		return None
	}
	return p.mix[int(splitmix64(&p.rng)%uint64(len(p.mix)))]
}

// Step is one scripted fault: after Skip matching operations pass through,
// the next one fires Fault. Name, when non-empty, must be a substring of the
// operation's path for the step to match.
type Step struct {
	Op    Op
	Name  string
	Skip  int
	Fault Fault
}

// SchedulePlan fires an explicit sequence of faults, in order. Operations
// not matched by the current step pass through.
type SchedulePlan struct {
	steps []Step
	idx   int
	seen  int
}

// NewSchedule returns a plan that fires steps in order and then goes quiet.
func NewSchedule(steps ...Step) *SchedulePlan {
	return &SchedulePlan{steps: steps}
}

func (p *SchedulePlan) Next(op Op, name string) Fault {
	if p.idx >= len(p.steps) {
		return None
	}
	st := p.steps[p.idx]
	if st.Op != op || (st.Name != "" && !contains(name, st.Name)) {
		return None
	}
	if p.seen < st.Skip {
		p.seen++
		return None
	}
	p.idx++
	p.seen = 0
	return st.Fault
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// ---- the injector --------------------------------------------------------

// Stats accounts for what the injector saw and did.
type Stats struct {
	// Ops counts operations by kind (faulted or not).
	Ops map[Op]int
	// Faults counts injected faults by operation kind.
	Faults map[Op]int
	// Injected is the total number of injected faults; TornWrites the subset
	// that tore a write buffer in half.
	Injected   int
	TornWrites int
	// Slowed counts operations delayed by a Slow fault.
	Slowed int
}

// Injector wraps an FS and applies a Plan's faults to every operation. Safe
// for concurrent use.
type Injector struct {
	inner FS
	// SlowDelay is how long a Slow fault stalls (default 200µs). Set it
	// before handing the injector out; it is read without synchronization.
	SlowDelay time.Duration

	mu    sync.Mutex
	plan  Plan
	stats Stats
}

// Wrap interposes plan between callers and fs.
func Wrap(fs FS, plan Plan) *Injector {
	return &Injector{
		inner:     fs,
		plan:      plan,
		SlowDelay: 200 * time.Microsecond,
		stats:     Stats{Ops: map[Op]int{}, Faults: map[Op]int{}},
	}
}

// Stats returns a copy of the accounting so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.stats
	st.Ops = map[Op]int{}
	st.Faults = map[Op]int{}
	for k, v := range in.stats.Ops {
		st.Ops[k] = v
	}
	for k, v := range in.stats.Faults {
		st.Faults[k] = v
	}
	return st
}

// decide consults the plan and updates the books. A Slow fault sleeps here
// (outside the lock would race the plan; the delay is tiny) and reports None
// to the caller.
func (in *Injector) decide(op Op, name string) Fault {
	in.mu.Lock()
	in.stats.Ops[op]++
	f := in.plan.Next(op, name)
	if f != None {
		in.stats.Faults[op]++
		in.stats.Injected++
		if f == Slow {
			in.stats.Slowed++
		}
	}
	in.mu.Unlock()
	if f == Slow {
		time.Sleep(in.SlowDelay)
		return None
	}
	return f
}

// pathErr fabricates the error a real kernel would hand back.
func pathErr(op Op, name string, f Fault) error {
	errno := syscall.EIO
	if f == ENOSPC || f == Torn {
		errno = syscall.ENOSPC
	}
	return &os.PathError{Op: string(op), Path: name, Err: errno}
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f := in.decide(OpOpen, name); f != None {
		return nil, pathErr(OpOpen, name, f)
	}
	inner, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: inner, name: name}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if f := in.decide(OpRename, oldpath); f != None {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EIO}
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if f := in.decide(OpRemove, name); f != None {
		return pathErr(OpRemove, name, f)
	}
	return in.inner.Remove(name)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if f := in.decide(OpMkdir, path); f != None {
		return pathErr(OpMkdir, path, f)
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if f := in.decide(OpReadDir, name); f != None {
		return nil, pathErr(OpReadDir, name, f)
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if f := in.decide(OpStat, name); f != None {
		return nil, pathErr(OpStat, name, f)
	}
	return in.inner.Stat(name)
}

// injFile applies faults to per-handle operations.
type injFile struct {
	in   *Injector
	f    File
	name string
}

func (jf *injFile) Read(p []byte) (int, error) {
	if f := jf.in.decide(OpRead, jf.name); f != None {
		return 0, pathErr(OpRead, jf.name, f)
	}
	return jf.f.Read(p)
}

func (jf *injFile) Write(p []byte) (int, error) {
	switch f := jf.in.decide(OpWrite, jf.name); f {
	case None:
	case Torn:
		// Half the buffer lands, then the disk is full: the canonical torn
		// record. The underlying write's own error (if any) is subsumed.
		n, _ := jf.f.Write(p[:len(p)/2])
		jf.in.mu.Lock()
		jf.in.stats.TornWrites++
		jf.in.mu.Unlock()
		return n, pathErr(OpWrite, jf.name, f)
	default:
		return 0, pathErr(OpWrite, jf.name, f)
	}
	return jf.f.Write(p)
}

func (jf *injFile) Seek(offset int64, whence int) (int64, error) {
	return jf.f.Seek(offset, whence)
}

func (jf *injFile) Close() error { return jf.f.Close() }

func (jf *injFile) Truncate(size int64) error {
	if f := jf.in.decide(OpTruncate, jf.name); f != None {
		return pathErr(OpTruncate, jf.name, f)
	}
	return jf.f.Truncate(size)
}

func (jf *injFile) Sync() error {
	if f := jf.in.decide(OpSync, jf.name); f != None {
		return pathErr(OpSync, jf.name, f)
	}
	return jf.f.Sync()
}

func (jf *injFile) Stat() (os.FileInfo, error) { return jf.f.Stat() }
func (jf *injFile) Name() string               { return jf.name }
