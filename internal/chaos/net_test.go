package chaos

import "testing"

func TestNetRateDeterministic(t *testing.T) {
	a := NewNetRate(7, 0.5)
	b := NewNetRate(7, 0.5)
	var sa, sb []NetFault
	for i := 0; i < 200; i++ {
		sa = append(sa, a.NextNet("w1", "status"))
		sb = append(sb, b.NextNet("w1", "status"))
	}
	faults := 0
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("seeded plans diverged at %d: %v vs %v", i, sa[i], sb[i])
		}
		if sa[i] != NetNone {
			faults++
		}
	}
	if faults == 0 || faults == len(sa) {
		t.Fatalf("rate 0.5 produced %d/%d faults", faults, len(sa))
	}
}

func TestNetRateZeroAndOne(t *testing.T) {
	never := NewNetRate(1, 0)
	always := NewNetRate(1, 1, NetDrop)
	for i := 0; i < 50; i++ {
		if f := never.NextNet("w", "x"); f != NetNone {
			t.Fatalf("rate 0 injected %v", f)
		}
		if f := always.NextNet("w", "x"); f != NetDrop {
			t.Fatalf("rate 1 mix=[drop] produced %v", f)
		}
	}
}

func TestNetSchedule(t *testing.T) {
	p := NewNetSchedule(
		NetStep{Worker: "w2", Verb: "promote", Skip: 1, Fault: NetOneWay},
		NetStep{Fault: NetReset},
	)
	// Non-matching RPCs pass through without consuming the step.
	if f := p.NextNet("w1", "promote"); f != NetNone {
		t.Fatalf("wrong worker matched: %v", f)
	}
	if f := p.NextNet("w2", "status"); f != NetNone {
		t.Fatalf("wrong verb matched: %v", f)
	}
	// First match is skipped, second fires.
	if f := p.NextNet("w2", "promote"); f != NetNone {
		t.Fatalf("skip not honored: %v", f)
	}
	if f := p.NextNet("w2", "promote"); f != NetOneWay {
		t.Fatalf("want oneway, got %v", f)
	}
	// Next step matches anything.
	if f := p.NextNet("w3", "traffic"); f != NetReset {
		t.Fatalf("want reset, got %v", f)
	}
	// Exhausted: quiet forever.
	if f := p.NextNet("w2", "promote"); f != NetNone {
		t.Fatalf("exhausted plan fired %v", f)
	}
}

func TestPartition(t *testing.T) {
	p := NewPartition()
	if p.Isolated("w1") || p.NextNet("w1", "status") != NetNone {
		t.Fatal("fresh partition isolates")
	}
	p.Isolate("w1", NetOneWay)
	if !p.Isolated("w1") {
		t.Fatal("Isolated(w1) = false after Isolate")
	}
	if f := p.NextNet("w1", "deploy"); f != NetOneWay {
		t.Fatalf("isolated worker got %v", f)
	}
	if f := p.NextNet("w2", "deploy"); f != NetNone {
		t.Fatalf("unisolated worker got %v", f)
	}
	p.Heal("w1")
	if f := p.NextNet("w1", "deploy"); f != NetNone {
		t.Fatalf("healed worker got %v", f)
	}
}

func TestPartitionSet(t *testing.T) {
	p := NewPartition()
	p.IsolateSet(NetDrop, "w1", "w2")
	for _, w := range []string{"w1", "w2"} {
		if f := p.NextNet(w, "traffic"); f != NetDrop {
			t.Fatalf("set-isolated %s got %v", w, f)
		}
	}
	if f := p.NextNet("w3", "traffic"); f != NetNone {
		t.Fatalf("outsider got %v", f)
	}
	p.HealAll()
	for _, w := range []string{"w1", "w2"} {
		if p.Isolated(w) {
			t.Fatalf("%s still isolated after HealAll", w)
		}
	}
	// HealAll on an already-empty set is a no-op, not a panic.
	p.HealAll()
}

func TestNetChain(t *testing.T) {
	part := NewPartition()
	part.Isolate("w2", NetDrop)
	sched := NewNetSchedule(NetStep{Verb: "status", Fault: NetDelay})
	chain := NetChain{part, sched}
	// Partition wins for w2; the schedule still advances (and fires for the
	// very same RPC had the partition not claimed it), so chain composition
	// stays deterministic.
	if f := chain.NextNet("w2", "status"); f != NetDrop {
		t.Fatalf("chain = %v, want drop", f)
	}
	// The schedule's one step was consumed above even though the partition
	// won; a later status RPC passes clean.
	if f := chain.NextNet("w1", "status"); f != NetNone {
		t.Fatalf("chain = %v, want none after schedule consumed", f)
	}
}

func TestNetFaultString(t *testing.T) {
	want := map[NetFault]string{
		NetNone: "none", NetDrop: "drop", NetDelay: "delay",
		NetDup: "dup", NetOneWay: "oneway", NetReset: "reset",
	}
	for f, s := range want {
		if f.String() != s {
			t.Fatalf("%d.String() = %q, want %q", f, f.String(), s)
		}
	}
	if (NetStats{}).Injected() != 0 {
		t.Fatal("empty stats injected != 0")
	}
}
