package hw

import "testing"

func TestCacheHitsAfterWarm(t *testing.T) {
	c := NewL1D()
	if c.Access(0x1000) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0x1000) || !c.Access(0x1010) {
		t.Fatal("same line should hit")
	}
	if c.Refs != 3 || c.Misses != 1 {
		t.Fatalf("refs=%d misses=%d", c.Refs, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2, 64) // one set, two ways
	c.Access(0x0000)
	c.Access(0x1000)
	c.Access(0x0000) // refresh line 0
	c.Access(0x2000) // evicts 0x1000
	if !c.Access(0x0000) {
		t.Error("most recently used line was evicted")
	}
	if c.Access(0x1000) {
		t.Error("LRU line should have been evicted")
	}
}

func TestCacheDistinctSets(t *testing.T) {
	c := NewCache(64, 8, 64)
	for i := 0; i < 64; i++ {
		c.Access(uint64(i * 64))
	}
	if c.Misses != 64 {
		t.Fatalf("misses = %d, want 64 cold misses", c.Misses)
	}
	for i := 0; i < 64; i++ {
		c.Access(uint64(i * 64))
	}
	if c.Misses != 64 {
		t.Fatalf("warm pass should not miss; misses = %d", c.Misses)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewL1D()
	c.Access(0x40)
	c.Reset()
	if c.Refs != 0 || c.Misses != 0 {
		t.Fatal("counters not cleared")
	}
	if c.Access(0x40) {
		t.Fatal("contents not cleared")
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	p := NewBranchPredictor()
	misses := 0
	for i := 0; i < 100; i++ {
		if !p.Predict(7, true) {
			misses++
		}
	}
	if misses > 2 {
		t.Fatalf("predictor failed to learn always-taken: %d misses", misses)
	}
	if p.Branches != 100 {
		t.Fatalf("branches = %d", p.Branches)
	}
}

func TestBranchPredictorAlternating(t *testing.T) {
	p := NewBranchPredictor()
	for i := 0; i < 100; i++ {
		p.Predict(3, i%2 == 0)
	}
	// A 2-bit counter mispredicts often on alternation but not always.
	if p.Misses == 0 || p.Misses > 100 {
		t.Fatalf("misses = %d", p.Misses)
	}
}

func TestBranchPredictorSeparateSites(t *testing.T) {
	p := NewBranchPredictor()
	for i := 0; i < 50; i++ {
		p.Predict(1, true)
		p.Predict(2, false)
	}
	if p.Misses > 4 {
		t.Fatalf("independent sites should both train: %d misses", p.Misses)
	}
	p.Reset()
	if p.Branches != 0 || p.Misses != 0 {
		t.Fatal("reset failed")
	}
}
