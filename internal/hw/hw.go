// Package hw provides the deterministic microarchitecture models backing the
// paper's hardware-performance-counter experiments (Figs 11 and 12): a
// set-associative LRU cache and a two-bit saturating branch predictor.
// They are driven by the VM on every memory access and branch, so optimized
// programs that touch less memory and branch less produce the counter
// movements the paper reports.
package hw

// Cache is a set-associative cache with LRU replacement. The zero value is
// not usable; use NewCache.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	// tags/age are flat set-major arrays (sets*ways entries); flat layout
	// keeps Access to one cache line per set probe instead of chasing a
	// slice header per set.
	tags []uint64
	age  []uint64
	tick uint64

	Refs   uint64 // total accesses
	Misses uint64
}

// NewCache builds a cache of the given geometry. lineBytes must be a power
// of two.
func NewCache(sets, ways, lineBytes int) *Cache {
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	c := &Cache{sets: sets, ways: ways, lineShift: shift}
	c.tags = make([]uint64, sets*ways)
	c.age = make([]uint64, sets*ways)
	return c
}

// NewL1D returns a 32 KiB, 8-way, 64-byte-line cache — the paper's test
// CPUs' L1D geometry.
func NewL1D() *Cache { return NewCache(64, 8, 64) }

// Access touches addr and reports whether it hit. Lines are never
// invalidated; the model is a warm, single-level data cache.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	c.Refs++
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	tag := line | 1 // bias so the zero tag never matches an empty way
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	age := c.age[base : base+c.ways]
	oldest, oldestAge := 0, ^uint64(0)
	for w := range tags {
		if tags[w] == tag {
			age[w] = c.tick
			return true
		}
		if age[w] < oldestAge {
			oldest, oldestAge = w, age[w]
		}
	}
	c.Misses++
	tags[oldest] = tag
	age[oldest] = c.tick
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.age[i] = 0
	}
	c.tick, c.Refs, c.Misses = 0, 0, 0
}

// BranchPredictor is a table of two-bit saturating counters indexed by
// branch site.
type BranchPredictor struct {
	table []uint8

	Branches uint64
	Misses   uint64
}

// NewBranchPredictor builds a predictor with 2^bits entries.
func NewBranchPredictor() *BranchPredictor {
	return &BranchPredictor{table: make([]uint8, 4096)}
}

// Predict consumes the outcome of the branch at the given site and reports
// whether the predictor had guessed correctly.
func (p *BranchPredictor) Predict(site int, taken bool) bool {
	p.Branches++
	idx := site & (len(p.table) - 1)
	state := p.table[idx]
	predictTaken := state >= 2
	if taken && state < 3 {
		p.table[idx] = state + 1
	}
	if !taken && state > 0 {
		p.table[idx] = state - 1
	}
	if predictTaken != taken {
		p.Misses++
		return false
	}
	return true
}

// Reset clears state and counters.
func (p *BranchPredictor) Reset() {
	for i := range p.table {
		p.table[i] = 0
	}
	p.Branches, p.Misses = 0, 0
}
