package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile returns the rank-⌈q·n⌉ order statistic of vals.
func exactQuantile(vals []uint64, q float64) uint64 {
	sorted := append([]uint64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantileBucketAgreement is the estimator's contract: for any
// distribution, Quantile(q) lands in the same log2 bucket as the exact order
// statistic, because the bucket is located by exact cumulative counts and
// only the within-bucket position is interpolated.
func TestQuantileBucketAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func(n int) []uint64{
		"constant": func(n int) []uint64 {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = 777
			}
			return vals
		},
		"uniform": func(n int) []uint64 {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(rng.Intn(100000))
			}
			return vals
		},
		"exponential": func(n int) []uint64 {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(rng.ExpFloat64() * 5000)
			}
			return vals
		},
		"bimodal": func(n int) []uint64 {
			vals := make([]uint64, n)
			for i := range vals {
				if i%2 == 0 {
					vals[i] = uint64(10 + rng.Intn(5))
				} else {
					vals[i] = uint64(1 << 20)
				}
			}
			return vals
		},
		"with-zeros": func(n int) []uint64 {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(rng.Intn(3)) // heavy mass on 0, 1, 2
			}
			return vals
		},
	}
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1}
	for name, gen := range distributions {
		for _, n := range []int{1, 7, 1000} {
			vals := gen(n)
			var h Histogram
			for _, v := range vals {
				h.Observe(v)
			}
			for _, q := range quantiles {
				got := h.Quantile(q)
				want := exactQuantile(vals, q)
				if bucketIndex(got) != bucketIndex(want) {
					t.Errorf("%s n=%d q=%.2f: estimate %d (bucket %d) vs exact %d (bucket %d)",
						name, n, q, got, bucketIndex(got), want, bucketIndex(want))
				}
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}

	var h Histogram
	h.Observe(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} { // out-of-range q clamps
		if got := h.Quantile(q); bucketIndex(got) != bucketIndex(42) {
			t.Errorf("single-observation quantile(%v) = %d, not in 42's bucket", q, got)
		}
	}

	// Overflow bucket: values ≥ 2^40 report the bucket's lower edge.
	var ov Histogram
	ov.Observe(1 << 50)
	lo, _ := BucketRange(NumBuckets)
	if got := ov.Quantile(0.5); got != lo {
		t.Errorf("overflow quantile = %d, want lower edge %d", got, lo)
	}

	// Interpolation is monotone in q.
	var m Histogram
	for v := uint64(1); v <= 4096; v++ {
		m.Observe(v)
	}
	prev := uint64(0)
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := m.Quantile(q)
		if cur < prev {
			t.Errorf("quantile not monotone: q=%.2f gives %d after %d", q, cur, prev)
		}
		prev = cur
	}
}
