package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// renderFamily is an immutable copy of a family's structure taken under the
// registry lock, so encoding can proceed while other goroutines register new
// series. The metric pointers themselves are safe to read concurrently —
// their state is atomic.
type renderFamily struct {
	name, help string
	kind       kind
	labelSets  []string
	series     []any
}

// render snapshots the registry structure under the lock.
func (r *Registry) render() []renderFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]renderFamily, 0, len(names))
	for _, name := range names {
		f := r.fams[name]
		rf := renderFamily{name: f.name, help: f.help, kind: f.kind}
		for ls := range f.series {
			rf.labelSets = append(rf.labelSets, ls)
		}
		sort.Strings(rf.labelSets)
		for _, ls := range rf.labelSets {
			rf.series = append(rf.series, f.series[ls])
		}
		out = append(out, rf)
	}
	return out
}

// WriteText encodes the registry in Prometheus text exposition format.
// Output is deterministic: families sorted by name, series sorted by their
// canonical label string, histogram buckets in ascending bound order.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.render() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for i, ls := range f.labelSets {
			if err := writeSeries(w, f.name, ls, f.series[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Text returns the full text exposition as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

func writeSeries(w io.Writer, name, ls string, m any) error {
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name, ls), v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name, ls), v.Value())
		return err
	case *Histogram:
		snap := v.Snapshot()
		var cum uint64
		for i, n := range snap.Buckets {
			cum += n
			le := "+Inf"
			if i < NumBuckets {
				_, hi := BucketRange(i)
				le = strconv.FormatUint(hi, 10)
			}
			bls := joinLabels(ls, `le=`+strconv.Quote(le))
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", bls), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_sum", ls), snap.Sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", ls), snap.Count)
		return err
	}
	return fmt.Errorf("metrics: unknown series type %T", m)
}

// seriesName renders `name` or `name{labels}`.
func seriesName(name, ls string) string {
	if ls == "" {
		return name
	}
	return name + "{" + ls + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// Snapshot flattens every series into a map keyed `name{labels}` (labels in
// canonical sorted order, omitted when empty). Counters and gauges map to
// their value; each histogram contributes `name_count{...}` and
// `name_sum{...}` entries. Intended for test assertions.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int64{}
	for _, f := range r.fams {
		for ls, m := range f.series {
			switch v := m.(type) {
			case *Counter:
				out[seriesName(f.name, ls)] = int64(v.Value())
			case *Gauge:
				out[seriesName(f.name, ls)] = v.Value()
			case *Histogram:
				out[seriesName(f.name+"_count", ls)] = int64(v.Count())
				out[seriesName(f.name+"_sum", ls)] = int64(v.Sum())
			}
		}
	}
	return out
}
