package metrics

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// ListenerHealth is a point-in-time report of a resilient HTTP listener —
// merlind's `status` command prints one line per listener from it, so an
// operator can see a flapping accept loop without grepping stderr.
type ListenerHealth struct {
	Addr       string
	Up         bool
	ServeCount int    // times the accept loop (re)started
	Errors     uint64 // http.Serve returns observed
	LastError  string
}

// String renders the health as one status-command line.
func (h ListenerHealth) String() string {
	s := fmt.Sprintf("listener addr=%s up=%v starts=%d errors=%d", h.Addr, h.Up, h.ServeCount, h.Errors)
	if h.LastError != "" {
		s += fmt.Sprintf(" err=%q", h.LastError)
	}
	return s
}

// ResilientServer wraps http.Serve with the behavior a daemon actually
// wants: when Serve returns (a persistent accept error — file-descriptor
// exhaustion, a dying interface), the error is counted and reported and the
// listener is re-opened with backoff instead of the serving goroutine
// silently dying while the process lives on. Close stops the loop.
type ResilientServer struct {
	// Listen re-opens the listener after a failure. Defaults to
	// net.Listen("tcp", addr) with the address the server was started on.
	Listen func() (net.Listener, error)
	// Backoff between re-listen attempts (default 250ms).
	Backoff time.Duration
	// OnError observes every http.Serve return and failed re-listen
	// (optional; errors are counted regardless).
	OnError func(error)
	// ServeErrors, when set, is incremented for every http.Serve return —
	// wire it to a merlin_http_serve_errors_total counter.
	ServeErrors *Counter

	mu     sync.Mutex
	addr   string
	up     bool
	starts int
	errs   uint64
	last   string
	closed bool
	ln     net.Listener
}

// Serve runs the accept loop until Close. It never returns before Close is
// called: a Serve error logs, counts, and re-listens. Call it on its own
// goroutine.
func (s *ResilientServer) Serve(ln net.Listener, handler http.Handler) {
	if s.Backoff <= 0 {
		s.Backoff = 250 * time.Millisecond
	}
	addr := ln.Addr().String()
	s.mu.Lock()
	s.addr = addr
	s.ln = ln
	s.mu.Unlock()
	if s.Listen == nil {
		s.Listen = func() (net.Listener, error) { return net.Listen("tcp", addr) }
	}
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.up = true
		s.starts++
		ln := s.ln
		s.mu.Unlock()

		err := http.Serve(ln, handler)

		s.mu.Lock()
		s.up = false
		closed := s.closed
		if !closed {
			// A close tears the listener down under Serve deliberately; only
			// spontaneous returns count as failures.
			s.errs++
			if err != nil {
				s.last = err.Error()
			}
		}
		s.mu.Unlock()
		if closed {
			return
		}
		if s.ServeErrors != nil {
			s.ServeErrors.Inc()
		}
		if s.OnError != nil && err != nil {
			s.OnError(err)
		}
		// Re-listen with backoff until it works or we are closed.
		for {
			time.Sleep(s.Backoff)
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			nl, lerr := s.Listen()
			if lerr == nil {
				s.mu.Lock()
				s.ln = nl
				s.addr = nl.Addr().String()
				s.mu.Unlock()
				break
			}
			if s.OnError != nil {
				s.OnError(lerr)
			}
		}
	}
}

// Close stops the loop and closes the current listener.
func (s *ResilientServer) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Health reports the listener's current state.
func (s *ResilientServer) Health() ListenerHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ListenerHealth{
		Addr: s.addr, Up: s.up, ServeCount: s.starts,
		Errors: s.errs, LastError: s.last,
	}
}
