package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", "Requests served.")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	// Same name+labels must return the same underlying counter.
	if again := r.Counter("requests_total", "Requests served."); again != c {
		t.Fatal("re-registering returned a different counter")
	}
	// Different labels are distinct series.
	other := r.Counter("requests_total", "Requests served.", "slot", "a")
	if other == c {
		t.Fatal("labeled series aliases the unlabeled one")
	}
	other.Add(7)
	if c.Value() != 42 || other.Value() != 7 {
		t.Fatalf("series bled: %d / %d", c.Value(), other.Value())
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "", "slot", "s", "kind", "k")
	b := r.Counter("x_total", "", "kind", "k", "slot", "s")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()
	if !strings.Contains(r.Text(), `x_total{kind="k",slot="s"} 1`) {
		t.Fatalf("canonical label encoding missing:\n%s", r.Text())
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("depth", "Ring depth.")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	g.Set(-7)
	if !strings.Contains(r.Text(), "depth -7") {
		t.Fatalf("negative gauge not encoded:\n%s", r.Text())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r := New()
	r.Counter("m", "")
	r.Gauge("m", "")
}

func TestOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on odd label list")
		}
	}()
	New().Counter("m", "", "key-without-value")
}

// TestConcurrentCounters proves no lost updates: the sharded counter must
// total exactly the sum of everything every goroutine added.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("hot_total", "")
	g := r.Gauge("adj", "")
	h := r.Histogram("obs", "")
	const workers, perWorker = 32, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestTextEncodingDeterministic(t *testing.T) {
	r := New()
	r.Counter("b_total", "B.", "slot", "y").Add(2)
	r.Counter("b_total", "B.", "slot", "x").Add(1)
	r.Gauge("a_gauge", "A.").Set(3)
	r.Histogram("c_cycles", "C.").Observe(5)

	text := r.Text()
	if text != r.Text() {
		t.Fatal("encoding is not deterministic")
	}
	for _, want := range []string{
		"# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge 3\n",
		"# TYPE b_total counter\n" + `b_total{slot="x"} 1` + "\n" + `b_total{slot="y"} 2`,
		"# TYPE c_cycles histogram",
		`c_cycles_bucket{le="0"} 0`,
		`c_cycles_bucket{le="7"} 1`, // 5 ∈ [4,8) → cumulative 1 at le=7
		`c_cycles_bucket{le="+Inf"} 1`,
		"c_cycles_sum 5",
		"c_cycles_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("encoding missing %q:\n%s", want, text)
		}
	}
	// Families must be sorted by name.
	ia, ib, ic := strings.Index(text, "a_gauge"), strings.Index(text, "b_total"), strings.Index(text, "c_cycles")
	if !(ia < ib && ib < ic) {
		t.Fatalf("families out of order: %d %d %d\n%s", ia, ib, ic, text)
	}
}

func TestSnapshot(t *testing.T) {
	r := New()
	r.Counter("served_total", "", "slot", "a").Add(9)
	r.Gauge("gen", "").Set(4)
	h := r.Histogram("lat", "")
	h.Observe(3)
	h.Observe(5)

	snap := r.Snapshot()
	for key, want := range map[string]int64{
		`served_total{slot="a"}`: 9,
		"gen":                    4,
		"lat_count":              2,
		"lat_sum":                8,
	} {
		if got := snap[key]; got != want {
			t.Errorf("snapshot[%q] = %d, want %d (snapshot: %v)", key, got, want, snap)
		}
	}
}
