package metrics

import "testing"

// The increment path is used on the VM packet path: any per-observation heap
// allocation would turn into garbage pressure proportional to traffic, so
// zero allocations is an API guarantee, not an optimization.

func TestCounterAddAllocationFree(t *testing.T) {
	c := New().Counter("hot_total", "")
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %.1f objects per call", n)
	}
}

func TestGaugeSetAllocationFree(t *testing.T) {
	g := New().Gauge("g", "")
	if n := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-1) }); n != 0 {
		t.Fatalf("Gauge.Set/Add allocates %.1f objects per call", n)
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	h := New().Histogram("h", "")
	v := uint64(0)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 97 }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f objects per call", n)
	}
}
