// Package metrics is a dependency-free, goroutine-safe metrics registry for
// the build and runtime pipeline: sharded atomic counters, gauges, and
// fixed-bucket log2 histograms, with a Prometheus-style text exposition
// encoder and a snapshot API for tests.
//
// The increment path is built for the packet path: Counter.Add,
// Gauge.Set/Add and Histogram.Observe are single atomic operations on
// preallocated cells — no locks, no map lookups, no per-observation heap
// allocation. All the locking lives in handle creation (Registry.Counter and
// friends), which callers do once at setup and then keep the returned
// pointer. Counters are sharded across cache-line-padded cells keyed by a
// cheap per-goroutine hash, so concurrent writers on different cores do not
// serialize on one contended word.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numShards is the counter stripe width; must be a power of two.
const numShards = 16

// cell is one counter stripe, padded to a cache line so adjacent shards do
// not false-share.
type cell struct {
	n uint64
	_ [56]byte
}

// shardIndex picks a stripe for the calling goroutine. Goroutine stacks are
// disjoint, so the address of a local variable is an allocation-free proxy
// for goroutine identity: concurrent writers spread across stripes instead
// of colliding on one cache line. Collisions are harmless — every stripe is
// still updated atomically.
func shardIndex() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe))>>10) & (numShards - 1)
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	shards [numShards]cell
}

// Add increments the counter by n. Lock-free and allocation-free.
func (c *Counter) Add(n uint64) {
	atomic.AddUint64(&c.shards[shardIndex()].n, n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total across all shards.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += atomic.LoadUint64(&c.shards[i].n)
	}
	return sum
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v int64
}

// Set stores v. Lock-free and allocation-free.
func (g *Gauge) Set(v int64) { atomic.StoreInt64(&g.v, v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { atomic.AddInt64(&g.v, d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.v) }

// kind discriminates metric families.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family groups every labeled series of one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]any // canonical label string → *Counter/*Gauge/*Histogram
}

// Registry is a set of named metric families. Handle creation is mutex
// protected and idempotent: asking for the same name+labels returns the same
// underlying metric, so independent subsystems can share series.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Counter returns (creating if needed) the counter for name and the given
// alternating key, value label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.metric(name, help, kindCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.metric(name, help, kindGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating if needed) the histogram for name and labels.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.metric(name, help, kindHistogram, labels, func() any { return &Histogram{} }).(*Histogram)
}

func (r *Registry) metric(name, help string, k kind, labels []string, mk func() any) any {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: map[string]any{}}
		r.fams[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	m := f.series[ls]
	if m == nil {
		m = mk()
		f.series[ls] = m
	}
	return m
}

// labelString canonicalizes alternating key, value pairs into a
// deterministic `k1="v1",k2="v2"` form (keys sorted).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", labels))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}
