package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRelabelText(t *testing.T) {
	in := strings.Join([]string{
		"# HELP merlin_x helpful words",
		"# TYPE merlin_x counter",
		"merlin_x 42",
		`merlin_y{slot="a"} 7`,
		`merlin_z{} 1`,
		"",
		`merlin_h_bucket{slot="a",le="15"} 3`,
	}, "\n")
	var out strings.Builder
	if err := RelabelText(&out, strings.NewReader(in), "worker", "w1"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	want := []string{
		`merlin_x{worker="w1"} 42`,
		`merlin_y{worker="w1",slot="a"} 7`,
		`merlin_z{worker="w1"} 1`,
		`merlin_h_bucket{worker="w1",slot="a",le="15"} 3`,
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), got)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	if strings.Contains(got, "#") {
		t.Fatalf("comments leaked into relabeled output:\n%s", got)
	}
}

func TestRelabelTextEscapesValue(t *testing.T) {
	var out strings.Builder
	if err := RelabelText(&out, strings.NewReader("m 1\n"), "worker", `a"b\c`); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != `m{worker="a\"b\\c"} 1` {
		t.Fatalf("escaped relabel = %q", got)
	}
}

func TestRelabelTextRegistryOutputParses(t *testing.T) {
	r := New()
	r.Counter("merlin_a_total", "a").Inc()
	r.Gauge("merlin_b", "b", "slot", "x").Set(3)
	r.Histogram("merlin_c", "c").Observe(9)
	var out strings.Builder
	if err := RelabelText(&out, strings.NewReader(r.Text()), "worker", "w2"); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.Contains(line, `worker="w2"`) {
			t.Fatalf("line missing injected label: %q", line)
		}
		// `name{labels} value` — two space-separated tokens.
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
	}
}

func TestResilientServerSurvivesListenerDeath(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := New()
	ctr := reg.Counter("merlin_http_serve_errors_total", "t")
	srv := &ResilientServer{Backoff: 10 * time.Millisecond, ServeErrors: ctr}
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	})
	done := make(chan struct{})
	go func() { srv.Serve(ln, mux); close(done) }()
	defer srv.Close()

	// Keep-alives off: a pooled connection accepted by the old Serve keeps
	// answering after the listener dies, which is not the path under test.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	get := func() (string, error) {
		h := srv.Health()
		resp, err := client.Get("http://" + h.Addr + "/ping")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), nil
	}
	waitUp := func() {
		for i := 0; i < 200; i++ {
			if body, err := get(); err == nil && body == "pong" {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("listener never came up: %+v", srv.Health())
	}
	waitUp()

	// Kill the listener out from under http.Serve: the old behavior was a
	// dead serving goroutine; the resilient loop must count the error and
	// come back on the same address.
	ln.Close()
	for i := 0; i < 200 && ctr.Value() == 0; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if ctr.Value() == 0 {
		t.Fatalf("serve error never counted: %+v", srv.Health())
	}
	waitUp()
	h := srv.Health()
	if h.ServeCount < 2 || !h.Up || h.Errors == 0 {
		t.Fatalf("health after recovery = %+v", h)
	}

	// Close stops the loop without counting another failure.
	before := ctr.Value()
	srv.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if ctr.Value() != before {
		t.Fatalf("clean close counted as serve error: %d -> %d", before, ctr.Value())
	}
}
