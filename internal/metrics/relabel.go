package metrics

import (
	"bufio"
	"io"
	"strings"
)

// RelabelText copies a Prometheus text exposition from src to dst, injecting
// one extra label into every sample line. It is the merge primitive behind
// fleet-aggregated metrics: the controller scrapes each worker's registry
// over the line protocol and re-exposes every series tagged with
// worker="name", so one /metrics endpoint shows the whole fleet without any
// two workers' series colliding.
//
// Comment lines (# HELP / # TYPE) are dropped — the aggregate would repeat
// them once per worker, which scrapers reject. Blank lines are skipped;
// anything else is treated as a sample of the form `name value`,
// `name{labels} value` or `name{labels} value timestamp` and rewritten to
// `name{label="value",labels} ...`. Malformed lines are passed through
// untouched rather than lost: a worker speaking a slightly different
// dialect should be visible, not silently filtered.
func RelabelText(dst io.Writer, src io.Reader, label, value string) error {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inj := label + `="` + escapeLabelValue(value) + `"`
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if _, err := io.WriteString(dst, relabelLine(trimmed, inj)+"\n"); err != nil {
			return err
		}
	}
	return sc.Err()
}

// relabelLine injects inj into one sample line, or returns the line
// unchanged when it does not look like a sample.
func relabelLine(line, inj string) string {
	// `name{labels} rest` — inject before the existing labels.
	if brace := strings.IndexByte(line, '{'); brace >= 0 {
		end := strings.IndexByte(line[brace:], '}')
		if end < 0 {
			return line
		}
		if end == 1 { // empty label set: name{} v
			return line[:brace+1] + inj + line[brace+end:]
		}
		return line[:brace+1] + inj + "," + line[brace+1:]
	}
	// `name rest` — wrap the bare name.
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return line
	}
	return line[:sp] + "{" + inj + "}" + line[sp:]
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
