package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of finite log2 buckets. Bucket 0 holds exactly
// the value 0 and bucket i (1 ≤ i < NumBuckets) holds [2^(i-1), 2^i), so the
// finite buckets tile [0, 2^40) contiguously with no gaps or overlaps. One
// extra overflow bucket (index NumBuckets) catches everything ≥ 2^40.
const NumBuckets = 41

// Histogram is a fixed-bucket log2 histogram of uint64 observations (cycle
// and latency counts). Observe is three atomic adds: bucket, sum, count —
// cheap enough for the packet path. Reads (Snapshot, encoding) are
// eventually consistent with respect to in-flight observations, but every
// observation lands in exactly one bucket and is counted exactly once.
type Histogram struct {
	buckets [NumBuckets + 1]uint64
	sum     uint64
	count   uint64
}

// bucketIndex maps an observation to its unique bucket.
func bucketIndex(v uint64) int {
	if i := bits.Len64(v); i < NumBuckets {
		return i
	}
	return NumBuckets
}

// BucketRange returns the inclusive [lo, hi] value range of bucket i.
func BucketRange(i int) (lo, hi uint64) {
	switch {
	case i <= 0:
		return 0, 0
	case i < NumBuckets:
		return 1 << (i - 1), 1<<i - 1
	default:
		return 1 << (NumBuckets - 1), math.MaxUint64
	}
}

// Observe records one value. Lock-free and allocation-free.
func (h *Histogram) Observe(v uint64) {
	atomic.AddUint64(&h.buckets[bucketIndex(v)], 1)
	atomic.AddUint64(&h.sum, v)
	atomic.AddUint64(&h.count, 1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.count) }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return atomic.LoadUint64(&h.sum) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Buckets holds the per-bucket observation counts; the last entry is
	// the overflow bucket.
	Buckets [NumBuckets + 1]uint64
	Count   uint64
	Sum     uint64
}

// Snapshot copies the histogram state. Individual fields are each read
// atomically; the snapshot as a whole is eventually consistent under
// concurrent observation.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = atomic.LoadUint64(&h.buckets[i])
	}
	s.Count = atomic.LoadUint64(&h.count)
	s.Sum = atomic.LoadUint64(&h.sum)
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observations. The
// estimate locates the bucket holding the rank-⌈q·count⌉ observation and
// interpolates linearly within its value range, so it always falls in the
// same log2 bucket as the exact order statistic — a relative error bounded
// by the bucket width (≤ 2×). The bench harnesses use this for p50/p99
// reporting without retaining raw samples. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 { return h.Snapshot().Quantile(q) }

// Quantile is the snapshot-side estimator; see Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	switch {
	case q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	// rank is 1-based: the rank-th smallest observation.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+n < rank {
			seen += n
			continue
		}
		lo, hi := BucketRange(i)
		if i >= NumBuckets {
			// Overflow bucket: its upper edge is unbounded, so report the
			// lower edge rather than inventing a midpoint.
			return lo
		}
		// Interpolate the rank's position inside the bucket.
		frac := (float64(rank-seen) - 0.5) / float64(n)
		return lo + uint64(frac*float64(hi-lo)+0.5)
	}
	lo, _ := BucketRange(NumBuckets)
	return lo
}
