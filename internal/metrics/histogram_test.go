package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestHistogramBucketsPartitionRange is the property test backing the
// histogram design: the finite buckets tile [0, 2^40) contiguously, every
// random observation lands in exactly one bucket, and Sum/Count agree with a
// scalar re-aggregation of the same stream.
func TestHistogramBucketsPartitionRange(t *testing.T) {
	// Contiguity: bucket i ends exactly where bucket i+1 begins.
	lo0, hi0 := BucketRange(0)
	if lo0 != 0 || hi0 != 0 {
		t.Fatalf("bucket 0 = [%d, %d], want [0, 0]", lo0, hi0)
	}
	prevHi := hi0
	for i := 1; i < NumBuckets; i++ {
		lo, hi := BucketRange(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, want %d (gap or overlap)", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d = [%d, %d] is empty", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != 1<<40-1 {
		t.Fatalf("finite range ends at %d, want 2^40-1", prevHi)
	}
	if lo, hi := BucketRange(NumBuckets); lo != 1<<40 || hi != math.MaxUint64 {
		t.Fatalf("overflow bucket = [%d, %d]", lo, hi)
	}

	h := &Histogram{}
	rng := rand.New(rand.NewSource(40))
	const n = 20000
	var wantSum uint64
	wantPerBucket := make([]uint64, NumBuckets+1)
	for i := 0; i < n; i++ {
		v := rng.Uint64() & (1<<40 - 1) // uniform in [0, 2^40)
		// Exactly one bucket's range contains v.
		owner := -1
		for b := 0; b <= NumBuckets; b++ {
			if lo, hi := BucketRange(b); v >= lo && v <= hi {
				if owner != -1 {
					t.Fatalf("value %d in buckets %d and %d", v, owner, b)
				}
				owner = b
			}
		}
		if owner == -1 {
			t.Fatalf("value %d in no bucket", v)
		}
		if got := bucketIndex(v); got != owner {
			t.Fatalf("bucketIndex(%d) = %d, but range scan says %d", v, got, owner)
		}
		h.Observe(v)
		wantSum += v
		wantPerBucket[owner]++
	}

	snap := h.Snapshot()
	if snap.Count != n {
		t.Fatalf("Count = %d, want %d", snap.Count, n)
	}
	if snap.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", snap.Sum, wantSum)
	}
	var total uint64
	for b, want := range wantPerBucket {
		if snap.Buckets[b] != want {
			t.Fatalf("bucket %d = %d, want %d", b, snap.Buckets[b], want)
		}
		total += snap.Buckets[b]
	}
	if total != n {
		t.Fatalf("bucket totals %d, want %d (an observation was double-counted or dropped)", total, n)
	}
}

// TestHistogramOverflowBucket pins values at and beyond the finite range
// into the overflow bucket.
func TestHistogramOverflowBucket(t *testing.T) {
	h := &Histogram{}
	for _, v := range []uint64{1 << 40, 1<<40 + 1, math.MaxUint64} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Buckets[NumBuckets] != 3 {
		t.Fatalf("overflow bucket = %d, want 3", snap.Buckets[NumBuckets])
	}
	// Boundary: 2^40-1 is the last finite value.
	h2 := &Histogram{}
	h2.Observe(1<<40 - 1)
	if got := h2.Snapshot().Buckets[NumBuckets-1]; got != 1 {
		t.Fatalf("2^40-1 not in last finite bucket (got %d)", got)
	}
}
