package maps

import (
	"encoding/binary"
	"fmt"
)

// Map state serialization: an opaque binary snapshot of a map's contents,
// used for two things that must behave identically — transferring incumbent
// map state into a freshly promoted program (so hot-swap does not zero
// counters) and journaling map contents for crash recovery. The format
// preserves internal layout exactly (hash slot assignment, free list, ring
// head), so a restored map is byte-for-byte the map that was saved: value
// pointers the VM hands out resolve to the same offsets.
//
// Layout (all integers little-endian):
//
//	u8  kind tag (matching ebpf.MapSpec.Kind)
//	u32 len(store) | store bytes
//	then per kind:
//	  hash:  u32 next, u32 nfree | free slots (u32 each),
//	         u32 nentries | per entry: key bytes (KeySize), u32 slot
//	  ring:  u32 head, u64 events, u64 bytes
//	  array: nothing further

// SaveState serializes m's contents. The result is only loadable into a map
// with an identical Spec.
func SaveState(m Map) []byte {
	switch v := m.(type) {
	case *Array:
		return v.saveState()
	case *Hash:
		return v.saveState()
	case *RingBuf:
		return v.saveState()
	}
	return nil
}

// LoadState restores contents produced by SaveState into m, replacing
// whatever it held. It fails (leaving m untouched on structural errors) when
// the data does not match m's kind and spec.
func LoadState(m Map, data []byte) error {
	switch v := m.(type) {
	case *Array:
		return v.loadState(data)
	case *Hash:
		return v.loadState(data)
	case *RingBuf:
		return v.loadState(data)
	}
	return fmt.Errorf("maps: LoadState: unsupported map type %T", m)
}

// Transfer copies src's contents into dst. The two maps must have identical
// specs; the caller matches them by name.
func Transfer(dst, src Map) error {
	if dst.Spec() != src.Spec() {
		return fmt.Errorf("maps: transfer %s: spec mismatch (%+v vs %+v)",
			dst.Spec().Name, dst.Spec(), src.Spec())
	}
	return LoadState(dst, SaveState(src))
}

// cursor is a bounds-checked little-endian reader over a state blob.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) u8() uint8 {
	if c.err != nil || c.off+1 > len(c.b) {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || c.off+4 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil || n < 0 || c.off+n > len(c.b) {
		c.fail()
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("maps: truncated state blob at offset %d", c.off)
	}
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("maps: %d trailing bytes in state blob", len(c.b)-c.off)
	}
	return nil
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func (a *Array) saveState() []byte {
	out := make([]byte, 0, 1+4+len(a.store))
	out = append(out, byte(a.spec.Kind))
	out = appendU32(out, uint32(len(a.store)))
	return append(out, a.store...)
}

func (a *Array) loadState(data []byte) error {
	c := &cursor{b: data}
	if kind := c.u8(); c.err == nil && int(kind) != a.spec.Kind {
		return fmt.Errorf("maps: %s: state kind %d != %d", a.spec.Name, kind, a.spec.Kind)
	}
	store := c.bytes(int(c.u32()))
	if err := c.done(); err != nil {
		return err
	}
	if len(store) != len(a.store) {
		return fmt.Errorf("maps: %s: state store %d bytes != %d", a.spec.Name, len(store), len(a.store))
	}
	copy(a.store, store)
	return nil
}

func (h *Hash) saveState() []byte {
	out := make([]byte, 0, 1+4+len(h.store)+16*len(h.slots))
	out = append(out, byte(h.spec.Kind))
	out = appendU32(out, uint32(len(h.store)))
	out = append(out, h.store...)
	out = appendU32(out, uint32(h.next))
	out = appendU32(out, uint32(len(h.free)))
	for _, s := range h.free {
		out = appendU32(out, uint32(s))
	}
	out = appendU32(out, uint32(len(h.slots)))
	for k, s := range h.slots {
		out = append(out, k...)
		out = appendU32(out, uint32(s))
	}
	return out
}

func (h *Hash) loadState(data []byte) error {
	c := &cursor{b: data}
	if kind := c.u8(); c.err == nil && int(kind) != h.spec.Kind {
		return fmt.Errorf("maps: %s: state kind %d != %d", h.spec.Name, kind, h.spec.Kind)
	}
	store := c.bytes(int(c.u32()))
	next := int(c.u32())
	free := make([]int, 0, 8)
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		free = append(free, int(c.u32()))
	}
	slots := map[string]int{}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		key := c.bytes(h.spec.KeySize)
		slot := int(c.u32())
		if c.err == nil {
			slots[string(key)] = slot
		}
	}
	if err := c.done(); err != nil {
		return err
	}
	if len(store) != len(h.store) {
		return fmt.Errorf("maps: %s: state store %d bytes != %d", h.spec.Name, len(store), len(h.store))
	}
	if next < 0 || next > h.spec.MaxEntries {
		return fmt.Errorf("maps: %s: state next %d out of range", h.spec.Name, next)
	}
	for _, s := range slots {
		if s < 0 || s >= h.spec.MaxEntries {
			return fmt.Errorf("maps: %s: state slot %d out of range", h.spec.Name, s)
		}
	}
	copy(h.store, store)
	h.next = next
	h.free = free
	h.slots = slots
	return nil
}

func (r *RingBuf) saveState() []byte {
	out := make([]byte, 0, 1+4+len(r.store)+20)
	out = append(out, byte(r.spec.Kind))
	out = appendU32(out, uint32(len(r.store)))
	out = append(out, r.store...)
	out = appendU32(out, uint32(r.head))
	out = appendU64(out, r.Events)
	out = appendU64(out, r.Bytes)
	return out
}

func (r *RingBuf) loadState(data []byte) error {
	c := &cursor{b: data}
	if kind := c.u8(); c.err == nil && int(kind) != r.spec.Kind {
		return fmt.Errorf("maps: %s: state kind %d != %d", r.spec.Name, kind, r.spec.Kind)
	}
	store := c.bytes(int(c.u32()))
	head := int(c.u32())
	events := c.u64()
	bytes := c.u64()
	if err := c.done(); err != nil {
		return err
	}
	if len(store) != len(r.store) {
		return fmt.Errorf("maps: %s: state store %d bytes != %d", r.spec.Name, len(store), len(r.store))
	}
	if head < 0 || head >= len(r.store) {
		return fmt.Errorf("maps: %s: state head %d out of range", r.spec.Name, head)
	}
	copy(r.store, store)
	r.head = head
	r.Events = events
	r.Bytes = bytes
	return nil
}
