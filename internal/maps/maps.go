// Package maps implements the eBPF map types the corpus programs use:
// arrays, per-CPU arrays, hash maps, and a perf-event ring buffer. Values
// live in stable backing stores so the VM can hand out pointers into them,
// exactly like the kernel returns direct value pointers from
// bpf_map_lookup_elem.
package maps

import (
	"encoding/binary"
	"fmt"

	"merlin/internal/ebpf"
)

// Map is the common interface of all map kinds.
type Map interface {
	Spec() ebpf.MapSpec
	// Backing returns the stable store that value pointers point into.
	Backing() []byte
	// Lookup returns the offset of the value for key within Backing, or -1.
	// cpu selects the slice for per-CPU maps.
	Lookup(key []byte, cpu int) int
	// Update writes value for key. Returns an error when the map is full or
	// the key/value sizes are wrong.
	Update(key, value []byte, cpu int) error
	// Delete removes key; it is a no-op for array maps.
	Delete(key []byte) error
}

// New instantiates a map from its spec. ncpu sizes per-CPU maps.
func New(spec ebpf.MapSpec, ncpu int) (Map, error) {
	if spec.MaxEntries <= 0 || spec.ValueSize <= 0 {
		return nil, fmt.Errorf("maps: %s: non-positive size", spec.Name)
	}
	switch spec.Kind {
	case 0: // ir.MapArray
		if spec.KeySize != 4 {
			return nil, fmt.Errorf("maps: array %s: key size must be 4", spec.Name)
		}
		return &Array{spec: spec, store: make([]byte, spec.ValueSize*spec.MaxEntries), cpus: 1}, nil
	case 2: // ir.MapPerCPUArray
		if spec.KeySize != 4 {
			return nil, fmt.Errorf("maps: percpu array %s: key size must be 4", spec.Name)
		}
		return &Array{spec: spec, store: make([]byte, spec.ValueSize*spec.MaxEntries*ncpu), cpus: ncpu}, nil
	case 1: // ir.MapHash
		return &Hash{
			spec:  spec,
			store: make([]byte, spec.ValueSize*spec.MaxEntries),
			slots: map[string]int{},
			free:  nil,
		}, nil
	case 3: // ir.MapRingBuf
		return &RingBuf{spec: spec, store: make([]byte, spec.ValueSize*spec.MaxEntries)}, nil
	}
	return nil, fmt.Errorf("maps: %s: unknown kind %d", spec.Name, spec.Kind)
}

// Array is BPF_MAP_TYPE_ARRAY / PERCPU_ARRAY.
type Array struct {
	spec  ebpf.MapSpec
	store []byte
	cpus  int
}

// Spec implements Map.
func (a *Array) Spec() ebpf.MapSpec { return a.spec }

// Backing implements Map.
func (a *Array) Backing() []byte { return a.store }

// Lookup implements Map; keys are little-endian u32 indices.
func (a *Array) Lookup(key []byte, cpu int) int {
	if len(key) < 4 {
		return -1
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx >= a.spec.MaxEntries {
		return -1
	}
	if a.cpus > 1 {
		return (cpu*a.spec.MaxEntries + idx) * a.spec.ValueSize
	}
	return idx * a.spec.ValueSize
}

// Update implements Map.
func (a *Array) Update(key, value []byte, cpu int) error {
	off := a.Lookup(key, cpu)
	if off < 0 {
		return fmt.Errorf("maps: %s: index out of range", a.spec.Name)
	}
	if len(value) != a.spec.ValueSize {
		return fmt.Errorf("maps: %s: value size %d != %d", a.spec.Name, len(value), a.spec.ValueSize)
	}
	copy(a.store[off:], value)
	return nil
}

// Delete implements Map; array entries cannot be deleted.
func (a *Array) Delete([]byte) error { return nil }

// Hash is BPF_MAP_TYPE_HASH with stable value slots.
type Hash struct {
	spec  ebpf.MapSpec
	store []byte
	slots map[string]int // key bytes → slot index
	free  []int
	next  int
}

// Spec implements Map.
func (h *Hash) Spec() ebpf.MapSpec { return h.spec }

// Backing implements Map.
func (h *Hash) Backing() []byte { return h.store }

// Lookup implements Map.
func (h *Hash) Lookup(key []byte, _ int) int {
	if len(key) != h.spec.KeySize {
		return -1
	}
	slot, ok := h.slots[string(key)]
	if !ok {
		return -1
	}
	return slot * h.spec.ValueSize
}

// Update implements Map.
func (h *Hash) Update(key, value []byte, _ int) error {
	if len(key) != h.spec.KeySize {
		return fmt.Errorf("maps: %s: key size %d != %d", h.spec.Name, len(key), h.spec.KeySize)
	}
	if len(value) != h.spec.ValueSize {
		return fmt.Errorf("maps: %s: value size %d != %d", h.spec.Name, len(value), h.spec.ValueSize)
	}
	if slot, ok := h.slots[string(key)]; ok {
		copy(h.store[slot*h.spec.ValueSize:], value)
		return nil
	}
	var slot int
	switch {
	case len(h.free) > 0:
		slot = h.free[len(h.free)-1]
		h.free = h.free[:len(h.free)-1]
	case h.next < h.spec.MaxEntries:
		slot = h.next
		h.next++
	default:
		return fmt.Errorf("maps: %s: full", h.spec.Name)
	}
	h.slots[string(key)] = slot
	copy(h.store[slot*h.spec.ValueSize:], value)
	return nil
}

// Delete implements Map.
func (h *Hash) Delete(key []byte) error {
	slot, ok := h.slots[string(key)]
	if !ok {
		return fmt.Errorf("maps: %s: no such key", h.spec.Name)
	}
	delete(h.slots, string(key))
	h.free = append(h.free, slot)
	return nil
}

// Len returns the number of live entries (test/inspection helper).
func (h *Hash) Len() int { return len(h.slots) }

// RingBuf is a byte ring used as the perf-event output channel.
type RingBuf struct {
	spec   ebpf.MapSpec
	store  []byte
	head   int
	Events uint64
	Bytes  uint64
}

// Spec implements Map.
func (r *RingBuf) Spec() ebpf.MapSpec { return r.spec }

// Backing implements Map.
func (r *RingBuf) Backing() []byte { return r.store }

// Lookup implements Map; ring buffers are not lookup-able.
func (r *RingBuf) Lookup([]byte, int) int { return -1 }

// Update implements Map; rings are written via Output.
func (r *RingBuf) Update([]byte, []byte, int) error {
	return fmt.Errorf("maps: %s: ring buffers use output, not update", r.spec.Name)
}

// Delete implements Map.
func (r *RingBuf) Delete([]byte) error { return nil }

// Output appends an event record, wrapping at the ring's end.
func (r *RingBuf) Output(data []byte) {
	r.Events++
	r.Bytes += uint64(len(data))
	for _, b := range data {
		r.store[r.head] = b
		r.head = (r.head + 1) % len(r.store)
	}
}
