package maps

import (
	"bytes"
	"encoding/binary"
	"testing"

	"merlin/internal/ebpf"
)

func mustNew(t *testing.T, spec ebpf.MapSpec, ncpu int) Map {
	t.Helper()
	m, err := New(spec, ncpu)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func u32key(v uint32) []byte {
	k := make([]byte, 4)
	binary.LittleEndian.PutUint32(k, v)
	return k
}

func TestArrayStateRoundTrip(t *testing.T) {
	spec := ebpf.MapSpec{Name: "arr", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 4}
	src := mustNew(t, spec, 1)
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := src.Update(u32key(2), val, 0); err != nil {
		t.Fatal(err)
	}
	dst := mustNew(t, spec, 1)
	if err := Transfer(dst, src); err != nil {
		t.Fatal(err)
	}
	off := dst.Lookup(u32key(2), 0)
	if off < 0 || !bytes.Equal(dst.Backing()[off:off+8], val) {
		t.Fatalf("transferred array lost value: off=%d", off)
	}
}

func TestPerCPUArrayStateRoundTrip(t *testing.T) {
	spec := ebpf.MapSpec{Name: "pc", Kind: 2, KeySize: 4, ValueSize: 8, MaxEntries: 2}
	src := mustNew(t, spec, 4)
	for cpu := 0; cpu < 4; cpu++ {
		v := bytes.Repeat([]byte{byte(cpu + 1)}, 8)
		if err := src.Update(u32key(1), v, cpu); err != nil {
			t.Fatal(err)
		}
	}
	dst := mustNew(t, spec, 4)
	if err := Transfer(dst, src); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 4; cpu++ {
		off := dst.Lookup(u32key(1), cpu)
		want := bytes.Repeat([]byte{byte(cpu + 1)}, 8)
		if off < 0 || !bytes.Equal(dst.Backing()[off:off+8], want) {
			t.Fatalf("cpu %d slice lost", cpu)
		}
	}
}

// TestHashStateRoundTrip includes a delete so the free list and slot
// assignment survive serialization exactly — value pointers the VM computed
// from slot offsets must stay valid across a restore.
func TestHashStateRoundTrip(t *testing.T) {
	spec := ebpf.MapSpec{Name: "h", Kind: 1, KeySize: 4, ValueSize: 4, MaxEntries: 8}
	src := mustNew(t, spec, 1).(*Hash)
	for i := uint32(0); i < 5; i++ {
		if err := src.Update(u32key(i), u32key(i*100), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Delete(u32key(2)); err != nil {
		t.Fatal(err)
	}

	dst := mustNew(t, spec, 1).(*Hash)
	if err := Transfer(dst, src); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("len %d != %d", dst.Len(), src.Len())
	}
	for i := uint32(0); i < 5; i++ {
		so, do := src.Lookup(u32key(i), 0), dst.Lookup(u32key(i), 0)
		if so != do {
			t.Fatalf("key %d: slot offset %d != %d (layout not preserved)", i, do, so)
		}
		if so >= 0 && !bytes.Equal(dst.Backing()[do:do+4], src.Backing()[so:so+4]) {
			t.Fatalf("key %d: value differs", i)
		}
	}
	// The restored free list must be reused identically: inserting a new key
	// into both maps must land in the same slot.
	if err := src.Update(u32key(99), u32key(9), 0); err != nil {
		t.Fatal(err)
	}
	if err := dst.Update(u32key(99), u32key(9), 0); err != nil {
		t.Fatal(err)
	}
	if src.Lookup(u32key(99), 0) != dst.Lookup(u32key(99), 0) {
		t.Fatal("free-list reuse diverged after restore")
	}
}

func TestRingBufStateRoundTrip(t *testing.T) {
	spec := ebpf.MapSpec{Name: "rb", Kind: 3, KeySize: 0, ValueSize: 1, MaxEntries: 16}
	src := mustNew(t, spec, 1).(*RingBuf)
	src.Output([]byte("hello"))
	src.Output([]byte("world!"))

	dst := mustNew(t, spec, 1).(*RingBuf)
	if err := Transfer(dst, src); err != nil {
		t.Fatal(err)
	}
	if dst.Events != 2 || dst.Bytes != 11 || dst.head != src.head {
		t.Fatalf("ring counters lost: events=%d bytes=%d head=%d", dst.Events, dst.Bytes, dst.head)
	}
	if !bytes.Equal(dst.Backing(), src.Backing()) {
		t.Fatal("ring contents differ")
	}
}

func TestTransferSpecMismatchRejected(t *testing.T) {
	a := mustNew(t, ebpf.MapSpec{Name: "a", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 4}, 1)
	b := mustNew(t, ebpf.MapSpec{Name: "a", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 8}, 1)
	if err := Transfer(b, a); err == nil {
		t.Fatal("spec mismatch accepted")
	}
}

// TestLoadStateRejectsGarbage drives LoadState with hostile blobs: wrong
// kind, truncations at every offset, trailing junk. A structural error must
// be reported and must never panic.
func TestLoadStateRejectsGarbage(t *testing.T) {
	spec := ebpf.MapSpec{Name: "h", Kind: 1, KeySize: 4, ValueSize: 4, MaxEntries: 8}
	src := mustNew(t, spec, 1).(*Hash)
	for i := uint32(0); i < 3; i++ {
		if err := src.Update(u32key(i), u32key(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	blob := SaveState(src)

	for cut := 0; cut < len(blob); cut++ {
		dst := mustNew(t, spec, 1)
		if err := LoadState(dst, blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	dst := mustNew(t, spec, 1)
	if err := LoadState(dst, append(append([]byte(nil), blob...), 0xaa)); err == nil {
		t.Error("trailing junk accepted")
	}
	wrongKind := append([]byte(nil), blob...)
	wrongKind[0] = 3
	if err := LoadState(dst, wrongKind); err == nil {
		t.Error("wrong kind tag accepted")
	}
	// A full valid blob still loads after all the rejected attempts.
	if err := LoadState(dst, blob); err != nil {
		t.Fatalf("valid blob rejected after garbage: %v", err)
	}
}
