package maps

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"merlin/internal/ebpf"
)

func key32(i uint32) []byte {
	k := make([]byte, 4)
	binary.LittleEndian.PutUint32(k, i)
	return k
}

func TestArrayMap(t *testing.T) {
	m, err := New(ebpf.MapSpec{Name: "a", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if off := m.Lookup(key32(2), 0); off != 16 {
		t.Fatalf("lookup off = %d", off)
	}
	if off := m.Lookup(key32(4), 0); off != -1 {
		t.Fatal("out-of-range index should miss")
	}
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.Update(key32(2), val, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Backing()[16:24]; !bytes.Equal(got, val) {
		t.Fatalf("backing = %v", got)
	}
	if err := m.Update(key32(9), val, 0); err == nil {
		t.Fatal("update out of range should fail")
	}
	if err := m.Update(key32(1), []byte{1}, 0); err == nil {
		t.Fatal("short value should fail")
	}
	if err := m.Delete(key32(1)); err != nil {
		t.Fatal("array delete should be a no-op")
	}
}

func TestPerCPUArrayIsolation(t *testing.T) {
	m, err := New(ebpf.MapSpec{Name: "p", Kind: 2, KeySize: 4, ValueSize: 8, MaxEntries: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	v := []byte{9, 0, 0, 0, 0, 0, 0, 0}
	if err := m.Update(key32(1), v, 3); err != nil {
		t.Fatal(err)
	}
	off0 := m.Lookup(key32(1), 0)
	off3 := m.Lookup(key32(1), 3)
	if off0 == off3 {
		t.Fatal("per-cpu slots must differ")
	}
	if m.Backing()[off3] != 9 || m.Backing()[off0] == 9 {
		t.Fatal("per-cpu write leaked")
	}
}

func TestHashMapBasics(t *testing.T) {
	m, err := New(ebpf.MapSpec{Name: "h", Kind: 1, KeySize: 8, ValueSize: 4, MaxEntries: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := m.(*Hash)
	k1 := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	k2 := []byte{2, 0, 0, 0, 0, 0, 0, 0}
	k3 := []byte{3, 0, 0, 0, 0, 0, 0, 0}
	if off := m.Lookup(k1, 0); off != -1 {
		t.Fatal("empty map should miss")
	}
	if err := m.Update(k1, []byte{1, 1, 1, 1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(k2, []byte{2, 2, 2, 2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(k3, []byte{3, 3, 3, 3}, 0); err == nil {
		t.Fatal("full map should reject")
	}
	if err := m.Delete(k1); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(k3, []byte{3, 3, 3, 3}, 0); err != nil {
		t.Fatal("freed slot should be reusable")
	}
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
	off := m.Lookup(k3, 0)
	if off < 0 || m.Backing()[off] != 3 {
		t.Fatal("lookup after reuse broken")
	}
	if err := m.Delete(k1); err == nil {
		t.Fatal("double delete should fail")
	}
}

// Property: hash map behaves like a Go map under random workloads.
func TestHashMapModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		spec := ebpf.MapSpec{Name: "h", Kind: 1, KeySize: 2, ValueSize: 2, MaxEntries: 16}
		m, err := New(spec, 1)
		if err != nil {
			return false
		}
		model := map[uint16]uint16{}
		for i, op := range ops {
			key := make([]byte, 2)
			binary.LittleEndian.PutUint16(key, op%32)
			switch i % 3 {
			case 0, 1: // update
				val := make([]byte, 2)
				binary.LittleEndian.PutUint16(val, uint16(i))
				if err := m.Update(key, val, 0); err == nil {
					model[op%32] = uint16(i)
				} else if len(model) < 16 {
					return false // rejected despite free space
				}
			case 2: // delete
				err := m.Delete(key)
				_, had := model[op%32]
				if had != (err == nil) {
					return false
				}
				delete(model, op%32)
			}
		}
		for k, v := range model {
			key := make([]byte, 2)
			binary.LittleEndian.PutUint16(key, k)
			off := m.Lookup(key, 0)
			if off < 0 {
				return false
			}
			if binary.LittleEndian.Uint16(m.Backing()[off:]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRingBuf(t *testing.T) {
	m, err := New(ebpf.MapSpec{Name: "r", Kind: 3, KeySize: 0, ValueSize: 16, MaxEntries: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb := m.(*RingBuf)
	rb.Output([]byte("hello"))
	rb.Output(make([]byte, 100)) // wraps
	if rb.Events != 2 || rb.Bytes != 105 {
		t.Fatalf("events=%d bytes=%d", rb.Events, rb.Bytes)
	}
	if m.Lookup(nil, 0) != -1 {
		t.Fatal("ring lookup should miss")
	}
	if err := m.Update(nil, nil, 0); err == nil {
		t.Fatal("ring update should fail")
	}
}

func TestNewRejectsBadSpecs(t *testing.T) {
	if _, err := New(ebpf.MapSpec{Name: "x", Kind: 0, KeySize: 8, ValueSize: 8, MaxEntries: 1}, 1); err == nil {
		t.Error("array with key!=4 should fail")
	}
	if _, err := New(ebpf.MapSpec{Name: "x", Kind: 9, KeySize: 4, ValueSize: 8, MaxEntries: 1}, 1); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := New(ebpf.MapSpec{Name: "x", Kind: 0, KeySize: 4, ValueSize: 0, MaxEntries: 1}, 1); err == nil {
		t.Error("zero value size should fail")
	}
}
