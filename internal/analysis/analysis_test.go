package analysis

import (
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

func TestCFGStraightLine(t *testing.T) {
	p := &ebpf.Program{Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Mov64Imm(ebpf.R1, 2),
		ebpf.Exit(),
	}}
	cfg, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(cfg.Blocks))
	}
	if len(cfg.Succs[0]) != 0 {
		t.Fatal("exit block has successors")
	}
}

func TestCFGBranching(t *testing.T) {
	p := &ebpf.Program{Insns: []ebpf.Instruction{
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R1, 0, 2), // b0 → b2, b1
		ebpf.Mov64Imm(ebpf.R0, 1),                // b1
		ebpf.Exit(),                              // b1 end
		ebpf.Mov64Imm(ebpf.R0, 2),                // b2
		ebpf.Exit(),
	}}
	cfg, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(cfg.Blocks))
	}
	if len(cfg.Succs[0]) != 2 {
		t.Fatalf("entry succs = %v", cfg.Succs[0])
	}
	if len(cfg.Preds[2]) != 1 || cfg.Preds[2][0] != 0 {
		t.Fatalf("preds of b2 = %v", cfg.Preds[2])
	}
}

func TestEffects(t *testing.T) {
	cases := []struct {
		ins  ebpf.Instruction
		uses []ebpf.Register
		defs []ebpf.Register
	}{
		{ebpf.Mov64Imm(ebpf.R1, 5), nil, []ebpf.Register{ebpf.R1}},
		{ebpf.Mov64Reg(ebpf.R1, ebpf.R2), []ebpf.Register{ebpf.R2}, []ebpf.Register{ebpf.R1}},
		{ebpf.ALU64Reg(ebpf.ALUAdd, ebpf.R1, ebpf.R2), []ebpf.Register{ebpf.R1, ebpf.R2}, []ebpf.Register{ebpf.R1}},
		{ebpf.LoadMem(ebpf.SizeW, ebpf.R3, ebpf.R4, 0), []ebpf.Register{ebpf.R4}, []ebpf.Register{ebpf.R3}},
		{ebpf.StoreMem(ebpf.SizeW, ebpf.R3, 0, ebpf.R4), []ebpf.Register{ebpf.R3, ebpf.R4}, nil},
		{ebpf.StoreImm(ebpf.SizeW, ebpf.R3, 0, 7), []ebpf.Register{ebpf.R3}, nil},
		{ebpf.Exit(), []ebpf.Register{ebpf.R0}, nil},
		{ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R1, 0, ebpf.R2), []ebpf.Register{ebpf.R1, ebpf.R2}, nil},
	}
	for _, c := range cases {
		e := InsnEffects(c.ins)
		for _, r := range c.uses {
			if !e.Uses.Has(r) {
				t.Errorf("%s: missing use %s", ebpf.Mnemonic(c.ins), r)
			}
		}
		for _, r := range c.defs {
			if !e.Defs.Has(r) {
				t.Errorf("%s: missing def %s", ebpf.Mnemonic(c.ins), r)
			}
		}
	}
	// Calls use declared args and clobber r0-r5.
	e := InsnEffects(ebpf.Call(helpers.MapLookupElem))
	if !e.Uses.Has(ebpf.R1) || !e.Uses.Has(ebpf.R2) || e.Uses.Has(ebpf.R3) {
		t.Errorf("call uses = %012b", e.Uses)
	}
	for r := ebpf.R0; r <= ebpf.R5; r++ {
		if !e.Defs.Has(r) {
			t.Errorf("call must clobber %s", r)
		}
	}
}

func TestLivenessDeadMov(t *testing.T) {
	p := &ebpf.Program{Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 1), // dead: overwritten below
		ebpf.Mov64Imm(ebpf.R1, 2),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.Exit(),
	}}
	cfg, _ := BuildCFG(p)
	lo := Liveness(cfg)
	if lo[0].Has(ebpf.R1) {
		t.Error("r1 should be dead after the first mov")
	}
	if !lo[1].Has(ebpf.R1) {
		t.Error("r1 should be live after the second mov")
	}
	if !lo[2].Has(ebpf.R0) {
		t.Error("r0 must be live before exit")
	}
	if !lo[0].Has(ebpf.R10) {
		t.Error("frame pointer must always be live")
	}
}

func TestLivenessAcrossBranch(t *testing.T) {
	// r2 used only on one arm: still live-out of the branch.
	p := &ebpf.Program{Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R2, 9),
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R1, 0, 2),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R2),
		ebpf.Exit(),
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	}}
	cfg, _ := BuildCFG(p)
	lo := Liveness(cfg)
	if !lo[1].Has(ebpf.R2) {
		t.Error("r2 must be live across the branch")
	}
	if lo[4].Has(ebpf.R2) {
		t.Error("r2 must be dead on the fallthrough-free arm")
	}
}

func TestConstantsStraightLine(t *testing.T) {
	p := &ebpf.Program{Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 5),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, 3),
		ebpf.ALU64Reg(ebpf.ALUMov, ebpf.R2, ebpf.R1),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R2),
		ebpf.Exit(),
	}}
	cfg, _ := BuildCFG(p)
	consts := Constants(cfg)
	if cv := consts[3][ebpf.R2]; !cv.Known || cv.Val != 8 {
		t.Fatalf("r2 before store = %+v, want 8", cv)
	}
}

func TestConstantsMergeAtJoin(t *testing.T) {
	// r1 = 1 on one path, 2 on the other: unknown at the join; r2 = 7 on
	// both: known at the join.
	p := &ebpf.Program{Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R2, 7),
		ebpf.JumpImm(ebpf.JumpEq, ebpf.R0, 0, 2),
		ebpf.Mov64Imm(ebpf.R1, 1),
		ebpf.Jump(1),
		ebpf.Mov64Imm(ebpf.R1, 2),
		ebpf.StoreMem(ebpf.SizeDW, ebpf.R10, -8, ebpf.R1), // join
		ebpf.Exit(),
	}}
	cfg, _ := BuildCFG(p)
	consts := Constants(cfg)
	if consts[5][ebpf.R1].Known {
		t.Error("r1 must be unknown at the join")
	}
	if cv := consts[5][ebpf.R2]; !cv.Known || cv.Val != 7 {
		t.Errorf("r2 at join = %+v, want 7", cv)
	}
}

func TestConstantsLoop(t *testing.T) {
	// r1 changes in the loop: must converge to unknown inside it.
	p := &ebpf.Program{Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 0),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R1, 1), // loop head
		ebpf.JumpImm(ebpf.JumpLT, ebpf.R1, 10, -2),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.Exit(),
	}}
	cfg, _ := BuildCFG(p)
	consts := Constants(cfg)
	if consts[1][ebpf.R1].Known {
		t.Error("loop-carried r1 must be unknown at the head")
	}
}

func TestConstantsCallClobbers(t *testing.T) {
	p := &ebpf.Program{Insns: []ebpf.Instruction{
		ebpf.Mov64Imm(ebpf.R1, 5),
		ebpf.Mov64Imm(ebpf.R6, 6),
		ebpf.Call(helpers.KtimeGetNS),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.Exit(),
	}}
	cfg, _ := BuildCFG(p)
	consts := Constants(cfg)
	if consts[3][ebpf.R1].Known {
		t.Error("r1 must be clobbered by the call")
	}
	if cv := consts[3][ebpf.R6]; !cv.Known || cv.Val != 6 {
		t.Error("r6 must survive the call")
	}
}

func TestConstantsWideAndMapLoads(t *testing.T) {
	p := &ebpf.Program{Insns: []ebpf.Instruction{
		ebpf.LoadImm64(ebpf.R1, 0x1_0000_0001),
		ebpf.LoadMapPtr(ebpf.R2, 0),
		ebpf.Exit(),
	}}
	cfg, _ := BuildCFG(p)
	consts := Constants(cfg)
	if cv := consts[1][ebpf.R1]; !cv.Known || cv.Val != 0x1_0000_0001 {
		t.Error("lddw constant not tracked")
	}
	if consts[2][ebpf.R2].Known {
		t.Error("map pseudo loads are not constants")
	}
}
