// Package analysis provides the bytecode-level static analyses backing
// Merlin's bytecode refinement tier: control-flow graphs, register
// def/use effects, liveness, and constant reaching — the "dependency
// analysis" (Dep) whose cost Fig 13a reports separately.
package analysis

import (
	"merlin/internal/ebpf"
	"merlin/internal/helpers"
)

// RegMask is a bitset over the eleven eBPF registers.
type RegMask uint16

// Has reports whether r is in the mask.
func (m RegMask) Has(r ebpf.Register) bool { return m&(1<<r) != 0 }

// With returns the mask including r.
func (m RegMask) With(r ebpf.Register) RegMask { return m | 1<<r }

// Without returns the mask excluding r.
func (m RegMask) Without(r ebpf.Register) RegMask { return m &^ (1 << r) }

// Effects describes an instruction's register reads and writes.
// Clobbers are writes with undefined content (helper calls).
type Effects struct {
	Uses RegMask
	Defs RegMask
}

// InsnEffects computes the register effects of one instruction.
func InsnEffects(ins ebpf.Instruction) Effects {
	var e Effects
	switch ins.Class() {
	case ebpf.ClassALU, ebpf.ClassALU64:
		op := ins.ALUOpField()
		if op != ebpf.ALUMov {
			e.Uses = e.Uses.With(ins.Dst)
		}
		if ins.SourceField() == ebpf.SourceX && op != ebpf.ALUNeg && op != ebpf.ALUEnd {
			e.Uses = e.Uses.With(ins.Src)
		}
		if op == ebpf.ALUNeg || op == ebpf.ALUEnd {
			e.Uses = e.Uses.With(ins.Dst)
		}
		e.Defs = e.Defs.With(ins.Dst)
	case ebpf.ClassLD:
		if ins.IsWide() {
			e.Defs = e.Defs.With(ins.Dst)
		}
	case ebpf.ClassLDX:
		e.Uses = e.Uses.With(ins.Src)
		e.Defs = e.Defs.With(ins.Dst)
	case ebpf.ClassST:
		e.Uses = e.Uses.With(ins.Dst)
	case ebpf.ClassSTX:
		e.Uses = e.Uses.With(ins.Dst).With(ins.Src)
	case ebpf.ClassJMP, ebpf.ClassJMP32:
		switch ins.JumpOpField() {
		case ebpf.JumpExit:
			e.Uses = e.Uses.With(ebpf.R0)
		case ebpf.JumpCall:
			argc := 5
			if spec, ok := helpers.Table[int(ins.Imm)]; ok {
				argc = len(spec.Args)
			}
			for i := 0; i < argc; i++ {
				e.Uses = e.Uses.With(ebpf.R1 + ebpf.Register(i))
			}
			// Calls clobber r0-r5.
			for r := ebpf.R0; r <= ebpf.R5; r++ {
				e.Defs = e.Defs.With(r)
			}
		case ebpf.JumpAlways:
		default:
			e.Uses = e.Uses.With(ins.Dst)
			if ins.SourceField() == ebpf.SourceX {
				e.Uses = e.Uses.With(ins.Src)
			}
		}
	}
	return e
}

// CFG is a basic-block decomposition of a program.
type CFG struct {
	Prog *ebpf.Program
	// Leader[i] is true when element i starts a basic block.
	Leader []bool
	// BlockOf[i] is the block index of element i.
	BlockOf []int
	// Blocks lists [start, end) element ranges.
	Blocks [][2]int
	// Succs lists successor block indices per block.
	Succs [][]int
	// Preds lists predecessor block indices per block.
	Preds [][]int
	// Target[i] is the element index a branch at i jumps to, or -1.
	Target []int
}

// BuildCFG decomposes prog into basic blocks. It returns an error for
// malformed branch targets.
func BuildCFG(prog *ebpf.Program) (*CFG, error) {
	n := len(prog.Insns)
	cfg := &CFG{
		Prog:    prog,
		Leader:  make([]bool, n),
		BlockOf: make([]int, n),
		Target:  make([]int, n),
	}
	ed, err := ebpf.MakeEditable(prog)
	if err != nil {
		return nil, err
	}
	copy(cfg.Target, ed.Target)
	if n == 0 {
		return cfg, nil
	}
	cfg.Leader[0] = true
	for i, ins := range prog.Insns {
		if t := cfg.Target[i]; t >= 0 {
			if t < n {
				cfg.Leader[t] = true
			}
			if i+1 < n {
				cfg.Leader[i+1] = true
			}
		}
		if ins.IsExit() && i+1 < n {
			cfg.Leader[i+1] = true
		}
	}
	for i := 0; i < n; i++ {
		if cfg.Leader[i] {
			cfg.Blocks = append(cfg.Blocks, [2]int{i, i + 1})
		} else {
			cfg.Blocks[len(cfg.Blocks)-1][1] = i + 1
		}
		cfg.BlockOf[i] = len(cfg.Blocks) - 1
	}
	cfg.Succs = make([][]int, len(cfg.Blocks))
	cfg.Preds = make([][]int, len(cfg.Blocks))
	addEdge := func(from, to int) {
		cfg.Succs[from] = append(cfg.Succs[from], to)
		cfg.Preds[to] = append(cfg.Preds[to], from)
	}
	for bi, blk := range cfg.Blocks {
		last := prog.Insns[blk[1]-1]
		lastIdx := blk[1] - 1
		switch {
		case last.IsExit():
		case last.IsUncondJump():
			addEdge(bi, cfg.BlockOf[cfg.Target[lastIdx]])
		case last.IsCondJump():
			addEdge(bi, cfg.BlockOf[cfg.Target[lastIdx]])
			if blk[1] < n {
				addEdge(bi, cfg.BlockOf[blk[1]])
			}
		default:
			if blk[1] < n {
				addEdge(bi, cfg.BlockOf[blk[1]])
			}
		}
	}
	return cfg, nil
}

// Liveness computes, for every element index, the set of registers live
// immediately after the instruction executes (live-out).
func Liveness(cfg *CFG) []RegMask {
	n := len(cfg.Prog.Insns)
	liveOut := make([]RegMask, n)
	blockIn := make([]RegMask, len(cfg.Blocks))
	// R10 is the frame pointer: always live so nothing "defines" it away.
	const always = RegMask(1 << ebpf.R10)

	changed := true
	for changed {
		changed = false
		for bi := len(cfg.Blocks) - 1; bi >= 0; bi-- {
			blk := cfg.Blocks[bi]
			out := always
			for _, s := range cfg.Succs[bi] {
				out |= blockIn[s]
			}
			// Walk the block backwards.
			for i := blk[1] - 1; i >= blk[0]; i-- {
				liveOut[i] = out
				e := InsnEffects(cfg.Prog.Insns[i])
				out = (out &^ e.Defs) | e.Uses | always
			}
			if out != blockIn[bi] {
				blockIn[bi] = out
				changed = true
			}
		}
	}
	return liveOut
}

// ConstVal is a constant-propagation lattice value.
type ConstVal struct {
	Known bool
	Val   int64
}

// RegConsts is the per-point register constant environment.
type RegConsts [ebpf.NumRegisters]ConstVal

func (rc *RegConsts) clear(r ebpf.Register) { rc[r] = ConstVal{} }

func meet(a, b RegConsts) RegConsts {
	var out RegConsts
	for i := range out {
		if a[i].Known && b[i].Known && a[i].Val == b[i].Val {
			out[i] = a[i]
		}
	}
	return out
}

// Constants computes, for every element index, the register constant
// environment immediately BEFORE the instruction executes.
func Constants(cfg *CFG) []RegConsts {
	n := len(cfg.Prog.Insns)
	before := make([]RegConsts, n)
	blockOut := make([]RegConsts, len(cfg.Blocks))
	blockSeen := make([]bool, len(cfg.Blocks))

	transfer := func(rc RegConsts, ins ebpf.Instruction) RegConsts {
		switch ins.Class() {
		case ebpf.ClassALU64, ebpf.ClassALU:
			is32 := ins.Class() == ebpf.ClassALU
			op := ins.ALUOpField()
			var src ConstVal
			if ins.SourceField() == ebpf.SourceX {
				src = rc[ins.Src]
			} else {
				src = ConstVal{Known: true, Val: int64(ins.Imm)}
			}
			if op == ebpf.ALUEnd {
				if d := rc[ins.Dst]; d.Known {
					rc[ins.Dst] = ConstVal{Known: true, Val: int64(bswapConst(uint64(d.Val), ins.Imm))}
				} else {
					rc.clear(ins.Dst)
				}
				return rc
			}
			dst := rc[ins.Dst]
			if op == ebpf.ALUMov {
				if src.Known {
					v := src.Val
					if is32 {
						v = int64(uint32(v))
					}
					rc[ins.Dst] = ConstVal{Known: true, Val: v}
				} else {
					rc.clear(ins.Dst)
				}
				return rc
			}
			if dst.Known && src.Known {
				v := evalALUConst(op, is32, uint64(dst.Val), uint64(src.Val))
				rc[ins.Dst] = ConstVal{Known: true, Val: int64(v)}
			} else {
				rc.clear(ins.Dst)
			}
		case ebpf.ClassLD:
			if ins.IsWide() {
				if ins.IsMapLoad() {
					rc.clear(ins.Dst)
				} else {
					rc[ins.Dst] = ConstVal{Known: true, Val: ins.Imm64}
				}
			}
		case ebpf.ClassLDX:
			rc.clear(ins.Dst)
		case ebpf.ClassJMP, ebpf.ClassJMP32:
			if ins.JumpOpField() == ebpf.JumpCall {
				for r := ebpf.R0; r <= ebpf.R5; r++ {
					rc.clear(r)
				}
			}
		}
		return rc
	}

	// Iterate to fixpoint over blocks in layout order.
	changed := true
	for changed {
		changed = false
		for bi, blk := range cfg.Blocks {
			var in RegConsts
			first := true
			for _, p := range cfg.Preds[bi] {
				if !blockSeen[p] {
					continue
				}
				if first {
					in = blockOut[p]
					first = false
				} else {
					in = meet(in, blockOut[p])
				}
			}
			if bi == 0 {
				in = RegConsts{}
				first = false
			}
			if first {
				// No processed predecessors yet: assume nothing.
				in = RegConsts{}
			}
			rc := in
			for i := blk[0]; i < blk[1]; i++ {
				before[i] = rc
				rc = transfer(rc, cfg.Prog.Insns[i])
			}
			if !blockSeen[bi] || rc != blockOut[bi] {
				blockOut[bi] = rc
				blockSeen[bi] = true
				changed = true
			}
		}
	}
	return before
}

// bswapConst reverses the byte order of the low `bits` bits.
func bswapConst(v uint64, bits int32) uint64 {
	switch bits {
	case 16:
		return uint64(uint16(v)>>8 | uint16(v)<<8)
	case 32:
		x := uint32(v)
		return uint64(x>>24 | x>>8&0xff00 | x<<8&0xff0000 | x<<24)
	default:
		r := uint64(0)
		for i := 0; i < 8; i++ {
			r = r<<8 | (v >> (8 * i) & 0xff)
		}
		return r
	}
}

func evalALUConst(op ebpf.ALUOp, is32 bool, a, b uint64) uint64 {
	bits := uint64(64)
	if is32 {
		a &= 0xffffffff
		b &= 0xffffffff
		bits = 32
	}
	var r uint64
	switch op {
	case ebpf.ALUAdd:
		r = a + b
	case ebpf.ALUSub:
		r = a - b
	case ebpf.ALUMul:
		r = a * b
	case ebpf.ALUDiv:
		if b == 0 {
			r = 0
		} else {
			r = a / b
		}
	case ebpf.ALUMod:
		if b == 0 {
			r = a
		} else {
			r = a % b
		}
	case ebpf.ALUOr:
		r = a | b
	case ebpf.ALUAnd:
		r = a & b
	case ebpf.ALUXor:
		r = a ^ b
	case ebpf.ALULsh:
		r = a << (b & (bits - 1))
	case ebpf.ALURsh:
		r = a >> (b & (bits - 1))
	case ebpf.ALUArsh:
		if is32 {
			r = uint64(uint32(int32(uint32(a)) >> (b & 31)))
		} else {
			r = uint64(int64(a) >> (b & 63))
		}
	case ebpf.ALUNeg:
		r = -a
	default:
		return 0
	}
	if is32 {
		r &= 0xffffffff
	}
	return r
}
